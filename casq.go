// Package casq (Context-Aware Suppression of correlated noise in Quantum
// circuits) is a Go reproduction of "Suppressing Correlated Noise in Quantum
// Computers via Context-Aware Compiling" (Seif et al., ISCA 2024,
// arXiv:2403.06852).
//
// The public API is built around two composable subsystems:
//
//   - a pass pipeline: every compiler transformation (Pauli twirling,
//     scheduling, Context-Aware Dynamical Decoupling — Algorithm 1 — and
//     Context-Aware Error Compensation — Algorithm 2) is a Pass, and a
//     Pipeline composes them in any order. The paper's six benchmarked
//     strategies (Bare … Combined) are canned pipelines via Build; custom
//     orderings (EC before DD, twirl-free DD ablations, user-defined
//     passes) compose with NewPipeline;
//   - a concurrent executor: NewExecutor fans the twirl instances of a job
//     out across a worker pool with per-instance derived seeds and
//     aggregates in instance order, so results are bit-identical for any
//     worker count and the full shot budget is preserved. The
//     ExecOptions.Workers budget is shared between instance-level fan-out
//     and the simulator's shot-level fan-out (a single-instance job
//     parallelizes over shots instead of running serially; see DESIGN.md,
//     "Unified worker budget").
//
// A minimal end-to-end run:
//
//	dev := casq.NewLineDevice("dev", 4, casq.DefaultDeviceOptions())
//	pl := casq.Build(casq.Combined())
//	ex := casq.NewExecutor(dev, pl)
//	vals, err := ex.Expectations(context.Background(), circ,
//	    []casq.Observable{{0: 'X'}},
//	    casq.ExecOptions{Instances: 8, Seed: 7, Cfg: casq.DefaultSimConfig()})
//
// Beneath the API sit, from scratch and stdlib-only: a layered
// quantum-circuit IR with scheduling and a gate library (ECR, CX, RZZ, the
// canonical gate Ucan, ZXZXZ Euler decomposition); a device model with the
// calibration data the paper's passes consume (always-on ZZ, Stark shifts,
// charge parity, NNN collision edges, coherence times, gate
// errors/durations); a trajectory statevector simulator substituting for
// the paper's IBM hardware, with the echoed-CR pulse context modeled so DD
// alignment effects emerge from the dynamics; and experiment harnesses
// regenerating every figure and table of the paper's evaluation
// (internal/experiments, cmd/experiments).
//
// The pre-redesign compiler API (NewCompiler, Compiler.Expectations,
// Compiler.Counts) remains as thin wrappers over the pipeline + executor.
package casq

import (
	"math/rand"

	"casq/internal/caec"
	"casq/internal/circuit"
	"casq/internal/core"
	"casq/internal/dd"
	"casq/internal/device"
	"casq/internal/exec"
	"casq/internal/experiments"
	"casq/internal/pass"
	"casq/internal/sched"
	"casq/internal/sim"
	"casq/internal/twirl"
)

// Core circuit and device types.
type (
	// Circuit is the layered circuit IR.
	Circuit = circuit.Circuit
	// Layer is one layer of simultaneous instructions.
	Layer = circuit.Layer
	// Instruction is a single gate or pseudo-op.
	Instruction = circuit.Instruction
	// Device is the hardware model with calibration data.
	Device = device.Device
	// DeviceOptions configure synthetic backend generation.
	DeviceOptions = device.Options
	// SimConfig toggles the simulator's noise channels.
	SimConfig = sim.Config
	// Observable is a Pauli observable specification.
	Observable = sim.ObsSpec
	// ExperimentOptions control the paper-figure harnesses.
	ExperimentOptions = experiments.Options
	// Figure is a regenerated paper figure.
	Figure = experiments.Figure
)

// Pass-pipeline types.
type (
	// Pass is one composable circuit transformation.
	Pass = pass.Pass
	// PassContext carries the device, RNG, and report sink into a pass.
	PassContext = pass.Context
	// Pipeline is an ordered pass composition under a name.
	Pipeline = pass.Pipeline
	// Report records what a pipeline's passes did during one compilation.
	Report = pass.Report
	// TwirlScope selects which qubits receive twirl Paulis.
	TwirlScope = twirl.Scope
	// DDStrategy selects a dynamical-decoupling policy.
	DDStrategy = dd.Strategy
	// DDOptions configure a DD pass.
	DDOptions = dd.Options
	// ECOptions configure a CA-EC pass.
	ECOptions = caec.Options
)

// Executor types.
type (
	// Executor runs jobs compiled through a pipeline on a device.
	Executor = exec.Executor
	// Job is one unit of executor work.
	Job = exec.Job
	// ExecOptions configure a twirl-averaged execution.
	ExecOptions = exec.RunOptions
	// ExecResult aggregates a job's instances.
	ExecResult = exec.Result
)

// Compatibility types for the pre-redesign compiler API.
type (
	// Strategy is a named error-suppression configuration; lower it to a
	// Pipeline with Build or Strategy.Pipeline.
	Strategy = core.Strategy
	// Compiler applies a strategy's pass pipeline (compat wrapper).
	Compiler = core.Compiler
	// RunOptions configure twirl-averaged execution through a Compiler.
	RunOptions = core.RunOptions
)

// Layer kinds.
const (
	OneQubitLayer = circuit.OneQubitLayer
	TwoQubitLayer = circuit.TwoQubitLayer
	MeasureLayer  = circuit.MeasureLayer
	TwirlLayer    = circuit.TwirlLayer
)

// DD strategies.
const (
	DDNone         = dd.None
	DDAligned      = dd.Aligned
	DDStaggered    = dd.Staggered
	DDContextAware = dd.ContextAware
)

// Twirl scopes.
const (
	TwirlGatesOnly = twirl.GatesOnly
	TwirlAllQubits = twirl.AllQubits
)

// NewCircuit returns an empty layered circuit.
func NewCircuit(nQubits, nCBits int) *Circuit { return circuit.New(nQubits, nCBits) }

// DefaultDeviceOptions returns calibration ranges representative of the
// paper's fixed-frequency cross-resonance backends.
func DefaultDeviceOptions() DeviceOptions { return device.DefaultOptions() }

// NewLineDevice builds a synthetic linear-topology device.
func NewLineDevice(name string, n int, opts DeviceOptions) *Device {
	return device.NewLine(name, n, opts)
}

// NewRingDevice builds a synthetic ring device (the Heisenberg-ring layout).
func NewRingDevice(name string, n int, opts DeviceOptions) *Device {
	return device.NewRing(name, n, opts)
}

// Strategies benchmarked in the paper.
var (
	// Bare applies scheduling only.
	Bare = core.Bare
	// Twirled applies Pauli twirling only.
	Twirled = core.Twirled
	// WithDD applies twirling plus a DD strategy.
	WithDD = core.WithDD
	// CADD is context-aware dynamical decoupling (Algorithm 1).
	CADD = core.CADD
	// CAEC is context-aware error compensation (Algorithm 2).
	CAEC = core.CAEC
	// Combined applies CA-DD first and CA-EC on the remainder.
	Combined = core.Combined
)

// NewPipeline composes passes into a named pipeline. Orderings the fixed
// strategies cannot express — EC before DD, double twirling, DD without
// twirling — are all valid.
func NewPipeline(name string, passes ...Pass) Pipeline {
	return pass.New(name, passes...)
}

// Build lowers a named strategy to its canned pass pipeline.
func Build(st Strategy) Pipeline { return st.Pipeline() }

// TwirlPass returns a pass sampling one Pauli-twirl instance.
func TwirlPass(scope TwirlScope) Pass { return pass.Twirl(scope) }

// SchedulePass returns the scheduling pass; DD and EC passes consume layer
// timing, so a SchedulePass must precede them.
func SchedulePass() Pass { return pass.Schedule() }

// DDPass returns a dynamical-decoupling insertion pass.
func DDPass(opts DDOptions) Pass { return pass.DD(opts) }

// ECPass returns a context-aware error-compensation pass.
func ECPass(opts ECOptions) Pass { return pass.EC(opts) }

// DefaultDDOptions returns the context-aware DD configuration.
func DefaultDDOptions() DDOptions { return dd.DefaultOptions() }

// DefaultECOptions returns the default CA-EC configuration.
func DefaultECOptions() ECOptions { return caec.DefaultOptions() }

// Compile applies a pipeline to one twirl instance of the circuit with a
// deterministic seed, returning the compiled circuit and the pass report.
func Compile(dev *Device, pl Pipeline, c *Circuit, seed int64) (*Circuit, Report, error) {
	return pl.Apply(dev, rand.New(rand.NewSource(seed)), c)
}

// NewExecutor returns a concurrent executor running the pipeline on the
// device. Results are bit-identical for any worker count.
func NewExecutor(dev *Device, pl Pipeline) *Executor { return exec.New(dev, pl) }

// NewCompiler returns a compiler for the device and strategy with a
// deterministic twirl sampler (compat wrapper over Build + NewExecutor).
func NewCompiler(dev *Device, st Strategy, seed int64) *Compiler {
	return core.New(dev, st, seed)
}

// Schedule assigns start times and durations to a circuit's layers for the
// device, returning the total duration in ns.
func Schedule(c *Circuit, dev *Device) float64 { return sched.Schedule(c, dev) }

// TwirlInstance samples one Pauli-twirl instance of the circuit.
func TwirlInstance(c *Circuit, rng *rand.Rand) (*Circuit, error) {
	return twirl.Instance(c, twirl.GatesOnly, rng)
}

// DefaultSimConfig enables every noise channel.
func DefaultSimConfig() SimConfig { return sim.DefaultConfig() }

// IdealSimConfig disables all noise.
func IdealSimConfig() SimConfig { return sim.Ideal() }

// Simulate runs the scheduled circuit on the device and returns measured
// bitstring counts.
func Simulate(dev *Device, cfg SimConfig, c *Circuit) (map[string]int, error) {
	r := sim.New(dev, cfg)
	res, err := r.Counts(c)
	if err != nil {
		return nil, err
	}
	return res.Counts, nil
}

// Expectations runs the scheduled circuit and returns trajectory-averaged
// expectation values of the observables.
func Expectations(dev *Device, cfg SimConfig, c *Circuit, obs []Observable) ([]float64, error) {
	return sim.New(dev, cfg).Expectations(c, obs)
}

// RunExperiment regenerates one of the paper's figures/tables by id (see
// ExperimentIDs).
func RunExperiment(id string, opts ExperimentOptions) (Figure, error) {
	return experiments.Run(id, opts)
}

// ExperimentIDs lists the available paper experiments.
func ExperimentIDs() []string { return experiments.IDs() }

// DefaultExperimentOptions is the full-quality configuration.
func DefaultExperimentOptions() ExperimentOptions { return experiments.DefaultOptions() }

// FastExperimentOptions is a reduced configuration for quick runs.
func FastExperimentOptions() ExperimentOptions { return experiments.FastOptions() }
