package casq

// The package documentation lives in doc.go.

import (
	"math/rand"
	"net/http"

	"casq/internal/caec"
	"casq/internal/circuit"
	"casq/internal/core"
	"casq/internal/correl"
	"casq/internal/dd"
	"casq/internal/device"
	"casq/internal/exec"
	"casq/internal/experiments"
	"casq/internal/fabric"
	"casq/internal/layout"
	"casq/internal/obs"
	"casq/internal/pass"
	"casq/internal/sched"
	"casq/internal/serve"
	"casq/internal/sim"
	"casq/internal/stab"
	"casq/internal/store"
	"casq/internal/sweep"
	"casq/internal/twirl"
)

// Core circuit and device types.
type (
	// Circuit is the layered circuit IR.
	Circuit = circuit.Circuit
	// Layer is one layer of simultaneous instructions.
	Layer = circuit.Layer
	// Instruction is a single gate or pseudo-op.
	Instruction = circuit.Instruction
	// Device is the hardware model with calibration data.
	Device = device.Device
	// Topology is the connectivity half of a device; generator families
	// (line, ring, grid, heavy-hex) build them, Synthesize calibrates them.
	Topology = device.Topology
	// Calibration is the measured half of a device: rates, coherence,
	// errors, durations.
	Calibration = device.Calibration
	// DeviceSnapshot is the JSON-serializable export of a device; it
	// round-trips bit-identically through Fingerprint.
	DeviceSnapshot = device.Snapshot
	// BackendInfo describes one named registry backend.
	BackendInfo = device.BackendInfo
	// DeviceOptions configure synthetic backend generation.
	DeviceOptions = device.Options
	// SimConfig toggles the simulator's noise channels.
	SimConfig = sim.Config
	// SimEngine is the simulation-backend contract shared by the exact
	// statevector Runner and the stabilizer/Pauli-frame engine.
	SimEngine = sim.Engine
	// StabEngine is the stabilizer/Pauli-frame engine: full-device twirled
	// simulation via the Pauli-twirling approximation, batching 64 shots
	// per word op through bit-plane frames (set Scalar for the retained
	// per-shot reference path).
	StabEngine = stab.Engine
	// PackedBits is a bit-plane record of measured bits: 64 shots per
	// word, the stabilizer engine's native outcome format.
	PackedBits = sim.PackedBits
	// Observable is a Pauli observable specification.
	Observable = sim.ObsSpec
	// ExperimentOptions control the paper-figure harnesses.
	ExperimentOptions = experiments.Options
	// Figure is a regenerated paper figure.
	Figure = experiments.Figure
	// LayoutOptions bound the layout stage's candidate search.
	LayoutOptions = layout.Options
	// Placement is a chosen embedding of a circuit into a backend, with
	// the induced sub-device for simulation.
	Placement = layout.Placement
	// LayoutSearchReport carries the layout search's telemetry: candidate
	// counts, surrogate pruning ratio, scores, and throughput.
	LayoutSearchReport = layout.SearchReport
	// LayoutMonitor tracks a deployed placement against calibration drift
	// and recompiles only when the score degrades past a threshold.
	LayoutMonitor = layout.Monitor
	// LayoutMonitorOptions configure the drift thresholds.
	LayoutMonitorOptions = layout.MonitorOptions
	// LayoutDecision records how one drift event resolved: absorbed by the
	// surrogate, exact-checked, or recompiled.
	LayoutDecision = layout.Decision
)

// Pass-pipeline types.
type (
	// Pass is one composable circuit transformation.
	Pass = pass.Pass
	// PassContext carries the device, RNG, and report sink into a pass.
	PassContext = pass.Context
	// Pipeline is an ordered pass composition under a name.
	Pipeline = pass.Pipeline
	// Report records what a pipeline's passes did during one compilation.
	Report = pass.Report
	// TwirlScope selects which qubits receive twirl Paulis.
	TwirlScope = twirl.Scope
	// DDStrategy selects a dynamical-decoupling policy.
	DDStrategy = dd.Strategy
	// DDOptions configure a DD pass.
	DDOptions = dd.Options
	// ECOptions configure a CA-EC pass.
	ECOptions = caec.Options
)

// Executor types.
type (
	// Executor runs jobs compiled through a pipeline on a device.
	Executor = exec.Executor
	// Job is one unit of executor work.
	Job = exec.Job
	// ExecOptions configure a twirl-averaged execution.
	ExecOptions = exec.RunOptions
	// ExecResult aggregates a job's instances.
	ExecResult = exec.Result
)

// Experiment-service types: the content-addressed result store, the sweep
// scheduler over it, and the HTTP serving layer.
type (
	// ResultStore is the two-tier (memory LRU + disk) content-addressed
	// result cache.
	ResultStore = store.Store
	// StoreKey is the SHA-256 content address of one cached result.
	StoreKey = store.Key
	// StoreStats snapshots the store's cache counters.
	StoreStats = store.Stats
	// FigureCache computes figures through the store: repeated requests
	// for one configuration are answered bit-identically without
	// recomputation.
	FigureCache = sweep.Cache
	// SweepCell is one concrete (experiment, options) unit of sweep work.
	SweepCell = sweep.Cell
	// SweepGrid declares the option axes of a sweep.
	SweepGrid = sweep.Grid
	// SweepSpec is a sweep request: experiment ids × an option grid.
	SweepSpec = sweep.Spec
	// SweepRunner schedules sweep cells with bounded concurrency and
	// checkpoint/resume through the store.
	SweepRunner = sweep.Runner
	// SweepRun is one scheduled sweep execution.
	SweepRun = sweep.Run
	// SweepProgress snapshots a sweep's completion state.
	SweepProgress = sweep.Progress
	// ExperimentSpec is one experiment's declarative catalog entry.
	ExperimentSpec = experiments.Spec
	// ExperimentAxis is one named parameter dimension of an experiment.
	ExperimentAxis = experiments.Axis
	// Server answers catalog, figure, and sweep requests over HTTP.
	Server = serve.Server
	// ServerConfig assembles a hardened Server: rate limiting, bounded
	// sweep admission, history TTL, drain timeout, and an optional fabric
	// coordinator.
	ServerConfig = serve.Config
)

// Distributed sweep fabric: the coordinator/worker job queue that shards
// a sweep across processes and machines through the shared store.
type (
	// StoreBackend is the persistence tier behind the store's LRU: disk,
	// in-memory, or a remote store over HTTP.
	StoreBackend = store.Backend
	// FabricCoordinator owns the distributed job queue: cells are leased
	// to workers, expired leases requeue, results aggregate into
	// SweepProgress.
	FabricCoordinator = fabric.Coordinator
	// FabricOptions configure a coordinator (lease TTL).
	FabricOptions = fabric.Options
	// FabricWorker claims cells from a coordinator, computes them through
	// the shared store, and reports completion under a heartbeat.
	FabricWorker = fabric.Worker
	// FabricSweep is one distributed sweep: the fabric-side counterpart
	// of SweepRun with the same progress surface.
	FabricSweep = fabric.Sweep
	// FabricStats snapshots the coordinator's queue and fleet counters.
	FabricStats = fabric.Stats
)

// Observability: the dependency-free metrics registry and span tracer
// behind GET /metrics and `casq -trace`.
type (
	// ObsRegistry is a concurrent metrics registry — sharded counters,
	// gauges, fixed-bucket latency histograms — rendered in Prometheus
	// text exposition format.
	ObsRegistry = obs.Registry
	// Tracer records timing spans across compile passes, executor
	// instances, engine shot blocks, and sweep cells. A nil *Tracer is
	// the canonical disabled tracer: every operation on it is a
	// zero-allocation no-op, so hot paths thread it unconditionally.
	Tracer = obs.Tracer
	// TraceSpan is an open span handle (a value type; End records it).
	TraceSpan = obs.Span
	// TraceEvent is one completed span on a tracer's monotonic clock.
	TraceEvent = obs.TraceEvent
	// PromSample is one parsed Prometheus exposition line (name, labels,
	// value), as returned by ParseProm over a /metrics scrape.
	PromSample = obs.Sample
)

// NewTracer returns an enabled span tracer; write its spans with
// Tracer.WriteChromeTrace (the `casq -trace out.json` format, loadable
// in chrome://tracing or Perfetto).
func NewTracer() *Tracer { return obs.NewTracer() }

// MetricsRegistry returns the process-wide default metrics registry the
// engine layers (store, exec, layout, sweep, fabric) record into; `casq
// serve` appends it to GET /metrics after its per-server registry.
func MetricsRegistry() *ObsRegistry { return obs.Default() }

// Error-correlation spectroscopy: two-point statistics of outcome flips,
// estimated word-parallel from packed bit planes.
type (
	// CorrelationMatrix holds per-qubit flip rates and per-pair
	// covariance/correlation estimates with jackknife standard errors,
	// reduced directly from PackedBits planes by word-parallel popcounts.
	CorrelationMatrix = correl.Matrix
	// CorrelationPair is one thresholded pair of a sparse correlation
	// matrix: indices, correlation, and its standard error.
	CorrelationPair = correl.PairStat
	// CorrelationDecayBin is the mean |corr| of all pairs at one
	// coupling-graph distance.
	CorrelationDecayBin = correl.DecayBin
	// CorrelationReport is the serve-layer spectroscopy diagnostic: flip
	// rates, thresholded pairs, and the distance-binned decay profile for
	// one backend and strategy.
	CorrelationReport = experiments.CorrelationReport
)

// EstimateCorrelations reduces packed outcome planes to the full
// correlation matrix of bit flips — marginals, pair covariances and
// correlations, and delete-one-block jackknife standard errors — without
// ever unpacking shots to bytes: all pair counts come from word-parallel
// popcount identities over the bit planes.
func EstimateCorrelations(pb PackedBits) CorrelationMatrix { return correl.Estimate(pb) }

// PackedBitsFromCounts expands a bitstring-counts map (the statevector
// kernel's output format) into packed bit planes, so counts-only results
// feed EstimateCorrelations too.
func PackedBitsFromCounts(counts map[string]int, nBits int) PackedBits {
	return correl.PackedFromCounts(counts, nBits)
}

// CorrelationDiagnostic computes the spectroscopy report for a registry
// backend under one strategy name ("" = twirled) — the computation behind
// the server's GET /backends/{id}/correlations endpoint.
func CorrelationDiagnostic(backend, strategy string, opts ExperimentOptions) (CorrelationReport, error) {
	return experiments.CorrelationDiagnostic(backend, strategy, opts)
}

// Compatibility types for the pre-redesign compiler API.
type (
	// Strategy is a named error-suppression configuration; lower it to a
	// Pipeline with Build or Strategy.Pipeline.
	Strategy = core.Strategy
	// Compiler applies a strategy's pass pipeline (compat wrapper).
	Compiler = core.Compiler
	// RunOptions configure twirl-averaged execution through a Compiler.
	RunOptions = core.RunOptions
)

// Layer kinds.
const (
	OneQubitLayer = circuit.OneQubitLayer
	TwoQubitLayer = circuit.TwoQubitLayer
	MeasureLayer  = circuit.MeasureLayer
	TwirlLayer    = circuit.TwirlLayer
)

// DD strategies.
const (
	DDNone         = dd.None
	DDAligned      = dd.Aligned
	DDStaggered    = dd.Staggered
	DDContextAware = dd.ContextAware
)

// Twirl scopes.
const (
	TwirlGatesOnly = twirl.GatesOnly
	TwirlAllQubits = twirl.AllQubits
)

// Simulation engines (ExecOptions.Engine, ExperimentOptions.Engine, the
// sweep Grid's Engines axis, and the serve layer's engine= parameter).
const (
	EngineStatevector = exec.EngineStatevector
	EngineStab        = exec.EngineStab
	EngineAuto        = exec.EngineAuto
)

// EngineNames lists the selectable simulation engines.
func EngineNames() []string { return exec.EngineNames() }

// NewStabEngine returns the stabilizer/Pauli-frame engine for the device
// and config: the backend that simulates full-scale twirled circuits —
// 127 qubits and beyond — which the 2^n statevector cannot hold. It
// implements SimEngine; the executor dispatches to it via
// ExecOptions.Engine ("stab" forced, "auto" when representable).
func NewStabEngine(dev *Device, cfg SimConfig) *StabEngine { return stab.New(dev, cfg) }

// StabSupports reports (by nil error) whether the circuit is
// twirl-representable — every gate Clifford up to "ec"-tagged virtual-Z
// residuals — and therefore runnable on the stabilizer engine.
func StabSupports(c *Circuit) error { return stab.Supports(c) }

// NewCircuit returns an empty layered circuit.
func NewCircuit(nQubits, nCBits int) *Circuit { return circuit.New(nQubits, nCBits) }

// DefaultDeviceOptions returns calibration ranges representative of the
// paper's fixed-frequency cross-resonance backends.
func DefaultDeviceOptions() DeviceOptions { return device.DefaultOptions() }

// NewLineDevice builds a synthetic linear-topology device.
func NewLineDevice(name string, n int, opts DeviceOptions) *Device {
	return device.NewLine(name, n, opts)
}

// NewRingDevice builds a synthetic ring device (the Heisenberg-ring layout).
func NewRingDevice(name string, n int, opts DeviceOptions) *Device {
	return device.NewRing(name, n, opts)
}

// Backend registry, topology families, and calibration snapshots.

// Backends lists the named backend registry, ordered by size.
func Backends() []BackendInfo { return device.Backends() }

// NewBackend builds a named registry backend (see Backends).
func NewBackend(name string) (*Device, error) { return device.NewBackend(name) }

// RegisterBackend adds a custom named backend to the registry; the builder
// must be deterministic.
func RegisterBackend(info BackendInfo, build func() *Device) {
	device.RegisterBackend(info, build)
}

// HeavyHexTopology builds the parametric heavy-hex lattice: (3, 9) is a
// 29-qubit Falcon-class patch, (7, 15) the 127-qubit Eagle lattice.
func HeavyHexTopology(name string, rows, cols int) Topology {
	return device.HeavyHexTopology(name, rows, cols)
}

// GridTopology builds a rows x cols square-lattice topology.
func GridTopology(name string, rows, cols int) Topology {
	return device.GridTopology(name, rows, cols)
}

// SynthesizeDevice materializes a topology with a seeded synthetic
// calibration.
func SynthesizeDevice(t Topology, opts DeviceOptions) *Device {
	return device.Synthesize(t, opts)
}

// SnapshotDevice exports a device (topology + calibration) in canonical
// JSON-serializable form; DeviceFromSnapshot(d.Snapshot()) rebuilds it
// bit-identically (same Fingerprint).
func SnapshotDevice(d *Device) DeviceSnapshot { return d.Snapshot() }

// DeviceFromSnapshot rebuilds a validated device from a snapshot.
func DeviceFromSnapshot(s DeviceSnapshot) (*Device, error) { return device.FromSnapshot(s) }

// PerturbDevice returns a copy of the device with every calibration value
// drifted by up to ±drift (deterministic in seed) — the scenario-sweep
// knob for asking whether a pipeline survives a stale calibration.
func PerturbDevice(d *Device, seed int64, drift float64) *Device {
	return d.Perturb(seed, drift)
}

// Layout and routing: the context-aware placement stage.

// DefaultLayoutOptions returns the standard candidate-search bounds.
func DefaultLayoutOptions() LayoutOptions { return layout.DefaultOptions() }

// ChooseLayout selects the minimal-predicted-coherent-error embedding of
// the circuit into the backend, scored by the same toggling-frame
// integrals CA-EC compensates. The Placement carries the induced
// sub-device, so simulation cost scales with the circuit, not the backend.
func ChooseLayout(dev *Device, c *Circuit, opts LayoutOptions) (*Placement, error) {
	return layout.Choose(dev, c, opts)
}

// ChooseLayoutWith is ChooseLayout plus the search telemetry: candidate
// counts, the surrogate pruning ratio, exact vs predicted scores, and
// throughput. The result is bit-deterministic at any Workers setting.
func ChooseLayoutWith(dev *Device, c *Circuit, opts LayoutOptions) (*Placement, *LayoutSearchReport, error) {
	return layout.ChooseWith(dev, c, opts)
}

// NewLayoutMonitor compiles the circuit onto the backend and watches the
// deployed placement: DriftLayout events re-score it against perturbed
// calibration (surrogate first, exact past the gate) and recompile only
// when the exact score exceeds the threshold ratio of the baseline.
func NewLayoutMonitor(dev *Device, c *Circuit, opts LayoutMonitorOptions) (*LayoutMonitor, error) {
	return layout.NewMonitor(dev, c, opts)
}

// PathProbe builds the standard brickwork line probe circuit used by the
// drift service: n qubits, depth alternating even/odd ECR layers.
func PathProbe(n, depth int) *Circuit { return layout.PathProbe(n, depth) }

// LayoutPass returns the layout-selection pass for pipeline composition:
// it rewrites the circuit onto the chosen physical qubits of the
// pipeline's device.
func LayoutPass(opts LayoutOptions) Pass { return layout.Select(opts) }

// RoutePass returns the SWAP-routing pass: non-adjacent two-qubit gates
// get shortest-path SWAP chains, and later instructions (including
// measurements) are rewritten through the wire permutation.
func RoutePass() Pass { return layout.Route() }

// Strategies benchmarked in the paper.
var (
	// Bare applies scheduling only.
	Bare = core.Bare
	// Twirled applies Pauli twirling only.
	Twirled = core.Twirled
	// WithDD applies twirling plus a DD strategy.
	WithDD = core.WithDD
	// CADD is context-aware dynamical decoupling (Algorithm 1).
	CADD = core.CADD
	// CAEC is context-aware error compensation (Algorithm 2).
	CAEC = core.CAEC
	// Combined applies CA-DD first and CA-EC on the remainder.
	Combined = core.Combined
)

// NewPipeline composes passes into a named pipeline. Orderings the fixed
// strategies cannot express — EC before DD, double twirling, DD without
// twirling — are all valid.
func NewPipeline(name string, passes ...Pass) Pipeline {
	return pass.New(name, passes...)
}

// Build lowers a named strategy to its canned pass pipeline.
func Build(st Strategy) Pipeline { return st.Pipeline() }

// TwirlPass returns a pass sampling one Pauli-twirl instance.
func TwirlPass(scope TwirlScope) Pass { return pass.Twirl(scope) }

// SchedulePass returns the scheduling pass; DD and EC passes consume layer
// timing, so a SchedulePass must precede them.
func SchedulePass() Pass { return pass.Schedule() }

// DDPass returns a dynamical-decoupling insertion pass.
func DDPass(opts DDOptions) Pass { return pass.DD(opts) }

// ECPass returns a context-aware error-compensation pass.
func ECPass(opts ECOptions) Pass { return pass.EC(opts) }

// DefaultDDOptions returns the context-aware DD configuration.
func DefaultDDOptions() DDOptions { return dd.DefaultOptions() }

// DefaultECOptions returns the default CA-EC configuration.
func DefaultECOptions() ECOptions { return caec.DefaultOptions() }

// Compile applies a pipeline to one twirl instance of the circuit with a
// deterministic seed, returning the compiled circuit and the pass report.
func Compile(dev *Device, pl Pipeline, c *Circuit, seed int64) (*Circuit, Report, error) {
	return pl.Apply(dev, rand.New(rand.NewSource(seed)), c)
}

// NewExecutor returns a concurrent executor running the pipeline on the
// device. Results are bit-identical for any worker count.
func NewExecutor(dev *Device, pl Pipeline) *Executor { return exec.New(dev, pl) }

// NewCompiler returns a compiler for the device and strategy with a
// deterministic twirl sampler (compat wrapper over Build + NewExecutor).
func NewCompiler(dev *Device, st Strategy, seed int64) *Compiler {
	return core.New(dev, st, seed)
}

// Schedule assigns start times and durations to a circuit's layers for the
// device, returning the total duration in ns.
func Schedule(c *Circuit, dev *Device) float64 { return sched.Schedule(c, dev) }

// TwirlInstance samples one Pauli-twirl instance of the circuit.
func TwirlInstance(c *Circuit, rng *rand.Rand) (*Circuit, error) {
	return twirl.Instance(c, twirl.GatesOnly, rng)
}

// DefaultSimConfig enables every noise channel.
func DefaultSimConfig() SimConfig { return sim.DefaultConfig() }

// IdealSimConfig disables all noise.
func IdealSimConfig() SimConfig { return sim.Ideal() }

// Simulate runs the scheduled circuit on the device and returns measured
// bitstring counts.
func Simulate(dev *Device, cfg SimConfig, c *Circuit) (map[string]int, error) {
	r := sim.New(dev, cfg)
	res, err := r.Counts(c)
	if err != nil {
		return nil, err
	}
	return res.Counts, nil
}

// Expectations runs the scheduled circuit and returns trajectory-averaged
// expectation values of the observables.
func Expectations(dev *Device, cfg SimConfig, c *Circuit, obs []Observable) ([]float64, error) {
	return sim.New(dev, cfg).Expectations(c, obs)
}

// RunExperiment regenerates one of the paper's figures/tables by id (see
// ExperimentIDs).
func RunExperiment(id string, opts ExperimentOptions) (Figure, error) {
	return experiments.Run(id, opts)
}

// ExperimentIDs lists the available paper experiments.
func ExperimentIDs() []string { return experiments.IDs() }

// ExperimentCatalog returns every experiment's declarative Spec — id,
// title, paper anchor, strategies, and parameter axes — in paper order.
func ExperimentCatalog() []ExperimentSpec { return experiments.Catalog() }

// LookupExperiment returns one experiment's declaration.
func LookupExperiment(id string) (ExperimentSpec, bool) { return experiments.Lookup(id) }

// OpenResultStore opens the content-addressed result cache rooted at dir
// (empty dir = memory-only; memCapacity <= 0 = default LRU capacity).
func OpenResultStore(dir string, memCapacity int) (*ResultStore, error) {
	return store.Open(dir, memCapacity)
}

// OpenResultStoreWith opens the result cache over an explicit backend
// (nil = memory-only): NewDiskBackend, NewMemBackend, or
// NewHTTPStoreBackend.
func OpenResultStoreWith(b StoreBackend, memCapacity int) *ResultStore {
	return store.OpenWith(b, memCapacity)
}

// NewDiskBackend returns the JSON-file store backend rooted at dir
// (atomic temp+rename writes).
func NewDiskBackend(dir string) (StoreBackend, error) { return store.NewDisk(dir) }

// NewMemBackend returns an unbounded in-memory store backend.
func NewMemBackend() StoreBackend { return store.NewMem() }

// NewHTTPStoreBackend returns a backend reading and writing a remote
// store served by StoreHandler at base (nil client = DefaultClient) —
// how fabric workers share their coordinator's store.
func NewHTTPStoreBackend(base string, client *http.Client) StoreBackend {
	return store.NewHTTP(base, client)
}

// StoreHandler serves a store over HTTP (GET/PUT /store/{key}) for
// NewHTTPStoreBackend peers.
func StoreHandler(st *ResultStore) http.Handler { return store.Handler(st) }

// NewFabricCoordinator returns a coordinator scheduling sweep cells
// against the shared store; mount its Handler (or attach it to a Server
// via ServerConfig.Coordinator) and point FabricWorkers at it.
func NewFabricCoordinator(st *ResultStore, opts FabricOptions) *FabricCoordinator {
	return fabric.NewCoordinator(st, opts)
}

// NewFabricWorker returns a worker computing against the coordinator at
// base, sharing its store through the remote HTTP backend with a local
// LRU tier of memCapacity entries.
func NewFabricWorker(base string, memCapacity int) *FabricWorker {
	return fabric.NewWorker(base, memCapacity)
}

// Fingerprint computes the canonical content address of a request
// descriptor; it is invariant under struct field reordering.
func Fingerprint(v any) (StoreKey, error) { return store.Fingerprint(v) }

// NewFigureCache returns the compute-or-cached figure layer over a store.
func NewFigureCache(st *ResultStore) *FigureCache { return sweep.NewCache(st) }

// NewSweepRunner returns a scheduler running sweep cells through the
// cache with bounded concurrency (workers <= 0 means GOMAXPROCS).
func NewSweepRunner(cache *FigureCache, workers int) *SweepRunner {
	return &sweep.Runner{Cache: cache, Workers: workers}
}

// NewServer returns the HTTP experiment service over a figure cache; wire
// Server.Handler into net/http (the `casq serve` subcommand does exactly
// this).
func NewServer(cache *FigureCache, sweepWorkers int) *Server {
	return serve.New(cache, sweepWorkers)
}

// NewServerWith returns the experiment service assembled from an explicit
// ServerConfig — rate limiting, bounded admission, graceful drain, and
// (optionally) a fabric coordinator so sweeps shard across workers.
func NewServerWith(cfg ServerConfig) *Server { return serve.NewWith(cfg) }

// DefaultExperimentOptions is the full-quality configuration.
func DefaultExperimentOptions() ExperimentOptions { return experiments.DefaultOptions() }

// FastExperimentOptions is a reduced configuration for quick runs.
func FastExperimentOptions() ExperimentOptions { return experiments.FastOptions() }
