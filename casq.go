// Package casq (Context-Aware Suppression of correlated noise in Quantum
// circuits) is a Go reproduction of "Suppressing Correlated Noise in Quantum
// Computers via Context-Aware Compiling" (Seif et al., ISCA 2024,
// arXiv:2403.06852).
//
// It provides, from scratch and stdlib-only:
//
//   - a layered quantum-circuit IR with scheduling, Pauli twirling, and a
//     gate library (ECR, CX, RZZ, the canonical gate Ucan, ZXZXZ Euler
//     decomposition);
//   - a device model with the calibration data the paper's passes consume
//     (always-on ZZ, Stark shifts, charge parity, NNN collision edges,
//     coherence times, gate errors/durations);
//   - the two compiler passes of the paper: Context-Aware Dynamical
//     Decoupling (Algorithm 1, Walsh–Hadamard sequences on a constrained
//     graph coloring) and Context-Aware Error Compensation (Algorithm 2,
//     virtual-Rz/ZZ-absorption with twirl-aware sign tracking and
//     measurement-conditioned corrections);
//   - a trajectory statevector simulator substituting for the paper's IBM
//     hardware, with the echoed-CR pulse context modeled so DD alignment
//     effects emerge from the dynamics;
//   - experiment harnesses regenerating every figure and table of the
//     paper's evaluation (internal/experiments, cmd/experiments).
//
// This facade re-exports the pieces a downstream user needs; the full
// functionality lives in the internal packages.
package casq

import (
	"math/rand"

	"casq/internal/caec"
	"casq/internal/circuit"
	"casq/internal/core"
	"casq/internal/dd"
	"casq/internal/device"
	"casq/internal/experiments"
	"casq/internal/sched"
	"casq/internal/sim"
	"casq/internal/twirl"
)

// Core circuit and device types.
type (
	// Circuit is the layered circuit IR.
	Circuit = circuit.Circuit
	// Layer is one layer of simultaneous instructions.
	Layer = circuit.Layer
	// Instruction is a single gate or pseudo-op.
	Instruction = circuit.Instruction
	// Device is the hardware model with calibration data.
	Device = device.Device
	// DeviceOptions configure synthetic backend generation.
	DeviceOptions = device.Options
	// Strategy is an error-suppression configuration.
	Strategy = core.Strategy
	// Compiler applies a strategy's pass pipeline.
	Compiler = core.Compiler
	// SimConfig toggles the simulator's noise channels.
	SimConfig = sim.Config
	// Observable is a Pauli observable specification.
	Observable = sim.ObsSpec
	// DDStrategy selects a dynamical-decoupling policy.
	DDStrategy = dd.Strategy
	// ECOptions configure the CA-EC pass.
	ECOptions = caec.Options
	// RunOptions configure twirl-averaged execution.
	RunOptions = core.RunOptions
	// ExperimentOptions control the paper-figure harnesses.
	ExperimentOptions = experiments.Options
	// Figure is a regenerated paper figure.
	Figure = experiments.Figure
)

// Layer kinds.
const (
	OneQubitLayer = circuit.OneQubitLayer
	TwoQubitLayer = circuit.TwoQubitLayer
	MeasureLayer  = circuit.MeasureLayer
	TwirlLayer    = circuit.TwirlLayer
)

// DD strategies.
const (
	DDNone         = dd.None
	DDAligned      = dd.Aligned
	DDStaggered    = dd.Staggered
	DDContextAware = dd.ContextAware
)

// NewCircuit returns an empty layered circuit.
func NewCircuit(nQubits, nCBits int) *Circuit { return circuit.New(nQubits, nCBits) }

// DefaultDeviceOptions returns calibration ranges representative of the
// paper's fixed-frequency cross-resonance backends.
func DefaultDeviceOptions() DeviceOptions { return device.DefaultOptions() }

// NewLineDevice builds a synthetic linear-topology device.
func NewLineDevice(name string, n int, opts DeviceOptions) *Device {
	return device.NewLine(name, n, opts)
}

// NewRingDevice builds a synthetic ring device (the Heisenberg-ring layout).
func NewRingDevice(name string, n int, opts DeviceOptions) *Device {
	return device.NewRing(name, n, opts)
}

// Strategies benchmarked in the paper.
var (
	// Bare applies scheduling only.
	Bare = core.Bare
	// Twirled applies Pauli twirling only.
	Twirled = core.Twirled
	// WithDD applies twirling plus a DD strategy.
	WithDD = core.WithDD
	// CADD is context-aware dynamical decoupling (Algorithm 1).
	CADD = core.CADD
	// CAEC is context-aware error compensation (Algorithm 2).
	CAEC = core.CAEC
	// Combined applies CA-DD first and CA-EC on the remainder.
	Combined = core.Combined
)

// NewCompiler returns a compiler for the device and strategy with a
// deterministic twirl sampler.
func NewCompiler(dev *Device, st Strategy, seed int64) *Compiler {
	return core.New(dev, st, seed)
}

// Schedule assigns start times and durations to a circuit's layers for the
// device, returning the total duration in ns.
func Schedule(c *Circuit, dev *Device) float64 { return sched.Schedule(c, dev) }

// TwirlInstance samples one Pauli-twirl instance of the circuit.
func TwirlInstance(c *Circuit, rng *rand.Rand) (*Circuit, error) {
	return twirl.Instance(c, twirl.GatesOnly, rng)
}

// DefaultSimConfig enables every noise channel.
func DefaultSimConfig() SimConfig { return sim.DefaultConfig() }

// IdealSimConfig disables all noise.
func IdealSimConfig() SimConfig { return sim.Ideal() }

// Simulate runs the scheduled circuit on the device and returns measured
// bitstring counts.
func Simulate(dev *Device, cfg SimConfig, c *Circuit) (map[string]int, error) {
	r := sim.New(dev, cfg)
	res, err := r.Counts(c)
	if err != nil {
		return nil, err
	}
	return res.Counts, nil
}

// Expectations runs the scheduled circuit and returns trajectory-averaged
// expectation values of the observables.
func Expectations(dev *Device, cfg SimConfig, c *Circuit, obs []Observable) ([]float64, error) {
	return sim.New(dev, cfg).Expectations(c, obs)
}

// RunExperiment regenerates one of the paper's figures/tables by id (see
// ExperimentIDs).
func RunExperiment(id string, opts ExperimentOptions) (Figure, error) {
	return experiments.Run(id, opts)
}

// ExperimentIDs lists the available paper experiments.
func ExperimentIDs() []string { return experiments.IDs() }

// DefaultExperimentOptions is the full-quality configuration.
func DefaultExperimentOptions() ExperimentOptions { return experiments.DefaultOptions() }

// FastExperimentOptions is a reduced configuration for quick runs.
func FastExperimentOptions() ExperimentOptions { return experiments.FastOptions() }
