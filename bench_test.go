// Package casq_test benchmarks the regeneration of every table and figure
// in the paper's evaluation (one benchmark per table/figure, plus ablation
// benches for the design choices called out in DESIGN.md). The benchmarks
// use the reduced Fast configuration so a -bench=. sweep stays tractable;
// cmd/experiments regenerates the full-quality numbers recorded in
// EXPERIMENTS.md.
package casq_test

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"casq"
	"casq/internal/caec"
	"casq/internal/circuit"
	"casq/internal/correl"
	"casq/internal/dd"
	"casq/internal/device"
	"casq/internal/exec"
	"casq/internal/experiments"
	"casq/internal/gates"
	"casq/internal/layerfid"
	"casq/internal/layout"
	"casq/internal/models"
	"casq/internal/pass"
	"casq/internal/sched"
	"casq/internal/sim"
	"casq/internal/stab"
	"casq/internal/twirl"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	opts := experiments.FastOptions()
	opts.Shots = 16
	opts.Instances = 2
	opts.MaxDepth = 3
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per paper table/figure.

func BenchmarkFig3cCaseI(b *testing.B)        { benchExperiment(b, "fig3c") }
func BenchmarkFig3dCaseII(b *testing.B)       { benchExperiment(b, "fig3d") }
func BenchmarkFig3eCaseIII(b *testing.B)      { benchExperiment(b, "fig3e") }
func BenchmarkFig3fCaseIV(b *testing.B)       { benchExperiment(b, "fig3f") }
func BenchmarkFig4aStark(b *testing.B)        { benchExperiment(b, "fig4a") }
func BenchmarkFig4bParity(b *testing.B)       { benchExperiment(b, "fig4b") }
func BenchmarkFig4cNNN(b *testing.B)          { benchExperiment(b, "fig4c") }
func BenchmarkFig5Coloring(b *testing.B)      { benchExperiment(b, "fig5") }
func BenchmarkFig6Ising(b *testing.B)         { benchExperiment(b, "fig6") }
func BenchmarkFig7cHeisenberg(b *testing.B)   { benchExperiment(b, "fig7c") }
func BenchmarkFig7dOverhead(b *testing.B)     { benchExperiment(b, "fig7d") }
func BenchmarkFig8LayerFidelity(b *testing.B) { benchExperiment(b, "fig8") }
func BenchmarkFig9Dynamic(b *testing.B)       { benchExperiment(b, "fig9") }
func BenchmarkFig10Combined(b *testing.B)     { benchExperiment(b, "fig10") }
func BenchmarkTableI(b *testing.B)            { benchExperiment(b, "table1") }

// Component benchmarks: the compiler passes and the simulator on a
// representative workload.

func benchWorkload() (*device.Device, *circuit.Circuit) {
	opts := device.DefaultOptions()
	dev := device.NewLine("bench", 6, opts)
	c := models.BuildFloquetIsing(6, 4)
	return dev, c
}

func BenchmarkCompileCADD(b *testing.B) {
	dev, c := benchWorkload()
	pl := pass.CADD()
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := pl.Apply(dev, rng, c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompileCAEC(b *testing.B) {
	dev, c := benchWorkload()
	pl := pass.CAEC()
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := pl.Apply(dev, rng, c); err != nil {
			b.Fatal(err)
		}
	}
}

// Executor benchmarks: the same twirl-averaged job run serially (Workers=1
// is a fully serial budget under the unified worker-budget model) and
// fanned out across GOMAXPROCS. The simulator's own shot-level parallelism
// is pinned to one thread in both so the comparison isolates
// instance-level fan-out.

func benchExecutorJob() (*exec.Executor, exec.Job) {
	dev, c := benchWorkload()
	cfg := sim.DefaultConfig()
	cfg.Shots = 96
	cfg.Workers = 1
	return exec.New(dev, pass.Combined()), exec.Job{
		Circuit:     c,
		Observables: []sim.ObsSpec{{0: 'X', 5: 'X'}},
		Opts:        exec.RunOptions{Instances: 12, Seed: 3, Cfg: cfg},
	}
}

func BenchmarkExecutorSerial(b *testing.B) {
	ex, job := benchExecutorJob()
	job.Opts.Workers = 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Run(context.Background(), job); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecutorParallel(b *testing.B) {
	ex, job := benchExecutorJob()
	job.Opts.Workers = 0 // GOMAXPROCS
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Run(context.Background(), job); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulator6Q(b *testing.B) {
	dev, c := benchWorkload()
	sched.Schedule(c, dev)
	cfg := sim.DefaultConfig()
	cfg.Shots = 16
	cfg.Workers = 1
	r := sim.New(dev, cfg)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.Expectations(c, []sim.ObsSpec{{0: 'X', 5: 'X'}}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulator12Q(b *testing.B) {
	opts := device.DefaultOptions()
	dev := device.NewRing("bench12", 12, opts)
	c := models.BuildHeisenbergRing(12, 2, models.DefaultHeisenberg())
	sched.Schedule(c, dev)
	cfg := sim.DefaultConfig()
	cfg.Shots = 4
	cfg.Workers = 1
	r := sim.New(dev, cfg)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.Expectations(c, []sim.ObsSpec{{2: 'Z'}}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTwirlInstance(b *testing.B) {
	_, c := benchWorkload()
	rng := rand.New(rand.NewSource(3))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := twirl.Instance(c, twirl.AllQubits, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation benches for the design choices listed in DESIGN.md.

// BenchmarkAblationWalshLevels compares the pulse count of increasing Walsh
// palette sizes on the Fig. 5 fragment.
func BenchmarkAblationWalshLevels(b *testing.B) {
	devOpts := device.DefaultOptions()
	dev := device.NewHeavyHexFragment(devOpts)
	build := func() *circuit.Circuit {
		c := circuit.New(6, 0)
		prep := c.AddLayer(circuit.OneQubitLayer)
		for q := 0; q < 6; q++ {
			prep.H(q)
		}
		idle := c.AddLayer(circuit.TwoQubitLayer)
		for q := 0; q < 6; q++ {
			idle.Add(circuit.Instruction{Gate: gates.Delay, Qubits: []int{q}, Params: []float64{2000}})
		}
		return c
	}
	for i := 0; i < b.N; i++ {
		for _, colors := range []int{4, 8, 16} {
			c := build()
			sched.Schedule(c, dev)
			o := dd.DefaultOptions()
			o.MaxColors = colors
			rep, err := dd.Insert(c, dev, o)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("palette %d colors -> %d pulses", colors, rep.Total)
			}
		}
	}
}

// BenchmarkAblationECMiscalibration measures CA-EC's sensitivity to
// mis-characterized ZZ rates: the compiler compensates using rates scaled
// away from the simulator's truth.
func BenchmarkAblationECMiscalibration(b *testing.B) {
	opts := device.DefaultOptions()
	opts.DeltaMax = 0
	opts.QuasistaticSigma = 0
	opts.Err1Q, opts.Err2Q, opts.ReadoutErr = 0, 0, 0
	// T1 = 0 now simply disables relaxation (the old T1Min=1e12 workaround
	// papered over a divide-by-zero in the pure-dephasing rate).
	opts.T1Min, opts.T1Max = 0, 0
	opts.RotaryResidual = 0
	truth := device.NewLine("truth", 4, opts)
	for i := 0; i < b.N; i++ {
		for _, scale := range []float64{1.0, 1.1, 1.3} {
			believed := device.NewLine("believed", 4, opts)
			for e := range believed.ZZ {
				believed.ZZ[e] = truth.ZZ[e] * scale
			}
			// Even depth: the ideal boundary correlator is exactly -1, so
			// the compensated value directly reads out residual error.
			c := models.BuildFloquetIsing(4, 2)
			sched.Schedule(c, believed)
			ecOpts := caec.DefaultOptions()
			ecOpts.MaterializeMin = 0
			compiled, _, err := caec.Apply(c, believed, ecOpts)
			if err != nil {
				b.Fatal(err)
			}
			cfg := sim.CoherentOnly(1)
			cfg.Workers = 1
			vals, err := sim.New(truth, cfg).Expectations(compiled, []sim.ObsSpec{{0: 'X', 3: 'X'}})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("ZZ miscalibration x%.1f -> <X0X3> = %.4f (ideal -1)", scale, vals[0])
			}
		}
	}
}

// BenchmarkAblationStretchedRZZ compares the error cost of a
// pulse-stretched native RZZ correction against composing it from two CX
// gates (modeled as two full-error 2q gates).
func BenchmarkAblationStretchedRZZ(b *testing.B) {
	opts := device.DefaultOptions()
	dev := device.NewLine("stretch", 2, opts)
	theta := 0.3
	for i := 0; i < b.N; i++ {
		// Stretched: single RZZ layer.
		cs := circuit.New(2, 0)
		cs.AddLayer(circuit.OneQubitLayer).H(0).H(1)
		cs.AddLayer(circuit.TwoQubitLayer).RZZ(0, 1, theta)
		sched.Schedule(cs, dev)
		// Two-CX construction: CX . Rz . CX.
		cc := circuit.New(2, 0)
		cc.AddLayer(circuit.OneQubitLayer).H(0).H(1)
		cc.AddLayer(circuit.TwoQubitLayer).CX(0, 1)
		cc.AddLayer(circuit.OneQubitLayer).RZ(1, theta)
		cc.AddLayer(circuit.TwoQubitLayer).CX(0, 1)
		sched.Schedule(cc, dev)
		cfg := sim.DefaultConfig()
		cfg.Shots = 64
		obs := []sim.ObsSpec{{0: 'X'}}
		vs, err := sim.New(dev, cfg).Expectations(cs, obs)
		if err != nil {
			b.Fatal(err)
		}
		vc, err := sim.New(dev, cfg).Expectations(cc, obs)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("stretched rzz dur=%.0fns vs 2xCX dur=%.0fns; <X0>: %.4f vs %.4f",
				cs.TotalDuration(), cc.TotalDuration(), vs[0], vc[0])
		}
	}
}

// BenchmarkAblationStaggeredVsCA quantifies the value of echo-aware
// coloring: staggered-by-index DD on a control spectator vs CA-DD.
func BenchmarkAblationStaggeredVsCA(b *testing.B) {
	devOpts := device.DefaultOptions()
	devOpts.Seed = 41
	dev := models.RamseyDevice(models.CaseControlSpectator, devOpts)
	for i := 0; i < b.N; i++ {
		for _, st := range []dd.Strategy{dd.Staggered, dd.ContextAware} {
			spec := models.BuildRamsey(models.CaseControlSpectator, 6, 500)
			sched.Schedule(spec.Circuit, dev)
			o := dd.DefaultOptions()
			o.Strategy = st
			if _, err := dd.Insert(spec.Circuit, dev, o); err != nil {
				b.Fatal(err)
			}
			cfg := sim.CoherentOnly(1)
			cfg.Workers = 1
			vals, err := sim.New(dev, cfg).Expectations(spec.Circuit, []sim.ObsSpec{{spec.Probes[0]: 'X'}})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("%v: spectator <X> = %.5f", st, vals[0])
			}
		}
	}
}

// BenchmarkFacadeQuickstart exercises the public API end to end:
// pipeline build, executor, and the compat compiler wrapper.
func BenchmarkFacadeQuickstart(b *testing.B) {
	dev := casq.NewLineDevice("facade", 4, casq.DefaultDeviceOptions())
	for i := 0; i < b.N; i++ {
		c := casq.NewCircuit(4, 0)
		c.AddLayer(casq.OneQubitLayer).H(0).H(3)
		c.AddLayer(casq.TwoQubitLayer).ECR(1, 2)
		ex := casq.NewExecutor(dev, casq.Build(casq.Combined()))
		cfg := casq.DefaultSimConfig()
		cfg.Shots = 16
		vals, err := ex.Expectations(context.Background(), c, []casq.Observable{{0: 'X'}},
			casq.ExecOptions{Instances: 2, Seed: 7, Cfg: cfg})
		if err != nil {
			b.Fatal(err)
		}
		if math.IsNaN(vals[0]) {
			b.Fatal("NaN expectation")
		}
	}
}

// stab127Workload builds the full-127-qubit layer-fidelity workload: the
// Eagle lattice, a maximal ECR tiling, and a depth-4 twirl-representable
// probe circuit.
func stab127Workload(b *testing.B) (*device.Device, *circuit.Circuit) {
	b.Helper()
	dev, err := device.NewBackend("eagle127")
	if err != nil {
		b.Fatal(err)
	}
	layer := layerfid.TiledLayer(dev)
	c := circuit.New(dev.NQubits, 0)
	prep := c.AddLayer(circuit.OneQubitLayer)
	for _, in := range layer.TwoQubitGates() {
		prep.H(in.Qubits[0])
	}
	for d := 0; d < 4; d++ {
		c.Layers = append(c.Layers, layer.Clone())
	}
	return dev, c
}

// BenchmarkStabilizer127Q measures the full-scale engine end to end: a
// twirled depth-4 Eagle-lattice layer circuit, compiled through the
// twirled pipeline and sampled by the stabilizer engine — the workload
// the 2^127 statevector cannot touch. CI archives it as BENCH_stab.json.
func BenchmarkStabilizer127Q(b *testing.B) {
	dev, c := stab127Workload(b)
	obs := make([]sim.ObsSpec, 0, 8)
	for _, in := range c.Layers[1].TwoQubitGates()[:8] {
		obs = append(obs, sim.ObsSpec{in.Qubits[0]: 'X'})
	}
	cfg := sim.DefaultConfig()
	cfg.Shots = 256
	cfg.Workers = 1
	ex := exec.New(dev, pass.Twirled())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		vals, err := ex.Expectations(context.Background(), c, obs,
			exec.RunOptions{Instances: 2, Workers: 1, Seed: 3, Cfg: cfg, Engine: exec.EngineStab})
		if err != nil {
			b.Fatal(err)
		}
		if math.IsNaN(vals[0]) {
			b.Fatal("NaN expectation")
		}
	}
}

// BenchmarkStabBatch127Q measures the bit-plane batched shot path on the
// full 127-qubit workload at growing shot budgets (10^3, 10^4, 10^5),
// reporting throughput as a shots/s metric — the series CI archives into
// BENCH_stab.json so the batching speedup is tracked from one PR to the
// next. The scalar sub-benchmark runs the retained per-shot reference
// path on the same compiled circuit, so shots/s(batch)/shots/s(scalar) is
// the batching speedup on this machine.
func BenchmarkStabBatch127Q(b *testing.B) {
	dev, c := stab127Workload(b)
	rng := rand.New(rand.NewSource(3))
	compiled, _, err := pass.Twirled().Apply(dev, rng, c)
	if err != nil {
		b.Fatal(err)
	}
	obs := make([]sim.ObsSpec, 0, 8)
	for _, in := range c.Layers[1].TwoQubitGates()[:8] {
		obs = append(obs, sim.ObsSpec{in.Qubits[0]: 'X'})
	}
	run := func(shots int, scalar bool) func(b *testing.B) {
		return func(b *testing.B) {
			cfg := sim.DefaultConfig()
			cfg.Shots = shots
			cfg.Workers = 1
			eng := stab.New(dev, cfg)
			eng.Scalar = scalar
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vals, err := eng.Expectations(compiled, obs)
				if err != nil {
					b.Fatal(err)
				}
				if math.IsNaN(vals[0]) {
					b.Fatal("NaN expectation")
				}
			}
			b.ReportMetric(float64(shots)*float64(b.N)/b.Elapsed().Seconds(), "shots/s")
		}
	}
	b.Run("shots=1e3", run(1_000, false))
	b.Run("shots=1e4", run(10_000, false))
	b.Run("shots=1e5", run(100_000, false))
	b.Run("scalar/shots=1e4", run(10_000, true))
}

// BenchmarkPauliChannelDerivation isolates the PTA compile stage: walking
// the 127-qubit schedule, integrating every toggling-frame error angle,
// and deriving the per-location Pauli channels plus the reference tableau
// run (no shot sampling).
func BenchmarkPauliChannelDerivation(b *testing.B) {
	dev, c := stab127Workload(b)
	sched.Schedule(c, dev)
	eng := stab.New(dev, sim.DefaultConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		inf, err := eng.Info(c)
		if err != nil {
			b.Fatal(err)
		}
		if inf.Channels == 0 {
			b.Fatal("no channels derived")
		}
	}
}

// BenchmarkLayoutRouting measures the compile path of the backend stage:
// choosing the minimal-predicted-error 6-qubit subregion of the 127-qubit
// Eagle lattice (candidate enumeration + static filter + toggling-frame
// scoring of the finalists) and routing the placed circuit. CI archives it
// as BENCH_compile.json, next to the simulator artifact.
func BenchmarkLayoutRouting(b *testing.B) {
	dev, err := device.NewBackend("heavyhex127")
	if err != nil {
		b.Fatal(err)
	}
	c := models.BuildFloquetIsing(6, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pl, err := layout.Choose(dev, c, layout.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if _, _, _, err := pl.MapCircuit(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChoose127Q measures the surrogate-pruned layout search against
// exhaustive exact scoring on the 127-qubit Eagle lattice: the pruned
// sub-benchmark runs the default three-tier search (static filter ->
// surrogate fit on a small exact batch -> exact scoring of the predicted
// top-K), the exhaustive one exact-scores every enumerated candidate. Both
// report candidates/s and choose_ms series that CI archives into
// BENCH_compile.json, so choose_ms(exhaustive)/choose_ms(pruned) is the
// pruning speedup tracked from one PR to the next. The pruned search must
// select a placement whose exact score is no worse than the exhaustive
// optimum (on this workload it finds the identical placement).
func BenchmarkChoose127Q(b *testing.B) {
	dev, err := device.NewBackend("heavyhex127")
	if err != nil {
		b.Fatal(err)
	}
	c := models.BuildFloquetIsing(6, 4)
	exhaustive := layout.DefaultOptions()
	exhaustive.NoSurrogate = true
	exhaustive.TopK = layout.DefaultMaxCandidates
	_, want, err := layout.ChooseWith(dev, c, exhaustive)
	if err != nil {
		b.Fatal(err)
	}
	bench := func(opts layout.Options, checkScore bool) func(b *testing.B) {
		return func(b *testing.B) {
			var rep *layout.SearchReport
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pl, r, err := layout.ChooseWith(dev, c, opts)
				if err != nil {
					b.Fatal(err)
				}
				rep = r
				if checkScore && pl.Score > want.BestExact {
					b.Fatalf("pruned score %.9f worse than exhaustive optimum %.9f",
						pl.Score, want.BestExact)
				}
			}
			b.ReportMetric(rep.CandidatesPerSec, "candidates/s")
			b.ReportMetric(b.Elapsed().Seconds()*1e3/float64(b.N), "choose_ms")
		}
	}
	b.Run("pruned", bench(layout.DefaultOptions(), true))
	b.Run("exhaustive", bench(exhaustive, false))
}

// BenchmarkLayoutPipeline127Q compiles the full placed pipeline
// (layout -> route -> twirl -> sched -> CA-DD) against the Eagle lattice —
// the end-to-end cost of targeting a full-scale device.
func BenchmarkLayoutPipeline127Q(b *testing.B) {
	dev, err := device.NewBackend("heavyhex127")
	if err != nil {
		b.Fatal(err)
	}
	base := pass.CADD()
	pl := pass.New("placed-cadd",
		append([]pass.Pass{layout.Select(layout.DefaultOptions()), layout.Route()}, base.Passes...)...)
	c := models.BuildFloquetIsing(6, 2)
	rng := rand.New(rand.NewSource(3))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := pl.Apply(dev, rng, c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCorrelations127Q measures the correlation-spectroscopy
// estimator at full scale: the two-point covariance/correlation matrix of
// 127 outcome planes (8001 pairs) over 10^4 shots, word-parallel XOR
// popcount reductions plus the delete-one-block jackknife, reported as a
// pairs/s metric — the series CI archives into BENCH_correl.json. The
// scalar sub-benchmark runs the retained per-shot reference estimator on
// the same planes, so pairs/s(packed)/pairs/s(scalar) is the word-level
// speedup on this machine.
func BenchmarkCorrelations127Q(b *testing.B) {
	const (
		n     = 127
		shots = 10_000
	)
	rng := rand.New(rand.NewSource(9))
	pb := sim.NewPackedBits(n, shots)
	for c := 0; c < n; c++ {
		for w := range pb.Planes[c] {
			// Sparse-ish flips (~6% rate), matching a weak-noise device.
			pb.Planes[c][w] = rng.Uint64() & rng.Uint64() & rng.Uint64() & rng.Uint64()
		}
	}
	pairs := float64(correl.Pairs(n))
	b.Run("packed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := correl.Estimate(pb)
			if m.Shots != shots {
				b.Fatal("wrong shot count")
			}
		}
		b.ReportMetric(pairs*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
	})
	b.Run("scalar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := correl.EstimateScalar(pb)
			if m.Shots != shots {
				b.Fatal("wrong shot count")
			}
		}
		b.ReportMetric(pairs*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
	})
}

// BenchmarkFigC1Decay regenerates the correlation-decay figure under the
// reduced configuration, like every other figure benchmark.
func BenchmarkFigC1Decay(b *testing.B) { benchExperiment(b, "figC1") }
