module casq

go 1.24
