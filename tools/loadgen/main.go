// Command loadgen load-tests a running casq server: it fires GET
// requests at one endpoint from a fixed pool of concurrent clients and
// reports throughput, the status breakdown (200 / 429-rate-limited /
// other), and latency percentiles, then scrapes /healthz for the
// server-side request counters and /metrics for the server's own latency
// histogram — reporting the server-side p50/p90/p99 of the figures
// endpoint next to the client-side ones, so a gap between the two
// (network, queueing in the HTTP stack) is visible in one report. CI
// uses it to pin the serving acceptance criterion — a warm cached figure
// sustains ≥1000 concurrent clients — and to archive the latency
// distribution as a JSON artifact.
//
// Usage:
//
//	casq serve -store /tmp/store &
//	go run ./tools/loadgen -url http://127.0.0.1:8823 \
//	    -path '/figures/fig5?fast=1' -c 1000 -n 5000 [-json out.json]
//
// The first request warms the cache before the timed run, so loadgen
// measures serving, not figure computation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"casq/internal/obs"
)

// report is the machine-readable summary (-json output).
type report struct {
	Path        string         `json:"path"`
	Concurrency int            `json:"concurrency"`
	Requests    int            `json:"requests"`
	OK          int64          `json:"ok"`
	RateLimited int64          `json:"rate_limited"`
	Errors      int64          `json:"errors"`
	Seconds     float64        `json:"seconds"`
	RPS         float64        `json:"rps"`
	LatencyMS   map[string]any `json:"latency_ms"`
	// ServerLatencyMS is the same percentile set computed from the
	// server's own casq_serve_request_seconds{endpoint="figures"}
	// histogram scraped off GET /metrics — the server-side view of the
	// latencies the client measured.
	ServerLatencyMS map[string]any `json:"server_latency_ms,omitempty"`
	Healthz         any            `json:"healthz,omitempty"`
}

// scrapeServerLatency fetches /metrics and rebuilds the figure-endpoint
// latency percentiles from the cumulative histogram buckets.
func scrapeServerLatency(client *http.Client, base string) map[string]any {
	resp, err := client.Get(base + "/metrics")
	if err != nil || resp.StatusCode != http.StatusOK {
		if resp != nil {
			resp.Body.Close()
		}
		return nil
	}
	samples, err := obs.ParseProm(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Printf("loadgen: parse /metrics: %v", err)
		return nil
	}
	var buckets []obs.Sample
	for _, s := range samples {
		if s.Name == "casq_serve_request_seconds_bucket" && s.Label("endpoint") == "figures" {
			buckets = append(buckets, s)
		}
	}
	if len(buckets) == 0 {
		return nil
	}
	out := map[string]any{}
	for _, p := range []struct {
		name string
		q    float64
	}{{"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}} {
		out[p.name] = obs.HistogramQuantile(p.q, buckets) * 1e3 // seconds -> ms
	}
	return out
}

func main() {
	var (
		base    = flag.String("url", "http://127.0.0.1:8823", "server base URL")
		path    = flag.String("path", "/figures/fig5?fast=1", "request path (repeated for every request)")
		conc    = flag.Int("c", 100, "concurrent clients")
		total   = flag.Int("n", 1000, "total requests")
		jsonOut = flag.String("json", "", "also write the report as JSON to this file")
	)
	flag.Parse()
	if *conc < 1 || *total < 1 {
		log.Fatal("loadgen: -c and -n must be positive")
	}
	if *conc > *total {
		*conc = *total
	}
	url := *base + *path
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *conc,
		MaxIdleConnsPerHost: *conc,
	}}

	// Warm the cache so the run measures serving, not the first compute.
	if resp, err := client.Get(url); err != nil {
		log.Fatalf("loadgen: warm-up request: %v", err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	var (
		ok, limited, errs atomic.Int64
		next              atomic.Int64
		mu                sync.Mutex
		latencies         = make([]time.Duration, 0, *total)
	)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < *conc; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]time.Duration, 0, *total / *conc + 1)
			for next.Add(1) <= int64(*total) {
				t0 := time.Now()
				resp, err := client.Get(url)
				if err != nil {
					errs.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				local = append(local, time.Since(t0))
				switch {
				case resp.StatusCode == http.StatusOK:
					ok.Add(1)
				case resp.StatusCode == http.StatusTooManyRequests:
					limited.Add(1)
				default:
					errs.Add(1)
				}
			}
			mu.Lock()
			latencies = append(latencies, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		idx := int(p / 100 * float64(len(latencies)-1))
		return float64(latencies[idx]) / float64(time.Millisecond)
	}
	rep := report{
		Path: *path, Concurrency: *conc, Requests: *total,
		OK: ok.Load(), RateLimited: limited.Load(), Errors: errs.Load(),
		Seconds: elapsed.Seconds(),
		RPS:     float64(ok.Load()+limited.Load()) / elapsed.Seconds(),
		LatencyMS: map[string]any{
			"p50": pct(50), "p90": pct(90), "p99": pct(99), "max": pct(100),
		},
	}
	rep.ServerLatencyMS = scrapeServerLatency(client, *base)
	if resp, err := client.Get(*base + "/healthz"); err == nil {
		var h any
		if json.NewDecoder(resp.Body).Decode(&h) == nil {
			rep.Healthz = h
		}
		resp.Body.Close()
	}

	fmt.Printf("loadgen: %s  c=%d n=%d\n", *path, *conc, *total)
	fmt.Printf("  %d ok, %d rate-limited, %d errors in %.2fs (%.0f req/s)\n",
		rep.OK, rep.RateLimited, rep.Errors, rep.Seconds, rep.RPS)
	fmt.Printf("  latency ms: p50=%.1f p90=%.1f p99=%.1f max=%.1f\n",
		rep.LatencyMS["p50"], rep.LatencyMS["p90"], rep.LatencyMS["p99"], rep.LatencyMS["max"])
	if s := rep.ServerLatencyMS; s != nil {
		fmt.Printf("  server  ms: p50=%.1f p90=%.1f p99=%.1f (from /metrics histogram)\n",
			s["p50"], s["p90"], s["p99"])
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	if rep.Errors > 0 {
		os.Exit(1)
	}
}
