package main

import (
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLint(t *testing.T) {
	root := t.TempDir()
	write(t, filepath.Join(root, "good", "a.go"), "// Package good is documented.\npackage good\n")
	write(t, filepath.Join(root, "bad", "b.go"), "package bad\n")
	// Doc on any one file of the package suffices.
	write(t, filepath.Join(root, "split", "one.go"), "package split\n")
	write(t, filepath.Join(root, "split", "doc.go"), "// Package split is documented in doc.go.\npackage split\n")
	// Test files and skipped directories don't count either way.
	write(t, filepath.Join(root, "bad", "b_test.go"), "// Package bad looks documented only in tests.\npackage bad\n")
	write(t, filepath.Join(root, "testdata", "ignored.go"), "package ignored\n")
	write(t, filepath.Join(root, ".hidden", "h.go"), "package h\n")

	got, err := lint(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != filepath.Join(root, "bad") {
		t.Errorf("lint = %v, want only the bad package", got)
	}
}

func TestLintCleanRepo(t *testing.T) {
	// The repository itself must stay documented (same invariant CI runs).
	got, err := lint("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("undocumented packages: %v", got)
	}
}
