// Command doclint enforces the repository's documentation floor: every Go
// package (every directory containing non-test .go files) must carry a
// package doc comment on at least one of its files. CI runs it so `go doc`
// stays useful end to end; it exits non-zero listing each undocumented
// package.
//
// Usage:
//
//	go run ./tools/doclint [root]
//
// root defaults to the current directory. Hidden directories, testdata,
// and vendor are skipped.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	undocumented, err := lint(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
		os.Exit(1)
	}
	if len(undocumented) > 0 {
		fmt.Fprintln(os.Stderr, "doclint: packages without a package doc comment:")
		for _, dir := range undocumented {
			fmt.Fprintf(os.Stderr, "  %s\n", dir)
		}
		os.Exit(1)
	}
	fmt.Println("doclint: all packages documented")
}

// lint returns the package directories under root lacking a doc comment.
func lint(root string) ([]string, error) {
	// dir -> has at least one doc comment among its non-test files
	documented := map[string]bool{}
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		f, perr := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if perr != nil {
			return fmt.Errorf("parse %s: %w", path, perr)
		}
		if _, seen := documented[dir]; !seen {
			documented[dir] = false
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			documented[dir] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []string
	for dir, ok := range documented {
		if !ok {
			out = append(out, dir)
		}
	}
	sort.Strings(out)
	return out, nil
}
