// Command benchjson converts `go test -bench` output on stdin into a JSON
// array of {name, ns_per_op, bytes_per_op, allocs_per_op, metrics} records
// on stdout, so CI can archive the perf trajectory as a machine-readable
// artifact (BENCH_sim.json, BENCH_stab.json) from one PR to the next.
// Custom units reported via b.ReportMetric — e.g. the stabilizer batch
// bench's "shots/s" — land in the metrics map keyed by unit.
//
// Prometheus text-exposition lines (`name{label="v"} value`, including
// the `_bucket`/`_sum`/`_count` series of histograms) are also accepted
// and become {name, labels, value} records, so a GET /metrics scrape can
// be piped through the same converter and archived next to the bench
// artifacts.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"casq/internal/obs"
)

type record struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations,omitempty"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric units (e.g. "shots/s").
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Labels and Value are set for Prometheus exposition lines instead
	// of the bench fields above.
	Labels map[string]string `json:"labels,omitempty"`
	Value  *float64          `json:"value,omitempty"`
}

// promRecord converts one Prometheus sample line into a record; ok is
// false for anything that does not parse as one.
func promRecord(line string) (record, bool) {
	samples, err := obs.ParseProm(strings.NewReader(line))
	if err != nil || len(samples) != 1 {
		return record{}, false
	}
	s := samples[0]
	v := s.Value
	return record{Name: s.Name, Labels: s.Labels, Value: &v}, true
}

func main() {
	var out []record
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			if r, ok := promRecord(line); ok {
				out = append(out, r)
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		// Field 0 is Name-P (P = GOMAXPROCS suffix, optional).
		r := record{Name: fields[0]}
		if i := strings.LastIndex(fields[0], "-"); i > 0 {
			r.Name = fields[0][:i]
		}
		var err error
		if r.Iterations, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue
		}
		// Remaining fields come in (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v := fields[i]
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp, _ = strconv.ParseFloat(v, 64)
			case "B/op":
				r.BytesPerOp, _ = strconv.ParseInt(v, 10, 64)
			case "allocs/op":
				r.AllocsPerOp, _ = strconv.ParseInt(v, 10, 64)
			default:
				f, err := strconv.ParseFloat(v, 64)
				if err != nil {
					continue
				}
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[fields[i+1]] = f
			}
		}
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
