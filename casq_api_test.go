package casq_test

import (
	"math"
	"math/rand"
	"testing"

	"casq"
)

func TestFacadeEndToEnd(t *testing.T) {
	dev := casq.NewLineDevice("api", 3, casq.DefaultDeviceOptions())
	c := casq.NewCircuit(3, 2)
	c.AddLayer(casq.OneQubitLayer).H(0)
	c.AddLayer(casq.TwoQubitLayer).CX(0, 1)
	c.AddLayer(casq.MeasureLayer).Measure(0, 0).Measure(1, 1)
	casq.Schedule(c, dev)

	counts, err := casq.Simulate(dev, casq.IdealSimConfig(), c)
	if err != nil {
		t.Fatal(err)
	}
	for bits := range counts {
		if bits[:2] != "00" && bits[:2] != "11" {
			t.Errorf("ideal Bell produced %q", bits)
		}
	}
}

func TestFacadeCompilerStrategies(t *testing.T) {
	dev := casq.NewLineDevice("api", 4, casq.DefaultDeviceOptions())
	c := casq.NewCircuit(4, 0)
	c.AddLayer(casq.OneQubitLayer).H(0).H(3)
	c.AddLayer(casq.TwoQubitLayer).ECR(1, 2)

	cfg := casq.DefaultSimConfig()
	cfg.Shots = 32
	for _, st := range []casq.Strategy{casq.Bare(), casq.Twirled(), casq.CADD(), casq.CAEC(), casq.Combined()} {
		comp := casq.NewCompiler(dev, st, 3)
		vals, err := comp.Expectations(c, []casq.Observable{{0: 'X'}}, casq.RunOptions{Instances: 2, Cfg: cfg})
		if err != nil {
			t.Fatalf("%s: %v", st.Name, err)
		}
		if math.IsNaN(vals[0]) || vals[0] < -1.001 || vals[0] > 1.001 {
			t.Errorf("%s: bad expectation %v", st.Name, vals[0])
		}
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := casq.ExperimentIDs()
	if len(ids) != 15 {
		t.Errorf("expected 15 experiments, got %d", len(ids))
	}
	opts := casq.FastExperimentOptions()
	opts.Shots = 8
	opts.Instances = 1
	opts.MaxDepth = 1
	fig, err := casq.RunExperiment("table1", opts)
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "table1" {
		t.Error("wrong figure returned")
	}
}

func TestFacadeTwirlInstance(t *testing.T) {
	c := casq.NewCircuit(2, 0)
	c.AddLayer(casq.TwoQubitLayer).ECR(0, 1)
	inst, err := casq.TwirlInstance(c, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if inst.Depth() != 3 {
		t.Errorf("twirled depth %d, want 3 (pre, gate, post)", inst.Depth())
	}
}
