package casq_test

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"casq"
)

func TestFacadeEndToEnd(t *testing.T) {
	dev := casq.NewLineDevice("api", 3, casq.DefaultDeviceOptions())
	c := casq.NewCircuit(3, 2)
	c.AddLayer(casq.OneQubitLayer).H(0)
	c.AddLayer(casq.TwoQubitLayer).CX(0, 1)
	c.AddLayer(casq.MeasureLayer).Measure(0, 0).Measure(1, 1)
	casq.Schedule(c, dev)

	counts, err := casq.Simulate(dev, casq.IdealSimConfig(), c)
	if err != nil {
		t.Fatal(err)
	}
	for bits := range counts {
		if bits[:2] != "00" && bits[:2] != "11" {
			t.Errorf("ideal Bell produced %q", bits)
		}
	}
}

func TestFacadeCompilerStrategies(t *testing.T) {
	dev := casq.NewLineDevice("api", 4, casq.DefaultDeviceOptions())
	c := casq.NewCircuit(4, 0)
	c.AddLayer(casq.OneQubitLayer).H(0).H(3)
	c.AddLayer(casq.TwoQubitLayer).ECR(1, 2)

	cfg := casq.DefaultSimConfig()
	cfg.Shots = 32
	for _, st := range []casq.Strategy{casq.Bare(), casq.Twirled(), casq.CADD(), casq.CAEC(), casq.Combined()} {
		comp := casq.NewCompiler(dev, st, 3)
		vals, err := comp.Expectations(c, []casq.Observable{{0: 'X'}}, casq.RunOptions{Instances: 2, Cfg: cfg})
		if err != nil {
			t.Fatalf("%s: %v", st.Name, err)
		}
		if math.IsNaN(vals[0]) || vals[0] < -1.001 || vals[0] > 1.001 {
			t.Errorf("%s: bad expectation %v", st.Name, vals[0])
		}
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := casq.ExperimentIDs()
	if len(ids) != 15 {
		t.Errorf("expected 15 experiments, got %d", len(ids))
	}
	opts := casq.FastExperimentOptions()
	opts.Shots = 8
	opts.Instances = 1
	opts.MaxDepth = 1
	fig, err := casq.RunExperiment("table1", opts)
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "table1" {
		t.Error("wrong figure returned")
	}
}

// TestFacadeCustomPipeline runs compositions the pre-redesign Strategy API
// could not express — CA-EC before CA-DD, and twirl-free DD — through the
// public facade.
func TestFacadeCustomPipeline(t *testing.T) {
	dev := casq.NewLineDevice("api", 4, casq.DefaultDeviceOptions())
	c := casq.NewCircuit(4, 0)
	c.AddLayer(casq.OneQubitLayer).H(0).H(3)
	c.AddLayer(casq.TwoQubitLayer).ECR(1, 2)

	cfg := casq.DefaultSimConfig()
	cfg.Shots = 32
	pipelines := []casq.Pipeline{
		casq.NewPipeline("ec-then-dd",
			casq.TwirlPass(casq.TwirlGatesOnly),
			casq.SchedulePass(),
			casq.ECPass(casq.DefaultECOptions()),
			casq.SchedulePass(),
			casq.DDPass(casq.DefaultDDOptions()),
		),
		casq.NewPipeline("dd-only", casq.SchedulePass(), casq.DDPass(casq.DefaultDDOptions())),
	}
	for _, pl := range pipelines {
		ex := casq.NewExecutor(dev, pl)
		vals, err := ex.Expectations(context.Background(), c, []casq.Observable{{0: 'X'}},
			casq.ExecOptions{Instances: 2, Seed: 3, Cfg: cfg})
		if err != nil {
			t.Fatalf("%s: %v", pl.Name, err)
		}
		if math.IsNaN(vals[0]) || vals[0] < -1.001 || vals[0] > 1.001 {
			t.Errorf("%s: bad expectation %v", pl.Name, vals[0])
		}
		compiled, rep, err := casq.Compile(dev, pl, c, 3)
		if err != nil {
			t.Fatalf("%s: compile: %v", pl.Name, err)
		}
		if err := compiled.Validate(); err != nil {
			t.Fatalf("%s: invalid circuit: %v", pl.Name, err)
		}
		if rep.DD.Total == 0 {
			t.Errorf("%s: no DD pulses despite DD pass", pl.Name)
		}
	}
}

// TestFacadeCompatSemantics pins the compat Compiler wrappers: two
// Compilers with the same construction seed reproduce each other
// bit-for-bit, while successive calls on one Compiler draw fresh twirl
// samples (the pre-redesign shared-RNG semantics).
func TestFacadeCompatSemantics(t *testing.T) {
	dev := casq.NewLineDevice("api", 4, casq.DefaultDeviceOptions())
	c := casq.NewCircuit(4, 0)
	c.AddLayer(casq.OneQubitLayer).H(0).H(3)
	c.AddLayer(casq.TwoQubitLayer).ECR(1, 2)

	cfg := casq.DefaultSimConfig()
	cfg.Shots = 48
	// <Z2> on a gate qubit is genuinely twirl-sensitive: different Pauli
	// frames change the sampled trajectories, not just last-ulp rounding.
	// (<X0> on the idle spectator is exactly twirl-symmetric under the
	// fused diagonal kernel, so it no longer distinguishes instances.)
	obs := []casq.Observable{{2: 'Z'}}
	ro := casq.RunOptions{Instances: 3, Cfg: cfg}
	run := func(comp *casq.Compiler) float64 {
		t.Helper()
		vals, err := comp.Expectations(c, obs, ro)
		if err != nil {
			t.Fatal(err)
		}
		return vals[0]
	}
	a := casq.NewCompiler(dev, casq.Combined(), 11)
	b := casq.NewCompiler(dev, casq.Combined(), 11)
	first := run(a)
	if again := run(b); again != first {
		t.Errorf("same construction seed gave %v then %v (must be bit-identical)", first, again)
	}
	if second := run(a); second == first {
		t.Errorf("successive calls on one Compiler returned identical %v — twirl samples must be fresh", first)
	}
}

func TestFacadeTwirlInstance(t *testing.T) {
	c := casq.NewCircuit(2, 0)
	c.AddLayer(casq.TwoQubitLayer).ECR(0, 1)
	inst, err := casq.TwirlInstance(c, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if inst.Depth() != 3 {
		t.Errorf("twirled depth %d, want 3 (pre, gate, post)", inst.Depth())
	}
}
