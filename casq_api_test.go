package casq_test

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"casq"
)

func TestFacadeEndToEnd(t *testing.T) {
	dev := casq.NewLineDevice("api", 3, casq.DefaultDeviceOptions())
	c := casq.NewCircuit(3, 2)
	c.AddLayer(casq.OneQubitLayer).H(0)
	c.AddLayer(casq.TwoQubitLayer).CX(0, 1)
	c.AddLayer(casq.MeasureLayer).Measure(0, 0).Measure(1, 1)
	casq.Schedule(c, dev)

	counts, err := casq.Simulate(dev, casq.IdealSimConfig(), c)
	if err != nil {
		t.Fatal(err)
	}
	for bits := range counts {
		if bits[:2] != "00" && bits[:2] != "11" {
			t.Errorf("ideal Bell produced %q", bits)
		}
	}
}

func TestFacadeCompilerStrategies(t *testing.T) {
	dev := casq.NewLineDevice("api", 4, casq.DefaultDeviceOptions())
	c := casq.NewCircuit(4, 0)
	c.AddLayer(casq.OneQubitLayer).H(0).H(3)
	c.AddLayer(casq.TwoQubitLayer).ECR(1, 2)

	cfg := casq.DefaultSimConfig()
	cfg.Shots = 32
	for _, st := range []casq.Strategy{casq.Bare(), casq.Twirled(), casq.CADD(), casq.CAEC(), casq.Combined()} {
		comp := casq.NewCompiler(dev, st, 3)
		vals, err := comp.Expectations(c, []casq.Observable{{0: 'X'}}, casq.RunOptions{Instances: 2, Cfg: cfg})
		if err != nil {
			t.Fatalf("%s: %v", st.Name, err)
		}
		if math.IsNaN(vals[0]) || vals[0] < -1.001 || vals[0] > 1.001 {
			t.Errorf("%s: bad expectation %v", st.Name, vals[0])
		}
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := casq.ExperimentIDs()
	if len(ids) != 17 {
		t.Errorf("expected 17 experiments, got %d", len(ids))
	}
	opts := casq.FastExperimentOptions()
	opts.Shots = 8
	opts.Instances = 1
	opts.MaxDepth = 1
	fig, err := casq.RunExperiment("table1", opts)
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "table1" {
		t.Error("wrong figure returned")
	}
}

// TestFacadeCustomPipeline runs compositions the pre-redesign Strategy API
// could not express — CA-EC before CA-DD, and twirl-free DD — through the
// public facade.
func TestFacadeCustomPipeline(t *testing.T) {
	dev := casq.NewLineDevice("api", 4, casq.DefaultDeviceOptions())
	c := casq.NewCircuit(4, 0)
	c.AddLayer(casq.OneQubitLayer).H(0).H(3)
	c.AddLayer(casq.TwoQubitLayer).ECR(1, 2)

	cfg := casq.DefaultSimConfig()
	cfg.Shots = 32
	pipelines := []casq.Pipeline{
		casq.NewPipeline("ec-then-dd",
			casq.TwirlPass(casq.TwirlGatesOnly),
			casq.SchedulePass(),
			casq.ECPass(casq.DefaultECOptions()),
			casq.SchedulePass(),
			casq.DDPass(casq.DefaultDDOptions()),
		),
		casq.NewPipeline("dd-only", casq.SchedulePass(), casq.DDPass(casq.DefaultDDOptions())),
	}
	for _, pl := range pipelines {
		ex := casq.NewExecutor(dev, pl)
		vals, err := ex.Expectations(context.Background(), c, []casq.Observable{{0: 'X'}},
			casq.ExecOptions{Instances: 2, Seed: 3, Cfg: cfg})
		if err != nil {
			t.Fatalf("%s: %v", pl.Name, err)
		}
		if math.IsNaN(vals[0]) || vals[0] < -1.001 || vals[0] > 1.001 {
			t.Errorf("%s: bad expectation %v", pl.Name, vals[0])
		}
		compiled, rep, err := casq.Compile(dev, pl, c, 3)
		if err != nil {
			t.Fatalf("%s: compile: %v", pl.Name, err)
		}
		if err := compiled.Validate(); err != nil {
			t.Fatalf("%s: invalid circuit: %v", pl.Name, err)
		}
		if rep.DD.Total == 0 {
			t.Errorf("%s: no DD pulses despite DD pass", pl.Name)
		}
	}
}

// TestFacadeCompatSemantics pins the compat Compiler wrappers: two
// Compilers with the same construction seed reproduce each other
// bit-for-bit, while successive calls on one Compiler draw fresh twirl
// samples (the pre-redesign shared-RNG semantics).
func TestFacadeCompatSemantics(t *testing.T) {
	dev := casq.NewLineDevice("api", 4, casq.DefaultDeviceOptions())
	c := casq.NewCircuit(4, 0)
	c.AddLayer(casq.OneQubitLayer).H(0).H(3)
	c.AddLayer(casq.TwoQubitLayer).ECR(1, 2)

	cfg := casq.DefaultSimConfig()
	cfg.Shots = 48
	// <Z2> on a gate qubit is genuinely twirl-sensitive: different Pauli
	// frames change the sampled trajectories, not just last-ulp rounding.
	// (<X0> on the idle spectator is exactly twirl-symmetric under the
	// fused diagonal kernel, so it no longer distinguishes instances.)
	obs := []casq.Observable{{2: 'Z'}}
	ro := casq.RunOptions{Instances: 3, Cfg: cfg}
	run := func(comp *casq.Compiler) float64 {
		t.Helper()
		vals, err := comp.Expectations(c, obs, ro)
		if err != nil {
			t.Fatal(err)
		}
		return vals[0]
	}
	a := casq.NewCompiler(dev, casq.Combined(), 11)
	b := casq.NewCompiler(dev, casq.Combined(), 11)
	first := run(a)
	if again := run(b); again != first {
		t.Errorf("same construction seed gave %v then %v (must be bit-identical)", first, again)
	}
	if second := run(a); second == first {
		t.Errorf("successive calls on one Compiler returned identical %v — twirl samples must be fresh", first)
	}
}

func TestFacadeTwirlInstance(t *testing.T) {
	c := casq.NewCircuit(2, 0)
	c.AddLayer(casq.TwoQubitLayer).ECR(0, 1)
	inst, err := casq.TwirlInstance(c, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if inst.Depth() != 3 {
		t.Errorf("twirled depth %d, want 3 (pre, gate, post)", inst.Depth())
	}
}

// TestFacadeExperimentService exercises the service surface end to end
// through the facade: catalog enumeration, cached figure requests, and a
// checkpointed sweep.
func TestFacadeExperimentService(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	catalog := casq.ExperimentCatalog()
	if len(catalog) != len(casq.ExperimentIDs()) {
		t.Fatalf("catalog has %d specs, want %d", len(catalog), len(casq.ExperimentIDs()))
	}
	if sp, ok := casq.LookupExperiment("fig6"); !ok || sp.Paper != "Fig. 6" {
		t.Fatalf("LookupExperiment(fig6) = %+v, %v", sp, ok)
	}

	st, err := casq.OpenResultStore("", 8)
	if err != nil {
		t.Fatal(err)
	}
	cache := casq.NewFigureCache(st)
	opts := casq.FastExperimentOptions()
	opts.Shots, opts.Instances, opts.MaxDepth = 16, 2, 2
	cell := casq.SweepCell{ID: "fig5", Opts: opts}
	first, hit, err := cache.Figure(cell)
	if err != nil || hit {
		t.Fatalf("first request: hit=%v err=%v", hit, err)
	}
	second, hit, err := cache.Figure(cell)
	if err != nil || !hit || string(first) != string(second) {
		t.Fatalf("second request: hit=%v identical=%v err=%v", hit, string(first) == string(second), err)
	}

	runner := casq.NewSweepRunner(cache, 2)
	run, err := runner.Start(context.Background(), casq.SweepSpec{
		IDs:  []string{"fig5", "table1"},
		Grid: casq.SweepGrid{Seeds: []int64{1, 2}},
		Base: opts,
		Fast: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := run.Wait()
	if p.Done != 4 || p.Failed != 0 {
		t.Fatalf("sweep progress = %+v", p)
	}
	if st.Stats().Hits == 0 {
		t.Error("store recorded no hits")
	}
}

// TestFacadeFingerprint pins the content-address contract at the facade.
func TestFacadeFingerprint(t *testing.T) {
	k1, err := casq.Fingerprint(map[string]any{"id": "x", "seed": 7})
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := casq.Fingerprint(map[string]any{"seed": 7, "id": "x"})
	if k1 != k2 {
		t.Error("field order changed the fingerprint")
	}
	if !k1.Valid() {
		t.Errorf("invalid key %q", k1)
	}
}

func TestFacadeBackendsAndLayout(t *testing.T) {
	infos := casq.Backends()
	if len(infos) < 9 {
		t.Fatalf("registry has %d backends", len(infos))
	}
	biggest := infos[len(infos)-1]
	if biggest.NQubits != 127 {
		t.Fatalf("largest backend is %dq, want the 127-qubit lattice", biggest.NQubits)
	}
	dev, err := casq.NewBackend("heavyhex29")
	if err != nil {
		t.Fatal(err)
	}

	// Snapshot round trip through the public surface.
	snap := casq.SnapshotDevice(dev)
	back, err := casq.DeviceFromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	k1, _ := casq.Fingerprint(snap)
	k2, _ := casq.Fingerprint(casq.SnapshotDevice(back))
	if k1 != k2 {
		t.Error("snapshot fingerprint not stable across import")
	}
	if p := casq.PerturbDevice(dev, 3, 0.05); p.Validate() != nil {
		t.Error("perturbed device invalid")
	}

	// Place a 4-qubit chain workload and run it on the induced sub-device.
	c := casq.NewCircuit(4, 0)
	c.AddLayer(casq.OneQubitLayer).H(0)
	c.AddLayer(casq.TwoQubitLayer).ECR(0, 1).ECR(2, 3)
	c.AddLayer(casq.TwoQubitLayer).ECR(1, 2)
	pl, err := casq.ChooseLayout(dev, c, casq.DefaultLayoutOptions())
	if err != nil {
		t.Fatal(err)
	}
	placed, _, swaps, err := pl.MapCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	if swaps != 0 {
		t.Errorf("chain workload should embed without SWAPs, got %d", swaps)
	}
	ex := casq.NewExecutor(pl.Sub, casq.Build(casq.Twirled()))
	cfg := casq.DefaultSimConfig()
	cfg.Shots = 8
	vals, err := ex.Expectations(context.Background(), placed,
		[]casq.Observable{{pl.ToSub[0]: 'Z'}}, casq.ExecOptions{Instances: 2, Seed: 5, Cfg: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(vals[0]) {
		t.Fatal("NaN expectation on the induced sub-device")
	}

	// Pass composition: layout + route inside an ordinary pipeline.
	pipe := casq.NewPipeline("placed", casq.LayoutPass(casq.DefaultLayoutOptions()),
		casq.RoutePass(), casq.SchedulePass())
	compiled, rep, err := pipe.Apply(dev, rand.New(rand.NewSource(2)), c)
	if err != nil {
		t.Fatal(err)
	}
	if compiled.NQubits != dev.NQubits || len(rep.Layout) != 4 {
		t.Errorf("pipeline placement: %d qubits, layout %v", compiled.NQubits, rep.Layout)
	}
}

// TestFacadeCorrelations smoke-tests the correlation-spectroscopy exports:
// the packed estimator on hand-built planes, the counts-map expansion, and
// the backend diagnostic behind the serve endpoint.
func TestFacadeCorrelations(t *testing.T) {
	// Two perfectly correlated bits and one independent bit over 128 shots.
	rng := rand.New(rand.NewSource(9))
	counts := map[string]int{}
	for s := 0; s < 128; s++ {
		a := rng.Intn(2)
		c := rng.Intn(2)
		bits := []byte{'0' + byte(a), '0' + byte(a), '0' + byte(c)}
		counts[string(bits)]++
	}
	m := casq.EstimateCorrelations(casq.PackedBitsFromCounts(counts, 3))
	if m.N != 3 || m.Shots != 128 {
		t.Fatalf("matrix shape = (%d qubits, %d shots)", m.N, m.Shots)
	}
	if c := m.CorrAt(0, 1); math.Abs(c-1) > 1e-9 {
		t.Errorf("duplicated bits correlate at %v, want 1", c)
	}
	if c := m.CorrAt(0, 2); math.Abs(c) > 0.5 {
		t.Errorf("independent bits correlate at %v", c)
	}

	opts := casq.FastExperimentOptions()
	opts.Shots = 128
	rep, err := casq.CorrelationDiagnostic("line6", "", opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Backend != "line6" || rep.Strategy != "twirled" || len(rep.FlipRates) != 6 {
		t.Errorf("diagnostic = %+v", rep)
	}
	var _ []casq.CorrelationPair = rep.Pairs
	var _ []casq.CorrelationDecayBin = rep.Decay
}
