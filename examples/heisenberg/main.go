// Heisenberg: the paper's Fig. 7 workload — first-order Trotterized
// dynamics of a 12-spin Heisenberg ring built from canonical two-qubit
// gates Ucan (paper Eq. 5) in three colored layers per step. CA-EC absorbs
// the idle-pair ZZ corrections into neighboring Heisenberg interactions at
// zero cost; the example prints the recovered <Z2> dynamics and the
// estimated error-mitigation overhead per strategy.
package main

import (
	"context"
	"fmt"
	"log"

	"casq/internal/core"
	"casq/internal/dd"
	"casq/internal/device"
	"casq/internal/exec"
	"casq/internal/fitting"
	"casq/internal/models"
	"casq/internal/pass"
	"casq/internal/sim"
)

func main() {
	devOpts := device.DefaultOptions()
	devOpts.Seed = 43
	dev := device.NewRing("heisenberg12", 12, devOpts)
	params := models.DefaultHeisenberg()
	obs := []sim.ObsSpec{{2: 'Z'}}
	depths := []int{1, 2, 3, 4, 5}

	pipelines := []pass.Pipeline{pass.Twirled(), pass.WithDD(dd.Aligned), pass.CADD(), pass.CAEC()}
	fmt.Println("Heisenberg ring (12 spins), <Z2> per Trotter step:")
	fmt.Printf("%4s %8s", "d", "ideal")
	for _, pl := range pipelines {
		fmt.Printf(" %10s", pl.Name)
	}
	fmt.Println()

	meas := map[string][]float64{}
	var ds, ideals []float64
	for _, d := range depths {
		c := models.BuildHeisenbergRing(12, d, params)
		iv, err := core.IdealExpectations(dev, c, obs)
		if err != nil {
			log.Fatal(err)
		}
		ds = append(ds, float64(d))
		ideals = append(ideals, iv[0])
		fmt.Printf("%4d %+8.3f", d, iv[0])
		for _, pl := range pipelines {
			ex := exec.New(dev, pl)
			cfg := sim.DefaultConfig()
			cfg.Shots = 120
			cfg.Seed = int64(d) * 31
			cfg.EnableReadoutErr = false
			vals, err := ex.Expectations(context.Background(), c, obs,
				exec.RunOptions{Instances: 6, Seed: int64(10 * d), Cfg: cfg})
			if err != nil {
				log.Fatal(err)
			}
			meas[pl.Name] = append(meas[pl.Name], vals[0])
			fmt.Printf(" %+10.3f", vals[0])
		}
		fmt.Println()
	}

	fmt.Println("\nglobal-depolarizing fits and mitigation overhead at d=5 (paper Fig. 7d):")
	for _, pl := range pipelines {
		amp, lambda, _, err := fitting.ScaledIdeal(ds, ideals, meas[pl.Name])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s A=%.3f lambda=%.4f overhead=%.2f\n",
			pl.Name, amp, lambda, fitting.SamplingOverhead(amp, lambda, 5))
	}
}
