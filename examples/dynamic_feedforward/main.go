// Dynamic feed-forward: the paper's Fig. 9 workload — Bell-state
// preparation through a mid-circuit measurement and a feed-forward
// correction. The data qubits idle through the ~5 us measurement +
// feed-forward window and accumulate large ZZ errors; CA-EC compensates
// them with schedule-derived virtual Rz corrections plus a
// measurement-conditioned correction, and this example scans the compiler's
// assumed feed-forward latency to locate the controller's true value.
package main

import (
	"context"
	"fmt"
	"log"

	"casq/internal/caec"
	"casq/internal/device"
	"casq/internal/exec"
	"casq/internal/expval"
	"casq/internal/models"
	"casq/internal/pass"
	"casq/internal/sim"
)

func main() {
	devOpts := device.DefaultOptions()
	devOpts.Seed = 53
	dev := device.NewLine("dynamic", 3, devOpts)
	fmt.Printf("device: measurement %.1f us, true feed-forward latency %.2f us\n",
		dev.DurMeas/1e3, dev.DurFF/1e3)

	fidelity := func(pl pass.Pipeline, seed int64) float64 {
		c := models.BuildDynamicBell(dev.DurFF)
		ex := exec.New(dev, pl)
		cfg := sim.DefaultConfig()
		cfg.Shots = 1200
		cfg.Seed = seed
		res, err := ex.Counts(context.Background(), c,
			exec.RunOptions{Instances: 1, Seed: seed, Cfg: cfg})
		if err != nil {
			log.Fatal(err)
		}
		p, err := expval.CorrectReadout(res, []int{1, 2}, "00",
			[]float64{dev.ReadoutErr[1], dev.ReadoutErr[2]})
		if err != nil {
			log.Fatal(err)
		}
		return p
	}

	bare := fidelity(pass.Bare(), 1)
	fmt.Printf("\nbare Bell fidelity: %.3f (paper: 0.095)\n\n", bare)

	fmt.Println("CA-EC fidelity vs assumed feed-forward time tau:")
	best, bestTau := 0.0, 0.0
	for _, tau := range []float64{0, 400, 800, 1150, 1500, 1900, 2300} {
		ecOpts := caec.DefaultOptions()
		ecOpts.FFTime = tau
		pl := pass.New("ca-ec", pass.Schedule(), pass.EC(ecOpts))
		f := fidelity(pl, 100+int64(tau))
		fmt.Printf("  tau = %4.0f ns  ->  F = %.3f\n", tau, f)
		if f > best {
			best, bestTau = f, tau
		}
	}
	fmt.Printf("\npeak F = %.3f at tau = %.2f us — the calibrated feed-forward time (paper: 0.781 at 1.15 us)\n",
		best, bestTau/1e3)
	fmt.Printf("improvement over bare: %.1fx (paper: >8x)\n", best/bare)
}
