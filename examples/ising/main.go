// Ising: the paper's Fig. 6 workload — Floquet evolution of a 6-qubit Ising
// chain at the Clifford point, where the boundary correlator <X0 X5>
// ideally oscillates between +1 and -1. Compares twirling-only against the
// context-aware strategies, each lowered to a pass pipeline and run on the
// concurrent executor.
package main

import (
	"context"
	"fmt"
	"log"

	"casq"
	"casq/internal/core"
	"casq/internal/device"
	"casq/internal/exec"
	"casq/internal/models"
	"casq/internal/pass"
	"casq/internal/sim"
)

func main() {
	devOpts := device.DefaultOptions()
	devOpts.Seed = 37
	dev := device.NewLine("ising6", 6, devOpts)
	obs := []sim.ObsSpec{{0: 'X', 5: 'X'}}

	pipelines := []pass.Pipeline{pass.Twirled(), pass.CAEC(), pass.CADD()}
	executors := make([]*exec.Executor, len(pipelines))
	for i, pl := range pipelines {
		executors[i] = exec.New(dev, pl)
	}

	fmt.Println("Floquet Ising chain, <X0 X5> per step (ideal oscillates +1/-1):")
	fmt.Printf("%4s %8s %10s %10s %10s\n", "d", "ideal", "twirled", "ca-ec", "ca-dd")
	for d := 1; d <= 8; d++ {
		c := models.BuildFloquetIsing(6, d)
		ideal, err := core.IdealExpectations(dev, c, obs)
		if err != nil {
			log.Fatal(err)
		}
		row := []float64{ideal[0]}
		for _, ex := range executors {
			cfg := sim.DefaultConfig()
			cfg.Shots = 200
			cfg.Seed = int64(d)
			cfg.EnableReadoutErr = false
			vals, err := ex.Expectations(context.Background(), c, obs,
				exec.RunOptions{Instances: 8, Seed: int64(100 + d), Cfg: cfg})
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, vals[0])
		}
		fmt.Printf("%4d %+8.3f %+10.3f %+10.3f %+10.3f\n", d, row[0], row[1], row[2], row[3])
	}
	_ = casq.ExperimentIDs // the full harness lives in cmd/experiments (fig6)
}
