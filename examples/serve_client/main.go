// Serve client: the experiment service end to end in one process. Starts
// the HTTP server backed by a content-addressed result store, requests
// the same figure twice, and prints the cache-hit speedup — the second
// response comes back from the store bit-identical in microseconds,
// which is what lets `casq serve` answer repeated figure traffic in O(1).
//
// Run with: go run ./examples/serve_client
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"casq"
)

func main() {
	// An in-memory store keeps the example self-contained; `casq serve
	// -store DIR` adds the disk tier so results survive restarts.
	st, err := casq.OpenResultStore("", 64)
	if err != nil {
		log.Fatal(err)
	}
	srv := casq.NewServer(casq.NewFigureCache(st), 0)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Printf("experiment service listening on %s\n\n", ts.URL)

	// Enumerate the catalog the way any client would.
	var specs []casq.ExperimentSpec
	fetchJSON(ts.URL+"/experiments", &specs)
	example := specs[0]
	for _, sp := range specs {
		if sp.ID == "fig6" {
			example = sp
		}
	}
	fmt.Printf("catalog: %d experiments, e.g. %s (%s, axes %v)\n\n",
		len(specs), example.ID, example.Paper, example.Axes)

	// First request: computed and checkpointed.
	url := ts.URL + "/figures/fig6?fast=1"
	body1, cache1, dt1 := fetchFigure(url)
	fmt.Printf("GET /figures/fig6  #1: %-4s in %8.2f ms (%d bytes)\n", cache1, dt1.Seconds()*1e3, len(body1))

	// Second request: answered from the store.
	body2, cache2, dt2 := fetchFigure(url)
	fmt.Printf("GET /figures/fig6  #2: %-4s in %8.2f ms (%d bytes)\n", cache2, dt2.Seconds()*1e3, len(body2))

	if !bytes.Equal(body1, body2) {
		log.Fatal("cache returned different bytes!")
	}
	fmt.Printf("\npayloads bit-identical; cache-hit speedup: %.0fx\n", dt1.Seconds()/dt2.Seconds())

	var fig casq.Figure
	if err := json.Unmarshal(body2, &fig); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("figure %q: %d series over %q\n", fig.Title, len(fig.Series), fig.XLabel)
}

// fetchFigure GETs a figure URL, returning body, cache disposition, and
// wall time.
func fetchFigure(url string) ([]byte, string, time.Duration) {
	start := time.Now()
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	return body, resp.Header.Get("X-Casq-Cache"), time.Since(start)
}

func fetchJSON(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}
