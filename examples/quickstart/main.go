// Quickstart: build a small layered circuit, compile it with the combined
// context-aware strategy (CA-DD + CA-EC), and compare noisy expectation
// values against the uncompiled circuit on the synthetic backend — then
// compose a custom pipeline (EC before DD) that the fixed strategies
// cannot express.
package main

import (
	"context"
	"fmt"
	"log"

	"casq"
)

func main() {
	// A 4-qubit line device with paper-like calibration (always-on ZZ of
	// 40-90 kHz, Stark shifts, charge parity, T1/T2, gate errors).
	dev := casq.NewLineDevice("quickstart", 4, casq.DefaultDeviceOptions())

	// A toy workload: boundary qubits in |+>, three ECR layers with idle
	// periods — the contexts of paper Fig. 3 in miniature.
	build := func() *casq.Circuit {
		c := casq.NewCircuit(4, 0)
		c.AddLayer(casq.OneQubitLayer).H(0).H(3)
		for i := 0; i < 3; i++ {
			c.AddLayer(casq.TwoQubitLayer).ECR(1, 2) // qubits 0 and 3 idle
		}
		return c
	}

	obs := []casq.Observable{{0: 'X'}, {3: 'X'}}
	cfg := casq.DefaultSimConfig()
	cfg.Shots = 400

	// The paper's named strategies, lowered to canned pipelines and run on
	// the concurrent executor (results are identical for any worker count).
	for _, st := range []casq.Strategy{casq.Twirled(), casq.CADD(), casq.CAEC(), casq.Combined()} {
		ex := casq.NewExecutor(dev, casq.Build(st))
		vals, err := ex.Expectations(context.Background(), build(), obs,
			casq.ExecOptions{Instances: 8, Seed: 7, Cfg: cfg})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s  <X0> = %+.4f   <X3> = %+.4f   (ideal: +1, +1)\n", st.Name, vals[0], vals[1])
	}

	// A custom composition the fixed strategies cannot express: error
	// compensation first, then DD on the compensated schedule.
	custom := casq.NewPipeline("ec-then-dd",
		casq.TwirlPass(casq.TwirlGatesOnly),
		casq.SchedulePass(),
		casq.ECPass(casq.DefaultECOptions()),
		casq.SchedulePass(),
		casq.DDPass(casq.DefaultDDOptions()),
	)
	ex := casq.NewExecutor(dev, custom)
	vals, err := ex.Expectations(context.Background(), build(), obs,
		casq.ExecOptions{Instances: 8, Seed: 7, Cfg: cfg})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s  <X0> = %+.4f   <X3> = %+.4f   (custom pipeline)\n", custom.Name, vals[0], vals[1])

	// Show what the compiler actually did to one twirl instance.
	compiled, rep, err := casq.Compile(dev, casq.Build(casq.Combined()), build(), 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncombined strategy (%v): %d DD pulses, %d virtual Rz, %d absorbed ZZ, duration %.0f ns\n",
		rep.Applied, rep.DD.Total, rep.EC.VirtualRZ,
		rep.EC.AbsorbedUcan+rep.EC.AbsorbedCX+rep.EC.InsertedRZZ, rep.Duration)
	fmt.Println(compiled.Draw())
}
