// Quickstart: build a small layered circuit, compile it with the combined
// context-aware strategy (CA-DD + CA-EC), and compare noisy expectation
// values against the uncompiled circuit on the synthetic backend.
package main

import (
	"fmt"
	"log"

	"casq"
)

func main() {
	// A 4-qubit line device with paper-like calibration (always-on ZZ of
	// 40-90 kHz, Stark shifts, charge parity, T1/T2, gate errors).
	dev := casq.NewLineDevice("quickstart", 4, casq.DefaultDeviceOptions())

	// A toy workload: boundary qubits in |+>, three ECR layers with idle
	// periods — the contexts of paper Fig. 3 in miniature.
	build := func() *casq.Circuit {
		c := casq.NewCircuit(4, 0)
		c.AddLayer(casq.OneQubitLayer).H(0).H(3)
		for i := 0; i < 3; i++ {
			c.AddLayer(casq.TwoQubitLayer).ECR(1, 2) // qubits 0 and 3 idle
		}
		return c
	}

	obs := []casq.Observable{{0: 'X'}, {3: 'X'}}
	cfg := casq.DefaultSimConfig()
	cfg.Shots = 400

	for _, st := range []casq.Strategy{casq.Twirled(), casq.CADD(), casq.CAEC(), casq.Combined()} {
		comp := casq.NewCompiler(dev, st, 7)
		vals, err := comp.Expectations(build(), obs, casq.RunOptions{Instances: 8, Cfg: cfg})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s  <X0> = %+.4f   <X3> = %+.4f   (ideal: +1, +1)\n", st.Name, vals[0], vals[1])
	}

	// Show what the compiler actually did to one twirl instance.
	comp := casq.NewCompiler(dev, casq.Combined(), 7)
	compiled, info, err := comp.Compile(build())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncombined strategy: %d DD pulses, %d virtual Rz, %d absorbed ZZ, duration %.0f ns\n",
		info.DDReport.Total, info.ECStats.VirtualRZ,
		info.ECStats.AbsorbedUcan+info.ECStats.AbsorbedCX+info.ECStats.InsertedRZZ, info.Duration)
	fmt.Println(compiled.Draw())
}
