// Layer fidelity: the paper's Fig. 8 benchmark — the layer fidelity of a
// sparse 10-qubit layer (3 ECR gates, 4 idle qubits, one adjacent-control
// pair) under the four suppression strategies, and the resulting PEC
// sampling-overhead base gamma = LF^-2.
package main

import (
	"fmt"
	"log"

	"casq/internal/core"
	"casq/internal/dd"
	"casq/internal/device"
	"casq/internal/layerfid"
)

func main() {
	devOpts := device.DefaultOptions()
	devOpts.Seed = 47
	devOpts.ZZMin, devOpts.ZZMax = 90e3, 160e3
	devOpts.Err2Q = 1.1e-2
	devOpts.QuasistaticSigma = 3e3
	devOpts.ZZOverride = []device.EdgeRate{{A: 1, B: 2, Hz: 230e3}} // near-collision Ctrl-Ctrl pair (Q37-Q38)
	dev, layer, labels := layerfid.BenchmarkLayerDevice(devOpts)

	fmt.Println("benchmark layer: ECR(37->52), ECR(38->39), ECR(58->57); idle 40, 56, 59, 60")
	fmt.Printf("qubit labels: %v\n\n", labels)

	opts := layerfid.DefaultOptions()
	opts.Shots = 40
	opts.Instances = 4
	opts.Workers = 0 // fan twirl instances across GOMAXPROCS workers
	opts.PauliRounds = 8

	fmt.Printf("%-12s %8s %8s   %s\n", "strategy", "LF", "gamma", "per-partition process fidelities")
	for _, st := range []core.Strategy{core.Twirled(), core.WithDD(dd.Aligned), core.CADD(), core.CAEC()} {
		// Measure lowers the strategy to its pass pipeline and runs the
		// twirl instances on the concurrent executor.
		fmt.Printf("# %v\n", st.Pipeline())
		res, err := layerfid.Measure(dev, layer, st, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %8.3f %8.2f  ", st.Name, res.LF, res.Gamma)
		for _, p := range res.Partitions {
			fmt.Printf(" %s=%.3f", p.Partition.Label, p.Fidelity)
		}
		fmt.Println()
	}
	fmt.Println("\npaper values: bare 0.648/2.38, DD 0.743/1.81, CA-DD 0.822/1.48, CA-EC 0.881/1.29")
}
