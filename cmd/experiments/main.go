// Command experiments regenerates the paper's tables and figures on the
// synthetic-backend substitute.
//
// Usage:
//
//	experiments -list
//	experiments -id fig8 [-fast] [-shots N] [-instances K] [-seed S] [-workers W]
//	experiments -id fig6 -backend heavyhex29
//	experiments -id fig8 -backend eagle127 -engine stab
//	experiments -all [-fast]
//
// -workers sets the unified parallelism budget per data point (twirl
// instances × simulator shots; 0 = GOMAXPROCS). Results are bit-identical
// for every worker count. -backend retargets a figure onto a named
// registry backend (experiments that declare backend support only): the
// layout stage places the workload on the least-noisy subregion and the
// simulation runs on the induced sub-device. -engine selects the
// simulation backend (statevector, stab, or auto) — full-device fig8 runs
// on 127-qubit backends require the stabilizer engine. For cached, service-style
// access to the same figures, run `casq serve` instead.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"casq/internal/experiments"
)

func main() {
	var (
		id        = flag.String("id", "", "experiment id (see -list)")
		all       = flag.Bool("all", false, "run every experiment")
		list      = flag.Bool("list", false, "list experiment ids")
		fast      = flag.Bool("fast", false, "reduced sampling for quick runs")
		shots     = flag.Int("shots", 0, "override trajectory budget per point")
		instances = flag.Int("instances", 0, "override twirl instances per point")
		workers   = flag.Int("workers", 0, "concurrent twirl instances per point (0 = GOMAXPROCS)")
		seed      = flag.Int64("seed", 0, "override random seed")
		backend   = flag.String("backend", "", "run on a named registry backend (see casq -list)")
		engine    = flag.String("engine", "", "simulation engine: statevector, stab, or auto")
	)
	flag.Parse()

	if *list {
		for _, x := range experiments.IDs() {
			fmt.Println(x)
		}
		return
	}
	opts := experiments.DefaultOptions()
	if *fast {
		opts = experiments.FastOptions()
	}
	if *shots > 0 {
		opts.Shots = *shots
	}
	if *instances > 0 {
		opts.Instances = *instances
	}
	if *workers > 0 {
		opts.Workers = *workers
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	opts.Backend = *backend
	opts.Engine = *engine

	ids := []string{}
	switch {
	case *all:
		ids = experiments.IDs()
	case *id != "":
		ids = []string{*id}
	default:
		fmt.Fprintln(os.Stderr, "need -id, -all or -list")
		flag.Usage()
		os.Exit(2)
	}
	for _, x := range ids {
		start := time.Now()
		fig, err := experiments.Run(x, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", x, err)
			os.Exit(1)
		}
		fmt.Print(fig.Render())
		fmt.Printf("(%s in %.1fs)\n\n", x, time.Since(start).Seconds())
	}
}
