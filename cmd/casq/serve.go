package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"casq/internal/experiments"
	"casq/internal/serve"
	"casq/internal/store"
	"casq/internal/sweep"
)

// serveMain runs the `casq serve` subcommand: an HTTP service answering
// figure requests from the content-addressed result store and scheduling
// sweeps in the background.
func serveMain(args []string) {
	fs := flag.NewFlagSet("casq serve", flag.ExitOnError)
	var (
		addr    = fs.String("addr", "127.0.0.1:8823", "listen address")
		dir     = fs.String("store", "casq-store", "result store directory (empty = memory-only)")
		mem     = fs.Int("mem", store.DefaultMemCapacity, "in-memory cache capacity (entries)")
		workers = fs.Int("sweep-workers", 0, "concurrent sweep cells (0 = GOMAXPROCS)")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: casq serve [-addr host:port] [-store dir] [-mem N] [-sweep-workers N]\n\n")
		fs.PrintDefaults()
		fmt.Fprintf(fs.Output(), `
endpoints:
  GET  /experiments   experiment catalog with declared parameter axes
  GET  /backends      named device registry (sizes, topology families)
  GET  /figures/{id}  one figure (query: seed, shots, instances, maxdepth, fast, backend)
  POST /sweeps        submit a sweep spec; returns its id
  GET  /sweeps/{id}   sweep progress
  GET  /healthz       liveness + cache counters

The first request for a figure computes and checkpoints it; repeats are
served from the store bit-identically (X-Casq-Cache: hit).
`)
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	st, err := store.Open(*dir, *mem)
	if err != nil {
		log.Fatal(err)
	}
	srv := serve.New(sweep.NewCache(st), *workers)
	defer srv.Close()
	where := *dir
	if where == "" {
		where = "(memory only)"
	}
	log.Printf("casq serve: listening on %s, store %s, %d experiments", *addr, where, len(experiments.IDs()))
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
