package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"casq/internal/experiments"
	"casq/internal/serve"
	"casq/internal/store"
	"casq/internal/sweep"
)

// hardeningFlags registers the serve-layer protection knobs shared by
// `casq serve` and `casq fabric coordinator`, returning a closure that
// folds them into the Config after parsing.
func hardeningFlags(fs *flag.FlagSet) func(*serve.Config) {
	var (
		rps    = fs.Float64("figure-rps", 0, "token-bucket rate limit on /figures (requests/s, 0 = unlimited)")
		burst  = fs.Int("figure-burst", 0, "rate-limit burst depth (0 = 2x rate)")
		maxSw  = fs.Int("max-sweeps", 0, "max concurrently active sweeps, beyond = 429 (0 = default, <0 = unlimited)")
		ttl    = fs.Duration("history-ttl", 0, "how long finished sweeps stay queryable past the history cap (0 = default)")
		drainT = fs.Duration("drain", 0, "shutdown wait for in-flight sweeps (0 = default, <0 = none)")
		thresh = fs.Float64("recompile-threshold", 0,
			"drift monitors recompile when the exact score exceeds this ratio of the deployed baseline (0 = default 1.25)")
		pprofOn = fs.Bool("pprof", false, "mount net/http/pprof profiling under /debug/pprof/ (off by default)")
	)
	return func(cfg *serve.Config) {
		cfg.FigureRPS = *rps
		cfg.FigureBurst = *burst
		cfg.MaxActiveSweeps = *maxSw
		cfg.HistoryTTL = *ttl
		cfg.DrainTimeout = *drainT
		cfg.RecompileThreshold = *thresh
		cfg.PProf = *pprofOn
	}
}

// listenGraceful serves srv on addr until SIGINT/SIGTERM, then drains:
// srv.Close refuses new sweeps and waits for in-flight ones, after which
// open connections get a bounded Shutdown window.
func listenGraceful(addr string, srv *serve.Server) error {
	hs := &http.Server{Addr: addr, Handler: srv.Handler()}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		log.Printf("casq: %v: draining", s)
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		return nil
	}
}

// serveMain runs the `casq serve` subcommand: an HTTP service answering
// figure requests from the content-addressed result store and scheduling
// sweeps in the background.
func serveMain(args []string) {
	fs := flag.NewFlagSet("casq serve", flag.ExitOnError)
	var (
		addr    = fs.String("addr", "127.0.0.1:8823", "listen address")
		dir     = fs.String("store", "casq-store", "result store directory (empty = memory-only)")
		mem     = fs.Int("mem", store.DefaultMemCapacity, "in-memory cache capacity (entries)")
		workers = fs.Int("sweep-workers", 0, "concurrent sweep cells (0 = GOMAXPROCS)")
	)
	harden := hardeningFlags(fs)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: casq serve [-addr host:port] [-store dir] [-mem N] [-sweep-workers N]\n"+
			"                  [-figure-rps R] [-figure-burst N] [-max-sweeps N] [-history-ttl D] [-drain D]\n"+
			"                  [-recompile-threshold R] [-pprof]\n\n")
		fs.PrintDefaults()
		fmt.Fprintf(fs.Output(), `
endpoints:
  GET  /experiments        experiment catalog with declared parameter axes
  GET  /backends           named device registry (sizes, topology families)
  GET  /figures/{id}       one figure (query: seed, shots, instances, maxdepth, fast, backend, engine)
  GET  /backends/{id}/layout   deployed placement of the path probe (query: qubits, depth)
  POST /backends/{id}/drift    perturb calibration (JSON: seed, drift, qubits, depth), report the decision
  POST /sweeps             submit a sweep spec; returns its id
  GET  /sweeps             all retained sweeps with progress
  GET  /sweeps/{id}        sweep progress
  GET  /sweeps/{id}/events SSE progress stream
  GET  /healthz            liveness + store/request/fleet counters
  GET  /metrics            Prometheus text exposition (request, store, exec, layout, sweep, fabric)
  GET  /debug/pprof/       profiling handlers (only with -pprof)

The first request for a figure computes and checkpoints it; repeats are
served from the store bit-identically (X-Casq-Cache: hit). To shard
sweeps across machines, run 'casq fabric coordinator' instead and point
'casq fabric worker' processes at it.
`)
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	st, err := store.Open(*dir, *mem)
	if err != nil {
		log.Fatal(err)
	}
	cfg := serve.Config{Cache: sweep.NewCache(st), SweepWorkers: *workers}
	harden(&cfg)
	srv := serve.NewWith(cfg)
	defer srv.Close()
	where := *dir
	if where == "" {
		where = "(memory only)"
	}
	log.Printf("casq serve: listening on %s, store %s, %d experiments", *addr, where, len(experiments.IDs()))
	if err := listenGraceful(*addr, srv); err != nil {
		log.Fatal(err)
	}
}
