// Command casq compiles demo workloads with the context-aware passes and
// prints the resulting schedules, DD colorings, and compensation
// statistics. Its serve subcommand runs the experiment service: an HTTP
// API over the content-addressed result store.
//
// Usage:
//
//	casq -workload ising -strategy ca-ec+dd -steps 3 [-draw]
//	casq -workload ramsey1 -strategy ca-dd -steps 4
//	casq -workload ising -passes twirl,sched,ec,sched,dd:aligned
//	casq -workload ising -backend heavyhex127 -strategy ca-dd
//	casq -workload ising -backend heavyhex127 -layout-report
//	casq -spec fig8 -backend eagle127 -engine stab [-full] [-shots N]
//	casq -spec fig8 -backend eagle127 -engine stab -trace out.json
//	casq -spec figC1 -backend eagle127 -engine stab
//	casq -list
//	casq serve [-addr host:port] [-store dir] [-mem N] [-sweep-workers N] [-pprof]
//	casq fabric coordinator [-addr host:port] [-store dir] [-lease-ttl D]
//	casq fabric worker [-coordinator url] [-slots N]
//
// The -passes flag composes an arbitrary comma-separated pipeline
// (orderings the named strategies cannot express, e.g. CA-EC before DD,
// or DD without twirling); it overrides -strategy. The -backend flag
// retargets the workload onto a named registry backend: the layout and
// routing passes are prepended, so the compiler picks the subregion with
// the least predicted coherent error and legalizes any non-adjacent
// gates with SWAPs. With -layout-report the command instead prints the
// layout search telemetry for the workload+backend pair — chosen region,
// surrogate vs exact scores, pruning ratio, fitted feature weights, and
// the recompile threshold the serve-layer drift monitor applies. The -spec flag runs a paper experiment by id instead
// of the compile demo; with -backend and -engine it exercises the engine
// axis — `casq -spec fig8 -backend eagle127 -engine stab` is the
// full-127-qubit layer-fidelity run that only the stabilizer engine can
// simulate, and -shots raises its per-point budget (the bit-plane engine
// advances 64 shots per word op, so 10^5-shot full-device points cost tens
// of milliseconds). The figC1/figC2 specs are the error-correlation
// spectroscopy companions: `casq -spec figC1 -backend eagle127 -engine
// stab` estimates the full 8001-pair flip-correlation matrix per strategy
// from the packed outcome planes and reports its distance-binned decay.
// The -trace flag records every compile pass, layout tier, executor
// instance, and engine block as spans and writes them as Chrome
// trace-event JSON — open the file in chrome://tracing or Perfetto to see
// where the wall time went. Run `casq -list` for the workload, strategy, pass, engine,
// and backend vocabularies (including which engines can run each backend
// at full scale). Experiment-level parallelism lives in the
// sibling experiments command (its -workers flag sets the unified worker
// budget per data point).
//
// `casq serve` answers GET /figures/{id} from the store — the first
// request computes and checkpoints the figure, repeats stream the same
// bytes back — and runs POST /sweeps grids in the background with
// checkpoint/resume. GET /backends/{id}/correlations serves the cached
// correlation-spectroscopy diagnostic for a registry backend
// (strategy=, engine=, and the usual sampling parameters). See `casq serve -h` for the endpoint list,
// including the rate-limit and graceful-drain hardening flags. To shard
// sweeps across machines, `casq fabric coordinator` serves the same API
// backed by a lease-based job queue, and `casq fabric worker` processes
// claim and compute its cells through the shared store.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"casq/internal/caec"
	"casq/internal/circuit"
	"casq/internal/dd"
	"casq/internal/device"
	"casq/internal/exec"
	"casq/internal/experiments"
	"casq/internal/layout"
	"casq/internal/models"
	"casq/internal/obs"
	"casq/internal/pass"
	"casq/internal/surrogate"
	"casq/internal/twirl"
)

var workloads = map[string]func(steps int) (*device.Device, *circuit.Circuit){
	"ising": func(steps int) (*device.Device, *circuit.Circuit) {
		return device.NewLine("ising6", 6, device.DefaultOptions()), models.BuildFloquetIsing(6, steps)
	},
	"heisenberg": func(steps int) (*device.Device, *circuit.Circuit) {
		return device.NewRing("heis12", 12, device.DefaultOptions()),
			models.BuildHeisenbergRing(12, steps, models.DefaultHeisenberg())
	},
	"ramsey1": func(steps int) (*device.Device, *circuit.Circuit) {
		dev := models.RamseyDevice(models.CaseIdlePair, device.DefaultOptions())
		return dev, models.BuildRamsey(models.CaseIdlePair, steps, 500).Circuit
	},
	"ramsey4": func(steps int) (*device.Device, *circuit.Circuit) {
		dev := models.RamseyDevice(models.CaseControlControl, device.DefaultOptions())
		return dev, models.BuildRamsey(models.CaseControlControl, steps, 500).Circuit
	},
	"dynamic": func(steps int) (*device.Device, *circuit.Circuit) {
		dev := device.NewLine("dyn3", 3, device.DefaultOptions())
		return dev, models.BuildDynamicBell(dev.DurFF)
	},
	"combined": func(steps int) (*device.Device, *circuit.Circuit) {
		return models.CombinedDevice(device.DefaultOptions()), models.BuildCombinedFloquet(steps)
	},
}

var strategies = map[string]func() pass.Pipeline{
	"bare":      pass.Bare,
	"twirled":   pass.Twirled,
	"dd":        func() pass.Pipeline { return pass.WithDD(dd.Aligned) },
	"staggered": func() pass.Pipeline { return pass.WithDD(dd.Staggered) },
	"ca-dd":     pass.CADD,
	"ca-ec":     pass.CAEC,
	"ca-ec+dd":  pass.Combined,
}

// passTable is the single source of the -passes vocabulary: parsePass,
// the unknown-pass error, and -list all derive from it.
var passTable = []struct {
	name  string
	build func() pass.Pass
}{
	{"twirl", func() pass.Pass { return pass.Twirl(twirl.GatesOnly) }},
	{"twirl:all", func() pass.Pass { return pass.Twirl(twirl.AllQubits) }},
	{"sched", pass.Schedule},
	// "dd" matches -strategy dd (aligned); the context-aware pass is dd:ca.
	{"dd", func() pass.Pass { return pass.DD(ddOptions(dd.Aligned)) }},
	{"dd:ca", func() pass.Pass { return pass.DD(dd.DefaultOptions()) }},
	{"dd:aligned", func() pass.Pass { return pass.DD(ddOptions(dd.Aligned)) }},
	{"dd:staggered", func() pass.Pass { return pass.DD(ddOptions(dd.Staggered)) }},
	{"ec", func() pass.Pass { return pass.EC(caec.DefaultOptions()) }},
	{"layout", func() pass.Pass { return layout.Select(layout.DefaultOptions()) }},
	{"route", func() pass.Pass { return layout.Route() }},
}

func ddOptions(s dd.Strategy) dd.Options {
	o := dd.DefaultOptions()
	o.Strategy = s
	return o
}

func passNames() []string {
	out := make([]string, len(passTable))
	for i, e := range passTable {
		out[i] = e.name
	}
	return out
}

// parsePass maps one -passes element to a Pass.
func parsePass(name string) (pass.Pass, error) {
	for _, e := range passTable {
		if e.name == name {
			return e.build(), nil
		}
	}
	return nil, fmt.Errorf("unknown pass %q (known: %s)", name, strings.Join(passNames(), ", "))
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// runLayoutReport runs the surrogate-pruned layout search for one
// workload+backend pair and prints its telemetry instead of compiling:
// the chosen region, exact vs surrogate scores, the pruning leverage, and
// the drift ratio past which the serve-layer monitor would recompile.
func runLayoutReport(backend, workload string, circ *circuit.Circuit) {
	if backend == "" {
		fmt.Fprintln(os.Stderr, "-layout-report needs -backend (see -list)")
		os.Exit(2)
	}
	dev, err := device.NewBackend(backend)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pl, rep, err := layout.ChooseWith(dev, circ, layout.DefaultOptions())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("layout report: %s (%dq) on %s (%dq)\n", workload, rep.Qubits, dev.Name, dev.NQubits)
	fmt.Printf("  region:    %v\n", pl.Region)
	fmt.Printf("  mapping:   logical->physical %v\n", pl.Phys)
	fmt.Printf("  exact:     %.6f rad predicted coherent error (best of %d exact-scored)\n",
		rep.BestExact, rep.ExactScored)
	if rep.Model != nil {
		fmt.Printf("  surrogate: %.6f rad predicted for the winner, fit rmse %.3g\n",
			rep.BestPredicted, rep.Model.RMSE)
		w := rep.Model.Weights()
		for j, name := range surrogate.FeatureNames {
			fmt.Printf("             %-12s %+.3g\n", name, w[j])
		}
	} else {
		fmt.Printf("  surrogate: not fitted (exhaustive exact scoring)\n")
	}
	fmt.Printf("  pruning:   %d candidates enumerated, %.1f%% spared exact scoring\n",
		rep.Enumerated, 100*rep.PruneRatio)
	fmt.Printf("  search:    %.1f ms, %.0f candidates/s, %d workers\n",
		rep.ElapsedMS, rep.CandidatesPerSec, rep.Workers)
	fmt.Printf("  recompile: exact-score ratio above %.2f triggers a new search (casq serve drift loop)\n",
		layout.DefaultRecompileThreshold)
}

// runSpec regenerates one paper experiment by id — the service-free way
// to exercise the engine axis, e.g. the full-127-qubit layer fidelity:
//
//	casq -spec fig8 -backend eagle127 -engine stab -shots 100000
//
// The bit-plane stabilizer engine advances 64 shots per word operation, so
// raising -shots to 10^5 costs tens of milliseconds per circuit, not
// seconds.
func runSpec(id, backend, engine string, full bool, shots int, seed int64, seedSet bool, tracer *obs.Tracer) {
	opts := experiments.FastOptions()
	if full {
		opts = experiments.DefaultOptions()
	}
	opts.Backend = backend
	opts.Engine = engine
	opts.Tracer = tracer
	if shots > 0 {
		opts.Shots = shots
	}
	if seedSet {
		opts.Seed = seed
	}
	start := time.Now()
	fig, err := experiments.Run(id, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(fig.Render())
	fmt.Printf("(%s in %.1fs)\n", id, time.Since(start).Seconds())
}

// writeTrace writes the recorded spans as a Chrome trace-event JSON file
// (load it in chrome://tracing or https://ui.perfetto.dev). A no-op when
// -trace was not given.
func writeTrace(path string, tr *obs.Tracer) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "trace: wrote %d spans to %s\n", len(tr.Events()), path)
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		serveMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "fabric" {
		fabricMain(os.Args[2:])
		return
	}
	var (
		workload = flag.String("workload", "ising", "workload name (see -list)")
		strategy = flag.String("strategy", "ca-ec+dd", "strategy name (see -list)")
		passes   = flag.String("passes", "", "comma-separated custom pipeline, e.g. twirl,sched,ec,sched,dd:aligned (overrides -strategy)")
		backend  = flag.String("backend", "", "compile onto a named registry backend via layout+routing (see -list)")
		spec     = flag.String("spec", "", "run a paper experiment by id (see experiments -list) instead of the compile demo")
		engine   = flag.String("engine", "", "simulation engine for -spec: statevector, stab, or auto")
		full     = flag.Bool("full", false, "full-quality sampling for -spec (default: fast reduced axes)")
		shots    = flag.Int("shots", 0, "shot budget per data point for -spec (0 = preset default)")
		steps    = flag.Int("steps", 2, "workload depth")
		seed     = flag.Int64("seed", 7, "twirl seed (compile demo) / experiment seed override (-spec)")
		draw     = flag.Bool("draw", false, "render the compiled circuit as ASCII")
		tracePth = flag.String("trace", "", "write compile/engine spans as a Chrome trace-event file (open in chrome://tracing or Perfetto)")
		list     = flag.Bool("list", false, "list workloads, strategies, passes, engines and backends")
		layRep   = flag.Bool("layout-report", false, "report the layout search for -workload on -backend (region, surrogate vs exact scores, pruning ratio) and exit")
	)
	flag.Parse()

	if *list {
		fmt.Printf("workloads:  %s\n", strings.Join(sortedKeys(workloads), " "))
		fmt.Printf("strategies: %s\n", strings.Join(sortedKeys(strategies), " "))
		fmt.Printf("passes:     %s\n", strings.Join(passNames(), " "))
		fmt.Printf("engines:    %s\n", strings.Join(exec.EngineNames(), " "))
		fmt.Printf("backends:\n")
		for _, b := range device.Backends() {
			fmt.Printf("  %-12s %3dq %-10s engines=%-16s %s\n",
				b.Name, b.NQubits, b.Family, strings.Join(b.Engines, ","), b.Description)
		}
		return
	}
	var tracer *obs.Tracer
	if *tracePth != "" {
		tracer = obs.NewTracer()
	}
	if *spec != "" {
		seedSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "seed" {
				seedSet = true
			}
		})
		runSpec(*spec, *backend, *engine, *full, *shots, *seed, seedSet, tracer)
		writeTrace(*tracePth, tracer)
		return
	}
	wf, ok := workloads[*workload]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}
	if *layRep {
		_, circ := wf(*steps)
		runLayoutReport(*backend, *workload, circ)
		return
	}
	var pl pass.Pipeline
	if *passes != "" {
		var ps []pass.Pass
		for _, name := range strings.Split(*passes, ",") {
			p, err := parsePass(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			ps = append(ps, p)
		}
		pl = pass.New("custom", ps...)
	} else {
		pf, ok := strategies[*strategy]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown strategy %q\n", *strategy)
			os.Exit(2)
		}
		pl = pf()
	}
	dev, circ := wf(*steps)
	if *backend != "" {
		bdev, err := device.NewBackend(*backend)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		dev = bdev
		pl = pass.New(pl.Name+"@"+*backend,
			append([]pass.Pass{layout.Select(layout.DefaultOptions()), layout.Route()}, pl.Passes...)...)
	}
	compiled, rep, err := pl.ApplyContext(
		&pass.Context{Dev: dev, Rng: rand.New(rand.NewSource(*seed)), Tracer: tracer}, circ)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	writeTrace(*tracePth, tracer)
	fmt.Printf("workload %s on %s (%d qubits), pipeline %s\n", *workload, dev.Name, dev.NQubits, pl)
	fmt.Printf("compiled: %d layers, duration %.0f ns\n", compiled.Depth(), rep.Duration)
	if rep.Layout != nil {
		fmt.Printf("layout: logical->physical %v (predicted error %.3f rad), %d routing SWAPs\n",
			rep.Layout, rep.LayoutScore, rep.Swaps)
	}
	if rep.DD.Total > 0 {
		fmt.Printf("DD: %d pulses over %d windows\n", rep.DD.Total, len(rep.DD.Windows))
		for _, w := range rep.DD.Windows {
			fmt.Printf("  window [%7.0f, %7.0f] ns qubits %v colors %v\n",
				w.Window.Start, w.Window.End, w.Window.Qubits, w.Colors)
		}
	}
	s := rep.EC
	if s.VirtualRZ+s.AbsorbedUcan+s.AbsorbedCX+s.InsertedRZZ+s.Conditional > 0 {
		fmt.Printf("CA-EC: %d virtual Rz, %d absorbed into Ucan/RZZ, %d through CX, %d native RZZ inserted, %d conditional, %d twirl sign flips, %d dropped (%.3f rad)\n",
			s.VirtualRZ, s.AbsorbedUcan, s.AbsorbedCX, s.InsertedRZZ, s.Conditional, s.SignFlips, s.Dropped, s.DroppedAngles)
	}
	if *draw {
		fmt.Println()
		fmt.Println(compiled.Draw())
	} else {
		fmt.Println()
		fmt.Println(compiled.String())
	}
}
