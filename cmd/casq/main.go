// Command casq compiles demo workloads with the context-aware passes and
// prints the resulting schedules, DD colorings, and compensation
// statistics.
//
// Usage:
//
//	casq -workload ising -strategy ca-ec+dd -steps 3 [-draw]
//	casq -workload ramsey1 -strategy ca-dd -steps 4
//	casq -list
package main

import (
	"flag"
	"fmt"
	"os"

	"casq/internal/circuit"
	"casq/internal/core"
	"casq/internal/dd"
	"casq/internal/device"
	"casq/internal/models"
)

var workloads = map[string]func(steps int) (*device.Device, *circuit.Circuit){
	"ising": func(steps int) (*device.Device, *circuit.Circuit) {
		return device.NewLine("ising6", 6, device.DefaultOptions()), models.BuildFloquetIsing(6, steps)
	},
	"heisenberg": func(steps int) (*device.Device, *circuit.Circuit) {
		return device.NewRing("heis12", 12, device.DefaultOptions()),
			models.BuildHeisenbergRing(12, steps, models.DefaultHeisenberg())
	},
	"ramsey1": func(steps int) (*device.Device, *circuit.Circuit) {
		dev := models.RamseyDevice(models.CaseIdlePair, device.DefaultOptions())
		return dev, models.BuildRamsey(models.CaseIdlePair, steps, 500).Circuit
	},
	"ramsey4": func(steps int) (*device.Device, *circuit.Circuit) {
		dev := models.RamseyDevice(models.CaseControlControl, device.DefaultOptions())
		return dev, models.BuildRamsey(models.CaseControlControl, steps, 500).Circuit
	},
	"dynamic": func(steps int) (*device.Device, *circuit.Circuit) {
		dev := device.NewLine("dyn3", 3, device.DefaultOptions())
		return dev, models.BuildDynamicBell(dev.DurFF)
	},
	"combined": func(steps int) (*device.Device, *circuit.Circuit) {
		return models.CombinedDevice(device.DefaultOptions()), models.BuildCombinedFloquet(steps)
	},
}

var strategies = map[string]func() core.Strategy{
	"bare":      core.Bare,
	"twirled":   core.Twirled,
	"dd":        func() core.Strategy { return core.WithDD(dd.Aligned) },
	"staggered": func() core.Strategy { return core.WithDD(dd.Staggered) },
	"ca-dd":     core.CADD,
	"ca-ec":     core.CAEC,
	"ca-ec+dd":  core.Combined,
}

func main() {
	var (
		workload = flag.String("workload", "ising", "workload name (see -list)")
		strategy = flag.String("strategy", "ca-ec+dd", "strategy name (see -list)")
		steps    = flag.Int("steps", 2, "workload depth")
		seed     = flag.Int64("seed", 7, "twirl seed")
		draw     = flag.Bool("draw", false, "render the compiled circuit as ASCII")
		list     = flag.Bool("list", false, "list workloads and strategies")
	)
	flag.Parse()

	if *list {
		fmt.Print("workloads: ")
		for name := range workloads {
			fmt.Printf("%s ", name)
		}
		fmt.Print("\nstrategies: ")
		for name := range strategies {
			fmt.Printf("%s ", name)
		}
		fmt.Println()
		return
	}
	wf, ok := workloads[*workload]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}
	sf, ok := strategies[*strategy]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown strategy %q\n", *strategy)
		os.Exit(2)
	}
	dev, circ := wf(*steps)
	comp := core.New(dev, sf(), *seed)
	compiled, info, err := comp.Compile(circ)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("workload %s on %s (%d qubits), strategy %s\n", *workload, dev.Name, dev.NQubits, *strategy)
	fmt.Printf("compiled: %d layers, duration %.0f ns\n", compiled.Depth(), info.Duration)
	if info.DDReport.Total > 0 {
		fmt.Printf("DD: %d pulses over %d windows\n", info.DDReport.Total, len(info.DDReport.Windows))
		for _, w := range info.DDReport.Windows {
			fmt.Printf("  window [%7.0f, %7.0f] ns qubits %v colors %v\n",
				w.Window.Start, w.Window.End, w.Window.Qubits, w.Colors)
		}
	}
	s := info.ECStats
	if s.VirtualRZ+s.AbsorbedUcan+s.AbsorbedCX+s.InsertedRZZ+s.Conditional > 0 {
		fmt.Printf("CA-EC: %d virtual Rz, %d absorbed into Ucan/RZZ, %d through CX, %d native RZZ inserted, %d conditional, %d twirl sign flips, %d dropped (%.3f rad)\n",
			s.VirtualRZ, s.AbsorbedUcan, s.AbsorbedCX, s.InsertedRZZ, s.Conditional, s.SignFlips, s.Dropped, s.DroppedAngles)
	}
	if *draw {
		fmt.Println()
		fmt.Println(compiled.Draw())
	} else {
		fmt.Println()
		fmt.Println(compiled.String())
	}
}
