package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"casq/internal/experiments"
	"casq/internal/fabric"
	"casq/internal/serve"
	"casq/internal/store"
	"casq/internal/sweep"
)

// fabricMain runs the `casq fabric` subcommand family: a coordinator
// that owns the sweep job queue and shared store, and workers that claim
// cells from it over HTTP.
func fabricMain(args []string) {
	usage := func() {
		fmt.Fprintf(os.Stderr, `usage: casq fabric coordinator [flags]   run the job queue + experiment API
       casq fabric worker      [flags]   claim and compute cells

A coordinator is a full 'casq serve' (figures, sweeps, SSE, healthz)
whose sweeps are sharded across every connected worker instead of run
in-process. Workers share the coordinator's content-addressed store, so
results are bit-identical to a single-process run and a worker crash
costs at most its one in-flight cell.
`)
		os.Exit(2)
	}
	if len(args) == 0 {
		usage()
	}
	switch args[0] {
	case "coordinator":
		coordinatorMain(args[1:])
	case "worker":
		workerMain(args[1:])
	default:
		usage()
	}
}

// coordinatorMain runs `casq fabric coordinator`: the serve API with a
// fabric.Coordinator attached, so POST /sweeps feeds the worker fleet.
func coordinatorMain(args []string) {
	fs := flag.NewFlagSet("casq fabric coordinator", flag.ExitOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:8823", "listen address")
		dir      = fs.String("store", "casq-store", "result store directory (empty = memory-only)")
		mem      = fs.Int("mem", store.DefaultMemCapacity, "in-memory cache capacity (entries)")
		leaseTTL = fs.Duration("lease-ttl", fabric.DefaultLeaseTTL, "cell lease lifetime; a worker silent this long is presumed dead")
	)
	harden := hardeningFlags(fs)
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	st, err := store.Open(*dir, *mem)
	if err != nil {
		log.Fatal(err)
	}
	coord := fabric.NewCoordinator(st, fabric.Options{LeaseTTL: *leaseTTL})
	defer coord.Close()
	cfg := serve.Config{Cache: sweep.NewCache(st), Coordinator: coord}
	harden(&cfg)
	srv := serve.NewWith(cfg)
	defer srv.Close()
	where := *dir
	if where == "" {
		where = "(memory only)"
	}
	log.Printf("casq fabric coordinator: listening on %s, store %s, lease TTL %s, %d experiments",
		*addr, where, *leaseTTL, len(experiments.IDs()))
	if err := listenGraceful(*addr, srv); err != nil {
		log.Fatal(err)
	}
}

// workerMain runs `casq fabric worker`: claim cells from a coordinator,
// compute them, write results through the shared store, repeat.
func workerMain(args []string) {
	fs := flag.NewFlagSet("casq fabric worker", flag.ExitOnError)
	var (
		base  = fs.String("coordinator", "http://127.0.0.1:8823", "coordinator base URL")
		slots = fs.Int("slots", 1, "cells computed concurrently")
		mem   = fs.Int("mem", store.DefaultMemCapacity, "local in-memory cache capacity (entries)")
		poll  = fs.Duration("poll", fabric.DefaultPoll, "idle claim-poll interval")
		id    = fs.String("id", "", "worker id in coordinator stats (default: hostname-pid)")
	)
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	w := fabric.NewWorker(*base, *mem)
	w.ID = *id
	w.Slots = *slots
	w.Poll = *poll
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("casq fabric worker: coordinator %s, %d slot(s), poll %s", *base, *slots, *poll)
	if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		log.Fatal(err)
	}
	log.Printf("casq fabric worker: stopped")
}
