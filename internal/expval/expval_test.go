package expval

import (
	"math"
	"math/rand"
	"testing"

	"casq/internal/sim"
)

func res(counts map[string]int) sim.Result {
	shots := 0
	for _, n := range counts {
		shots += n
	}
	return sim.Result{Counts: counts, Shots: shots}
}

func TestMarginalAndZ(t *testing.T) {
	r := res(map[string]int{"00": 50, "11": 30, "01": 20})
	if p := MarginalProbability(r, 0, 0); math.Abs(p-0.7) > 1e-12 {
		t.Errorf("P(bit0=0) = %v", p)
	}
	if z := ZExpectation(r, 1); math.Abs(z-0.0) > 1e-12 {
		t.Errorf("<Z1> = %v", z) // P(0)=0.5, P(1)=0.5
	}
}

func TestZZExpectation(t *testing.T) {
	r := res(map[string]int{"00": 40, "11": 40, "01": 10, "10": 10})
	if zz := ZZExpectation(r, 0, 1); math.Abs(zz-0.6) > 1e-12 {
		t.Errorf("<ZZ> = %v", zz)
	}
}

func TestCorrectReadoutIdentity(t *testing.T) {
	r := res(map[string]int{"00": 75, "11": 25})
	p, err := CorrectReadout(r, []int{0, 1}, "00", []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.75) > 1e-12 {
		t.Errorf("zero-error correction changed p: %v", p)
	}
}

func TestCorrectReadoutInvertsFlips(t *testing.T) {
	// Start from a known truth, apply symmetric flips, correct, recover.
	rng := rand.New(rand.NewSource(3))
	eps := []float64{0.03, 0.08}
	trueP := map[string]float64{"00": 0.6, "11": 0.4}
	counts := map[string]int{}
	n := 400000
	for i := 0; i < n; i++ {
		var bits [2]byte
		s := "11"
		if rng.Float64() < trueP["00"] {
			s = "00"
		}
		for k := 0; k < 2; k++ {
			bits[k] = s[k]
			if rng.Float64() < eps[k] {
				bits[k] = '0' + ('1' - bits[k])
			}
		}
		counts[string(bits[:])]++
	}
	r := res(counts)
	p, err := CorrectReadout(r, []int{0, 1}, "00", eps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.6) > 0.01 {
		t.Errorf("corrected P(00) = %v, want 0.6", p)
	}
	p11, err := CorrectReadout(r, []int{0, 1}, "11", eps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p11-0.4) > 0.01 {
		t.Errorf("corrected P(11) = %v, want 0.4", p11)
	}
}

func TestCorrectReadoutRejectsBadInput(t *testing.T) {
	r := res(map[string]int{"0": 1})
	if _, err := CorrectReadout(r, []int{0}, "00", []float64{0}); err == nil {
		t.Error("length mismatch not rejected")
	}
	if _, err := CorrectReadout(r, []int{0}, "0", []float64{0.5}); err == nil {
		t.Error("uninvertible error rate not rejected")
	}
}

func TestBinomialStdErr(t *testing.T) {
	se := BinomialStdErr(0.5, 100)
	if math.Abs(se-0.05) > 1e-12 {
		t.Errorf("stderr %v", se)
	}
	if BinomialStdErr(0.5, 0) != 0 {
		t.Error("zero shots should give zero stderr")
	}
}
