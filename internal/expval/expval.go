// Package expval provides observable estimation utilities on top of raw
// measurement counts: marginal probabilities, Pauli-Z expectation values,
// and tensor-product readout-error inversion (the "readout correction" the
// paper applies before comparing suppression strategies).
package expval

import (
	"errors"
	"math"

	"casq/internal/sim"
)

// MarginalProbability returns the probability that classical bit `bit`
// reads v.
func MarginalProbability(res sim.Result, bit, v int) float64 {
	if res.Shots == 0 {
		return 0
	}
	hits := 0
	for key, n := range res.Counts {
		if bit < len(key) && int(key[bit]-'0') == v {
			hits += n
		}
	}
	return float64(hits) / float64(res.Shots)
}

// ZExpectation returns <Z> of the given classical bit: P(0) - P(1).
func ZExpectation(res sim.Result, bit int) float64 {
	return MarginalProbability(res, bit, 0) - MarginalProbability(res, bit, 1)
}

// ZZExpectation returns <Z_a Z_b> over two classical bits.
func ZZExpectation(res sim.Result, a, b int) float64 {
	if res.Shots == 0 {
		return 0
	}
	s := 0
	for key, n := range res.Counts {
		za, zb := 1, 1
		if a < len(key) && key[a] == '1' {
			za = -1
		}
		if b < len(key) && key[b] == '1' {
			zb = -1
		}
		s += za * zb * n
	}
	return float64(s) / float64(res.Shots)
}

// CorrectReadout inverts independent symmetric per-bit assignment errors on
// a joint probability over the listed classical bits: for each bit with
// flip probability e, <Z> scales by 1/(1-2e), so the joint probability of a
// specific pattern is reconstructed from the corrected Z-moments.
// probs maps bit index -> assignment error. Returns the corrected
// probability of the given pattern over `bits` ('0'/'1' per entry).
func CorrectReadout(res sim.Result, bits []int, pattern string, errs []float64) (float64, error) {
	return invertMoments(func(mask int) float64 { return momentOf(res, bits, mask) },
		bits, pattern, errs)
}

// invertMoments is the estimator-independent core of readout correction:
// P(pattern) = 2^-k * sum over subsets S of prod_{i in S} z_i(pattern)
// * <prod_{i in S} Z_i>_corrected, where moment(mask) supplies the raw
// Z-moment of subset `mask` of the listed bits. Both the counts-map and the
// packed-word estimators share it, so the two paths invert identically.
func invertMoments(moment func(mask int) float64, bits []int, pattern string, errs []float64) (float64, error) {
	if len(bits) != len(pattern) || len(bits) != len(errs) {
		return 0, errors.New("expval: bits/pattern/errs length mismatch")
	}
	if len(bits) > 16 {
		return 0, errors.New("expval: too many bits for moment inversion")
	}
	k := len(bits)
	total := 0.0
	for mask := 0; mask < 1<<k; mask++ {
		// Corrected moment of subset `mask`.
		m := moment(mask)
		scale := 1.0
		signTarget := 1.0
		valid := true
		for i := 0; i < k; i++ {
			if mask&(1<<i) == 0 {
				continue
			}
			den := 1 - 2*errs[i]
			if den <= 0 {
				valid = false
				break
			}
			scale /= den
			if pattern[i] == '1' {
				signTarget = -signTarget
			}
		}
		if !valid {
			return 0, errors.New("expval: readout error >= 0.5 is uninvertible")
		}
		total += signTarget * m * scale
	}
	p := total / float64(int(1)<<k)
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p, nil
}

func momentOf(res sim.Result, bits []int, mask int) float64 {
	if res.Shots == 0 {
		return 0
	}
	s := 0
	for key, n := range res.Counts {
		z := 1
		for i, b := range bits {
			if mask&(1<<i) == 0 {
				continue
			}
			if b < len(key) && key[b] == '1' {
				z = -z
			}
		}
		s += z * n
	}
	return float64(s) / float64(res.Shots)
}

// BinomialStdErr returns the standard error of an empirical probability.
func BinomialStdErr(p float64, shots int) float64 {
	if shots <= 0 {
		return 0
	}
	v := p * (1 - p)
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v / float64(shots))
}
