package expval

import "casq/internal/sim"

// This file holds the packed-word estimators: the same observables as the
// counts-map API, accumulated directly from bit-plane outcome words
// (sim.PackedBits) — one popcount per 64 shots instead of a bitstring-map
// walk, with no per-shot unpacking. Out-of-range bit indices follow the
// counts-map convention: an unrecorded bit reads 0 (Z = +1).

// MarginalProbabilityPacked returns the probability that classical bit
// `bit` reads v, accumulated from packed outcome words. A bit that was
// never recorded matches neither value, as in MarginalProbability.
func MarginalProbabilityPacked(pb sim.PackedBits, bit, v int) float64 {
	if pb.Shots == 0 || bit < 0 || bit >= len(pb.Planes) {
		return 0
	}
	ones := pb.Ones(bit)
	if v == 0 {
		ones = pb.Shots - ones
	}
	return float64(ones) / float64(pb.Shots)
}

// ZExpectationPacked returns <Z> of the given classical bit: P(0) - P(1).
func ZExpectationPacked(pb sim.PackedBits, bit int) float64 {
	if pb.Shots == 0 || bit < 0 || bit >= len(pb.Planes) {
		return 0
	}
	return float64(pb.Shots-2*pb.Ones(bit)) / float64(pb.Shots)
}

// ZZExpectationPacked returns <Z_a Z_b> over two classical bits: one
// word-XOR plus popcount per 64 shots.
func ZZExpectationPacked(pb sim.PackedBits, a, b int) float64 {
	if pb.Shots == 0 {
		return 0
	}
	return float64(pb.Shots-2*pb.OnesParity([]int{a, b})) / float64(pb.Shots)
}

// CorrectReadoutPacked is CorrectReadout with the Z-moments accumulated
// from packed outcome words. It shares the moment-inversion core with the
// counts-map version, so for the same underlying shots the two return
// bit-identical probabilities.
func CorrectReadoutPacked(pb sim.PackedBits, bits []int, pattern string, errs []float64) (float64, error) {
	return invertMoments(func(mask int) float64 { return momentOfPacked(pb, bits, mask) },
		bits, pattern, errs)
}

func momentOfPacked(pb sim.PackedBits, bits []int, mask int) float64 {
	if pb.Shots == 0 {
		return 0
	}
	var sel []int
	for i, b := range bits {
		if mask&(1<<i) != 0 {
			sel = append(sel, b)
		}
	}
	return float64(pb.Shots-2*pb.OnesParity(sel)) / float64(pb.Shots)
}
