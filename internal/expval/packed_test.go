package expval

import (
	"math"
	"math/rand"
	"testing"

	"casq/internal/sim"
)

// randomOutcomes builds the same shot record twice: as packed bit-planes
// and as a bitstring-counts map, so every packed estimator can be pinned
// against its counts-map twin on identical data.
func randomOutcomes(t *testing.T, ncb, shots int, seed int64) (sim.PackedBits, sim.Result) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pb := sim.NewPackedBits(ncb, shots)
	res := sim.Result{Counts: map[string]int{}, Shots: shots}
	cbits := make([]int, ncb)
	for s := 0; s < shots; s++ {
		for c := 0; c < ncb; c++ {
			// Biased per-bit rates so moments are far from zero.
			v := 0
			if rng.Float64() < 0.15+0.2*float64(c) {
				v = 1
			}
			cbits[c] = v
			pb.Set(c, s, v)
		}
		res.Counts[sim.BitsKey(cbits)]++
	}
	return pb, res
}

// TestPackedEstimatorsMatchCounts pins the packed accumulators against the
// counts-map estimators on the same outcomes: both reduce the same integer
// tallies, so they must agree to rounding.
func TestPackedEstimatorsMatchCounts(t *testing.T) {
	pb, res := randomOutcomes(t, 3, 70, 5) // full block + tail
	const tol = 1e-12
	for bit := 0; bit < 3; bit++ {
		for v := 0; v < 2; v++ {
			got, want := MarginalProbabilityPacked(pb, bit, v), MarginalProbability(res, bit, v)
			if math.Abs(got-want) > tol {
				t.Errorf("marginal bit %d v=%d: packed %.15f vs counts %.15f", bit, v, got, want)
			}
		}
		got, want := ZExpectationPacked(pb, bit), ZExpectation(res, bit)
		if math.Abs(got-want) > tol {
			t.Errorf("<Z_%d>: packed %.15f vs counts %.15f", bit, got, want)
		}
	}
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			got, want := ZZExpectationPacked(pb, a, b), ZZExpectation(res, a, b)
			if math.Abs(got-want) > tol {
				t.Errorf("<Z_%d Z_%d>: packed %.15f vs counts %.15f", a, b, got, want)
			}
		}
	}
}

// TestPackedOutOfRangeBits pins the unrecorded-bit conventions against the
// counts-map versions: marginals match neither value, <Z> is 0, and an
// out-of-range factor in a product contributes Z = +1.
func TestPackedOutOfRangeBits(t *testing.T) {
	pb, res := randomOutcomes(t, 2, 40, 9)
	if got := MarginalProbabilityPacked(pb, 5, 0); got != MarginalProbability(res, 5, 0) {
		t.Errorf("out-of-range marginal: packed %v vs counts %v", got, MarginalProbability(res, 5, 0))
	}
	if got := ZExpectationPacked(pb, 5); got != ZExpectation(res, 5) {
		t.Errorf("out-of-range <Z>: packed %v vs counts %v", got, ZExpectation(res, 5))
	}
	got, want := ZZExpectationPacked(pb, 0, 5), ZZExpectation(res, 0, 5)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("out-of-range <ZZ>: packed %.15f vs counts %.15f", got, want)
	}
}

// TestCorrectReadoutPackedMatchesCounts: the two readout-correction paths
// share the inversion core and reduce identical integer parities, so the
// corrected probabilities must be bit-identical.
func TestCorrectReadoutPackedMatchesCounts(t *testing.T) {
	pb, res := randomOutcomes(t, 3, 500, 13)
	bits := []int{0, 2}
	errs := []float64{0.02, 0.04}
	for _, pattern := range []string{"00", "01", "10", "11"} {
		got, err := CorrectReadoutPacked(pb, bits, pattern, errs)
		if err != nil {
			t.Fatal(err)
		}
		want, err := CorrectReadout(res, bits, pattern, errs)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("pattern %s: packed %.17f vs counts %.17f (want bit-identical)", pattern, got, want)
		}
	}
	if _, err := CorrectReadoutPacked(pb, bits, "0", errs); err == nil {
		t.Error("length mismatch not rejected")
	}
	if _, err := CorrectReadoutPacked(pb, []int{0}, "0", []float64{0.5}); err == nil {
		t.Error("uninvertible readout error not rejected")
	}
}
