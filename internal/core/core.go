// Package core is the strategy layer of the context-aware compiler: it
// names the pass compositions the paper evaluates (Bare … Combined) and
// keeps the pre-redesign Compiler/Expectations/Counts API as thin wrappers
// over the composable internal/pass pipelines and the concurrent
// internal/exec executor.
//
// The canonical pipeline per twirl instance is
//
//	stratified circuit -> twirl -> schedule -> DD -> CA-EC -> schedule
//
// matching Sec. IV: DD is inserted first so that CA-EC sees the pulse
// schedule and compensates only what DD leaves behind (the combined
// strategy of Fig. 10). New code should compose pass.Pipeline values
// directly and run them through exec.Executor; Strategy remains the
// convenient named-configuration descriptor.
package core

import (
	"context"
	"math/rand"

	"casq/internal/caec"
	"casq/internal/circuit"
	"casq/internal/dd"
	"casq/internal/device"
	"casq/internal/exec"
	"casq/internal/pass"
	"casq/internal/sched"
	"casq/internal/sim"
	"casq/internal/twirl"
)

// Strategy selects the error-suppression configuration of a compilation.
type Strategy struct {
	Name       string
	Twirl      bool
	TwirlScope twirl.Scope
	DD         dd.Strategy
	DDOpts     dd.Options
	EC         bool
	ECOpts     caec.Options
}

// The named strategies benchmarked throughout the paper.

// Bare applies scheduling only (readout correction is a simulator concern).
func Bare() Strategy {
	return Strategy{Name: "bare"}
}

// Twirled applies Pauli twirling only — the baseline of Figs. 6-8.
func Twirled() Strategy {
	return Strategy{Name: "twirled", Twirl: true}
}

// WithDD applies twirling plus a DD strategy.
func WithDD(s dd.Strategy) Strategy {
	opts := dd.DefaultOptions()
	opts.Strategy = s
	return Strategy{Name: "dd-" + s.String(), Twirl: true, DD: s, DDOpts: opts}
}

// CADD is the paper's context-aware dynamical decoupling.
func CADD() Strategy {
	st := WithDD(dd.ContextAware)
	st.Name = "ca-dd"
	return st
}

// CAEC is the paper's context-aware error compensation.
func CAEC() Strategy {
	return Strategy{Name: "ca-ec", Twirl: true, EC: true, ECOpts: caec.DefaultOptions()}
}

// Combined applies CA-DD first and CA-EC on what DD leaves behind
// (Sec. V E).
func Combined() Strategy {
	st := CADD()
	st.Name = "ca-ec+dd"
	st.EC = true
	st.ECOpts = caec.DefaultOptions()
	return st
}

// Pipeline lowers the strategy to its pass composition: [twirl] -> sched
// -> [dd] -> [ec]. The result can be edited or recomposed freely before
// execution.
func (st Strategy) Pipeline() pass.Pipeline {
	var passes []pass.Pass
	if st.Twirl {
		passes = append(passes, pass.Twirl(st.TwirlScope))
	}
	passes = append(passes, pass.Schedule())
	if st.DD != dd.None {
		passes = append(passes, pass.DD(st.DDOpts))
	}
	if st.EC {
		passes = append(passes, pass.EC(st.ECOpts))
	}
	return pass.New(st.Name, passes...)
}

// Info reports what the passes did during one compilation.
type Info struct {
	DDReport dd.Report
	ECStats  caec.Stats
	Duration float64 // scheduled duration, ns
}

// Compiler compiles circuits for a device under a strategy.
//
// Deprecated-style compatibility shim: Compile keeps the pre-redesign
// shared-RNG semantics (successive Compile calls consume one twirl
// stream), while Expectations and Counts delegate to the concurrent
// executor with per-instance derived seeds.
type Compiler struct {
	Dev      *device.Device
	Strategy Strategy
	Rng      *rand.Rand
}

// New returns a Compiler with a deterministic twirl sampler.
func New(dev *device.Device, st Strategy, seed int64) *Compiler {
	return &Compiler{Dev: dev, Strategy: st, Rng: rand.New(rand.NewSource(seed))}
}

// Compile runs the strategy's pass pipeline on one twirl instance of the
// circuit.
func (c *Compiler) Compile(circ *circuit.Circuit) (*circuit.Circuit, Info, error) {
	out, rep, err := c.Strategy.Pipeline().Apply(c.Dev, c.Rng, circ)
	if err != nil {
		return nil, Info{}, err
	}
	return out, Info{DDReport: rep.DD, ECStats: rep.EC, Duration: rep.Duration}, nil
}

// RunOptions configure twirl-averaged execution.
type RunOptions struct {
	Instances int // twirl instances to average over (min 1)
	Workers   int // concurrent instances; 0 = GOMAXPROCS
	Cfg       sim.Config
}

// Executor returns the concurrent executor for this compiler's strategy.
func (c *Compiler) Executor() *exec.Executor {
	return exec.New(c.Dev, c.Strategy.Pipeline())
}

// execOptions derives the executor options for one averaged run. The base
// seed is drawn from the compiler's shared Rng so that, as before the
// redesign, successive Expectations/Counts calls on one Compiler average
// over fresh independent twirl samples while remaining deterministic from
// the construction seed.
func (c *Compiler) execOptions(ro RunOptions) exec.RunOptions {
	return exec.RunOptions{Instances: ro.Instances, Workers: ro.Workers, Seed: c.Rng.Int63(), Cfg: ro.Cfg}
}

// Expectations compiles `Instances` twirl samples of the circuit and
// averages the simulated expectation values across them, distributing the
// full shot budget (including the remainder) over the instances.
func (c *Compiler) Expectations(circ *circuit.Circuit, obs []sim.ObsSpec, ro RunOptions) ([]float64, error) {
	return c.Executor().Expectations(context.Background(), circ, obs, c.execOptions(ro))
}

// Counts compiles twirl samples and merges measured bitstring counts.
func (c *Compiler) Counts(circ *circuit.Circuit, ro RunOptions) (sim.Result, error) {
	return c.Executor().Counts(context.Background(), circ, c.execOptions(ro))
}

// IdealExpectations runs the uncompiled circuit noiselessly — the "Ideal"
// curves of Figs. 6-7.
func IdealExpectations(dev *device.Device, circ *circuit.Circuit, obs []sim.ObsSpec) ([]float64, error) {
	c := circ.Clone()
	sched.Schedule(c, dev)
	r := sim.New(dev, sim.Ideal())
	return r.Expectations(c, obs)
}
