// Package core is the context-aware compiler: it ties the individual passes
// (Pauli twirling, scheduling, CA-DD insertion, CA-EC compensation) into the
// pipelines the paper evaluates, and provides the twirl-averaged execution
// helpers the experiment harnesses use.
//
// The canonical pipeline per twirl instance is
//
//	stratified circuit -> twirl -> schedule -> DD -> CA-EC -> schedule
//
// matching Sec. IV: DD is inserted first so that CA-EC sees the pulse
// schedule and compensates only what DD leaves behind (the combined strategy
// of Fig. 10).
package core

import (
	"fmt"
	"math/rand"

	"casq/internal/caec"
	"casq/internal/circuit"
	"casq/internal/dd"
	"casq/internal/device"
	"casq/internal/sched"
	"casq/internal/sim"
	"casq/internal/twirl"
)

// Strategy selects the error-suppression configuration of a compilation.
type Strategy struct {
	Name       string
	Twirl      bool
	TwirlScope twirl.Scope
	DD         dd.Strategy
	DDOpts     dd.Options
	EC         bool
	ECOpts     caec.Options
}

// The named strategies benchmarked throughout the paper.

// Bare applies scheduling only (readout correction is a simulator concern).
func Bare() Strategy {
	return Strategy{Name: "bare"}
}

// Twirled applies Pauli twirling only — the baseline of Figs. 6-8.
func Twirled() Strategy {
	return Strategy{Name: "twirled", Twirl: true}
}

// WithDD applies twirling plus a DD strategy.
func WithDD(s dd.Strategy) Strategy {
	opts := dd.DefaultOptions()
	opts.Strategy = s
	return Strategy{Name: "dd-" + s.String(), Twirl: true, DD: s, DDOpts: opts}
}

// CADD is the paper's context-aware dynamical decoupling.
func CADD() Strategy {
	st := WithDD(dd.ContextAware)
	st.Name = "ca-dd"
	return st
}

// CAEC is the paper's context-aware error compensation.
func CAEC() Strategy {
	return Strategy{Name: "ca-ec", Twirl: true, EC: true, ECOpts: caec.DefaultOptions()}
}

// Combined applies CA-DD first and CA-EC on what DD leaves behind
// (Sec. V E).
func Combined() Strategy {
	st := CADD()
	st.Name = "ca-ec+dd"
	st.EC = true
	st.ECOpts = caec.DefaultOptions()
	return st
}

// Info reports what the passes did during one compilation.
type Info struct {
	DDReport dd.Report
	ECStats  caec.Stats
	Duration float64 // scheduled duration, ns
}

// Compiler compiles circuits for a device under a strategy.
type Compiler struct {
	Dev      *device.Device
	Strategy Strategy
	Rng      *rand.Rand
}

// New returns a Compiler with a deterministic twirl sampler.
func New(dev *device.Device, st Strategy, seed int64) *Compiler {
	return &Compiler{Dev: dev, Strategy: st, Rng: rand.New(rand.NewSource(seed))}
}

// Compile runs the pass pipeline on one twirl instance of the circuit.
func (c *Compiler) Compile(circ *circuit.Circuit) (*circuit.Circuit, Info, error) {
	var info Info
	out := circ.Clone()
	var err error
	if c.Strategy.Twirl {
		out, err = twirl.Instance(out, c.Strategy.TwirlScope, c.Rng)
		if err != nil {
			return nil, info, fmt.Errorf("core: twirl: %w", err)
		}
	}
	sched.Schedule(out, c.Dev)
	if c.Strategy.DD != dd.None {
		info.DDReport, err = dd.Insert(out, c.Dev, c.Strategy.DDOpts)
		if err != nil {
			return nil, info, fmt.Errorf("core: dd: %w", err)
		}
	}
	if c.Strategy.EC {
		out, info.ECStats, err = caec.Apply(out, c.Dev, c.Strategy.ECOpts)
		if err != nil {
			return nil, info, fmt.Errorf("core: ca-ec: %w", err)
		}
	}
	info.Duration = sched.Schedule(out, c.Dev)
	if err := out.Validate(); err != nil {
		return nil, info, fmt.Errorf("core: compiled circuit invalid: %w", err)
	}
	return out, info, nil
}

// RunOptions configure twirl-averaged execution.
type RunOptions struct {
	Instances int // twirl instances to average over (min 1)
	Cfg       sim.Config
}

// Expectations compiles `Instances` twirl samples of the circuit and
// averages the simulated expectation values across them, splitting the shot
// budget evenly.
func (c *Compiler) Expectations(circ *circuit.Circuit, obs []sim.ObsSpec, ro RunOptions) ([]float64, error) {
	if ro.Instances < 1 {
		ro.Instances = 1
	}
	shots := ro.Cfg.Shots
	if shots < ro.Instances {
		shots = ro.Instances
	}
	perInst := shots / ro.Instances
	sums := make([]float64, len(obs))
	for k := 0; k < ro.Instances; k++ {
		compiled, _, err := c.Compile(circ)
		if err != nil {
			return nil, err
		}
		cfg := ro.Cfg
		cfg.Shots = perInst
		cfg.Seed = ro.Cfg.Seed + int64(k)*101
		r := sim.New(c.Dev, cfg)
		vals, err := r.Expectations(compiled, obs)
		if err != nil {
			return nil, err
		}
		for i, v := range vals {
			sums[i] += v
		}
	}
	for i := range sums {
		sums[i] /= float64(ro.Instances)
	}
	return sums, nil
}

// Counts compiles twirl samples and merges measured bitstring counts.
func (c *Compiler) Counts(circ *circuit.Circuit, ro RunOptions) (sim.Result, error) {
	if ro.Instances < 1 {
		ro.Instances = 1
	}
	shots := ro.Cfg.Shots
	if shots < ro.Instances {
		shots = ro.Instances
	}
	perInst := shots / ro.Instances
	total := sim.Result{Counts: map[string]int{}}
	for k := 0; k < ro.Instances; k++ {
		compiled, _, err := c.Compile(circ)
		if err != nil {
			return sim.Result{}, err
		}
		cfg := ro.Cfg
		cfg.Shots = perInst
		cfg.Seed = ro.Cfg.Seed + int64(k)*101
		r := sim.New(c.Dev, cfg)
		res, err := r.Counts(compiled)
		if err != nil {
			return sim.Result{}, err
		}
		for k2, v := range res.Counts {
			total.Counts[k2] += v
		}
		total.Shots += res.Shots
	}
	return total, nil
}

// IdealExpectations runs the uncompiled circuit noiselessly — the "Ideal"
// curves of Figs. 6-7.
func IdealExpectations(dev *device.Device, circ *circuit.Circuit, obs []sim.ObsSpec) ([]float64, error) {
	c := circ.Clone()
	sched.Schedule(c, dev)
	r := sim.New(dev, sim.Ideal())
	return r.Expectations(c, obs)
}
