package core

import (
	"math"
	"testing"

	"casq/internal/circuit"
	"casq/internal/dd"
	"casq/internal/device"
	"casq/internal/gates"
	"casq/internal/models"
	"casq/internal/sim"
)

func testDevice() *device.Device {
	return device.NewLine("core", 4, device.DefaultOptions())
}

func TestStrategyPresets(t *testing.T) {
	cases := []struct {
		st     Strategy
		twirl  bool
		ddKind dd.Strategy
		ec     bool
	}{
		{Bare(), false, dd.None, false},
		{Twirled(), true, dd.None, false},
		{WithDD(dd.Aligned), true, dd.Aligned, false},
		{CADD(), true, dd.ContextAware, false},
		{CAEC(), true, dd.None, true},
		{Combined(), true, dd.ContextAware, true},
	}
	for _, c := range cases {
		if c.st.Twirl != c.twirl || c.st.DD != c.ddKind || c.st.EC != c.ec {
			t.Errorf("strategy %s misconfigured: %+v", c.st.Name, c.st)
		}
	}
}

func TestCompileProducesValidCircuits(t *testing.T) {
	dev := testDevice()
	base := models.BuildFloquetIsing(4, 2)
	for _, st := range []Strategy{Bare(), Twirled(), WithDD(dd.Aligned), CADD(), CAEC(), Combined()} {
		comp := New(dev, st, 11)
		out, info, err := comp.Compile(base)
		if err != nil {
			t.Fatalf("%s: %v", st.Name, err)
		}
		if err := out.Validate(); err != nil {
			t.Fatalf("%s produced invalid circuit: %v", st.Name, err)
		}
		if info.Duration <= 0 {
			t.Errorf("%s: zero duration", st.Name)
		}
		if st.DD == dd.ContextAware && info.DDReport.Total == 0 {
			t.Errorf("%s: no DD pulses inserted", st.Name)
		}
		if st.EC && info.ECStats.VirtualRZ == 0 {
			t.Errorf("%s: no EC corrections", st.Name)
		}
	}
}

func TestCompileDoesNotMutateInput(t *testing.T) {
	dev := testDevice()
	base := models.BuildFloquetIsing(4, 1)
	depth := base.Depth()
	comp := New(dev, Combined(), 1)
	if _, _, err := comp.Compile(base); err != nil {
		t.Fatal(err)
	}
	if base.Depth() != depth {
		t.Error("Compile mutated the input circuit")
	}
	if base.CountGates(gates.XDD) != 0 {
		t.Error("Compile inserted pulses into the input circuit")
	}
}

func TestExpectationsAveragesInstances(t *testing.T) {
	dev := testDevice()
	c := circuit.New(4, 0)
	c.AddLayer(circuit.OneQubitLayer).H(0)
	c.AddLayer(circuit.TwoQubitLayer).ECR(1, 2)
	comp := New(dev, Twirled(), 5)
	cfg := sim.DefaultConfig()
	cfg.Shots = 64
	vals, err := comp.Expectations(c, []sim.ObsSpec{{0: 'X'}}, RunOptions{Instances: 4, Cfg: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]) > 1 {
		t.Errorf("expectation out of range: %v", vals[0])
	}
	if vals[0] < 0.5 {
		t.Errorf("<X0> = %v, expected close to 1 for short circuit", vals[0])
	}
}

func TestCountsMergesInstances(t *testing.T) {
	dev := testDevice()
	c := circuit.New(4, 1)
	c.AddLayer(circuit.OneQubitLayer).X(0)
	c.AddLayer(circuit.MeasureLayer).Measure(0, 0)
	comp := New(dev, Twirled(), 5)
	cfg := sim.DefaultConfig()
	cfg.Shots = 80
	cfg.EnableReadoutErr = false
	res, err := comp.Counts(c, RunOptions{Instances: 4, Cfg: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shots != 80 {
		t.Errorf("merged shots %d", res.Shots)
	}
	if p := res.Probability("1"); p < 0.95 {
		t.Errorf("P(1) = %v", p)
	}
}

func TestIdealExpectations(t *testing.T) {
	dev := testDevice()
	c := circuit.New(4, 0)
	c.AddLayer(circuit.OneQubitLayer).H(0)
	vals, err := IdealExpectations(dev, c, []sim.ObsSpec{{0: 'X'}, {0: 'Z'}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-1) > 1e-9 || math.Abs(vals[1]) > 1e-9 {
		t.Errorf("ideal <X>,<Z> = %v", vals)
	}
}

func TestCombinedImprovesOnTwirledIsing(t *testing.T) {
	// End-to-end: the combined strategy must beat plain twirling on the
	// Ising workload at a depth where coherent errors dominate.
	devOpts := device.DefaultOptions()
	devOpts.Seed = 37
	dev := device.NewLine("e2e", 6, devOpts)
	c := models.BuildFloquetIsing(6, 4)
	obs := []sim.ObsSpec{{0: 'X', 5: 'X'}}
	run := func(st Strategy) float64 {
		comp := New(dev, st, 3)
		cfg := sim.DefaultConfig()
		cfg.Shots = 96
		cfg.EnableReadoutErr = false
		vals, err := comp.Expectations(c, obs, RunOptions{Instances: 6, Cfg: cfg})
		if err != nil {
			t.Fatal(err)
		}
		return vals[0] // ideal value at d=4 is +1
	}
	plain := run(Twirled())
	combined := run(Combined())
	if combined < plain+0.05 {
		t.Errorf("combined (%v) should clearly beat twirled (%v)", combined, plain)
	}
}
