// Package walsh constructs Walsh–Hadamard dynamical-decoupling sequences
// (paper Sec. III C and Fig. 5b). Sequence k over a window [0, T] is defined
// by the k-th row of a sign matrix whose rows are mutually orthogonal and
// (for k >= 1) balanced. An X pulse is placed at every sign flip of the row;
// if the row ends in the -1 state a final pulse at T restores the frame.
//
// Properties the compiler relies on (proved in the tests):
//   - each sequence with k >= 1 has zero time-integral of its sign function,
//     so single-qubit Z errors average out;
//   - any two distinct sequences have orthogonal sign functions, so the
//     two-qubit ZZ error between any two differently-colored qubits averages
//     out as well (including color 0 = "no pulses").
package walsh

import (
	"fmt"
	"math/bits"
	"sort"
)

// Signs returns the sign pattern of Walsh sequence k sampled on 2^ceil bins,
// where 2^ceil is the smallest power of two exceeding k. The pattern is the
// k-th row of the naturally-ordered (Paley/Hadamard) Walsh matrix:
// sign(k, j) = (-1)^popcount(k AND j).
func Signs(k, nBins int) []int {
	if nBins <= 0 || nBins&(nBins-1) != 0 {
		panic(fmt.Sprintf("walsh: nBins must be a power of two, got %d", nBins))
	}
	if k < 0 || k >= nBins {
		panic(fmt.Sprintf("walsh: sequence index %d out of range for %d bins", k, nBins))
	}
	out := make([]int, nBins)
	for j := 0; j < nBins; j++ {
		if bits.OnesCount(uint(k&j))%2 == 0 {
			out[j] = 1
		} else {
			out[j] = -1
		}
	}
	return out
}

// MinBins returns the smallest power-of-two bin count that can represent
// sequence k.
func MinBins(k int) int {
	n := 1
	for n <= k {
		n <<= 1
	}
	return n
}

// PulseTimes returns the X-pulse times of Walsh sequence k within a window
// of duration T, including a frame-restoring pulse at T when the sign
// pattern ends at -1. Sequence 0 has no pulses. All sequences are sampled on
// a common bin count so that pulse times of different colors interleave
// consistently; nBins must be >= MinBins(k).
func PulseTimes(k int, T float64, nBins int) []float64 {
	if k == 0 {
		return nil
	}
	s := Signs(k, nBins)
	dt := T / float64(nBins)
	var times []float64
	prev := s[0]
	if prev == -1 {
		// Start in the flipped frame: pulse at t=0.
		times = append(times, 0)
	}
	for j := 1; j < nBins; j++ {
		if s[j] != prev {
			times = append(times, float64(j)*dt)
			prev = s[j]
		}
	}
	if prev == -1 {
		times = append(times, T)
	}
	return times
}

// NumPulses returns the pulse count of sequence k (on MinBins bins), the
// quantity the coloring heuristic minimizes.
func NumPulses(k int) int {
	if k == 0 {
		return 0
	}
	return len(PulseTimes(k, 1, MinBins(k)))
}

// SignIntegral returns the integral of the sign function of sequence k over
// a unit window; it is 0 for all k >= 1.
func SignIntegral(k, nBins int) float64 {
	s := Signs(k, nBins)
	sum := 0
	for _, v := range s {
		sum += v
	}
	return float64(sum) / float64(nBins)
}

// PairIntegral returns the integral of the product of sign functions of
// sequences k1, k2 over a unit window; it is 0 for k1 != k2 and 1 for
// k1 == k2. This is the ZZ-suppression condition (zero inner product
// between rows, paper Sec. III C).
func PairIntegral(k1, k2, nBins int) float64 {
	s1 := Signs(k1, nBins)
	s2 := Signs(k2, nBins)
	sum := 0
	for i := range s1 {
		sum += s1[i] * s2[i]
	}
	return float64(sum) / float64(nBins)
}

// PulseCount returns the number of pulses of row k sampled on nBins bins
// (sign flips plus the frame-restoring pulse at T if needed).
func PulseCount(k, nBins int) int {
	return len(PulseTimes(k, 1, nBins))
}

// Palette returns row indices for nColors colors, all on a common bin grid,
// ordered by increasing pulse count (then row index). Palette[0] is always
// row 0 (no pulses) and Palette[1] is always the single mid-window flip —
// the pattern of an ECR control's internal echo — so that the CA-DD
// coloring can reserve color 1 for gate controls. The compiler's heuristic
// of preferring low colors then directly minimizes DD pulse count (paper
// Fig. 5b).
func Palette(nColors int) []int {
	nb := MinBins(nColors - 1)
	if nb < 4 {
		nb = 4
	}
	rows := make([]int, nb)
	for i := range rows {
		rows[i] = i
	}
	sort.SliceStable(rows, func(i, j int) bool {
		pi, pj := PulseCount(rows[i], nb), PulseCount(rows[j], nb)
		if pi != pj {
			return pi < pj
		}
		return rows[i] < rows[j]
	})
	return rows[:nColors]
}

// Dictionary is a pre-built table of pulse-time templates (on the unit
// window) for colors 0..MaxColor, as Algorithm 1 consumes ("dictionary of
// dynamical decoupling sequences L_DD").
type Dictionary struct {
	MaxColor int
	NBins    int
	times    [][]float64 // unit-window pulse offsets per color
}

// NewDictionary builds templates for colors 0..maxColor on a common bin
// grid.
func NewDictionary(maxColor int) *Dictionary {
	nb := MinBins(maxColor)
	if nb < 4 {
		nb = 4
	}
	d := &Dictionary{MaxColor: maxColor, NBins: nb}
	for k := 0; k <= maxColor; k++ {
		d.times = append(d.times, PulseTimes(k, 1, nb))
	}
	return d
}

// Times returns the pulse times for the given color scaled to a window of
// duration T starting at t0. Color indices beyond MaxColor panic.
func (d *Dictionary) Times(color int, t0, T float64) []float64 {
	if color < 0 || color > d.MaxColor {
		panic(fmt.Sprintf("walsh: color %d outside dictionary range [0,%d]", color, d.MaxColor))
	}
	tpl := d.times[color]
	out := make([]float64, len(tpl))
	for i, u := range tpl {
		out[i] = t0 + u*T
	}
	sort.Float64s(out)
	return out
}
