package walsh

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSignsBasics(t *testing.T) {
	if got := Signs(0, 4); got[0] != 1 || got[3] != 1 {
		t.Error("row 0 must be all +1")
	}
	row1 := Signs(1, 4)
	want := []int{1, -1, 1, -1}
	for i := range want {
		if row1[i] != want[i] {
			t.Fatalf("row 1 = %v", row1)
		}
	}
}

func TestBalancedRows(t *testing.T) {
	// Every row k >= 1 integrates to zero: the condition for single-qubit Z
	// suppression.
	for _, nb := range []int{4, 8, 16} {
		for k := 1; k < nb; k++ {
			if v := SignIntegral(k, nb); v != 0 {
				t.Errorf("row %d on %d bins has integral %v", k, nb, v)
			}
		}
	}
}

func TestPairwiseOrthogonality(t *testing.T) {
	// Distinct rows have zero product integral: the pairwise ZZ suppression
	// condition of paper Sec. III C ("zero inner product between any two
	// rows").
	nb := 16
	for a := 0; a < nb; a++ {
		for b := 0; b < nb; b++ {
			v := PairIntegral(a, b, nb)
			if a == b && math.Abs(v-1) > 1e-12 {
				t.Errorf("row %d self-integral %v", a, v)
			}
			if a != b && math.Abs(v) > 1e-12 {
				t.Errorf("rows %d,%d not orthogonal: %v", a, b, v)
			}
		}
	}
}

func TestPulseTimesFrameRestored(t *testing.T) {
	// Every sequence must use an even number of pulses so the logical frame
	// is restored at the window end.
	for k := 1; k < 16; k++ {
		times := PulseTimes(k, 1000, 16)
		if len(times)%2 != 0 {
			t.Errorf("row %d has odd pulse count %d", k, len(times))
		}
		for _, tm := range times {
			if tm < 0 || tm > 1000 {
				t.Errorf("row %d pulse at %v outside window", k, tm)
			}
		}
	}
}

func TestPulseTimesReconstructSigns(t *testing.T) {
	// Toggling +1/-1 at each pulse time must reproduce the sign pattern.
	for k := 0; k < 8; k++ {
		nb := 8
		times := PulseTimes(k, float64(nb), nb)
		signs := Signs(k, nb)
		cur := 1
		ti := 0
		for bin := 0; bin < nb; bin++ {
			mid := float64(bin) + 0.5
			for ti < len(times) && times[ti] <= mid {
				cur = -cur
				ti++
			}
			if cur != signs[bin] {
				t.Fatalf("row %d: reconstructed sign at bin %d = %d, want %d", k, bin, cur, signs[bin])
			}
		}
	}
}

func TestKnownPulsePositions(t *testing.T) {
	// The mid-flip row (nb/2) pulses at T/2 and T; the quarter row pulses at
	// T/4 and 3T/4 — the two sequences of paper Fig. 3 cases II/III.
	T := 800.0
	mid := PulseTimes(4, T, 8)
	if len(mid) != 2 || mid[0] != T/2 || mid[1] != T {
		t.Errorf("row 4 pulses %v", mid)
	}
	quarter := PulseTimes(6, T, 8)
	if len(quarter) != 2 || quarter[0] != T/4 || quarter[1] != 3*T/4 {
		t.Errorf("row 6 pulses %v", quarter)
	}
}

func TestPalette(t *testing.T) {
	pal := Palette(8)
	if len(pal) != 8 || pal[0] != 0 {
		t.Fatalf("palette %v", pal)
	}
	// Color 1 must be the single mid-window flip (the ECR echo pattern).
	if pal[1] != 4 {
		t.Errorf("palette[1] = %d, want 4 (mid flip on 8 bins)", pal[1])
	}
	// Non-decreasing pulse count.
	nb := MinBins(7)
	prev := 0
	for _, row := range pal {
		pc := PulseCount(row, nb)
		if pc < prev {
			t.Errorf("palette not sorted by pulse count: %v", pal)
		}
		prev = pc
	}
}

func TestMinBins(t *testing.T) {
	cases := map[int]int{0: 1, 1: 2, 2: 4, 3: 4, 4: 8, 7: 8, 8: 16}
	for k, want := range cases {
		if got := MinBins(k); got != want {
			t.Errorf("MinBins(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestDictionaryScaling(t *testing.T) {
	d := NewDictionary(7)
	times := d.Times(1, 100, 400)
	for _, tm := range times {
		if tm < 100 || tm > 500 {
			t.Errorf("scaled pulse %v outside [100,500]", tm)
		}
	}
	if len(d.Times(0, 0, 100)) != 0 {
		t.Error("color 0 must have no pulses")
	}
}

func TestOrthogonalityProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		nb := 32
		ka, kb := int(a)%nb, int(b)%nb
		v := PairIntegral(ka, kb, nb)
		if ka == kb {
			return math.Abs(v-1) < 1e-12
		}
		return math.Abs(v) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
