package models

import (
	"math"
	"testing"

	"casq/internal/circuit"
	"casq/internal/core"
	"casq/internal/device"
	"casq/internal/gates"
	"casq/internal/sim"
)

func TestRamseyCircuitsValid(t *testing.T) {
	for _, rc := range []RamseyCase{CaseIdlePair, CaseControlSpectator, CaseTargetSpectator, CaseControlControl} {
		spec := BuildRamsey(rc, 3, 500)
		if err := spec.Circuit.Validate(); err != nil {
			t.Errorf("%v: %v", rc, err)
		}
		if len(spec.Probes) == 0 {
			t.Errorf("%v: no probes", rc)
		}
		dev := RamseyDevice(rc, device.DefaultOptions())
		if err := dev.Validate(); err != nil {
			t.Errorf("%v device: %v", rc, err)
		}
	}
}

func TestRamseyIdealReturnsToPlus(t *testing.T) {
	// With no noise, every Ramsey case must keep the probes in |+>.
	for _, rc := range []RamseyCase{CaseIdlePair, CaseControlSpectator, CaseTargetSpectator, CaseControlControl} {
		dev := RamseyDevice(rc, device.DefaultOptions())
		spec := BuildRamsey(rc, 4, 500)
		obs := make([]sim.ObsSpec, len(spec.Probes))
		for i, q := range spec.Probes {
			obs[i] = sim.ObsSpec{q: 'X'}
		}
		vals, err := core.IdealExpectations(dev, spec.Circuit, obs)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range vals {
			if math.Abs(v-1) > 1e-9 {
				t.Errorf("%v: probe %d ideal <X> = %v, want 1", rc, spec.Probes[i], v)
			}
		}
	}
}

func TestIsingIdealOscillates(t *testing.T) {
	dev := device.NewLine("ising", 6, device.DefaultOptions())
	obs := []sim.ObsSpec{{0: 'X', 5: 'X'}}
	want := map[int]float64{2: -1, 4: 1, 6: -1, 8: 1}
	for d, expect := range want {
		c := BuildFloquetIsing(6, d)
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		vals, err := core.IdealExpectations(dev, c, obs)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(vals[0]-expect) > 1e-9 {
			t.Errorf("ideal <X0X5>(d=%d) = %v, want %v", d, vals[0], expect)
		}
	}
}

func TestHeisenbergStructure(t *testing.T) {
	c := BuildHeisenbergRing(12, 2, DefaultHeisenberg())
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// 2 steps x 3 colored layers + prep.
	if c.Depth() != 7 {
		t.Errorf("depth %d", c.Depth())
	}
	// Every step covers all 12 ring edges exactly once.
	gateCount := c.CountGates(gates.Ucan)
	if gateCount != 24 {
		t.Errorf("Ucan count %d, want 24", gateCount)
	}
	// No layer reuses a qubit.
	for li, l := range c.Layers {
		seen := map[int]bool{}
		for _, in := range l.Instrs {
			for _, q := range in.Qubits {
				if seen[q] {
					t.Fatalf("layer %d reuses qubit %d", li, q)
				}
				seen[q] = true
			}
		}
	}
}

func TestHeisenbergConservesTotalZ(t *testing.T) {
	// The Heisenberg Hamiltonian conserves total magnetization; with one
	// excitation the sum over <Z_q> must stay n-2.
	n := 6
	dev := device.NewRing("h", n, device.DefaultOptions())
	c := BuildHeisenbergRing(n, 3, DefaultHeisenberg())
	obs := make([]sim.ObsSpec, n)
	for q := 0; q < n; q++ {
		obs[q] = sim.ObsSpec{q: 'Z'}
	}
	vals, err := core.IdealExpectations(dev, c, obs)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	if math.Abs(sum-float64(n-2)) > 1e-9 {
		t.Errorf("total <Z> = %v, want %d", sum, n-2)
	}
	// And the excitation moved: <Z0> < 1.
	if vals[0] > 0.999 {
		t.Error("excitation never left qubit 0")
	}
}

func TestDynamicBellIdeal(t *testing.T) {
	dev := device.NewLine("dyn", 3, device.DefaultOptions())
	c := BuildDynamicBell(dev.DurFF)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := sim.Ideal()
	cfg.Shots = 300
	cfg.Seed = 5
	r := sim.New(dev, cfg)
	res, err := r.Counts(c)
	if err != nil {
		t.Fatal(err)
	}
	// Ideal Bell preparation: data bits (c1, c2) always read 00.
	p00 := res.Probability("x00")
	if p00 < 0.999 {
		t.Errorf("ideal Bell fidelity %v, counts %v", p00, res.Counts)
	}
}

func TestCombinedFloquetIdealP00(t *testing.T) {
	dev := CombinedDevice(device.DefaultOptions())
	c := BuildCombinedFloquet(3)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := sim.Ideal()
	cfg.Shots = 200
	r := sim.New(dev, cfg)
	res, err := r.Counts(c)
	if err != nil {
		t.Fatal(err)
	}
	if p := res.Probability("00"); p < 0.999 {
		t.Errorf("ideal P00 = %v", p)
	}
}

func TestLayerFidelityLayerShape(t *testing.T) {
	l := LayerFidelityLayer()
	if len(l.TwoQubitGates()) != 3 {
		t.Error("benchmark layer must have 3 ECR gates")
	}
	idle := l.IdleQubits(10)
	if len(idle) != 4 {
		t.Errorf("benchmark layer must leave 4 idle qubits, got %v", idle)
	}
}

func TestIdleLayerHelper(t *testing.T) {
	c := circuit.New(3, 0)
	idleLayer(c, 750, 0, 2)
	if c.Layers[0].Kind != circuit.TwoQubitLayer || len(c.Layers[0].Instrs) != 2 {
		t.Error("idleLayer built wrong layer")
	}
	if c.Layers[0].Instrs[0].Params[0] != 750 {
		t.Error("delay duration wrong")
	}
}
