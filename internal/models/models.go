// Package models builds the application circuits the paper benchmarks:
// Ramsey characterization circuits (Fig. 3), the Floquet Ising chain
// (Fig. 6), the Trotterized Heisenberg ring (Fig. 7), the layer-fidelity
// benchmark layer (Fig. 8), the dynamic-circuit Bell preparation (Fig. 9),
// and the combined-strategy Floquet circuit (Fig. 10).
package models

import (
	"math"

	"casq/internal/circuit"
	"casq/internal/device"
	"casq/internal/gates"
)

// idleLayer appends a two-qubit layer containing only explicit delays of
// duration tau on the given qubits (the Ramsey idle periods of Fig. 3).
func idleLayer(c *circuit.Circuit, tau float64, qubits ...int) {
	l := c.AddLayer(circuit.TwoQubitLayer)
	for _, q := range qubits {
		l.Add(circuit.Instruction{Gate: gates.Delay, Qubits: []int{q}, Params: []float64{tau}})
	}
}

// RamseyCase identifies the four contexts of paper Fig. 3.
type RamseyCase int

// The four characterization contexts.
const (
	// CaseIdlePair: two adjacent idle qubits (Fig. 3c).
	CaseIdlePair RamseyCase = iota
	// CaseControlSpectator: spectator adjacent to an ECR control (Fig. 3d).
	CaseControlSpectator
	// CaseTargetSpectator: spectator adjacent to an ECR target (Fig. 3e).
	CaseTargetSpectator
	// CaseControlControl: two parallel ECRs with adjacent controls
	// (Fig. 3f).
	CaseControlControl
)

func (rc RamseyCase) String() string {
	switch rc {
	case CaseIdlePair:
		return "case I (idle pair)"
	case CaseControlSpectator:
		return "case II (control spectator)"
	case CaseTargetSpectator:
		return "case III (target spectator)"
	case CaseControlControl:
		return "case IV (adjacent controls)"
	}
	return "unknown case"
}

// RamseySpec describes a built Ramsey circuit: which qubits were prepared in
// |+> and must return there.
type RamseySpec struct {
	Circuit *circuit.Circuit
	Probes  []int
}

// RamseyDevice returns a device suited to the given case along with the
// probe and gate qubits. Cases I-III use a 4-qubit line; case IV uses the
// adjacent-control line built with custom ECR directions.
func RamseyDevice(rc RamseyCase, opts device.Options) *device.Device {
	switch rc {
	case CaseControlControl:
		edges := []device.Directed{{Src: 1, Dst: 0}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}}
		return device.NewSynthetic("ramsey-iv", 4, edges, nil, opts)
	default:
		return device.NewLine("ramsey", 4, opts)
	}
}

// BuildRamsey builds the depth-d Ramsey circuit for a case: probes prepared
// in |+>, d repetitions of the case's context layer, then (implicitly) a
// final measurement of <X> on the probes by the harness.
//
// Layouts on the 4-qubit line (edges 0-1, 1-2, 2-3; ECR directions
// 0->1, 2->1, 2->3):
//
//	case I:   probes 0,1 idle; nothing else scheduled.
//	case II:  ECR(2,1): control 2 adjacent to probe 3.
//	case III: ECR(2,1): target 1 adjacent to probe 0.
//	case IV:  ECR(1,0) and ECR(2,3) with controls 1,2 adjacent; probes 1,2
//	          are the gate controls themselves, measured via the idle
//	          neighbors 0,3... (case IV probes the control-control ZZ, so
//	          the probe pair is (1,2) prepared in |+> before the gates).
func BuildRamsey(rc RamseyCase, d int, tau float64) RamseySpec {
	c := circuit.New(4, 0)
	switch rc {
	case CaseIdlePair:
		c.AddLayer(circuit.OneQubitLayer).H(0).H(1)
		for i := 0; i < d; i++ {
			idleLayer(c, tau, 0, 1)
		}
		return RamseySpec{Circuit: c, Probes: []int{0, 1}}
	case CaseControlSpectator:
		// ECR(2,1): control 2; probe 3 is the control spectator.
		c.AddLayer(circuit.OneQubitLayer).H(3)
		for i := 0; i < d; i++ {
			c.AddLayer(circuit.TwoQubitLayer).ECR(2, 1)
		}
		return RamseySpec{Circuit: c, Probes: []int{3}}
	case CaseTargetSpectator:
		// ECR(2,1): target 1; probe 0 is the target spectator.
		c.AddLayer(circuit.OneQubitLayer).H(0)
		for i := 0; i < d; i++ {
			c.AddLayer(circuit.TwoQubitLayer).ECR(2, 1)
		}
		return RamseySpec{Circuit: c, Probes: []int{0}}
	case CaseControlControl:
		// Parallel ECR(1,0), ECR(2,3) with adjacent controls 1 and 2. The
		// correlated error acts on the controls; we probe them directly by
		// preparing |+> and uncomputing the gates (each ECR is an
		// involution, so two applications per step restore the logic).
		c.AddLayer(circuit.OneQubitLayer).H(1).H(2)
		for i := 0; i < d; i++ {
			l := c.AddLayer(circuit.TwoQubitLayer)
			l.ECR(1, 0)
			l.ECR(2, 3)
			l2 := c.AddLayer(circuit.TwoQubitLayer)
			l2.ECR(1, 0)
			l2.ECR(2, 3)
		}
		return RamseySpec{Circuit: c, Probes: []int{1, 2}}
	}
	panic("models: unknown Ramsey case")
}

// BuildFloquetIsing builds the paper's Fig. 6 circuit on n qubits: per
// Floquet step, a layer of Clifford-point ZZ interactions Rzz(pi/2) on
// even-odd pairs, a layer on odd-even pairs, and a layer of X gates.
// (The paper writes the two-qubit layers as ECR; Rzz(pi/2) is the
// locally-equivalent diagonal Clifford form of the Ising-ZZ step and keeps
// the same echoed-CR pulse context in the simulator.) Boundary qubits are
// prepared in |+>; with the X layer covering qubits 1..n-1, the boundary
// correlator <X_0 X_{n-1}> ideally oscillates between +1 and -1 on
// alternating even steps, as in the paper.
func BuildFloquetIsing(n, steps int) *circuit.Circuit {
	c := circuit.New(n, 0)
	c.AddLayer(circuit.OneQubitLayer).H(0).H(n - 1)
	for s := 0; s < steps; s++ {
		even := c.AddLayer(circuit.TwoQubitLayer)
		for q := 0; q+1 < n; q += 2 {
			even.RZZ(q, q+1, math.Pi/2)
		}
		odd := c.AddLayer(circuit.TwoQubitLayer)
		for q := 1; q+1 < n; q += 2 {
			odd.RZZ(q, q+1, math.Pi/2)
		}
		xl := c.AddLayer(circuit.OneQubitLayer)
		for q := 1; q < n; q++ {
			xl.X(q)
		}
	}
	return c
}

// HeisenbergParams hold the model couplings and Trotter step.
type HeisenbergParams struct {
	Jx, Jy, Jz float64 // coupling constants (paper Eq. 7)
	Dt         float64 // Trotter step
}

// DefaultHeisenberg uses an isotropic antiferromagnet-like setting with a
// step giving clearly visible dynamics within a few steps.
func DefaultHeisenberg() HeisenbergParams {
	return HeisenbergParams{Jx: 1, Jy: 1, Jz: 1, Dt: 0.45}
}

// BuildHeisenbergRing builds the first-order Trotterized Heisenberg ring
// evolution on n qubits (n a multiple of 6), paper Fig. 7: three colored
// layers of canonical gates Ucan(alpha, beta, gamma) per step with
// alpha = -Jx dt / 2 etc. The edge coloring follows the paper's heavy-hex
// embedding, which needs three layers and — crucially — leaves *adjacent*
// pairs of qubits jointly idle in two of the three layers (the paper's
// example: the idling period on Q4, Q5 whose ZZ is absorbed into the
// neighboring Heisenberg interaction). Per period of six qubits 6k..6k+5:
//
//	layer 1: (6k, 6k+1), (6k+2, 6k+3)     -> idle pair (6k+4, 6k+5)
//	layer 2: (6k+4, 6k+5), (6k+1, 6k+2)   -> isolated idles
//	layer 3: (6k+3, 6k+4), (6k+5, 6k+6)   -> idle pair (6k+1, 6k+2)
//
// One excitation (X on qubit 0) makes <Z_2> dynamics nontrivial.
func BuildHeisenbergRing(n, steps int, p HeisenbergParams) *circuit.Circuit {
	if n%6 != 0 {
		panic("models: Heisenberg ring size must be a multiple of 6")
	}
	c := circuit.New(n, 0)
	c.AddLayer(circuit.OneQubitLayer).X(0)
	alpha := -p.Jx * p.Dt / 2
	beta := -p.Jy * p.Dt / 2
	gamma := -p.Jz * p.Dt / 2
	layerEdges := func(layer int) [][2]int {
		var out [][2]int
		for k := 0; k < n/6; k++ {
			b := 6 * k
			switch layer {
			case 0:
				out = append(out, [2]int{b, b + 1}, [2]int{b + 2, b + 3})
			case 1:
				out = append(out, [2]int{b + 4, b + 5}, [2]int{b + 1, b + 2})
			default:
				out = append(out, [2]int{b + 3, b + 4}, [2]int{b + 5, (b + 6) % n})
			}
		}
		return out
	}
	for s := 0; s < steps; s++ {
		for layer := 0; layer < 3; layer++ {
			l := c.AddLayer(circuit.TwoQubitLayer)
			for _, e := range layerEdges(layer) {
				l.Ucan(e[0], e[1], alpha, beta, gamma)
			}
		}
	}
	return c
}

// BuildDynamicBell builds the paper's Fig. 9 dynamic circuit on a 3-qubit
// chain aux(0) - dataM(1) - dataB(2): a GHZ state is prepared, the
// auxiliary is measured in the X basis mid-circuit, and a feed-forward
// correction conditioned on the outcome leaves a Bell pair on the coupled
// data qubits. During the long measurement + feed-forward window the data
// pair accumulates a large unconditional ZZ error (the paper's dominant
// effect, bare fidelity 9.5%) and dataM additionally picks up a
// measurement-outcome-conditioned Z from its coupling to the collapsed aux
// — the "additional Z rotation on the middle qubit" of paper Fig. 9b.
// The pair is finally disentangled (CX + H) so the Bell fidelity is
// P(data = 00). ffTime is the controller's true feed-forward latency.
//
// The paper's conditional correction is an X in its gate convention; in
// this GHZ/X-basis construction the logically equivalent correction is a
// conditional Z (applied as a conditional virtual Rz(pi), still subject to
// the same feed-forward wait, which is modeled by explicit delays).
//
// Classical bits: c0 = aux outcome, c1 = dataM, c2 = dataB.
func BuildDynamicBell(ffTime float64) *circuit.Circuit {
	c := circuit.New(3, 3)
	c.AddLayer(circuit.OneQubitLayer).H(1)
	c.AddLayer(circuit.TwoQubitLayer).CX(1, 0)
	c.AddLayer(circuit.TwoQubitLayer).CX(1, 2)
	c.AddLayer(circuit.OneQubitLayer).H(0) // X-basis measurement of the aux
	c.AddLayer(circuit.MeasureLayer).Measure(0, 0)
	// Feed-forward window: the data qubits idle for ffTime until the
	// conditional frame correction lands.
	ff := c.AddLayer(circuit.OneQubitLayer)
	for q := 0; q < 3; q++ {
		ff.Add(circuit.Instruction{Gate: gates.Delay, Qubits: []int{q}, Params: []float64{ffTime}})
	}
	ff.Add(circuit.Instruction{
		Gate:   gates.RZ,
		Qubits: []int{1},
		Params: []float64{3.141592653589793},
		Cond:   &circuit.Condition{Bit: 0, Value: 1},
		Time:   ffTime,
	})
	// Bell verification: CX(1,2) + H(1) maps Phi+ to |00>.
	c.AddLayer(circuit.TwoQubitLayer).CX(1, 2)
	c.AddLayer(circuit.OneQubitLayer).H(1)
	c.AddLayer(circuit.MeasureLayer).Measure(1, 1).Measure(2, 2)
	return c
}

// LayerFidelityLayer returns the benchmark layer of paper Fig. 8 on the
// 10-qubit layer-fidelity device: three ECR gates — ECR(1,0) [37->52],
// ECR(2,3) [38->39], ECR(7,6) [58->57] — leaving idle qubits 4 (40),
// 5 (56), 8 (59), 9 (60), with the adjacent-control pair (1,2) = (37,38)
// and the adjacent idle pair (8,9) = (59,60).
func LayerFidelityLayer() *circuit.Layer {
	l := &circuit.Layer{Kind: circuit.TwoQubitLayer}
	l.ECR(1, 0)
	l.ECR(2, 3)
	l.ECR(7, 6)
	return l
}

// BuildCombinedFloquet builds the Fig. 10 benchmark on a 6-qubit line with
// adjacent controls 1 and 2 (device from CombinedDevice): per step, two
// identical layers of {ECR(1,0), ECR(2,3)} (idling 4,5 — the DD target;
// the adjacent controls are the EC target) followed by two identical layers
// of {ECR(5,4)} (idling the 0-3 chain). Each gate layer pair composes to
// the identity, so P00 on the probe pair (1,2) — prepared and unprepared
// with H — ideally stays 1 at every depth.
func BuildCombinedFloquet(steps int) *circuit.Circuit {
	c := circuit.New(6, 2)
	c.AddLayer(circuit.OneQubitLayer).H(1).H(2)
	for s := 0; s < steps; s++ {
		for rep := 0; rep < 2; rep++ {
			l := c.AddLayer(circuit.TwoQubitLayer)
			l.ECR(1, 0)
			l.ECR(2, 3)
		}
		for rep := 0; rep < 2; rep++ {
			l := c.AddLayer(circuit.TwoQubitLayer)
			l.ECR(5, 4)
		}
	}
	c.AddLayer(circuit.OneQubitLayer).H(1).H(2)
	c.AddLayer(circuit.MeasureLayer).Measure(1, 0).Measure(2, 1)
	return c
}

// CombinedDevice builds the 6-qubit device for Fig. 10 (adjacent controls
// on qubits 1, 2; an extra gate pair on 4, 5).
func CombinedDevice(opts device.Options) *device.Device {
	edges := []device.Directed{
		{Src: 1, Dst: 0}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3},
		{Src: 3, Dst: 4}, {Src: 5, Dst: 4},
	}
	return device.NewSynthetic("combined6", 6, edges, nil, opts)
}
