package circuit

import (
	"strings"
	"testing"

	"casq/internal/gates"
)

func TestBuilderAndValidate(t *testing.T) {
	c := New(3, 1)
	c.AddLayer(OneQubitLayer).H(0).X(1).RZ(2, 0.5)
	c.AddLayer(TwoQubitLayer).ECR(0, 1)
	c.AddLayer(MeasureLayer).Measure(2, 0)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Depth() != 3 {
		t.Errorf("depth %d", c.Depth())
	}
	if c.CountGates(gates.ECR) != 1 || c.CountGates(gates.H) != 1 {
		t.Error("gate counts wrong")
	}
}

func TestQubitReusePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on qubit reuse")
		}
	}()
	l := &Layer{Kind: OneQubitLayer}
	l.H(0)
	l.X(0)
}

func TestDDPulsesMayRepeat(t *testing.T) {
	l := &Layer{Kind: TwoQubitLayer}
	l.ECR(0, 1)
	l.Add(Instruction{Gate: gates.XDD, Qubits: []int{2}, Tag: "dd", Time: 100})
	l.Add(Instruction{Gate: gates.XDD, Qubits: []int{2}, Tag: "dd", Time: 300})
	if len(l.Instrs) != 3 {
		t.Error("dd pulses should be allowed to repeat on a qubit")
	}
}

func TestActiveAndIdleQubits(t *testing.T) {
	l := &Layer{Kind: TwoQubitLayer}
	l.ECR(1, 2)
	l.Add(Instruction{Gate: gates.Delay, Qubits: []int{0}, Params: []float64{100}})
	active := l.ActiveQubits()
	if !active[1] || !active[2] || active[0] {
		t.Error("active qubits wrong")
	}
	idle := l.IdleQubits(4)
	if len(idle) != 2 || idle[0] != 0 || idle[1] != 3 {
		t.Errorf("idle = %v", idle)
	}
}

func TestGateOn(t *testing.T) {
	l := &Layer{Kind: TwoQubitLayer}
	l.ECR(1, 2)
	if in, ok := l.GateOn(2); !ok || in.Gate != gates.ECR {
		t.Error("GateOn(2) should find the ECR")
	}
	if _, ok := l.GateOn(0); ok {
		t.Error("GateOn(0) should find nothing")
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := New(2, 0)
	c.AddLayer(TwoQubitLayer).RZZ(0, 1, 0.5)
	c2 := c.Clone()
	c2.Layers[0].Instrs[0].Params[0] = 9
	if c.Layers[0].Instrs[0].Params[0] != 0.5 {
		t.Error("clone shares parameter storage")
	}
	cond := New(1, 1)
	cond.AddLayer(OneQubitLayer).CondX(0, 0, 1)
	cc := cond.Clone()
	cc.Layers[0].Instrs[0].Cond.Value = 0
	if cond.Layers[0].Instrs[0].Cond.Value != 1 {
		t.Error("clone shares condition storage")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	c := New(2, 1)
	l := c.AddLayer(OneQubitLayer)
	l.Instrs = append(l.Instrs, Instruction{Gate: gates.H, Qubits: []int{5}})
	if err := c.Validate(); err == nil {
		t.Error("out-of-range qubit not caught")
	}

	c2 := New(2, 1)
	l2 := c2.AddLayer(MeasureLayer)
	l2.Instrs = append(l2.Instrs, Instruction{Gate: gates.Measure, Qubits: []int{0}, CBit: 7})
	if err := c2.Validate(); err == nil {
		t.Error("out-of-range cbit not caught")
	}

	c3 := New(2, 1)
	l3 := c3.AddLayer(TwoQubitLayer)
	l3.Instrs = append(l3.Instrs, Instruction{Gate: gates.H, Qubits: []int{0}})
	if err := c3.Validate(); err == nil {
		t.Error("untagged 1q gate in 2q layer not caught")
	}
}

func TestInsertLayer(t *testing.T) {
	c := New(1, 0)
	c.AddLayer(OneQubitLayer).H(0)
	c.AddLayer(OneQubitLayer).X(0)
	mid := c.InsertLayer(1, TwirlLayer)
	mid.Z(0)
	if c.Layers[1].Kind != TwirlLayer || c.Layers[2].Instrs[0].Gate != gates.XGate {
		t.Error("InsertLayer misplaced")
	}
}

func TestStringAndDraw(t *testing.T) {
	c := New(2, 1)
	c.AddLayer(OneQubitLayer).H(0)
	c.AddLayer(TwoQubitLayer).ECR(0, 1)
	c.AddLayer(MeasureLayer).Measure(0, 0)
	s := c.String()
	if !strings.Contains(s, "ecr q0,q1") || !strings.Contains(s, "->c0") {
		t.Errorf("String() output missing content:\n%s", s)
	}
	d := c.Draw()
	if !strings.Contains(d, "ecr:C") || !strings.Contains(d, "ecr:T") || !strings.Contains(d, "M") {
		t.Errorf("Draw() output missing content:\n%s", d)
	}
}

func TestTotalDuration(t *testing.T) {
	c := New(1, 0)
	l := c.AddLayer(OneQubitLayer)
	l.H(0)
	l.Start = 10
	l.Duration = 60
	if c.TotalDuration() != 70 {
		t.Errorf("total duration %v", c.TotalDuration())
	}
}

func TestTwoQubitGates(t *testing.T) {
	l := &Layer{Kind: TwoQubitLayer}
	l.ECR(0, 1)
	l.Ucan(2, 3, 0.1, 0.2, 0.3)
	l.Add(Instruction{Gate: gates.Delay, Qubits: []int{4}, Params: []float64{10}})
	if len(l.TwoQubitGates()) != 2 {
		t.Error("TwoQubitGates count wrong")
	}
}
