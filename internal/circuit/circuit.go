// Package circuit defines the layered circuit IR of the casq compiler.
//
// Following the paper (Sec. III A), circuits are stratified into alternating
// layers of single-qubit and two-qubit gates; measurement/feed-forward
// windows and twirl layers are additional layer kinds. All compiler passes
// (scheduling, twirling, CA-DD, CA-EC) and the noisy simulator operate on
// this representation. Within a layer, instructions act on disjoint qubits
// and are considered simultaneous; the scheduler assigns every layer a start
// time and duration, and DD passes attach sub-layer pulse times to inserted
// X pulses.
package circuit

import (
	"fmt"
	"sort"
	"strings"

	"casq/internal/gates"
)

// Condition gates an instruction on a classical bit value (feed-forward).
type Condition struct {
	Bit   int
	Value int
}

// Instruction is one gate or pseudo-op application.
type Instruction struct {
	Gate   gates.Kind
	Qubits []int
	Params []float64
	CBit   int        // classical bit written by Measure
	Cond   *Condition // optional classical control
	Tag    string     // provenance: "", "dd", "twirl", "ec"
	Time   float64    // pulse offset within the layer (ns), used by DD pulses
}

// Clone deep-copies the instruction.
func (in Instruction) Clone() Instruction {
	out := in
	out.Qubits = append([]int(nil), in.Qubits...)
	out.Params = append([]float64(nil), in.Params...)
	if in.Cond != nil {
		c := *in.Cond
		out.Cond = &c
	}
	return out
}

// LayerKind classifies a layer.
type LayerKind int

// Layer kinds. TwirlLayer holds virtual Pauli gates that are merged into
// neighboring single-qubit gates at execution time (zero duration, zero
// cost), matching the paper's twirling model.
const (
	OneQubitLayer LayerKind = iota
	TwoQubitLayer
	MeasureLayer
	TwirlLayer
)

func (k LayerKind) String() string {
	switch k {
	case OneQubitLayer:
		return "1q"
	case TwoQubitLayer:
		return "2q"
	case MeasureLayer:
		return "meas"
	case TwirlLayer:
		return "twirl"
	}
	return fmt.Sprintf("LayerKind(%d)", int(k))
}

// Layer is a set of simultaneous instructions.
type Layer struct {
	Kind     LayerKind
	Instrs   []Instruction
	Duration float64 // ns, set by the scheduler
	Start    float64 // ns, set by the scheduler
}

// Clone deep-copies the layer.
func (l Layer) Clone() Layer {
	out := l
	out.Instrs = make([]Instruction, len(l.Instrs))
	for i, in := range l.Instrs {
		out.Instrs[i] = in.Clone()
	}
	return out
}

// Add appends an instruction after validating qubit disjointness and kind
// compatibility.
func (l *Layer) Add(in Instruction) *Layer {
	used := l.ActiveQubits()
	for _, q := range in.Qubits {
		// DD pulses carry explicit intra-layer times and may repeat on one
		// qubit within a layer window.
		if used[q] && in.Gate != gates.Barrier && in.Tag != "dd" {
			panic(fmt.Sprintf("circuit: qubit %d used twice in one layer", q))
		}
	}
	arity := gates.NumQubits(in.Gate)
	if arity > 0 && len(in.Qubits) != arity {
		panic(fmt.Sprintf("circuit: %s expects %d qubits, got %d", in.Gate, arity, len(in.Qubits)))
	}
	switch l.Kind {
	case OneQubitLayer, TwirlLayer:
		if arity != 1 && in.Gate != gates.Delay {
			panic(fmt.Sprintf("circuit: %s not allowed in %s layer", in.Gate, l.Kind))
		}
	case TwoQubitLayer:
		if arity == 0 && in.Gate != gates.Delay {
			panic(fmt.Sprintf("circuit: %s not allowed in 2q layer", in.Gate))
		}
	case MeasureLayer:
		if in.Gate != gates.Measure && in.Gate != gates.Delay && arity != 1 {
			panic(fmt.Sprintf("circuit: %s not allowed in measure layer", in.Gate))
		}
	}
	l.Instrs = append(l.Instrs, in)
	return l
}

// ActiveQubits returns the set of qubits touched by non-delay instructions.
func (l *Layer) ActiveQubits() map[int]bool {
	out := map[int]bool{}
	for _, in := range l.Instrs {
		if in.Gate == gates.Delay {
			continue
		}
		for _, q := range in.Qubits {
			out[q] = true
		}
	}
	return out
}

// IdleQubits returns the sorted qubits in [0, n) not active in the layer.
func (l *Layer) IdleQubits(n int) []int {
	active := l.ActiveQubits()
	var out []int
	for q := 0; q < n; q++ {
		if !active[q] {
			out = append(out, q)
		}
	}
	return out
}

// GateOn returns the non-delay instruction acting on q, if any.
func (l *Layer) GateOn(q int) (Instruction, bool) {
	for _, in := range l.Instrs {
		if in.Gate == gates.Delay {
			continue
		}
		for _, iq := range in.Qubits {
			if iq == q {
				return in, true
			}
		}
	}
	return Instruction{}, false
}

// TwoQubitGates returns the 2-qubit gate instructions of the layer.
func (l *Layer) TwoQubitGates() []Instruction {
	var out []Instruction
	for _, in := range l.Instrs {
		if gates.NumQubits(in.Gate) == 2 {
			out = append(out, in)
		}
	}
	return out
}

// Circuit is a layered quantum circuit.
type Circuit struct {
	NQubits int
	NCBits  int
	Layers  []Layer
}

// New returns an empty circuit on nQubits and nCBits.
func New(nQubits, nCBits int) *Circuit {
	return &Circuit{NQubits: nQubits, NCBits: nCBits}
}

// Clone deep-copies the circuit.
func (c *Circuit) Clone() *Circuit {
	out := &Circuit{NQubits: c.NQubits, NCBits: c.NCBits}
	out.Layers = make([]Layer, len(c.Layers))
	for i, l := range c.Layers {
		out.Layers[i] = l.Clone()
	}
	return out
}

// AddLayer appends a new empty layer of the given kind and returns it for
// fluent population.
func (c *Circuit) AddLayer(kind LayerKind) *Layer {
	c.Layers = append(c.Layers, Layer{Kind: kind})
	return &c.Layers[len(c.Layers)-1]
}

// InsertLayer inserts an empty layer at index i and returns it.
func (c *Circuit) InsertLayer(i int, kind LayerKind) *Layer {
	c.Layers = append(c.Layers, Layer{})
	copy(c.Layers[i+1:], c.Layers[i:])
	c.Layers[i] = Layer{Kind: kind}
	return &c.Layers[i]
}

// Builder helpers on Layer for the common gate set.

// H adds a Hadamard.
func (l *Layer) H(q int) *Layer { return l.Add(Instruction{Gate: gates.H, Qubits: []int{q}}) }

// X adds an X gate.
func (l *Layer) X(q int) *Layer { return l.Add(Instruction{Gate: gates.XGate, Qubits: []int{q}}) }

// Y adds a Y gate.
func (l *Layer) Y(q int) *Layer { return l.Add(Instruction{Gate: gates.YGate, Qubits: []int{q}}) }

// Z adds a Z gate.
func (l *Layer) Z(q int) *Layer { return l.Add(Instruction{Gate: gates.ZGate, Qubits: []int{q}}) }

// SX adds a sqrt(X).
func (l *Layer) SX(q int) *Layer { return l.Add(Instruction{Gate: gates.SX, Qubits: []int{q}}) }

// S adds an S gate.
func (l *Layer) S(q int) *Layer { return l.Add(Instruction{Gate: gates.S, Qubits: []int{q}}) }

// Sdg adds an S-dagger gate.
func (l *Layer) Sdg(q int) *Layer { return l.Add(Instruction{Gate: gates.Sdg, Qubits: []int{q}}) }

// RZ adds a virtual Z rotation.
func (l *Layer) RZ(q int, theta float64) *Layer {
	return l.Add(Instruction{Gate: gates.RZ, Qubits: []int{q}, Params: []float64{theta}})
}

// RY adds a Y rotation.
func (l *Layer) RY(q int, theta float64) *Layer {
	return l.Add(Instruction{Gate: gates.RY, Qubits: []int{q}, Params: []float64{theta}})
}

// U adds a generic U3 gate.
func (l *Layer) U(q int, theta, phi, lambda float64) *Layer {
	return l.Add(Instruction{Gate: gates.U3, Qubits: []int{q}, Params: []float64{theta, phi, lambda}})
}

// ECR adds an echoed cross-resonance gate with the given control and target.
func (l *Layer) ECR(control, target int) *Layer {
	return l.Add(Instruction{Gate: gates.ECR, Qubits: []int{control, target}})
}

// CX adds a CNOT.
func (l *Layer) CX(control, target int) *Layer {
	return l.Add(Instruction{Gate: gates.CX, Qubits: []int{control, target}})
}

// RZZ adds an Rzz rotation.
func (l *Layer) RZZ(a, b int, theta float64) *Layer {
	return l.Add(Instruction{Gate: gates.RZZ, Qubits: []int{a, b}, Params: []float64{theta}})
}

// Ucan adds the canonical two-qubit gate exp[i(a XX + b YY + g ZZ)].
func (l *Layer) Ucan(q0, q1 int, alpha, beta, gamma float64) *Layer {
	return l.Add(Instruction{Gate: gates.Ucan, Qubits: []int{q0, q1}, Params: []float64{alpha, beta, gamma}})
}

// Measure adds a measurement of q into classical bit cbit.
func (l *Layer) Measure(q, cbit int) *Layer {
	return l.Add(Instruction{Gate: gates.Measure, Qubits: []int{q}, CBit: cbit})
}

// CondX adds an X gate conditioned on a classical bit value.
func (l *Layer) CondX(q, bit, value int) *Layer {
	return l.Add(Instruction{Gate: gates.XGate, Qubits: []int{q}, Cond: &Condition{Bit: bit, Value: value}})
}

// CondRZ adds a conditioned virtual Z rotation.
func (l *Layer) CondRZ(q int, theta float64, bit, value int) *Layer {
	return l.Add(Instruction{Gate: gates.RZ, Qubits: []int{q}, Params: []float64{theta}, Cond: &Condition{Bit: bit, Value: value}})
}

// Validate checks structural invariants: qubit indices in range, classical
// bits in range, layer contents matching their kinds.
func (c *Circuit) Validate() error {
	for li, l := range c.Layers {
		seen := map[int]bool{}
		for _, in := range l.Instrs {
			for _, q := range in.Qubits {
				if q < 0 || q >= c.NQubits {
					return fmt.Errorf("circuit: layer %d: qubit %d out of range", li, q)
				}
				if in.Gate != gates.Delay && in.Gate != gates.Barrier && in.Tag != "dd" {
					if seen[q] {
						return fmt.Errorf("circuit: layer %d: qubit %d used twice", li, q)
					}
					seen[q] = true
				}
			}
			if in.Gate == gates.Measure && (in.CBit < 0 || in.CBit >= c.NCBits) {
				return fmt.Errorf("circuit: layer %d: cbit %d out of range", li, in.CBit)
			}
			if in.Cond != nil && (in.Cond.Bit < 0 || in.Cond.Bit >= c.NCBits) {
				return fmt.Errorf("circuit: layer %d: condition bit %d out of range", li, in.Cond.Bit)
			}
			if l.Kind == TwoQubitLayer && gates.NumQubits(in.Gate) == 1 && in.Tag != "dd" {
				return fmt.Errorf("circuit: layer %d: 1q gate %s in 2q layer without dd tag", li, in.Gate)
			}
		}
	}
	return nil
}

// Depth returns the number of layers.
func (c *Circuit) Depth() int { return len(c.Layers) }

// CountGates returns the number of instructions with the given kind.
func (c *Circuit) CountGates(k gates.Kind) int {
	n := 0
	for _, l := range c.Layers {
		for _, in := range l.Instrs {
			if in.Gate == k {
				n++
			}
		}
	}
	return n
}

// TotalDuration returns end time of the last layer (requires scheduling).
func (c *Circuit) TotalDuration() float64 {
	if len(c.Layers) == 0 {
		return 0
	}
	last := c.Layers[len(c.Layers)-1]
	return last.Start + last.Duration
}

// String renders a compact per-layer listing.
func (c *Circuit) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "circuit(%dq, %dc, %d layers)\n", c.NQubits, c.NCBits, len(c.Layers))
	for i, l := range c.Layers {
		fmt.Fprintf(&b, "  L%-3d %-5s t=%8.1f dur=%7.1f | ", i, l.Kind, l.Start, l.Duration)
		parts := make([]string, 0, len(l.Instrs))
		for _, in := range l.Instrs {
			s := string(in.Gate)
			if len(in.Params) > 0 {
				ps := make([]string, len(in.Params))
				for j, p := range in.Params {
					ps[j] = fmt.Sprintf("%.3f", p)
				}
				s += "(" + strings.Join(ps, ",") + ")"
			}
			qs := make([]string, len(in.Qubits))
			for j, q := range in.Qubits {
				qs[j] = fmt.Sprintf("q%d", q)
			}
			s += " " + strings.Join(qs, ",")
			if in.Gate == gates.Measure {
				s += fmt.Sprintf("->c%d", in.CBit)
			}
			if in.Cond != nil {
				s += fmt.Sprintf(" if c%d==%d", in.Cond.Bit, in.Cond.Value)
			}
			if in.Tag != "" {
				s += "[" + in.Tag + "]"
			}
			parts = append(parts, s)
		}
		sort.Strings(parts)
		b.WriteString(strings.Join(parts, "; "))
		b.WriteString("\n")
	}
	return b.String()
}

// Draw renders an ASCII timeline: one row per qubit, one column per layer.
func (c *Circuit) Draw() string {
	cols := make([][]string, c.NQubits)
	for q := range cols {
		cols[q] = make([]string, len(c.Layers))
	}
	width := make([]int, len(c.Layers))
	for li, l := range c.Layers {
		for _, in := range l.Instrs {
			label := string(in.Gate)
			switch {
			case in.Gate == gates.Delay:
				label = "."
			case in.Gate == gates.Measure:
				label = "M"
			case in.Tag == "dd":
				label = "x*"
			case in.Tag == "twirl":
				label = "t:" + string(in.Gate)
			}
			if gates.NumQubits(in.Gate) == 2 {
				cols[in.Qubits[0]][li] = label + ":C"
				cols[in.Qubits[1]][li] = label + ":T"
			} else {
				for _, q := range in.Qubits {
					cols[q][li] = label
				}
			}
		}
		for q := 0; q < c.NQubits; q++ {
			if len(cols[q][li]) > width[li] {
				width[li] = len(cols[q][li])
			}
		}
		if width[li] == 0 {
			width[li] = 1
		}
	}
	var b strings.Builder
	for q := 0; q < c.NQubits; q++ {
		fmt.Fprintf(&b, "q%-2d:", q)
		for li := range c.Layers {
			cell := cols[q][li]
			if cell == "" {
				cell = strings.Repeat("-", width[li])
			}
			fmt.Fprintf(&b, " %-*s", width[li], cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}
