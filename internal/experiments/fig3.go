package experiments

import (
	"context"
	"fmt"

	"casq/internal/caec"
	"casq/internal/dd"
	"casq/internal/device"
	"casq/internal/exec"
	"casq/internal/models"
	"casq/internal/pass"
	"casq/internal/sim"
)

// ramseyStrategy names one suppression configuration in the Fig. 3 panels.
type ramseyStrategy struct {
	label string
	dd    dd.Strategy
	ec    bool
}

// ramseyFidelity runs the Ramsey experiment of the given case/strategy at
// depth d and returns the mean probe fidelity F = (1 + <X>)/2 (overlap with
// |+>, paper Fig. 3b).
func ramseyFidelity(dev *device.Device, rc models.RamseyCase, st ramseyStrategy, d int, opts Options) (float64, error) {
	spec := models.BuildRamsey(rc, d, 500)
	passes := []pass.Pass{pass.Schedule()}
	if st.dd != dd.None {
		o := dd.DefaultOptions()
		o.Strategy = st.dd
		passes = append(passes, pass.DD(o))
	}
	if st.ec {
		passes = append(passes, pass.EC(caec.DefaultOptions()))
	}
	ex := exec.New(dev, pass.New(st.label, passes...))
	obs := make([]sim.ObsSpec, len(spec.Probes))
	for i, q := range spec.Probes {
		obs[i] = sim.ObsSpec{q: 'X'}
	}
	cfg := sim.DefaultConfig()
	cfg.Shots = opts.Shots
	cfg.Seed = opts.Seed + int64(d)*7
	cfg.EnableReadoutErr = false // Ramsey plots are readout-corrected
	vals, err := ex.Expectations(context.Background(), spec.Circuit, obs,
		exec.RunOptions{Instances: 1, Workers: opts.Workers, Seed: opts.Seed + int64(d), Cfg: cfg, Engine: opts.Engine, Tracer: opts.Tracer})
	if err != nil {
		return 0, err
	}
	f := 0.0
	for _, v := range vals {
		f += (1 + v) / 2
	}
	return f / float64(len(vals)), nil
}

func ramseyFigure(sp Spec, rc models.RamseyCase, strategies []ramseyStrategy, opts Options) (Figure, error) {
	fig := Figure{ID: sp.ID, Title: sp.Title, XLabel: "depth d", YLabel: "Ramsey fidelity"}
	devOpts := device.DefaultOptions()
	devOpts.Seed = 41
	dev := models.RamseyDevice(rc, devOpts)
	depths := sp.Depths(opts)
	for _, st := range strategies {
		xs := make([]float64, 0, len(depths))
		ys := make([]float64, 0, len(depths))
		for _, d := range depths {
			f, err := ramseyFidelity(dev, rc, st, d, opts)
			if err != nil {
				return fig, fmt.Errorf("%s/%s d=%d: %w", sp.ID, st.label, d, err)
			}
			xs = append(xs, float64(d))
			ys = append(ys, f)
		}
		fig.AddSeries(st.label, xs, ys)
	}
	fig.Notef("device %s, tau=500 ns per idle interval; probes per %s", dev.Name, rc)
	return fig, nil
}

// Fig3cCaseI reproduces paper Fig. 3c: two adjacent idle qubits under no
// suppression, aligned DD, staggered DD, error compensation, and EC+DD.
func Fig3cCaseI(sp Spec, opts Options) (Figure, error) {
	return ramseyFigure(sp, models.CaseIdlePair,
		[]ramseyStrategy{
			{label: "noisy", dd: dd.None},
			{label: "aligned-dd", dd: dd.Aligned},
			{label: "staggered", dd: dd.Staggered},
			{label: "ca-ec", ec: true},
			{label: "ec+dd", dd: dd.Aligned, ec: true},
		}, opts)
}

// Fig3dCaseII reproduces paper Fig. 3d: the control-spectator context.
func Fig3dCaseII(sp Spec, opts Options) (Figure, error) {
	return ramseyFigure(sp, models.CaseControlSpectator,
		[]ramseyStrategy{
			{label: "noisy", dd: dd.None},
			{label: "aligned-dd", dd: dd.Aligned},
			{label: "ca-dd", dd: dd.ContextAware},
			{label: "ca-ec", ec: true},
		}, opts)
}

// Fig3eCaseIII reproduces paper Fig. 3e: the target-spectator context.
func Fig3eCaseIII(sp Spec, opts Options) (Figure, error) {
	return ramseyFigure(sp, models.CaseTargetSpectator,
		[]ramseyStrategy{
			{label: "noisy", dd: dd.None},
			{label: "ca-dd", dd: dd.ContextAware},
			{label: "ca-ec", ec: true},
		}, opts)
}

// Fig3fCaseIV reproduces paper Fig. 3f: adjacent control qubits, where DD
// cannot act and only error compensation helps.
func Fig3fCaseIV(sp Spec, opts Options) (Figure, error) {
	return ramseyFigure(sp, models.CaseControlControl,
		[]ramseyStrategy{
			{label: "noisy", dd: dd.None},
			{label: "ca-dd", dd: dd.ContextAware},
			{label: "ca-ec", ec: true},
		}, opts)
}
