package experiments

import (
	"sort"

	"casq/internal/circuit"
	"casq/internal/dd"
	"casq/internal/device"
	"casq/internal/gates"
	"casq/internal/sched"
	"casq/internal/walsh"
)

// Fig5Coloring reproduces the worked example of paper Fig. 5: a 6-qubit
// heavy-hex fragment with one NNN crosstalk edge runs a 4-layer circuit;
// Algorithm 1 colors the idle qubits per layer (controls pinned to the echo
// color, targets rotary-protected) and assigns Walsh–Hadamard sequences.
// The "figure" reports, per layer and qubit, the chosen color, Walsh row and
// pulse count, and verifies the coloring against the crosstalk graph.
func Fig5Coloring(sp Spec, opts Options) (Figure, error) {
	fig := Figure{ID: sp.ID, Title: sp.Title, XLabel: "-", YLabel: "-"}
	devOpts := device.DefaultOptions()
	devOpts.Seed = 31
	dev := device.NewHeavyHexFragment(devOpts)

	c := circuit.New(6, 0)
	prep := c.AddLayer(circuit.OneQubitLayer)
	for q := 0; q < 6; q++ {
		prep.H(q)
	}
	c.AddLayer(circuit.TwoQubitLayer).ECR(2, 1) // idle: 0, 3, 4 (NNN spectator), 5
	c.AddLayer(circuit.TwoQubitLayer).ECR(4, 3) // idle: 0, 1, 2, 5
	l3 := c.AddLayer(circuit.TwoQubitLayer)     // idle: 2, 3
	l3.ECR(0, 1)
	l3.ECR(4, 5)
	idle := c.AddLayer(circuit.TwoQubitLayer) // all idle
	for q := 0; q < 6; q++ {
		idle.Add(circuit.Instruction{Gate: gates.Delay, Qubits: []int{q}, Params: []float64{500}})
	}
	sched.Schedule(c, dev)

	rep, err := dd.Insert(c, dev, dd.DefaultOptions())
	if err != nil {
		return fig, err
	}
	fig.Notef("crosstalk graph: NN edges %v plus NNN edge (2,4) at %.1f kHz", dev.Edges, dev.ZZRate(2, 4)/1e3)
	for _, w := range rep.Windows {
		qs := make([]int, 0, len(w.Colors))
		for q := range w.Colors {
			qs = append(qs, q)
		}
		sort.Ints(qs)
		for _, q := range qs {
			row := w.Rows[q]
			fig.Notef("window [%6.0f,%6.0f] q%d: color %d -> Walsh row %d (%d pulses)",
				w.Window.Start, w.Window.End, q, w.Colors[q], row, walsh.PulseCount(row, walsh.MinBins(7)))
		}
	}
	fig.Notef("total DD pulses inserted: %d across %d windows", rep.Total, len(rep.Windows))
	// Orthogonality audit of the palette actually used.
	pal := walsh.Palette(8)
	nb := 8
	for i := 0; i < len(pal); i++ {
		for j := i + 1; j < len(pal); j++ {
			if v := walsh.PairIntegral(pal[i], pal[j], nb); v != 0 {
				fig.Notef("WARNING: palette rows %d,%d not orthogonal (%.3f)", pal[i], pal[j], v)
			}
		}
	}
	fig.Notef("palette rows (by pulse count): %v — all pairwise orthogonal", pal)
	return fig, nil
}
