package experiments

import (
	"fmt"

	"casq/internal/circuit"
	"casq/internal/device"
	"casq/internal/layout"
	"casq/internal/sim"
)

// embedding is a harness-side handle on a backend placement: it rewrites
// each depth's circuit and the observables onto the induced sub-device.
type embedding struct {
	place *layout.Placement
}

// embedOnBackend resolves a named registry backend and chooses the
// minimal-predicted-error sub-layout for the probe circuit (the deepest
// instance of the workload, so one placement serves the whole depth
// sweep). Harnesses simulate on the induced sub-device — simulator cost
// scales with the workload, not with the 127-qubit lattice.
func embedOnBackend(name string, probe *circuit.Circuit) (*device.Device, *embedding, error) {
	big, err := device.NewBackend(name)
	if err != nil {
		return nil, nil, err
	}
	pl, err := layout.Choose(big, probe, layout.DefaultOptions())
	if err != nil {
		return nil, nil, fmt.Errorf("embed on %s: %w", name, err)
	}
	return pl.Sub, &embedding{place: pl}, nil
}

// Circuit maps one workload instance onto the sub-device (remap + route)
// and returns it with the observables rewritten through the final wire
// positions.
func (e *embedding) Circuit(c *circuit.Circuit, obs []sim.ObsSpec) (*circuit.Circuit, []sim.ObsSpec, error) {
	if e == nil {
		return c, obs, nil
	}
	routed, final, _, err := e.place.MapCircuit(c)
	if err != nil {
		return nil, nil, err
	}
	mapped := make([]sim.ObsSpec, len(obs))
	for i, o := range obs {
		m := sim.ObsSpec{}
		for q, p := range o {
			m[final[e.place.ToSub[q]]] = p
		}
		mapped[i] = m
	}
	return routed, mapped, nil
}

// Notef describes the placement for the figure notes.
func (e *embedding) Notef(fig *Figure) {
	if e == nil {
		return
	}
	p := e.place
	fig.Notef("backend %s: layout %v (region %v), predicted error %.3f rad",
		p.Backend, p.Phys, p.Region, p.Score)
}
