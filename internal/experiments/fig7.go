package experiments

import (
	"context"
	"fmt"

	"casq/internal/circuit"
	"casq/internal/core"
	"casq/internal/dd"
	"casq/internal/device"
	"casq/internal/exec"
	"casq/internal/fitting"
	"casq/internal/models"
	"casq/internal/pass"
	"casq/internal/sim"
)

// fig7Pipelines are the Heisenberg-ring comparison set of paper Fig. 7c:
// no suppression (twirl only), context-unaware DD, CA-DD, and CA-EC.
func fig7Pipelines() []pass.Pipeline {
	return []pass.Pipeline{pass.Twirled(), pass.WithDD(dd.Aligned), pass.CADD(), pass.CAEC()}
}

// Fig7cHeisenberg reproduces paper Fig. 7c: first-order Trotter dynamics of
// a 12-spin Heisenberg ring (3 colored layers of canonical gates per step,
// periodic boundary). The observable is <Z_2> with one initial excitation;
// without suppression its dynamics are washed out, CA-EC/CA-DD recover
// them, and context-unaware DD does not noticeably help.
func Fig7cHeisenberg(sp Spec, opts Options) (Figure, error) {
	fig := Figure{ID: sp.ID, Title: sp.Title, XLabel: "step d", YLabel: "<Z2>"}
	devOpts := device.DefaultOptions()
	devOpts.Seed = 43
	// Match the paper's regime where coherent crosstalk dominates the raw
	// signal loss (their 180-CNOT circuit shows no features at all without
	// suppression): stronger ZZ and slow dephasing, moderate gate error.
	devOpts.ZZMin, devOpts.ZZMax = 110e3, 190e3
	devOpts.QuasistaticSigma = 12e3
	devOpts.Err2Q = 4e-3
	// The ring size comes from the declared "qubits" axis; 12 is only a
	// guard for hand-built Specs that omit it.
	n := 12
	if q := sp.AxisValues("qubits", opts); len(q) > 0 {
		n = int(q[0])
	}
	dev := device.NewRing("heisenberg", n, devOpts)
	params := models.DefaultHeisenberg()
	baseObs := []sim.ObsSpec{{2: 'Z'}}
	depths := sp.Depths(opts)

	// On a named backend, embed the ring via the layout stage (heavy-hex
	// hosts a 12-ring natively — its smallest plaquette is 12 qubits).
	var emb *embedding
	if opts.Backend != "" {
		var err error
		dev, emb, err = embedOnBackend(opts.Backend, models.BuildHeisenbergRing(n, depths[len(depths)-1], params))
		if err != nil {
			return fig, fmt.Errorf("fig7c: %w", err)
		}
	}
	build := func(d int) (*circuit.Circuit, []sim.ObsSpec, error) {
		return emb.Circuit(models.BuildHeisenbergRing(n, d, params), baseObs)
	}

	var ix, iy []float64
	for _, d := range depths {
		c, obs, err := build(d)
		if err != nil {
			return fig, err
		}
		vals, err := core.IdealExpectations(dev, c, obs)
		if err != nil {
			return fig, err
		}
		ix = append(ix, float64(d))
		iy = append(iy, vals[0])
	}
	fig.AddSeries("ideal", ix, iy)

	for _, pl := range fig7Pipelines() {
		ex := exec.New(dev, pl)
		var xs, ys []float64
		for _, d := range depths {
			c, obs, err := build(d)
			if err != nil {
				return fig, err
			}
			cfg := sim.DefaultConfig()
			cfg.Shots = opts.Shots
			cfg.Seed = opts.Seed + int64(d)*23
			cfg.EnableReadoutErr = false
			vals, err := ex.Expectations(context.Background(), c, obs,
				exec.RunOptions{Instances: opts.Instances, Workers: opts.Workers, Seed: opts.Seed + int64(d), Cfg: cfg, Engine: opts.Engine, Tracer: opts.Tracer})
			if err != nil {
				return fig, fmt.Errorf("fig7c/%s: %w", pl.Name, err)
			}
			xs = append(xs, float64(d))
			ys = append(ys, vals[0])
		}
		fig.AddSeries(pl.Name, xs, ys)
	}
	fig.Notef("%d-spin ring, J=(%.1f,%.1f,%.1f), dt=%.2f; one initial excitation on q0", n, params.Jx, params.Jy, params.Jz, params.Dt)
	emb.Notef(&fig)
	return fig, nil
}

// Fig7dOverhead reproduces paper Fig. 7d: the global-depolarizing fit
// meas_d ~ A lambda^d ideal_d per strategy and the resulting
// error-mitigation sampling overhead (A lambda^d)^-2 at the final depth.
// The paper reports CA-EC/CA-DD winning by >3.5x over no suppression and
// >2.75x over plain DD. It derives from the fig7c figure (declared via
// Spec.DerivesFrom), so cached fig7c results are reused instead of
// re-running the Heisenberg simulation.
func Fig7dOverhead(sp Spec, base Figure, opts Options) (Figure, error) {
	fig := Figure{ID: sp.ID, Title: sp.Title, XLabel: "strategy#", YLabel: "overhead"}
	var ideal *Series
	for i := range base.Series {
		if base.Series[i].Label == "ideal" {
			ideal = &base.Series[i]
		}
	}
	if ideal == nil {
		return fig, fmt.Errorf("fig7d: missing ideal series")
	}
	D := int(ideal.X[len(ideal.X)-1])
	overheads := map[string]float64{}
	var xs, ys []float64
	idx := 0.0
	for _, s := range base.Series {
		if s.Label == "ideal" {
			continue
		}
		amp, lambda, rms, err := fitting.ScaledIdeal(s.X, ideal.Y, s.Y)
		if err != nil {
			return fig, fmt.Errorf("fig7d/%s: %w", s.Label, err)
		}
		ov := fitting.SamplingOverhead(amp, lambda, D)
		overheads[s.Label] = ov
		xs = append(xs, idx)
		ys = append(ys, ov)
		valid := ""
		if rms > 0.15 {
			// Without context-aware suppression the coherent errors leave
			// the signal outside the global-depolarizing model entirely —
			// rescaling cannot recover the ideal curve at any overhead,
			// which is the qualitative content of the paper's Fig. 7c/d.
			valid = "  [FIT INVALID: data inconsistent with A*lambda^d scaling]"
			delete(overheads, s.Label)
		}
		fig.Notef("%-12s A=%.3f lambda=%.4f rms=%.3f overhead@d=%d: %.2f%s", s.Label, amp, lambda, rms, D, ov, valid)
		idx++
	}
	fig.AddSeries("overhead", xs, ys)
	if o, ok := overheads["twirled"]; ok {
		if e, ok2 := overheads["ca-ec"]; ok2 && e > 0 {
			fig.Notef("CA-EC improvement over no suppression: %.2fx (paper: >3.5x)", o/e)
		}
		if c2, ok2 := overheads["ca-dd"]; ok2 && c2 > 0 {
			fig.Notef("CA-DD improvement over no suppression: %.2fx (paper: >3.5x)", o/c2)
		}
	}
	if o, ok := overheads["dd-aligned"]; ok {
		if e, ok2 := overheads["ca-ec"]; ok2 && e > 0 {
			fig.Notef("CA-EC improvement over plain DD: %.2fx (paper: >2.75x)", o/e)
		}
		if c2, ok2 := overheads["ca-dd"]; ok2 && c2 > 0 {
			fig.Notef("CA-DD improvement over plain DD: %.2fx (paper: >2.75x)", o/c2)
		}
	}
	return fig, nil
}
