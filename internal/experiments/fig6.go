package experiments

import (
	"context"
	"fmt"

	"casq/internal/circuit"
	"casq/internal/core"
	"casq/internal/device"
	"casq/internal/exec"
	"casq/internal/models"
	"casq/internal/pass"
	"casq/internal/sim"
)

// Fig6Ising reproduces paper Fig. 6: Floquet evolution of a 6-qubit Ising
// chain at the Clifford point. Boundary qubits start in |+> and <X0 X5>
// ideally oscillates between +1 and -1; idle boundary periods in the
// odd-even layers add Z errors that twirling alone cannot remove, while
// CA-EC and CA-DD restore the oscillation.
func Fig6Ising(sp Spec, opts Options) (Figure, error) {
	fig := Figure{ID: sp.ID, Title: sp.Title, XLabel: "step d", YLabel: "<X0X5>"}
	devOpts := device.DefaultOptions()
	devOpts.Seed = 37
	dev := device.NewLine("ising6", 6, devOpts)
	n := 6

	depths := sp.Depths(opts)
	baseObs := []sim.ObsSpec{{0: 'X', 5: 'X'}}

	// On a named backend, the layout stage picks the chain's subregion
	// from the probe (deepest) circuit; the default device passes through
	// untouched.
	var emb *embedding
	if opts.Backend != "" {
		var err error
		dev, emb, err = embedOnBackend(opts.Backend, models.BuildFloquetIsing(n, depths[len(depths)-1]))
		if err != nil {
			return fig, fmt.Errorf("fig6: %w", err)
		}
	}
	build := func(d int) (*circuit.Circuit, []sim.ObsSpec, error) {
		return emb.Circuit(models.BuildFloquetIsing(n, d), baseObs)
	}

	// Ideal reference.
	var ix, iy []float64
	for _, d := range depths {
		c, obs, err := build(d)
		if err != nil {
			return fig, err
		}
		vals, err := core.IdealExpectations(dev, c, obs)
		if err != nil {
			return fig, err
		}
		ix = append(ix, float64(d))
		iy = append(iy, vals[0])
	}
	fig.AddSeries("ideal", ix, iy)

	pipelines := []pass.Pipeline{pass.Twirled(), pass.CAEC(), pass.CADD()}
	for _, pl := range pipelines {
		ex := exec.New(dev, pl)
		var xs, ys []float64
		for _, d := range depths {
			c, obs, err := build(d)
			if err != nil {
				return fig, err
			}
			cfg := sim.DefaultConfig()
			cfg.Shots = opts.Shots
			cfg.Seed = opts.Seed + int64(d)*17
			cfg.EnableReadoutErr = false
			vals, err := ex.Expectations(context.Background(), c, obs,
				exec.RunOptions{Instances: opts.Instances, Workers: opts.Workers, Seed: opts.Seed + int64(d), Cfg: cfg, Engine: opts.Engine, Tracer: opts.Tracer})
			if err != nil {
				return fig, fmt.Errorf("fig6/%s: %w", pl.Name, err)
			}
			xs = append(xs, float64(d))
			ys = append(ys, vals[0])
		}
		fig.AddSeries(pl.Name, xs, ys)
	}
	fig.Notef("6-qubit chain on %s; boundary qubits idle during odd-even ECR layers (paper Fig. 6b red markers)", dev.Name)
	emb.Notef(&fig)
	return fig, nil
}
