package experiments

import (
	"context"
	"fmt"

	"casq/internal/caec"
	"casq/internal/device"
	"casq/internal/exec"
	"casq/internal/expval"
	"casq/internal/models"
	"casq/internal/pass"
	"casq/internal/sim"
)

// Fig9Dynamic reproduces paper Fig. 9: a Bell pair prepared on two data
// qubits via mid-circuit measurement of an auxiliary qubit and a
// feed-forward X. During the long measurement + feed-forward window the
// idle data qubits accumulate large ZZ errors with the aux; CA-EC appends
// measurement-conditioned virtual Rz corrections to the conditional
// operation. The compiler's assumed feed-forward time tau is scanned — the
// fidelity peaks when it matches the controller's true latency (1.15 us in
// the paper), and the paper reports an >8x fidelity improvement over no
// compensation.
func Fig9Dynamic(sp Spec, opts Options) (Figure, error) {
	fig := Figure{ID: sp.ID, Title: sp.Title, XLabel: "tau (us)", YLabel: "Bell fidelity"}
	devOpts := device.DefaultOptions()
	devOpts.Seed = 53
	// Stronger ZZ and the paper's 4 us measurement makes the bare fidelity
	// collapse, as in the paper (9.5%).
	dev := device.NewLine("dynamic", 3, devOpts)
	trueFF := dev.DurFF

	bellFidelity := func(pl pass.Pipeline, seedOff int64) (float64, error) {
		c := models.BuildDynamicBell(trueFF)
		ex := exec.New(dev, pl)
		cfg := sim.DefaultConfig()
		cfg.Shots = opts.Shots * 4
		cfg.Seed = opts.Seed + seedOff
		res, err := ex.Counts(context.Background(), c,
			exec.RunOptions{Instances: 1, Workers: opts.Workers, Seed: opts.Seed + seedOff, Cfg: cfg, Engine: opts.Engine, Tracer: opts.Tracer})
		if err != nil {
			return 0, err
		}
		// Bell fidelity = P(data qubits return to 00), readout-corrected
		// (classical bits 1 and 2 hold data qubits 1 and 2).
		p, err := expval.CorrectReadout(res, []int{1, 2}, "00",
			[]float64{dev.ReadoutErr[1], dev.ReadoutErr[2]})
		if err != nil {
			return 0, err
		}
		return p, nil
	}

	bare, err := bellFidelity(pass.Bare(), 1)
	if err != nil {
		return fig, err
	}

	// Scan the compiler's assumed feed-forward time (declared tau_ns axis).
	taus := sp.AxisValues("tau_ns", opts)
	var xs, ys []float64
	best, bestTau := 0.0, 0.0
	for i, tau := range taus {
		ecOpts := caec.DefaultOptions()
		ecOpts.FFTime = tau
		pl := pass.New("ca-ec", pass.Schedule(), pass.EC(ecOpts))
		f, err := bellFidelity(pl, int64(100+i))
		if err != nil {
			return fig, fmt.Errorf("fig9 tau=%.0f: %w", tau, err)
		}
		xs = append(xs, tau/1e3)
		ys = append(ys, f)
		if f > best {
			best, bestTau = f, tau
		}
	}
	fig.AddSeries("ca-ec", xs, ys)
	flat := make([]float64, len(xs))
	for i := range flat {
		flat[i] = bare
	}
	fig.AddSeries("bare", xs, flat)
	fig.Notef("bare fidelity = %.3f (paper: 0.095)", bare)
	fig.Notef("best CA-EC fidelity = %.3f at tau = %.2f us (true feed-forward latency %.2f us; paper: 0.781 at 1.15 us)",
		best, bestTau/1e3, trueFF/1e3)
	if bare > 0 {
		fig.Notef("improvement: %.1fx (paper: >8x)", best/bare)
	}
	return fig, nil
}
