// Package experiments regenerates every table and figure of the paper's
// evaluation on the synthetic-backend substitute: Ramsey characterizations
// (Fig. 3), secondary error characterizations (Fig. 4), the CA-DD coloring
// example (Fig. 5), the Floquet Ising chain (Fig. 6), the Heisenberg ring
// and its mitigation overhead (Fig. 7), layer fidelity (Fig. 8), dynamic
// circuits (Fig. 9), the combined strategy (Fig. 10), and the
// error/suppression matrix (Table I).
//
// Every experiment is declared in the catalog (registry.go) as a Spec:
// id, paper anchor, the strategies it exercises, and its parameter Axes
// (depth sweeps, the Fig. 9 tau scan, the Fig. 8 layer-fidelity depths).
// Harnesses receive their own Spec and read the sweep space from it, so
// the catalog, the sweep scheduler (internal/sweep), and the HTTP layer
// (internal/serve) enumerate exactly the spaces the harnesses run.
//
// Each harness returns a Figure: named series over a common x axis plus
// free-form notes, renderable as an aligned text table. The cmd/experiments
// binary prints them; the root bench suite regenerates them under
// testing.B; `casq serve` answers them from the content-addressed store.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"unicode/utf8"

	"casq/internal/obs"
)

// Series is one labeled curve.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Figure is a regenerated paper figure or table.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// AddSeries appends a curve.
func (f *Figure) AddSeries(label string, x, y []float64) {
	f.Series = append(f.Series, Series{Label: label, X: x, Y: y})
}

// Notef appends a formatted note.
func (f *Figure) Notef(format string, args ...any) {
	f.Notes = append(f.Notes, fmt.Sprintf(format, args...))
}

// Render prints the figure as an aligned text table: the union of x values
// as rows, one column per series.
func (f Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", f.ID, f.Title)
	xset := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			xset[x] = true
		}
	}
	xs := make([]float64, 0, len(xset))
	for x := range xset {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	if len(xs) > 0 {
		w := 12
		fmt.Fprintf(&b, "%-10s", f.XLabel)
		for _, s := range f.Series {
			fmt.Fprintf(&b, " %*s", w, trunc(s.Label, w))
		}
		b.WriteString("\n")
		lookup := make([]map[float64]float64, len(f.Series))
		for i, s := range f.Series {
			lookup[i] = map[float64]float64{}
			for j, x := range s.X {
				lookup[i][x] = s.Y[j]
			}
		}
		for _, x := range xs {
			fmt.Fprintf(&b, "%-10.4g", x)
			for i := range f.Series {
				if y, ok := lookup[i][x]; ok {
					fmt.Fprintf(&b, " %*.4f", w, y)
				} else {
					fmt.Fprintf(&b, " %*s", w, "-")
				}
			}
			b.WriteString("\n")
		}
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// trunc shortens a label to at most w runes, rune-safe: slicing by bytes
// could split a multi-byte rune in a series label.
func trunc(s string, w int) string {
	if utf8.RuneCountInString(s) <= w {
		return s
	}
	runes := []rune(s)
	return string(runes[:w-1]) + "…"
}

// Options control experiment cost and reproducibility.
type Options struct {
	Seed      int64
	Shots     int // trajectory budget per data point
	Instances int // twirl instances per data point
	MaxDepth  int // depth sweep limit
	Workers   int // concurrent twirl instances per point; 0 = GOMAXPROCS
	Fast      bool
	// Backend names a registry backend (device.Backends) to run on instead
	// of the harness's built-in device: the workload is embedded by the
	// layout stage onto the subregion with the least predicted coherent
	// error, routed, and simulated on the induced sub-device. Empty means
	// the figure's own default device, bit-identical to earlier releases.
	// Only experiments declaring the backend in Spec.Backends support this.
	Backend string
	// Engine selects the simulation backend the harness's executor runs
	// on: "" or "statevector" (exact kernel, bit-identical to earlier
	// releases), "stab" (the stabilizer/Pauli-frame engine for
	// twirl-representable circuits — the only engine that simulates
	// full-scale 127-qubit devices), or "auto" (per-instance dispatch).
	// fig8 with a full-device Backend defaults to "auto".
	Engine string
	// Tracer records compile/execute spans for this run; nil (the
	// default) disables tracing at zero cost. Excluded from JSON so the
	// content-addressed store fingerprint of a request — and the sweep
	// wire format — is independent of whether tracing is on.
	Tracer *obs.Tracer `json:"-"`
}

// DefaultOptions is the full-quality configuration used to produce
// EXPERIMENTS.md.
func DefaultOptions() Options {
	return Options{Seed: 11, Shots: 240, Instances: 8, MaxDepth: 0}
}

// FastOptions is a reduced configuration for benchmarks and smoke tests.
func FastOptions() Options {
	return Options{Seed: 11, Shots: 48, Instances: 4, MaxDepth: 4, Fast: true}
}
