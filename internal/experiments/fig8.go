package experiments

import (
	"fmt"

	"casq/internal/circuit"
	"casq/internal/core"
	"casq/internal/dd"
	"casq/internal/device"
	"casq/internal/exec"
	"casq/internal/layerfid"
	"casq/internal/models"
)

// Fig8LayerFidelity reproduces paper Fig. 8: the layer fidelity of a sparse
// 10-qubit layer (3 ECR gates, 4 idle qubits, one adjacent-control pair and
// one adjacent idle pair) under bare twirling, context-unaware DD, CA-DD,
// and CA-EC, plus the PEC sampling-overhead base gamma = LF^-2.
//
// Paper values: LF 0.648 / 0.743 / 0.822 / 0.881 and gamma 2.38 / 1.81 /
// 1.48 / 1.29 for bare / DD / CA-DD / CA-EC; CA-EC wins because the
// Ctrl-Ctrl ZZ between Q37 and Q38 is invisible to DD.
// When Options.Backend names a registry backend, the harness instead
// benchmarks that full device: models.LayerFidelityLayer on layerfid10,
// and a maximal ECR tiling (layerfid.TiledLayer) on the heavy-hex
// lattices. Full lattices beyond the statevector limit run on the
// stabilizer engine — Options.Engine defaults to "auto" there, and
// `casq -spec fig8 -backend eagle127 -engine stab` is the headline
// full-127-qubit run. That engine advances 64 shots per word op and
// accumulates the protocol's expectation values from packed parity words,
// so a 10^5-shot budget (`-shots 100000`) costs tens of milliseconds per
// circuit.
func Fig8LayerFidelity(sp Spec, opts Options) (Figure, error) {
	fig := Figure{ID: sp.ID, Title: sp.Title, XLabel: "strategy#", YLabel: "LF"}
	var (
		dev    *device.Device
		layer  *circuit.Layer
		labels map[int]int
		engine = opts.Engine
	)
	if opts.Backend != "" {
		bdev, err := device.NewBackend(opts.Backend)
		if err != nil {
			return fig, err
		}
		dev = bdev
		if opts.Backend == "layerfid10" {
			layer = models.LayerFidelityLayer()
		} else {
			layer = layerfid.TiledLayer(dev)
		}
		if engine == "" {
			// Full-device runs default to auto dispatch: the protocol's
			// circuits are twirled Clifford, so this resolves to the
			// stabilizer engine — the only one that fits 127 qubits.
			engine = exec.EngineAuto
		}
		fig.Notef("backend %s: full-device layer, %d ECR gates on %d qubits, engine %s",
			opts.Backend, len(layer.TwoQubitGates()), dev.NQubits, engine)
	} else {
		devOpts := device.DefaultOptions()
		devOpts.Seed = 47
		// The paper's device sits in a noisier regime than our default ranges
		// (bare LF 0.648 over 10 qubits): raise the coherent crosstalk, slow
		// incoherent noise and gate error accordingly.
		devOpts.ZZMin, devOpts.ZZMax = 90e3, 160e3
		devOpts.Err2Q = 1.1e-2
		devOpts.QuasistaticSigma = 3e3
		// The paper singles out the Ctrl-Ctrl pair Q37-Q38 as carrying an
		// unusually strong ZZ (near-collision) that DD cannot suppress — the
		// reason CA-EC outperforms CA-DD on this layer. Pin that on the
		// corresponding edge (1,2) as a build-time calibration override, so the
		// device is synthesized and validated with the collision in place.
		devOpts.ZZOverride = []device.EdgeRate{{A: 1, B: 2, Hz: 230e3}}
		dev, layer, labels = layerfid.BenchmarkLayerDevice(devOpts)
	}

	lfOpts := layerfid.DefaultOptions()
	lfOpts.Seed = opts.Seed
	lfOpts.Instances = opts.Instances
	lfOpts.Workers = opts.Workers
	lfOpts.Engine = engine
	lfOpts.Tracer = opts.Tracer
	lfOpts.Shots = max(8, opts.Shots/4)
	lfOpts.Depths = nil
	for _, v := range sp.AxisValues("lf_depth", opts) {
		lfOpts.Depths = append(lfOpts.Depths, int(v))
	}
	if opts.Fast {
		lfOpts.PauliRounds = 3
	}

	strategies := []core.Strategy{core.Twirled(), core.WithDD(dd.Aligned), core.CADD(), core.CAEC()}
	paper := map[string][2]float64{
		"twirled":    {0.648, 2.38},
		"dd-aligned": {0.743, 1.81},
		"ca-dd":      {0.822, 1.48},
		"ca-ec":      {0.881, 1.29},
	}
	var xs, lfs []float64
	var results []layerfid.Result
	for i, st := range strategies {
		res, err := layerfid.Measure(dev, layer, st, lfOpts)
		if err != nil {
			return fig, fmt.Errorf("fig8/%s: %w", st.Name, err)
		}
		results = append(results, res)
		xs = append(xs, float64(i))
		lfs = append(lfs, res.LF)
		if opts.Backend == "" {
			p := paper[st.Name]
			fig.Notef("%-12s LF=%.3f gamma=%.2f   (paper: LF=%.3f gamma=%.2f)", st.Name, res.LF, res.Gamma, p[0], p[1])
		} else {
			fig.Notef("%-12s LF=%.3f gamma=%.2f", st.Name, res.LF, res.Gamma)
		}
	}
	fig.AddSeries("LF", xs, lfs)
	if dev.NQubits <= 12 {
		for _, res := range results {
			for _, pr := range res.Partitions {
				fig.Notef("  %-10s %-16s F=%.4f", res.Strategy, pr.Partition.Label, pr.Fidelity)
			}
		}
	} else {
		// Full-device runs have dozens of partitions: report only each
		// strategy's weakest link instead of the whole table.
		for _, res := range results {
			worst := layerfid.PartitionResult{Fidelity: 2}
			for _, pr := range res.Partitions {
				if pr.Fidelity < worst.Fidelity {
					worst = pr
				}
			}
			fig.Notef("  %-10s %d partitions, worst %s F=%.4f",
				res.Strategy, len(res.Partitions), worst.Partition.Label, worst.Fidelity)
		}
	}
	if len(results) == 4 {
		bare, ddRes, cadd, caec := results[0], results[1], results[2], results[3]
		if opts.Backend == "" {
			// The paper baselines describe the 10-qubit sparse layer; a
			// full-device run is a different benchmark, so cite them only
			// on the default device.
			fig.Notef("LF gains: CA-DD/bare=%.2fx (paper 1.26x), CA-EC/bare=%.2fx (paper 1.36x), DD/bare=%.2fx (paper 1.14x)",
				cadd.LF/bare.LF, caec.LF/bare.LF, ddRes.LF/bare.LF)
			if caec.Gamma > 0 && cadd.Gamma > 0 {
				d := 10.0
				ovDD := powf(ddRes.Gamma, d)
				fig.Notef("10-layer overhead reduction vs DD: CA-DD %.1fx (paper ~7x), CA-EC %.1fx (paper ~30x)",
					ovDD/powf(cadd.Gamma, d), ovDD/powf(caec.Gamma, d))
			}
		} else {
			fig.Notef("LF gains: CA-DD/bare=%.2fx, CA-EC/bare=%.2fx, DD/bare=%.2fx",
				cadd.LF/bare.LF, caec.LF/bare.LF, ddRes.LF/bare.LF)
		}
	}
	if labels != nil {
		fig.Notef("physical qubit labels: %v", labels)
	}
	return fig, nil
}

func powf(b, e float64) float64 {
	r := 1.0
	for i := 0; i < int(e); i++ {
		r *= b
	}
	return r
}
