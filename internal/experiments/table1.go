package experiments

import (
	"casq/internal/circuit"
	"casq/internal/dd"
	"casq/internal/device"
	"casq/internal/gates"
	"casq/internal/linalg"
	"casq/internal/sched"
	"casq/internal/sim"
)

// TableI regenerates the paper's Table I — the matrix of characterized
// coherent errors and which technique suppresses each — and backs every row
// with a micro-experiment measuring the residual error angle with and
// without the claimed suppression (a row is confirmed when the suppressed
// residual is at least 10x smaller, or when the claim is a negative one).
func TableI(sp Spec, opts Options) (Figure, error) {
	fig := Figure{ID: sp.ID, Title: sp.Title + " (paper Table I)", XLabel: "-", YLabel: "-"}
	fig.Notef("%-12s %-18s %-18s %-10s", "Error", "Source", "EC", "DD")
	fig.Notef("%-12s %-18s %-18s %-10s", "Z (idle)", "Always-on", "Phase shift", "Any")
	fig.Notef("%-12s %-18s %-18s %-10s", "ZZ (idle)", "Always-on", "Absorb", "Staggered")
	fig.Notef("%-12s %-18s %-18s %-10s", "ZZ (active)", "Always-on", "Commute/absorb", "x")
	fig.Notef("%-12s %-18s %-18s %-10s", "Stark Z", "Neighboring gate", "Phase shift", "Any")
	fig.Notef("%-12s %-18s %-18s %-10s", "Slow Z", "Quasi-particles", "x", "Any")
	fig.Notef("%-12s %-18s %-18s %-10s", "NNN ZZ", "Freq. collisions", "x", "Walsh")

	// Micro-verifications on a quiet two-qubit pair.
	devOpts := device.DefaultOptions()
	devOpts.Seed = 61
	devOpts.DeltaMax = 0
	devOpts.QuasistaticSigma = 0
	devOpts.Err1Q, devOpts.Err2Q, devOpts.ReadoutErr = 0, 0, 0
	devOpts.T1Min, devOpts.T1Max, devOpts.T2Factor = 1e12, 1e12, 2
	devOpts.RotaryResidual = 0
	devOpts.Dur1Q = 1e-6
	dev := device.NewLine("table1", 2, devOpts)

	run := func(strategy dd.Strategy) float64 {
		c := circuit.New(2, 0)
		c.AddLayer(circuit.OneQubitLayer).H(0).H(1)
		for i := 0; i < 4; i++ {
			l := c.AddLayer(circuit.TwoQubitLayer)
			l.Add(circuit.Instruction{Gate: gates.Delay, Qubits: []int{0}, Params: []float64{500}})
			l.Add(circuit.Instruction{Gate: gates.Delay, Qubits: []int{1}, Params: []float64{500}})
		}
		sched.Schedule(c, dev)
		if strategy != dd.None {
			o := dd.DefaultOptions()
			o.Strategy = strategy
			if _, err := dd.Insert(c, dev, o); err != nil {
				return -1
			}
		}
		r := sim.New(dev, sim.CoherentOnly(1))
		st, err := r.FinalState(c)
		if err != nil {
			return -1
		}
		plus := linalg.NewVector(2)
		plus.Apply1Q(gates.Matrix1Q(gates.H), 0)
		plus.Apply1Q(gates.Matrix1Q(gates.H), 1)
		return 1 - linalg.FidelityPure(st, plus)
	}
	bare := run(dd.None)
	aligned := run(dd.Aligned)
	staggered := run(dd.Staggered)
	fig.Notef("micro-check (idle pair, coherent only): infidelity bare=%.4f aligned=%.4f staggered=%.6f", bare, aligned, staggered)
	fig.Notef("confirms: aligned DD leaves ZZ (row 2 needs staggering); staggered removes idle Z and ZZ")
	return fig, nil
}
