package experiments

import (
	"context"
	"fmt"

	"casq/internal/device"
	"casq/internal/exec"
	"casq/internal/expval"
	"casq/internal/models"
	"casq/internal/pass"
	"casq/internal/sim"
)

// Fig10Combined reproduces paper Fig. 10: a 6-qubit Floquet-type circuit
// whose per-step logic is the identity, measured via P00 on the probe pair.
// The workload mixes error mechanisms so that neither pass alone suffices:
// adjacent-control ZZ (EC-only), jointly idle stretches (DD or EC), and
// slow quasi-static dephasing (DD-only). The combined CA-EC+DD strategy
// outperforms its constituents, as in the paper.
func Fig10Combined(sp Spec, opts Options) (Figure, error) {
	fig := Figure{ID: sp.ID, Title: sp.Title, XLabel: "step d", YLabel: "P00"}
	devOpts := device.DefaultOptions()
	devOpts.Seed = 59
	// Emphasize the slow incoherent noise DD addresses.
	devOpts.QuasistaticSigma = 14e3
	dev := models.CombinedDevice(devOpts)

	pipelines := []pass.Pipeline{pass.Twirled(), pass.CADD(), pass.CAEC(), pass.Combined()}
	depths := sp.Depths(opts)
	for _, pl := range pipelines {
		ex := exec.New(dev, pl)
		var xs, ys []float64
		for _, d := range depths {
			c := models.BuildCombinedFloquet(d)
			cfg := sim.DefaultConfig()
			cfg.Shots = opts.Shots * 2
			cfg.Seed = opts.Seed + int64(d)*31
			res, err := ex.Counts(context.Background(), c,
				exec.RunOptions{Instances: opts.Instances, Workers: opts.Workers, Seed: opts.Seed + int64(d), Cfg: cfg, Engine: opts.Engine, Tracer: opts.Tracer})
			if err != nil {
				return fig, fmt.Errorf("fig10/%s: %w", pl.Name, err)
			}
			p, err := expval.CorrectReadout(res, []int{0, 1}, "00",
				[]float64{dev.ReadoutErr[1], dev.ReadoutErr[2]})
			if err != nil {
				return fig, err
			}
			xs = append(xs, float64(d))
			ys = append(ys, p)
		}
		fig.AddSeries(pl.Name, xs, ys)
	}
	fig.Notef("per step: two identical {ECR(1,0), ECR(2,3)} layers (ctrl-ctrl ZZ on (1,2); qubits 4,5 idle) then two {ECR(5,4)} layers (chain 0-3 idle)")
	fig.Notef("quasi-static sigma = %.0f kHz: suppressed by DD, invisible to EC — hence the combined win", devOpts.QuasistaticSigma/1e3)
	return fig, nil
}
