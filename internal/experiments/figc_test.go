package experiments

// Correlation-spectroscopy harness tests. Statistical conventions (see
// DESIGN.md): fixed seeds, 5-sigma acceptance bounds built from the
// estimators' own jackknife standard errors, plus — for cross-engine
// comparisons only — a one-shot-noise-unit bias allowance (1/sqrt(shots))
// for the Pauli-twirling approximation at finite twirl depth.

import (
	"math"
	"strings"
	"testing"
	"time"

	"casq/internal/core"
	"casq/internal/correl"
)

// TestFigCStabMatchesStatevector is the acceptance pin for the engine
// cross-check: on the 6-qubit default device and the 10-qubit layerfid10
// backend, the twirled spectroscopy correlation matrices derived from the
// stabilizer (Pauli-frame) engine agree with statevector-derived ones
// within 5 sigma of the combined jackknife errors, and the marginal flip
// rates within 5 sigma of the combined binomial errors.
func TestFigCStabMatchesStatevector(t *testing.T) {
	for _, backend := range []string{"", "layerfid10"} {
		dev, err := correlDevice(backend)
		if err != nil {
			t.Fatal(err)
		}
		const shots = 4096
		opts := Options{Seed: 17, Shots: shots, Instances: 8}
		sv, err := correlMatrix(dev, core.Twirled(), 2, 600, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.Engine = "stab"
		st, err := correlMatrix(dev, core.Twirled(), 2, 600, opts)
		if err != nil {
			t.Fatal(err)
		}
		// One shot-noise unit of PTA bias allowance on top of the 5-sigma
		// statistical bound: the two engines model the same channels but
		// decohere coherent terms differently at finite twirl depth.
		biasFloor := 1.0 / math.Sqrt(float64(shots))
		for i := 0; i < sv.N; i++ {
			seP := math.Hypot(
				math.Sqrt(sv.P[i]*(1-sv.P[i])/float64(sv.Shots)),
				math.Sqrt(st.P[i]*(1-st.P[i])/float64(st.Shots)))
			if d := math.Abs(sv.P[i] - st.P[i]); d > 5*seP {
				t.Errorf("%s: qubit %d flip rate sv=%.4f stab=%.4f differs by %.1f sigma",
					name(backend), i, sv.P[i], st.P[i], d/seP)
			}
			for j := i + 1; j < sv.N; j++ {
				se := math.Hypot(sv.SECorrAt(i, j), st.SECorrAt(i, j))
				d := math.Abs(sv.CorrAt(i, j) - st.CorrAt(i, j))
				if d > 5*se+biasFloor {
					t.Errorf("%s: pair (%d,%d) corr sv=%.4f stab=%.4f exceeds 5 sigma + floor (%.4f)",
						name(backend), i, j, sv.CorrAt(i, j), st.CorrAt(i, j), 5*se+biasFloor)
				}
			}
		}
	}
}

func name(backend string) string {
	if backend == "" {
		return "default6"
	}
	return backend
}

// TestFigC1Eagle127Stab is the full-scale acceptance pin: figC1 on the
// 127-qubit eagle backend under the stabilizer engine, single worker,
// produces the complete 8001-pair correlation matrix for all six
// strategies in under 5 seconds.
func TestFigC1Eagle127Stab(t *testing.T) {
	if testing.Short() {
		t.Skip("full-device run")
	}
	opts := DefaultOptions()
	opts.Backend = "eagle127"
	opts.Engine = "stab"
	opts.Workers = 1
	start := time.Now()
	fig, err := Run("figC1", opts)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed > 5*time.Second {
		t.Errorf("figC1 on eagle127 took %v, acceptance bound is 5s", elapsed)
	}
	if len(fig.Series) != 6 {
		t.Fatalf("expected 6 strategy series, got %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.X) == 0 {
			t.Errorf("strategy %s produced no decay bins", s.Label)
		}
	}
	found := false
	for _, n := range fig.Notes {
		if strings.Contains(n, "8001 pairs") {
			found = true
		}
	}
	if !found {
		t.Errorf("figure notes do not report the full 8001-pair matrix: %v", fig.Notes)
	}
}

// TestFigCCatalog checks the catalog wiring of both spectroscopy specs:
// they run end to end under fast options, emit one series per strategy,
// and reject engines/backends they do not declare.
func TestFigCCatalog(t *testing.T) {
	for _, id := range []string{"figC1", "figC2"} {
		sp, ok := Lookup(id)
		if !ok {
			t.Fatalf("%s not in catalog", id)
		}
		if len(sp.Strategies) != 6 {
			t.Errorf("%s declares %d strategies, want 6", id, len(sp.Strategies))
		}
		opts := FastOptions()
		opts.Shots = 256
		fig, err := Run(id, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(fig.Series) != len(sp.Strategies) {
			t.Errorf("%s produced %d series, want %d", id, len(fig.Series), len(sp.Strategies))
		}
		for i, s := range fig.Series {
			if s.Label != sp.Strategies[i] {
				t.Errorf("%s series %d labeled %q, catalog declares %q", id, i, s.Label, sp.Strategies[i])
			}
		}
	}
	if _, err := Run("figC1", Options{Backend: "nosuch"}); err == nil {
		t.Error("figC1 accepted an undeclared backend")
	}
}

// TestCorrelationDiagnostic checks the serve-layer computation: a report
// on a small backend carries consistent fields, honors the strategy
// parameter, and rejects unknown strategies.
func TestCorrelationDiagnostic(t *testing.T) {
	opts := FastOptions()
	opts.Shots = 512
	rep, err := CorrelationDiagnostic("line6", "ca-dd", opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Backend != "line6" || rep.Strategy != "ca-dd" || rep.NQubits != 6 {
		t.Errorf("report identity wrong: %+v", rep)
	}
	if rep.Shots < opts.Shots {
		t.Errorf("report ran %d shots, want >= %d", rep.Shots, opts.Shots)
	}
	if len(rep.FlipRates) != 6 {
		t.Errorf("expected 6 flip rates, got %d", len(rep.FlipRates))
	}
	if want := 5.0 / math.Sqrt(float64(rep.Shots)); rep.Threshold != want {
		t.Errorf("threshold %v, want %v", rep.Threshold, want)
	}
	for _, p := range rep.Pairs {
		if math.Abs(p.Corr) < rep.Threshold {
			t.Errorf("sparse pair (%d,%d) corr %v below threshold %v", p.I, p.J, p.Corr, rep.Threshold)
		}
	}
	for _, b := range rep.Decay {
		if b.Pairs <= 0 || b.Distance < 1 {
			t.Errorf("bad decay bin %+v", b)
		}
	}
	if _, err := CorrelationDiagnostic("line6", "nosuch", opts); err == nil {
		t.Error("unknown strategy accepted")
	}
	if _, err := CorrelationDiagnostic("nosuch", "", opts); err == nil {
		t.Error("unknown backend accepted")
	}
	// The default strategy is twirled.
	rep2, err := CorrelationDiagnostic("line6", "", opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Strategy != "twirled" {
		t.Errorf("default strategy %q, want twirled", rep2.Strategy)
	}
	_ = correl.Pairs(rep2.NQubits) // package wiring sanity
}
