package experiments

import (
	"strings"
	"testing"

	"casq/internal/device"
	"casq/internal/store"
)

// TestDefaultBackendGolden pins the default-device results of a sample of
// figure harnesses across refactors: the backend/layout machinery must be
// bit-invisible when Options.Backend is empty. Fingerprints captured on
// the pre-registry harnesses.
func TestDefaultBackendGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	golden := map[string]store.Key{
		"fig5":  "196ba93ed1438e3e7c40e7e94d39ab0bf115732f1adf674cc54463a45fef2c58",
		"fig6":  "00b6f4170571e31a40c330b7f3af61efd337db690002df024909deafed59c832",
		"fig7c": "42f95b77b468bf4c909f5201846a6dcdce3229f7634fd38b9925b5c44532cb07",
		"fig8":  "d85149fc26529b0e2cf7ababc42adebd29732db8aa62c2f14e2b49e2687d3c33",
		"fig9":  "d2dde412db75fe44c3704a47b344f47c9c6cf1ef731b338ecd0354d388af1333",
	}
	o := FastOptions()
	o.Shots = 16
	o.Instances = 2
	o.MaxDepth = 2
	for id, want := range golden {
		fig, err := Run(id, o)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		got, err := store.Fingerprint(fig)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%s: default-backend result drifted: fingerprint %s, want %s", id, got, want)
		}
	}
}

// TestFig6OnRegistryBackend runs the Ising figure end-to-end on a
// 29-qubit heavy-hex backend: the layout stage must place the 6-qubit
// chain on coupled qubits (zero SWAPs for a path workload) and the
// physics must survive — CA-EC still beats bare twirling at depth.
func TestFig6OnRegistryBackend(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	o := FastOptions()
	o.Shots = 32
	o.Instances = 2
	o.MaxDepth = 3
	o.Backend = "heavyhex29"
	fig, err := Run("fig6", o)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) < 4 {
		t.Fatalf("fig6 produced %d series", len(fig.Series))
	}
	last := map[string]float64{}
	for _, s := range fig.Series {
		last[s.Label] = s.Y[len(s.Y)-1]
	}
	d := last["ideal"] - last["ca-ec"]
	if d < 0 {
		d = -d
	}
	if d > 0.35 {
		t.Errorf("CA-EC far from ideal on the backend: %v vs %v", last["ca-ec"], last["ideal"])
	}
	sawBackend := false
	for _, n := range fig.Notes {
		if strings.Contains(n, "backend heavyhex29") {
			sawBackend = true
		}
	}
	if !sawBackend {
		t.Error("figure notes do not record the backend placement")
	}
}

// TestFig7OnRegistryBackend embeds the 12-spin Heisenberg ring in the
// heavy-hex lattice (its smallest plaquette is exactly a 12-cycle).
func TestFig7OnRegistryBackend(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	o := Options{Seed: 11, Shots: 16, Instances: 2, MaxDepth: 2, Backend: "heavyhex29"}
	fig, err := Run("fig7c", o)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) < 5 {
		t.Fatalf("fig7c produced %d series", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Y) == 0 {
			t.Errorf("series %s is empty", s.Label)
		}
	}
}

// TestBackendValidation pins the registry-level checks: undeclared
// backends are rejected per experiment, unknown ones by the device
// registry.
func TestBackendValidation(t *testing.T) {
	o := fastOpts()
	o.Backend = "heavyhex29"
	if _, err := Run("fig5", o); err == nil {
		t.Error("fig5 does not declare backends and must reject one")
	}
	o.Backend = ""
	o.Engine = "warp"
	if _, err := Run("fig5", o); err == nil {
		t.Error("unknown engine must error")
	}
	o.Engine = "stab"
	if _, err := Run("fig5", o); err == nil {
		t.Error("fig5 does not honor engines and must reject stab rather than silently ignore it")
	}
	if _, err := Run("table1", o); err == nil {
		t.Error("table1 does not honor engines and must reject stab")
	}
	o.Engine = "statevector"
	if _, err := Run("fig5", o); err != nil {
		t.Errorf("explicit statevector is always honored: %v", err)
	}
	o.Engine = ""
	o.Backend = "not-a-backend"
	if _, err := Run("fig6", o); err == nil {
		t.Error("unknown backend must error")
	}
	for _, sp := range Catalog() {
		for _, b := range sp.Backends {
			if _, ok := device.LookupBackend(b); !ok {
				t.Errorf("%s declares unknown backend %q", sp.ID, b)
			}
		}
	}
}
