package experiments

import (
	"strings"
	"testing"
	"unicode/utf8"
)

func fastOpts() Options {
	o := FastOptions()
	o.Shots = 16
	o.Instances = 2
	o.MaxDepth = 2
	return o
}

// TestAllExperimentsRun smoke-tests every registered harness at minimal
// sampling: they must complete without error and produce renderable
// figures.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			fig, err := Run(id, fastOpts())
			if err != nil {
				t.Fatal(err)
			}
			out := fig.Render()
			if !strings.Contains(out, fig.ID) {
				t.Error("render missing figure id")
			}
			if len(fig.Series) == 0 && len(fig.Notes) == 0 {
				t.Error("figure has no content")
			}
		})
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("nope", fastOpts()); err == nil {
		t.Error("unknown id must error")
	}
}

func TestIDsComplete(t *testing.T) {
	ids := IDs()
	want := []string{"fig3c", "fig3d", "fig3e", "fig3f", "fig4a", "fig4b", "fig4c",
		"fig5", "fig6", "fig7c", "fig7d", "fig8", "fig9", "fig10", "table1",
		"figC1", "figC2"}
	if len(ids) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(ids), len(want))
	}
	set := map[string]bool{}
	for _, id := range ids {
		set[id] = true
	}
	for _, w := range want {
		if !set[w] {
			t.Errorf("missing experiment %s", w)
		}
	}
}

func TestFigureRender(t *testing.T) {
	var f Figure
	f.ID = "test"
	f.Title = "demo"
	f.XLabel = "x"
	f.AddSeries("a", []float64{1, 2}, []float64{0.5, 0.25})
	f.AddSeries("b", []float64{1, 3}, []float64{0.9, 0.8})
	f.Notef("hello %d", 42)
	out := f.Render()
	if !strings.Contains(out, "hello 42") || !strings.Contains(out, "0.5000") {
		t.Errorf("render output:\n%s", out)
	}
	// x=3 has no value for series a: rendered as "-".
	if !strings.Contains(out, "-") {
		t.Error("missing-value placeholder absent")
	}
}

func TestSpecDepths(t *testing.T) {
	sp := Spec{Axes: []Axis{depthAxis(1, 2, 4, 8)}}
	got := sp.Depths(Options{MaxDepth: 3})
	if len(got) != 2 || got[1] != 2 {
		t.Errorf("depths = %v", got)
	}
	if len(sp.Depths(Options{})) != 4 {
		t.Error("MaxDepth=0 should keep the declared axis")
	}
	// Clamping below every declared depth still leaves one point.
	if got := sp.Depths(Options{MaxDepth: -1}); len(got) != 4 {
		t.Errorf("negative MaxDepth should keep defaults, got %v", got)
	}
	sp2 := Spec{Axes: []Axis{depthAxis(4, 8)}}
	if got := sp2.Depths(Options{MaxDepth: 2}); len(got) != 1 || got[0] != 1 {
		t.Errorf("over-clamped depths = %v, want [1]", got)
	}
	// A spec without a depth axis yields no depths.
	if got := (Spec{}).Depths(Options{}); len(got) != 0 {
		t.Errorf("axis-free spec depths = %v", got)
	}
}

func TestSpecAxisValues(t *testing.T) {
	sp := Spec{Axes: []Axis{{Name: "tau", Values: []float64{0, 1, 2}, Fast: []float64{0, 2}}}}
	if got := sp.AxisValues("tau", Options{}); len(got) != 3 {
		t.Errorf("full axis = %v", got)
	}
	if got := sp.AxisValues("tau", Options{Fast: true}); len(got) != 2 {
		t.Errorf("fast axis = %v", got)
	}
	if got := sp.AxisValues("missing", Options{}); got != nil {
		t.Errorf("missing axis = %v", got)
	}
}

// TestCatalogCoherent pins the declarative registry: unique ids, a runner
// and paper anchor per spec, and Lookup/IDs agreeing with the catalog.
func TestCatalogCoherent(t *testing.T) {
	seen := map[string]bool{}
	for _, sp := range Catalog() {
		if sp.ID == "" || sp.Title == "" || sp.Paper == "" {
			t.Errorf("spec %+v missing identity fields", sp)
		}
		switch {
		case sp.DerivesFrom != "":
			if sp.Derive == nil {
				t.Errorf("derived spec %s has no Deriver", sp.ID)
			}
			if _, ok := Lookup(sp.DerivesFrom); !ok {
				t.Errorf("spec %s derives from unknown %q", sp.ID, sp.DerivesFrom)
			}
		case sp.Run == nil:
			t.Errorf("spec %s has no runner", sp.ID)
		}
		if seen[sp.ID] {
			t.Errorf("duplicate id %s", sp.ID)
		}
		seen[sp.ID] = true
		got, ok := Lookup(sp.ID)
		if !ok || got.ID != sp.ID {
			t.Errorf("Lookup(%s) = %v, %v", sp.ID, got.ID, ok)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup of unknown id must fail")
	}
	if len(IDs()) != len(Catalog()) {
		t.Error("IDs and Catalog disagree")
	}
}

// TestFig3cOrdering verifies the headline phenomenology of Fig. 3c at
// moderate sampling: staggered DD and CA-EC hold fidelity while the bare
// circuit decays and aligned DD sits in between.
func TestFig3cOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	o := FastOptions()
	o.Shots = 64
	o.MaxDepth = 6
	fig, err := Run("fig3c", o)
	if err != nil {
		t.Fatal(err)
	}
	last := map[string]float64{}
	for _, s := range fig.Series {
		last[s.Label] = s.Y[len(s.Y)-1]
	}
	if last["noisy"] > 0.8 {
		t.Errorf("bare Ramsey should decay: %v", last["noisy"])
	}
	if last["staggered"] < last["noisy"]+0.1 || last["ca-ec"] < last["noisy"]+0.1 {
		t.Errorf("suppression should clearly beat bare: %v", last)
	}
}

// TestTruncRuneSafe pins the UTF-8 fix: byte-slicing a multi-byte label
// could split a rune and emit invalid UTF-8.
func TestTruncRuneSafe(t *testing.T) {
	cases := []struct {
		in   string
		w    int
		want string
	}{
		{"short", 12, "short"},
		{"exactly-12ch", 12, "exactly-12ch"},
		{"this-is-a-long-label", 12, "this-is-a-l…"},
		{"καδδ-στρατηγική", 12, "καδδ-στρατη…"},
		{"héisenberg-ring", 12, "héisenberg-…"},
		{"ΔΔ…ΔΔ", 12, "ΔΔ…ΔΔ"},
	}
	for _, c := range cases {
		got := trunc(c.in, c.w)
		if got != c.want {
			t.Errorf("trunc(%q, %d) = %q, want %q", c.in, c.w, got, c.want)
		}
		if !utf8.ValidString(got) {
			t.Errorf("trunc(%q, %d) produced invalid UTF-8 %q", c.in, c.w, got)
		}
		if n := utf8.RuneCountInString(got); n > c.w {
			t.Errorf("trunc(%q, %d) has %d runes", c.in, c.w, n)
		}
	}
}

// TestRenderAlignsWideLabels renders a figure whose series labels contain
// multi-byte runes; the output must stay valid UTF-8.
func TestRenderAlignsWideLabels(t *testing.T) {
	fig := Figure{ID: "utf8", Title: "labels", XLabel: "x"}
	fig.AddSeries("στρατηγική-με-μακρύ-όνομα", []float64{1, 2}, []float64{0.5, 0.25})
	out := fig.Render()
	if !utf8.ValidString(out) {
		t.Error("render produced invalid UTF-8")
	}
}

// TestFig7SpecsShareAxes pins that fig7c and fig7d declare the identical
// parameter space object: fig7d delegates its computation to the fig7c
// harness, so divergent axis declarations would let a cached fig7d
// survive a fig7c axis change.
func TestFig7SpecsShareAxes(t *testing.T) {
	c, _ := Lookup("fig7c")
	d, _ := Lookup("fig7d")
	if len(c.Axes) == 0 || len(c.Axes) != len(d.Axes) {
		t.Fatalf("axes length mismatch: %d vs %d", len(c.Axes), len(d.Axes))
	}
	for i := range c.Axes {
		if &c.Axes[i].Values[0] != &d.Axes[i].Values[0] {
			t.Errorf("axis %q not shared between fig7c and fig7d", c.Axes[i].Name)
		}
	}
}
