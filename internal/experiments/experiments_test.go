package experiments

import (
	"strings"
	"testing"
	"unicode/utf8"
)

func fastOpts() Options {
	o := FastOptions()
	o.Shots = 16
	o.Instances = 2
	o.MaxDepth = 2
	return o
}

// TestAllExperimentsRun smoke-tests every registered harness at minimal
// sampling: they must complete without error and produce renderable
// figures.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			fig, err := Run(id, fastOpts())
			if err != nil {
				t.Fatal(err)
			}
			out := fig.Render()
			if !strings.Contains(out, fig.ID) {
				t.Error("render missing figure id")
			}
			if len(fig.Series) == 0 && len(fig.Notes) == 0 {
				t.Error("figure has no content")
			}
		})
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("nope", fastOpts()); err == nil {
		t.Error("unknown id must error")
	}
}

func TestIDsComplete(t *testing.T) {
	ids := IDs()
	want := []string{"fig3c", "fig3d", "fig3e", "fig3f", "fig4a", "fig4b", "fig4c",
		"fig5", "fig6", "fig7c", "fig7d", "fig8", "fig9", "fig10", "table1"}
	if len(ids) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(ids), len(want))
	}
	set := map[string]bool{}
	for _, id := range ids {
		set[id] = true
	}
	for _, w := range want {
		if !set[w] {
			t.Errorf("missing experiment %s", w)
		}
	}
}

func TestFigureRender(t *testing.T) {
	var f Figure
	f.ID = "test"
	f.Title = "demo"
	f.XLabel = "x"
	f.AddSeries("a", []float64{1, 2}, []float64{0.5, 0.25})
	f.AddSeries("b", []float64{1, 3}, []float64{0.9, 0.8})
	f.Notef("hello %d", 42)
	out := f.Render()
	if !strings.Contains(out, "hello 42") || !strings.Contains(out, "0.5000") {
		t.Errorf("render output:\n%s", out)
	}
	// x=3 has no value for series a: rendered as "-".
	if !strings.Contains(out, "-") {
		t.Error("missing-value placeholder absent")
	}
}

func TestOptionsDepths(t *testing.T) {
	o := Options{MaxDepth: 3}
	got := o.depths([]int{1, 2, 4, 8})
	if len(got) != 2 || got[1] != 2 {
		t.Errorf("depths = %v", got)
	}
	o.MaxDepth = 0
	if len(o.depths([]int{1, 2})) != 2 {
		t.Error("MaxDepth=0 should keep defaults")
	}
}

// TestFig3cOrdering verifies the headline phenomenology of Fig. 3c at
// moderate sampling: staggered DD and CA-EC hold fidelity while the bare
// circuit decays and aligned DD sits in between.
func TestFig3cOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	o := FastOptions()
	o.Shots = 64
	o.MaxDepth = 6
	fig, err := Fig3cCaseI(o)
	if err != nil {
		t.Fatal(err)
	}
	last := map[string]float64{}
	for _, s := range fig.Series {
		last[s.Label] = s.Y[len(s.Y)-1]
	}
	if last["noisy"] > 0.8 {
		t.Errorf("bare Ramsey should decay: %v", last["noisy"])
	}
	if last["staggered"] < last["noisy"]+0.1 || last["ca-ec"] < last["noisy"]+0.1 {
		t.Errorf("suppression should clearly beat bare: %v", last)
	}
}

// TestTruncRuneSafe pins the UTF-8 fix: byte-slicing a multi-byte label
// could split a rune and emit invalid UTF-8.
func TestTruncRuneSafe(t *testing.T) {
	cases := []struct {
		in   string
		w    int
		want string
	}{
		{"short", 12, "short"},
		{"exactly-12ch", 12, "exactly-12ch"},
		{"this-is-a-long-label", 12, "this-is-a-l…"},
		{"καδδ-στρατηγική", 12, "καδδ-στρατη…"},
		{"héisenberg-ring", 12, "héisenberg-…"},
		{"ΔΔ…ΔΔ", 12, "ΔΔ…ΔΔ"},
	}
	for _, c := range cases {
		got := trunc(c.in, c.w)
		if got != c.want {
			t.Errorf("trunc(%q, %d) = %q, want %q", c.in, c.w, got, c.want)
		}
		if !utf8.ValidString(got) {
			t.Errorf("trunc(%q, %d) produced invalid UTF-8 %q", c.in, c.w, got)
		}
		if n := utf8.RuneCountInString(got); n > c.w {
			t.Errorf("trunc(%q, %d) has %d runes", c.in, c.w, n)
		}
	}
}

// TestRenderAlignsWideLabels renders a figure whose series labels contain
// multi-byte runes; the output must stay valid UTF-8.
func TestRenderAlignsWideLabels(t *testing.T) {
	fig := Figure{ID: "utf8", Title: "labels", XLabel: "x"}
	fig.AddSeries("στρατηγική-με-μακρύ-όνομα", []float64{1, 2}, []float64{0.5, 0.25})
	out := fig.Render()
	if !utf8.ValidString(out) {
		t.Error("render produced invalid UTF-8")
	}
}
