package experiments

import (
	"fmt"
	"sort"
)

// Runner regenerates one figure/table.
type Runner func(Options) (Figure, error)

// Registry maps experiment ids to their harnesses.
var Registry = map[string]Runner{
	"fig3c":  Fig3cCaseI,
	"fig3d":  Fig3dCaseII,
	"fig3e":  Fig3eCaseIII,
	"fig3f":  Fig3fCaseIV,
	"fig4a":  Fig4aStark,
	"fig4b":  Fig4bParity,
	"fig4c":  Fig4cNNN,
	"fig5":   Fig5Coloring,
	"fig6":   Fig6Ising,
	"fig7c":  Fig7cHeisenberg,
	"fig7d":  Fig7dOverhead,
	"fig8":   Fig8LayerFidelity,
	"fig9":   Fig9Dynamic,
	"fig10":  Fig10Combined,
	"table1": TableI,
}

// IDs returns the registered experiment ids in order.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by id.
func Run(id string, opts Options) (Figure, error) {
	r, ok := Registry[id]
	if !ok {
		return Figure{}, fmt.Errorf("experiments: unknown id %q (known: %v)", id, IDs())
	}
	return r(opts)
}
