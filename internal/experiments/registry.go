package experiments

import (
	"fmt"

	"casq/internal/exec"
	"casq/internal/obs"
)

// Runner regenerates one figure/table. It receives the experiment's own
// Spec so the harness reads its parameter space from the declaration
// rather than hard-coding it.
type Runner func(Spec, Options) (Figure, error)

// Deriver post-processes another experiment's figure into a derived one
// (e.g. fig7d fits overheads from fig7c's curves). Declaring the
// dependency (Spec.DerivesFrom) instead of recomputing the base inside
// the harness lets the caching layer reuse a checkpointed base figure.
type Deriver func(sp Spec, base Figure, opts Options) (Figure, error)

// Axis is one named, ordered parameter dimension of an experiment's
// declared sweep space. Values is the full-quality axis; Fast, when
// non-nil, is the reduced axis selected by Options.Fast.
type Axis struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
	Fast   []float64 `json:"fast,omitempty"`
}

// Spec declares one experiment: its identity, what part of the paper it
// reproduces, the pipeline strategies it exercises, and its parameter
// axes. The sweep scheduler and the HTTP layer enumerate and shard
// experiments from these declarations without invoking harness code.
type Spec struct {
	ID         string   `json:"id"`
	Title      string   `json:"title"`
	Paper      string   `json:"paper"` // paper anchor, e.g. "Fig. 3c" or "Table I"
	Strategies []string `json:"strategies,omitempty"`
	Axes       []Axis   `json:"axes,omitempty"`
	// Backends lists the registry backends (device.Backends) this
	// experiment can be re-targeted to via Options.Backend; the workload
	// is then placed by the layout stage instead of running on the
	// harness's built-in device. Empty means default-device only.
	Backends []string `json:"backends,omitempty"`
	// Engines lists the non-default simulation engines this experiment's
	// harness honors via Options.Engine (it threads them into its
	// executor). "" and "statevector" are always accepted; harnesses that
	// simulate outside the executor (fig4a/fig4b characterizations,
	// fig5, table1) declare none, so requesting "stab" there is an error
	// rather than a silently-ignored option.
	Engines []string `json:"engines,omitempty"`
	// DerivesFrom names the experiment whose figure this one post-
	// processes; such specs set Derive instead of Run.
	DerivesFrom string  `json:"derives_from,omitempty"`
	Run         Runner  `json:"-"`
	Derive      Deriver `json:"-"`
}

// SupportsEngine reports whether the spec's harness honors the named
// engine ("" and "statevector" — the default — are always supported).
func (sp Spec) SupportsEngine(name string) bool {
	if name == "" || name == exec.EngineStatevector {
		return true
	}
	for _, e := range sp.Engines {
		if e == name {
			return true
		}
	}
	return false
}

// SupportsBackend reports whether the spec declares the named backend
// ("" — the default device — is always supported).
func (sp Spec) SupportsBackend(name string) bool {
	if name == "" {
		return true
	}
	for _, b := range sp.Backends {
		if b == name {
			return true
		}
	}
	return false
}

// AxisValues returns the named axis for the options: the Fast variant
// when Options.Fast is set and the axis declares one, the full values
// otherwise, nil when the axis is not declared.
func (sp Spec) AxisValues(name string, opts Options) []float64 {
	for _, ax := range sp.Axes {
		if ax.Name == name {
			if opts.Fast && ax.Fast != nil {
				return ax.Fast
			}
			return ax.Values
		}
	}
	return nil
}

// Depths returns the experiment's "depth" axis as ints with the
// Options.MaxDepth clamp applied: MaxDepth <= 0 keeps the declared axis,
// otherwise values above MaxDepth are dropped (never below one point).
func (sp Spec) Depths(opts Options) []int {
	vals := sp.AxisValues("depth", opts)
	out := make([]int, 0, len(vals))
	for _, v := range vals {
		d := int(v)
		if opts.MaxDepth > 0 && d > opts.MaxDepth {
			continue
		}
		out = append(out, d)
	}
	if len(out) == 0 && len(vals) > 0 {
		out = []int{1}
	}
	return out
}

func depthAxis(vals ...float64) Axis { return Axis{Name: "depth", Values: vals} }

// ramseyDepths is the shared depth axis of the four Fig. 3 Ramsey panels.
var ramseyDepths = depthAxis(0, 1, 2, 3, 4, 6, 8, 10, 13, 16, 20, 24)

// fig7Axes is shared by fig7c and fig7d: Fig7dOverhead delegates its
// computation to the fig7c harness, so the two specs must declare (and
// cache-key) the identical parameter space — one variable, not two
// copies that could drift apart.
var fig7Axes = []Axis{depthAxis(1, 2, 3, 4, 5, 6),
	{Name: "qubits", Values: []float64{12}, Fast: []float64{6}}}

// Backend whitelists of the re-targetable experiments. The line workload
// (Fig. 6) embeds anywhere a 6-qubit path exists; the ring workload
// (Fig. 7) needs a 12-cycle, which heavy-hex provides natively (its
// smallest plaquette is exactly 12 qubits) and the grid via 12-cycles.
// fig7c and fig7d share one list for the same reason they share axes.
// fig8's backends are full devices, not embedding targets: the harness
// benchmarks a layer tiled over the whole backend, which beyond
// sim.MaxQubits is only simulable by the stabilizer engine.
var (
	fig6Backends = []string{"line6", "line12", "ring12", "grid16", "heavyhex29", "heavyhex65", "heavyhex127"}
	fig7Backends = []string{"ring12", "grid16", "heavyhex29", "heavyhex65", "heavyhex127"}
	fig8Backends = []string{"layerfid10", "heavyhex29", "heavyhex65", "heavyhex127", "eagle127"}
)

// engineAware marks specs whose harness threads Options.Engine into its
// executor; specs without it run the statevector kernel unconditionally.
var engineAware = []string{exec.EngineStab, exec.EngineAuto}

// The correlation-spectroscopy figures run the full-device Ramsey probe,
// which embeds on any backend; full lattices beyond the statevector limit
// default to the stabilizer engine (not auto — the bare strategy carries
// no twirl for auto to dispatch on).
var (
	correlStrategyNames = []string{"bare", "twirled", "dd-aligned", "dd-staggered", "ca-dd", "ca-ec"}
	correlBackends      = []string{"line6", "line12", "ring12", "grid16", "layerfid10", "heavyhex29", "heavyhex65", "heavyhex127", "eagle127"}
)

// catalog is the declarative experiment registry, in paper order. Every
// figure's sweep space lives here, not in the harnesses: the harness asks
// its Spec for axis values, and the serving layers enumerate the same
// declarations over HTTP.
var catalog = []Spec{
	{ID: "fig3c", Title: "Ramsey case I: adjacent idle qubits", Paper: "Fig. 3c",
		Engines:    engineAware,
		Strategies: []string{"noisy", "aligned-dd", "staggered", "ca-ec", "ec+dd"},
		Axes:       []Axis{ramseyDepths}, Run: Fig3cCaseI},
	{ID: "fig3d", Title: "Ramsey case II: control spectator", Paper: "Fig. 3d",
		Engines:    engineAware,
		Strategies: []string{"noisy", "aligned-dd", "ca-dd", "ca-ec"},
		Axes:       []Axis{ramseyDepths}, Run: Fig3dCaseII},
	{ID: "fig3e", Title: "Ramsey case III: target spectator", Paper: "Fig. 3e",
		Engines:    engineAware,
		Strategies: []string{"noisy", "ca-dd", "ca-ec"},
		Axes:       []Axis{ramseyDepths}, Run: Fig3eCaseIII},
	{ID: "fig3f", Title: "Ramsey case IV: adjacent controls", Paper: "Fig. 3f",
		Engines:    engineAware,
		Strategies: []string{"noisy", "ca-dd", "ca-ec"},
		Axes:       []Axis{ramseyDepths}, Run: Fig3fCaseIV},
	{ID: "fig4a", Title: "Stark shift on a gate spectator", Paper: "Fig. 4a",
		Axes: []Axis{depthAxis(0, 1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 14, 16, 18, 20, 22, 25, 28, 31, 34)},
		Run:  Fig4aStark},
	{ID: "fig4b", Title: "charge-parity beating", Paper: "Fig. 4b",
		Axes: []Axis{depthAxis(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30)},
		Run:  Fig4bParity},
	{ID: "fig4c", Title: "NNN crosstalk vs DD hierarchy", Paper: "Fig. 4c",
		Engines:    engineAware,
		Strategies: []string{"none", "aligned", "staggered", "walsh(ca)"},
		Axes:       []Axis{depthAxis(0, 2, 4, 6, 8, 12, 16, 20, 24, 30)},
		Run:        Fig4cNNN},
	{ID: "fig5", Title: "CA-DD constrained coloring example", Paper: "Fig. 5",
		Strategies: []string{"ca-dd"}, Run: Fig5Coloring},
	{ID: "fig6", Title: "Floquet Ising chain <X0 X5>", Paper: "Fig. 6",
		Engines:    engineAware,
		Strategies: []string{"twirled", "ca-ec", "ca-dd"},
		Backends:   fig6Backends,
		Axes:       []Axis{depthAxis(1, 2, 3, 4, 5, 6, 7, 8)}, Run: Fig6Ising},
	{ID: "fig7c", Title: "Heisenberg ring <Z2> (12 spins)", Paper: "Fig. 7c",
		Engines:    engineAware,
		Strategies: []string{"twirled", "dd-aligned", "ca-dd", "ca-ec"},
		Backends:   fig7Backends,
		Axes:       fig7Axes, Run: Fig7cHeisenberg},
	{ID: "fig7d", Title: "mitigation overhead (Heisenberg)", Paper: "Fig. 7d",
		Engines:    engineAware,
		Strategies: []string{"twirled", "dd-aligned", "ca-dd", "ca-ec"},
		Backends:   fig7Backends,
		Axes:       fig7Axes, DerivesFrom: "fig7c", Derive: Fig7dOverhead},
	{ID: "fig8", Title: "layer fidelity, 10-qubit sparse layer", Paper: "Fig. 8",
		Engines:    engineAware,
		Strategies: []string{"twirled", "dd-aligned", "ca-dd", "ca-ec"},
		Backends:   fig8Backends,
		Axes:       []Axis{{Name: "lf_depth", Values: []float64{1, 2, 4, 6, 9, 12}, Fast: []float64{1, 2, 4}}},
		Run:        Fig8LayerFidelity},
	{ID: "fig9", Title: "dynamic-circuit Bell fidelity vs assumed tau", Paper: "Fig. 9",
		Engines:    engineAware,
		Strategies: []string{"bare", "ca-ec"},
		Axes: []Axis{{Name: "tau_ns", Values: []float64{0, 250, 500, 750, 1000, 1150, 1300, 1500, 1750, 2000, 2300},
			Fast: []float64{0, 500, 1150, 1750}}},
		Run: Fig9Dynamic},
	{ID: "fig10", Title: "combined strategy P00 (6 qubits)", Paper: "Fig. 10",
		Engines:    engineAware,
		Strategies: []string{"twirled", "ca-dd", "ca-ec", "ca-ec+dd"},
		Axes:       []Axis{depthAxis(1, 2, 3, 4, 5, 6)}, Run: Fig10Combined},
	{ID: "table1", Title: "error sources and suppression", Paper: "Table I",
		Strategies: []string{"ca-ec", "aligned-dd", "staggered", "ca-dd"}, Run: TableI},
	{ID: "figC1", Title: "error-correlation decay vs coupling distance", Paper: "correlation spectroscopy",
		Engines:    engineAware,
		Strategies: correlStrategyNames,
		Backends:   correlBackends,
		Axes:       []Axis{{Name: "depth", Values: []float64{4}, Fast: []float64{2}}},
		Run:        FigC1Decay},
	{ID: "figC2", Title: "nearest-neighbor correlation vs idle window tau", Paper: "correlation spectroscopy",
		Engines:    engineAware,
		Strategies: correlStrategyNames,
		Backends:   correlBackends,
		Axes: []Axis{{Name: "tau_ns", Values: []float64{250, 500, 1000, 1500, 2000},
			Fast: []float64{250, 1000, 2000}}},
		Run: FigC2TauScan},
}

// byID indexes the catalog. Harnesses must not call back into the
// registry (derived figures declare DerivesFrom instead) — a harness
// referenced from the catalog that mentioned Run/IDs/Lookup would form a
// compile-time initialization cycle through this variable.
var byID = func() map[string]Spec {
	m := make(map[string]Spec, len(catalog))
	for _, sp := range catalog {
		if _, dup := m[sp.ID]; dup {
			panic("experiments: duplicate catalog id " + sp.ID)
		}
		m[sp.ID] = sp
	}
	return m
}()

// Catalog returns the experiment declarations in paper order. The slice
// is a copy; Specs themselves are shared (do not mutate Axes in place).
func Catalog() []Spec {
	out := make([]Spec, len(catalog))
	copy(out, catalog)
	return out
}

// Lookup returns the declaration of one experiment id.
func Lookup(id string) (Spec, bool) {
	sp, ok := byID[id]
	return sp, ok
}

// IDs returns the registered experiment ids in paper order.
func IDs() []string {
	out := make([]string, len(catalog))
	for i, sp := range catalog {
		out[i] = sp.ID
	}
	return out
}

// Run executes one experiment by id.
func Run(id string, opts Options) (Figure, error) {
	sp, ok := byID[id]
	if !ok {
		return Figure{}, fmt.Errorf("experiments: unknown id %q (known: %v)", id, IDs())
	}
	if !sp.SupportsBackend(opts.Backend) {
		return Figure{}, fmt.Errorf("experiments: %s does not support backend %q (declared: %v)",
			id, opts.Backend, sp.Backends)
	}
	if !exec.ValidEngine(opts.Engine) {
		return Figure{}, fmt.Errorf("experiments: unknown engine %q (known: %v)", opts.Engine, exec.EngineNames())
	}
	if !sp.SupportsEngine(opts.Engine) {
		return Figure{}, fmt.Errorf("experiments: %s does not honor engine %q (declared: %v)",
			id, opts.Engine, sp.Engines)
	}
	if sp.DerivesFrom != "" {
		base, err := Run(sp.DerivesFrom, opts)
		if err != nil {
			return Figure{}, err
		}
		return sp.Derive(sp, base, opts)
	}
	var span obs.Span
	if opts.Tracer.Enabled() {
		span = opts.Tracer.Start("experiment:" + id)
	}
	defer span.End()
	return sp.Run(sp, opts)
}
