package experiments

import (
	"context"
	"fmt"
	"math"

	"casq/internal/circuit"
	"casq/internal/dd"
	"casq/internal/device"
	"casq/internal/exec"
	"casq/internal/fitting"
	"casq/internal/gates"
	"casq/internal/pass"
	"casq/internal/sched"
	"casq/internal/sim"
)

// Fig4aStark reproduces paper Fig. 4a: the Ramsey spectrum of a spectator
// qubit while gates run on its neighbor shows a peak displaced from the
// always-on coupling frequency by the AC Stark shift (~20 kHz on the
// paper's device).
func Fig4aStark(sp Spec, opts Options) (Figure, error) {
	fig := Figure{ID: sp.ID, Title: sp.Title, XLabel: "freq (kHz)", YLabel: "periodogram"}
	devOpts := device.DefaultOptions()
	devOpts.Seed = 17
	devOpts.DeltaMax = 0
	devOpts.QuasistaticSigma = 0
	dev := device.NewLine("stark", 4, devOpts)

	// Probe 3 is the control spectator of repeated ECR(2,1) gates: during
	// each gate the echo removes ZZ(2,3), leaving the spectator precessing
	// at the always-on rate nu(2,3) plus the Stark shift from the drive.
	depths := sp.Depths(opts)
	var ts, xs, ys []float64
	for _, d := range depths {
		c := circuit.New(4, 0)
		c.AddLayer(circuit.OneQubitLayer).H(3)
		for i := 0; i < d; i++ {
			c.AddLayer(circuit.TwoQubitLayer).ECR(2, 1)
		}
		sched.Schedule(c, dev)
		cfg := sim.CoherentOnly(max(8, opts.Shots/8))
		cfg.Seed = opts.Seed
		r := sim.New(dev, cfg)
		vals, err := r.Expectations(c, []sim.ObsSpec{{3: 'X'}, {3: 'Y'}})
		if err != nil {
			return fig, err
		}
		ts = append(ts, float64(d)*dev.DurECR*1e-9) // seconds
		xs = append(xs, vals[0])
		ys = append(ys, vals[1])
	}
	// Phase-sensitive periodogram over the combined X/Y signal.
	alwaysOn := dev.ZZRate(2, 3)
	stark := dev.Stark[device.Directed{Src: 2, Dst: 3}]
	fMin, fMax := alwaysOn-60e3, alwaysOn+60e3
	const n = 241
	var fGrid, power []float64
	for k := 0; k < n; k++ {
		f := fMin + (fMax-fMin)*float64(k)/float64(n-1)
		var cr, ci float64
		for i := range ts {
			// Conjugate signal <X> - i <Y>: the spectator precesses with
			// negative chirality in this model, so the conjugate places the
			// peak at positive frequency, displaced below the always-on
			// line by the Stark shift.
			ph := 2 * math.Pi * f * ts[i]
			cr += xs[i]*math.Cos(ph) - ys[i]*math.Sin(ph)
			ci += -ys[i]*math.Cos(ph) - xs[i]*math.Sin(ph)
		}
		fGrid = append(fGrid, f/1e3)
		power = append(power, (cr*cr+ci*ci)/float64(len(ts)*len(ts)))
	}
	fig.AddSeries("spectrum", fGrid, power)
	peak := 0.0
	best := -1.0
	for i, f := range fGrid {
		if power[i] > best {
			best = power[i]
			peak = f * 1e3
		}
	}
	_ = fitting.Mean // fitting is used elsewhere in this file
	fig.Notef("always-on nu(2,3) = %.1f kHz (paper: dashed line)", alwaysOn/1e3)
	fig.Notef("observed peak = %.1f kHz; displacement = %.1f kHz; calibrated Stark = %.1f kHz (paper: ~20 kHz)",
		peak/1e3, (alwaysOn-peak)/1e3, stark/1e3)
	return fig, nil
}

// Fig4bParity reproduces paper Fig. 4b: charge-parity fluctuations add a
// +/-delta Z whose sign flips shot to shot; on top of a known rotation nu
// the averaged Ramsey signal beats as cos(2 pi nu t) cos(2 pi delta t).
func Fig4bParity(sp Spec, opts Options) (Figure, error) {
	fig := Figure{ID: sp.ID, Title: sp.Title, XLabel: "time (us)", YLabel: "<X>"}
	devOpts := device.DefaultOptions()
	devOpts.Seed = 19
	devOpts.QuasistaticSigma = 0
	dev := device.NewSynthetic("parity", 1, nil, nil, devOpts)
	delta := 60e3 // strong parity splitting to make beating visible
	dev.Delta = []float64{delta}
	nuKnown := 300e3 // deliberate known rotation

	tau := 500.0
	depths := sp.Depths(opts)
	var xsT, meas, theory []float64
	for _, d := range depths {
		c := circuit.New(1, 0)
		c.AddLayer(circuit.OneQubitLayer).H(0)
		for i := 0; i < d; i++ {
			l := c.AddLayer(circuit.TwoQubitLayer)
			l.Add(circuit.Instruction{Gate: gates.Delay, Qubits: []int{0}, Params: []float64{tau}})
			c.AddLayer(circuit.OneQubitLayer).RZ(0, 2*math.Pi*nuKnown*tau*1e-9)
		}
		sched.Schedule(c, dev)
		cfg := sim.DefaultConfig()
		cfg.Shots = opts.Shots * 2
		cfg.Seed = opts.Seed + int64(d)
		cfg.EnableT1T2 = false
		cfg.EnableGateErr = false
		cfg.EnableReadoutErr = false
		cfg.EnableQuasistatic = false
		r := sim.New(dev, cfg)
		vals, err := r.Expectations(c, []sim.ObsSpec{{0: 'X'}})
		if err != nil {
			return fig, err
		}
		t := float64(d) * tau * 1e-9
		xsT = append(xsT, t*1e6)
		meas = append(meas, vals[0])
		theory = append(theory, math.Cos(2*math.Pi*nuKnown*t)*math.Cos(2*math.Pi*delta*t))
	}
	fig.AddSeries("measured", xsT, meas)
	fig.AddSeries("cos(nu t)cos(delta t)", xsT, theory)
	fig.Notef("known rotation nu = %.0f kHz; parity delta = %.0f kHz; beating envelope follows cos(2 pi delta t)", nuKnown/1e3, delta/1e3)
	return fig, nil
}

// Fig4cNNN reproduces paper Fig. 4c: a frequency-collision NNN ZZ term
// between next-nearest neighbors i and k is invisible to index-staggered DD
// (i and k share a color) but suppressed by the Walsh hierarchy used in
// CA-DD, which colors on the crosstalk graph including the NNN edge.
func Fig4cNNN(sp Spec, opts Options) (Figure, error) {
	fig := Figure{ID: sp.ID, Title: sp.Title, XLabel: "depth d", YLabel: "Ramsey fidelity"}
	devOpts := device.DefaultOptions()
	devOpts.Seed = 23
	devOpts.NNNCollision = 25e3 // strongly collision-enhanced (paper: up to O(10 kHz))
	devOpts.DeltaMax = 0
	devOpts.QuasistaticSigma = 0
	edges := []device.Directed{{Src: 0, Dst: 1}, {Src: 2, Dst: 1}}
	nnn := []device.Edge{device.NewEdge(0, 2)}
	dev := device.NewSynthetic("nnn3", 3, edges, nnn, devOpts)

	strategies := []struct {
		label string
		dd    dd.Strategy
	}{
		{"none", dd.None},
		{"aligned", dd.Aligned},
		{"staggered", dd.Staggered},
		{"walsh(ca)", dd.ContextAware},
	}
	depths := sp.Depths(opts)
	for _, st := range strategies {
		var xs, ys []float64
		for _, d := range depths {
			c := circuit.New(3, 0)
			c.AddLayer(circuit.OneQubitLayer).H(0).H(1).H(2)
			for i := 0; i < d; i++ {
				l := c.AddLayer(circuit.TwoQubitLayer)
				for q := 0; q < 3; q++ {
					l.Add(circuit.Instruction{Gate: gates.Delay, Qubits: []int{q}, Params: []float64{500}})
				}
			}
			passes := []pass.Pass{pass.Schedule()}
			if st.dd != dd.None {
				o := dd.DefaultOptions()
				o.Strategy = st.dd
				passes = append(passes, pass.DD(o))
			}
			ex := exec.New(dev, pass.New(st.label, passes...))
			cfg := sim.DefaultConfig()
			cfg.Shots = opts.Shots / 2
			cfg.Seed = opts.Seed + int64(d)
			cfg.EnableReadoutErr = false
			vals, err := ex.Expectations(context.Background(), c,
				[]sim.ObsSpec{{0: 'X'}, {1: 'X'}, {2: 'X'}},
				exec.RunOptions{Instances: 1, Workers: opts.Workers, Seed: opts.Seed, Cfg: cfg, Engine: opts.Engine, Tracer: opts.Tracer})
			if err != nil {
				return fig, fmt.Errorf("fig4c/%s: %w", st.label, err)
			}
			f := ((1+vals[0])/2 + (1+vals[1])/2 + (1+vals[2])/2) / 3
			xs = append(xs, float64(d))
			ys = append(ys, f)
		}
		fig.AddSeries(st.label, xs, ys)
	}
	fig.Notef("NNN ZZ(0,2) = %.1f kHz via type-VI-style collision; staggered-by-index colors 0 and 2 identically and fails", dev.ZZRate(0, 2)/1e3)
	return fig, nil
}
