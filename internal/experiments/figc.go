package experiments

// figC1/figC2 are the error-correlation spectroscopy companions (appendix-
// style figures, not in the paper's numbering): they estimate the full
// two-point correlation matrix of outcome flips under the six compilation
// strategies, directly exposing the correlated-error structure (always-on
// ZZ between idle neighbors) that the paper's context-aware passes target.
// figC1 bins pair correlations by coupling-graph distance — correlated ZZ
// flips live at distance 1 and decay away — and figC2 scans the idle window
// tau, showing where twirling converts coherent crosstalk into stochastic
// but still *correlated* flips, and where CA-DD/CA-EC remove even those.

import (
	"context"
	"fmt"
	"math"

	"casq/internal/circuit"
	"casq/internal/core"
	"casq/internal/correl"
	"casq/internal/dd"
	"casq/internal/device"
	"casq/internal/exec"
	"casq/internal/gates"
	"casq/internal/sim"
	"casq/internal/twirl"
)

// correlStrategies are the six paper strategies the spectroscopy figures
// compare, in the catalog's declared order.
func correlStrategies() []core.Strategy {
	return []core.Strategy{
		core.Bare(),
		core.Twirled(),
		core.WithDD(dd.Aligned),
		core.WithDD(dd.Staggered),
		core.CADD(),
		core.CAEC(),
	}
}

// correlDevice builds the experiment's device: the named registry backend,
// or the built-in 6-qubit line in the paper's strong-crosstalk regime
// (matching fig8's noisier calibration so distance-1 correlations sit well
// above the statistical floor at modest shot budgets).
func correlDevice(backend string) (*device.Device, error) {
	if backend != "" {
		return device.NewBackend(backend)
	}
	devOpts := device.DefaultOptions()
	devOpts.Seed = 53
	devOpts.ZZMin, devOpts.ZZMax = 90e3, 160e3
	return device.NewLine("correl6", 6, devOpts), nil
}

// spectroscopyCircuit is the full-device Ramsey probe: H on every qubit,
// depth idle windows of tau ns, H back, measure all. Ideally it is the
// identity on |0...n>, so every recorded 1 is an error flip and the packed
// outcome planes feed correl.Estimate directly. During the idle windows
// every qubit sits in superposition, so always-on ZZ between neighbors
// accumulates correlated phase that the closing H converts into correlated
// bit flips — the two-point structure the estimator measures.
func spectroscopyCircuit(n, depth int, tau float64) *circuit.Circuit {
	c := circuit.New(n, n)
	open := c.AddLayer(circuit.OneQubitLayer)
	for q := 0; q < n; q++ {
		open.H(q)
	}
	for d := 0; d < depth; d++ {
		l := c.AddLayer(circuit.TwoQubitLayer)
		for q := 0; q < n; q++ {
			l.Add(circuit.Instruction{Gate: gates.Delay, Qubits: []int{q}, Params: []float64{tau}})
		}
	}
	closeL := c.AddLayer(circuit.OneQubitLayer)
	for q := 0; q < n; q++ {
		closeL.H(q)
	}
	meas := c.AddLayer(circuit.MeasureLayer)
	for q := 0; q < n; q++ {
		meas.Measure(q, q)
	}
	return c
}

// correlEngine resolves the effective engine of a spectroscopy run: beyond
// the statevector limit the default is the stabilizer engine outright —
// not auto dispatch, because the bare (untwirled) strategy is part of the
// comparison and auto would refuse to route it to stab.
func correlEngine(engine string, dev *device.Device) string {
	if engine == "" && dev.NQubits > sim.MaxQubits {
		return exec.EngineStab
	}
	return engine
}

// correlMatrix runs the spectroscopy circuit under one strategy and
// estimates the flip-correlation matrix from the packed outcome planes.
// Readout assignment errors are disabled: they are independent per qubit
// by construction, so they only dilute the circuit-error correlations the
// figure is after. Bit-plane engines hand their planes straight to the
// estimator; the statevector kernel's counts map is expanded through
// correl.PackedFromCounts.
func correlMatrix(dev *device.Device, st core.Strategy, depth int, tau float64, opts Options) (correl.Matrix, error) {
	st.TwirlScope = twirl.AllQubits
	c := spectroscopyCircuit(dev.NQubits, depth, tau)
	cfg := sim.DefaultConfig()
	cfg.Shots = opts.Shots
	cfg.Seed = opts.Seed + int64(depth*131) + int64(tau)
	cfg.EnableReadoutErr = false
	ex := exec.New(dev, st.Pipeline())
	res, err := ex.Run(context.Background(), exec.Job{Circuit: c, Opts: exec.RunOptions{
		Instances: opts.Instances,
		Workers:   opts.Workers,
		Seed:      opts.Seed + int64(depth*977) + int64(tau)*3,
		Cfg:       cfg,
		Engine:    correlEngine(opts.Engine, dev),
		Tracer:    opts.Tracer,
	}})
	if err != nil {
		return correl.Matrix{}, fmt.Errorf("correl/%s: %w", st.Name, err)
	}
	if res.Packed != nil {
		return correl.Estimate(*res.Packed), nil
	}
	return correl.Estimate(correl.PackedFromCounts(res.Counts, dev.NQubits)), nil
}

// correlThreshold is the sparse-reporting floor: 5/sqrt(shots), the
// 5-sigma scale of a correlation estimate's shot noise.
func correlThreshold(shots int) float64 {
	if shots <= 0 {
		return 0
	}
	return 5.0 / math.Sqrt(float64(shots))
}

// FigC1Decay produces the correlation-decay figure: mean |corr| per
// coupling-graph distance, one series per strategy, plus the strongest
// pairs of each strategy's sparse matrix in the notes. The depth axis is a
// single declared point (the estimator wants one deep idle window, not a
// sweep); tau is fixed at 600 ns.
func FigC1Decay(sp Spec, opts Options) (Figure, error) {
	fig := Figure{ID: sp.ID, Title: sp.Title, XLabel: "distance", YLabel: "mean|corr|"}
	dev, err := correlDevice(opts.Backend)
	if err != nil {
		return fig, err
	}
	depth := 4
	if ds := sp.Depths(opts); len(ds) > 0 {
		depth = ds[0]
	}
	const tau = 600.0
	dist := dev.CouplingGraph().AllDistances()
	thr := correlThreshold(opts.Shots)
	fig.Notef("device %s: %d qubits, %d pairs, depth %d, tau %.0f ns, engine %s, sparse threshold |corr|>=%.4f",
		devName(dev, opts.Backend), dev.NQubits, correl.Pairs(dev.NQubits), depth, tau,
		effectiveEngineName(correlEngine(opts.Engine, dev)), thr)
	for _, st := range correlStrategies() {
		m, err := correlMatrix(dev, st, depth, tau, opts)
		if err != nil {
			return fig, err
		}
		bins := correl.DecayByDistance(m, dist, 8)
		xs := make([]float64, len(bins))
		ys := make([]float64, len(bins))
		for i, b := range bins {
			xs[i] = float64(b.Distance)
			ys[i] = b.MeanAbsCorr
		}
		fig.AddSeries(st.Name, xs, ys)
		sparse := m.Sparse(thr)
		note := fmt.Sprintf("%-12s %d/%d pairs above threshold", st.Name, len(sparse), correl.Pairs(m.N))
		if len(sparse) > 0 {
			top := sparse[0]
			note += fmt.Sprintf(", strongest (%d,%d) corr=%+.4f±%.4f", top.I, top.J, top.Corr, top.SE)
		}
		fig.Notes = append(fig.Notes, note)
	}
	return fig, nil
}

// FigC2TauScan produces the correlation-vs-tau figure: the mean
// distance-1 (nearest-neighbor) |corr| as the idle window tau grows, one
// series per strategy. Longer windows accumulate more ZZ phase, so bare
// and twirled curves rise with tau while CA-DD refocuses the coupling and
// CA-EC compensates it.
func FigC2TauScan(sp Spec, opts Options) (Figure, error) {
	fig := Figure{ID: sp.ID, Title: sp.Title, XLabel: "tau_ns", YLabel: "mean|corr| @ d=1"}
	dev, err := correlDevice(opts.Backend)
	if err != nil {
		return fig, err
	}
	taus := sp.AxisValues("tau_ns", opts)
	dist := dev.CouplingGraph().AllDistances()
	fig.Notef("device %s: %d qubits, single idle window per point, engine %s",
		devName(dev, opts.Backend), dev.NQubits, effectiveEngineName(correlEngine(opts.Engine, dev)))
	for _, st := range correlStrategies() {
		xs := make([]float64, 0, len(taus))
		ys := make([]float64, 0, len(taus))
		for _, tau := range taus {
			m, err := correlMatrix(dev, st, 1, tau, opts)
			if err != nil {
				return fig, err
			}
			nn := 0.0
			for _, b := range correl.DecayByDistance(m, dist, 1) {
				if b.Distance == 1 {
					nn = b.MeanAbsCorr
				}
			}
			xs = append(xs, tau)
			ys = append(ys, nn)
		}
		fig.AddSeries(st.Name, xs, ys)
	}
	return fig, nil
}

func devName(dev *device.Device, backend string) string {
	if backend != "" {
		return backend
	}
	return dev.Name
}

func effectiveEngineName(engine string) string {
	if engine == "" {
		return exec.EngineStatevector
	}
	return engine
}

// CorrelationReport is the JSON payload of the serve layer's
// GET /backends/{id}/correlations diagnostic: the thresholded sparse
// correlation matrix of one spectroscopy run on the named backend.
type CorrelationReport struct {
	Backend   string  `json:"backend"`
	Strategy  string  `json:"strategy"`
	Engine    string  `json:"engine"`
	NQubits   int     `json:"n_qubits"`
	Shots     int     `json:"shots"`
	Instances int     `json:"instances"`
	Seed      int64   `json:"seed"`
	Depth     int     `json:"depth"`
	TauNs     float64 `json:"tau_ns"`
	// Threshold is the sparse floor applied to Pairs (5/sqrt(shots)).
	Threshold float64           `json:"threshold"`
	FlipRates []float64         `json:"flip_rates"`
	Pairs     []correl.PairStat `json:"pairs"`
	Decay     []correl.DecayBin `json:"decay"`
	// MeanAbsNN is the mean |corr| over coupling-graph distance-1 pairs —
	// the headline number of figC2.
	MeanAbsNN float64 `json:"mean_abs_nn"`
}

// CorrelationDiagnostic runs one spectroscopy point on a registry backend
// under a named strategy ("" = twirled) and returns the thresholded
// correlation report. It is the computation behind the serve layer's
// correlations endpoint; depth and tau are fixed to the figC1 defaults so
// the report is a device diagnostic, not a parameter sweep.
func CorrelationDiagnostic(backend, strategy string, opts Options) (CorrelationReport, error) {
	if strategy == "" {
		strategy = "twirled"
	}
	var st core.Strategy
	found := false
	for _, s := range correlStrategies() {
		if s.Name == strategy {
			st, found = s, true
		}
	}
	if !found {
		names := make([]string, 0, 6)
		for _, s := range correlStrategies() {
			names = append(names, s.Name)
		}
		return CorrelationReport{}, fmt.Errorf("experiments: unknown correlation strategy %q (known: %v)", strategy, names)
	}
	dev, err := correlDevice(backend)
	if err != nil {
		return CorrelationReport{}, err
	}
	const (
		depth = 4
		tau   = 600.0
	)
	m, err := correlMatrix(dev, st, depth, tau, opts)
	if err != nil {
		return CorrelationReport{}, err
	}
	dist := dev.CouplingGraph().AllDistances()
	thr := correlThreshold(m.Shots)
	rep := CorrelationReport{
		Backend:   backend,
		Strategy:  st.Name,
		Engine:    effectiveEngineName(correlEngine(opts.Engine, dev)),
		NQubits:   m.N,
		Shots:     m.Shots,
		Instances: opts.Instances,
		Seed:      opts.Seed,
		Depth:     depth,
		TauNs:     tau,
		Threshold: thr,
		FlipRates: m.P,
		Pairs:     m.Sparse(thr),
		Decay:     correl.DecayByDistance(m, dist, 8),
	}
	for _, b := range rep.Decay {
		if b.Distance == 1 {
			rep.MeanAbsNN = b.MeanAbsCorr
		}
	}
	if rep.Pairs == nil {
		rep.Pairs = []correl.PairStat{}
	}
	if rep.Decay == nil {
		rep.Decay = []correl.DecayBin{}
	}
	return rep, nil
}
