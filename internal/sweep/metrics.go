package sweep

import "casq/internal/obs"

// Process-wide sweep metrics on the obs default registry, exposed by
// `casq serve` on GET /metrics. Cell-state transitions are counted per
// terminal (and leased) state, so a dashboard distinguishes cache hits
// from fresh computes from failures at a glance.
var (
	mRuns  = obs.Default().Counter("casq_sweep_runs_total", "Sweeps started (in-process runs and fabric submissions).")
	mCells = obs.Default().CounterVec("casq_sweep_cells_total", "Sweep cells entering each lifecycle state.", "state")
)

// RecordCellState counts one cell-state transition on the shared
// casq_sweep_cells_total family. The fabric coordinator records its
// transitions through this same helper, so local and distributed cells
// aggregate into one metric regardless of where they ran.
func RecordCellState(st CellState) { mCells.With(string(st)).Inc() }

// RecordRun counts one sweep submission (in-process or fabric).
func RecordRun() { mRuns.Inc() }
