// Package sweep turns the experiment catalog into schedulable batch work.
// A Spec names experiment ids and a Grid of option axes (seeds, shot
// budgets, twirl instances, depth clamps); Cells expands the grid into the
// cartesian product of concrete (id, Options) cells. A Runner executes
// cells with bounded concurrency through a Cache, which consults the
// content-addressed store before computing and checkpoints every computed
// figure back into it — so an interrupted sweep, restarted with the same
// spec, resumes from its checkpoints and recomputes nothing that already
// finished, and a repeated figure request is answered bit-identically from
// cache.
package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sync"

	"casq/internal/exec"
	"casq/internal/experiments"
	"casq/internal/obs"
	"casq/internal/store"
)

// descriptorRev versions the cell descriptor. Bump it when harness
// internals change in a result-affecting way that the descriptor fields do
// not capture (device construction, pipeline composition), so stale cached
// figures are never served for the new code.
//
// Rev 2: the backend axis joined the descriptor (and Spec declarations
// gained Backends), so every pre-backend checkpoint is retired.
//
// Rev 3: the engine axis joined the descriptor — a figure computed by the
// stabilizer engine is a different artifact from the statevector one, so
// pre-engine checkpoints are retired rather than ever being served for an
// engine-qualified request.
const descriptorRev = 3

// Compute regenerates one figure from scratch. The default is
// experiments.Run; tests substitute counting or failing stand-ins.
type Compute func(id string, opts experiments.Options) (experiments.Figure, error)

// Cell is one concrete unit of sweep work: a single experiment at fully
// bound options.
type Cell struct {
	ID   string              `json:"id"`
	Opts experiments.Options `json:"opts"`
}

// descriptor is the canonical request identity a Cell hashes to. Workers
// is deliberately excluded: executor results are bit-identical for every
// worker count, so parallelism must not fragment the cache.
type descriptor struct {
	Rev        int                `json:"rev"`
	ID         string             `json:"id"`
	Title      string             `json:"title"`
	Paper      string             `json:"paper"`
	Strategies []string           `json:"strategies"`
	Axes       []experiments.Axis `json:"axes"`
	Seed       int64              `json:"seed"`
	Shots      int                `json:"shots"`
	Instances  int                `json:"instances"`
	MaxDepth   int                `json:"max_depth"`
	Fast       bool               `json:"fast"`
	Backend    string             `json:"backend"`
	Engine     string             `json:"engine"`
}

// Key returns the cell's content address: the fingerprint of the
// experiment's declared Spec plus every result-affecting option.
// MaxDepth acts only through the declared "depth" axis (Spec.Depths is
// its sole consumer), so for specs without one it is normalized to zero —
// sweeping max_depths over an axis-free experiment then dedups to a
// single computation instead of storing identical bytes under many keys.
func (c Cell) Key() (store.Key, error) {
	sp, ok := experiments.Lookup(c.ID)
	if !ok {
		return "", fmt.Errorf("sweep: unknown experiment %q", c.ID)
	}
	maxDepth := c.Opts.MaxDepth
	if len(sp.AxisValues("depth", c.Opts)) == 0 {
		maxDepth = 0
	}
	if !sp.SupportsBackend(c.Opts.Backend) {
		return "", fmt.Errorf("sweep: %s does not support backend %q (declared: %v)",
			c.ID, c.Opts.Backend, sp.Backends)
	}
	if !exec.ValidEngine(c.Opts.Engine) {
		return "", fmt.Errorf("sweep: unknown engine %q (known: %v)", c.Opts.Engine, exec.EngineNames())
	}
	if !sp.SupportsEngine(c.Opts.Engine) {
		return "", fmt.Errorf("sweep: %s does not honor engine %q (declared: %v)",
			c.ID, c.Opts.Engine, sp.Engines)
	}
	// "" and "statevector" are the same configuration; normalize so the
	// two spellings share one cache artifact instead of double-computing.
	engine := c.Opts.Engine
	if engine == exec.EngineStatevector {
		engine = ""
	}
	return store.Fingerprint(descriptor{
		Rev:        descriptorRev,
		ID:         sp.ID,
		Title:      sp.Title,
		Paper:      sp.Paper,
		Strategies: sp.Strategies,
		Axes:       sp.Axes,
		Seed:       c.Opts.Seed,
		Shots:      c.Opts.Shots,
		Instances:  c.Opts.Instances,
		MaxDepth:   maxDepth,
		Fast:       c.Opts.Fast,
		Backend:    c.Opts.Backend,
		Engine:     engine,
	})
}

// Cache is the compute-or-cached layer over the result store. The zero
// Compute means experiments.Run. Concurrent requests for the same key are
// coalesced: one caller computes, the rest wait and share its result.
type Cache struct {
	Store   *store.Store
	Compute Compute

	mu       sync.Mutex
	inflight map[store.Key]*flight
}

// flight is one in-progress computation other requests can wait on.
type flight struct {
	done chan struct{}
	data []byte
	err  error
}

// NewCache returns a cache computing through experiments.Run.
func NewCache(st *store.Store) *Cache { return &Cache{Store: st} }

// Figure returns the JSON-encoded figure for the cell, serving it from the
// store when present and computing + checkpointing it otherwise. The
// returned bytes on a hit are the exact bytes stored by the miss that
// produced them. Only one computation per key runs at a time; callers
// that join an in-flight computation report a hit (they did no work).
func (c *Cache) Figure(cell Cell) (data []byte, hit bool, err error) {
	key, err := cell.Key()
	if err != nil {
		return nil, false, err
	}
	if data, ok, err := c.Store.Get(key); err != nil {
		return nil, false, err
	} else if ok {
		return data, true, nil
	}

	c.mu.Lock()
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, false, f.err
		}
		return f.data, true, nil
	}
	f := &flight{done: make(chan struct{})}
	if c.inflight == nil {
		c.inflight = map[store.Key]*flight{}
	}
	c.inflight[key] = f
	c.mu.Unlock()
	defer func() {
		f.data, f.err = data, err
		c.mu.Lock()
		delete(c.inflight, key)
		c.mu.Unlock()
		close(f.done)
	}()

	compute := c.Compute
	if compute == nil {
		compute = c.runResolved
	}
	fig, err := compute(cell.ID, cell.Opts)
	if err != nil {
		return nil, false, fmt.Errorf("sweep: %s: %w", cell.ID, err)
	}
	data, err = json.Marshal(fig)
	if err != nil {
		return nil, false, fmt.Errorf("sweep: %s: encode: %w", cell.ID, err)
	}
	if err := c.Store.Put(key, data); err != nil {
		return nil, false, err
	}
	return data, false, nil
}

// runResolved is the default compute: experiments.Run, except that a
// spec declaring DerivesFrom resolves its base figure through this cache
// first — so deriving fig7d reuses a checkpointed fig7c (and checkpoints
// it on a miss) instead of re-running the whole base simulation.
func (c *Cache) runResolved(id string, opts experiments.Options) (experiments.Figure, error) {
	sp, ok := experiments.Lookup(id)
	if !ok || sp.DerivesFrom == "" {
		return experiments.Run(id, opts)
	}
	baseData, _, err := c.Figure(Cell{ID: sp.DerivesFrom, Opts: opts})
	if err != nil {
		return experiments.Figure{}, err
	}
	var base experiments.Figure
	if err := json.Unmarshal(baseData, &base); err != nil {
		return experiments.Figure{}, fmt.Errorf("decode cached %s: %w", sp.DerivesFrom, err)
	}
	return sp.Derive(sp, base, opts)
}

// Grid declares the option axes of a sweep. Empty axes inherit the base
// options' value, so the zero Grid sweeps exactly the base configuration.
type Grid struct {
	Seeds     []int64 `json:"seeds,omitempty"`
	Shots     []int   `json:"shots,omitempty"`
	Instances []int   `json:"instances,omitempty"`
	MaxDepths []int   `json:"max_depths,omitempty"`
	// Backends sweeps the registry-backend axis; every listed experiment
	// must declare each backend in its Spec.Backends ("" = the default
	// device, always allowed).
	Backends []string `json:"backends,omitempty"`
	// Engines sweeps the simulation-engine axis ("statevector", "stab",
	// "auto"; "" = statevector). A statevector-vs-stab sweep of one figure
	// is the service-level differential test.
	Engines []string `json:"engines,omitempty"`
}

// Spec is a sweep request: which experiments, over which option grid,
// starting from which base options.
type Spec struct {
	// IDs lists experiment ids; empty means the whole catalog.
	IDs  []string `json:"ids,omitempty"`
	Grid Grid     `json:"grid"`
	// Base supplies the option values of un-swept axes. Zero fields mean
	// "use the default" (the HTTP layer fills them); to sweep a literal
	// zero — e.g. seed 0 — put it on the corresponding Grid axis, which
	// is always honored verbatim.
	Base experiments.Options `json:"base"`
	// Fast switches the reduced axes (and is part of each cell's cache
	// identity).
	Fast bool `json:"fast,omitempty"`
}

// Cells expands the spec into the cartesian product id × seed × shots ×
// instances × max-depth × backend × engine, in deterministic order (ids
// outermost, then the grid axes in declaration order).
func (s Spec) Cells() ([]Cell, error) {
	ids := s.IDs
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		if _, ok := experiments.Lookup(id); !ok {
			return nil, fmt.Errorf("sweep: unknown experiment %q", id)
		}
	}
	seeds := s.Grid.Seeds
	if len(seeds) == 0 {
		seeds = []int64{s.Base.Seed}
	}
	shots := s.Grid.Shots
	if len(shots) == 0 {
		shots = []int{s.Base.Shots}
	}
	instances := s.Grid.Instances
	if len(instances) == 0 {
		instances = []int{s.Base.Instances}
	}
	maxDepths := s.Grid.MaxDepths
	if len(maxDepths) == 0 {
		maxDepths = []int{s.Base.MaxDepth}
	}
	backends := s.Grid.Backends
	if len(backends) == 0 {
		backends = []string{s.Base.Backend}
	}
	for _, b := range backends {
		for _, id := range ids {
			sp, _ := experiments.Lookup(id)
			if !sp.SupportsBackend(b) {
				return nil, fmt.Errorf("sweep: %s does not support backend %q (declared: %v)", id, b, sp.Backends)
			}
		}
	}
	engines := s.Grid.Engines
	if len(engines) == 0 {
		engines = []string{s.Base.Engine}
	}
	for _, e := range engines {
		if !exec.ValidEngine(e) {
			return nil, fmt.Errorf("sweep: unknown engine %q (known: %v)", e, exec.EngineNames())
		}
		for _, id := range ids {
			sp, _ := experiments.Lookup(id)
			if !sp.SupportsEngine(e) {
				return nil, fmt.Errorf("sweep: %s does not honor engine %q (declared: %v)", id, e, sp.Engines)
			}
		}
	}
	cells := make([]Cell, 0, len(ids)*len(seeds)*len(shots)*len(instances)*len(maxDepths)*len(backends)*len(engines))
	for _, id := range ids {
		for _, seed := range seeds {
			for _, sh := range shots {
				for _, inst := range instances {
					for _, md := range maxDepths {
						for _, b := range backends {
							for _, eng := range engines {
								opts := s.Base
								opts.Seed = seed
								opts.Shots = sh
								opts.Instances = inst
								opts.MaxDepth = md
								opts.Backend = b
								opts.Engine = eng
								opts.Fast = s.Fast || s.Base.Fast
								cells = append(cells, Cell{ID: id, Opts: opts})
							}
						}
					}
				}
			}
		}
	}
	return cells, nil
}

// CellState is the lifecycle of one cell within a Run.
type CellState string

const (
	CellPending  CellState = "pending"
	CellLeased   CellState = "leased"   // claimed by a fabric worker, not yet reported
	CellCached   CellState = "cached"   // answered from the store
	CellComputed CellState = "computed" // freshly computed and checkpointed
	CellFailed   CellState = "failed"
	CellSkipped  CellState = "skipped" // sweep interrupted before the cell ran
)

// Progress is a snapshot of a running or finished sweep. It is the shared
// aggregation model for both in-process runs and the distributed fabric
// (which additionally reports Leased cells).
type Progress struct {
	Total    int  `json:"total"`
	Done     int  `json:"done"` // cached + computed
	Cached   int  `json:"cached"`
	Computed int  `json:"computed"`
	Failed   int  `json:"failed"`
	Skipped  int  `json:"skipped"`
	Leased   int  `json:"leased,omitempty"` // fabric cells out on a worker lease
	Finished bool `json:"finished"`
	// Err is the first failure message, if any.
	Err string `json:"err,omitempty"`
}

// Run is one scheduled sweep execution.
type Run struct {
	cells   []Cell
	traceID uint64

	mu     sync.Mutex
	states []CellState
	first  string        // first error message
	watch  chan struct{} // closed and replaced on every state change

	done chan struct{}
}

// Cells returns the run's expanded cells (shared slice; read-only).
func (r *Run) Cells() []Cell { return r.cells }

// TraceID returns the run's trace identity: every cell span this run
// records carries it, and the serve layer echoes it in SSE progress
// events so a client can correlate a sweep with its trace.
func (r *Run) TraceID() uint64 { return r.traceID }

// Done returns a channel closed when every cell has reached a terminal
// state.
func (r *Run) Done() <-chan struct{} { return r.done }

// Wait blocks until the run finishes and returns its final progress.
func (r *Run) Wait() Progress {
	<-r.done
	return r.Progress()
}

// Changed returns a channel closed on the next state change (including
// the final transition to finished). To watch a run without missing
// updates, fetch the channel before snapshotting Progress, then wait on
// it: any change after the snapshot closes the returned channel. This is
// what the serve layer's SSE endpoint polls.
func (r *Run) Changed() <-chan struct{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.watch
}

// notifyLocked wakes every Changed waiter. Callers hold r.mu.
func (r *Run) notifyLocked() {
	close(r.watch)
	r.watch = make(chan struct{})
}

// Progress returns a consistent snapshot of the run.
func (r *Run) Progress() Progress {
	r.mu.Lock()
	defer r.mu.Unlock()
	p := Progress{Total: len(r.cells), Err: r.first}
	for _, st := range r.states {
		switch st {
		case CellCached:
			p.Cached++
		case CellComputed:
			p.Computed++
		case CellFailed:
			p.Failed++
		case CellSkipped:
			p.Skipped++
		}
	}
	p.Done = p.Cached + p.Computed
	select {
	case <-r.done:
		p.Finished = true
	default:
	}
	return p
}

// States returns a copy of the per-cell states, index-aligned with Cells.
func (r *Run) States() []CellState {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]CellState, len(r.states))
	copy(out, r.states)
	return out
}

func (r *Run) set(i int, st CellState, err error) {
	r.mu.Lock()
	r.states[i] = st
	if err != nil && r.first == "" {
		r.first = err.Error()
	}
	r.notifyLocked()
	r.mu.Unlock()
	RecordCellState(st)
}

// Runner schedules sweeps through a cache with bounded concurrency.
type Runner struct {
	Cache *Cache
	// Workers is the sweep's total parallelism budget; 0 means GOMAXPROCS.
	// Like the executor's unified budget, it is split between cell-level
	// fan-out and each cell's own executor: a wide sweep runs many cells
	// whose Options.Workers default to 1, a narrow sweep hands the spare
	// budget to each cell's executor. An explicit cell Options.Workers is
	// respected (it never changes results — only parallelism).
	Workers int
	// Tracer records one span per cell (lane = sweep worker index), all
	// stamped with the run's TraceID, and is threaded into each cell's
	// Options so compile-pass and engine spans nest under it. Nil (the
	// default) disables tracing at zero cost.
	Tracer *obs.Tracer
}

// Start expands the spec and launches its cells in the background,
// returning the Run handle immediately. Cells whose results are already
// checkpointed in the store are marked cached without recomputation —
// restarting an interrupted sweep therefore resumes where it stopped.
// Cancelling ctx stops claiming new cells; cells never started are marked
// skipped.
func (r *Runner) Start(ctx context.Context, spec Spec) (*Run, error) {
	cells, err := spec.Cells()
	if err != nil {
		return nil, err
	}
	run := &Run{
		cells:   cells,
		traceID: obs.NextTraceID(),
		states:  make([]CellState, len(cells)),
		watch:   make(chan struct{}),
		done:    make(chan struct{}),
	}
	RecordRun()
	for i := range run.states {
		run.states[i] = CellPending
	}
	// Split one parallelism budget between cell fan-out and each cell's
	// executor (mirroring exec's unified worker budget): running
	// GOMAXPROCS cells that each default to GOMAXPROCS simulator workers
	// would oversubscribe the machine quadratically.
	budget := r.Workers
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	workers := budget
	if workers > len(cells) {
		workers = max(1, len(cells))
	}
	perCell := max(1, budget/workers)

	indices := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for i := range indices {
				if ctx.Err() != nil {
					run.set(i, CellSkipped, nil)
					continue
				}
				cell := cells[i]
				if cell.Opts.Workers == 0 {
					cell.Opts.Workers = perCell
				}
				var sp obs.Span
				if r.Tracer.Enabled() {
					sp = r.Tracer.Start("sweep.cell:" + cell.ID).WithLane(lane).WithTrace(run.traceID)
					if cell.Opts.Tracer == nil {
						cell.Opts.Tracer = r.Tracer
					}
				}
				_, hit, err := r.Cache.Figure(cell)
				sp.End()
				switch {
				case err != nil:
					run.set(i, CellFailed, err)
				case hit:
					run.set(i, CellCached, nil)
				default:
					run.set(i, CellComputed, nil)
				}
			}
		}(w + 1)
	}
	go func() {
		for i := range cells {
			indices <- i
		}
		close(indices)
		wg.Wait()
		// Close done before the final notification: a watcher woken by the
		// last change must observe Progress().Finished == true.
		run.mu.Lock()
		close(run.done)
		run.notifyLocked()
		run.mu.Unlock()
	}()
	return run, nil
}
