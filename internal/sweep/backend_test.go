package sweep

import (
	"testing"

	"casq/internal/experiments"
)

// TestBackendAxisExpansion pins the backend grid axis: cells expand the
// cartesian product, keys separate per backend, and the default-backend
// cell keys stay distinct from any named backend.
func TestBackendAxisExpansion(t *testing.T) {
	spec := Spec{
		IDs:  []string{"fig6"},
		Grid: Grid{Seeds: []int64{1, 2}, Backends: []string{"", "heavyhex29"}},
		Base: experiments.Options{Shots: 8, Instances: 1},
	}
	cells, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("expanded %d cells, want 2 seeds x 2 backends = 4", len(cells))
	}
	keys := map[string]bool{}
	for _, c := range cells {
		k, err := c.Key()
		if err != nil {
			t.Fatal(err)
		}
		keys[string(k)] = true
	}
	if len(keys) != 4 {
		t.Fatalf("cells share keys: %d distinct of 4", len(keys))
	}
}

// TestEngineAxisKeys: engine-qualified cells must hash to distinct store
// keys — a stabilizer-engine figure is a different artifact from the
// statevector one.
func TestEngineAxisKeys(t *testing.T) {
	spec := Spec{
		IDs:  []string{"fig8"},
		Grid: Grid{Engines: []string{"statevector", "stab"}},
		Base: experiments.Options{Seed: 1, Shots: 8, Instances: 1},
	}
	cells, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("expanded %d cells, want 2", len(cells))
	}
	keys := map[string]bool{}
	for _, c := range cells {
		k, err := c.Key()
		if err != nil {
			t.Fatal(err)
		}
		keys[string(k)] = true
	}
	if len(keys) != 2 {
		t.Fatalf("engine cells share keys: %d distinct of 2", len(keys))
	}
}

// TestBackendAxisValidation: an experiment that does not declare a backend
// must be rejected at expansion time, not during the sweep.
func TestBackendAxisValidation(t *testing.T) {
	spec := Spec{
		IDs:  []string{"fig5"},
		Grid: Grid{Backends: []string{"heavyhex29"}},
	}
	if _, err := spec.Cells(); err == nil {
		t.Fatal("fig5 with a backend axis must fail to expand")
	}
	cell := Cell{ID: "fig5", Opts: experiments.Options{Backend: "heavyhex29"}}
	if _, err := cell.Key(); err == nil {
		t.Fatal("key for an unsupported backend must error")
	}
	bad := Spec{IDs: []string{"fig5"}, Grid: Grid{Engines: []string{"warp"}}}
	if _, err := bad.Cells(); err == nil {
		t.Fatal("unknown engine axis must fail to expand")
	}
	undeclared := Spec{IDs: []string{"fig5"}, Grid: Grid{Engines: []string{"stab"}}}
	if _, err := undeclared.Cells(); err == nil {
		t.Fatal("engine axis over a non-engine-aware experiment must fail to expand")
	}
	ecell := Cell{ID: "fig5", Opts: experiments.Options{Engine: "warp"}}
	if _, err := ecell.Key(); err == nil {
		t.Fatal("key for an unknown engine must error")
	}
	ucell := Cell{ID: "fig5", Opts: experiments.Options{Engine: "stab"}}
	if _, err := ucell.Key(); err == nil {
		t.Fatal("key for an undeclared engine must error")
	}
}
