package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"casq/internal/experiments"
	"casq/internal/store"
)

func memCache(t *testing.T, compute Compute) *Cache {
	t.Helper()
	st, err := store.Open("", 64)
	if err != nil {
		t.Fatal(err)
	}
	return &Cache{Store: st, Compute: compute}
}

func TestCellsExpansion(t *testing.T) {
	spec := Spec{
		IDs:  []string{"fig5", "table1"},
		Grid: Grid{Seeds: []int64{1, 2, 3}, Shots: []int{16, 32}},
		Base: experiments.FastOptions(),
	}
	cells, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2*3*2 {
		t.Fatalf("expanded %d cells, want 12", len(cells))
	}
	// Un-swept axes inherit the base; swept axes are bound per cell.
	if cells[0].ID != "fig5" || cells[0].Opts.Seed != 1 || cells[0].Opts.Shots != 16 {
		t.Errorf("first cell = %+v", cells[0])
	}
	if cells[0].Opts.Instances != experiments.FastOptions().Instances {
		t.Error("base instances not inherited")
	}
	if _, err := (Spec{IDs: []string{"nope"}}).Cells(); err == nil {
		t.Error("unknown id must fail expansion")
	}
	// Empty spec covers the whole catalog once.
	all, err := Spec{Base: experiments.FastOptions()}.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(experiments.IDs()) {
		t.Errorf("catalog sweep has %d cells, want %d", len(all), len(experiments.IDs()))
	}
}

func TestCellKeyStableAndWorkerBlind(t *testing.T) {
	base := Cell{ID: "fig6", Opts: experiments.FastOptions()}
	k1, err := base.Key()
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := base.Key()
	if k1 != k2 {
		t.Error("key not deterministic")
	}
	// Workers only changes parallelism, never results: same address.
	workers := base
	workers.Opts.Workers = 7
	if kw, _ := workers.Key(); kw != k1 {
		t.Error("worker count fragmented the cache key")
	}
	// Every result-affecting option must move the address.
	seed := base
	seed.Opts.Seed++
	if ks, _ := seed.Key(); ks == k1 {
		t.Error("seed change kept the same key")
	}
	other := Cell{ID: "fig10", Opts: base.Opts}
	if ko, _ := other.Key(); ko == k1 {
		t.Error("different experiments share a key")
	}
	if _, err := (Cell{ID: "nope"}).Key(); err == nil {
		t.Error("unknown id must not produce a key")
	}
}

// TestCacheHitBitIdentity pins the acceptance contract: the second request
// for a figure does not recompute, and its payload is byte-identical both
// to the first response and to a fresh out-of-band compute.
func TestCacheHitBitIdentity(t *testing.T) {
	var computes atomic.Int32
	cache := memCache(t, func(id string, opts experiments.Options) (experiments.Figure, error) {
		computes.Add(1)
		return experiments.Run(id, opts)
	})
	cell := Cell{ID: "fig5", Opts: experiments.FastOptions()}

	first, hit, err := cache.Figure(cell)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first request cannot be a hit")
	}
	second, hit, err := cache.Figure(cell)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("second request must be served from the store")
	}
	if got := computes.Load(); got != 1 {
		t.Errorf("computed %d times, want 1", got)
	}
	if !bytes.Equal(first, second) {
		t.Error("cached payload differs from the original response")
	}
	fresh, err := experiments.Run(cell.ID, cell.Opts)
	if err != nil {
		t.Fatal(err)
	}
	freshJSON, _ := json.Marshal(fresh)
	if !bytes.Equal(second, freshJSON) {
		t.Error("cached payload differs from a fresh compute")
	}
	var fig experiments.Figure
	if err := json.Unmarshal(second, &fig); err != nil {
		t.Fatalf("cached payload not a figure: %v", err)
	}
	if fig.ID != "fig5" {
		t.Errorf("round-tripped figure id = %q", fig.ID)
	}
}

// fakeFigure is a cheap deterministic compute for scheduler tests.
func fakeFigure(id string, opts experiments.Options) (experiments.Figure, error) {
	fig := experiments.Figure{ID: id, Title: "fake"}
	fig.AddSeries("s", []float64{0}, []float64{float64(opts.Seed)})
	return fig, nil
}

func TestRunnerRunsAllCells(t *testing.T) {
	var computes atomic.Int32
	cache := memCache(t, func(id string, opts experiments.Options) (experiments.Figure, error) {
		computes.Add(1)
		return fakeFigure(id, opts)
	})
	spec := Spec{
		IDs:  []string{"fig5", "fig6", "table1"},
		Grid: Grid{Seeds: []int64{1, 2, 3, 4}},
		Base: experiments.FastOptions(),
	}
	run, err := (&Runner{Cache: cache, Workers: 4}).Start(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	p := run.Wait()
	if !p.Finished || p.Total != 12 || p.Computed != 12 || p.Failed != 0 || p.Skipped != 0 {
		t.Fatalf("progress = %+v", p)
	}
	if got := computes.Load(); got != 12 {
		t.Errorf("computed %d cells, want 12", got)
	}
	// Re-running the same sweep touches the store, not the harnesses.
	run2, _ := (&Runner{Cache: cache, Workers: 4}).Start(context.Background(), spec)
	p2 := run2.Wait()
	if p2.Cached != 12 || p2.Computed != 0 {
		t.Fatalf("second run progress = %+v", p2)
	}
	if got := computes.Load(); got != 12 {
		t.Errorf("second run recomputed: %d total computes", got)
	}
}

// TestResumeAfterInterrupt cancels a sweep mid-flight and restarts it:
// finished cells must come back from their checkpoints, and the total
// number of harness invocations across both runs must equal the cell
// count — nothing is computed twice.
func TestResumeAfterInterrupt(t *testing.T) {
	dir := t.TempDir()
	openCache := func(computes *atomic.Int32, cancelAfter int32, cancel context.CancelFunc) *Cache {
		st, err := store.Open(dir, 64)
		if err != nil {
			t.Fatal(err)
		}
		return &Cache{Store: st, Compute: func(id string, opts experiments.Options) (experiments.Figure, error) {
			if computes.Add(1) == cancelAfter {
				cancel()
			}
			return fakeFigure(id, opts)
		}}
	}
	spec := Spec{
		IDs:  []string{"fig5"},
		Grid: Grid{Seeds: []int64{1, 2, 3, 4, 5, 6, 7, 8}},
		Base: experiments.FastOptions(),
	}

	var computes atomic.Int32
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Workers=1 so the interrupt point is deterministic: the third compute
	// cancels, the claimed cell still completes and checkpoints.
	run, err := (&Runner{Cache: openCache(&computes, 3, cancel), Workers: 1}).Start(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	p := run.Wait()
	if p.Computed != 3 || p.Skipped != 5 || p.Finished != true {
		t.Fatalf("interrupted progress = %+v", p)
	}

	// "New process": fresh store over the same directory, fresh cache.
	run2, err := (&Runner{Cache: openCache(&computes, -1, func() {}), Workers: 1}).Start(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	p2 := run2.Wait()
	if p2.Cached != 3 || p2.Computed != 5 || p2.Failed != 0 {
		t.Fatalf("resumed progress = %+v", p2)
	}
	if got := computes.Load(); got != 8 {
		t.Errorf("total computes across interrupt+resume = %d, want 8", got)
	}
}

func TestRunnerReportsFailure(t *testing.T) {
	boom := errors.New("boom")
	cache := memCache(t, func(id string, opts experiments.Options) (experiments.Figure, error) {
		if opts.Seed == 2 {
			return experiments.Figure{}, boom
		}
		return fakeFigure(id, opts)
	})
	spec := Spec{IDs: []string{"fig5"}, Grid: Grid{Seeds: []int64{1, 2, 3}}, Base: experiments.FastOptions()}
	run, err := (&Runner{Cache: cache, Workers: 2}).Start(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	p := run.Wait()
	if p.Failed != 1 || p.Computed != 2 {
		t.Fatalf("progress = %+v", p)
	}
	if p.Err == "" {
		t.Error("first error not surfaced")
	}
	states := run.States()
	var failed int
	for _, st := range states {
		if st == CellFailed {
			failed++
		}
	}
	if failed != 1 {
		t.Errorf("states = %v", states)
	}
}

func TestCacheComputeErrorNotCheckpointed(t *testing.T) {
	calls := 0
	cache := memCache(t, func(id string, opts experiments.Options) (experiments.Figure, error) {
		calls++
		return experiments.Figure{}, fmt.Errorf("transient %d", calls)
	})
	cell := Cell{ID: "fig5", Opts: experiments.FastOptions()}
	if _, _, err := cache.Figure(cell); err == nil {
		t.Fatal("error must propagate")
	}
	// A failure leaves no poisoned entry: the next request recomputes.
	if _, _, err := cache.Figure(cell); err == nil || calls != 2 {
		t.Fatalf("calls = %d, err = %v", calls, err)
	}
}

// TestFigureCoalescesConcurrentMisses pins the singleflight behavior: N
// concurrent requests for one uncached cell run the compute exactly once
// and all receive the same bytes.
func TestFigureCoalescesConcurrentMisses(t *testing.T) {
	var computes atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})
	cache := memCache(t, func(id string, opts experiments.Options) (experiments.Figure, error) {
		computes.Add(1)
		close(started)
		<-release
		return fakeFigure(id, opts)
	})
	cell := Cell{ID: "fig5", Opts: experiments.FastOptions()}

	type result struct {
		data []byte
		err  error
	}
	const waiters = 8
	results := make(chan result, waiters)
	go func() {
		data, _, err := cache.Figure(cell) // leader
		results <- result{data, err}
	}()
	<-started // leader is inside compute; the rest must join its flight
	for i := 1; i < waiters; i++ {
		go func() {
			data, _, err := cache.Figure(cell)
			results <- result{data, err}
		}()
	}
	close(release)
	var first []byte
	for i := 0; i < waiters; i++ {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		if first == nil {
			first = r.data
		} else if !bytes.Equal(first, r.data) {
			t.Error("coalesced requests returned different bytes")
		}
	}
	if got := computes.Load(); got != 1 {
		t.Errorf("computed %d times under concurrency, want 1", got)
	}
}

// TestFigureCoalescedErrorPropagates: a failing computation fails its
// coalesced waiters too (a waiter that misses the flight window computes
// and fails itself), and nothing poisoned is checkpointed.
func TestFigureCoalescedErrorPropagates(t *testing.T) {
	var computes atomic.Int32
	var failing atomic.Bool
	failing.Store(true)
	started := make(chan struct{})
	release := make(chan struct{})
	cache := memCache(t, func(id string, opts experiments.Options) (experiments.Figure, error) {
		n := computes.Add(1)
		if failing.Load() {
			if n == 1 {
				close(started)
				<-release
			}
			return experiments.Figure{}, errors.New("compute failed")
		}
		return fakeFigure(id, opts)
	})
	cell := Cell{ID: "fig5", Opts: experiments.FastOptions()}
	errs := make(chan error, 2)
	go func() { _, _, err := cache.Figure(cell); errs <- err }()
	<-started // leader is parked inside its failing compute
	go func() { _, _, err := cache.Figure(cell); errs <- err }()
	close(release)
	for i := 0; i < 2; i++ {
		if err := <-errs; err == nil {
			t.Error("caller did not see the computation failure")
		}
	}
	if got := computes.Load(); got < 1 || got > 2 {
		t.Errorf("computes = %d, want 1 (coalesced) or 2 (flight window missed)", got)
	}
	// The failures were not checkpointed: the next request recomputes.
	failing.Store(false)
	if _, hit, err := cache.Figure(cell); err != nil || hit {
		t.Fatalf("retry after failure: hit=%v err=%v", hit, err)
	}
}

// TestDerivedFigureReusesCachedBase pins the fig7d dependency contract:
// computing the derived figure through the cache checkpoints (and later
// reuses) the fig7c base instead of re-running the base simulation, and
// the result is byte-identical to a standalone compute.
func TestDerivedFigureReusesCachedBase(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	st, err := store.Open("", 64)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(st) // default compute path resolves declared derivations
	opts := experiments.FastOptions()
	opts.Shots, opts.Instances, opts.MaxDepth = 16, 2, 2

	derived, hit, err := cache.Figure(Cell{ID: "fig7d", Opts: opts})
	if err != nil || hit {
		t.Fatalf("first fig7d: hit=%v err=%v", hit, err)
	}
	// The base was checkpointed on the way: fig7c is now a pure hit.
	if _, hit, err := cache.Figure(Cell{ID: "fig7c", Opts: opts}); err != nil || !hit {
		t.Fatalf("fig7c after fig7d: hit=%v err=%v", hit, err)
	}
	// And the cached derivation matches a standalone recompute exactly.
	fresh, err := experiments.Run("fig7d", opts)
	if err != nil {
		t.Fatal(err)
	}
	freshJSON, _ := json.Marshal(fresh)
	if !bytes.Equal(derived, freshJSON) {
		t.Error("derived figure differs from standalone compute")
	}
}

// TestCellKeyIgnoresIrrelevantMaxDepth: MaxDepth acts only through a
// declared depth axis, so for axis-free experiments it must not fragment
// the cache.
func TestCellKeyIgnoresIrrelevantMaxDepth(t *testing.T) {
	// fig8 has no depth axis: MaxDepth cannot affect its result.
	a := Cell{ID: "fig8", Opts: experiments.Options{Seed: 1, Shots: 16, Instances: 2, MaxDepth: 2}}
	b := a
	b.Opts.MaxDepth = 6
	ka, err := a.Key()
	if err != nil {
		t.Fatal(err)
	}
	if kb, _ := b.Key(); kb != ka {
		t.Error("MaxDepth fragmented the key of a depth-axis-free experiment")
	}
	// fig6 has one: MaxDepth is result-affecting and must move the key.
	c := Cell{ID: "fig6", Opts: a.Opts}
	d := c
	d.Opts.MaxDepth = 6
	kc, _ := c.Key()
	if kd, _ := d.Key(); kd == kc {
		t.Error("MaxDepth ignored for a depth-swept experiment")
	}
}

// TestSweepFigCEngineGrid runs the correlation-spectroscopy spec over the
// engine axis with the real harness: each engine is a distinct cell with
// its own checkpoint, and rerunning the grid is answered entirely from
// the store.
func TestSweepFigCEngineGrid(t *testing.T) {
	var computes atomic.Int32
	cache := memCache(t, func(id string, opts experiments.Options) (experiments.Figure, error) {
		computes.Add(1)
		return experiments.Run(id, opts)
	})
	base := experiments.FastOptions()
	base.Shots = 128
	base.Instances = 2
	spec := Spec{
		IDs:  []string{"figC1"},
		Grid: Grid{Engines: []string{"statevector", "stab"}},
		Base: base,
	}
	run, err := (&Runner{Cache: cache, Workers: 2}).Start(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	p := run.Wait()
	if !p.Finished || p.Total != 2 || p.Computed != 2 || p.Failed != 0 {
		t.Fatalf("progress = %+v", p)
	}
	run2, _ := (&Runner{Cache: cache, Workers: 2}).Start(context.Background(), spec)
	if p2 := run2.Wait(); p2.Cached != 2 || p2.Computed != 0 {
		t.Fatalf("second run progress = %+v", p2)
	}
	if got := computes.Load(); got != 2 {
		t.Errorf("computed %d cells across both runs, want 2", got)
	}
	// The spectroscopy specs do not honor an engine they don't declare.
	bad := Spec{IDs: []string{"figC1"}, Grid: Grid{Engines: []string{"nosuch"}}, Base: base}
	if _, err := bad.Cells(); err == nil {
		t.Error("unknown engine must fail expansion")
	}
}
