// Package layout is the context-aware placement stage of the compiler: it
// maps a logical circuit onto a (usually much larger) calibrated backend by
// enumerating candidate sub-layouts and scoring each by the coherent error
// the calibration predicts the circuit would accumulate there.
//
// This is the step the paper's workflow presumes and the related
// device-aware compilers make explicit: before any suppression pass runs,
// the compiler reads the backend's ZZ/Stark/NNN rates and picks the
// subregion where the workload's specific idling pattern hurts least. The
// scorer is the same toggling-frame integral the CA-EC pass compensates
// (internal/toggling), so "predicted error" means exactly the angles the
// downstream passes would otherwise have to fight.
//
// Selection runs in three tiers: a cheap static filter (sum of ZZ rates
// touching the candidate region, plus a 1/T2 term) orders the enumeration,
// a ridge-regression surrogate (internal/surrogate) trained online on the
// first exact-scored batch prunes the remainder, and the survivors are
// scored exactly — the circuit is remapped onto the candidate, routed,
// scheduled, and integrated layer by layer on a worker pool with an
// index-ordered reduction, so the chosen placement is bit-identical at any
// worker count. Candidate enumeration is topology-shaped: interaction
// graphs that form a path or a cycle enumerate the backend's matching
// paths/cycles directly; anything else falls back to greedy
// adjacency-guided growth and lets the router legalize whatever remains
// non-adjacent.
//
// The two stages are ordinary pass.Passes (Select, Route) for pipeline
// composition, and Choose/Placement expose the embedding directly for
// callers that need the induced sub-device — the experiment harnesses
// simulate on the induced region so simulator cost scales with the circuit,
// not the backend. ChooseWith additionally reports the search telemetry
// (pruning ratio, fitted surrogate, throughput), and Monitor keeps a chosen
// placement honest against calibration drift, recompiling only when the
// predicted error actually rises past a threshold.
package layout

import (
	"casq/internal/circuit"
	"casq/internal/device"
	"casq/internal/gates"
	"casq/internal/qgraph"
	"casq/internal/toggling"
)

// Options bound the candidate search.
type Options struct {
	// MaxCandidates caps the path/cycle/greedy enumeration (0 = 4096).
	MaxCandidates int
	// TopK is how many statically-filtered candidates receive the exact
	// toggling-frame score when surrogate pruning is off (0 = 32).
	TopK int
	// NoSurrogate disables surrogate pruning: the TopK statically-best
	// candidates are all scored exactly, as in the pre-surrogate compiler.
	NoSurrogate bool
	// FitBatch is how many diversely-ordered candidates are exact-scored to
	// train the surrogate (0 = 12; values below surrogate.MinSamples fall
	// back to the exhaustive TopK path).
	FitBatch int
	// ExactTopK is how many surrogate-ranked candidates receive an exact
	// score on top of the fit batch (0 = 8). The fit batch always includes
	// the statically best region of every diversity round it covers, so the
	// argmin is taken over guaranteed-exact scores.
	ExactTopK int
	// Workers bounds the exact-scoring worker pool (0 = GOMAXPROCS). The
	// chosen placement is bit-identical at any worker count.
	Workers int
}

// Default search bounds.
const (
	DefaultMaxCandidates = 4096
	DefaultTopK          = 32
	DefaultFitBatch      = 12
	DefaultExactTopK     = 8
)

// DefaultOptions returns the standard search bounds.
func DefaultOptions() Options {
	return Options{
		MaxCandidates: DefaultMaxCandidates,
		TopK:          DefaultTopK,
		FitBatch:      DefaultFitBatch,
		ExactTopK:     DefaultExactTopK,
	}
}

func (o Options) withDefaults() Options {
	if o.MaxCandidates <= 0 {
		o.MaxCandidates = DefaultMaxCandidates
	}
	if o.TopK <= 0 {
		o.TopK = DefaultTopK
	}
	if o.FitBatch <= 0 {
		o.FitBatch = DefaultFitBatch
	}
	if o.ExactTopK <= 0 {
		o.ExactTopK = DefaultExactTopK
	}
	return o
}

// Placement is a chosen embedding of a logical circuit into a backend.
type Placement struct {
	// Backend is the parent device's name.
	Backend string
	// Phys maps logical qubit -> physical qubit on the parent device.
	Phys []int
	// Region is the sorted physical qubit set of the embedding.
	Region []int
	// Sub is the induced sub-device on Region with compact indices — the
	// simulation target.
	Sub *device.Device
	// ToSub maps logical qubit -> compact Sub index.
	ToSub []int
	// Score is the predicted accumulated coherent error (radians) of the
	// probe circuit on this placement, including a boundary penalty for
	// region-crossing ZZ edges.
	Score float64
}

// MapCircuit remaps a logical circuit onto the induced sub-device and
// routes it (inserting SWAPs for any non-adjacent two-qubit gates). It
// returns the routed circuit, the final wire -> sub-qubit positions (SWAPs
// permute wires, so observables on logical qubit l live on sub qubit
// final[ToSub[l]] — identity when no SWAPs were needed), and the SWAP
// count.
func (p *Placement) MapCircuit(c *circuit.Circuit) (*circuit.Circuit, []int, int, error) {
	mc := Remap(c, p.ToSub, p.Sub.NQubits)
	return RouteCircuit(p.Sub, mc)
}

// Remap returns a copy of c with every qubit operand i replaced by f[i] and
// the qubit count set to nq.
func Remap(c *circuit.Circuit, f []int, nq int) *circuit.Circuit {
	out := c.Clone()
	out.NQubits = nq
	for li := range out.Layers {
		for ii := range out.Layers[li].Instrs {
			in := &out.Layers[li].Instrs[ii]
			for qi, q := range in.Qubits {
				in.Qubits[qi] = f[q]
			}
		}
	}
	return out
}

// interactionGraph collects the logical 2q-coupling structure of a circuit.
func interactionGraph(c *circuit.Circuit) *qgraph.Graph {
	g := qgraph.New(c.NQubits)
	for _, l := range c.Layers {
		for _, in := range l.Instrs {
			if gates.NumQubits(in.Gate) == 2 && !g.HasEdge(in.Qubits[0], in.Qubits[1]) {
				g.AddEdge(in.Qubits[0], in.Qubits[1])
			}
		}
	}
	return g
}

// pathOrder returns the logical qubits in path order if the interaction
// graph is a simple path spanning all n qubits (isolated single qubit
// included), else nil.
func pathOrder(g *qgraph.Graph) []int {
	n := g.N
	if n == 1 {
		return []int{0}
	}
	edges := 0
	start := -1
	for q := 0; q < n; q++ {
		d := g.Degree(q)
		edges += d
		if d > 2 || d == 0 {
			return nil
		}
		if d == 1 {
			start = q
		}
	}
	if edges/2 != n-1 || start == -1 {
		return nil
	}
	return walkFrom(g, start, n, false)
}

// cycleOrder returns the logical qubits in cycle order if the interaction
// graph is a single cycle over all n qubits, else nil.
func cycleOrder(g *qgraph.Graph) []int {
	n := g.N
	if n < 3 {
		return nil
	}
	edges := 0
	for q := 0; q < n; q++ {
		if g.Degree(q) != 2 {
			return nil
		}
		edges += 2
	}
	if edges/2 != n {
		return nil
	}
	return walkFrom(g, 0, n, true)
}

// walkFrom traverses the degree-<=2 graph from start, returning the visit
// order, or nil if the walk does not cover n nodes (or, for cycles, does
// not close).
func walkFrom(g *qgraph.Graph, start, n int, cycle bool) []int {
	order := []int{start}
	seen := map[int]bool{start: true}
	cur := start
	for len(order) < n {
		next := -1
		for _, nb := range g.Neighbors(cur) {
			if !seen[nb] {
				next = nb
				break
			}
		}
		if next == -1 {
			return nil
		}
		order = append(order, next)
		seen[next] = true
		cur = next
	}
	if cycle && !g.HasEdge(order[n-1], order[0]) {
		return nil
	}
	return order
}

// enumeratePaths lists simple paths of nv vertices in the coupling graph,
// capped. Each path yields one candidate (reversals arise from DFS at the
// other endpoint).
func enumeratePaths(g *qgraph.Graph, nv, cap_ int) [][]int {
	var out [][]int
	path := make([]int, 0, nv)
	used := make([]bool, g.N)
	var dfs func(int)
	dfs = func(v int) {
		if len(out) >= cap_ {
			return
		}
		path = append(path, v)
		used[v] = true
		if len(path) == nv {
			out = append(out, append([]int(nil), path...))
		} else {
			for _, nb := range g.Neighbors(v) {
				if !used[nb] {
					dfs(nb)
				}
			}
		}
		used[v] = false
		path = path[:len(path)-1]
	}
	for s := 0; s < g.N && len(out) < cap_; s++ {
		dfs(s)
	}
	return out
}

// enumerateCycles lists closed walks of nv distinct vertices. Every
// rotation and direction is enumerated separately: each corresponds to a
// different logical->physical assignment, and the calibration
// distinguishes them.
func enumerateCycles(g *qgraph.Graph, nv, cap_ int) [][]int {
	var out [][]int
	path := make([]int, 0, nv)
	used := make([]bool, g.N)
	var dfs func(start, v int)
	dfs = func(start, v int) {
		if len(out) >= cap_ {
			return
		}
		path = append(path, v)
		used[v] = true
		if len(path) == nv {
			if g.HasEdge(v, start) {
				out = append(out, append([]int(nil), path...))
			}
		} else {
			for _, nb := range g.Neighbors(v) {
				if !used[nb] {
					dfs(start, nb)
				}
			}
		}
		used[v] = false
		path = path[:len(path)-1]
	}
	for s := 0; s < g.N && len(out) < cap_; s++ {
		dfs(s, s)
	}
	return out
}

// greedyCandidates grows one candidate region from every physical seed:
// logical qubits are placed in BFS order over the interaction graph, each
// onto the free physical qubit adjacent to an already-placed interaction
// partner with the lowest added ZZ weight (nearest free qubit when no
// adjacent one is open). The router legalizes any residual non-adjacency.
func greedyCandidates(dev *device.Device, g *qgraph.Graph, ig *qgraph.Graph, cap_ int) [][]int {
	n := ig.N
	order := logicalBFSOrder(ig)
	var out [][]int
	for seed := 0; seed < dev.NQubits && len(out) < cap_; seed++ {
		phys := make([]int, n)
		for i := range phys {
			phys[i] = -1
		}
		used := make([]bool, dev.NQubits)
		ok := true
		for _, l := range order {
			var best = -1
			var bestW float64
			try := func(p int) {
				if p < 0 || used[p] {
					return
				}
				w := 0.0
				for _, nb := range g.Neighbors(p) {
					if used[nb] {
						w += dev.ZZRate(p, nb)
					}
				}
				if best == -1 || w < bestW || (w == bestW && p < best) {
					best, bestW = p, w
				}
			}
			if phys[order[0]] == -1 && l == order[0] {
				try(seed)
			} else {
				for _, ln := range ig.Neighbors(l) {
					if phys[ln] == -1 {
						continue
					}
					for _, p := range g.Neighbors(phys[ln]) {
						try(p)
					}
				}
				if best == -1 {
					// No free neighbor of any placed partner: take the
					// nearest free qubit from the placed frontier.
					try(nearestFree(g, phys, used))
				}
			}
			if best == -1 {
				ok = false
				break
			}
			phys[l] = best
			used[best] = true
		}
		if ok {
			out = append(out, phys)
		}
	}
	return out
}

// logicalBFSOrder orders logical qubits by BFS from the highest-degree
// vertex, covering every component (isolated qubits last, ascending).
func logicalBFSOrder(ig *qgraph.Graph) []int {
	n := ig.N
	start := 0
	for q := 1; q < n; q++ {
		if ig.Degree(q) > ig.Degree(start) {
			start = q
		}
	}
	seen := make([]bool, n)
	var order []int
	var bfs func(int)
	bfs = func(s int) {
		queue := []int{s}
		seen[s] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			order = append(order, u)
			for _, v := range ig.Neighbors(u) {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
	}
	bfs(start)
	for q := 0; q < n; q++ {
		if !seen[q] {
			bfs(q)
		}
	}
	return order
}

// nearestFree BFS-expands from all placed qubits to the closest unused one.
func nearestFree(g *qgraph.Graph, phys []int, used []bool) int {
	var queue []int
	seen := make([]bool, g.N)
	for _, p := range phys {
		if p >= 0 {
			queue = append(queue, p)
			seen[p] = true
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if !used[u] {
			return u
		}
		for _, v := range g.Neighbors(u) {
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	return -1
}

// PredictError sums the magnitudes of every surviving coherent error angle
// of a scheduled circuit on a device — the toggling-frame integrals of
// paper Eq. 1 over all layers, ZZ and Stark included. It is the quantity
// CA-EC would have to compensate, evaluated before any suppression runs.
// It is computed by toggling.Scorer in a fixed canonical accumulation
// order (allocation-free after the first call on a device), so the layout
// argmin is bit-deterministic across runs and worker counts.
func PredictError(dev *device.Device, c *circuit.Circuit) float64 {
	return toggling.NewScorer(dev).ScoreCircuit(c)
}

// Choose selects the minimal-predicted-error embedding of c into dev. The
// probe circuit should be the deepest instance of the workload (layout is
// then reused across a depth sweep). Candidates are enumerated by the
// interaction graph's shape, ordered by the static filter, pruned by the
// online surrogate, and the finalists are scored exactly: remapped,
// routed, scheduled, and integrated in the toggling frame, plus the
// boundary penalty. Ties break toward the lexicographically smallest
// mapping so the choice is deterministic. Choose is ChooseWith without the
// telemetry.
func Choose(dev *device.Device, c *circuit.Circuit, opts Options) (*Placement, error) {
	pl, _, err := ChooseWith(dev, c, opts)
	return pl, err
}

// enumerate lists candidate logical->physical mappings, shaped by the
// interaction graph: path workloads enumerate the backend's simple paths,
// cycle workloads its cycles, everything else grows greedily and lets the
// router legalize the rest.
func enumerate(dev *device.Device, g, ig *qgraph.Graph, opts Options) [][]int {
	n := ig.N
	var cands [][]int
	if ord := pathOrder(ig); ord != nil {
		for _, p := range enumeratePaths(g, n, opts.MaxCandidates) {
			phys := make([]int, n)
			for i, l := range ord {
				phys[l] = p[i]
			}
			cands = append(cands, phys)
		}
	} else if ord := cycleOrder(ig); ord != nil {
		for _, p := range enumerateCycles(g, n, opts.MaxCandidates) {
			phys := make([]int, n)
			for i, l := range ord {
				phys[l] = p[i]
			}
			cands = append(cands, phys)
		}
	}
	if len(cands) == 0 {
		cands = greedyCandidates(dev, g, ig, opts.MaxCandidates)
	}
	return cands
}

func lexLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
