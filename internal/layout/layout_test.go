package layout

import (
	"math/rand"
	"testing"

	"casq/internal/circuit"
	"casq/internal/device"
	"casq/internal/gates"
	"casq/internal/pass"
	"casq/internal/sched"
)

// quietLine builds an n-qubit line whose ZZ rates are pinned per edge so
// tests control exactly where the low-noise subregion sits.
func quietLine(t *testing.T, n int, zz map[device.Edge]float64) *device.Device {
	t.Helper()
	opts := device.DefaultOptions()
	opts.Seed = 5
	d := device.NewLine("zline", n, opts)
	for e := range d.ZZ {
		if v, ok := zz[e]; ok {
			d.ZZ[e] = v
		}
	}
	return d
}

// pathCircuit is a d-step line workload on n qubits: NN gates along the
// chain, the interaction graph is the path 0-1-...-n-1.
func pathCircuit(n, d int) *circuit.Circuit {
	c := circuit.New(n, 0)
	c.AddLayer(circuit.OneQubitLayer).H(0)
	for s := 0; s < d; s++ {
		even := c.AddLayer(circuit.TwoQubitLayer)
		for q := 0; q+1 < n; q += 2 {
			even.ECR(q, q+1)
		}
		odd := c.AddLayer(circuit.TwoQubitLayer)
		for q := 1; q+1 < n; q += 2 {
			odd.ECR(q, q+1)
		}
	}
	return c
}

// TestChoosePicksMinimalZZRegion pins the context-aware selection: on a
// 9-qubit line whose ZZ is huge everywhere except the tail edges, the
// 3-qubit path workload must land exactly on the quiet tail {6,7,8}.
func TestChoosePicksMinimalZZRegion(t *testing.T) {
	zz := map[device.Edge]float64{}
	for i := 0; i+1 < 9; i++ {
		zz[device.NewEdge(i, i+1)] = 400e3 // loud
	}
	zz[device.NewEdge(6, 7)] = 1e3
	zz[device.NewEdge(7, 8)] = 1e3
	zz[device.NewEdge(5, 6)] = 2e3 // quiet boundary into the tail
	dev := quietLine(t, 9, zz)

	pl, err := Choose(dev, pathCircuit(3, 2), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := pl.Region; len(got) != 3 || got[0] != 6 || got[1] != 7 || got[2] != 8 {
		t.Fatalf("layout chose region %v, want [6 7 8] (score %.4f)", got, pl.Score)
	}
	if pl.Sub.NQubits != 3 {
		t.Errorf("induced sub-device has %d qubits, want 3", pl.Sub.NQubits)
	}
	// The induced calibration must be the parent's, reindexed.
	if pl.Sub.ZZ[device.NewEdge(0, 1)] != 1e3 {
		t.Errorf("induced ZZ(0,1) = %v, want the parent's ZZ(6,7) = 1e3", pl.Sub.ZZ[device.NewEdge(0, 1)])
	}
	if pl.Sub.T1[0] != dev.T1[6] {
		t.Errorf("induced T1[0] should be parent T1[6]")
	}
}

// TestChooseScoresDistinctRegions pins the region-diversity rule of the
// TopK cut: the static score ignores Stark shifts, so a region that looks
// quietest statically but carries huge Stark must lose to a statically
// worse region once the exact toggling-frame scorer sees it. With a plain
// prefix cut at TopK=2 both finalists would be the two orientations of
// the Stark-poisoned region and the better region would never be scored.
func TestChooseScoresDistinctRegions(t *testing.T) {
	zz := map[device.Edge]float64{}
	for i := 0; i+1 < 8; i++ {
		zz[device.NewEdge(i, i+1)] = 400e3 // loud everywhere...
	}
	zz[device.NewEdge(0, 1)] = 10e3 // ...except region A {0,1,2}: statically best
	zz[device.NewEdge(1, 2)] = 10e3
	zz[device.NewEdge(2, 3)] = 30e3 // A's boundary
	zz[device.NewEdge(5, 6)] = 20e3 // region B {5,6,7}: statically second
	zz[device.NewEdge(6, 7)] = 20e3
	zz[device.NewEdge(4, 5)] = 30e3 // B's boundary
	dev := quietLine(t, 8, zz)
	// Poison region A with enormous Stark shifts, invisible to the static
	// filter; clear them in region B.
	for dir := range dev.Stark {
		switch {
		case dir.Src <= 2 && dir.Dst <= 2:
			dev.Stark[dir] = 1e6
		case dir.Src >= 5 && dir.Dst >= 5:
			dev.Stark[dir] = 0
		}
	}
	opts := DefaultOptions()
	opts.TopK = 2
	pl, err := Choose(dev, pathCircuit(3, 2), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := pl.Region; len(got) != 3 || got[0] != 5 {
		t.Fatalf("layout chose region %v, want the Stark-free [5 6 7]", got)
	}
}

// TestChooseDeterministic pins that repeated Choose calls return the same
// embedding — the experiment cache assumes layout is a pure function.
func TestChooseDeterministic(t *testing.T) {
	dev, err := device.NewBackend("heavyhex29")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Choose(dev, pathCircuit(6, 3), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Choose(dev, pathCircuit(6, 3), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Phys {
		if a.Phys[i] != b.Phys[i] {
			t.Fatalf("non-deterministic layout: %v vs %v", a.Phys, b.Phys)
		}
	}
	if a.Score != b.Score {
		t.Fatalf("non-deterministic score: %v vs %v", a.Score, b.Score)
	}
}

// TestRouteInsertsSwapsOnlyWhenNonAdjacent pins the router contract: an
// all-adjacent circuit routes to itself with zero SWAPs, and a single
// distance-2 gate gets exactly one SWAP.
func TestRouteInsertsSwapsOnlyWhenNonAdjacent(t *testing.T) {
	dev := device.NewLine("r3", 4, device.DefaultOptions())

	adj := circuit.New(4, 0)
	adj.AddLayer(circuit.TwoQubitLayer).ECR(0, 1)
	adj.AddLayer(circuit.TwoQubitLayer).ECR(1, 2)
	routed, final, swaps, err := RouteCircuit(dev, adj)
	if err != nil {
		t.Fatal(err)
	}
	if swaps != 0 {
		t.Fatalf("adjacent circuit got %d SWAPs", swaps)
	}
	if routed.CountGates(gates.SWAP) != 0 {
		t.Error("adjacent circuit contains SWAP gates")
	}
	for i, p := range final {
		if p != i {
			t.Fatalf("adjacent circuit permuted wires: %v", final)
		}
	}

	far := circuit.New(4, 1)
	far.AddLayer(circuit.TwoQubitLayer).ECR(0, 2) // distance 2 on the line
	far.AddLayer(circuit.MeasureLayer).Measure(0, 0)
	routed, final, swaps, err = RouteCircuit(dev, far)
	if err != nil {
		t.Fatal(err)
	}
	if swaps != 1 || routed.CountGates(gates.SWAP) != 1 {
		t.Fatalf("distance-2 gate needs exactly 1 SWAP, got %d", swaps)
	}
	// Wire 0 swapped to qubit 1; the ECR must act on (1, 2) and the
	// measurement must follow the wire.
	var ecr, meas circuit.Instruction
	for _, l := range routed.Layers {
		for _, in := range l.Instrs {
			switch in.Gate {
			case gates.ECR:
				ecr = in
			case gates.Measure:
				meas = in
			}
		}
	}
	if ecr.Qubits[0] != 1 || ecr.Qubits[1] != 2 {
		t.Errorf("routed ECR on %v, want (1,2)", ecr.Qubits)
	}
	if final[0] != 1 || meas.Qubits[0] != 1 {
		t.Errorf("wire 0 should end at qubit 1 (final %v, measure %v)", final, meas.Qubits)
	}
}

// TestRoutePreservesSemantics checks the router against the ideal
// simulator via the pass pipeline: a GHZ-like circuit with a non-adjacent
// CX must produce the same measurement distribution routed as the
// hand-legalized equivalent. (Covered cheaply: just validate + schedule.)
func TestRoutedCircuitValidatesAndSchedules(t *testing.T) {
	dev, err := device.NewBackend("heavyhex29")
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.New(dev.NQubits, 0)
	c.AddLayer(circuit.TwoQubitLayer).ECR(0, 12) // far apart on the lattice
	routed, _, swaps, err := RouteCircuit(dev, c)
	if err != nil {
		t.Fatal(err)
	}
	if swaps == 0 {
		t.Fatal("expected SWAPs for a far pair")
	}
	if err := routed.Validate(); err != nil {
		t.Fatal(err)
	}
	if d := sched.Schedule(routed, dev); d <= 0 {
		t.Error("routed circuit has no duration")
	}
}

// TestSelectAndRoutePasses runs the passes through a real pipeline and
// checks the report fields.
func TestSelectAndRoutePasses(t *testing.T) {
	dev, err := device.NewBackend("heavyhex29")
	if err != nil {
		t.Fatal(err)
	}
	pl := pass.New("placed", Select(DefaultOptions()), Route(), pass.Schedule())
	c := pathCircuit(6, 2)
	compiled, rep, err := pl.Apply(dev, rand.New(rand.NewSource(1)), c)
	if err != nil {
		t.Fatal(err)
	}
	if compiled.NQubits != dev.NQubits {
		t.Errorf("compiled circuit on %d qubits, want device size %d", compiled.NQubits, dev.NQubits)
	}
	if len(rep.Layout) != 6 {
		t.Fatalf("report layout %v, want 6 entries", rep.Layout)
	}
	if rep.Swaps != 0 {
		t.Errorf("path workload on heavy-hex should embed without SWAPs, got %d", rep.Swaps)
	}
	seen := map[int]bool{}
	for _, p := range rep.Layout {
		if p < 0 || p >= dev.NQubits || seen[p] {
			t.Fatalf("bad layout %v", rep.Layout)
		}
		seen[p] = true
	}
	// Consecutive logical qubits must sit on coupled physical qubits.
	for l := 0; l+1 < 6; l++ {
		if !dev.HasEdge(rep.Layout[l], rep.Layout[l+1]) {
			t.Errorf("logical %d-%d mapped to uncoupled %d-%d", l, l+1, rep.Layout[l], rep.Layout[l+1])
		}
	}
}

// TestChooseCycleWorkload embeds a 12-ring into the heavy-hex lattice,
// where the smallest cycles are exactly 12 qubits long.
func TestChooseCycleWorkload(t *testing.T) {
	dev, err := device.NewBackend("heavyhex29")
	if err != nil {
		t.Fatal(err)
	}
	n := 12
	c := circuit.New(n, 0)
	for s := 0; s < 3; s++ {
		l := c.AddLayer(circuit.TwoQubitLayer)
		for q := 2 * s; q < n; q += 6 {
			l.ECR(q, (q+1)%n)
		}
		l2 := c.AddLayer(circuit.TwoQubitLayer)
		for q := 2*s + 3; q < n+2*s; q += 6 {
			l2.ECR(q%n, (q+1)%n)
		}
	}
	pl, err := Choose(dev, c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < n; l++ {
		if !pl.Sub.HasEdge(pl.ToSub[l], pl.ToSub[(l+1)%n]) {
			t.Fatalf("ring edge %d-%d not adjacent in the embedding %v", l, (l+1)%n, pl.Phys)
		}
	}
	routed, _, swaps, err := pl.MapCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	if swaps != 0 {
		t.Errorf("native ring embedding needed %d SWAPs", swaps)
	}
	if err := routed.Validate(); err != nil {
		t.Fatal(err)
	}
}
