package layout

import (
	"fmt"
	"sync"

	"casq/internal/circuit"
	"casq/internal/device"
)

// DefaultRecompileThreshold is the exact-score ratio over the deployed
// baseline past which a drifted placement is recompiled.
const DefaultRecompileThreshold = 1.25

// MonitorOptions tune the drift monitor.
type MonitorOptions struct {
	// Threshold triggers recompilation when the drifted exact score
	// exceeds Threshold times the deployed baseline (0 =
	// DefaultRecompileThreshold). Must end up > 1.
	Threshold float64
	// Gate is the surrogate-predicted ratio above which the monitor pays
	// for an exact re-score (0 = 0.9*Threshold). Below it the drift event
	// is absorbed with one feature evaluation and one dot product.
	Gate float64
	// Search configures the initial compile and every recompilation.
	Search Options
}

func (o MonitorOptions) withDefaults() MonitorOptions {
	if o.Threshold <= 1 {
		o.Threshold = DefaultRecompileThreshold
	}
	if o.Gate <= 0 {
		o.Gate = 0.9 * o.Threshold
	}
	return o
}

// MonitorStats counts what the monitor has done — the observability
// surface of the recompilation service.
type MonitorStats struct {
	// Drifts counts calibration perturbations applied.
	Drifts int `json:"drifts"`
	// SurrogateChecks counts drift events evaluated by the surrogate.
	SurrogateChecks int `json:"surrogate_checks"`
	// ExactChecks counts drift events that escalated to an exact re-score.
	ExactChecks int `json:"exact_checks"`
	// Recompiles counts full layout searches triggered by drift.
	Recompiles int `json:"recompiles"`
	// LastRatio is the most recent score-over-baseline ratio observed
	// (surrogate or exact, whichever decided).
	LastRatio float64 `json:"last_ratio"`
	// BaselineScore is the deployed placement's exact score at its compile.
	BaselineScore float64 `json:"baseline_score"`
}

// Decision is the outcome of one drift observation.
type Decision struct {
	// SurrogateRatio is predicted-score/baseline from the fitted model
	// (0 when the search had no model and the check went straight to exact).
	SurrogateRatio float64 `json:"surrogate_ratio"`
	// ExactChecked reports whether the full re-score ran.
	ExactChecked bool `json:"exact_checked"`
	// ExactRatio is exact-score/baseline when ExactChecked.
	ExactRatio float64 `json:"exact_ratio,omitempty"`
	// Recompiled reports whether a full layout search replaced the
	// deployed placement.
	Recompiled bool `json:"recompiled"`
	// Score is the current best estimate of the deployed placement's exact
	// score: the surrogate prediction on the cheap path, the exact score
	// otherwise (the new placement's after a recompile).
	Score float64 `json:"score"`
	// Region is the deployed physical region after the decision.
	Region []int `json:"region"`
}

// Monitor keeps one compiled placement honest against calibration drift:
// each Drift perturbs the calibration (device.Perturb), re-estimates the
// deployed placement's error — surrogate first, exact only past the gate —
// and recompiles only when the exact score has truly risen past the
// threshold. This is the amortization loop of the recompilation service: a
// fleet's calibration drifts continuously, full searches are expensive, and
// most drift events resolve in one dot product.
type Monitor struct {
	mu       sync.Mutex
	opts     MonitorOptions
	probe    *circuit.Circuit
	ia       []igEdge
	dev      *device.Device // current (drifted) calibration
	pl       *Placement
	rep      *SearchReport
	baseline float64
	stats    MonitorStats
}

// NewMonitor compiles the probe onto the backend and starts monitoring the
// chosen placement.
func NewMonitor(dev *device.Device, probe *circuit.Circuit, opts MonitorOptions) (*Monitor, error) {
	opts = opts.withDefaults()
	pl, rep, err := ChooseWith(dev, probe, opts.Search)
	if err != nil {
		return nil, err
	}
	if pl.Score <= 0 {
		return nil, fmt.Errorf("layout: monitor needs a probe with nonzero predicted error on %s", dev.Name)
	}
	return &Monitor{
		opts:     opts,
		probe:    probe,
		ia:       interactionEdges(interactionGraph(probe)),
		dev:      dev,
		pl:       pl,
		rep:      rep,
		baseline: pl.Score,
		stats:    MonitorStats{BaselineScore: pl.Score},
	}, nil
}

// Placement returns the currently deployed placement.
func (m *Monitor) Placement() *Placement {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pl
}

// Report returns the telemetry of the most recent search (initial compile
// or last recompile).
func (m *Monitor) Report() *SearchReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rep
}

// Threshold returns the configured recompile threshold.
func (m *Monitor) Threshold() float64 { return m.opts.Threshold }

// Stats returns a snapshot of the monitor counters.
func (m *Monitor) Stats() MonitorStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Drift perturbs the current calibration by device.Perturb(seed, drift) —
// compounding on top of earlier drifts, as a real calibration does — and
// decides whether the deployed placement survives it.
func (m *Monitor) Drift(seed int64, drift float64) (*Decision, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dev = m.dev.Perturb(seed, drift)
	m.stats.Drifts++
	return m.decideLocked()
}

// decideLocked runs the surrogate gate, the exact check, and the recompile
// escalation against the current calibration. Callers hold m.mu.
func (m *Monitor) decideLocked() (*Decision, error) {
	d := &Decision{Region: m.pl.Region}
	if model := m.rep.Model; model != nil {
		// Cheap tier: re-extract the region's features from the drifted
		// calibration and ask the model fitted at compile time. The
		// feature-to-score map is what the model learned; drift moves the
		// features, so the prediction tracks the drifted score.
		sctx := newStaticContext(m.dev, m.dev.CouplingGraph())
		pred := model.Predict(sctx.evaluate(m.pl.Phys, m.ia).feats)
		d.SurrogateRatio = pred / m.baseline
		m.stats.SurrogateChecks++
		if d.SurrogateRatio <= m.opts.Gate {
			d.Score = pred
			m.stats.LastRatio = d.SurrogateRatio
			return d, nil
		}
	}
	d.ExactChecked = true
	m.stats.ExactChecks++
	pl, err := Rescore(m.dev, m.probe, m.pl.Phys)
	if err != nil {
		return nil, fmt.Errorf("layout: drift re-score failed: %w", err)
	}
	d.ExactRatio = pl.Score / m.baseline
	m.stats.LastRatio = d.ExactRatio
	if d.ExactRatio <= m.opts.Threshold {
		d.Score = pl.Score
		return d, nil
	}
	npl, nrep, err := ChooseWith(m.dev, m.probe, m.opts.Search)
	if err != nil {
		return nil, fmt.Errorf("layout: drift recompilation failed: %w", err)
	}
	m.pl, m.rep, m.baseline = npl, nrep, npl.Score
	m.stats.BaselineScore = npl.Score
	m.stats.Recompiles++
	d.Recompiled = true
	d.Score = npl.Score
	d.Region = npl.Region
	return d, nil
}
