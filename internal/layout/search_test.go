package layout

import (
	"hash/fnv"
	"math/rand"
	"sort"
	"testing"

	"casq/internal/device"
)

// staticRank runs the static pass over the candidates and returns them in
// filter order (score, then lexicographic mapping).
func staticRank(dev *device.Device, cands [][]int) []scored {
	sctx := newStaticContext(dev, dev.CouplingGraph())
	pre := make([]scored, len(cands))
	for i, phys := range cands {
		pre[i] = sctx.evaluate(phys, nil)
	}
	sort.Slice(pre, func(i, j int) bool {
		if pre[i].score != pre[j].score {
			return pre[i].score < pre[j].score
		}
		return lexLess(pre[i].phys, pre[j].phys)
	})
	return pre
}

// orderFingerprint hashes the candidate sequence, mappings and scores both.
func orderFingerprint(t *testing.T, pre []scored) uint64 {
	t.Helper()
	h := fnv.New64a()
	for _, c := range pre {
		for _, p := range c.phys {
			h.Write([]byte{byte(p), byte(p >> 8)})
		}
		h.Write([]byte{0xff})
	}
	return h.Sum64()
}

// TestStaticRankDeterministic is the regression test for the old
// staticScore map-iteration bug: the 1e9/T2 terms were summed in map
// order, so equal-region candidates could flip ranks between runs. The
// new sorted-slice accumulation must produce one fingerprint regardless
// of input permutation or how often it runs.
func TestStaticRankDeterministic(t *testing.T) {
	dev, err := device.NewBackend("heavyhex29")
	if err != nil {
		t.Fatal(err)
	}
	g := dev.CouplingGraph()
	cands := enumeratePaths(g, 5, 512)
	if len(cands) < 32 {
		t.Fatalf("fixture too small: %d candidates", len(cands))
	}
	want := orderFingerprint(t, staticRank(dev, cands))
	for rep := 0; rep < 5; rep++ {
		if got := orderFingerprint(t, staticRank(dev, cands)); got != want {
			t.Fatalf("repeat %d: static rank fingerprint %x != %x", rep, got, want)
		}
	}
	// The ranking must also be independent of enumeration order: shuffle
	// the inputs and re-rank.
	rng := rand.New(rand.NewSource(9))
	shuffled := append([][]int(nil), cands...)
	for rep := 0; rep < 3; rep++ {
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		if got := orderFingerprint(t, staticRank(dev, shuffled)); got != want {
			t.Fatalf("shuffle %d: static rank fingerprint %x != %x", rep, got, want)
		}
	}
}

// TestStaticScoreMatchesLegacyFormula pins the rewritten static pass to
// the documented formula — internal ZZ at full weight, boundary-crossing
// ZZ at half, plus each member's 1e9/T2 — via an independent map-based
// evaluation (whose float error we bound rather than match bitwise).
func TestStaticScoreMatchesLegacyFormula(t *testing.T) {
	opts := device.DefaultOptions()
	opts.Seed = 11
	dev := device.NewLine("static7", 12, opts)
	sctx := newStaticContext(dev, dev.CouplingGraph())
	phys := []int{7, 4, 5, 6}
	got := sctx.evaluate(phys, nil).score

	used := map[int]bool{}
	for _, p := range phys {
		used[p] = true
	}
	want := 0.0
	for _, e := range dev.AllCrosstalkEdges() {
		switch {
		case used[e.A] && used[e.B]:
			want += dev.ZZ[e]
		case used[e.A] || used[e.B]:
			want += dev.ZZ[e] / 2
		}
	}
	for _, p := range phys {
		if t2 := dev.T2[p]; t2 > 0 {
			want += 1e9 / t2
		}
	}
	if rel := (got - want) / want; rel > 1e-12 || rel < -1e-12 {
		t.Fatalf("static score %.15g, legacy formula %.15g", got, want)
	}
}

// TestPrunedChooseNearExhaustive is the surrogate property test: on
// randomized backends the pruned search's chosen placement must score
// within a small factor of full exhaustive exact scoring, and disabling
// the surrogate with an uncapped TopK must reproduce the exhaustive
// argmin identically.
func TestPrunedChooseNearExhaustive(t *testing.T) {
	probe := PathProbe(4, 2)
	for seed := int64(1); seed <= 6; seed++ {
		opts := device.DefaultOptions()
		opts.Seed = seed
		dev := device.NewLine("prop", 40, opts)

		// Ground truth: every enumerated candidate, exact-scored.
		sopts := DefaultOptions().withDefaults()
		cands := enumerate(dev, dev.CouplingGraph(), interactionGraph(probe), sopts)
		var want *Placement
		for _, phys := range cands {
			pl, err := Rescore(dev, probe, phys)
			if err != nil {
				continue
			}
			if want == nil || pl.Score < want.Score ||
				(pl.Score == want.Score && lexLess(pl.Phys, want.Phys)) {
				want = pl
			}
		}
		if want == nil {
			t.Fatalf("seed %d: no candidate scored", seed)
		}

		exh := DefaultOptions()
		exh.NoSurrogate = true
		exh.TopK = len(cands)
		plExh, repExh, err := ChooseWith(dev, probe, exh)
		if err != nil {
			t.Fatal(err)
		}
		if !sameInts(plExh.Phys, want.Phys) || plExh.Score != want.Score {
			t.Fatalf("seed %d: exhaustive Choose %v (%.6g) != serial ground truth %v (%.6g)",
				seed, plExh.Phys, plExh.Score, want.Phys, want.Score)
		}
		if repExh.Pruned {
			t.Fatalf("seed %d: NoSurrogate search reported pruning", seed)
		}

		pl, rep, err := ChooseWith(dev, probe, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Pruned {
			t.Fatalf("seed %d: default search did not prune %d candidates", seed, rep.Enumerated)
		}
		if rep.ExactScored >= rep.Enumerated {
			t.Fatalf("seed %d: pruned search exact-scored everything (%d/%d)", seed, rep.ExactScored, rep.Enumerated)
		}
		if pl.Score < want.Score {
			t.Fatalf("seed %d: pruned score %.6g below exhaustive optimum %.6g — scoring is inconsistent",
				seed, pl.Score, want.Score)
		}
		if pl.Score > 1.10*want.Score {
			t.Errorf("seed %d: pruned score %.6g > 1.10x exhaustive optimum %.6g (ratio %.3f)",
				seed, pl.Score, want.Score, pl.Score/want.Score)
		}
	}
}

// TestChooseBitIdenticalAcrossWorkerCounts pins the acceptance guarantee:
// the pruned search's placement, score, and telemetry must be bit-equal
// at any worker-pool size.
func TestChooseBitIdenticalAcrossWorkerCounts(t *testing.T) {
	dev, err := device.NewBackend("heavyhex29")
	if err != nil {
		t.Fatal(err)
	}
	probe := PathProbe(6, 3)
	var ref *Placement
	var refRep *SearchReport
	for _, workers := range []int{1, 2, 3, 7, 16} {
		opts := DefaultOptions()
		opts.Workers = workers
		pl, rep, err := ChooseWith(dev, probe, opts)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref, refRep = pl, rep
			if !rep.Pruned {
				t.Fatalf("expected the %d-candidate search to prune", rep.Enumerated)
			}
			continue
		}
		if !sameInts(pl.Phys, ref.Phys) || pl.Score != ref.Score {
			t.Fatalf("workers=%d: placement %v (%.17g) != workers=1 %v (%.17g)",
				workers, pl.Phys, pl.Score, ref.Phys, ref.Score)
		}
		if rep.ExactScored != refRep.ExactScored || rep.Enumerated != refRep.Enumerated {
			t.Fatalf("workers=%d: telemetry %d/%d != %d/%d",
				workers, rep.ExactScored, rep.Enumerated, refRep.ExactScored, refRep.Enumerated)
		}
		if rep.BestPredicted != refRep.BestPredicted {
			t.Fatalf("workers=%d: surrogate prediction drifted: %v vs %v",
				workers, rep.BestPredicted, refRep.BestPredicted)
		}
	}
}

// TestDiverseOrderKeysDistinctRegions pins the allocation-lean region key:
// two orientations of one region must collide, different regions must not.
func TestDiverseOrderKeysDistinctRegions(t *testing.T) {
	opts := device.DefaultOptions()
	opts.Seed = 3
	dev := device.NewLine("key6", 6, opts)
	sctx := newStaticContext(dev, dev.CouplingGraph())
	a := sctx.evaluate([]int{0, 1, 2}, nil)
	b := sctx.evaluate([]int{2, 1, 0}, nil)
	c := sctx.evaluate([]int{1, 2, 3}, nil)
	if a.key != b.key {
		t.Errorf("orientations of one region got distinct keys %q vs %q", a.key, b.key)
	}
	if a.key == c.key {
		t.Errorf("distinct regions share key %q", a.key)
	}
	ordered := diverseOrder([]scored{a, b, c})
	if len(ordered) != 3 {
		t.Fatalf("diverse order dropped candidates: %d of 3", len(ordered))
	}
	if ordered[0].key != a.key || ordered[1].key != c.key {
		t.Errorf("round-robin should interleave regions first: got keys %q,%q,%q",
			ordered[0].key, ordered[1].key, ordered[2].key)
	}
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
