package layout

import (
	"casq/internal/circuit"
	"casq/internal/pass"
)

// selectPass embeds the circuit into ctx.Dev as a pipeline stage.
type selectPass struct{ opts Options }

// Select returns the layout-selection pass: it chooses the
// minimal-predicted-error embedding of the circuit into the pipeline's
// device and rewrites the circuit onto those physical qubits (the circuit's
// qubit count becomes the device's). Compose it first, before scheduling:
// downstream passes then see physical qubits only. Use Route after it if
// the interaction graph might not embed exactly.
func Select(opts Options) pass.Pass { return selectPass{opts} }

func (selectPass) Name() string { return "layout" }

func (p selectPass) Apply(ctx *pass.Context, c *circuit.Circuit) error {
	pl, err := Choose(ctx.Dev, c, p.opts)
	if err != nil {
		return err
	}
	out := Remap(c, pl.Phys, ctx.Dev.NQubits)
	*c = *out
	ctx.Report.Layout = pl.Phys
	ctx.Report.LayoutScore = pl.Score
	return nil
}

// routePass legalizes non-adjacent two-qubit gates as a pipeline stage.
type routePass struct{}

// Route returns the SWAP-routing pass: every two-qubit gate on a
// non-coupled pair gets a shortest-path SWAP chain inserted before it, and
// all later instructions are rewritten through the wire permutation. On a
// circuit whose gates are all adjacent it is the identity.
func Route() pass.Pass { return routePass{} }

func (routePass) Name() string { return "route" }

func (routePass) Apply(ctx *pass.Context, c *circuit.Circuit) error {
	routed, final, swaps, err := RouteCircuit(ctx.Dev, c)
	if err != nil {
		return err
	}
	*c = *routed
	ctx.Report.FinalLayout = final
	ctx.Report.Swaps += swaps
	return nil
}
