package layout

import (
	"fmt"

	"casq/internal/circuit"
	"casq/internal/device"
	"casq/internal/gates"
	"casq/internal/qgraph"
)

// RouteCircuit makes every two-qubit gate of c act on device-adjacent
// qubits: gates already on coupled pairs pass through untouched, and each
// non-adjacent gate is preceded by a chain of SWAPs walking one operand
// along a shortest coupling-graph path until the pair is adjacent. SWAPs
// permute circuit wires, so all later instructions (including measurements)
// are rewritten through the accumulated permutation.
//
// It returns the routed circuit (always on dev.NQubits qubits — SWAP chains
// may pass through qubits the input circuit never touched), the final
// wire -> qubit positions, and the number of SWAPs inserted. A circuit
// whose gates are all adjacent routes to itself with zero SWAPs and an
// identity position map.
//
// Inserted SWAP layers serialize against the layer that needed them, so a
// routed layer's gates are no longer simultaneous; that is the real
// schedule cost of a bad embedding, and the layout scorer sees it.
func RouteCircuit(dev *device.Device, c *circuit.Circuit) (*circuit.Circuit, []int, int, error) {
	if c.NQubits > dev.NQubits {
		return nil, nil, 0, fmt.Errorf("layout: circuit on %d qubits exceeds device %s (%d)", c.NQubits, dev.Name, dev.NQubits)
	}
	n := dev.NQubits
	perm := make([]int, n) // wire -> physical qubit
	inv := make([]int, n)  // physical qubit -> wire
	for i := range perm {
		perm[i] = i
		inv[i] = i
	}
	g := dev.CouplingGraph()
	out := circuit.New(n, c.NCBits)
	swaps := 0

	applySwap := func(pa, pb int) {
		l := out.AddLayer(circuit.TwoQubitLayer)
		l.Add(circuit.Instruction{Gate: gates.SWAP, Qubits: []int{pa, pb}, Tag: "route"})
		wa, wb := inv[pa], inv[pb]
		perm[wa], perm[wb] = pb, pa
		inv[pa], inv[pb] = wb, wa
		swaps++
	}

	for _, l := range c.Layers {
		cur := out.AddLayer(l.Kind)
		for _, in := range l.Instrs {
			mapped := in.Clone()
			for qi, q := range mapped.Qubits {
				mapped.Qubits[qi] = perm[q]
			}
			if gates.NumQubits(in.Gate) == 2 && !dev.HasEdge(mapped.Qubits[0], mapped.Qubits[1]) {
				path := shortestPath(g, mapped.Qubits[0], mapped.Qubits[1])
				if path == nil {
					return nil, nil, 0, fmt.Errorf("layout: qubits %d and %d are disconnected on %s",
						mapped.Qubits[0], mapped.Qubits[1], dev.Name)
				}
				// Walk the first operand down the path until adjacent,
				// splitting the layer around the SWAP chain.
				if len(cur.Instrs) == 0 {
					out.Layers = out.Layers[:len(out.Layers)-1]
				}
				for i := 0; i+2 < len(path); i++ {
					applySwap(path[i], path[i+1])
				}
				mapped = in.Clone()
				for qi, q := range mapped.Qubits {
					mapped.Qubits[qi] = perm[q]
				}
				cur = out.AddLayer(l.Kind)
			}
			cur.Add(mapped)
		}
		if len(cur.Instrs) == 0 && l.Kind != circuit.TwoQubitLayer {
			// Keep empty non-gate layers out entirely; empty 2q layers can
			// appear in synthetic inputs and are harmless either way.
			out.Layers = out.Layers[:len(out.Layers)-1]
		}
	}
	final := append([]int(nil), perm...)
	if err := out.Validate(); err != nil {
		return nil, nil, 0, fmt.Errorf("layout: routed circuit invalid: %w", err)
	}
	return out, final, swaps, nil
}

// shortestPath BFSes from a to b, returning the vertex path inclusive.
func shortestPath(g *qgraph.Graph, a, b int) []int {
	prev := make([]int, g.N)
	for i := range prev {
		prev[i] = -1
	}
	prev[a] = a
	queue := []int{a}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u == b {
			var rev []int
			for v := b; ; v = prev[v] {
				rev = append(rev, v)
				if v == a {
					break
				}
			}
			path := make([]int, len(rev))
			for i, v := range rev {
				path[len(rev)-1-i] = v
			}
			return path
		}
		for _, v := range g.Neighbors(u) {
			if prev[v] == -1 {
				prev[v] = u
				queue = append(queue, v)
			}
		}
	}
	return nil
}
