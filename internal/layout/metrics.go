package layout

import (
	"casq/internal/obs"
)

// Process-wide layout-search metrics on the obs default registry,
// exposed by `casq serve` on GET /metrics. The tier histograms split
// one ChooseWith call into its pipeline stages, so a slow search shows
// *which* tier — enumeration, static scoring, surrogate fit, or exact
// scoring — is paying for it.
var (
	mSearches = obs.Default().Counter("casq_layout_searches_total",
		"Layout searches run (ChooseWith calls).")
	mTierSeconds = obs.Default().HistogramVec("casq_layout_tier_seconds",
		"Wall time of each layout-search tier.", "tier", nil)
	mTierEnumerate = mTierSeconds.With("enumerate")
	mTierStatic    = mTierSeconds.With("static")
	mTierFit       = mTierSeconds.With("fit")
	mTierExact     = mTierSeconds.With("exact")
)
