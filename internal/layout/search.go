package layout

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"casq/internal/circuit"
	"casq/internal/device"
	"casq/internal/obs"
	"casq/internal/qgraph"
	"casq/internal/sched"
	"casq/internal/surrogate"
	"casq/internal/toggling"
)

// SearchReport is the telemetry of one ChooseWith call: how many candidates
// the enumeration produced, how many the surrogate let through to exact
// scoring, the fitted model, and the throughput the benchmarks track.
type SearchReport struct {
	// Backend is the parent device's name.
	Backend string `json:"backend"`
	// Qubits is the workload width.
	Qubits int `json:"qubits"`
	// Enumerated counts candidate mappings after enumeration.
	Enumerated int `json:"enumerated"`
	// ExactScored counts candidates that received the full
	// remap/route/schedule/integrate score.
	ExactScored int `json:"exact_scored"`
	// Pruned reports whether the surrogate pruned the candidate list.
	Pruned bool `json:"pruned"`
	// PruneRatio is the fraction of enumerated candidates the surrogate
	// spared from exact scoring (0 on the exhaustive path).
	PruneRatio float64 `json:"prune_ratio"`
	// Model is the ridge regression fitted during this search (nil when
	// pruning was off or fell back).
	Model *surrogate.Model `json:"-"`
	// BestExact is the chosen placement's exact score.
	BestExact float64 `json:"best_exact"`
	// BestPredicted is the surrogate's estimate for the chosen placement
	// (0 when no model was fitted).
	BestPredicted float64 `json:"best_predicted"`
	// Workers is the exact-scoring pool size used.
	Workers int `json:"workers"`
	// ElapsedMS is the wall-clock time of the whole search.
	ElapsedMS float64 `json:"elapsed_ms"`
	// CandidatesPerSec is Enumerated divided by the elapsed time — the
	// effective search throughput including surrogate leverage.
	CandidatesPerSec float64 `json:"candidates_per_sec"`
}

// igEdge is one logical interaction pair of the probe circuit.
type igEdge struct{ a, b int }

// interactionEdges lists the distinct logical pairs coupled by 2q gates.
func interactionEdges(ig *qgraph.Graph) []igEdge {
	var out []igEdge
	for a := 0; a < ig.N; a++ {
		for _, b := range ig.Neighbors(a) {
			if b > a {
				out = append(out, igEdge{a, b})
			}
		}
	}
	return out
}

// incidence is one crosstalk edge seen from one endpoint.
type incidence struct {
	other int
	zz    float64
	nnn   bool
}

// staticContext caches the per-qubit structures the static filter and the
// surrogate features read, so evaluating one candidate costs a single pass
// over its region in ascending qubit order. The fixed order is load-bearing:
// the old filter iterated a membership map, which made the 1/T2 float sum —
// and with it the static ranking feeding the TopK cut — run-dependent.
type staticContext struct {
	dev    *device.Device
	inc    [][]incidence
	invT1  []float64
	invT2  []float64
	dist   [][]int // coupling-graph hop distances
	member []bool
	region []int  // scratch: sorted copy of the candidate under evaluation
	keyBuf []byte // scratch: region key assembly
}

func newStaticContext(dev *device.Device, g *qgraph.Graph) *staticContext {
	s := &staticContext{
		dev:    dev,
		inc:    make([][]incidence, dev.NQubits),
		invT1:  make([]float64, dev.NQubits),
		invT2:  make([]float64, dev.NQubits),
		dist:   g.AllDistances(),
		member: make([]bool, dev.NQubits),
	}
	nn := len(dev.Edges)
	for i, e := range dev.AllCrosstalkEdges() {
		zz := dev.ZZ[e]
		if zz == 0 {
			continue
		}
		isNNN := i >= nn
		s.inc[e.A] = append(s.inc[e.A], incidence{e.B, zz, isNNN})
		s.inc[e.B] = append(s.inc[e.B], incidence{e.A, zz, isNNN})
	}
	for q := 0; q < dev.NQubits; q++ {
		if t1 := dev.T1[q]; t1 > 0 {
			s.invT1[q] = 1e9 / t1
		}
		if t2 := dev.T2[q]; t2 > 0 {
			s.invT2[q] = 1e9 / t2
		}
	}
	return s
}

// scored is one candidate mapping with its static filter score, surrogate
// features, boundary ZZ sum (reused by the exact score's boundary
// penalty), and sorted-region key (diversity bucketing).
type scored struct {
	phys       []int
	score      float64
	feats      surrogate.Features
	boundaryZZ float64
	key        string
}

// evaluate runs the static pass over one candidate: filter score (ZZ
// internal to the region, half weight for boundary-crossing edges, plus
// each member's 1e9/T2) and the surrogate feature vector, all accumulated
// over the sorted region so the result is bit-stable across runs.
func (s *staticContext) evaluate(phys []int, ia []igEdge) scored {
	s.region = append(s.region[:0], phys...)
	sort.Ints(s.region)
	for _, p := range s.region {
		s.member[p] = true
	}
	var internal, boundary, nnn, t1s, t2s float64
	for _, q := range s.region {
		for _, ie := range s.inc[q] {
			if s.member[ie.other] {
				if ie.other > q {
					internal += ie.zz
					if ie.nnn {
						nnn++
					}
				}
			} else {
				boundary += ie.zz
			}
		}
		t1s += s.invT1[q]
		t2s += s.invT2[q]
	}
	diameter := 0
	for i, q := range s.region {
		for _, r := range s.region[i+1:] {
			if d := s.dist[q][r]; d > diameter {
				diameter = d
			}
		}
	}
	swaps := 0.0
	for _, e := range ia {
		if d := s.dist[phys[e.a]][phys[e.b]]; d > 1 {
			swaps += float64(d - 1)
		}
	}
	s.keyBuf = s.keyBuf[:0]
	for _, p := range s.region {
		s.member[p] = false
		s.keyBuf = append(s.keyBuf, byte(p), byte(p>>8))
	}
	var f surrogate.Features
	f[surrogate.FeatInternalZZ] = internal
	f[surrogate.FeatBoundaryZZ] = boundary
	f[surrogate.FeatInvT1] = t1s
	f[surrogate.FeatInvT2] = t2s
	f[surrogate.FeatNNN] = nnn
	f[surrogate.FeatDiameter] = float64(diameter)
	f[surrogate.FeatSwapEst] = swaps
	return scored{
		phys:       phys,
		score:      internal + boundary/2 + t2s,
		feats:      f,
		boundaryZZ: boundary,
		key:        string(s.keyBuf),
	}
}

// diverseOrder reorders statically-sorted candidates round-robin across
// distinct physical regions. The static score is orientation-invariant (it
// only sees the qubit set), so a cycle region's 24 rotations/reflections
// sort contiguously and a plain prefix cut would let one region crowd
// every other out of exact scoring — the exact toggling-frame scorer would
// never see the regions where the static proxy is wrong (it ignores Stark,
// scheduling, and the circuit's idling pattern). One orientation per
// region first, then second orientations, and so on, preserving static
// order within each round. The same ordering feeds the surrogate's fit
// batch, so the model trains on distinct regions rather than one region's
// orientations.
func diverseOrder(pre []scored) []scored {
	byRegion := map[string][]scored{}
	var order []string // regions in first-seen (static score) order
	for _, c := range pre {
		if _, seen := byRegion[c.key]; !seen {
			order = append(order, c.key)
		}
		byRegion[c.key] = append(byRegion[c.key], c)
	}
	out := make([]scored, 0, len(pre))
	for round := 0; len(out) < len(pre); round++ {
		for _, rk := range order {
			if round < len(byRegion[rk]) {
				out = append(out, byRegion[rk][round])
			}
		}
	}
	return out
}

// scoreCandidates exact-scores the candidates on a worker pool. Results
// land at the candidate's own index; a candidate whose placement fails
// (un-routable region) stays nil. Each place call is a pure function of
// its candidate, so the index-aligned result — and every argmin taken over
// it in index order — is bit-identical at any worker count.
func scoreCandidates(dev *device.Device, c *circuit.Circuit, cands []scored, workers int) []*Placement {
	out := make([]*Placement, len(cands))
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers <= 1 {
		for i := range cands {
			out[i], _ = place(dev, c, cands[i].phys, cands[i].boundaryZZ)
		}
		return out
	}
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				if pl, err := place(dev, c, cands[i].phys, cands[i].boundaryZZ); err == nil {
					out[i] = pl
				}
			}
		}()
	}
	for i := range cands {
		ch <- i
	}
	close(ch)
	wg.Wait()
	return out
}

// argmin scans placements in index order, returning the lowest score with
// ties broken toward the lexicographically smallest mapping.
func argmin(best *Placement, pls []*Placement) *Placement {
	for _, pl := range pls {
		if pl == nil {
			continue
		}
		if best == nil || pl.Score < best.Score ||
			(pl.Score == best.Score && lexLess(pl.Phys, best.Phys)) {
			best = pl
		}
	}
	return best
}

// ChooseWith is Choose plus search telemetry. The search runs in three
// tiers: static filter + diversity ordering over every enumerated
// candidate, an online surrogate (fitted on the FitBatch exact scores from
// this same call) pruning the rest to the ExactTopK best-predicted, and
// parallel exact scoring of the survivors. The fit batch leads the
// diversity ordering, so the statically-best orientation of each leading
// region is always exact-scored regardless of what the surrogate thinks —
// the argmin is taken over guaranteed-exact scores only, and the model
// never decides more than which long-shot candidates get a second look.
func ChooseWith(dev *device.Device, c *circuit.Circuit, opts Options) (*Placement, *SearchReport, error) {
	opts = opts.withDefaults()
	start := time.Now()
	mSearches.Inc()
	// Tier timing: each observe closes the current tier and opens the
	// next, so the tier histograms partition the search wall time.
	tierStart := start
	observeTier := func(h *obs.Histogram) {
		now := time.Now()
		h.Observe(now.Sub(tierStart).Seconds())
		tierStart = now
	}
	n := c.NQubits
	if n > dev.NQubits {
		return nil, nil, fmt.Errorf("layout: circuit needs %d qubits, backend %s has %d", n, dev.Name, dev.NQubits)
	}
	ig := interactionGraph(c)
	g := dev.CouplingGraph()
	cands := enumerate(dev, g, ig, opts)
	observeTier(mTierEnumerate)
	if len(cands) == 0 {
		return nil, nil, fmt.Errorf("layout: no %d-qubit embedding found on %s", n, dev.Name)
	}

	ia := interactionEdges(ig)
	sctx := newStaticContext(dev, g)
	pre := make([]scored, len(cands))
	for i, phys := range cands {
		pre[i] = sctx.evaluate(phys, ia)
	}
	sort.Slice(pre, func(i, j int) bool {
		if pre[i].score != pre[j].score {
			return pre[i].score < pre[j].score
		}
		return lexLess(pre[i].phys, pre[j].phys)
	})
	order := diverseOrder(pre)
	observeTier(mTierStatic)

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rep := &SearchReport{
		Backend:    dev.Name,
		Qubits:     n,
		Enumerated: len(order),
		Workers:    workers,
	}

	var best *Placement
	prune := !opts.NoSurrogate &&
		opts.FitBatch >= surrogate.MinSamples &&
		len(order) > opts.FitBatch+opts.ExactTopK
	if prune {
		fitPls := scoreCandidates(dev, c, order[:opts.FitBatch], workers)
		rep.ExactScored += opts.FitBatch
		samples := make([]surrogate.Sample, 0, opts.FitBatch)
		for i, pl := range fitPls {
			if pl != nil {
				samples = append(samples, surrogate.Sample{X: order[i].feats, Y: pl.Score})
			}
		}
		model, err := surrogate.Fit(samples, 0)
		observeTier(mTierFit)
		if err == nil {
			rep.Model = model
			rest := order[opts.FitBatch:]
			type pred struct {
				idx int
				y   float64
			}
			preds := make([]pred, len(rest))
			for i := range rest {
				preds[i] = pred{i, model.Predict(rest[i].feats)}
			}
			sort.Slice(preds, func(i, j int) bool {
				if preds[i].y != preds[j].y {
					return preds[i].y < preds[j].y
				}
				return preds[i].idx < preds[j].idx
			})
			k := opts.ExactTopK
			if k > len(preds) {
				k = len(preds)
			}
			top := make([]scored, k)
			for i := 0; i < k; i++ {
				top[i] = rest[preds[i].idx]
			}
			topPls := scoreCandidates(dev, c, top, workers)
			rep.ExactScored += k
			best = argmin(argmin(nil, fitPls), topPls)
			observeTier(mTierExact)
			rep.Pruned = true
			rep.PruneRatio = 1 - float64(rep.ExactScored)/float64(rep.Enumerated)
		} else {
			// Too many finalists failed placement to constrain the ridge
			// system: fall back to the exhaustive TopK path below.
			prune = false
		}
	}
	if !prune {
		k := opts.TopK
		if k > len(order) {
			k = len(order)
		}
		best = argmin(nil, scoreCandidates(dev, c, order[:k], workers))
		observeTier(mTierExact)
		rep.ExactScored = k
		rep.Pruned = false
		rep.PruneRatio = 0
	}
	if best == nil {
		return nil, nil, fmt.Errorf("layout: no candidate embedding of %d qubits on %s survived scoring", n, dev.Name)
	}
	rep.BestExact = best.Score
	if rep.Model != nil {
		rep.BestPredicted = rep.Model.Predict(sctx.evaluate(best.Phys, ia).feats)
	}
	rep.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	if rep.ElapsedMS > 0 {
		rep.CandidatesPerSec = float64(rep.Enumerated) / (rep.ElapsedMS / 1e3)
	}
	return best, rep, nil
}

// place materializes one candidate: induced sub-device, remap, route,
// schedule, exact toggling-frame score plus the boundary penalty —
// 2*pi*nu*T of potentially uncompensated phase per boundary-crossing ZZ
// edge, the outside qubit idling for the whole circuit. boundaryZZ is the
// candidate's boundary-crossing ZZ sum (Hz), precomputed by the static
// pass.
func place(dev *device.Device, c *circuit.Circuit, phys []int, boundaryZZ float64) (*Placement, error) {
	sub, region, err := dev.Induced(dev.Name+"/sub", phys)
	if err != nil {
		return nil, err
	}
	subIdx := make(map[int]int, len(region))
	for i, q := range region {
		subIdx[q] = i
	}
	toSub := make([]int, len(phys))
	for l, p := range phys {
		toSub[l] = subIdx[p]
	}
	mc := Remap(c, toSub, sub.NQubits)
	routed, _, _, err := RouteCircuit(sub, mc)
	if err != nil {
		return nil, err
	}
	dur := sched.Schedule(routed, sub)
	score := toggling.NewScorer(sub).ScoreCircuit(routed) + 2*math.Pi*boundaryZZ*1e-9*dur
	return &Placement{
		Backend: dev.Name,
		Phys:    append([]int(nil), phys...),
		Region:  region,
		Sub:     sub,
		ToSub:   toSub,
		Score:   score,
	}, nil
}

// regionBoundaryZZ sums the ZZ rates crossing the region boundary of an
// arbitrary mapping — the one-off path for re-scoring a deployed placement
// outside a search (the search itself gets this from the static pass).
func regionBoundaryZZ(dev *device.Device, phys []int) float64 {
	member := make([]bool, dev.NQubits)
	for _, p := range phys {
		member[p] = true
	}
	s := 0.0
	for _, e := range dev.AllCrosstalkEdges() {
		if member[e.A] != member[e.B] {
			s += dev.ZZ[e]
		}
	}
	return s
}

// Rescore re-runs the exact score of a known mapping against (possibly
// drifted) calibration: the same remap/route/schedule/integrate path the
// search uses, without any search. The drift monitor calls this when the
// surrogate flags a placement as suspect.
func Rescore(dev *device.Device, c *circuit.Circuit, phys []int) (*Placement, error) {
	return place(dev, c, phys, regionBoundaryZZ(dev, phys))
}

// PathProbe builds the standard probe workload the recompilation service
// scores layouts against: an n-qubit brickwork line of the given depth
// (alternating even/odd nearest-neighbor ECR layers behind an initial 1q
// layer). Its interaction graph is the path 0-1-...-n-1, so layout search
// enumerates the backend's simple paths natively.
func PathProbe(n, depth int) *circuit.Circuit {
	c := circuit.New(n, 0)
	c.AddLayer(circuit.OneQubitLayer).H(0)
	for s := 0; s < depth; s++ {
		even := c.AddLayer(circuit.TwoQubitLayer)
		for q := 0; q+1 < n; q += 2 {
			even.ECR(q, q+1)
		}
		odd := c.AddLayer(circuit.TwoQubitLayer)
		for q := 1; q+1 < n; q += 2 {
			odd.ECR(q, q+1)
		}
	}
	return c
}
