package layout

import (
	"testing"

	"casq/internal/device"
)

// monitorFixture compiles a 4q path probe onto a 40q line — wide enough
// that the default search prunes and therefore carries a fitted surrogate
// into the monitor.
func monitorFixture(t *testing.T, mopts MonitorOptions) *Monitor {
	t.Helper()
	opts := device.DefaultOptions()
	opts.Seed = 13
	dev := device.NewLine("drift40", 40, opts)
	m, err := NewMonitor(dev, PathProbe(4, 2), mopts)
	if err != nil {
		t.Fatal(err)
	}
	if m.Report().Model == nil {
		t.Fatal("fixture search did not fit a surrogate; monitor would skip the cheap tier")
	}
	return m
}

// TestMonitorAbsorbsSmallDrift pins the cheap tier: a tiny calibration
// drift must resolve on the surrogate alone — no exact re-score, no
// recompilation, placement unchanged.
func TestMonitorAbsorbsSmallDrift(t *testing.T) {
	m := monitorFixture(t, MonitorOptions{})
	before := m.Placement()
	d, err := m.Drift(101, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	if d.ExactChecked || d.Recompiled {
		t.Fatalf("0.5%% drift escalated: exact=%v recompiled=%v (surrogate ratio %.4f)",
			d.ExactChecked, d.Recompiled, d.SurrogateRatio)
	}
	if d.SurrogateRatio <= 0 {
		t.Fatalf("surrogate tier did not run: ratio %v", d.SurrogateRatio)
	}
	if !sameInts(m.Placement().Phys, before.Phys) {
		t.Fatal("placement changed without a recompile")
	}
	st := m.Stats()
	if st.Drifts != 1 || st.SurrogateChecks != 1 || st.ExactChecks != 0 || st.Recompiles != 0 {
		t.Fatalf("stats %+v, want one surrogate-only drift", st)
	}
}

// TestMonitorEscalatesToExact pins the middle tier: with the surrogate
// gate forced to ~0, any drift pays for an exact re-score, but a generous
// threshold still avoids recompiling.
func TestMonitorEscalatesToExact(t *testing.T) {
	m := monitorFixture(t, MonitorOptions{Threshold: 1e9, Gate: 1e-9})
	d, err := m.Drift(7, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if !d.ExactChecked {
		t.Fatal("gate at ~0 must force the exact re-score")
	}
	if d.Recompiled {
		t.Fatalf("threshold 1e9 recompiled at exact ratio %.4f", d.ExactRatio)
	}
	if d.ExactRatio <= 0 {
		t.Fatalf("exact tier reported ratio %v", d.ExactRatio)
	}
	st := m.Stats()
	if st.ExactChecks != 1 || st.Recompiles != 0 {
		t.Fatalf("stats %+v, want one exact check and no recompiles", st)
	}
}

// TestMonitorRecompilesPastThreshold pins the escalation tier: with the
// threshold barely above 1 and the gate forced low, a real drift crosses
// it and the monitor replaces the placement with a fresh search against
// the drifted calibration, resetting the baseline.
func TestMonitorRecompilesPastThreshold(t *testing.T) {
	m := monitorFixture(t, MonitorOptions{Threshold: 1.0001, Gate: 1e-9})
	var recompiled *Decision
	for seed := int64(1); seed <= 20; seed++ {
		d, err := m.Drift(seed, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		if d.Recompiled {
			recompiled = d
			break
		}
	}
	if recompiled == nil {
		t.Fatal("20 rounds of 30% compounding drift never crossed a 1.0001 threshold")
	}
	st := m.Stats()
	if st.Recompiles < 1 {
		t.Fatalf("stats %+v, want at least one recompile", st)
	}
	// The new baseline must be the recompiled placement's score against
	// the drifted calibration, and the deployed placement must match the
	// decision's region.
	if st.BaselineScore != m.Placement().Score {
		t.Fatalf("baseline %.6g != deployed score %.6g", st.BaselineScore, m.Placement().Score)
	}
	if !sameInts(recompiled.Region, m.Placement().Region) {
		t.Fatalf("decision region %v != deployed region %v", recompiled.Region, m.Placement().Region)
	}
	// The recompiled placement's score must agree with an independent
	// re-score of the same mapping on the monitor's current calibration.
	check, err := Rescore(m.dev, m.probe, m.Placement().Phys)
	if err != nil {
		t.Fatal(err)
	}
	if check.Score != m.Placement().Score {
		t.Fatalf("deployed score %.17g != independent re-score %.17g", m.Placement().Score, check.Score)
	}
}

// TestMonitorDriftDeterministic pins that the whole drift loop is a pure
// function of the seed sequence: two monitors fed identical drifts land on
// identical placements, scores, and counters.
func TestMonitorDriftDeterministic(t *testing.T) {
	a := monitorFixture(t, MonitorOptions{Threshold: 1.01})
	b := monitorFixture(t, MonitorOptions{Threshold: 1.01})
	for seed := int64(1); seed <= 6; seed++ {
		da, err := a.Drift(seed, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		db, err := b.Drift(seed, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		if da.Score != db.Score || da.Recompiled != db.Recompiled || da.SurrogateRatio != db.SurrogateRatio {
			t.Fatalf("seed %d: decisions diverged: %+v vs %+v", seed, da, db)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	if !sameInts(a.Placement().Phys, b.Placement().Phys) {
		t.Fatalf("placements diverged: %v vs %v", a.Placement().Phys, b.Placement().Phys)
	}
}
