package charact

import (
	"math"
	"testing"

	"casq/internal/caec"
	"casq/internal/device"
	"casq/internal/linalg"
	"casq/internal/models"
	"casq/internal/sched"
	"casq/internal/sim"
)

func calmDevice(n int) *device.Device {
	o := device.DefaultOptions()
	o.DeltaMax = 0
	o.QuasistaticSigma = 0
	o.Err1Q, o.Err2Q, o.ReadoutErr = 0, 0, 0
	o.T1Min, o.T1Max, o.T2Factor = 1e9, 1e9, 1.5
	return device.NewLine("charact", n, o)
}

func TestEstimateZZRecoverstruth(t *testing.T) {
	dev := calmDevice(3)
	opts := DefaultOptions()
	opts.Shots = 2 // deterministic coherent evolution
	for _, e := range dev.Edges {
		nu, err := EstimateZZ(dev, e, opts)
		if err != nil {
			t.Fatal(err)
		}
		truth := dev.ZZ[e]
		if rel := RelativeError(nu, truth); rel > 0.08 {
			t.Errorf("edge %v: estimated %.1f kHz vs true %.1f kHz (rel %.3f)",
				e, nu/1e3, truth/1e3, rel)
		}
	}
}

func TestEstimateStark(t *testing.T) {
	dev := calmDevice(4)
	opts := DefaultOptions()
	opts.Shots = 2
	// Spectator 3 next to the control 2 of ECR(2,1).
	zz := dev.ZZ[device.NewEdge(2, 3)]
	st, err := EstimateStark(dev, 2, 1, 3, zz, opts)
	if err != nil {
		t.Fatal(err)
	}
	truth := dev.Stark[device.Directed{Src: 2, Dst: 3}]
	if math.Abs(st-truth) > 6e3 {
		t.Errorf("Stark estimate %.1f kHz vs true %.1f kHz", st/1e3, truth/1e3)
	}
}

func TestCharacterizeZZAllEdges(t *testing.T) {
	dev := calmDevice(3)
	opts := DefaultOptions()
	opts.Shots = 2
	learned, err := CharacterizeZZ(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(learned.ZZ) != len(dev.Edges) {
		t.Fatalf("learned %d edges, want %d", len(learned.ZZ), len(dev.Edges))
	}
}

func TestCompileFromLearnedCalibration(t *testing.T) {
	// The closed loop: characterize the device, hand CA-EC the *learned*
	// rates, and verify the compensation still suppresses the coherent
	// error almost as well as with perfect knowledge.
	dev := calmDevice(4)
	opts := DefaultOptions()
	opts.Shots = 2
	learned, err := CharacterizeZZ(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	believed := learned.ApplyTo(dev)
	believed.Stark = dev.Stark // reuse true Stark; ZZ is the learned part

	base := models.BuildFloquetIsing(4, 3)
	sched.Schedule(base, believed)
	ecOpts := caec.DefaultOptions()
	ecOpts.MaterializeMin = 0
	compiled, _, err := caec.Apply(base, believed, ecOpts)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate against the TRUE device.
	coh := sim.CoherentOnly(1)
	coh.Workers = 1
	got, err := sim.New(dev, coh).FinalState(compiled)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.New(dev, sim.Ideal()).FinalState(base)
	if err != nil {
		t.Fatal(err)
	}
	bareState, err := sim.New(dev, coh).FinalState(base)
	if err != nil {
		t.Fatal(err)
	}
	fBare := linalg.FidelityPure(bareState, want)
	fFixed := linalg.FidelityPure(got, want)
	if fFixed < 0.99 {
		t.Errorf("CA-EC from learned calibration: fidelity %.4f (bare %.4f)", fFixed, fBare)
	}
	if fFixed < fBare {
		t.Errorf("learned compensation made things worse: %.4f < %.4f", fFixed, fBare)
	}
}
