// Package charact implements the noise characterization the paper's
// compiler consumes (Sec. II D: "the magnitude of coherent errors used for
// EC ... can be inferred from the reported backend information"): it treats
// the device as a black box, runs Ramsey experiments through the simulator,
// and estimates the always-on ZZ rate of every edge and the Stark shift on
// gate spectators from the observed precession frequencies. The learned
// calibration can then be fed to CA-EC in place of the true one, closing
// the characterize -> compile loop.
package charact

import (
	"fmt"
	"math"

	"casq/internal/circuit"
	"casq/internal/device"
	"casq/internal/fitting"
	"casq/internal/gates"
	"casq/internal/sched"
	"casq/internal/sim"
)

// Options configure the characterization experiments.
type Options struct {
	Tau    float64 // idle interval per step (ns)
	Steps  int     // number of Ramsey depths
	Shots  int     // trajectories per point
	Seed   int64
	FreqLo float64 // scan window (Hz)
	FreqHi float64
	Grid   int
}

// DefaultOptions suit rates in the 10-200 kHz range.
func DefaultOptions() Options {
	return Options{Tau: 400, Steps: 28, Shots: 24, Seed: 3, FreqLo: 5e3, FreqHi: 260e3, Grid: 2400}
}

// ramseyPhaseSignal runs the circuit family build(d) for d = 0..Steps-1 and
// returns the complex Ramsey signal <X> - i <Y> of the probe versus time,
// where times[d] is the probe's accumulated idle time.
func ramseyPhaseSignal(dev *device.Device, probe int, opts Options,
	build func(d int) *circuit.Circuit, stepTime float64) (ts, xs, ys []float64, err error) {
	for d := 0; d < opts.Steps; d++ {
		c := build(d)
		sched.Schedule(c, dev)
		cfg := sim.DefaultConfig()
		cfg.Shots = opts.Shots
		cfg.Seed = opts.Seed + int64(d)
		cfg.EnableReadoutErr = false
		r := sim.New(dev, cfg)
		vals, e := r.Expectations(c, []sim.ObsSpec{{probe: 'X'}, {probe: 'Y'}})
		if e != nil {
			return nil, nil, nil, e
		}
		ts = append(ts, float64(d)*stepTime*1e-9)
		// Use the conjugate signal <X> - i <Y>: the spectator errors in this
		// model precess with negative chirality (phi = -omega t), so the
		// conjugate puts their peak at positive frequency.
		xs = append(xs, vals[0])
		ys = append(ys, -vals[1])
	}
	return ts, xs, ys, nil
}

// peakFrequency locates the dominant precession frequency of the complex
// signal x - i y over the scan window (sign-insensitive).
func peakFrequency(ts, xs, ys []float64, opts Options) float64 {
	best, power := 0.0, -1.0
	n := opts.Grid
	for k := 0; k < n; k++ {
		f := opts.FreqLo + (opts.FreqHi-opts.FreqLo)*float64(k)/float64(n-1)
		var cr, ci float64
		for i := range ts {
			ph := 2 * math.Pi * f * ts[i]
			cr += xs[i]*math.Cos(ph) + ys[i]*math.Sin(ph)
			ci += ys[i]*math.Cos(ph) - xs[i]*math.Sin(ph)
		}
		if p := cr*cr + ci*ci; p > power {
			power = p
			best = f
		}
	}
	return best
}

// EstimateZZ measures the always-on ZZ rate of one edge: the probe is
// prepared in |+> with its partner excited to |1>, so the pair Hamiltonian
// H11 (paper Eq. 1) makes the probe precess at 2*nu relative to the
// partner-in-|0> case; we measure both and take half the frequency
// difference. Returns the estimated rate in Hz.
func EstimateZZ(dev *device.Device, e device.Edge, opts Options) (float64, error) {
	probe, partner := e.A, e.B
	build := func(excited bool) func(int) *circuit.Circuit {
		return func(d int) *circuit.Circuit {
			c := circuit.New(dev.NQubits, 0)
			prep := c.AddLayer(circuit.OneQubitLayer)
			prep.H(probe)
			if excited {
				prep.X(partner)
			}
			for i := 0; i < d; i++ {
				l := c.AddLayer(circuit.TwoQubitLayer)
				l.Add(circuit.Instruction{Gate: gates.Delay, Qubits: []int{probe}, Params: []float64{opts.Tau}})
			}
			return c
		}
	}
	freq := map[bool]float64{}
	for _, exc := range []bool{false, true} {
		ts, xs, ys, err := ramseyPhaseSignal(dev, probe, opts, build(exc), opts.Tau)
		if err != nil {
			return 0, err
		}
		freq[exc] = peakFrequency(ts, xs, ys, opts)
	}
	// With the partner in |0>, the probe's Z terms from this edge cancel
	// (H11 gives zero net precession); in |1> the probe precesses at 2 nu.
	// Other edges contribute to both branches identically and drop out when
	// the other neighbors stay in |0>.
	nu := math.Abs(freq[true]-freq[false]) / 2
	if freq[false] < opts.FreqLo*1.5 {
		// No background precession detected: the excited branch is 2 nu
		// outright.
		nu = freq[true] / 2
	}
	return nu, nil
}

// EstimateStark measures the Stark shift on a spectator while gates drive
// its neighbor: the spectator of repeated ECR(src, tgt) gates precesses at
// nu(src, spec) + stark(src -> spec) (paper Fig. 4a); subtracting the
// separately estimated ZZ rate isolates the Stark term.
func EstimateStark(dev *device.Device, src, tgt, spec int, knownZZ float64, opts Options) (float64, error) {
	build := func(d int) *circuit.Circuit {
		c := circuit.New(dev.NQubits, 0)
		c.AddLayer(circuit.OneQubitLayer).H(spec)
		for i := 0; i < d; i++ {
			c.AddLayer(circuit.TwoQubitLayer).ECR(src, tgt)
		}
		return c
	}
	ts, xs, ys, err := ramseyPhaseSignal(dev, spec, opts, build, dev.DurECR)
	if err != nil {
		return 0, err
	}
	peak := peakFrequency(ts, xs, ys, opts)
	// The spectator precesses at nu - stark (conjugate-signal convention),
	// so the Stark magnitude is the displacement below the always-on line.
	return knownZZ - peak, nil
}

// Learned is a characterized calibration set.
type Learned struct {
	ZZ    map[device.Edge]float64
	Stark map[device.Directed]float64
}

// CharacterizeZZ estimates every NN and NNN edge of the device.
func CharacterizeZZ(dev *device.Device, opts Options) (Learned, error) {
	out := Learned{ZZ: map[device.Edge]float64{}, Stark: map[device.Directed]float64{}}
	for _, e := range dev.AllCrosstalkEdges() {
		nu, err := EstimateZZ(dev, e, opts)
		if err != nil {
			return out, fmt.Errorf("charact: edge %v: %w", e, err)
		}
		out.ZZ[e] = nu
	}
	return out, nil
}

// ApplyTo returns a copy of the device whose calibration tables are
// replaced by the learned values (missing entries keep zero — an honest
// "we did not characterize this" statement). The compiler then works from
// measured data only.
func (l Learned) ApplyTo(dev *device.Device) *device.Device {
	out := *dev
	out.ZZ = map[device.Edge]float64{}
	for e, v := range l.ZZ {
		out.ZZ[e] = v
	}
	if len(l.Stark) > 0 {
		out.Stark = map[device.Directed]float64{}
		for d, v := range l.Stark {
			out.Stark[d] = v
		}
	}
	return &out
}

// RelativeError is a convenience for validation: |est - truth| / truth.
func RelativeError(est, truth float64) float64 {
	if truth == 0 {
		return math.Abs(est)
	}
	return math.Abs(est-truth) / math.Abs(truth)
}

// Decay fits the envelope decay of a Ramsey fidelity curve — used to
// separate coherent oscillation from incoherent loss when reporting
// characterization quality.
func Decay(ds, fs []float64) (amp, lambda float64, err error) {
	return fitting.ExpDecay(ds, fs)
}
