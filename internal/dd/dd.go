// Package dd implements the dynamical-decoupling insertion passes: the
// context-unaware baselines (aligned X2 and index-staggered) and the paper's
// Context-Aware DD (Algorithm 1). CA-DD collects jointly-idle windows from
// the schedule, colors them on the device crosstalk graph — with gate
// controls pinned to the echo color and rotary targets unconstrained — and
// dresses each idle qubit with the Walsh–Hadamard sequence of its color, so
// that single-qubit Z and every pairwise ZZ (including NNN collision terms)
// average to zero within the window.
package dd

import (
	"fmt"
	"sort"

	"casq/internal/circuit"
	"casq/internal/device"
	"casq/internal/gates"
	"casq/internal/qgraph"
	"casq/internal/sched"
	"casq/internal/walsh"
)

// Strategy selects the DD insertion policy.
type Strategy int

// Available strategies.
const (
	None Strategy = iota
	// Aligned applies the same X2 sequence (pulses at T/2 and T) to every
	// idle qubit — the conventional context-unaware baseline of Fig. 3c.
	Aligned
	// Staggered alternates two sequences by qubit index parity, ignoring
	// the circuit context (gate echoes, crosstalk graph).
	Staggered
	// ContextAware is Algorithm 1.
	ContextAware
)

func (s Strategy) String() string {
	switch s {
	case None:
		return "none"
	case Aligned:
		return "aligned"
	case Staggered:
		return "staggered"
	case ContextAware:
		return "ca-dd"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Options configure the pass.
type Options struct {
	Strategy    Strategy
	MinDuration float64 // ignore idle windows shorter than this (ns)
	MaxColors   int     // palette size; 0 = 8
}

// DefaultOptions uses the context-aware strategy with a 100 ns threshold.
func DefaultOptions() Options {
	return Options{Strategy: ContextAware, MinDuration: 100, MaxColors: 8}
}

// WindowReport records the coloring decision for one window (used by tests,
// the CLI visualization, and the Fig. 5 experiment).
type WindowReport struct {
	Window sched.Window
	Colors map[int]int // qubit -> color (palette index)
	Rows   map[int]int // qubit -> Walsh row
	Pulses int
}

// Report summarizes a DD pass.
type Report struct {
	Windows []WindowReport
	Total   int // total pulses inserted
}

// Insert decorates a scheduled circuit in place with DD pulses according to
// the options, returning a report. The circuit must have been scheduled
// (layer Start/Duration set). Pulses are inserted as XDD instructions tagged
// "dd" carrying their intra-layer time offsets.
func Insert(c *circuit.Circuit, dev *device.Device, opts Options) (Report, error) {
	if opts.Strategy == None {
		return Report{}, nil
	}
	if opts.MaxColors <= 0 {
		opts.MaxColors = 8
	}
	g := dev.CrosstalkGraph()
	windows := sched.CollectJointDelays(c, g, opts.MinDuration)
	windows = splitAtGateLayers(c, windows, opts.MinDuration)
	palette := walsh.Palette(opts.MaxColors)
	// All sequences must share one bin grid for mutual orthogonality.
	nb := 4
	for _, row := range palette {
		if mb := walsh.MinBins(row); mb > nb {
			nb = mb
		}
	}

	rep := Report{}
	for _, w := range windows {
		colors, err := colorWindow(c, dev, g, w, opts)
		if err != nil {
			return rep, err
		}
		wr := WindowReport{Window: w, Colors: colors, Rows: map[int]int{}}
		for _, q := range w.Qubits {
			col, ok := colors[q]
			if !ok || col <= 0 {
				continue
			}
			if col >= len(palette) {
				return rep, fmt.Errorf("dd: window at t=%.0f needs color %d beyond palette of %d", w.Start, col, len(palette))
			}
			row := palette[col]
			wr.Rows[q] = row
			times := walsh.PulseTimes(row, w.Duration(), nb)
			for _, t := range times {
				if err := insertPulse(c, q, w.Start+t); err != nil {
					return rep, err
				}
				wr.Pulses++
			}
		}
		rep.Total += wr.Pulses
		rep.Windows = append(rep.Windows, wr)
	}
	return rep, nil
}

// colorWindow assigns a palette color to every window qubit.
func colorWindow(c *circuit.Circuit, dev *device.Device, g *qgraph.Graph, w sched.Window, opts Options) (map[int]int, error) {
	colors := map[int]int{}
	switch opts.Strategy {
	case Aligned:
		for _, q := range w.Qubits {
			colors[q] = 1
		}
		return colors, nil
	case Staggered:
		for _, q := range w.Qubits {
			colors[q] = 1 + q%2
		}
		return colors, nil
	}
	// Context-aware: pin concurrent ECR controls to the echo color (1) and
	// leave rotary targets unconstrained, exactly as Algorithm 1's
	// ColorGraph seeds the greedy coloring.
	fixed := qgraph.Coloring{}
	rotary := map[int]bool{}
	for _, gate := range concurrentGates(c, w) {
		fixed[gate.Qubits[0]] = 1
		rotary[gate.Qubits[1]] = true
	}
	forbidden := map[int][]int{}
	for _, q := range w.Qubits {
		// Idle qubits need Z suppression: color 0 (no pulses) is reserved
		// for rotary-protected qubits only ("blue" in the paper).
		forbidden[q] = []int{0}
	}
	order := qgraph.DegreeOrder(g, w.Qubits)
	coloring := qgraph.GreedyColor(g, order, fixed, forbidden)
	for _, q := range w.Qubits {
		if rotary[q] {
			continue
		}
		colors[q] = coloring[q]
	}
	// Validate only constraints the pass controls: every idle window qubit
	// must differ from all its colored neighbors. Two adjacent *gate
	// controls* share the echo color by physical necessity — that is
	// case IV, which DD cannot fix (the pass leaves it for CA-EC).
	for _, q := range w.Qubits {
		if rotary[q] {
			continue
		}
		cq, ok := coloring[q]
		if !ok {
			continue
		}
		for _, nb := range g.Neighbors(q) {
			if cn, ok := coloring[nb]; ok && cn == cq {
				return nil, fmt.Errorf("dd: idle qubit %d shares color %d with neighbor %d", q, cq, nb)
			}
		}
	}
	return colors, nil
}

// concurrentGates returns the two-qubit gates whose layers overlap the
// window in time.
func concurrentGates(c *circuit.Circuit, w sched.Window) []circuit.Instruction {
	var out []circuit.Instruction
	for li := range c.Layers {
		l := &c.Layers[li]
		if l.Start >= w.End || l.Start+l.Duration <= w.Start {
			continue
		}
		out = append(out, l.TwoQubitGates()...)
	}
	return out
}

// splitAtGateLayers cuts every window at the boundaries of layers that
// contain two-qubit gates, so that DD sequences stay aligned with the echo
// structure of each gate layer (the per-layer coloring of Fig. 5). Stretches
// of gate-free layers remain merged into long memory-style windows.
func splitAtGateLayers(c *circuit.Circuit, windows []sched.Window, minDur float64) []sched.Window {
	var cuts []float64
	for li := range c.Layers {
		l := &c.Layers[li]
		if len(l.TwoQubitGates()) > 0 && l.Duration > 0 {
			cuts = append(cuts, l.Start, l.Start+l.Duration)
		}
	}
	sort.Float64s(cuts)
	var out []sched.Window
	for _, w := range windows {
		pieces := []sched.Window{w}
		for _, cut := range cuts {
			var next []sched.Window
			for _, p := range pieces {
				if cut > p.Start && cut < p.End {
					next = append(next,
						sched.Window{Qubits: p.Qubits, Start: p.Start, End: cut},
						sched.Window{Qubits: p.Qubits, Start: cut, End: p.End})
				} else {
					next = append(next, p)
				}
			}
			pieces = next
		}
		for _, p := range pieces {
			if p.Duration() >= minDur {
				out = append(out, p)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].End < out[j].End
	})
	return out
}

// insertPulse adds an XDD instruction on qubit q at absolute time t,
// locating the layer containing t (boundary pulses go to the earlier
// layer).
func insertPulse(c *circuit.Circuit, q int, t float64) error {
	li := -1
	for i := range c.Layers {
		l := &c.Layers[i]
		if l.Duration <= 0 {
			continue
		}
		if t > l.Start && t <= l.Start+l.Duration {
			li = i
			break
		}
		if t == l.Start && t == 0 {
			li = i
			break
		}
	}
	if li < 0 {
		return fmt.Errorf("dd: no layer contains pulse time %.1f", t)
	}
	l := &c.Layers[li]
	l.Add(circuit.Instruction{
		Gate:   gates.XDD,
		Qubits: []int{q},
		Tag:    "dd",
		Time:   t - l.Start,
	})
	return nil
}
