package dd

import (
	"testing"

	"casq/internal/circuit"
	"casq/internal/device"
	"casq/internal/gates"
	"casq/internal/sched"
	"casq/internal/toggling"
)

func idleCircuit(n, layers int, tau float64) *circuit.Circuit {
	c := circuit.New(n, 0)
	prep := c.AddLayer(circuit.OneQubitLayer)
	for q := 0; q < n; q++ {
		prep.H(q)
	}
	for i := 0; i < layers; i++ {
		l := c.AddLayer(circuit.TwoQubitLayer)
		for q := 0; q < n; q++ {
			l.Add(circuit.Instruction{Gate: gates.Delay, Qubits: []int{q}, Params: []float64{tau}})
		}
	}
	return c
}

func TestInsertNoneDoesNothing(t *testing.T) {
	dev := device.NewLine("d", 2, device.DefaultOptions())
	c := idleCircuit(2, 2, 500)
	sched.Schedule(c, dev)
	rep, err := Insert(c, dev, Options{Strategy: None})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 0 || c.CountGates(gates.XDD) != 0 {
		t.Error("None strategy inserted pulses")
	}
}

func TestAlignedInsertsSamePattern(t *testing.T) {
	dev := device.NewLine("d", 2, device.DefaultOptions())
	c := idleCircuit(2, 2, 500)
	sched.Schedule(c, dev)
	rep, err := Insert(c, dev, Options{Strategy: Aligned, MinDuration: 100, MaxColors: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 4 { // 2 qubits x (T/2, T)
		t.Errorf("aligned pulses = %d, want 4 (report %+v)", rep.Total, rep.Windows)
	}
	for _, w := range rep.Windows {
		for _, col := range w.Colors {
			if col != 1 {
				t.Error("aligned must use color 1 everywhere")
			}
		}
	}
}

func TestContextAwareColoringValid(t *testing.T) {
	dev := device.NewLine("d", 4, device.DefaultOptions())
	c := idleCircuit(4, 3, 500)
	sched.Schedule(c, dev)
	rep, err := Insert(c, dev, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	g := dev.CrosstalkGraph()
	for _, w := range rep.Windows {
		for q, cq := range w.Colors {
			if cq == 0 {
				t.Errorf("idle qubit %d received the no-pulse color", q)
			}
			for _, nb := range g.Neighbors(q) {
				if cn, ok := w.Colors[nb]; ok && cn == cq {
					t.Errorf("adjacent idle qubits %d,%d share color %d", q, nb, cq)
				}
			}
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestContextAwareSuppressesAllPairs(t *testing.T) {
	// After CA-DD, the toggling integrals of every idle window layer must
	// vanish: no surviving Z or ZZ anywhere (coherent model).
	dev := device.NewLine("d", 4, device.DefaultOptions())
	c := idleCircuit(4, 1, 2000)
	sched.Schedule(c, dev)
	if _, err := Insert(c, dev, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	for li := range c.Layers {
		l := &c.Layers[li]
		if l.Kind != circuit.TwoQubitLayer {
			continue
		}
		m := toggling.BuildLayerModel(l, dev)
		res := toggling.Integrate(m, dev, true)
		for q, phi := range res.PhiZ {
			if phi > 1e-9 || phi < -1e-9 {
				t.Errorf("surviving Z on q%d: %v", q, phi)
			}
		}
		for e, phi := range res.PhiZZ {
			if phi > 1e-9 || phi < -1e-9 {
				t.Errorf("surviving ZZ on %v: %v", e, phi)
			}
		}
	}
}

func TestControlPinnedToEchoColor(t *testing.T) {
	// A spectator next to an ECR control must not get color 1 (the echo
	// pattern): Algorithm 1's first constraint.
	dev := device.NewLine("d", 4, device.DefaultOptions())
	c := circuit.New(4, 0)
	c.AddLayer(circuit.OneQubitLayer).H(3)
	c.AddLayer(circuit.TwoQubitLayer).ECR(2, 1) // control 2, spectator 3
	sched.Schedule(c, dev)
	rep, err := Insert(c, dev, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, w := range rep.Windows {
		if col, ok := w.Colors[3]; ok {
			found = true
			if col == 1 {
				t.Error("control spectator shares the echo color")
			}
		}
	}
	if !found {
		t.Fatalf("no window colored qubit 3: %+v", rep.Windows)
	}
}

func TestTargetSpectatorUnconstrained(t *testing.T) {
	// The rotary-protected target imposes no constraint, so its idle
	// neighbor may take the lowest pulsed color.
	dev := device.NewLine("d", 4, device.DefaultOptions())
	c := circuit.New(4, 0)
	c.AddLayer(circuit.OneQubitLayer).H(0)
	c.AddLayer(circuit.TwoQubitLayer).ECR(2, 1) // target 1, spectator 0
	sched.Schedule(c, dev)
	rep, err := Insert(c, dev, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range rep.Windows {
		if col, ok := w.Colors[0]; ok && col != 2 {
			// color 1 is taken by the adjacent... qubit 0 neighbors only
			// qubit 1 (the target, uncolored), so greedy gives the lowest
			// pulsed color compatible: color 1 is free here? No: the gate
			// control 2 is pinned to 1 but not adjacent to 0, so color 1 is
			// allowed.
			if col != 1 {
				t.Errorf("target spectator color %d, expected lowest available", col)
			}
		}
	}
}

func TestNNNEdgeForcesThirdColor(t *testing.T) {
	// Three jointly idle qubits on a chain with an NNN edge (0,2) need three
	// distinct pulsed colors (paper Fig. 4c / Fig. 5).
	devOpts := device.DefaultOptions()
	edges := []device.Directed{{Src: 0, Dst: 1}, {Src: 2, Dst: 1}}
	nnn := []device.Edge{device.NewEdge(0, 2)}
	dev := device.NewSynthetic("nnn", 3, edges, nnn, devOpts)

	c := idleCircuit(3, 1, 2000)
	sched.Schedule(c, dev)
	rep, err := Insert(c, dev, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range rep.Windows {
		if len(w.Colors) == 3 {
			seen := map[int]bool{}
			for _, col := range w.Colors {
				seen[col] = true
			}
			if len(seen) != 3 {
				t.Errorf("NNN triple should use 3 distinct colors: %v", w.Colors)
			}
		}
	}
}

func TestStrategyString(t *testing.T) {
	if None.String() != "none" || ContextAware.String() != "ca-dd" {
		t.Error("strategy names wrong")
	}
}
