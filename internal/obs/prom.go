package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a metric name, its label set,
// and the value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns the value of label key ("" when absent).
func (s Sample) Label(key string) string { return s.Labels[key] }

// ParseProm parses Prometheus text exposition format into samples. It
// is strict about the subset WritePrometheus emits — `name{k="v",...}
// value` data lines, # HELP / # TYPE comments — and errors on anything
// else, so tests double as a format validity check and loadgen can
// recompute server-side quantiles from a /metrics scrape.
func ParseProm(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# HELP ") && !strings.HasPrefix(line, "# TYPE ") {
				return nil, fmt.Errorf("line %d: unknown comment %q", lineno, line)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineno, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return s, fmt.Errorf("unbalanced braces in %q", line)
		}
		s.Name = line[:i]
		if err := parseLabels(line[i+1:j], s.Labels); err != nil {
			return s, err
		}
		rest = strings.TrimSpace(line[j+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return s, fmt.Errorf("want `name value`, got %q", line)
		}
		s.Name = fields[0]
		rest = fields[1]
	}
	if s.Name == "" || !validMetricName(s.Name) {
		return s, fmt.Errorf("bad metric name in %q", line)
	}
	v, err := parseValue(rest)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

func parseLabels(body string, into map[string]string) error {
	for body != "" {
		eq := strings.IndexByte(body, '=')
		if eq < 0 || len(body) < eq+2 || body[eq+1] != '"' {
			return fmt.Errorf("bad label pair near %q", body)
		}
		key := body[:eq]
		val, rest, err := unquotePrefix(body[eq+1:])
		if err != nil {
			return err
		}
		into[key] = val
		body = strings.TrimPrefix(rest, ",")
	}
	return nil
}

// unquotePrefix consumes a leading Go/Prometheus quoted string and
// returns its value plus the remainder.
func unquotePrefix(s string) (val, rest string, err error) {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			v, err := strconv.Unquote(s[:i+1])
			return v, s[i+1:], err
		}
	}
	return "", "", fmt.Errorf("unterminated quoted string in %q", s)
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return strconv.ParseFloat("+inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-inf", 64)
	}
	return strconv.ParseFloat(s, 64)
}

func validMetricName(name string) bool {
	for i, r := range name {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// HistogramQuantile estimates quantile q from the _bucket samples of
// one histogram series in a scrape: pass every sample whose name is
// `<metric>_bucket` and whose non-le labels match the series wanted.
// It reproduces Histogram.Quantile's interpolation on the parsed side.
func HistogramQuantile(q float64, buckets []Sample) float64 {
	type edge struct {
		le  float64
		cum float64
	}
	var edges []edge
	for _, s := range buckets {
		le, err := parseValue(s.Label("le"))
		if err != nil {
			continue
		}
		edges = append(edges, edge{le: le, cum: s.Value})
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].le < edges[j].le })
	var bounds []float64
	var counts []uint64
	var prev float64
	var total uint64
	for _, e := range edges {
		n := uint64(e.cum - prev)
		prev = e.cum
		if e.le > 1e308 { // +Inf bucket
			counts = append(counts, n)
		} else {
			bounds = append(bounds, e.le)
			counts = append(counts, n)
		}
		total += n
	}
	if len(counts) == len(bounds) { // no +Inf sample seen
		counts = append(counts, 0)
	}
	return bucketQuantile(q, bounds, counts, total)
}
