// Package obs is casq's dependency-free observability substrate. It has
// two halves. The metrics half is a concurrent registry of sharded
// counters, gauges, and fixed-bucket histograms (with p50/p90/p99
// extraction) exposed in Prometheus text format — `casq serve` mounts it
// at GET /metrics, and every engine-layer package (store, exec, sweep,
// fabric, layout, serve) records into the process-wide Default registry.
// The tracing half is a lightweight span Tracer threaded through the
// compile/execute/serve stack; a nil *Tracer is the no-op path and costs
// zero allocations and a few nanoseconds per span site, so tracing can
// stay compiled into the hot loops. Recorded spans export as Chrome
// trace-event JSON (chrome://tracing, Perfetto) via WriteChromeTrace.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"unsafe"
)

// counterShards is the number of padded cells a Counter stripes its
// increments over. Power of two so the shard pick is a mask, not a mod.
const counterShards = 16

// shardIndex picks a stripe for the calling goroutine. Go exposes no
// cheap goroutine or P identity, but every goroutine's stack is a
// distinct allocation, so the address of a stack local — shifted past
// the within-frame bits — spreads concurrent writers across shards
// without any allocation or syscall.
func shardIndex() uint64 {
	var probe byte
	return uint64(uintptr(unsafe.Pointer(&probe))>>10) & (counterShards - 1)
}

// pad64 is one cache line worth of counter cell: the value plus padding
// so neighbouring shards never share a line (false sharing is the whole
// point of striping).
type pad64 struct {
	v atomic.Uint64
	_ [56]byte
}

// Counter is a monotonically increasing metric, striped across padded
// shards so heavily concurrent writers (the exec worker pool, the serve
// request path) do not contend on one cache line.
type Counter struct {
	shards [counterShards]pad64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n to the counter.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.shards[shardIndex()].v.Add(n)
}

// Value sums the shards. It is a snapshot, not a linearization point.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var total uint64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// Gauge is a metric that can go up and down, stored as float64 bits so
// ratios and seconds fit as naturally as counts.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta (CAS loop; gauges are low-rate).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution. Bounds are upper bucket
// edges (Prometheus `le` semantics); one extra implicit +Inf bucket
// catches the tail. Observe is lock-free: a binary search over the
// bounds plus two atomic adds.
type Histogram struct {
	bounds  []float64 // sorted upper edges, exclusive of +Inf
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 sum, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, buckets: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.buckets[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-quantile (q in [0,1]) by linear
// interpolation inside the bucket that crosses the target rank — the
// same estimate Prometheus' histogram_quantile computes server-side.
// Samples in the +Inf bucket clamp to the largest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	counts := make([]uint64, len(h.buckets))
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	return bucketQuantile(q, h.bounds, counts, total)
}

// bucketQuantile interpolates a quantile from per-bucket (not
// cumulative) counts. Shared with the exposition parser so loadgen can
// reproduce the server-side estimate from a /metrics scrape.
func bucketQuantile(q float64, bounds []float64, counts []uint64, total uint64) float64 {
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(bounds) { // +Inf bucket: clamp
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		return lo + (bounds[i]-lo)*(rank-prev)/float64(c)
	}
	return bounds[len(bounds)-1]
}

// ExpBuckets returns n upper bounds starting at start and growing by
// factor — the standard latency-histogram shape.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// LatencyBuckets spans 1µs..~100s in quarter-decade steps: wide enough
// for a store hit (µs) and a 127-qubit figure compute (tens of seconds)
// on one scale, at 25 buckets.
func LatencyBuckets() []float64 { return ExpBuckets(1e-6, math.Sqrt(math.Sqrt(10)), 25) }

// metricKind tags a family for the # TYPE exposition line.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// family is one exposition unit: a metric name plus either a single
// unlabeled instrument or a set of labeled children.
type family struct {
	name, help, label string
	kind              metricKind
	bounds            []float64 // histogram families only

	mu       sync.RWMutex
	counter  *Counter
	gauge    *Gauge
	hist     *Histogram
	counters map[string]*Counter   // label value -> child
	hists    map[string]*Histogram // label value -> child
}

// Registry owns a set of metric families and renders them in
// Prometheus text format. Instrument lookups are idempotent: asking for
// the same name twice returns the same instrument, so package-level
// instrumentation does not need registration ceremony.
type Registry struct {
	mu   sync.Mutex
	fams []*family // insertion order, for stable exposition
	by   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{by: map[string]*family{}} }

var (
	defaultOnce sync.Once
	defaultReg  *Registry
)

// Default is the process-wide registry. Engine-layer packages (store,
// exec, sweep, fabric, layout) register their metrics here at init;
// `casq serve` appends it to GET /metrics after its own registry.
func Default() *Registry {
	defaultOnce.Do(func() { defaultReg = NewRegistry() })
	return defaultReg
}

func (r *Registry) family(name, help, label string, kind metricKind, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.by[name]; ok {
		return f
	}
	f := &family{name: name, help: help, label: label, kind: kind, bounds: bounds}
	r.by[name] = f
	r.fams = append(r.fams, f)
	return f
}

// Counter returns the unlabeled counter family called name.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, "", kindCounter, nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.counter == nil {
		f.counter = &Counter{}
	}
	return f.counter
}

// Gauge returns the unlabeled gauge family called name.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, "", kindGauge, nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.gauge == nil {
		f.gauge = &Gauge{}
	}
	return f.gauge
}

// Histogram returns the unlabeled histogram family called name with the
// given bucket upper bounds (nil means LatencyBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = LatencyBuckets()
	}
	f := r.family(name, help, "", kindHistogram, bounds)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.hist == nil {
		f.hist = newHistogram(f.bounds)
	}
	return f.hist
}

// CounterVec is a counter family keyed by one label.
type CounterVec struct{ f *family }

// CounterVec returns the counter family called name labeled by label.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	f := r.family(name, help, label, kindCounter, nil)
	return &CounterVec{f: f}
}

// With returns (creating on first use) the child counter for value.
func (v *CounterVec) With(value string) *Counter {
	f := v.f
	f.mu.RLock()
	c := f.counters[value]
	f.mu.RUnlock()
	if c != nil {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.counters == nil {
		f.counters = map[string]*Counter{}
	}
	if c = f.counters[value]; c == nil {
		c = &Counter{}
		f.counters[value] = c
	}
	return c
}

// Snapshot returns the current value of every child, keyed by label
// value. serve uses it to rebuild the /healthz requests map.
func (v *CounterVec) Snapshot() map[string]uint64 {
	f := v.f
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make(map[string]uint64, len(f.counters))
	for k, c := range f.counters {
		out[k] = c.Value()
	}
	return out
}

// HistogramVec is a histogram family keyed by one label.
type HistogramVec struct{ f *family }

// HistogramVec returns the histogram family called name labeled by
// label (nil bounds means LatencyBuckets).
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	if bounds == nil {
		bounds = LatencyBuckets()
	}
	f := r.family(name, help, label, kindHistogram, bounds)
	return &HistogramVec{f: f}
}

// With returns (creating on first use) the child histogram for value.
func (v *HistogramVec) With(value string) *Histogram {
	f := v.f
	f.mu.RLock()
	h := f.hists[value]
	f.mu.RUnlock()
	if h != nil {
		return h
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.hists == nil {
		f.hists = map[string]*Histogram{}
	}
	if h = f.hists[value]; h == nil {
		h = newHistogram(f.bounds)
		f.hists[value] = h
	}
	return h
}

// WritePrometheus renders every family in Prometheus text exposition
// format (HELP/TYPE headers, cumulative _bucket/_sum/_count series for
// histograms). Families appear in registration order, labeled children
// in sorted label order, so the output is diffable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) write(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	f.mu.RLock()
	defer f.mu.RUnlock()
	switch f.kind {
	case kindCounter:
		if f.label == "" {
			fmt.Fprintf(b, "%s %d\n", f.name, f.counter.Value())
			return
		}
		for _, k := range sortedKeys(f.counters) {
			fmt.Fprintf(b, "%s{%s=%q} %d\n", f.name, f.label, k, f.counters[k].Value())
		}
	case kindGauge:
		fmt.Fprintf(b, "%s %s\n", f.name, formatFloat(f.gauge.Value()))
	case kindHistogram:
		if f.label == "" {
			writeHistogram(b, f.name, "", "", f.hist)
			return
		}
		for _, k := range sortedKeys(f.hists) {
			writeHistogram(b, f.name, f.label, k, f.hists[k])
		}
	}
}

func writeHistogram(b *strings.Builder, name, label, value string, h *Histogram) {
	if h == nil {
		return
	}
	prefix := func(le string) string {
		if label == "" {
			return fmt.Sprintf(`%s_bucket{le=%q}`, name, le)
		}
		return fmt.Sprintf(`%s_bucket{%s=%q,le=%q}`, name, label, value, le)
	}
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(b, "%s %d\n", prefix(formatFloat(bound)), cum)
	}
	cum += h.buckets[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s %d\n", prefix("+Inf"), cum)
	suffix := ""
	if label != "" {
		suffix = fmt.Sprintf("{%s=%q}", label, value)
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", name, suffix, formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, suffix, h.Count())
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
