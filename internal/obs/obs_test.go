package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryIdempotent pins the no-ceremony contract: asking for the
// same family twice returns the same instrument.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a_total", "x") != r.Counter("a_total", "x") {
		t.Error("Counter not idempotent")
	}
	if r.Gauge("g", "x") != r.Gauge("g", "x") {
		t.Error("Gauge not idempotent")
	}
	if r.Histogram("h_seconds", "x", nil) != r.Histogram("h_seconds", "x", nil) {
		t.Error("Histogram not idempotent")
	}
	v := r.CounterVec("b_total", "x", "k")
	if v.With("1") != v.With("1") {
		t.Error("CounterVec child not idempotent")
	}
	hv := r.HistogramVec("hv_seconds", "x", "k", nil)
	if hv.With("1") != hv.With("1") {
		t.Error("HistogramVec child not idempotent")
	}
}

// TestRegistryConcurrent is the -race battery: parallel counter,
// gauge, and histogram writers (including vec-child creation) racing
// concurrent exposition and snapshot readers.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("casq_test_ops_total", "ops")
	g := r.Gauge("casq_test_depth", "depth")
	h := r.Histogram("casq_test_seconds", "latency", nil)
	cv := r.CounterVec("casq_test_by_state_total", "by state", "state")
	hv := r.HistogramVec("casq_test_lat_seconds", "latency by endpoint", "endpoint", nil)

	const writers, perWriter = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			state := []string{"ok", "fail", "skip"}[w%3]
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Set(float64(i))
				g.Add(1)
				h.Observe(float64(i) * 1e-6)
				cv.With(state).Inc()
				hv.With("figures").Observe(float64(i) * 1e-5)
			}
		}(w)
	}
	// Concurrent exposition + snapshot readers.
	for rdr := 0; rdr < 4; rdr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var b bytes.Buffer
				if err := r.WritePrometheus(&b); err != nil {
					t.Errorf("WritePrometheus: %v", err)
					return
				}
				cv.Snapshot()
				h.Quantile(0.99)
			}
		}()
	}
	wg.Wait()

	if got := c.Value(); got != writers*perWriter {
		t.Errorf("counter = %d, want %d", got, writers*perWriter)
	}
	if got := h.Count(); got != writers*perWriter {
		t.Errorf("histogram count = %d, want %d", got, writers*perWriter)
	}
	snap := cv.Snapshot()
	var total uint64
	for _, v := range snap {
		total += v
	}
	if total != writers*perWriter {
		t.Errorf("vec total = %d, want %d", total, writers*perWriter)
	}
}

// TestPrometheusRoundTrip pins the exposition format: everything the
// registry writes must parse back with the same values, and histogram
// series must carry cumulative buckets plus _sum and _count.
func TestPrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("casq_jobs_total", "jobs").Add(7)
	r.Gauge("casq_active", "active").Set(2.5)
	h := r.Histogram("casq_lat_seconds", "latency", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(3.0) // +Inf bucket
	cv := r.CounterVec("casq_cells_total", "cells", "state")
	cv.With("done").Add(4)
	cv.With("failed").Inc()
	hv := r.HistogramVec("casq_req_seconds", "req latency", "endpoint", []float64{0.01, 0.1})
	hv.With("figures").Observe(0.02)

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	samples, err := ParseProm(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseProm: %v\n%s", err, text)
	}
	byKey := map[string]float64{}
	for _, s := range samples {
		key := s.Name
		for _, k := range []string{"state", "endpoint", "le"} {
			if v := s.Label(k); v != "" {
				key += "|" + k + "=" + v
			}
		}
		byKey[key] = s.Value
	}
	want := map[string]float64{
		"casq_jobs_total":                                  7,
		"casq_active":                                      2.5,
		"casq_lat_seconds_bucket|le=0.001":                 1,
		"casq_lat_seconds_bucket|le=0.01":                  1,
		"casq_lat_seconds_bucket|le=0.1":                   2,
		"casq_lat_seconds_bucket|le=+Inf":                  3,
		"casq_lat_seconds_count":                           3,
		"casq_cells_total|state=done":                      4,
		"casq_cells_total|state=failed":                    1,
		"casq_req_seconds_bucket|endpoint=figures|le=0.1":  1,
		"casq_req_seconds_bucket|endpoint=figures|le=+Inf": 1,
		"casq_req_seconds_count|endpoint=figures":          1,
	}
	for k, v := range want {
		if got, ok := byKey[k]; !ok || math.Abs(got-v) > 1e-9 {
			t.Errorf("%s = %v (present=%v), want %v\n%s", k, got, ok, v, text)
		}
	}
	if sum := byKey["casq_lat_seconds_sum"]; math.Abs(sum-3.0505) > 1e-9 {
		t.Errorf("sum = %v, want 3.0505", sum)
	}
	// HELP/TYPE headers present for each family.
	for _, fam := range []string{"casq_jobs_total", "casq_lat_seconds", "casq_req_seconds"} {
		if !strings.Contains(text, "# TYPE "+fam+" ") {
			t.Errorf("missing TYPE header for %s", fam)
		}
	}
}

// TestQuantile pins the interpolation: a uniform distribution over
// [0, 100ms) in fine buckets puts p50 near 50ms and p90 near 90ms, and
// the parsed-scrape path (HistogramQuantile) agrees with the in-process
// one (Histogram.Quantile).
func TestQuantile(t *testing.T) {
	r := NewRegistry()
	bounds := make([]float64, 100)
	for i := range bounds {
		bounds[i] = float64(i+1) * 0.001
	}
	h := r.Histogram("casq_q_seconds", "q", bounds)
	for i := 0; i < 10000; i++ {
		h.Observe(float64(i) * 1e-5) // 0 .. 0.1s uniform
	}
	for _, tc := range []struct{ q, want float64 }{{0.5, 0.05}, {0.9, 0.09}, {0.99, 0.099}} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 0.002 {
			t.Errorf("Quantile(%v) = %v, want ~%v", tc.q, got, tc.want)
		}
	}

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseProm(&b)
	if err != nil {
		t.Fatal(err)
	}
	var buckets []Sample
	for _, s := range samples {
		if s.Name == "casq_q_seconds_bucket" {
			buckets = append(buckets, s)
		}
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if got, want := HistogramQuantile(q, buckets), h.Quantile(q); math.Abs(got-want) > 1e-9 {
			t.Errorf("parsed quantile(%v) = %v, in-process = %v", q, got, want)
		}
	}
}

// TestCounterZeroAlloc pins the metrics hot path: an increment must not
// allocate (it sits on the serve request path and in exec workers).
func TestCounterZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("casq_alloc_total", "x")
	h := r.Histogram("casq_alloc_seconds", "x", nil)
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocs = %v", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(1e-3) }); n != 0 {
		t.Errorf("Histogram.Observe allocs = %v", n)
	}
}

// TestNoopTracerZeroAlloc pins the disabled-path contract: a nil
// *Tracer must cost zero allocations through the full span lifecycle,
// so span sites can stay compiled into the engine hot loops.
func TestNoopTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	n := testing.AllocsPerRun(1000, func() {
		sp := tr.Start("x").WithLane(3).WithTrace(42)
		sp.End()
		sp2 := tr.StartTrace("y", 7)
		sp2.End()
	})
	if n != 0 {
		t.Errorf("no-op tracer allocs = %v, want 0", n)
	}
}

// TestTracerRecords pins basic span recording and the monotonic clock.
func TestTracerRecords(t *testing.T) {
	tr := NewTracer()
	outer := tr.Start("outer").WithLane(1)
	time.Sleep(2 * time.Millisecond)
	inner := tr.Start("inner").WithLane(1).WithTrace(99)
	time.Sleep(time.Millisecond)
	inner.End()
	outer.End()

	ev := tr.Events()
	if len(ev) != 2 {
		t.Fatalf("events = %d, want 2", len(ev))
	}
	// End order: inner first.
	in, out := ev[0], ev[1]
	if in.Name != "inner" || out.Name != "outer" {
		t.Fatalf("names = %q, %q", in.Name, out.Name)
	}
	if in.Trace != 99 || in.Lane != 1 {
		t.Errorf("inner = %+v", in)
	}
	if in.Start < out.Start || in.Start+in.Dur > out.Start+out.Dur {
		t.Errorf("inner [%d,%d] not nested in outer [%d,%d]",
			in.Start, in.Start+in.Dur, out.Start, out.Start+out.Dur)
	}
	if in.Dur < int64(time.Millisecond) {
		t.Errorf("inner dur = %v, want >= 1ms", time.Duration(in.Dur))
	}
}

// TestChromeTraceSchema validates the exporter against the Chrome
// trace-event schema: an object with a traceEvents array of complete
// ("X") events carrying name/ph/ts/dur/pid/tid, with nesting preserved
// in the timestamps — the shape chrome://tracing and Perfetto load.
func TestChromeTraceSchema(t *testing.T) {
	tr := NewTracer()
	job := tr.Start("exec.job")
	inst := tr.Start("exec.instance").WithLane(1).WithTrace(7)
	pass := tr.Start("pass:layout.select").WithLane(1)
	time.Sleep(time.Millisecond)
	pass.End()
	eng := tr.Start("stab.counts").WithLane(1)
	eng.End()
	inst.End()
	job.End()

	var b bytes.Buffer
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   *float64       `json:"ts"`
			Dur  *float64       `json:"dur"`
			Pid  *int           `json:"pid"`
			Tid  *int           `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, b.String())
	}
	spans := map[string][2]float64{}
	for _, e := range doc.TraceEvents {
		if e.Name == "" || e.Ph == "" || e.Pid == nil || e.Tid == nil {
			t.Fatalf("event missing required keys: %+v", e)
		}
		switch e.Ph {
		case "M": // metadata (process/thread names)
			continue
		case "X":
			if e.Ts == nil || e.Dur == nil {
				t.Fatalf("complete event missing ts/dur: %+v", e)
			}
			spans[e.Name] = [2]float64{*e.Ts, *e.Ts + *e.Dur}
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	for _, name := range []string{"exec.job", "exec.instance", "pass:layout.select", "stab.counts"} {
		if _, ok := spans[name]; !ok {
			t.Fatalf("span %q missing from trace", name)
		}
	}
	within := func(in, out string) {
		i, o := spans[in], spans[out]
		if i[0] < o[0] || i[1] > o[1] {
			t.Errorf("%s [%v,%v] not nested in %s [%v,%v]", in, i[0], i[1], out, o[0], o[1])
		}
	}
	within("pass:layout.select", "exec.instance")
	within("stab.counts", "exec.instance")
	within("exec.instance", "exec.job")
	// Trace ID propagated into args.
	found := false
	for _, e := range doc.TraceEvents {
		if e.Name == "exec.instance" && e.Args["trace"] == "0000000000000007" {
			found = true
		}
	}
	if !found {
		t.Error("trace ID missing from exec.instance args")
	}
}

// TestNextTraceID pins uniqueness and non-zero-ness of generated IDs.
func TestNextTraceID(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := NextTraceID()
		if id == 0 || seen[id] {
			t.Fatalf("trace ID %d duplicate or zero at i=%d", id, i)
		}
		seen[id] = true
	}
}

// BenchmarkObsOverhead* pin the cost of each instrument on the hot
// path; CI archives them in BENCH_obs.json.

func BenchmarkObsOverheadCounter(b *testing.B) {
	c := NewRegistry().Counter("casq_bench_total", "x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkObsOverheadCounterParallel(b *testing.B) {
	c := NewRegistry().Counter("casq_bench_total", "x")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkObsOverheadHistogram(b *testing.B) {
	h := NewRegistry().Histogram("casq_bench_seconds", "x", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(1.5e-4)
	}
}

func BenchmarkObsOverheadNoopSpan(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("x").WithLane(1)
		sp.End()
	}
}

func BenchmarkObsOverheadSpan(b *testing.B) {
	tr := NewTracer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("x").WithLane(1)
		sp.End()
	}
}

func BenchmarkObsOverheadExposition(b *testing.B) {
	r := NewRegistry()
	for _, name := range []string{"a_total", "b_total", "c_total"} {
		r.Counter("casq_"+name, "x").Inc()
	}
	hv := r.HistogramVec("casq_bench_req_seconds", "x", "endpoint", nil)
	for _, ep := range []string{"figures", "sweeps", "healthz"} {
		hv.With(ep).Observe(1e-3)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
