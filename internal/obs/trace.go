package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// TraceEvent is one completed span. Start and Dur are nanoseconds on
// the tracer's own monotonic clock (zero = tracer creation), Lane is
// the virtual thread the span renders on (0 = main, executor instances
// take k+1), and Trace groups spans belonging to one logical request —
// it survives HTTP hops between the fabric coordinator and its workers.
type TraceEvent struct {
	Name  string
	Start int64
	Dur   int64
	Lane  int
	Trace uint64
}

// Tracer records spans. The zero value is not useful — use NewTracer —
// but a nil *Tracer is the canonical disabled tracer: every method is a
// nil-checked no-op costing zero allocations, so call sites in hot
// loops thread the pointer unconditionally.
type Tracer struct {
	epoch time.Time
	mu    sync.Mutex
	ev    []TraceEvent
}

// NewTracer returns an enabled tracer with its clock epoch at now.
func NewTracer() *Tracer { return &Tracer{epoch: time.Now()} }

// Enabled reports whether spans are being recorded. Use it to guard
// span-name construction that would otherwise allocate (string concat,
// fmt) on the disabled path.
func (t *Tracer) Enabled() bool { return t != nil }

func (t *Tracer) now() int64 { return int64(time.Since(t.epoch)) }

// Span is an open interval handle, passed by value so the disabled path
// allocates nothing. End records it; End on a zero Span is a no-op.
type Span struct {
	t     *Tracer
	name  string
	start int64
	lane  int
	trace uint64
}

// Start opens a span named name on lane 0.
func (t *Tracer) Start(name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, start: t.now()}
}

// StartTrace opens a span carrying an explicit trace ID — the receiving
// half of cross-process propagation (fabric workers stamp the
// coordinator's sweep trace ID onto their cell spans).
func (t *Tracer) StartTrace(name string, traceID uint64) Span {
	sp := t.Start(name)
	sp.trace = traceID
	return sp
}

// WithLane assigns the span to a rendering lane (Chrome tid).
func (s Span) WithLane(lane int) Span { s.lane = lane; return s }

// WithTrace stamps a trace ID onto the span.
func (s Span) WithTrace(id uint64) Span { s.trace = id; return s }

// End closes the span and records it.
func (s Span) End() {
	if s.t == nil {
		return
	}
	end := s.t.now()
	s.t.mu.Lock()
	s.t.ev = append(s.t.ev, TraceEvent{
		Name: s.name, Start: s.start, Dur: end - s.start, Lane: s.lane, Trace: s.trace,
	})
	s.t.mu.Unlock()
}

// Events returns a copy of the recorded spans.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceEvent(nil), t.ev...)
}

var traceIDs atomic.Uint64

// NextTraceID returns a process-unique trace ID (a splitmix64 hash of a
// sequence number, so IDs look random but need no entropy source).
func NextTraceID() uint64 {
	z := traceIDs.Add(1) * 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// chromeEvent is one entry of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// ph "X" complete events with microsecond ts/dur load directly in
// chrome://tracing and Perfetto.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders the recorded spans as Chrome trace-event
// JSON. Lanes become tids (with thread_name metadata so the viewer
// labels them), and non-zero trace IDs land in args.trace for grouping.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := t.Events()
	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{
		{Name: "process_name", Ph: "M", Pid: 1,
			Args: map[string]any{"name": "casq"}},
	}}
	lanes := map[int]bool{}
	for _, e := range events {
		if !lanes[e.Lane] {
			lanes[e.Lane] = true
			name := "main"
			if e.Lane != 0 {
				name = fmt.Sprintf("lane %d", e.Lane)
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: e.Lane,
				Args: map[string]any{"name": name}})
		}
		ce := chromeEvent{
			Name: e.Name, Cat: "casq", Ph: "X",
			Ts:  float64(e.Start) / 1e3,
			Dur: float64(e.Dur) / 1e3,
			Pid: 1, Tid: e.Lane,
		}
		if e.Trace != 0 {
			ce.Args = map[string]any{"trace": fmt.Sprintf("%016x", e.Trace)}
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}
