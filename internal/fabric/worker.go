package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"casq/internal/obs"
	"casq/internal/store"
	"casq/internal/sweep"
)

// DefaultPoll is the idle claim-poll interval when Worker.Poll is zero.
const DefaultPoll = 200 * time.Millisecond

// Worker claims cells from a coordinator, computes them through its
// Cache (whose store should share the coordinator's — NewWorker wires the
// remote HTTP backend), and reports completion. It sends heartbeats while
// a cell computes, so only a genuinely dead or wedged worker loses its
// lease. Run as many workers as you have machines; results are
// bit-identical regardless of which worker computes which cell.
type Worker struct {
	// Coordinator is the coordinator's base URL (e.g. "http://host:8823").
	Coordinator string
	// Cache computes figures and checkpoints them into the shared store.
	Cache *sweep.Cache
	// ID names the worker in coordinator stats; "" derives one from the
	// hostname and pid.
	ID string
	// Slots is the number of cells computed concurrently (0 = 1). Each
	// cell's executor defaults to an equal share of GOMAXPROCS.
	Slots int
	// Poll is the idle claim-poll interval (0 = DefaultPoll).
	Poll time.Duration
	// Client is the HTTP client for coordinator calls (nil =
	// http.DefaultClient).
	Client *http.Client
	// Tracer records one span per processed cell, stamped with the trace
	// id the coordinator assigned to the owning sweep (carried in the
	// claim response), and is threaded into the cell's Options so compile
	// and engine spans nest under it. Nil disables tracing at zero cost.
	Tracer *obs.Tracer
}

// NewWorker returns a worker computing against the coordinator at base,
// sharing the coordinator's store through the remote HTTP backend with a
// local LRU tier of memCapacity entries in front of it.
func NewWorker(base string, memCapacity int) *Worker {
	base = strings.TrimRight(base, "/")
	st := store.OpenWith(store.NewHTTP(base, nil), memCapacity)
	return &Worker{Coordinator: base, Cache: sweep.NewCache(st)}
}

func (w *Worker) id() string {
	if w.ID != "" {
		return w.ID
	}
	host, _ := os.Hostname()
	if host == "" {
		host = "worker"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return http.DefaultClient
}

func (w *Worker) poll() time.Duration {
	if w.Poll > 0 {
		return w.Poll
	}
	return DefaultPoll
}

// Run claims and computes cells until ctx is cancelled, then returns
// ctx.Err(). Claim failures (coordinator restarting, network blips) are
// retried at the poll interval rather than terminating the worker.
func (w *Worker) Run(ctx context.Context) error {
	slots := w.Slots
	if slots <= 0 {
		slots = 1
	}
	perCell := runtime.GOMAXPROCS(0) / slots
	if perCell < 1 {
		perCell = 1
	}
	var wg sync.WaitGroup
	for i := 0; i < slots; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.loop(ctx, perCell)
		}()
	}
	wg.Wait()
	return ctx.Err()
}

func (w *Worker) loop(ctx context.Context, perCell int) {
	for ctx.Err() == nil {
		job, ok, err := w.claim(ctx)
		if err != nil || !ok {
			select {
			case <-ctx.Done():
				return
			case <-time.After(w.poll()):
			}
			continue
		}
		w.process(ctx, job, perCell)
	}
}

// process computes one claimed cell under a heartbeat. If the completion
// report fails (coordinator unreachable, lease expired), the result is
// already checkpointed in the shared store, so the requeued cell is
// answered from cache by whichever worker claims it next — never
// recomputed, never written twice.
func (w *Worker) process(ctx context.Context, job claimResponse, perCell int) {
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	go w.heartbeatLoop(hbCtx, job)

	cell := job.Cell
	if cell.Opts.Workers == 0 {
		cell.Opts.Workers = perCell
	}
	var sp obs.Span
	if w.Tracer.Enabled() {
		sp = w.Tracer.StartTrace("fabric.cell:"+cell.ID, job.TraceID)
		cell.Opts.Tracer = w.Tracer
	}
	_, hit, err := w.Cache.Figure(cell)
	sp.End()
	stopHB()
	state := sweep.CellComputed
	errMsg := ""
	switch {
	case err != nil:
		state, errMsg = sweep.CellFailed, err.Error()
	case hit:
		state = sweep.CellCached
	}
	w.complete(job.LeaseID, state, errMsg)
}

// heartbeatLoop extends the lease at a third of its TTL until stopped. A
// 410 means the lease is gone — the cell was requeued — so heartbeating
// stops; the compute still finishes and checkpoints its result.
func (w *Worker) heartbeatLoop(ctx context.Context, job claimResponse) {
	every := time.Duration(job.LeaseTTLMS) * time.Millisecond / 3
	if every < 5*time.Millisecond {
		every = 5 * time.Millisecond
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			status, err := w.post(ctx, "/fabric/heartbeat", heartbeatRequest{LeaseID: job.LeaseID}, nil)
			if err == nil && status == http.StatusGone {
				return
			}
		}
	}
}

func (w *Worker) claim(ctx context.Context) (claimResponse, bool, error) {
	var resp claimResponse
	status, err := w.post(ctx, "/fabric/claim", claimRequest{Worker: w.id()}, &resp)
	if err != nil {
		return resp, false, err
	}
	switch status {
	case http.StatusOK:
		return resp, true, nil
	case http.StatusNoContent:
		return resp, false, nil
	default:
		return resp, false, fmt.Errorf("fabric: claim: unexpected status %d", status)
	}
}

func (w *Worker) complete(leaseID string, st sweep.CellState, errMsg string) {
	// Best-effort: a failed report leaves the lease to expire and the
	// already-stored result to be served from cache on requeue.
	w.post(context.Background(), "/fabric/complete",
		completeRequest{LeaseID: leaseID, State: st, Error: errMsg}, nil)
}

// post sends one JSON request to the coordinator, decoding a 200 body
// into out when non-nil, and returns the HTTP status.
func (w *Worker) post(ctx context.Context, path string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}
