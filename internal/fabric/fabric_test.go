package fabric

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"casq/internal/experiments"
	"casq/internal/obs"
	"casq/internal/store"
	"casq/internal/sweep"
)

// testSpec is a small multi-cell sweep over real experiment ids (Cell.Key
// requires registered ids) with a cheap stubbed compute in most tests.
func testSpec(seeds []int64) sweep.Spec {
	base := experiments.FastOptions()
	base.Shots = 16
	base.Instances = 2
	base.MaxDepth = 2
	return sweep.Spec{IDs: []string{"fig5"}, Grid: sweep.Grid{Seeds: seeds}, Base: base, Fast: true}
}

// stubCompute returns a Compute that records each cell's seed and returns
// a tiny deterministic figure.
func stubCompute(count *atomic.Int32, seeds *sync.Map) sweep.Compute {
	return func(id string, opts experiments.Options) (experiments.Figure, error) {
		count.Add(1)
		if seeds != nil {
			seeds.Store(opts.Seed, true)
		}
		return experiments.Figure{ID: id, Title: fmt.Sprintf("stub seed=%d", opts.Seed)}, nil
	}
}

func newTestWorker(base string, id string, client *http.Client, compute sweep.Compute) *Worker {
	st := store.OpenWith(store.NewHTTP(base, client), 64)
	return &Worker{
		Coordinator: base,
		Cache:       &sweep.Cache{Store: st, Compute: compute},
		ID:          id,
		Client:      client,
		Poll:        5 * time.Millisecond,
	}
}

// TestCoordinatorLeaseLifecycle drives claim/heartbeat/complete/expiry at
// the Go level, no HTTP: an unheartbeated lease expires and the cell is
// requeued; a heartbeated one survives; late completion gets ErrLeaseGone.
func TestCoordinatorLeaseLifecycle(t *testing.T) {
	st := store.OpenWith(nil, 16)
	c := NewCoordinator(st, Options{LeaseTTL: time.Hour}) // expiry driven manually below
	defer c.Close()
	sw, err := c.Submit(testSpec([]int64{1}))
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	lease1, cell, _, ok := c.claim("w1", now)
	if !ok || cell.Opts.Seed != 1 {
		t.Fatalf("claim = %v, %+v", ok, cell)
	}
	if p := sw.Progress(); p.Leased != 1 || p.Finished {
		t.Fatalf("progress after claim = %+v", p)
	}
	// Nothing else to claim while the lease is live.
	if _, _, _, ok := c.claim("w2", now); ok {
		t.Fatal("second claim handed out a leased cell")
	}
	// A heartbeat within TTL keeps the lease.
	if err := c.heartbeat(lease1, now.Add(30*time.Minute)); err != nil {
		t.Fatal(err)
	}
	// Past the extended expiry the lease dies and the cell requeues.
	late := now.Add(92 * time.Minute)
	lease2, cell2, _, ok := c.claim("w2", late)
	if !ok || cell2.Opts.Seed != 1 {
		t.Fatalf("requeued claim = %v, %+v", ok, cell2)
	}
	if err := c.heartbeat(lease1, late); !errors.Is(err, ErrLeaseGone) {
		t.Errorf("expired heartbeat err = %v", err)
	}
	// The dead worker's late completion is rejected; the live lease wins.
	if err := c.complete(lease1, sweep.CellComputed, "", late); !errors.Is(err, ErrLeaseGone) {
		t.Errorf("late complete err = %v", err)
	}
	if err := c.complete(lease2, sweep.CellComputed, "", late); err != nil {
		t.Fatal(err)
	}
	if p := sw.Wait(); !p.Finished || p.Computed != 1 || p.Done != 1 {
		t.Errorf("final progress = %+v", p)
	}
	stats := c.Stats()
	if stats.Expirations != 1 || stats.Completes != 1 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.Leases != 0 || stats.QueueDepth != 0 {
		t.Errorf("stats not drained = %+v", stats)
	}
}

func TestCompleteRejectsNonTerminalState(t *testing.T) {
	st := store.OpenWith(nil, 16)
	c := NewCoordinator(st, Options{})
	defer c.Close()
	if _, err := c.Submit(testSpec([]int64{1})); err != nil {
		t.Fatal(err)
	}
	lease, _, _, ok := c.claim("w1", time.Now())
	if !ok {
		t.Fatal("claim failed")
	}
	for _, bad := range []sweep.CellState{sweep.CellPending, sweep.CellLeased, "bogus"} {
		if err := c.complete(lease, bad, "", time.Now()); err == nil || errors.Is(err, ErrLeaseGone) {
			t.Errorf("state %q: err = %v", bad, err)
		}
	}
}

// killTransport passes requests through until killAfter completion
// reports have succeeded; the next /fabric/complete — and every request
// after it — fails. That simulates a worker crashing after it has
// checkpointed a result into the shared store but before the coordinator
// hears about it: the worst spot, because only the lease expiry can
// recover the cell.
type killTransport struct {
	base      http.RoundTripper
	killAfter int

	mu        sync.Mutex
	completes int
	dead      bool
	killed    chan struct{}
}

func (k *killTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	k.mu.Lock()
	if k.dead {
		k.mu.Unlock()
		return nil, errors.New("worker killed")
	}
	if strings.HasSuffix(req.URL.Path, "/fabric/complete") {
		if k.completes >= k.killAfter {
			k.dead = true
			close(k.killed)
			k.mu.Unlock()
			return nil, errors.New("worker killed mid-report")
		}
		k.completes++
	}
	k.mu.Unlock()
	return k.base.RoundTrip(req)
}

// TestLeaseExpiryRequeueZeroDuplicateWrites is the crash-recovery pin:
// worker 1 completes two cells, computes and STORES a third, then dies
// before reporting it. The lease expires, the cell requeues, and worker 2
// finishes the sweep. The already-stored cell is answered from the shared
// store — zero recomputation — and the store sees exactly one Put per
// cell — zero duplicate writes.
func TestLeaseExpiryRequeueZeroDuplicateWrites(t *testing.T) {
	shared := store.OpenWith(store.NewMem(), 64)
	c := NewCoordinator(shared, Options{LeaseTTL: 150 * time.Millisecond})
	defer c.Close()
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	sw, err := c.Submit(testSpec([]int64{1, 2, 3, 4, 5, 6}))
	if err != nil {
		t.Fatal(err)
	}

	// Worker 1: dies on its third completion report (cells with seeds 1
	// and 2 complete; seed 3 is computed and stored but never reported).
	kt := &killTransport{base: http.DefaultTransport, killAfter: 2, killed: make(chan struct{})}
	var w1computes atomic.Int32
	w1 := newTestWorker(ts.URL, "w1", &http.Client{Transport: kt}, stubCompute(&w1computes, nil))
	ctx1, cancel1 := context.WithCancel(context.Background())
	w1done := make(chan struct{})
	go func() { defer close(w1done); w1.Run(ctx1) }()
	select {
	case <-kt.killed:
	case <-time.After(30 * time.Second):
		t.Fatal("worker 1 never reached its third completion")
	}
	cancel1()
	<-w1done
	if got := w1computes.Load(); got != 3 {
		t.Fatalf("worker 1 computed %d cells, want 3", got)
	}
	putsAfterW1 := shared.Stats().Puts
	if putsAfterW1 != 3 {
		t.Fatalf("store puts after worker 1 = %d, want 3 (killed cell must already be stored)", putsAfterW1)
	}

	// Worker 2: a survivor with its own cache. It must never recompute
	// the three already-stored cells.
	var w2computes atomic.Int32
	var w2seeds sync.Map
	w2 := newTestWorker(ts.URL, "w2", nil, stubCompute(&w2computes, &w2seeds))
	ctx2, cancel2 := context.WithCancel(context.Background())
	w2done := make(chan struct{})
	go func() { defer close(w2done); w2.Run(ctx2) }()

	select {
	case <-sw.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("sweep did not finish: %+v", sw.Progress())
	}
	cancel2()
	<-w2done

	p := sw.Progress()
	if !p.Finished || p.Failed != 0 || p.Done != 6 {
		t.Fatalf("final progress = %+v", p)
	}
	// The killed cell came back from the store: exactly one cached cell.
	if p.Cached != 1 || p.Computed != 5 {
		t.Errorf("progress = %+v, want 1 cached (the requeued cell) + 5 computed", p)
	}
	if got := w2computes.Load(); got != 3 {
		t.Errorf("worker 2 computed %d cells, want 3 (zero recomputation of stored cells)", got)
	}
	for _, stored := range []int64{1, 2, 3} {
		if _, recomputed := w2seeds.Load(stored); recomputed {
			t.Errorf("worker 2 recomputed already-stored cell seed=%d", stored)
		}
	}
	if puts := shared.Stats().Puts; puts != 6 {
		t.Errorf("store puts = %d, want 6 (zero duplicate writes)", puts)
	}
	if exp := c.Stats().Expirations; exp != 1 {
		t.Errorf("lease expirations = %d, want 1", exp)
	}
}

// TestWorkerFailureReported: a compute error is a terminal failed cell
// with the message surfaced in Progress.Err, not a requeue loop.
func TestWorkerFailureReported(t *testing.T) {
	shared := store.OpenWith(store.NewMem(), 64)
	c := NewCoordinator(shared, Options{LeaseTTL: time.Minute})
	defer c.Close()
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()
	sw, err := c.Submit(testSpec([]int64{1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	w := newTestWorker(ts.URL, "w1", nil, func(id string, opts experiments.Options) (experiments.Figure, error) {
		if opts.Seed == 2 {
			return experiments.Figure{}, errors.New("boom")
		}
		return experiments.Figure{ID: id}, nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go w.Run(ctx)
	p := sw.Wait()
	if p.Failed != 1 || p.Computed != 1 || !strings.Contains(p.Err, "boom") {
		t.Errorf("progress = %+v", p)
	}
}

// TestDistributedBitIdentical is the fabric acceptance pin: the same
// sweep computed by an in-process runner and by a coordinator + two
// worker processes produces bit-identical figure payloads under every
// cell's content address.
func TestDistributedBitIdentical(t *testing.T) {
	base := experiments.FastOptions()
	base.Shots = 16
	base.Instances = 2
	base.MaxDepth = 2
	spec := sweep.Spec{
		IDs:  []string{"fig5", "table1"},
		Grid: sweep.Grid{Seeds: []int64{1, 2}},
		Base: base,
		Fast: true,
	}

	// Single-process reference.
	localStore := store.OpenWith(nil, 64)
	runner := &sweep.Runner{Cache: sweep.NewCache(localStore)}
	run, err := runner.Start(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if p := run.Wait(); p.Failed != 0 {
		t.Fatalf("local sweep failed: %+v", p)
	}

	// Distributed: coordinator + 2 real-compute workers over HTTP.
	shared := store.OpenWith(store.NewMem(), 64)
	c := NewCoordinator(shared, Options{LeaseTTL: 10 * time.Second})
	defer c.Close()
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()
	sw, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		w := NewWorker(ts.URL, 64)
		w.ID = fmt.Sprintf("w%d", i+1)
		w.Poll = 5 * time.Millisecond
		wg.Add(1)
		go func() { defer wg.Done(); w.Run(ctx) }()
	}
	select {
	case <-sw.Done():
	case <-time.After(120 * time.Second):
		t.Fatalf("distributed sweep did not finish: %+v", sw.Progress())
	}
	if p := sw.Progress(); p.Failed != 0 || p.Done != p.Total {
		t.Fatalf("distributed progress = %+v", p)
	}
	cancel()
	wg.Wait()

	cells := sw.Cells()
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(cells))
	}
	for _, cell := range cells {
		key, err := cell.Key()
		if err != nil {
			t.Fatal(err)
		}
		want, ok, err := localStore.Get(key)
		if err != nil || !ok {
			t.Fatalf("local result missing for %s seed=%d: %v", cell.ID, cell.Opts.Seed, err)
		}
		got, ok, err := shared.Get(key)
		if err != nil || !ok {
			t.Fatalf("distributed result missing for %s seed=%d: %v", cell.ID, cell.Opts.Seed, err)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("%s seed=%d: distributed payload differs from single-process", cell.ID, cell.Opts.Seed)
		}
	}
	if st := c.Stats(); st.Workers != 2 {
		t.Errorf("coordinator saw %d workers, want 2", st.Workers)
	}
}

// TestTracePropagation: the trace id the coordinator assigns to a sweep
// rides the claim response across the HTTP hop, so every span a remote
// worker records for that sweep's cells carries the coordinator's id —
// one distributed trace, stitched with no shared memory.
func TestTracePropagation(t *testing.T) {
	shared := store.OpenWith(store.NewMem(), 64)
	c := NewCoordinator(shared, Options{LeaseTTL: time.Minute})
	defer c.Close()
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	sw, err := c.Submit(testSpec([]int64{1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	if sw.TraceID() == 0 {
		t.Fatal("sweep trace id is zero")
	}

	var computes atomic.Int32
	w := newTestWorker(ts.URL, "w1", nil, stubCompute(&computes, nil))
	w.Tracer = obs.NewTracer()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go w.Run(ctx)
	if p := sw.Wait(); p.Failed != 0 || p.Done != 2 {
		t.Fatalf("progress = %+v", p)
	}
	cancel()

	cellSpans := 0
	for _, ev := range w.Tracer.Events() {
		if !strings.HasPrefix(ev.Name, "fabric.cell:") {
			continue
		}
		cellSpans++
		if ev.Trace != sw.TraceID() {
			t.Errorf("span %s trace = %016x, want coordinator's %016x", ev.Name, ev.Trace, sw.TraceID())
		}
	}
	if cellSpans != 2 {
		t.Errorf("worker recorded %d fabric.cell spans, want 2", cellSpans)
	}
}
