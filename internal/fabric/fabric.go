// Package fabric shards sweep campaigns across processes and machines.
// A Coordinator turns each submitted sweep.Spec into a queue of cells
// guarded by worker leases: Workers claim cells over HTTP, compute them
// through the shared content-addressed store, and report completion. A
// worker that dies mid-cell simply stops heartbeating — its lease expires
// and the cell is requeued for a survivor. Because every result is
// checkpointed into the store under its content address the moment it is
// computed, a requeued cell whose result already landed is answered from
// the store without recomputation, and the store is never written twice
// for one cell: crash recovery costs at most the one in-flight cell per
// dead worker.
//
// The coordinator aggregates per-cell state into the same sweep.Progress
// model the in-process scheduler reports, so the serve layer's progress,
// listing, and SSE endpoints work identically for local and distributed
// sweeps. Wire protocol (all JSON over HTTP, mounted by Handler):
//
//	POST /fabric/claim      {"worker":id} -> lease + cell, or 204 when idle
//	POST /fabric/heartbeat  {"lease_id":id} extends the lease, 410 if expired
//	POST /fabric/complete   {"lease_id":id,"state":...,"error":...}, 410 if expired
//	GET  /store/{key}       shared store read (see store.Handler)
//	PUT  /store/{key}       shared store write
package fabric

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"casq/internal/obs"
	"casq/internal/store"
	"casq/internal/sweep"
)

// DefaultLeaseTTL is the lease lifetime when Options leave it zero: long
// enough that a healthy worker heartbeating at TTL/3 never expires, short
// enough that a dead worker's cell is requeued promptly.
const DefaultLeaseTTL = 15 * time.Second

// ErrLeaseGone reports a heartbeat or completion for a lease the
// coordinator no longer holds — it expired and the cell was requeued (or
// it never existed). The HTTP layer maps it to 410 Gone.
var ErrLeaseGone = errors.New("fabric: lease expired or unknown")

// Options configure a Coordinator.
type Options struct {
	// LeaseTTL is how long a claimed cell may go without a heartbeat
	// before it is requeued (0 = DefaultLeaseTTL).
	LeaseTTL time.Duration
}

// Coordinator owns the distributed job queue: sweeps expand into cells,
// cells are leased to workers, and expired leases requeue. It also serves
// the shared store, so workers need exactly one endpoint. Safe for
// concurrent use; create with NewCoordinator and release with Close.
type Coordinator struct {
	st       *store.Store
	leaseTTL time.Duration

	mu      sync.Mutex
	sweeps  []*Sweep
	queue   []cellRef
	leases  map[string]*lease
	seq     int64
	workers map[string]time.Time // worker id -> last seen

	claims, completes, heartbeats, expirations uint64

	closed    chan struct{}
	closeOnce sync.Once
}

// cellRef addresses one cell of one sweep.
type cellRef struct {
	sw  *Sweep
	idx int
}

// lease is one outstanding claim.
type lease struct {
	ref    cellRef
	worker string
	expiry time.Time
}

// NewCoordinator returns a coordinator scheduling cells against the
// shared store st (which it also serves at /store/{key}).
func NewCoordinator(st *store.Store, opts Options) *Coordinator {
	ttl := opts.LeaseTTL
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	c := &Coordinator{
		st:       st,
		leaseTTL: ttl,
		leases:   map[string]*lease{},
		workers:  map[string]time.Time{},
		closed:   make(chan struct{}),
	}
	go c.janitor()
	return c
}

// Store returns the shared content-addressed store the coordinator serves.
func (c *Coordinator) Store() *store.Store { return c.st }

// Close stops the lease janitor. Outstanding sweeps stop making progress
// once their workers disconnect; their checkpointed cells remain in the
// store for a later coordinator to resume from.
func (c *Coordinator) Close() { c.closeOnce.Do(func() { close(c.closed) }) }

// janitor expires leases even when no worker is polling, so a sweep whose
// entire fleet died still requeues (and a reconnecting fleet resumes it).
func (c *Coordinator) janitor() {
	period := c.leaseTTL / 2
	if period < 5*time.Millisecond {
		period = 5 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-c.closed:
			return
		case <-t.C:
			c.mu.Lock()
			c.expireLocked(time.Now())
			c.mu.Unlock()
		}
	}
}

// Submit expands the spec and enqueues its cells for the worker fleet,
// returning the Sweep handle the serve layer tracks. Cells enqueue in the
// spec's deterministic expansion order.
func (c *Coordinator) Submit(spec sweep.Spec) (*Sweep, error) {
	cells, err := spec.Cells()
	if err != nil {
		return nil, err
	}
	sw := &Sweep{
		c:         c,
		cells:     cells,
		traceID:   obs.NextTraceID(),
		states:    make([]sweep.CellState, len(cells)),
		remaining: len(cells),
		watch:     make(chan struct{}),
		done:      make(chan struct{}),
	}
	sweep.RecordRun()
	for i := range sw.states {
		sw.states[i] = sweep.CellPending
	}
	c.mu.Lock()
	c.sweeps = append(c.sweeps, sw)
	for i := range cells {
		c.queue = append(c.queue, cellRef{sw: sw, idx: i})
	}
	if len(cells) == 0 {
		close(sw.done)
	}
	c.mu.Unlock()
	return sw, nil
}

// claim hands the oldest pending cell to a worker under a fresh lease,
// along with the owning sweep's trace id (which the worker stamps on its
// spans). The bool is false when no work is available right now.
func (c *Coordinator) claim(worker string, now time.Time) (string, sweep.Cell, uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now)
	c.workers[worker] = now
	c.claims++
	mClaims.Inc()
	for len(c.queue) > 0 {
		ref := c.queue[0]
		c.queue = c.queue[1:]
		if ref.sw.states[ref.idx] != sweep.CellPending {
			continue
		}
		ref.sw.states[ref.idx] = sweep.CellLeased
		ref.sw.notifyLocked()
		sweep.RecordCellState(sweep.CellLeased)
		c.seq++
		id := fmt.Sprintf("lease-%d", c.seq)
		c.leases[id] = &lease{ref: ref, worker: worker, expiry: now.Add(c.leaseTTL)}
		return id, ref.sw.cells[ref.idx], ref.sw.traceID, true
	}
	return "", sweep.Cell{}, 0, false
}

// heartbeat extends a lease; ErrLeaseGone means the worker lost it (the
// cell is already requeued) and should abandon reporting for that cell.
func (c *Coordinator) heartbeat(leaseID string, now time.Time) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now)
	l, ok := c.leases[leaseID]
	if !ok {
		return ErrLeaseGone
	}
	l.expiry = now.Add(c.leaseTTL)
	c.workers[l.worker] = now
	c.heartbeats++
	mHeartbeats.Inc()
	return nil
}

// complete moves a leased cell to its terminal state. Only the current
// lease holder can complete a cell, so every cell reaches a terminal
// state exactly once even when a presumed-dead worker reports late.
func (c *Coordinator) complete(leaseID string, st sweep.CellState, errMsg string, now time.Time) error {
	switch st {
	case sweep.CellCached, sweep.CellComputed, sweep.CellFailed:
	default:
		return fmt.Errorf("fabric: %q is not a terminal cell state", st)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now)
	l, ok := c.leases[leaseID]
	if !ok {
		return ErrLeaseGone
	}
	delete(c.leases, leaseID)
	c.workers[l.worker] = now
	c.completes++
	mCompletes.Inc()
	sweep.RecordCellState(st)
	sw := l.ref.sw
	sw.states[l.ref.idx] = st
	if st == sweep.CellFailed && sw.first == "" {
		sw.first = errMsg
	}
	sw.remaining--
	if sw.remaining == 0 {
		close(sw.done)
	}
	sw.notifyLocked()
	return nil
}

// expireLocked requeues every cell whose lease outlived its TTL — the
// crash-recovery path. Callers hold c.mu.
func (c *Coordinator) expireLocked(now time.Time) {
	for id, l := range c.leases {
		if now.After(l.expiry) {
			delete(c.leases, id)
			l.ref.sw.states[l.ref.idx] = sweep.CellPending
			c.queue = append(c.queue, l.ref)
			c.expirations++
			mExpirations.Inc()
			l.ref.sw.notifyLocked()
		}
	}
}

// Stats is an observability snapshot of the coordinator (reported on the
// serve layer's /healthz).
type Stats struct {
	Sweeps      int    `json:"sweeps"`
	QueueDepth  int    `json:"queue_depth"`
	Leases      int    `json:"leases"`
	Workers     int    `json:"workers"` // distinct workers seen within 10 lease TTLs
	Claims      uint64 `json:"claims"`
	Completes   uint64 `json:"completes"`
	Heartbeats  uint64 `json:"heartbeats"`
	Expirations uint64 `json:"expirations"`
}

// Stats returns a consistent snapshot of queue and fleet counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	cutoff := time.Now().Add(-10 * c.leaseTTL)
	workers := 0
	for _, seen := range c.workers {
		if seen.After(cutoff) {
			workers++
		}
	}
	depth := 0
	for _, ref := range c.queue {
		if ref.sw.states[ref.idx] == sweep.CellPending {
			depth++
		}
	}
	return Stats{
		Sweeps: len(c.sweeps), QueueDepth: depth, Leases: len(c.leases), Workers: workers,
		Claims: c.claims, Completes: c.completes, Heartbeats: c.heartbeats, Expirations: c.expirations,
	}
}

// Sweep is one distributed sweep: the fabric-side counterpart of
// sweep.Run, exposing the same progress surface so the serve layer treats
// local and distributed sweeps uniformly. All state is guarded by the
// coordinator's lock.
type Sweep struct {
	c         *Coordinator
	cells     []sweep.Cell
	traceID   uint64
	states    []sweep.CellState
	first     string
	remaining int
	watch     chan struct{}
	done      chan struct{}
}

// Cells returns the sweep's expanded cells (shared slice; read-only).
func (s *Sweep) Cells() []sweep.Cell { return s.cells }

// TraceID returns the sweep's trace identity. It travels to workers in
// every claim response, so spans recorded on a remote worker carry the
// coordinator's id, and the serve layer echoes it in SSE progress events.
func (s *Sweep) TraceID() uint64 { return s.traceID }

// Done returns a channel closed when every cell has reached a terminal
// state.
func (s *Sweep) Done() <-chan struct{} { return s.done }

// Wait blocks until the sweep finishes and returns its final progress.
func (s *Sweep) Wait() sweep.Progress {
	<-s.done
	return s.Progress()
}

// States returns a copy of the per-cell states, index-aligned with Cells.
func (s *Sweep) States() []sweep.CellState {
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	out := make([]sweep.CellState, len(s.states))
	copy(out, s.states)
	return out
}

// Progress returns a consistent snapshot of the sweep.
func (s *Sweep) Progress() sweep.Progress {
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	p := sweep.Progress{Total: len(s.cells), Err: s.first}
	for _, st := range s.states {
		switch st {
		case sweep.CellCached:
			p.Cached++
		case sweep.CellComputed:
			p.Computed++
		case sweep.CellFailed:
			p.Failed++
		case sweep.CellSkipped:
			p.Skipped++
		case sweep.CellLeased:
			p.Leased++
		}
	}
	p.Done = p.Cached + p.Computed
	p.Finished = s.remaining == 0
	return p
}

// Changed returns a channel closed on the next state change; fetch it
// before snapshotting Progress to watch without missing updates.
func (s *Sweep) Changed() <-chan struct{} {
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	return s.watch
}

// notifyLocked wakes every Changed waiter. Callers hold c.mu.
func (s *Sweep) notifyLocked() {
	close(s.watch)
	s.watch = make(chan struct{})
}

// Handler returns the coordinator's HTTP surface: the worker protocol
// under /fabric/ and the shared store under /store/. The serve layer
// mounts it next to the figure and sweep endpoints.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /fabric/claim", c.handleClaim)
	mux.HandleFunc("POST /fabric/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /fabric/complete", c.handleComplete)
	mux.Handle("/store/", store.Handler(c.st))
	return mux
}
