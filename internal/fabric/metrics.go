package fabric

import "casq/internal/obs"

// Process-wide fabric metrics on the obs default registry, exposed by
// `casq serve` on GET /metrics. They mirror the per-coordinator struct
// counters reported on /healthz — the struct counters stay per-instance
// for the health snapshot, these aggregate across every coordinator in
// the process for scraping.
var (
	mClaims      = obs.Default().Counter("casq_fabric_claims_total", "Worker claim calls handled (including empty-queue polls).")
	mCompletes   = obs.Default().Counter("casq_fabric_completes_total", "Cells reported complete by workers.")
	mHeartbeats  = obs.Default().Counter("casq_fabric_heartbeats_total", "Lease heartbeats accepted.")
	mExpirations = obs.Default().Counter("casq_fabric_expirations_total", "Leases expired and requeued (crash recovery).")
)
