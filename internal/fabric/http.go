package fabric

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"casq/internal/sweep"
)

// claimRequest is the POST /fabric/claim body.
type claimRequest struct {
	Worker string `json:"worker"`
}

// claimResponse is the 200 body of a successful claim: the lease, its
// TTL (so the worker knows how often to heartbeat), the cell to run, and
// the owning sweep's trace id — the worker stamps it on every span it
// records for the cell, so a distributed trace stitches together across
// the claim/complete HTTP hops.
type claimResponse struct {
	LeaseID    string     `json:"lease_id"`
	LeaseTTLMS int64      `json:"lease_ttl_ms"`
	Cell       sweep.Cell `json:"cell"`
	TraceID    uint64     `json:"trace_id,omitempty"`
}

// heartbeatRequest is the POST /fabric/heartbeat body.
type heartbeatRequest struct {
	LeaseID string `json:"lease_id"`
}

// completeRequest is the POST /fabric/complete body. State must be a
// terminal sweep.CellState: cached, computed, or failed.
type completeRequest struct {
	LeaseID string          `json:"lease_id"`
	State   sweep.CellState `json:"state"`
	Error   string          `json:"error,omitempty"`
}

func decodeInto(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeJSONError(w, http.StatusBadRequest, "decode request: %v", err)
		return false
	}
	return true
}

func writeJSONError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (c *Coordinator) handleClaim(w http.ResponseWriter, r *http.Request) {
	var req claimRequest
	if !decodeInto(w, r, &req) {
		return
	}
	if req.Worker == "" {
		writeJSONError(w, http.StatusBadRequest, "claim: worker id required")
		return
	}
	leaseID, cell, traceID, ok := c.claim(req.Worker, time.Now())
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(claimResponse{
		LeaseID: leaseID, LeaseTTLMS: c.leaseTTL.Milliseconds(), Cell: cell, TraceID: traceID,
	})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if !decodeInto(w, r, &req) {
		return
	}
	if err := c.heartbeat(req.LeaseID, time.Now()); err != nil {
		writeJSONError(w, http.StatusGone, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req completeRequest
	if !decodeInto(w, r, &req) {
		return
	}
	if err := c.complete(req.LeaseID, req.State, req.Error, time.Now()); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrLeaseGone) {
			status = http.StatusGone
		}
		writeJSONError(w, status, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
