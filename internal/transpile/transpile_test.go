package transpile

import (
	"math"
	"testing"
	"testing/quick"

	"casq/internal/circuit"
	"casq/internal/device"
	"casq/internal/gates"
	"casq/internal/linalg"
	"casq/internal/sched"
	"casq/internal/sim"
)

// composeOnState applies a gate sequence to a 2-qubit statevector with
// qubit 0 as the low bit.
func composeOnState(seq []GateSpec, psi linalg.Vector) {
	for _, g := range seq {
		if gates.NumQubits(g.Gate) == 2 {
			m := gates.Matrix2Q(g.Gate, g.Params...)
			psi.Apply2Q(m, g.Qubits[0], g.Qubits[1])
		} else {
			m := gates.Matrix1Q(g.Gate, g.Params...)
			psi.Apply1Q(m, g.Qubits[0])
		}
	}
}

// matrixOf builds the full 4x4 matrix of a sequence by applying it to basis
// states (qubit0 = low bit).
func matrixOf(seq []GateSpec) linalg.Matrix {
	m := linalg.NewMatrix(4)
	for b := 0; b < 4; b++ {
		psi := make(linalg.Vector, 4)
		psi[b] = 1
		composeOnState(seq, psi)
		for i := 0; i < 4; i++ {
			m.Set(i, b, psi[i])
		}
	}
	return m
}

// refMatrix builds the reference matrix of a 2q gate on qubits (0,1) in the
// same low-bit basis.
func refMatrix(k gates.Kind, q0, q1 int, params ...float64) linalg.Matrix {
	m := linalg.NewMatrix(4)
	for b := 0; b < 4; b++ {
		psi := make(linalg.Vector, 4)
		psi[b] = 1
		psi.Apply2Q(gates.Matrix2Q(k, params...), q0, q1)
		for i := 0; i < 4; i++ {
			m.Set(i, b, psi[i])
		}
	}
	return m
}

func TestCNOTViaECR(t *testing.T) {
	got := matrixOf(CNOTViaECR(0, 1))
	want := refMatrix(gates.CX, 0, 1)
	if !linalg.EqualUpToPhase(got, want, 1e-9) {
		t.Errorf("CNOT dressing wrong:\n%v\nvs\n%v", got, want)
	}
	// Reversed operands too.
	got = matrixOf(CNOTViaECR(1, 0))
	want = refMatrix(gates.CX, 1, 0)
	if !linalg.EqualUpToPhase(got, want, 1e-9) {
		t.Error("CNOT dressing wrong for reversed operands")
	}
}

func TestUcanVia3CNOT(t *testing.T) {
	cases := [][3]float64{
		{0.3, -0.2, 0.7},
		{0, 0, 0},
		{math.Pi / 4, math.Pi / 4, math.Pi / 4},
		{-0.225, -0.225, -0.225}, // the Heisenberg step angles
		{1.1, 0.05, -0.9},
	}
	for _, c := range cases {
		got := matrixOf(UcanVia3CNOT(0, 1, c[0], c[1], c[2]))
		want := refMatrix(gates.Ucan, 0, 1, c[0], c[1], c[2])
		if !linalg.EqualUpToPhase(got, want, 1e-9) {
			t.Errorf("Ucan(%v) decomposition wrong", c)
		}
	}
}

func TestUcanVia3CNOTProperty(t *testing.T) {
	f := func(ai, bi, ci int16) bool {
		a := float64(ai) / 20000 * math.Pi
		b := float64(bi) / 20000 * math.Pi
		c := float64(ci) / 20000 * math.Pi
		got := matrixOf(UcanVia3CNOT(0, 1, a, b, c))
		want := refMatrix(gates.Ucan, 0, 1, a, b, c)
		return linalg.EqualUpToPhase(got, want, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLowerCircuitPreservesLogic(t *testing.T) {
	o := device.DefaultOptions()
	o.DeltaMax, o.QuasistaticSigma = 0, 0
	o.Err1Q, o.Err2Q, o.ReadoutErr = 0, 0, 0
	o.T1Min, o.T1Max, o.T2Factor = 1e12, 1e12, 2
	dev := device.NewLine("lower", 4, o)

	base := circuit.New(4, 0)
	base.AddLayer(circuit.OneQubitLayer).H(0).H(2)
	l := base.AddLayer(circuit.TwoQubitLayer)
	l.CX(0, 1)
	l.Ucan(2, 3, 0.3, -0.1, 0.4)
	base.AddLayer(circuit.TwoQubitLayer).ECR(1, 2)

	lowered := LowerCircuit(base)
	if err := lowered.Validate(); err != nil {
		t.Fatal(err)
	}
	if lowered.CountGates(gates.CX) != 0 || lowered.CountGates(gates.Ucan) != 0 {
		t.Error("lowering left logical gates behind")
	}
	if lowered.CountGates(gates.ECR) != 1+1+3 {
		t.Errorf("expected 5 ECR gates, got %d", lowered.CountGates(gates.ECR))
	}

	sched.Schedule(base, dev)
	sched.Schedule(lowered, dev)
	r := sim.New(dev, sim.Ideal())
	want, err := r.FinalState(base)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.FinalState(lowered)
	if err != nil {
		t.Fatal(err)
	}
	if f := linalg.FidelityPure(got, want); f < 1-1e-9 {
		t.Errorf("lowered circuit diverges: fidelity %.9f", f)
	}
}

func TestLowerCircuitPassThrough(t *testing.T) {
	base := circuit.New(2, 0)
	base.AddLayer(circuit.TwoQubitLayer).ECR(0, 1)
	base.AddLayer(circuit.OneQubitLayer).H(0)
	lowered := LowerCircuit(base)
	if lowered.Depth() != base.Depth() {
		t.Error("pure-native circuit should pass through unchanged")
	}
}
