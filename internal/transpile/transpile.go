// Package transpile lowers logical gates to the hardware-native basis
// {RZ, SX, X, ECR}: CNOT via the echoed-cross-resonance dressing, and the
// canonical gate Ucan = exp[i(a XX + b YY + c ZZ)] via the 3-CNOT Cartan
// circuit of Vatan & Williams reproduced in paper Fig. 1d (Rz(2c - pi/2) on
// the first qubit, Ry(pi/2 - 2a) and Ry(2b - pi/2) on the second).
package transpile

import (
	"math"

	"casq/internal/circuit"
	"casq/internal/gates"
)

// GateSpec is one lowered gate: kind + operands + params.
type GateSpec struct {
	Gate   gates.Kind
	Qubits []int
	Params []float64
}

// CNOTViaECR returns the native sequence implementing CNOT(c, t) up to
// global phase:
//
//	CNOT = [Rz(-pi/2) X on c  (x)  Rx(-pi/2) on t] . ECR(c, t)
//
// (time order: ECR first, then the single-qubit dressing), verified
// numerically in the tests.
func CNOTViaECR(c, t int) []GateSpec {
	return []GateSpec{
		{Gate: gates.ECR, Qubits: []int{c, t}},
		{Gate: gates.XGate, Qubits: []int{c}},
		{Gate: gates.RZ, Qubits: []int{c}, Params: []float64{-math.Pi / 2}},
		{Gate: gates.RX, Qubits: []int{t}, Params: []float64{-math.Pi / 2}},
	}
}

// UcanVia3CNOT returns the 3-CNOT Cartan decomposition of
// Ucan(alpha, beta, gamma) = exp[i(alpha XX + beta YY + gamma ZZ)] on
// (q0, q1), following Vatan-Williams / paper Fig. 1d (exact convention
// pinned by the numerical round-trip test; this package's Ucan uses
// exp(+i gamma ZZ), so the middle Rz angle appears as pi/2 - 2 gamma where
// the paper — with the opposite phase convention — writes 2 gamma - pi/2;
// the two Ry angles match the paper's Ry(pi/2 - 2 alpha) and
// Ry(2 beta - pi/2) verbatim):
//
//	Rz(pi/2) on q1; CNOT(q1, q0);
//	Rz(pi/2 - 2 gamma) on q0, Ry(pi/2 - 2 alpha) on q1;
//	CNOT(q0, q1); Ry(2 beta - pi/2) on q1;
//	CNOT(q1, q0); Rz(-pi/2) on q0
//
// up to global phase.
func UcanVia3CNOT(q0, q1 int, alpha, beta, gamma float64) []GateSpec {
	return []GateSpec{
		{Gate: gates.RZ, Qubits: []int{q1}, Params: []float64{math.Pi / 2}},
		{Gate: gates.CX, Qubits: []int{q1, q0}},
		{Gate: gates.RZ, Qubits: []int{q0}, Params: []float64{math.Pi/2 - 2*gamma}},
		{Gate: gates.RY, Qubits: []int{q1}, Params: []float64{math.Pi/2 - 2*alpha}},
		{Gate: gates.CX, Qubits: []int{q0, q1}},
		{Gate: gates.RY, Qubits: []int{q1}, Params: []float64{2*beta - math.Pi/2}},
		{Gate: gates.CX, Qubits: []int{q1, q0}},
		{Gate: gates.RZ, Qubits: []int{q0}, Params: []float64{-math.Pi / 2}},
	}
}

// LowerCircuit rewrites every CX and Ucan in the circuit into native layers
// (each lowered gate becomes its own alternation of 2q and 1q layers).
// ECR, RZZ and 1q gates pass through unchanged. The result is a circuit in
// the hardware-native basis, suitable for pulse-faithful simulation.
func LowerCircuit(c *circuit.Circuit) *circuit.Circuit {
	out := circuit.New(c.NQubits, c.NCBits)
	for _, l := range c.Layers {
		if l.Kind != circuit.TwoQubitLayer {
			out.Layers = append(out.Layers, l.Clone())
			continue
		}
		var lowered [][]GateSpec
		passthrough := circuit.Layer{Kind: circuit.TwoQubitLayer}
		needsLowering := false
		for _, in := range l.Instrs {
			switch in.Gate {
			case gates.CX:
				lowered = append(lowered, CNOTViaECR(in.Qubits[0], in.Qubits[1]))
				needsLowering = true
			case gates.Ucan:
				seq := UcanVia3CNOT(in.Qubits[0], in.Qubits[1], in.Params[0], in.Params[1], in.Params[2])
				// Expand the inner CNOTs to ECR as well.
				var flat []GateSpec
				for _, g := range seq {
					if g.Gate == gates.CX {
						flat = append(flat, CNOTViaECR(g.Qubits[0], g.Qubits[1])...)
					} else {
						flat = append(flat, g)
					}
				}
				lowered = append(lowered, flat)
				needsLowering = true
			default:
				passthrough.Add(in.Clone())
			}
		}
		if !needsLowering {
			out.Layers = append(out.Layers, l.Clone())
			continue
		}
		if len(passthrough.Instrs) > 0 {
			out.Layers = append(out.Layers, passthrough)
		}
		// Emit each lowered gate as alternating layers. Parallel lowered
		// gates are serialized here for simplicity; scheduling merges
		// nothing but correctness is preserved.
		for _, seq := range lowered {
			emitAlternating(out, seq)
		}
	}
	return out
}

// emitAlternating appends the gate sequence as alternating 1q/2q layers.
func emitAlternating(out *circuit.Circuit, seq []GateSpec) {
	var cur *circuit.Layer
	curKind := circuit.LayerKind(-1)
	for _, g := range seq {
		kind := circuit.OneQubitLayer
		if gates.NumQubits(g.Gate) == 2 {
			kind = circuit.TwoQubitLayer
		}
		needNew := cur == nil || kind != curKind
		if !needNew {
			// Also split when the qubit is already used in this layer.
			used := cur.ActiveQubits()
			for _, q := range g.Qubits {
				if used[q] {
					needNew = true
				}
			}
		}
		if needNew {
			cur = out.AddLayer(kind)
			curKind = kind
		}
		cur.Add(circuit.Instruction{Gate: g.Gate, Qubits: append([]int(nil), g.Qubits...), Params: append([]float64(nil), g.Params...)})
	}
}
