package qgraph

import (
	"testing"
	"testing/quick"
)

func line(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestEdgesAndNeighbors(t *testing.T) {
	g := line(4)
	if !g.HasEdge(1, 2) || g.HasEdge(0, 2) {
		t.Error("edge membership wrong")
	}
	nb := g.Neighbors(1)
	if len(nb) != 2 || nb[0] != 0 || nb[1] != 2 {
		t.Errorf("neighbors(1) = %v", nb)
	}
	if g.Degree(0) != 1 || g.Degree(1) != 2 {
		t.Error("degrees wrong")
	}
	if len(g.Edges()) != 3 {
		t.Error("edge count wrong")
	}
}

func TestBipartite(t *testing.T) {
	if !line(5).IsBipartite() {
		t.Error("path should be bipartite")
	}
	tri := New(3)
	tri.AddEdge(0, 1)
	tri.AddEdge(1, 2)
	tri.AddEdge(0, 2)
	if tri.IsBipartite() {
		t.Error("triangle should not be bipartite")
	}
	// Even cycles are bipartite, odd are not.
	c6 := New(6)
	for i := 0; i < 6; i++ {
		c6.AddEdge(i, (i+1)%6)
	}
	if !c6.IsBipartite() {
		t.Error("C6 should be bipartite")
	}
}

func TestComponents(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(3, 4)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components: %v", comps)
	}
	if len(comps[0]) != 2 || comps[1][0] != 2 {
		t.Errorf("components: %v", comps)
	}
}

func TestSubgraph(t *testing.T) {
	g := line(5)
	s, order := g.Subgraph([]int{1, 2, 4})
	if s.N != 3 || len(order) != 3 {
		t.Fatal("subgraph shape wrong")
	}
	// 1-2 adjacent (mapped to 0-1); 4 isolated.
	if !s.HasEdge(0, 1) || s.Degree(2) != 0 {
		t.Errorf("subgraph edges wrong: %v", s.Edges())
	}
}

func TestGreedyColorRespectsConstraints(t *testing.T) {
	g := line(6)
	fixed := Coloring{2: 1} // pin node 2 to color 1
	forbidden := map[int][]int{0: {0}, 1: {0}, 3: {0}, 4: {0}, 5: {0}}
	c := GreedyColor(g, []int{0, 1, 3, 4, 5}, fixed, forbidden)
	if c[2] != 1 {
		t.Error("fixed color changed")
	}
	for n := 0; n < 6; n++ {
		if n != 2 && c[n] == 0 {
			t.Errorf("forbidden color used on %d", n)
		}
	}
	if ok, bad := ValidateColoring(g, c); !ok {
		t.Errorf("invalid coloring on edge %v: %v", bad, c)
	}
}

func TestGreedyColorProperty(t *testing.T) {
	// On random graphs, greedy coloring (no fixed, no forbidden) is always
	// valid and uses at most maxDegree+1 colors.
	f := func(seed int64) bool {
		n := 8
		g := New(n)
		s := seed
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s = s*6364136223846793005 + 1442695040888963407
				if (s>>33)&3 == 0 {
					g.AddEdge(i, j)
				}
			}
		}
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		c := GreedyColor(g, order, nil, nil)
		if ok, _ := ValidateColoring(g, c); !ok {
			return false
		}
		maxDeg := 0
		for i := 0; i < n; i++ {
			if d := g.Degree(i); d > maxDeg {
				maxDeg = d
			}
		}
		return c.MaxColor() <= maxDeg
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDegreeOrder(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	order := DegreeOrder(g, []int{0, 1, 2, 3})
	if order[0] != 1 {
		t.Errorf("highest-degree node should come first: %v", order)
	}
}

func TestValidateColoringDetectsConflict(t *testing.T) {
	g := line(3)
	bad := Coloring{0: 1, 1: 1}
	if ok, edge := ValidateColoring(g, bad); ok || edge != [2]int{0, 1} {
		t.Error("conflict not detected")
	}
}

func TestDistances(t *testing.T) {
	// Line 0-1-2-3 plus an isolated node 4.
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	want := []int{0, 1, 2, 3, -1}
	got := g.Distances(0)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Distances(0) = %v, want %v", got, want)
		}
	}
	if d := g.Distances(-1); d[0] != -1 {
		t.Errorf("out-of-range source should mark everything unreachable: %v", d)
	}
	all := g.AllDistances()
	for i := 0; i < g.N; i++ {
		if all[i][i] != 0 {
			t.Errorf("AllDistances()[%d][%d] = %d, want 0", i, i, all[i][i])
		}
		for j := 0; j < g.N; j++ {
			if all[i][j] != all[j][i] {
				t.Errorf("distance matrix not symmetric at (%d,%d)", i, j)
			}
		}
	}
	if all[1][3] != 2 || all[4][2] != -1 {
		t.Errorf("unexpected AllDistances: %v", all)
	}
}
