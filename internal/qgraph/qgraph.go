// Package qgraph provides the small undirected-graph toolkit used to build
// device crosstalk graphs and to solve the constrained coloring problem at
// the heart of the CA-DD pass (paper Algorithm 1 / Fig. 5): idle qubits must
// receive colors (Walsh sequence indices) such that no two crosstalk-coupled
// qubits share a color, subject to pre-assigned colors on gate qubits.
package qgraph

import (
	"fmt"
	"sort"
)

// Graph is an undirected graph on nodes 0..N-1 with an adjacency set.
type Graph struct {
	N   int
	adj []map[int]bool
}

// New returns an empty graph on n nodes.
func New(n int) *Graph {
	g := &Graph{N: n, adj: make([]map[int]bool, n)}
	for i := range g.adj {
		g.adj[i] = make(map[int]bool)
	}
	return g
}

// AddEdge inserts the undirected edge (a, b). Self-loops are rejected.
func (g *Graph) AddEdge(a, b int) {
	if a == b {
		panic(fmt.Sprintf("qgraph: self-loop on node %d", a))
	}
	if a < 0 || a >= g.N || b < 0 || b >= g.N {
		panic(fmt.Sprintf("qgraph: edge (%d,%d) out of range [0,%d)", a, b, g.N))
	}
	g.adj[a][b] = true
	g.adj[b][a] = true
}

// HasEdge reports whether (a, b) is an edge.
func (g *Graph) HasEdge(a, b int) bool {
	if a < 0 || a >= g.N || b < 0 || b >= g.N {
		return false
	}
	return g.adj[a][b]
}

// Neighbors returns the sorted neighbor list of node a.
func (g *Graph) Neighbors(a int) []int {
	out := make([]int, 0, len(g.adj[a]))
	for b := range g.adj[a] {
		out = append(out, b)
	}
	sort.Ints(out)
	return out
}

// Degree returns the number of neighbors of a.
func (g *Graph) Degree(a int) int { return len(g.adj[a]) }

// Edges returns all edges (a < b), sorted.
func (g *Graph) Edges() [][2]int {
	var out [][2]int
	for a := 0; a < g.N; a++ {
		for b := range g.adj[a] {
			if a < b {
				out = append(out, [2]int{a, b})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// IsBipartite reports whether the graph is 2-colorable.
func (g *Graph) IsBipartite() bool {
	color := make([]int, g.N)
	for i := range color {
		color[i] = -1
	}
	for s := 0; s < g.N; s++ {
		if color[s] != -1 {
			continue
		}
		color[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for v := range g.adj[u] {
				if color[v] == -1 {
					color[v] = 1 - color[u]
					queue = append(queue, v)
				} else if color[v] == color[u] {
					return false
				}
			}
		}
	}
	return true
}

// Components returns the connected components, each as a sorted node list,
// ordered by smallest member.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.N)
	var comps [][]int
	for s := 0; s < g.N; s++ {
		if seen[s] {
			continue
		}
		var comp []int
		queue := []int{s}
		seen[s] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			comp = append(comp, u)
			for v := range g.adj[u] {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// Subgraph returns the induced subgraph on the given nodes, along with the
// mapping from new node index to original node id.
func (g *Graph) Subgraph(nodes []int) (*Graph, []int) {
	idx := make(map[int]int, len(nodes))
	order := append([]int(nil), nodes...)
	sort.Ints(order)
	for i, n := range order {
		idx[n] = i
	}
	s := New(len(order))
	for i, n := range order {
		for b := range g.adj[n] {
			if j, ok := idx[b]; ok && i < j {
				s.AddEdge(i, j)
			}
		}
	}
	return s, order
}

// Distances returns the BFS hop distance from src to every node; -1 marks
// nodes unreachable from src. Used by the correlation-spectroscopy figures
// to bin qubit pairs by coupling-graph distance.
func (g *Graph) Distances(src int) []int {
	dist := make([]int, g.N)
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || src >= g.N {
		return dist
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for v := range g.adj[u] {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// AllDistances returns the full pairwise hop-distance matrix (one BFS per
// node; -1 for unreachable pairs).
func (g *Graph) AllDistances() [][]int {
	out := make([][]int, g.N)
	for i := range out {
		out[i] = g.Distances(i)
	}
	return out
}

// Coloring maps node -> color index (>= 0); nodes absent from the map are
// uncolored.
type Coloring map[int]int

// GreedyColor colors the nodes in `order` subject to: (a) pre-assigned
// colors in `fixed` must be respected and are never changed; (b) adjacent
// nodes (in g) never share a color; (c) colors listed in forbidden[node]
// must not be used for that node. It prefers the smallest admissible color
// (minimizing the Walsh hierarchy level, per the paper's heuristic) and
// returns the resulting coloring over order plus all fixed nodes.
func GreedyColor(g *Graph, order []int, fixed Coloring, forbidden map[int][]int) Coloring {
	c := Coloring{}
	for n, col := range fixed {
		c[n] = col
	}
	for _, n := range order {
		if _, done := c[n]; done {
			continue
		}
		used := map[int]bool{}
		for b := range g.adj[n] {
			if col, ok := c[b]; ok {
				used[col] = true
			}
		}
		for _, col := range forbidden[n] {
			used[col] = true
		}
		col := 0
		for used[col] {
			col++
		}
		c[n] = col
	}
	return c
}

// ValidateColoring checks that no edge of g connects same-colored nodes
// among the colored nodes, returning the first violating edge if any.
func ValidateColoring(g *Graph, c Coloring) (ok bool, bad [2]int) {
	for _, e := range g.Edges() {
		ca, aok := c[e[0]]
		cb, bok := c[e[1]]
		if aok && bok && ca == cb {
			return false, e
		}
	}
	return true, [2]int{-1, -1}
}

// MaxColor returns the largest color index used, or -1 for an empty
// coloring.
func (c Coloring) MaxColor() int {
	m := -1
	for _, col := range c {
		if col > m {
			m = col
		}
	}
	return m
}

// DegreeOrder returns nodes sorted by decreasing degree (a common greedy
// coloring heuristic), restricted to the provided subset.
func DegreeOrder(g *Graph, subset []int) []int {
	out := append([]int(nil), subset...)
	sort.Slice(out, func(i, j int) bool {
		di, dj := g.Degree(out[i]), g.Degree(out[j])
		if di != dj {
			return di > dj
		}
		return out[i] < out[j]
	})
	return out
}
