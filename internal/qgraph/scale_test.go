// Scale tests: the qgraph toolkit was previously only exercised on
// <= 12-qubit toys; these run coloring, components, and bipartiteness on
// the 127-qubit Eagle heavy-hex lattice (an external test package so it
// can build the graph through the device generators without an import
// cycle — device imports qgraph).
package qgraph_test

import (
	"testing"

	"casq/internal/device"
	"casq/internal/qgraph"
)

func eagleGraphs(t *testing.T) (nn, crosstalk *qgraph.Graph, dev *device.Device) {
	t.Helper()
	dev, err := device.NewBackend("heavyhex127")
	if err != nil {
		t.Fatal(err)
	}
	return dev.CouplingGraph(), dev.CrosstalkGraph(), dev
}

// TestEagleComponents: the 127-qubit lattice is one connected component,
// and removing nothing else about it changes under the crosstalk overlay.
func TestEagleComponents(t *testing.T) {
	nn, xt, dev := eagleGraphs(t)
	if comps := nn.Components(); len(comps) != 1 || len(comps[0]) != dev.NQubits {
		t.Fatalf("NN graph: %d components, first has %d nodes", len(comps), len(comps[0]))
	}
	if comps := xt.Components(); len(comps) != 1 {
		t.Fatalf("crosstalk graph: %d components", len(comps))
	}
	// Edge counts: 144 couplers on the Eagle lattice plus the seeded NNN
	// collisions.
	if got := len(nn.Edges()); got != 144 {
		t.Errorf("Eagle NN graph has %d edges, want 144", got)
	}
	if got, want := len(xt.Edges()), 144+len(dev.NNNEdges); got != want {
		t.Errorf("crosstalk graph has %d edges, want %d", got, want)
	}
}

// TestEagleBipartite: heavy-hex NN cycles all have length 12, so the NN
// graph is bipartite; NNN collision edges connect even-distance pairs and
// must break two-colorability (that is exactly why CA-DD needs more than
// two Walsh indices on collision lattices).
func TestEagleBipartite(t *testing.T) {
	nn, xt, dev := eagleGraphs(t)
	if !nn.IsBipartite() {
		t.Error("heavy-hex NN graph must be bipartite")
	}
	if len(dev.NNNEdges) > 0 && xt.IsBipartite() {
		t.Error("crosstalk graph with NNN collisions should not be bipartite")
	}
}

// TestEagleGreedyColoringValid runs the constrained greedy coloring over
// the full 127-qubit crosstalk graph in degree order and validates it —
// the Algorithm 1 inner step at real-device scale.
func TestEagleGreedyColoringValid(t *testing.T) {
	_, xt, dev := eagleGraphs(t)
	all := make([]int, dev.NQubits)
	for i := range all {
		all[i] = i
	}
	order := qgraph.DegreeOrder(xt, all)
	if len(order) != dev.NQubits {
		t.Fatalf("degree order lost nodes: %d", len(order))
	}
	c := qgraph.GreedyColor(xt, order, nil, nil)
	if len(c) != dev.NQubits {
		t.Fatalf("coloring covers %d nodes, want %d", len(c), dev.NQubits)
	}
	if ok, bad := qgraph.ValidateColoring(xt, c); !ok {
		t.Fatalf("invalid coloring at edge %v", bad)
	}
	// Heavy-hex with sparse collisions colors with few colors; the greedy
	// bound is maxdeg+1 = 5 but in practice 3-4.
	if m := c.MaxColor(); m > 4 {
		t.Errorf("greedy used %d colors on heavy-hex, expected <= 5 total", m+1)
	}

	// Constrained variant: pre-assigned colors on the first plaquette and
	// forbidden colors on its neighbors must be honored at scale.
	fixed := qgraph.Coloring{0: 2, 1: 3}
	forbidden := map[int][]int{2: {0}, 14: {0, 1}}
	c2 := qgraph.GreedyColor(xt, order, fixed, forbidden)
	if c2[0] != 2 || c2[1] != 3 {
		t.Error("fixed colors overridden")
	}
	for n, cols := range forbidden {
		for _, col := range cols {
			if c2[n] == col {
				t.Errorf("node %d got forbidden color %d", n, col)
			}
		}
	}
	if ok, bad := qgraph.ValidateColoring(xt, c2); !ok {
		t.Fatalf("constrained coloring invalid at %v", bad)
	}
}

// TestEagleSubgraph induces a plaquette-sized subgraph and checks the
// index mapping survives the round trip.
func TestEagleSubgraph(t *testing.T) {
	nn, _, _ := eagleGraphs(t)
	nodes := []int{0, 1, 2, 3, 14, 18, 19, 20, 21, 15}
	sub, order := nn.Subgraph(nodes)
	if sub.N != len(nodes) {
		t.Fatalf("subgraph has %d nodes", sub.N)
	}
	for i, orig := range order {
		for j, orig2 := range order {
			if sub.HasEdge(i, j) != nn.HasEdge(orig, orig2) {
				t.Fatalf("edge (%d,%d) mapping mismatch for originals (%d,%d)", i, j, orig, orig2)
			}
		}
	}
}
