package stab

import (
	"math"
	"math/bits"
	"testing"

	"casq/internal/circuit"
	"casq/internal/device"
	"casq/internal/gates"
	"casq/internal/pauli"
	"casq/internal/sched"
	"casq/internal/sim"
)

// drawBits draws n 64-shot masks from a Bernoulli table and returns the
// total set-bit count.
func drawBits(b *bern, r *wordRNG, n int) int {
	ones := 0
	for i := 0; i < n; i++ {
		ones += bits.OnesCount64(b.draw(r))
	}
	return ones
}

// TestBernoulliMaskFrequencies checks the word-mask Bernoulli sampler on
// both paths (sparse geometric gaps and dense binary expansion): the
// set-bit frequency over a large fixed-seed sample must sit within 5
// standard errors of p.
func TestBernoulliMaskFrequencies(t *testing.T) {
	const words = 4000
	n := float64(words * 64)
	for _, p := range []float64{0, 0.0005, 0.004, 0.04, 0.06, 0.25, 0.5, 0.75, 1} {
		b := makeBern(p)
		r := &wordRNG{}
		r.seed(12345)
		got := float64(drawBits(&b, r, words)) / n
		tol := 5 * math.Sqrt(p*(1-p)/n)
		if math.Abs(got-p) > tol {
			t.Errorf("p=%g: frequency %.6f off by more than %.6f", p, got, tol)
		}
	}
}

// chanProgram builds a minimal program around the given ops (no Cliffords,
// no tableau needed for channel sampling).
func chanProgram(nq, ncb int, ops []op, meas []measInfo) (*program, *blockProgram) {
	p := &program{nq: nq, ncb: ncb, words: (nq + 63) / 64, ops: ops, meas: meas}
	return p, p.blockPlan()
}

// TestChan1MaskFrequencies is the alias/threshold-table property test for
// single-qubit channels: sampled X/Y/Z outcome frequencies over many
// blocks must match the PTA-derived probabilities under a chi-square
// bound.
func TestChan1MaskFrequencies(t *testing.T) {
	const pX, pY, pZ = 0.02, 0.03, 0.05
	p, bp := chanProgram(1, 0, []op{
		{kind: opChan1, q0: 0, thrX: pX, thrXY: pX + pY, thrXYZ: pX + pY + pZ},
	}, nil)
	f := newBlockFrame(p)
	const blocks = 4000
	var nI, nX, nY, nZ float64
	for b := 0; b < blocks; b++ {
		f.reset(sim.BlockSeed(7, b))
		f.run(bp)
		x, z := f.x[0], f.z[0]
		nX += float64(bits.OnesCount64(x &^ z))
		nY += float64(bits.OnesCount64(x & z))
		nZ += float64(bits.OnesCount64(z &^ x))
		nI += float64(bits.OnesCount64(^(x | z)))
	}
	n := float64(blocks * 64)
	chi2 := 0.0
	for _, c := range []struct{ obs, p float64 }{
		{nI, 1 - pX - pY - pZ}, {nX, pX}, {nY, pY}, {nZ, pZ},
	} {
		exp := c.p * n
		chi2 += (c.obs - exp) * (c.obs - exp) / exp
	}
	// 3 degrees of freedom; 25 is far beyond the 99.99th percentile.
	if chi2 > 25 {
		t.Errorf("chan1 outcome chi-square = %.2f (I=%.0f X=%.0f Y=%.0f Z=%.0f of %.0f)",
			chi2, nI, nX, nY, nZ, n)
	}
}

// TestChan1PureZFastPath covers the zOnly short-circuit (the coherent
// dephasing channels): only the Z plane moves, at rate thrXYZ.
func TestChan1PureZFastPath(t *testing.T) {
	const pZ = 0.04
	p, bp := chanProgram(1, 0, []op{{kind: opChan1, q0: 0, thrXYZ: pZ}}, nil)
	f := newBlockFrame(p)
	const blocks = 4000
	ones := 0
	for b := 0; b < blocks; b++ {
		f.reset(sim.BlockSeed(13, b))
		f.run(bp)
		if f.x[0] != 0 {
			t.Fatal("pure-Z channel touched the X plane")
		}
		ones += bits.OnesCount64(f.z[0])
	}
	n := float64(blocks * 64)
	got := float64(ones) / n
	if tol := 5 * math.Sqrt(pZ*(1-pZ)/n); math.Abs(got-pZ) > tol {
		t.Errorf("pure-Z rate %.6f, want %.6f +/- %.6f", got, pZ, tol)
	}
}

// TestZZMaskFrequencies checks the correlated Z(x)Z channel: both qubits'
// Z planes flip on exactly the same shots, at the derived rate.
func TestZZMaskFrequencies(t *testing.T) {
	const pZZ = 0.07
	p, bp := chanProgram(2, 0, []op{{kind: opZZ, q0: 0, q1: 1, prob: pZZ}}, nil)
	f := newBlockFrame(p)
	const blocks = 4000
	ones := 0
	for b := 0; b < blocks; b++ {
		f.reset(sim.BlockSeed(21, b))
		f.run(bp)
		if f.z[0] != f.z[1] {
			t.Fatal("ZZ flips decorrelated between the qubits")
		}
		if f.x[0] != 0 || f.x[1] != 0 {
			t.Fatal("ZZ channel touched an X plane")
		}
		ones += bits.OnesCount64(f.z[0])
	}
	n := float64(blocks * 64)
	got := float64(ones) / n
	if tol := 5 * math.Sqrt(pZZ*(1-pZZ)/n); math.Abs(got-pZZ) > tol {
		t.Errorf("ZZ rate %.6f, want %.6f +/- %.6f", got, pZZ, tol)
	}
}

// TestDepol2MaskFrequencies checks the two-qubit depolarizing table: the
// event rate matches prob and the 15 non-identity Pauli pairs are drawn
// roughly uniformly (chi-square over the pair categories).
func TestDepol2MaskFrequencies(t *testing.T) {
	const pD = 0.12
	p, bp := chanProgram(2, 0, []op{{kind: opDepol2, q0: 0, q1: 1, prob: pD}}, nil)
	f := newBlockFrame(p)
	const blocks = 6000
	var cat [16]float64
	for b := 0; b < blocks; b++ {
		f.reset(sim.BlockSeed(33, b))
		f.run(bp)
		for s := 0; s < 64; s++ {
			k0 := int(f.x[0]>>uint(s))&1 | int(f.z[0]>>uint(s))&1<<1
			k1 := int(f.x[1]>>uint(s))&1 | int(f.z[1]>>uint(s))&1<<1
			cat[k0*4+k1]++
		}
	}
	n := float64(blocks * 64)
	chi2 := 0.0
	for k, obs := range cat {
		exp := pD / 15 * n
		if k == 0 {
			exp = (1 - pD) * n
		}
		chi2 += (obs - exp) * (obs - exp) / exp
	}
	// 15 degrees of freedom; 45 is far beyond the 99.99th percentile.
	if chi2 > 45 {
		t.Errorf("depol2 outcome chi-square = %.2f (categories %v)", chi2, cat)
	}
}

// TestMeasureMaskFrequencies covers the measurement tables: deterministic
// reference outcomes with readout-error flips at the calibrated rate, and
// nondeterministic outcomes redrawn 50/50 with the branch-flip stabilizer
// applied to exactly the redrawn shots.
func TestMeasureMaskFrequencies(t *testing.T) {
	// Deterministic ref=1 with 8% readout flip.
	const pRO = 0.08
	p, bp := chanProgram(1, 1,
		[]op{{kind: opMeasure, q0: 0, cbit: 0, prob: pRO, mi: 0}},
		[]measInfo{{ref: 1, det: true}})
	f := newBlockFrame(p)
	const blocks = 4000
	zeros := 0
	for b := 0; b < blocks; b++ {
		f.reset(sim.BlockSeed(41, b))
		f.run(bp)
		zeros += 64 - bits.OnesCount64(f.cbits[0])
	}
	n := float64(blocks * 64)
	got := float64(zeros) / n
	if tol := 5 * math.Sqrt(pRO*(1-pRO)/n); math.Abs(got-pRO) > tol {
		t.Errorf("readout flip rate %.6f, want %.6f +/- %.6f", got, pRO, tol)
	}

	// Nondeterministic: outcomes redraw 50/50, and the recorded
	// anticommuting stabilizer (X on qubit 1 here) flips on exactly the
	// redrawn shots — so qubit 1's X plane must equal the outcome word.
	p2, bp2 := chanProgram(2, 1,
		[]op{{kind: opMeasure, q0: 0, cbit: 0, prob: 0, mi: 0}},
		[]measInfo{{ref: 0, det: false, fx: []uint64{0b10}, fz: []uint64{0}}})
	f2 := newBlockFrame(p2)
	ones := 0
	for b := 0; b < blocks; b++ {
		f2.reset(sim.BlockSeed(43, b))
		f2.run(bp2)
		if f2.x[1] != f2.cbits[0] {
			t.Fatal("branch-flip stabilizer not applied to exactly the redrawn shots")
		}
		ones += bits.OnesCount64(f2.cbits[0])
	}
	got = float64(ones) / n
	if tol := 5 * math.Sqrt(0.25/n); math.Abs(got-0.5) > tol {
		t.Errorf("nondeterministic outcome rate %.6f, want 0.5 +/- %.6f", got, tol)
	}
}

// TestBlockCliffordMasksMatchScalar is the symplectic-mask property test:
// for every cached Clifford table used by the compiler, driving a
// bit-plane frame through the mask form must agree with the scalar
// Conjugate on all Pauli inputs (checked word-parallel: every shot carries
// the same input Pauli).
func TestBlockCliffordMasksMatchScalar(t *testing.T) {
	for _, g := range []gates.Kind{gates.H, gates.S, gates.Sdg, gates.SX, gates.SXdg, gates.ZGate} {
		c1 := clifford1For(g, nil)
		if c1 == nil {
			t.Fatalf("%s: no Clifford table", g)
		}
		p, bp := chanProgram(1, 0, []op{{kind: opCliff1, q0: 0, c1: c1}}, nil)
		f := newBlockFrame(p)
		for in := 0; in < 4; in++ {
			xb, zb := uint64(in&1), uint64(in>>1)
			f.reset(0)
			f.x[0], f.z[0] = onesIf(xb), onesIf(zb)
			f.run(bp)
			wx, wz := xzFromPauli(c1.Conjugate(pauliFromXZ(xb, zb)).Out)
			if f.x[0] != onesIf(wx) || f.z[0] != onesIf(wz) {
				t.Errorf("%s on (x=%d,z=%d): block planes (%x,%x), want (%x,%x)",
					g, xb, zb, f.x[0], f.z[0], onesIf(wx), onesIf(wz))
			}
		}
	}
	for _, g := range []gates.Kind{gates.ECR, gates.CX, gates.SWAP} {
		c2 := clifford2For(g, nil)
		if c2 == nil {
			t.Fatalf("%s: no Clifford table", g)
		}
		p, bp := chanProgram(2, 0, []op{{kind: opCliff2, q0: 0, q1: 1, c2: c2}}, nil)
		f := newBlockFrame(p)
		for in := 0; in < 16; in++ {
			x0, z0 := uint64(in&1), uint64(in>>1&1)
			x1, z1 := uint64(in>>2&1), uint64(in>>3&1)
			f.reset(0)
			f.x[0], f.z[0] = onesIf(x0), onesIf(z0)
			f.x[1], f.z[1] = onesIf(x1), onesIf(z1)
			f.run(bp)
			c := c2.Conjugate(pauli.Pair{P0: pauliFromXZ(x0, z0), P1: pauliFromXZ(x1, z1)})
			wx0, wz0 := xzFromPauli(c.Out.P0)
			wx1, wz1 := xzFromPauli(c.Out.P1)
			if f.x[0] != onesIf(wx0) || f.z[0] != onesIf(wz0) || f.x[1] != onesIf(wx1) || f.z[1] != onesIf(wz1) {
				t.Errorf("%s on input %04b: block planes disagree with scalar conjugation", g, in)
			}
		}
	}
}

var blockSink uint64

// TestBlockShotLoopZeroAlloc mirrors sim's TestShotLoopZeroAlloc for the
// bit-plane path: after the one-time frame construction, the steady-state
// block body — reset, run every op with channels and measurements, read
// an observable parity word — performs zero heap allocations.
func TestBlockShotLoopZeroAlloc(t *testing.T) {
	dev := device.NewLine("alloc", 4, device.DefaultOptions())
	c := circuit.New(4, 4)
	c.AddLayer(circuit.OneQubitLayer).H(0).H(2)
	c.AddLayer(circuit.TwoQubitLayer).ECR(0, 1).ECR(2, 3)
	c.AddLayer(circuit.TwoQubitLayer).ECR(0, 1).ECR(2, 3)
	ml := c.AddLayer(circuit.MeasureLayer)
	for q := 0; q < 4; q++ {
		ml.Measure(q, q)
	}
	sched.Schedule(c, dev)
	cfg := sim.DefaultConfig()
	cfg.EnableReadoutErr = true
	e := New(dev, cfg)
	p, err := e.compile(c)
	if err != nil {
		t.Fatal(err)
	}
	bp := p.blockPlan()
	pl, err := e.planObs(p, sim.ObsSpec{0: 'X', 1: 'X'})
	if err != nil {
		t.Fatal(err)
	}
	f := newBlockFrame(p)
	f.reset(sim.BlockSeed(e.Cfg.Seed, 0))
	f.run(bp)
	blockSink = f.anticommuteWord(&pl)

	blk := 1
	allocs := testing.AllocsPerRun(50, func() {
		f.reset(sim.BlockSeed(e.Cfg.Seed, blk))
		blk++
		f.run(bp)
		blockSink ^= f.anticommuteWord(&pl)
	})
	if allocs != 0 {
		t.Errorf("steady-state block body allocates %.1f objects per block, want 0", allocs)
	}
}
