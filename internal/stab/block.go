package stab

import (
	"math"
	"math/bits"

	"casq/internal/obs"
	"casq/internal/pauli"
	"casq/internal/sim"
)

// This file is the bit-plane shot engine: the batched counterpart of
// frame.go's scalar-per-shot reference path. Where the scalar path walks
// one trajectory at a time through per-qubit packed words, the bit-plane
// path transposes the axes — storage is indexed [qubit][shot bit], one
// uint64 word holding the X (or Z) frame bit of 64 shots — so every
// program op advances 64 trajectories per word operation, stim-style:
//
//   - Clifford conjugation becomes a symplectic GF(2) linear map applied
//     as masked XORs of whole shot words (signs are unobservable on
//     frames, exactly as in the scalar path);
//   - Pauli channels draw 64-shot Bernoulli masks from precomputed
//     threshold tables (see bern): sparse probabilities sample the set
//     bits geometrically, dense ones combine random words along the
//     binary expansion of p — both exact, both O(1)ish per 64 shots;
//   - measurements read a 64-shot outcome word straight off the X plane,
//     redraw nondeterministic branches with one fair-coin word (flipping
//     the recorded anticommuting stabilizer onto exactly the redrawn
//     shots), and record the word into a classical bit-plane.
//
// Each 64-shot block owns a deterministic RNG seeded by
// sim.BlockSeed(seed, block), so results are bit-identical for any worker
// count; the shots%64 remainder runs through the scalar reference frames
// (sim.ShotSeed seeding) as the tail of the same loop.

// wordRNG is the block sampler: a SplitMix64 stream, seeded per 64-shot
// block. It is deliberately not math/rand — the block path draws whole
// words, and the scalar reference path keeps its own rand.Source streams.
type wordRNG struct{ s uint64 }

func (r *wordRNG) seed(v int64) { r.s = uint64(v) }

func (r *wordRNG) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}

// float64 returns a uniform draw strictly inside (0, 1).
func (r *wordRNG) float64() float64 {
	return (float64(r.next()>>11) + 0.5) * (1.0 / (1 << 53))
}

// intn returns a uniform draw in [0, n) via the multiply-shift reduction.
func (r *wordRNG) intn(n int) int {
	hi, _ := bits.Mul64(r.next(), uint64(n))
	return int(hi)
}

// bernSparse is the probability below which a Bernoulli mask is cheaper to
// sample by geometric gaps between set bits (expected 64p log draws) than
// by combining words along the binary expansion of p (up to 53 word
// draws). Every calibration-derived channel in practice sits far below it.
const bernSparse = 0.05

// bern is one precomputed Bernoulli-mask table: everything needed to draw
// a 64-shot mask whose bits are independently 1 with probability p. The
// tables are built once at compile time — this is the "threshold table"
// half of the channel tables; chan1 ops pair one bern with conditional
// X/Y/Z thresholds (see blockOp).
type bern struct {
	p      float64
	invLog float64 // 1/ln(1-p): sparse path gap scale; 0 selects the dense path
	p53    uint64  // p in 0.53 fixed point: dense path binary expansion
}

func makeBern(p float64) bern {
	b := bern{p: p}
	switch {
	case p <= 0 || p >= 1:
	case p < bernSparse:
		b.invLog = 1 / math.Log1p(-p)
	default:
		b.p53 = uint64(math.Ldexp(p, 53))
		if b.p53 == 0 {
			b.p53 = 1
		}
	}
	return b
}

// draw samples one 64-shot Bernoulli(p) mask.
func (b *bern) draw(r *wordRNG) uint64 {
	switch {
	case b.p <= 0:
		return 0
	case b.p >= 1:
		return ^uint64(0)
	case b.invLog != 0:
		// Geometric gaps: the index of each set bit advances by
		// 1 + floor(ln(U)/ln(1-p)) — the exact Bernoulli process, visiting
		// only the set bits.
		var w uint64
		i := int(math.Log(r.float64()) * b.invLog)
		for i < 64 {
			w |= 1 << uint(i)
			i += 1 + int(math.Log(r.float64())*b.invLog)
		}
		return w
	}
	// Dense: combine random words along the binary expansion of p
	// (LSB-first over the 53-bit fraction): bit set -> OR, clear -> AND.
	// Exact for the 53-bit truncation of p, like any float64 comparison.
	p53 := b.p53
	t := bits.TrailingZeros64(p53)
	w := r.next()
	for j := t + 1; j < 53; j++ {
		if p53>>uint(j)&1 == 1 {
			w = r.next() | w
		} else {
			w = r.next() & w
		}
	}
	return w
}

// symp2 is a two-qubit Clifford's conjugation action on the symplectic
// bits, as masks: out[j] = XOR over i of (in[i] & m[i][j]), with i, j
// running over (x0, z0, x1, z1). Built once per distinct CliffordTable.
type symp2 struct {
	m [4][4]uint64
}

// onesIf expands a symplectic bit into a word mask.
func onesIf(b uint64) uint64 { return -(b & 1) }

func newSymp2(tbl *pauli.CliffordTable) *symp2 {
	s := &symp2{}
	ins := [4]pauli.Pair{
		{P0: pauli.X, P1: pauli.I},
		{P0: pauli.Z, P1: pauli.I},
		{P0: pauli.I, P1: pauli.X},
		{P0: pauli.I, P1: pauli.Z},
	}
	for i, p := range ins {
		c := tbl.Conjugate(p)
		x0, z0 := xzFromPauli(c.Out.P0)
		x1, z1 := xzFromPauli(c.Out.P1)
		s.m[i][0] = onesIf(x0)
		s.m[i][1] = onesIf(z0)
		s.m[i][2] = onesIf(x1)
		s.m[i][3] = onesIf(z1)
	}
	return s
}

// blockOp is one program op lowered to bit-plane form: Cliffords carry
// their symplectic masks, channels their Bernoulli tables plus conditional
// thresholds, measurements their reference word and branch-flip qubit
// lists. The slice is index-parallel free — it replaces the scalar op
// stream entirely for the block path.
type blockOp struct {
	kind   opKind
	q0, q1 int32

	// opCliff1: newX = (x & mxx) ^ (z & mzx); newZ = (x & mxz) ^ (z & mzz).
	mxx, mzx, mxz, mzz uint64
	// opCliff2 symplectic masks.
	sy *symp2

	// Channel table: flip draws the 64-shot event mask; for opChan1 a
	// flipped shot resolves to X/Y/Z by condX/condXY (conditional
	// thresholds within the flip: u < condX -> X, u < condXY -> Y, else
	// Z); zOnly short-circuits the pure-dephasing shape (no X/Y part) to
	// a single word XOR. opMeasure reuses flip for the readout error.
	flip         bern
	condX, conXY float64
	zOnly        bool

	// opMeasure.
	refMask  uint64
	det      bool
	fxQ, fzQ []int32
	cbit     int32
}

// blockProgram is the compiled bit-plane op stream of a program.
type blockProgram struct {
	nq, ncb int
	ops     []blockOp
}

// blockPlan lowers the program's op stream into bit-plane form:
// per-Clifford symplectic mask derivation (memoized per table) and
// per-channel alias/threshold table construction. Called once per compiled
// program, before the shot loop.
func (p *program) blockPlan() *blockProgram {
	bp := &blockProgram{nq: p.nq, ncb: p.ncb, ops: make([]blockOp, len(p.ops))}
	c1memo := map[*pauli.Clifford1Q][4]uint64{}
	c2memo := map[*pauli.CliffordTable]*symp2{}
	for i := range p.ops {
		o := &p.ops[i]
		b := &bp.ops[i]
		b.kind = o.kind
		b.q0, b.q1 = int32(o.q0), int32(o.q1)
		switch o.kind {
		case opCliff1:
			m, ok := c1memo[o.c1]
			if !ok {
				cx := o.c1.Conjugate(pauli.X)
				cz := o.c1.Conjugate(pauli.Z)
				ax, az := xzFromPauli(cx.Out)
				bx, bz := xzFromPauli(cz.Out)
				m = [4]uint64{onesIf(ax), onesIf(bx), onesIf(az), onesIf(bz)}
				c1memo[o.c1] = m
			}
			b.mxx, b.mzx, b.mxz, b.mzz = m[0], m[1], m[2], m[3]
		case opCliff2:
			sy, ok := c2memo[o.c2]
			if !ok {
				sy = newSymp2(o.c2)
				c2memo[o.c2] = sy
			}
			b.sy = sy
		case opPauliGate:
			// Frame signs are unobservable; nothing to lower.
		case opChan1:
			b.flip = makeBern(o.thrXYZ)
			if o.thrXYZ > 0 {
				b.condX = o.thrX / o.thrXYZ
				b.conXY = o.thrXY / o.thrXYZ
			}
			b.zOnly = o.thrXY == 0
		case opZZ, opDepol2:
			b.flip = makeBern(o.prob)
		case opMeasure:
			inf := &p.meas[o.mi]
			if inf.ref == 1 {
				b.refMask = ^uint64(0)
			}
			b.det = inf.det
			for q := 0; q < p.nq; q++ {
				w, bit := q/64, uint(q%64)
				if !inf.det {
					if inf.fx[w]>>bit&1 == 1 {
						b.fxQ = append(b.fxQ, int32(q))
					}
					if inf.fz[w]>>bit&1 == 1 {
						b.fzQ = append(b.fzQ, int32(q))
					}
				}
			}
			b.flip = makeBern(o.prob)
			b.cbit = int32(o.cbit)
		}
	}
	return bp
}

// blockFrame is one worker's reusable bit-plane state: the X/Z frame bits
// of 64 shots per qubit word, the classical outcome planes, and the
// per-block RNG. One blockFrame is owned by exactly one worker, so the
// steady-state block loop allocates nothing.
type blockFrame struct {
	x, z  []uint64 // [qubit] -> 64-shot word
	cbits []uint64 // [classical bit] -> 64-shot word
	rng   wordRNG
}

func newBlockFrame(p *program) *blockFrame {
	return &blockFrame{
		x:     make([]uint64, p.nq),
		z:     make([]uint64, p.nq),
		cbits: make([]uint64, p.ncb),
	}
}

// reset clears the planes and reseeds the block RNG.
func (f *blockFrame) reset(seed int64) {
	f.rng.seed(seed)
	for i := range f.x {
		f.x[i] = 0
		f.z[i] = 0
	}
	for i := range f.cbits {
		f.cbits[i] = 0
	}
}

// xorCode flips Pauli code (1=X, 2=Y, 3=Z) into the frame planes of qubit
// q on the shots selected by mask.
func (f *blockFrame) xorCode(q int32, code int, mask uint64) {
	switch code {
	case 1:
		f.x[q] ^= mask
	case 2:
		f.x[q] ^= mask
		f.z[q] ^= mask
	case 3:
		f.z[q] ^= mask
	}
}

// run advances all 64 shots of the block through the program: word-
// parallel Clifford conjugation, mask-sampled channels, word measurements.
func (f *blockFrame) run(bp *blockProgram) {
	for i := range bp.ops {
		o := &bp.ops[i]
		switch o.kind {
		case opCliff1:
			x, z := f.x[o.q0], f.z[o.q0]
			f.x[o.q0] = (x & o.mxx) ^ (z & o.mzx)
			f.z[o.q0] = (x & o.mxz) ^ (z & o.mzz)
		case opCliff2:
			m := &o.sy.m
			x0, z0 := f.x[o.q0], f.z[o.q0]
			x1, z1 := f.x[o.q1], f.z[o.q1]
			f.x[o.q0] = (x0 & m[0][0]) ^ (z0 & m[1][0]) ^ (x1 & m[2][0]) ^ (z1 & m[3][0])
			f.z[o.q0] = (x0 & m[0][1]) ^ (z0 & m[1][1]) ^ (x1 & m[2][1]) ^ (z1 & m[3][1])
			f.x[o.q1] = (x0 & m[0][2]) ^ (z0 & m[1][2]) ^ (x1 & m[2][2]) ^ (z1 & m[3][2])
			f.z[o.q1] = (x0 & m[0][3]) ^ (z0 & m[1][3]) ^ (x1 & m[2][3]) ^ (z1 & m[3][3])
		case opPauliGate:
			// Sign-only on frames: unobservable.
		case opChan1:
			m := o.flip.draw(&f.rng)
			if m == 0 {
				continue
			}
			if o.zOnly {
				// Pure dephasing (the coherent-integral channels): one XOR.
				f.z[o.q0] ^= m
				continue
			}
			var xm, zm uint64
			for w := m; w != 0; w &= w - 1 {
				bit := uint64(1) << uint(bits.TrailingZeros64(w))
				u := f.rng.float64()
				switch {
				case u < o.condX:
					xm |= bit
				case u < o.conXY:
					xm |= bit
					zm |= bit
				default:
					zm |= bit
				}
			}
			f.x[o.q0] ^= xm
			f.z[o.q0] ^= zm
		case opZZ:
			m := o.flip.draw(&f.rng)
			f.z[o.q0] ^= m
			f.z[o.q1] ^= m
		case opDepol2:
			m := o.flip.draw(&f.rng)
			for w := m; w != 0; w &= w - 1 {
				bit := uint64(1) << uint(bits.TrailingZeros64(w))
				k := 1 + f.rng.intn(15)
				f.xorCode(o.q0, k%4, bit)
				f.xorCode(o.q1, k/4, bit)
			}
		case opMeasure:
			bitsW := f.x[o.q0] ^ o.refMask
			if !o.det {
				// Redraw the nondeterministic collapse for each shot with
				// one fair-coin word: flipped shots move onto the opposite
				// branch via the recorded anticommuting stabilizer,
				// preserving outcome correlations across later
				// measurements — the word-parallel mirror of the scalar
				// path's per-shot redraw.
				r := f.rng.next()
				bitsW ^= r
				for _, q := range o.fxQ {
					f.x[q] ^= r
				}
				for _, q := range o.fzQ {
					f.z[q] ^= r
				}
			}
			if o.flip.p > 0 {
				bitsW ^= o.flip.draw(&f.rng)
			}
			if o.cbit >= 0 && int(o.cbit) < len(f.cbits) {
				f.cbits[o.cbit] = bitsW
			}
		}
	}
}

// anticommuteWord returns the per-shot anticommutation parity of the
// frame block against a compiled observable: bit s is 1 iff shot s's
// frame anticommutes with the observable — 64 shots per XOR, using the
// observable's precomputed qubit lists.
func (f *blockFrame) anticommuteWord(pl *obsPlan) uint64 {
	var par uint64
	for _, q := range pl.zQ {
		par ^= f.x[q]
	}
	for _, q := range pl.xQ {
		par ^= f.z[q]
	}
	return par
}

// blockWorker is one worker's reusable state for the block-granular shot
// loop: the bit-plane frame for full 64-shot words, a lazily built scalar
// reference frame for the remainder tail, and a classical-bit scratch for
// key building.
type blockWorker struct {
	bf *blockFrame
	sf *frame
	p  *program
}

func newBlockWorker(p *program) *blockWorker {
	return &blockWorker{bf: newBlockFrame(p), p: p}
}

// scalar returns the worker's scalar reference frame, building it on
// first use (only the one worker that claims the tail unit ever pays).
func (w *blockWorker) scalar() *frame {
	if w.sf == nil {
		w.sf = newFrame(w.p)
	}
	return w.sf
}

// forEachShotBlock runs the bit-plane shot loop over the compiled program:
// full 64-shot blocks reset to sim.BlockSeed and run the lowered block
// plan; the shots%64 remainder tail runs the scalar reference frame with
// sim.ShotSeed seeding, so tail shots match what the scalar engine would
// produce at the same indices. Per-unit seeding keeps results
// bit-identical for any worker count.
func (e *Engine) forEachShotBlock(p *program,
	onBlock func(b, base int, bf *blockFrame), onTail func(i int, f *frame)) {
	bp := p.blockPlan()
	tr, lane := e.Cfg.Tracer, e.Cfg.Lane
	sim.ForEachShotBlock(e.numShots(), e.Cfg.Workers,
		func() *blockWorker { return newBlockWorker(p) },
		func(b, base int, w *blockWorker) {
			var sp obs.Span
			if tr.Enabled() {
				sp = tr.Start("stab.block").WithLane(lane)
			}
			w.bf.reset(sim.BlockSeed(e.Cfg.Seed, b))
			w.bf.run(bp)
			onBlock(b, base, w.bf)
			sp.End()
		},
		func(i int, w *blockWorker) {
			f := w.scalar()
			f.reset(sim.ShotSeed(e.Cfg.Seed, i))
			f.run(p)
			onTail(i, f)
		})
}
