package stab

import (
	"math"
	"testing"

	"casq/internal/circuit"
	"casq/internal/device"
	"casq/internal/gates"
	"casq/internal/sched"
	"casq/internal/sim"
)

func noiselessCfg(shots int) sim.Config {
	return sim.Config{Shots: shots, Seed: 9}
}

// TestEngineGHZExpectations: on a noiseless GHZ circuit every frame is
// trivial, so the engine must reproduce the exact stabilizer expectations.
func TestEngineGHZExpectations(t *testing.T) {
	dev := device.NewLine("ghz3", 3, device.DefaultOptions())
	c := circuit.New(3, 0)
	c.AddLayer(circuit.OneQubitLayer).H(0)
	c.AddLayer(circuit.TwoQubitLayer).CX(0, 1)
	c.AddLayer(circuit.TwoQubitLayer).CX(1, 2)
	sched.Schedule(c, dev)
	e := New(dev, noiselessCfg(16))
	vals, err := e.Expectations(c, []sim.ObsSpec{
		{0: 'X', 1: 'X', 2: 'X'},
		{0: 'Z', 1: 'Z'},
		{0: 'Z'},
		{0: 'Y', 1: 'Y', 2: 'X'},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1, 0, -1}
	for i, w := range want {
		if math.Abs(vals[i]-w) > 1e-12 {
			t.Fatalf("obs %d: got %.6f want %.1f", i, vals[i], w)
		}
	}
}

// TestEngineBellCounts: noiseless Bell sampling must produce only
// correlated bitstrings, close to 50/50, and be deterministic in the seed
// and worker count.
func TestEngineBellCounts(t *testing.T) {
	dev := device.NewLine("bell2", 2, device.DefaultOptions())
	c := circuit.New(2, 2)
	c.AddLayer(circuit.OneQubitLayer).H(0)
	c.AddLayer(circuit.TwoQubitLayer).CX(0, 1)
	c.AddLayer(circuit.MeasureLayer).Measure(0, 0).Measure(1, 1)
	sched.Schedule(c, dev)

	cfg := noiselessCfg(4000)
	res, err := New(dev, cfg).Counts(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts["01"] != 0 || res.Counts["10"] != 0 {
		t.Fatalf("anticorrelated Bell outcomes: %v", res.Counts)
	}
	p00 := res.Probability("00")
	if math.Abs(p00-0.5) > 0.05 {
		t.Fatalf("P(00) = %.3f, want ~0.5", p00)
	}
	// Worker-count independence, bit-identical.
	for _, workers := range []int{1, 3, 8} {
		cfg2 := cfg
		cfg2.Workers = workers
		res2, err := New(dev, cfg2).Counts(c)
		if err != nil {
			t.Fatal(err)
		}
		if len(res2.Counts) != len(res.Counts) {
			t.Fatalf("workers=%d: counts differ", workers)
		}
		for k, v := range res.Counts {
			if res2.Counts[k] != v {
				t.Fatalf("workers=%d: counts[%s] = %d, want %d", workers, k, res2.Counts[k], v)
			}
		}
	}
}

// TestEngineReadoutError: readout flips corrupt a deterministic |00>
// sample at roughly the calibrated rate.
func TestEngineReadoutError(t *testing.T) {
	opts := device.DefaultOptions()
	opts.ReadoutErr = 0.10
	dev := device.NewLine("ro2", 2, opts)
	c := circuit.New(2, 2)
	c.AddLayer(circuit.MeasureLayer).Measure(0, 0).Measure(1, 1)
	sched.Schedule(c, dev)
	cfg := noiselessCfg(8000)
	cfg.EnableReadoutErr = true
	res, err := New(dev, cfg).Counts(c)
	if err != nil {
		t.Fatal(err)
	}
	flip0 := 1 - res.Probability("0x")
	if flip0 < 0.04 || flip0 > 0.25 {
		t.Fatalf("readout flip rate %.3f implausible for calibration ~0.1x[0.6,1.5]", flip0)
	}
}

// TestEngineZZDephasing: an idle |+> pair under always-on ZZ must lose
// <X> coherence at the analytic twirl-averaged rate cos(phi).
func TestEngineZZDephasing(t *testing.T) {
	opts := device.DefaultOptions()
	opts.DeltaMax = 0
	opts.QuasistaticSigma = 0
	opts.Err1Q, opts.Err2Q, opts.ReadoutErr = 0, 0, 0
	opts.T1Min, opts.T1Max = 0, 0
	dev := device.NewLine("zz2", 2, opts)
	c := circuit.New(2, 0)
	c.AddLayer(circuit.OneQubitLayer).H(0).H(1)
	idle := c.AddLayer(circuit.TwoQubitLayer)
	const dur = 400.0
	idle.Add(circuit.Instruction{Gate: gates.Delay, Qubits: []int{0}, Params: []float64{dur}})
	idle.Add(circuit.Instruction{Gate: gates.Delay, Qubits: []int{1}, Params: []float64{dur}})
	// Uncompute so <Z> reads the coherence.
	c.AddLayer(circuit.OneQubitLayer).H(0).H(1)
	sched.Schedule(c, dev)

	cfg := noiselessCfg(60000)
	cfg.EnableZZ = true
	e := New(dev, cfg)
	vals, err := e.Expectations(c, []sim.ObsSpec{{0: 'Z'}})
	if err != nil {
		t.Fatal(err)
	}
	// The phase accumulates over the first two layers (the H layer idles
	// under ZZ too): phi = omega * T on both the single-qubit and the ZZ
	// term, each contributing a cos(phi) coherence factor — the exact
	// idle-pair analytic value (1 + cos(2 phi)) / 2 = cos^2(phi).
	T := c.Layers[0].Duration + c.Layers[1].Duration
	w := 2 * math.Pi * dev.ZZ[device.NewEdge(0, 1)] * 1e-9
	want := math.Cos(w*T) * math.Cos(w*T)
	if math.Abs(vals[0]-want) > 0.01 {
		t.Fatalf("<Z> after ZZ dephasing: got %.4f want %.4f", vals[0], want)
	}
}

// TestSupportsPolicy pins the twirl-representability rules.
func TestSupportsPolicy(t *testing.T) {
	ok := circuit.New(2, 1)
	ok.AddLayer(circuit.OneQubitLayer).H(0).RZ(1, math.Pi/2)
	ok.AddLayer(circuit.TwoQubitLayer).ECR(0, 1)
	ok.AddLayer(circuit.MeasureLayer).Measure(0, 0)
	if err := Supports(ok); err != nil {
		t.Fatalf("Clifford circuit rejected: %v", err)
	}

	badRZ := circuit.New(1, 0)
	badRZ.AddLayer(circuit.OneQubitLayer).RZ(0, 0.3)
	if Supports(badRZ) == nil {
		t.Fatal("untagged rz(0.3) must be rejected")
	}

	ecRZ := circuit.New(1, 0)
	l := ecRZ.AddLayer(circuit.OneQubitLayer)
	l.Add(circuit.Instruction{Gate: gates.RZ, Qubits: []int{0}, Params: []float64{0.3}, Tag: "ec"})
	if err := Supports(ecRZ); err != nil {
		t.Fatalf("ec-tagged rz(0.3) must be accepted: %v", err)
	}

	badU := circuit.New(2, 0)
	badU.AddLayer(circuit.TwoQubitLayer).Ucan(0, 1, 0.2, 0.1, 0.05)
	if Supports(badU) == nil {
		t.Fatal("generic Ucan must be rejected")
	}

	cond := circuit.New(1, 1)
	cond.AddLayer(circuit.OneQubitLayer).CondX(0, 0, 1)
	if Supports(cond) == nil {
		t.Fatal("conditioned gates must be rejected")
	}
}

// TestHasTwirl detects twirl layers and tags.
func TestHasTwirl(t *testing.T) {
	c := circuit.New(2, 0)
	c.AddLayer(circuit.TwoQubitLayer).ECR(0, 1)
	if HasTwirl(c) {
		t.Fatal("untwirled circuit flagged as twirled")
	}
	tw := c.AddLayer(circuit.TwirlLayer)
	tw.Add(circuit.Instruction{Gate: gates.XGate, Qubits: []int{0}, Tag: "twirl"})
	if !HasTwirl(c) {
		t.Fatal("twirl layer not detected")
	}
}

// TestEngineInfo sanity-checks the compile summary used by the benchmarks.
func TestEngineInfo(t *testing.T) {
	dev := device.NewLine("info3", 3, device.DefaultOptions())
	c := circuit.New(3, 1)
	c.AddLayer(circuit.OneQubitLayer).H(0)
	c.AddLayer(circuit.TwoQubitLayer).ECR(0, 1)
	c.AddLayer(circuit.MeasureLayer).Measure(0, 0)
	sched.Schedule(c, dev)
	inf, err := New(dev, sim.DefaultConfig()).Info(c)
	if err != nil {
		t.Fatal(err)
	}
	if inf.Cliffords < 2 || inf.Channels == 0 || inf.Measures != 1 || inf.Ops != inf.Cliffords+inf.Channels+inf.Measures {
		t.Fatalf("implausible compile info: %+v", inf)
	}
}
