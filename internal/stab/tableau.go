package stab

import (
	"fmt"
	"math/bits"
	"math/rand"

	"casq/internal/pauli"
)

// Tableau is a bit-packed Aaronson-Gottesman stabilizer tableau on n
// qubits: rows 0..n-1 are destabilizer generators, rows n..2n-1 stabilizer
// generators, plus one scratch row for deterministic-measurement phase
// accumulation. Row Paulis are stored as X/Z bitmasks over uint64 words
// with one sign bit per row, so a 127-qubit row is two words — conjugating
// the full tableau through a layer of Cliffords is O(n rows * O(1) per
// touched qubit), never 2^n.
type Tableau struct {
	n, words int
	x, z     []uint64 // (2n+1) rows * words
	sign     []bool   // per row: true = -1
}

// NewTableau returns the tableau of |0...0>: destabilizer i = X_i,
// stabilizer i = Z_i, all signs +.
func NewTableau(n int) *Tableau {
	words := (n + 63) / 64
	t := &Tableau{
		n:     n,
		words: words,
		x:     make([]uint64, (2*n+1)*words),
		z:     make([]uint64, (2*n+1)*words),
		sign:  make([]bool, 2*n+1),
	}
	for i := 0; i < n; i++ {
		t.x[i*words+i/64] |= 1 << (i % 64)
		t.z[(n+i)*words+i/64] |= 1 << (i % 64)
	}
	return t
}

// N returns the qubit count.
func (t *Tableau) N() int { return t.n }

// rowPauli extracts the Pauli of row r at qubit q.
func (t *Tableau) rowPauli(r, q int) pauli.Pauli {
	w, b := q/64, uint(q%64)
	xb := (t.x[r*t.words+w] >> b) & 1
	zb := (t.z[r*t.words+w] >> b) & 1
	return pauliFromXZ(xb, zb)
}

// setRowPauli writes the Pauli of row r at qubit q.
func (t *Tableau) setRowPauli(r, q int, p pauli.Pauli) {
	w, b := q/64, uint(q%64)
	xb, zb := xzFromPauli(p)
	t.x[r*t.words+w] = t.x[r*t.words+w]&^(1<<b) | xb<<b
	t.z[r*t.words+w] = t.z[r*t.words+w]&^(1<<b) | zb<<b
}

// pauliFromXZ maps symplectic bits to a Pauli: (0,0)=I, (1,0)=X, (1,1)=Y,
// (0,1)=Z.
func pauliFromXZ(xb, zb uint64) pauli.Pauli {
	switch {
	case xb == 1 && zb == 0:
		return pauli.X
	case xb == 1 && zb == 1:
		return pauli.Y
	case xb == 0 && zb == 1:
		return pauli.Z
	}
	return pauli.I
}

func xzFromPauli(p pauli.Pauli) (xb, zb uint64) {
	switch p {
	case pauli.X:
		return 1, 0
	case pauli.Y:
		return 1, 1
	case pauli.Z:
		return 0, 1
	}
	return 0, 0
}

// ApplyClifford1 conjugates every row through a one-qubit Clifford on q.
func (t *Tableau) ApplyClifford1(q int, tbl *pauli.Clifford1Q) {
	for r := 0; r < 2*t.n; r++ {
		p := t.rowPauli(r, q)
		if p == pauli.I {
			continue
		}
		c := tbl.Conjugate(p)
		t.setRowPauli(r, q, c.Out)
		if c.Sign < 0 {
			t.sign[r] = !t.sign[r]
		}
	}
}

// ApplyClifford2 conjugates every row through a two-qubit Clifford whose
// first operand is q0 (the Pair.P0 slot of the table).
func (t *Tableau) ApplyClifford2(q0, q1 int, tbl *pauli.CliffordTable) {
	for r := 0; r < 2*t.n; r++ {
		p0 := t.rowPauli(r, q0)
		p1 := t.rowPauli(r, q1)
		if p0 == pauli.I && p1 == pauli.I {
			continue
		}
		c := tbl.Conjugate(pauli.Pair{P0: p0, P1: p1})
		t.setRowPauli(r, q0, c.Out.P0)
		t.setRowPauli(r, q1, c.Out.P1)
		if c.Sign < 0 {
			t.sign[r] = !t.sign[r]
		}
	}
}

// ApplyPauli conjugates every row through a Pauli gate on q: rows whose
// factor at q anticommutes with p flip sign.
func (t *Tableau) ApplyPauli(q int, p pauli.Pauli) {
	if p == pauli.I {
		return
	}
	for r := 0; r < 2*t.n; r++ {
		if !t.rowPauli(r, q).Commutes(p) {
			t.sign[r] = !t.sign[r]
		}
	}
}

// mulRowFrom sets row dst := row src * row dst with exact sign tracking.
// The product of two commuting-or-not Hermitian Paulis is i^k times a
// Pauli; tableau row products always land on an even k (a Hermitian
// result), which is asserted.
func (t *Tableau) mulRowFrom(dst, src int) {
	phase := 0 // exponent of i, mod 4
	if t.sign[dst] {
		phase += 2
	}
	if t.sign[src] {
		phase += 2
	}
	for q := 0; q < t.n; q++ {
		ps := t.rowPauli(src, q)
		pd := t.rowPauli(dst, q)
		if ps == pauli.I || pd == pauli.I {
			continue
		}
		k, _ := pauli.Mul(ps, pd)
		phase += k
	}
	for w := 0; w < t.words; w++ {
		t.x[dst*t.words+w] ^= t.x[src*t.words+w]
		t.z[dst*t.words+w] ^= t.z[src*t.words+w]
	}
	switch phase % 4 {
	case 0:
		t.sign[dst] = false
	case 2:
		t.sign[dst] = true
	default:
		panic(fmt.Sprintf("stab: non-Hermitian row product (phase i^%d)", phase%4))
	}
}

// anticommutesMask reports whether row r anticommutes with the packed
// Pauli (px, pz): the symplectic form parity over all qubits.
func (t *Tableau) anticommutesMask(r int, px, pz []uint64) bool {
	var par uint64
	for w := 0; w < t.words; w++ {
		par ^= t.x[r*t.words+w] & pz[w]
		par ^= t.z[r*t.words+w] & px[w]
	}
	return parity64(par)
}

func parity64(v uint64) bool { return bits.OnesCount64(v)&1 == 1 }

// MeasureZ measures Z on qubit q in place, drawing nondeterministic
// outcomes from rng. It returns the outcome bit, whether the outcome was
// deterministic, and — for nondeterministic measurements — the packed
// X/Z masks of the pre-measurement stabilizer that anticommuted with Z_q.
// Multiplying a Pauli frame by that mask maps the recorded collapse
// branch onto the opposite one, which is how the frame sampler re-draws
// nondeterministic outcomes per shot without losing multi-qubit outcome
// correlations.
func (t *Tableau) MeasureZ(q int, rng *rand.Rand) (bit int, deterministic bool, flipX, flipZ []uint64) {
	w, b := q/64, uint(q%64)
	p := -1
	for r := t.n; r < 2*t.n; r++ {
		if (t.x[r*t.words+w]>>b)&1 == 1 {
			p = r
			break
		}
	}
	if p >= 0 {
		// Nondeterministic: record the anticommuting stabilizer for frame
		// redraws, then perform the standard CHP update.
		flipX = append([]uint64(nil), t.x[p*t.words:(p+1)*t.words]...)
		flipZ = append([]uint64(nil), t.z[p*t.words:(p+1)*t.words]...)
		for r := 0; r < 2*t.n; r++ {
			if r != p && (t.x[r*t.words+w]>>b)&1 == 1 {
				t.mulRowFrom(r, p)
			}
		}
		// Destabilizer p-n := old stabilizer p; stabilizer p := +/- Z_q.
		d := p - t.n
		copy(t.x[d*t.words:(d+1)*t.words], t.x[p*t.words:(p+1)*t.words])
		copy(t.z[d*t.words:(d+1)*t.words], t.z[p*t.words:(p+1)*t.words])
		t.sign[d] = t.sign[p]
		for i := 0; i < t.words; i++ {
			t.x[p*t.words+i] = 0
			t.z[p*t.words+i] = 0
		}
		t.z[p*t.words+w] = 1 << b
		bit = rng.Intn(2)
		t.sign[p] = bit == 1
		return bit, false, flipX, flipZ
	}
	// Deterministic: accumulate stabilizer rows paired with destabilizers
	// that contain X_q into the scratch row; its sign is the outcome.
	sc := 2 * t.n
	for i := 0; i < t.words; i++ {
		t.x[sc*t.words+i] = 0
		t.z[sc*t.words+i] = 0
	}
	t.sign[sc] = false
	for r := 0; r < t.n; r++ {
		if (t.x[r*t.words+w]>>b)&1 == 1 {
			t.mulRowFrom(sc, r+t.n)
		}
	}
	if t.sign[sc] {
		bit = 1
	}
	return bit, true, nil, nil
}

// ExpectPacked returns <psi| P |psi> for the packed Pauli (px, pz) with
// the given sign (true = -P): exactly +1, -1, or 0 on a stabilizer state.
func (t *Tableau) ExpectPacked(px, pz []uint64, neg bool) float64 {
	for r := t.n; r < 2*t.n; r++ {
		if t.anticommutesMask(r, px, pz) {
			return 0
		}
	}
	// P commutes with the whole group, so it is +/- a product of
	// stabilizer generators: generator i participates iff destabilizer i
	// anticommutes with P.
	sc := 2 * t.n
	for i := 0; i < t.words; i++ {
		t.x[sc*t.words+i] = 0
		t.z[sc*t.words+i] = 0
	}
	t.sign[sc] = false
	for r := 0; r < t.n; r++ {
		if t.anticommutesMask(r, px, pz) {
			t.mulRowFrom(sc, r+t.n)
		}
	}
	for w := 0; w < t.words; w++ {
		if t.x[sc*t.words+w] != px[w] || t.z[sc*t.words+w] != pz[w] {
			panic("stab: stabilizer-product reconstruction mismatch")
		}
	}
	val := 1.0
	if t.sign[sc] != neg {
		val = -1
	}
	return val
}

// Expect returns the expectation of a pauli.String (phase must be real,
// i.e. Phase in {0, 2}).
func (t *Tableau) Expect(s pauli.String) (float64, error) {
	if len(s.Ops) != t.n {
		return 0, fmt.Errorf("stab: Pauli string length %d != %d qubits", len(s.Ops), t.n)
	}
	ph := ((s.Phase % 4) + 4) % 4
	if ph%2 != 0 {
		return 0, fmt.Errorf("stab: non-Hermitian observable phase i^%d", ph)
	}
	px := make([]uint64, t.words)
	pz := make([]uint64, t.words)
	for q, p := range s.Ops {
		xb, zb := xzFromPauli(p)
		px[q/64] |= xb << (q % 64)
		pz[q/64] |= zb << (q % 64)
	}
	return t.ExpectPacked(px, pz, ph == 2), nil
}
