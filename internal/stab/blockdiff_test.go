// Differential pinning of the bit-plane batched path against the retained
// scalar-per-shot reference engine: same compiled circuits, same devices,
// only the shot axis differs. Two contracts are pinned here: statistical
// agreement (the two samplers draw from the same derived channel
// distributions, so marginals and expectations agree within sampling
// tolerance) and bit-identity of the batched path with itself across
// worker counts.
package stab_test

import (
	"math"
	"math/rand"
	"testing"

	"casq/internal/circuit"
	"casq/internal/device"
	"casq/internal/pass"
	"casq/internal/sim"
	"casq/internal/stab"
)

// compiledFor compiles the circuit through a pipeline with a fixed rng
// seed, so block and scalar engines see the identical op stream.
func compiledFor(t *testing.T, dev *device.Device, pl pass.Pipeline, c *circuit.Circuit, seed int64) *circuit.Circuit {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	out, _, err := pl.Apply(dev, rng, c)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// largeAngleDevice is the CA-EC large-angle calibration from
// TestDifferentialCAECLargeAngles: ZZ 90-160 kHz plus a 230 kHz
// control-control collision, the regime where compensation angles exceed
// pi/4.
func largeAngleDevice() *device.Device {
	opts := device.DefaultOptions()
	opts.Seed = 47
	opts.ZZMin, opts.ZZMax = 90e3, 160e3
	opts.ZZOverride = []device.EdgeRate{{A: 1, B: 2, Hz: 230e3}}
	return device.NewHeavyHexFragment(opts)
}

func stabEngine(dev *device.Device, shots, workers int, scalar bool) *stab.Engine {
	cfg := sim.DefaultConfig()
	cfg.Shots = shots
	cfg.Workers = workers
	cfg.Seed = 11
	e := stab.New(dev, cfg)
	e.Scalar = scalar
	return e
}

// TestBlockVsScalarExpectations pins the batched path against the scalar
// reference on the 6-qubit hex fragment (twirled and CA-EC, including the
// large-angle CA-EC calibration) and the 10-qubit layer-fidelity backend:
// both sample the same derived channels, so expectations must agree within
// the package's differential tolerance.
func TestBlockVsScalarExpectations(t *testing.T) {
	hex := device.NewHeavyHexFragment(device.DefaultOptions())
	lf10, err := device.NewBackend("layerfid10")
	if err != nil {
		t.Fatal(err)
	}
	layer10 := func() *circuit.Layer {
		l := &circuit.Layer{Kind: circuit.TwoQubitLayer}
		l.ECR(1, 0)
		l.ECR(2, 3)
		l.ECR(7, 6)
		return l
	}
	const tol = 0.06
	for _, tc := range []struct {
		name string
		dev  *device.Device
		pl   pass.Pipeline
		c    *circuit.Circuit
		obs  []sim.ObsSpec
	}{
		{"hex-twirled", hex, pass.Twirled(), lfCircuit(6, []int{0, 2}, hexLayer, 4),
			[]sim.ObsSpec{{0: 'X'}, {2: 'X'}, {4: 'Z'}, {5: 'Z'}}},
		{"hex-ca-ec", hex, pass.CAEC(), lfCircuit(6, []int{0, 2}, hexLayer, 4),
			[]sim.ObsSpec{{0: 'X'}, {2: 'X'}, {4: 'Z'}, {5: 'Z'}}},
		{"large-angle-ca-ec", largeAngleDevice(), pass.CAEC(), lfCircuit(6, []int{0, 2}, hexLayer, 4),
			[]sim.ObsSpec{{0: 'X'}, {2: 'X'}, {4: 'Z'}, {5: 'Z'}}},
		{"layerfid10-twirled", lf10, pass.Twirled(), lfCircuit(10, []int{1, 2, 7}, layer10, 2),
			[]sim.ObsSpec{{1: 'X'}, {2: 'X'}, {7: 'X'}, {5: 'Z'}, {9: 'Z'}}},
	} {
		compiled := compiledFor(t, tc.dev, tc.pl, tc.c, 23)
		const shots = 6000
		blockVals, err := stabEngine(tc.dev, shots, 0, false).Expectations(compiled, tc.obs)
		if err != nil {
			t.Fatalf("%s block: %v", tc.name, err)
		}
		scalarVals, err := stabEngine(tc.dev, shots, 0, true).Expectations(compiled, tc.obs)
		if err != nil {
			t.Fatalf("%s scalar: %v", tc.name, err)
		}
		for j := range tc.obs {
			if d := math.Abs(blockVals[j] - scalarVals[j]); d > tol {
				t.Errorf("%s obs %d: block %.4f vs scalar %.4f (|diff| %.4f > %.2f)",
					tc.name, j, blockVals[j], scalarVals[j], d, tol)
			}
		}
	}
}

// TestBlockVsScalarCountsMarginals pins sampled bitstring marginals
// between the two shot paths on a measured twirled circuit.
func TestBlockVsScalarCountsMarginals(t *testing.T) {
	dev := device.NewHeavyHexFragment(device.DefaultOptions())
	c := lfCircuit(6, []int{0, 2}, hexLayer, 2)
	c.NCBits = 6
	ml := c.AddLayer(circuit.MeasureLayer)
	for q := 0; q < 6; q++ {
		ml.Measure(q, q)
	}
	compiled := compiledFor(t, dev, pass.Twirled(), c, 29)
	const shots = 8000
	blockRes, err := stabEngine(dev, shots, 0, false).Counts(compiled)
	if err != nil {
		t.Fatal(err)
	}
	scalarRes, err := stabEngine(dev, shots, 0, true).Counts(compiled)
	if err != nil {
		t.Fatal(err)
	}
	if blockRes.Shots != shots || scalarRes.Shots != shots {
		t.Fatalf("shot totals: block %d scalar %d, want %d", blockRes.Shots, scalarRes.Shots, shots)
	}
	const tol = 0.05
	for q := 0; q < 6; q++ {
		pattern := ""
		for i := 0; i < q; i++ {
			pattern += "x"
		}
		pattern += "1"
		pb, ps := blockRes.Probability(pattern), scalarRes.Probability(pattern)
		if d := math.Abs(pb - ps); d > tol {
			t.Errorf("qubit %d marginal: block %.4f vs scalar %.4f (|diff| %.4f > %.2f)", q, pb, ps, d, tol)
		}
	}
}

// TestBlockBitIdentityAcrossWorkers pins the batched path's determinism
// contract: expectations and counts are bit-identical for worker counts
// 1, 4, and 16 — on the plain hex fragment and on the CA-EC large-angle
// calibration — at a shot count that exercises both full blocks and the
// scalar remainder tail.
func TestBlockBitIdentityAcrossWorkers(t *testing.T) {
	const shots = 1030 // 16 full blocks + 6 tail shots
	for _, tc := range []struct {
		name string
		dev  *device.Device
		pl   pass.Pipeline
	}{
		{"hex-twirled", device.NewHeavyHexFragment(device.DefaultOptions()), pass.Twirled()},
		{"large-angle-ca-ec", largeAngleDevice(), pass.CAEC()},
	} {
		c := lfCircuit(6, []int{0, 2}, hexLayer, 4)
		compiled := compiledFor(t, tc.dev, tc.pl, c, 31)
		obs := []sim.ObsSpec{{0: 'X'}, {2: 'X'}, {4: 'Z'}}
		refVals, err := stabEngine(tc.dev, shots, 1, false).Expectations(compiled, obs)
		if err != nil {
			t.Fatal(err)
		}
		mc := lfCircuit(6, []int{0, 2}, hexLayer, 2)
		mc.NCBits = 6
		ml := mc.AddLayer(circuit.MeasureLayer)
		for q := 0; q < 6; q++ {
			ml.Measure(q, q)
		}
		mcompiled := compiledFor(t, tc.dev, tc.pl, mc, 37)
		refCounts, err := stabEngine(tc.dev, shots, 1, false).Counts(mcompiled)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{4, 16} {
			vals, err := stabEngine(tc.dev, shots, workers, false).Expectations(compiled, obs)
			if err != nil {
				t.Fatal(err)
			}
			for j := range vals {
				if vals[j] != refVals[j] {
					t.Errorf("%s workers=%d obs %d: %v != %v (not bit-identical)",
						tc.name, workers, j, vals[j], refVals[j])
				}
			}
			res, err := stabEngine(tc.dev, shots, workers, false).Counts(mcompiled)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Counts) != len(refCounts.Counts) {
				t.Fatalf("%s workers=%d: counts key sets differ", tc.name, workers)
			}
			for k, v := range refCounts.Counts {
				if res.Counts[k] != v {
					t.Errorf("%s workers=%d: counts[%s] = %d, want %d", tc.name, workers, k, res.Counts[k], v)
				}
			}
		}
	}
}

// TestBlockTailMatchesScalarEngine pins the remainder-tail contract: for
// shot counts below one block, the batched path runs the scalar reference
// frames with the scalar seeding, so Counts must be IDENTICAL (not just
// statistically close) to the Scalar engine's.
func TestBlockTailMatchesScalarEngine(t *testing.T) {
	dev := device.NewHeavyHexFragment(device.DefaultOptions())
	c := lfCircuit(6, []int{0, 2}, hexLayer, 2)
	c.NCBits = 6
	ml := c.AddLayer(circuit.MeasureLayer)
	for q := 0; q < 6; q++ {
		ml.Measure(q, q)
	}
	compiled := compiledFor(t, dev, pass.Twirled(), c, 41)
	const shots = 63 // all tail, no full block
	blockRes, err := stabEngine(dev, shots, 0, false).Counts(compiled)
	if err != nil {
		t.Fatal(err)
	}
	scalarRes, err := stabEngine(dev, shots, 0, true).Counts(compiled)
	if err != nil {
		t.Fatal(err)
	}
	if len(blockRes.Counts) != len(scalarRes.Counts) {
		t.Fatalf("tail-only counts diverge: %v vs %v", blockRes.Counts, scalarRes.Counts)
	}
	for k, v := range scalarRes.Counts {
		if blockRes.Counts[k] != v {
			t.Errorf("tail-only counts[%s] = %d, want %d (must be bit-identical)", k, blockRes.Counts[k], v)
		}
	}
}
