// Differential golden tests: the stabilizer/Pauli-frame engine must agree
// with the exact statevector kernel on small devices under twirled
// configs, within sampling tolerance. These run in tier-1 (plain go test)
// and pin the Pauli-twirling approximation end to end: same pipeline,
// same seeds, same executor — only the engine differs.
package stab_test

import (
	"context"
	"fmt"
	"math"
	"testing"

	"casq/internal/circuit"
	"casq/internal/device"
	"casq/internal/exec"
	"casq/internal/pass"
	"casq/internal/sim"
)

// lfCircuit builds a layer-fidelity-style probe: |+> preparations on the
// gate controls, then depth repetitions of the ECR layer. Even depths
// compose to the identity (ECR^2 = I up to phase), so the prepared Paulis
// return to themselves and any residual decay is pure noise.
func lfCircuit(nq int, prep []int, layer func() *circuit.Layer, depth int) *circuit.Circuit {
	c := circuit.New(nq, 0)
	pl := c.AddLayer(circuit.OneQubitLayer)
	for _, q := range prep {
		pl.H(q)
	}
	for d := 0; d < depth; d++ {
		c.Layers = append(c.Layers, *layer())
	}
	return c
}

func hexLayer() *circuit.Layer {
	l := &circuit.Layer{Kind: circuit.TwoQubitLayer}
	l.ECR(0, 1)
	l.ECR(2, 3)
	return l
}

// runBoth executes the same job under both engines and returns the two
// expectation slices.
func runBoth(t *testing.T, dev *device.Device, pl pass.Pipeline, c *circuit.Circuit, obs []sim.ObsSpec, shots, instances int) (sv, st []float64) {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Shots = shots
	cfg.EnableReadoutErr = false
	ro := exec.RunOptions{Instances: instances, Seed: 11, Cfg: cfg}
	ex := exec.New(dev, pl)
	var err error
	ro.Engine = exec.EngineStatevector
	if sv, err = ex.Expectations(context.Background(), c, obs, ro); err != nil {
		t.Fatalf("statevector: %v", err)
	}
	ro.Engine = exec.EngineStab
	if st, err = ex.Expectations(context.Background(), c, obs, ro); err != nil {
		t.Fatalf("stab: %v", err)
	}
	return sv, st
}

// TestDifferentialHexFragment compares the engines on the 6-qubit
// heavy-hex fragment (with its NNN collision edge) under the twirled,
// CA-DD, and CA-EC pipelines. The tolerance covers two-sided sampling
// noise plus the PTA's per-instance bias.
func TestDifferentialHexFragment(t *testing.T) {
	dev := device.NewHeavyHexFragment(device.DefaultOptions())
	obs := []sim.ObsSpec{{0: 'X'}, {2: 'X'}, {4: 'Z'}, {5: 'Z'}}
	c := lfCircuit(6, []int{0, 2}, hexLayer, 4)
	const tol = 0.06
	for _, tc := range []struct {
		name string
		pl   pass.Pipeline
	}{
		{"twirled", pass.Twirled()},
		{"ca-dd", pass.CADD()},
		{"ca-ec", pass.CAEC()},
	} {
		sv, st := runBoth(t, dev, tc.pl, c, obs, 3000, 8)
		for j := range obs {
			if d := math.Abs(sv[j] - st[j]); d > tol {
				t.Errorf("%s obs %d: statevector %.4f vs stab %.4f (|diff| %.4f > %.2f)",
					tc.name, j, sv[j], st[j], d, tol)
			}
		}
	}
}

// TestDifferentialCAECLargeAngles pins the regime where CA-EC
// compensations exceed pi/4: the paper's noisier Fig. 8 calibration
// (ZZ 90-160 kHz plus a 230 kHz control-control collision) accumulates
// coherent angles large enough that (a) ec-tagged compensation gates must
// ride the accumulator whole — Clifford-splitting them desynchronizes
// the cancellation — and (b) pending control phases must survive through
// ECR gates so the deferred materialized-RZZ compensation still cancels
// them. Both engines must agree, and CA-EC must actually help (stay at
// or above plain twirling) under the stabilizer engine — the regression
// that motivated this test inverted that ordering.
func TestDifferentialCAECLargeAngles(t *testing.T) {
	opts := device.DefaultOptions()
	opts.Seed = 47
	opts.ZZMin, opts.ZZMax = 90e3, 160e3
	opts.ZZOverride = []device.EdgeRate{{A: 1, B: 2, Hz: 230e3}}
	dev := device.NewHeavyHexFragment(opts)
	c := lfCircuit(6, []int{0, 2}, hexLayer, 4)
	obs := []sim.ObsSpec{{0: 'X'}, {2: 'X'}, {4: 'Z'}, {5: 'Z'}}
	svEC, stEC := runBoth(t, dev, pass.CAEC(), c, obs, 3000, 8)
	const tol = 0.06
	for j := range obs {
		if d := math.Abs(svEC[j] - stEC[j]); d > tol {
			t.Errorf("ca-ec obs %d: statevector %.4f vs stab %.4f (|diff| %.4f > %.2f)",
				j, svEC[j], stEC[j], d, tol)
		}
	}
	_, stTw := runBoth(t, dev, pass.Twirled(), c, obs, 3000, 8)
	// CA-EC must not look worse than twirling under stab on the gated
	// probes (generous margin: both are near their ceilings).
	for _, j := range []int{0, 1} {
		if stEC[j] < stTw[j]-tol {
			t.Errorf("stab ca-ec obs %d (%.4f) worse than twirled (%.4f): compensation not cancelling",
				j, stEC[j], stTw[j])
		}
	}
}

// TestDifferentialLayerFid10 compares the engines on the paper's 10-qubit
// layer-fidelity fragment with its benchmark layer.
func TestDifferentialLayerFid10(t *testing.T) {
	dev, err := device.NewBackend("layerfid10")
	if err != nil {
		t.Fatal(err)
	}
	layer := func() *circuit.Layer {
		l := &circuit.Layer{Kind: circuit.TwoQubitLayer}
		l.ECR(1, 0)
		l.ECR(2, 3)
		l.ECR(7, 6)
		return l
	}
	c := lfCircuit(10, []int{1, 2, 7}, layer, 2)
	obs := []sim.ObsSpec{{1: 'X'}, {2: 'X'}, {7: 'X'}, {5: 'Z'}, {9: 'Z'}}
	sv, st := runBoth(t, dev, pass.Twirled(), c, obs, 2400, 8)
	const tol = 0.06
	for j := range obs {
		if d := math.Abs(sv[j] - st[j]); d > tol {
			t.Errorf("obs %d: statevector %.4f vs stab %.4f (|diff| %.4f > %.2f)", j, sv[j], st[j], d, tol)
		}
	}
}

// TestDifferentialCounts compares sampled bitstring marginals between the
// engines on a measured twirled circuit.
func TestDifferentialCounts(t *testing.T) {
	dev := device.NewHeavyHexFragment(device.DefaultOptions())
	c := lfCircuit(6, []int{0, 2}, hexLayer, 2)
	c.NCBits = 6
	ml := c.AddLayer(circuit.MeasureLayer)
	for q := 0; q < 6; q++ {
		ml.Measure(q, q)
	}
	cfg := sim.DefaultConfig()
	cfg.Shots = 4000
	ro := exec.RunOptions{Instances: 8, Seed: 17, Cfg: cfg}
	ex := exec.New(dev, pass.Twirled())
	ro.Engine = exec.EngineStatevector
	sv, err := ex.Counts(context.Background(), c, ro)
	if err != nil {
		t.Fatal(err)
	}
	ro.Engine = exec.EngineStab
	st, err := ex.Counts(context.Background(), c, ro)
	if err != nil {
		t.Fatal(err)
	}
	const tol = 0.05
	for q := 0; q < 6; q++ {
		pattern := ""
		for i := 0; i < q; i++ {
			pattern += "x"
		}
		pattern += "1"
		pv, pt := sv.Probability(pattern), st.Probability(pattern)
		if d := math.Abs(pv - pt); d > tol {
			t.Errorf("qubit %d marginal: statevector %.4f vs stab %.4f (|diff| %.4f > %.2f)", q, pv, pt, d, tol)
		}
	}
}

// TestAutoDispatch: EngineAuto must resolve to the stabilizer engine for
// twirled Clifford circuits and to the statevector kernel for
// non-representable ones, recording the choice in the instance reports.
func TestAutoDispatch(t *testing.T) {
	dev := device.NewHeavyHexFragment(device.DefaultOptions())
	cfg := sim.DefaultConfig()
	cfg.Shots = 32
	ro := exec.RunOptions{Instances: 2, Seed: 5, Cfg: cfg, Engine: exec.EngineAuto}

	c := lfCircuit(6, []int{0}, hexLayer, 2)
	ex := exec.New(dev, pass.Twirled())
	res, err := ex.Run(context.Background(), exec.Job{Circuit: c, Observables: []sim.ObsSpec{{0: 'X'}}, Opts: ro})
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range res.Reports {
		if rep.Engine != exec.EngineStab {
			t.Fatalf("twirled Clifford circuit: auto resolved to %q, want %q", rep.Engine, exec.EngineStab)
		}
	}

	// A non-Clifford rotation forces the statevector kernel.
	nc := circuit.New(6, 0)
	nc.AddLayer(circuit.OneQubitLayer).RY(0, 0.3)
	nc.AddLayer(circuit.TwoQubitLayer).ECR(0, 1)
	res, err = ex.Run(context.Background(), exec.Job{Circuit: nc, Observables: []sim.ObsSpec{{0: 'Z'}}, Opts: ro})
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range res.Reports {
		if rep.Engine != exec.EngineStatevector {
			t.Fatalf("non-Clifford circuit: auto resolved to %q, want %q", rep.Engine, exec.EngineStatevector)
		}
	}

	// Forcing stab on a non-representable circuit is an error, not a
	// silent approximation.
	ro.Engine = exec.EngineStab
	if _, err := ex.Run(context.Background(), exec.Job{Circuit: nc, Observables: []sim.ObsSpec{{0: 'Z'}}, Opts: ro}); err == nil {
		t.Fatal("forced stab on a non-Clifford circuit must fail")
	}

	ro.Engine = "warp"
	if _, err := ex.Run(context.Background(), exec.Job{Circuit: c, Opts: ro}); err == nil {
		t.Fatal("unknown engine must fail")
	}
}

// TestStabScalesBeyondStatevector is the scaling smoke test: a twirled
// Clifford layer on the full 127-qubit Eagle lattice runs under the
// stabilizer engine (impossible for the 2^127 statevector) and returns
// sane expectations.
func TestStabScalesBeyondStatevector(t *testing.T) {
	dev, err := device.NewBackend("heavyhex127")
	if err != nil {
		t.Fatal(err)
	}
	// Tile disjoint ECR gates over the couplers.
	used := make([]bool, dev.NQubits)
	layer := &circuit.Layer{Kind: circuit.TwoQubitLayer}
	gates := 0
	for _, e := range dev.Edges {
		if used[e.A] || used[e.B] {
			continue
		}
		used[e.A], used[e.B] = true, true
		dir := dev.ECRDir[e]
		layer.ECR(dir.Src, dir.Dst)
		gates++
	}
	if gates < 40 {
		t.Fatalf("expected a dense tiling, got %d gates", gates)
	}
	c := circuit.New(dev.NQubits, 0)
	c.AddLayer(circuit.OneQubitLayer).H(layer.Instrs[0].Qubits[0])
	c.Layers = append(c.Layers, layer.Clone(), layer.Clone())

	cfg := sim.DefaultConfig()
	cfg.Shots = 64
	ex := exec.New(dev, pass.Twirled())
	vals, err := ex.Expectations(context.Background(), c,
		[]sim.ObsSpec{{layer.Instrs[0].Qubits[0]: 'X'}},
		exec.RunOptions{Instances: 2, Seed: 3, Cfg: cfg, Engine: exec.EngineStab})
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] <= 0 || vals[0] > 1 {
		t.Fatalf("127q <X> = %.4f, want in (0, 1]", vals[0])
	}

	// The statevector engine must refuse loudly rather than allocate 2^127.
	_, err = ex.Expectations(context.Background(), c,
		[]sim.ObsSpec{{0: 'Z'}},
		exec.RunOptions{Instances: 1, Seed: 3, Cfg: cfg, Engine: exec.EngineStatevector})
	if err == nil {
		t.Fatal("statevector at 127q must fail")
	}
	if got := fmt.Sprint(err); got == "" {
		t.Fatal("empty error")
	}
}
