package stab

import (
	"math"
	"math/rand"
	"testing"

	"casq/internal/gates"
	"casq/internal/linalg"
	"casq/internal/pauli"
)

// randomCliffordStep applies one random Clifford gate to both the tableau
// and the statevector.
func randomCliffordStep(t *testing.T, rng *rand.Rand, tab *Tableau, psi linalg.Vector, n int) {
	t.Helper()
	switch rng.Intn(3) {
	case 0: // generic 1q Clifford via table
		kinds := []gates.Kind{gates.H, gates.S, gates.Sdg, gates.SX, gates.SXdg}
		g := kinds[rng.Intn(len(kinds))]
		q := rng.Intn(n)
		tbl := clifford1For(g, nil)
		if tbl == nil {
			t.Fatalf("%s should be Clifford", g)
		}
		tab.ApplyClifford1(q, tbl)
		psi.Apply1Q(gates.Matrix1Q(g), q)
	case 1: // Pauli gate
		ps := []pauli.Pauli{pauli.X, pauli.Y, pauli.Z}
		p := ps[rng.Intn(3)]
		q := rng.Intn(n)
		tab.ApplyPauli(q, p)
		psi.Apply1Q(p.Matrix(), q)
	default: // 2q Clifford
		kinds := []gates.Kind{gates.ECR, gates.CX, gates.SWAP}
		g := kinds[rng.Intn(len(kinds))]
		q0 := rng.Intn(n)
		q1 := rng.Intn(n)
		for q1 == q0 {
			q1 = rng.Intn(n)
		}
		tbl := clifford2For(g, nil)
		if tbl == nil {
			t.Fatalf("%s should be Clifford", g)
		}
		tab.ApplyClifford2(q0, q1, tbl)
		psi.Apply2Q(gates.Matrix2Q(g), q0, q1)
	}
}

// TestTableauExpectationsMatchStatevector drives random Clifford circuits
// through the bit-packed tableau and an exact statevector in lockstep and
// compares every Pauli expectation on the final state.
func TestTableauExpectationsMatchStatevector(t *testing.T) {
	const n = 4
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		tab := NewTableau(n)
		psi := linalg.NewVector(n)
		psi[0] = 1
		steps := 3 + rng.Intn(12)
		for s := 0; s < steps; s++ {
			randomCliffordStep(t, rng, tab, psi, n)
		}
		// Exhaustive Pauli strings on 4 qubits (256 of them).
		idx := make([]pauli.Pauli, n)
		for {
			s := pauli.String{Ops: append([]pauli.Pauli(nil), idx...)}
			got, err := tab.Expect(s)
			if err != nil {
				t.Fatal(err)
			}
			want := s.ExpectationOnState(psi)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d: <%v>: tableau %.3f, statevector %.3f", trial, s, got, want)
			}
			i := 0
			for ; i < n; i++ {
				if idx[i] < pauli.Z {
					idx[i]++
					break
				}
				idx[i] = pauli.I
			}
			if i == n {
				break
			}
		}
	}
}

// TestTableauMeasureBellCorrelation checks the CHP measurement update:
// measuring one half of a Bell pair is random, the other half then
// deterministic and equal, and the recorded branch-flip stabilizer
// anticommutes with Z on the measured qubit.
func TestTableauMeasureBellCorrelation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		tab := NewTableau(2)
		tab.ApplyClifford1(0, clifford1For(gates.H, nil))
		tab.ApplyClifford2(0, 1, clifford2For(gates.CX, nil))
		b0, det, fx, fz := tab.MeasureZ(0, rng)
		if det {
			t.Fatal("Bell measurement should be nondeterministic")
		}
		if fx == nil || fz == nil {
			t.Fatal("nondeterministic measurement must record a flip stabilizer")
		}
		// The flip stabilizer must anticommute with Z_0.
		pz := []uint64{1}
		px := []uint64{0}
		var par uint64
		par ^= fx[0] & pz[0]
		par ^= fz[0] & px[0]
		if !parity64(par) {
			t.Fatal("flip stabilizer commutes with Z0")
		}
		b1, det1, _, _ := tab.MeasureZ(1, rng)
		if !det1 {
			t.Fatal("second Bell measurement should be deterministic")
		}
		if b0 != b1 {
			t.Fatalf("Bell outcomes disagree: %d vs %d", b0, b1)
		}
	}
}

// TestTableauDeterministicMeasure pins deterministic outcomes: |0>, X|0>,
// and a +1 X eigenstate measured after H.
func TestTableauDeterministicMeasure(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tab := NewTableau(1)
	if b, det, _, _ := tab.MeasureZ(0, rng); !det || b != 0 {
		t.Fatalf("|0> measurement: got %d det=%v", b, det)
	}
	tab.ApplyPauli(0, pauli.X)
	if b, det, _, _ := tab.MeasureZ(0, rng); !det || b != 1 {
		t.Fatalf("X|0> measurement: got %d det=%v", b, det)
	}
	// H|1> is |->: X expectation -1, Z expectation 0.
	tab.ApplyClifford1(0, clifford1For(gates.H, nil))
	sX, _ := pauli.ParseString("X")
	if v, err := tab.Expect(sX); err != nil || v != -1 {
		t.Fatalf("<X> on |->: %v err=%v", v, err)
	}
	sZ, _ := pauli.ParseString("Z")
	if v, err := tab.Expect(sZ); err != nil || v != 0 {
		t.Fatalf("<Z> on |->: %v err=%v", v, err)
	}
}

// TestSplitQuarter pins the Clifford/residual decomposition of virtual-Z
// angles.
func TestSplitQuarter(t *testing.T) {
	cases := []struct {
		theta float64
		k     int
		delta float64
	}{
		{0, 0, 0},
		{math.Pi / 2, 1, 0},
		{math.Pi, 2, 0},
		{-math.Pi / 2, 3, 0},
		{3 * math.Pi / 2, 3, 0},
		{2 * math.Pi, 0, 0},
		{0.01, 0, 0.01},
		{math.Pi/2 + 0.02, 1, 0.02},
		{-0.03, 0, -0.03},
	}
	for _, c := range cases {
		k, d := splitQuarter(c.theta)
		if k != c.k || math.Abs(d-c.delta) > 1e-12 {
			t.Fatalf("splitQuarter(%g) = (%d, %g), want (%d, %g)", c.theta, k, d, c.k, c.delta)
		}
	}
}
