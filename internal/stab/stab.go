// Package stab is the scalable stabilizer/Pauli-frame engine: the
// simulation backend that runs full-device twirled circuits — 127 qubits
// and beyond — in O(shots * gates * n/64) instead of the statevector
// kernel's O(shots * gates * 2^n).
//
// It rests on the physics the paper builds on: after Pauli twirling, the
// coherent crosstalk channels the paper characterizes (always-on ZZ,
// spectator Z, Stark shifts, charge-parity and quasistatic detuning, NNN
// collisions) become stochastic Pauli channels. The engine therefore
// splits a compiled circuit into
//
//   - an ideal Clifford skeleton, simulated exactly: a bit-packed
//     Aaronson-Gottesman tableau produces one reference trajectory, and a
//     per-shot Pauli frame — conjugated through the same
//     pauli.CliffordTable tables the twirl pass uses — tracks each
//     trajectory's deviation from it; and
//   - a noise model derived from the device calibration via the
//     Pauli-twirling approximation (PTA): the compiler walks the schedule
//     exactly like the statevector kernel, integrating every
//     toggling-frame coherent-error angle (with sign flips at DD/echo/
//     twirl pulses) and converting the surviving angles into Z and
//     correlated Z(x)Z channel probabilities at the kernel's flush
//     points, alongside twirled amplitude-damping/dephasing (T1/T2),
//     depolarizing gate error, and readout assignment error.
//
// Engine implements sim.Engine; the executor (internal/exec) dispatches
// between the statevector and stabilizer engines per job, automatically
// when a compiled circuit is twirl-representable (Supports) and twirled
// (HasTwirl). Agreement with the statevector kernel on small devices is
// pinned by differential tests in this package.
package stab

import (
	"fmt"
	"math/bits"
	"sort"

	"casq/internal/circuit"
	"casq/internal/device"
	"casq/internal/obs"
	"casq/internal/pauli"
	"casq/internal/sim"
)

// Engine executes twirl-representable circuits on a device under a noise
// config by Pauli-frame sampling. It implements sim.Engine with the same
// Config semantics (Shots, Seed, Workers, channel toggles) as the
// statevector Runner.
type Engine struct {
	Dev *device.Device
	Cfg sim.Config

	// Scalar forces the retained scalar-per-shot reference path (frame.go)
	// instead of the default bit-plane batched path (block.go), which
	// advances 64 shots per word op. The two are differentially pinned
	// against each other in this package's tests; production callers leave
	// Scalar false.
	Scalar bool
}

// New returns a stabilizer engine.
func New(dev *device.Device, cfg sim.Config) *Engine {
	return &Engine{Dev: dev, Cfg: cfg}
}

// Engine implements sim.Engine.
var _ sim.Engine = (*Engine)(nil)

// span opens an engine-level span on the configured tracer (no-op Span
// when tracing is disabled). A helper rather than inline calls because
// Expectations takes a parameter named obs, shadowing the package name.
func (e *Engine) span(name string) obs.Span {
	if !e.Cfg.Tracer.Enabled() {
		return obs.Span{}
	}
	return e.Cfg.Tracer.Start(name).WithLane(e.Cfg.Lane)
}

// Counts runs the circuit and returns measured bitstring counts
// (classical bit i at string position i), shot-for-shot deterministic in
// Cfg.Seed and independent of the worker count.
func (e *Engine) Counts(c *circuit.Circuit) (sim.Result, error) {
	if e.Scalar {
		sp := e.span("stab.counts.scalar")
		defer sp.End()
		p, err := e.compile(c)
		if err != nil {
			return sim.Result{}, err
		}
		shots := e.numShots()
		keys := make([]string, shots)
		e.forEachShot(p, func(i int, f *frame) {
			keys[i] = sim.BitsKey(f.cbits)
		})
		res := sim.Result{Counts: map[string]int{}, Shots: shots}
		for _, k := range keys {
			res.Counts[k]++
		}
		return res, nil
	}
	pb, err := e.CountsPacked(c)
	if err != nil {
		return sim.Result{}, err
	}
	return pb.Counts(), nil
}

// Engine implements sim.PackedSampler.
var _ sim.PackedSampler = (*Engine)(nil)

// CountsPacked runs the circuit through the bit-plane path and returns the
// measured classical bits as shot-packed planes: full 64-shot blocks copy
// their outcome words straight into the planes (one word move per
// classical bit), the scalar remainder tail sets its bits individually.
// Results are deterministic in Cfg.Seed and bit-identical for any worker
// count.
func (e *Engine) CountsPacked(c *circuit.Circuit) (sim.PackedBits, error) {
	sp := e.span("stab.counts")
	defer sp.End()
	p, err := e.compile(c)
	if err != nil {
		return sim.PackedBits{}, err
	}
	pb := sim.NewPackedBits(p.ncb, e.numShots())
	e.forEachShotBlock(p,
		func(b, base int, bf *blockFrame) {
			for cb := 0; cb < p.ncb; cb++ {
				pb.Planes[cb][b] = bf.cbits[cb]
			}
		},
		func(i int, f *frame) {
			for cb, v := range f.cbits {
				pb.Set(cb, i, v)
			}
		})
	return pb, nil
}

// obsPlan is one compiled observable: packed X/Z masks (qubit axis, for
// the scalar path), the support qubit lists (for the bit-plane path's
// word-parallel parity), and the reference state's exact expectation
// (+1, -1, or 0).
type obsPlan struct {
	px, pz []uint64
	xQ, zQ []int32
	ref    float64
}

func (e *Engine) planObs(p *program, o sim.ObsSpec) (obsPlan, error) {
	pl := obsPlan{px: make([]uint64, p.words), pz: make([]uint64, p.words)}
	qs := make([]int, 0, len(o))
	for q := range o {
		qs = append(qs, q)
	}
	sort.Ints(qs)
	for _, q := range qs {
		if q < 0 || q >= p.nq {
			return obsPlan{}, fmt.Errorf("stab: observable qubit %d out of range for %d qubits", q, p.nq)
		}
		w, b := q/64, uint(q%64)
		switch o[q] {
		case 'X':
			pl.px[w] |= 1 << b
			pl.xQ = append(pl.xQ, int32(q))
		case 'Y':
			pl.px[w] |= 1 << b
			pl.pz[w] |= 1 << b
			pl.xQ = append(pl.xQ, int32(q))
			pl.zQ = append(pl.zQ, int32(q))
		case 'Z':
			pl.pz[w] |= 1 << b
			pl.zQ = append(pl.zQ, int32(q))
		case 'I':
		default:
			return obsPlan{}, fmt.Errorf("stab: invalid observable label %q", o[q])
		}
	}
	pl.ref = p.tab.ExpectPacked(pl.px, pl.pz, false)
	return pl, nil
}

// Expectations runs the circuit and returns the mean over frame
// trajectories of each Pauli observable: the reference tableau provides
// the exact noiseless expectation, each shot contributes its frame's sign
// relative to it. On the bit-plane path each full 64-shot block
// contributes one popcount-reduced partial sum per observable
// (ref * (64 - 2*popcount(parity word))); the reduction runs in unit-index
// order so the result is bit-identical for any worker count.
func (e *Engine) Expectations(c *circuit.Circuit, obs []sim.ObsSpec) ([]float64, error) {
	sp := e.span("stab.expectations")
	defer sp.End()
	p, err := e.compile(c)
	if err != nil {
		return nil, err
	}
	plans := make([]obsPlan, len(obs))
	for j, o := range obs {
		if plans[j], err = e.planObs(p, o); err != nil {
			return nil, err
		}
	}
	shots := e.numShots()
	nobs := len(obs)
	if e.Scalar {
		sums := make([]float64, shots*nobs)
		e.forEachShot(p, func(i int, f *frame) {
			row := sums[i*nobs : (i+1)*nobs]
			for j := range plans {
				v := plans[j].ref
				if v != 0 && f.anticommutes(plans[j].px, plans[j].pz) {
					v = -v
				}
				row[j] = v
			}
		})
		return reduceRows(sums, shots, nobs), nil
	}
	// One row per full 64-shot block, then one per remainder tail shot.
	full := shots / sim.ShotBlockSize
	rem := shots - full*sim.ShotBlockSize
	sums := make([]float64, (full+rem)*nobs)
	e.forEachShotBlock(p,
		func(b, base int, bf *blockFrame) {
			row := sums[b*nobs : (b+1)*nobs]
			for j := range plans {
				if plans[j].ref == 0 {
					continue
				}
				par := bf.anticommuteWord(&plans[j])
				row[j] = plans[j].ref * float64(sim.ShotBlockSize-2*bits.OnesCount64(par))
			}
		},
		func(i int, f *frame) {
			r := full + (i - full*sim.ShotBlockSize)
			row := sums[r*nobs : (r+1)*nobs]
			for j := range plans {
				v := plans[j].ref
				if v != 0 && f.anticommutes(plans[j].px, plans[j].pz) {
					v = -v
				}
				row[j] = v
			}
		})
	return reduceRows(sums, shots, nobs), nil
}

// reduceRows sums per-unit partial rows in unit order and normalizes by
// the shot count — the deterministic reduction both shot paths share.
func reduceRows(sums []float64, shots, nobs int) []float64 {
	out := make([]float64, nobs)
	rows := len(sums) / max(nobs, 1)
	for i := 0; i < rows; i++ {
		for j := 0; j < nobs; j++ {
			out[j] += sums[i*nobs+j]
		}
	}
	for j := range out {
		out[j] /= float64(shots)
	}
	return out
}

// Info compiles the circuit and returns the program summary (op, channel,
// and measurement counts) — the channel-derivation surface the benchmarks
// track.
func (e *Engine) Info(c *circuit.Circuit) (CompileInfo, error) {
	p, err := e.compile(c)
	if err != nil {
		return CompileInfo{}, err
	}
	return p.info(), nil
}

// ConjugateLayer conjugates a Pauli string through the ideal action of a
// two-qubit Clifford layer using the engine's packed-row machinery:
// s -> L s L^dagger with the sign tracked in the phase (0 or 2 added).
// It is the tableau-side counterpart of twirl.PropagateThroughLayer and
// is cross-checked against it property-wise.
func ConjugateLayer(l *circuit.Layer, s pauli.String) (pauli.String, error) {
	n := len(s.Ops)
	words := (n + 63) / 64
	px := make([]uint64, words)
	pz := make([]uint64, words)
	for q, p := range s.Ops {
		xb, zb := xzFromPauli(p)
		px[q/64] |= xb << (q % 64)
		pz[q/64] |= zb << (q % 64)
	}
	neg := false
	for _, in := range l.TwoQubitGates() {
		tab := clifford2For(in.Gate, in.Params)
		if tab == nil {
			return pauli.String{}, fmt.Errorf("stab: %s is not Clifford", in.Gate)
		}
		q0, q1 := in.Qubits[0], in.Qubits[1]
		w0, b0 := q0/64, uint(q0%64)
		w1, b1 := q1/64, uint(q1%64)
		p0 := pauliFromXZ((px[w0]>>b0)&1, (pz[w0]>>b0)&1)
		p1 := pauliFromXZ((px[w1]>>b1)&1, (pz[w1]>>b1)&1)
		c := tab.Conjugate(pauli.Pair{P0: p0, P1: p1})
		nx0, nz0 := xzFromPauli(c.Out.P0)
		nx1, nz1 := xzFromPauli(c.Out.P1)
		px[w0] = px[w0]&^(1<<b0) | nx0<<b0
		pz[w0] = pz[w0]&^(1<<b0) | nz0<<b0
		px[w1] = px[w1]&^(1<<b1) | nx1<<b1
		pz[w1] = pz[w1]&^(1<<b1) | nz1<<b1
		if c.Sign < 0 {
			neg = !neg
		}
	}
	out := pauli.NewString(n)
	out.Phase = s.Phase
	if neg {
		out.Phase = (out.Phase + 2) % 4
	}
	for q := 0; q < n; q++ {
		w, b := q/64, uint(q%64)
		out.Ops[q] = pauliFromXZ((px[w]>>b)&1, (pz[w]>>b)&1)
	}
	return out, nil
}
