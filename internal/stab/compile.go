package stab

import (
	"cmp"
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sort"
	"sync"

	"casq/internal/circuit"
	"casq/internal/device"
	"casq/internal/gates"
	"casq/internal/pauli"
	"casq/internal/twirl"
)

const hzToRadPerNs = 2 * math.Pi * 1e-9

// quarterEps bounds how far a virtual-Z (or RZZ) angle may sit from a
// multiple of pi/2 and still count as Clifford. CA-EC compensation angles
// (tag "ec") are exempt: their residual goes into the coherent-phase
// accumulator, where it cancels the error integral it compensates.
const quarterEps = 1e-9

// opKind enumerates program operations. Clifford and Pauli ops drive both
// the reference tableau and the per-shot frames; channel ops are sampled
// into frames only; measure ops consult the reference record.
type opKind int

const (
	opCliff1    opKind = iota // 1q Clifford conjugation on q0
	opCliff2                  // 2q Clifford conjugation on (q0, q1)
	opPauliGate               // fixed Pauli gate (twirl/DD pulse): tableau signs only
	opChan1                   // one-qubit Pauli channel with cumulative thresholds
	opZZ                      // correlated Z(x)Z flip with probability prob
	opDepol2                  // uniform two-qubit depolarizing with probability prob
	opMeasure                 // Z measurement of q0 into cbit, readout flip prob
)

type op struct {
	kind   opKind
	q0, q1 int
	c1     *pauli.Clifford1Q
	c2     *pauli.CliffordTable
	p      pauli.Pauli
	// chan1 cumulative thresholds: u < thrX -> X, < thrXY -> Y, < thrXYZ -> Z.
	thrX, thrXY, thrXYZ float64
	prob                float64 // opZZ / opDepol2 probability, opMeasure readout flip
	cbit                int
	mi                  int // measurement index into program.meas
}

// measInfo is the reference record of one measurement: the tableau's
// outcome, whether it was deterministic, and — when random — the packed
// pre-measurement stabilizer whose frame-multiplication flips the
// collapse branch.
type measInfo struct {
	ref    int
	det    bool
	fx, fz []uint64
}

// program is one compiled circuit: the op stream, the reference
// measurement record, and the final reference tableau (for expectation
// values).
type program struct {
	nq, ncb, words int
	ops            []op
	meas           []measInfo
	tab            *Tableau
}

// CompileInfo summarizes a compiled program for benchmarks and tests.
type CompileInfo struct {
	Ops       int // total program operations
	Cliffords int // tableau/frame conjugations
	Channels  int // derived Pauli-channel locations
	Measures  int
}

// ---- Clifford table resolution -------------------------------------------

type matKey struct {
	g          gates.Kind
	np         int
	p0, p1, p2 float64
}

var (
	tableMu    sync.Mutex
	cliff1Memo = map[matKey]*pauli.Clifford1Q{}
	cliff2Memo = map[matKey]*pauli.CliffordTable{}
	sPow       [4]*pauli.Clifford1Q // S^k conjugation tables, k=1..3 (0 unused)
	sPowOnce   sync.Once
)

func keyFor(g gates.Kind, params []float64) (matKey, bool) {
	k := matKey{g: g, np: len(params)}
	if len(params) > 3 {
		return k, false
	}
	switch len(params) {
	case 3:
		k.p2 = params[2]
		fallthrough
	case 2:
		k.p1 = params[1]
		fallthrough
	case 1:
		k.p0 = params[0]
	}
	return k, true
}

// clifford1For resolves (building on first use) the conjugation table of a
// one-qubit gate kind, or nil when the gate is not Clifford.
func clifford1For(g gates.Kind, params []float64) *pauli.Clifford1Q {
	k, cacheable := keyFor(g, params)
	if cacheable {
		tableMu.Lock()
		if t, ok := cliff1Memo[k]; ok {
			tableMu.Unlock()
			return t
		}
		tableMu.Unlock()
	}
	t, err := pauli.NewClifford1Q(gates.Matrix1Q(g, params...))
	if err != nil {
		t = nil
	}
	if cacheable {
		tableMu.Lock()
		cliff1Memo[k] = t
		tableMu.Unlock()
	}
	return t
}

// clifford2For resolves the conjugation table of a two-qubit gate kind,
// or nil when it is not Clifford. ECR/CX/SWAP reuse the twirl package's
// shared tables.
func clifford2For(g gates.Kind, params []float64) *pauli.CliffordTable {
	switch g {
	case gates.ECR, gates.CX, gates.SWAP:
		t, err := twirl.TableFor(g)
		if err != nil {
			return nil
		}
		return t
	}
	k, cacheable := keyFor(g, params)
	if cacheable {
		tableMu.Lock()
		if t, ok := cliff2Memo[k]; ok {
			tableMu.Unlock()
			return t
		}
		tableMu.Unlock()
	}
	t, err := pauli.NewCliffordTable(gates.Matrix2Q(g, params...))
	if err != nil {
		t = nil
	}
	if cacheable {
		tableMu.Lock()
		cliff2Memo[k] = t
		tableMu.Unlock()
	}
	return t
}

// sPowTable returns the conjugation table of S^k (k in 1..3: S, Z, Sdg).
func sPowTable(k int) *pauli.Clifford1Q {
	sPowOnce.Do(func() {
		for i, g := range []gates.Kind{gates.S, gates.ZGate, gates.Sdg} {
			t, err := pauli.NewClifford1Q(gates.Matrix1Q(g))
			if err != nil {
				panic("stab: S-power table: " + err.Error())
			}
			sPow[i+1] = t
		}
	})
	return sPow[k]
}

// splitQuarter decomposes an angle into its Clifford part k*(pi/2)
// (k in 0..3) and the residual delta in (-pi/4, pi/4].
func splitQuarter(theta float64) (k int, delta float64) {
	r := math.Round(theta / (math.Pi / 2))
	delta = theta - r*(math.Pi/2)
	k = int(r) % 4
	if k < 0 {
		k += 4
	}
	return k, delta
}

// ---- Representability ----------------------------------------------------

// Supports reports whether the circuit is twirl-representable: every gate
// is Clifford up to virtual-Z residuals that the Pauli-twirling
// approximation absorbs. Specifically: any Clifford one-qubit gate;
// RZ/RZZ at multiples of pi/2 (arbitrary angles allowed for "ec"-tagged
// compensation gates, whose residual rides the coherent-phase
// accumulator); ECR/CX/SWAP; measurements. Classically conditioned gates
// and Reset are not representable (frame sampling has no feed-forward).
// A nil error means the stabilizer engine can run the circuit.
func Supports(c *circuit.Circuit) error {
	for li := range c.Layers {
		for ii := range c.Layers[li].Instrs {
			in := &c.Layers[li].Instrs[ii]
			if in.Cond != nil {
				return fmt.Errorf("stab: layer %d: conditioned %s has data-dependent frames", li, in.Gate)
			}
			switch in.Gate {
			case gates.Delay, gates.Barrier, gates.ID, gates.Measure:
			case gates.Reset:
				return fmt.Errorf("stab: layer %d: reset is not representable", li)
			case gates.ZGate, gates.S, gates.Sdg, gates.XGate, gates.YGate, gates.XDD, gates.H, gates.SX, gates.SXdg:
			case gates.RZ:
				if _, d := splitQuarter(in.Params[0]); math.Abs(d) > quarterEps && in.Tag != "ec" {
					return fmt.Errorf("stab: layer %d: rz(%g) is not Clifford", li, in.Params[0])
				}
			case gates.RZZ:
				if _, d := splitQuarter(in.Params[0]); math.Abs(d) > quarterEps && in.Tag != "ec" {
					return fmt.Errorf("stab: layer %d: rzz(%g) is not Clifford", li, in.Params[0])
				}
			case gates.ECR, gates.CX, gates.SWAP:
			case gates.Ucan, gates.ZX:
				if clifford2For(in.Gate, in.Params) == nil {
					return fmt.Errorf("stab: layer %d: %s%v is not Clifford", li, in.Gate, in.Params)
				}
			default:
				if gates.NumQubits(in.Gate) == 1 {
					if clifford1For(in.Gate, in.Params) == nil {
						return fmt.Errorf("stab: layer %d: %s%v is not Clifford", li, in.Gate, in.Params)
					}
				} else {
					return fmt.Errorf("stab: layer %d: %s is not representable", li, in.Gate)
				}
			}
		}
	}
	return nil
}

// HasTwirl reports whether the circuit carries Pauli-twirl gates — the
// precondition for the Pauli-twirling approximation to hold, and what the
// executor's auto engine dispatch requires alongside Supports.
func HasTwirl(c *circuit.Circuit) bool {
	for li := range c.Layers {
		if c.Layers[li].Kind == circuit.TwirlLayer && len(c.Layers[li].Instrs) > 0 {
			return true
		}
		for ii := range c.Layers[li].Instrs {
			if c.Layers[li].Instrs[ii].Tag == "twirl" {
				return true
			}
		}
	}
	return false
}

// ---- Compilation ---------------------------------------------------------

type cevKind int

const (
	cevClifford2 cevKind = iota
	cevPauliPulse
	cevVirtualZ
	cevRZZ
	cevEchoFlip
	cevApply1Q
	cevGateErr2
	cevMeasure
)

type cevent struct {
	t     float64
	seq   int
	kind  cevKind
	q0    int
	q1    int
	c1    *pauli.Clifford1Q
	c2    *pauli.CliffordTable
	p     pauli.Pauli
	angle float64
	errP  float64
	edge  int
	cbit  int
	ec    bool // "ec"-tagged compensation: full angle rides the accumulator
	ecr   bool // ECR gate: the control's pending phases ride through
}

type starkTerm struct {
	src, dst int
	w        float64 // rad/ns
}

// compiler is the single-pass walker that mirrors the statevector
// simulator's event schedule, replacing statevector amplitudes with
// symbolic coherent-phase accumulators: it integrates every toggling-frame
// error angle (ZZ, spectator Z, Stark, parity, quasistatic) along the
// schedule, flips accumulator signs at pi pulses exactly like the
// toggling-frame simulator does, and converts the surviving angles into
// Pauli-channel probabilities at the same points where the statevector
// kernel flushes its phase accumulator.
type compiler struct {
	e       *Engine
	edges   []device.Edge
	omega   []float64 // rad/ns
	edgeIdx map[device.Edge]int
	qEdges  [][]int
	starks  []starkTerm

	phi   []float64 // pending deterministic Z angle per qubit
	tau   []float64 // signed time integral (ns) for per-shot random detuning
	phiZZ []float64 // pending ZZ angle per edge index

	ops   []op
	nMeas int

	// per-layer context
	rotary, active, driven []bool
	gatePair               []bool
}

func (e *Engine) compile(c *circuit.Circuit) (*program, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := Supports(c); err != nil {
		return nil, err
	}
	nq := c.NQubits
	cp := &compiler{e: e, edgeIdx: map[device.Edge]int{}}
	addEdge := func(ed device.Edge, hz float64) int {
		if i, ok := cp.edgeIdx[ed]; ok {
			return i
		}
		i := len(cp.edges)
		cp.edges = append(cp.edges, ed)
		cp.omega = append(cp.omega, hz*hzToRadPerNs)
		cp.edgeIdx[ed] = i
		return i
	}
	for _, ed := range e.Dev.AllCrosstalkEdges() {
		addEdge(ed, e.Dev.ZZ[ed])
	}
	for _, l := range c.Layers {
		for _, in := range l.Instrs {
			if in.Gate == gates.RZZ {
				ed := device.NewEdge(in.Qubits[0], in.Qubits[1])
				if _, ok := cp.edgeIdx[ed]; !ok {
					addEdge(ed, 0)
				}
			}
		}
	}
	cp.qEdges = make([][]int, nq)
	for i, ed := range cp.edges {
		cp.qEdges[ed.A] = append(cp.qEdges[ed.A], i)
		cp.qEdges[ed.B] = append(cp.qEdges[ed.B], i)
	}
	for d, hz := range e.Dev.Stark {
		if hz != 0 {
			cp.starks = append(cp.starks, starkTerm{d.Src, d.Dst, hz * hzToRadPerNs})
		}
	}
	sort.Slice(cp.starks, func(i, j int) bool {
		if cp.starks[i].src != cp.starks[j].src {
			return cp.starks[i].src < cp.starks[j].src
		}
		return cp.starks[i].dst < cp.starks[j].dst
	})
	cp.phi = make([]float64, nq)
	cp.tau = make([]float64, nq)
	cp.phiZZ = make([]float64, len(cp.edges))

	for li := range c.Layers {
		if err := cp.layer(&c.Layers[li], nq); err != nil {
			return nil, fmt.Errorf("stab: layer %d: %w", li, err)
		}
	}
	for q := 0; q < nq; q++ {
		cp.flush(q)
	}

	p := &program{nq: nq, ncb: c.NCBits, words: (nq + 63) / 64, ops: cp.ops}
	p.reference(e.Cfg.Seed)
	return p, nil
}

// layer compiles one scheduled layer: event extraction mirroring the
// statevector compiler, then a symbolic walk that accumulates coherent
// phases between events and emits ops at them.
func (cp *compiler) layer(l *circuit.Layer, nq int) error {
	cp.rotary = make([]bool, nq)
	cp.active = make([]bool, nq)
	cp.driven = make([]bool, nq)
	cp.gatePair = make([]bool, len(cp.edges))
	var evs []cevent
	seq := 0
	emit := func(ev cevent) {
		ev.seq = seq
		seq++
		evs = append(evs, ev)
	}
	dev := cp.e.Dev
	for ii := range l.Instrs {
		in := &l.Instrs[ii]
		switch {
		case in.Gate == gates.Delay || in.Gate == gates.Barrier:
			continue
		case in.Gate == gates.Measure:
			cp.active[in.Qubits[0]] = true
			emit(cevent{t: l.Start, kind: cevMeasure, q0: in.Qubits[0], cbit: in.CBit})
		case gates.NumQubits(in.Gate) == 2:
			q0, q1 := in.Qubits[0], in.Qubits[1]
			cp.active[q0], cp.active[q1] = true, true
			cp.driven[q0], cp.driven[q1] = true, true
			cp.rotary[q1] = true
			if i, ok := cp.edgeIdx[device.NewEdge(q0, q1)]; ok {
				cp.gatePair[i] = true
			}
			errP := 5e-3
			if p, ok := dev.Err2Q[device.NewEdge(q0, q1)]; ok {
				errP = p
			}
			mid := l.Start + l.Duration/2
			end := l.Start + l.Duration
			switch in.Gate {
			case gates.RZZ:
				ei := cp.edgeIdx[device.NewEdge(q0, q1)]
				emit(cevent{t: mid, kind: cevEchoFlip, q0: q0})
				emit(cevent{t: end, kind: cevEchoFlip, q0: q0})
				emit(cevent{t: end, kind: cevRZZ, q0: q0, q1: q1, angle: in.Params[0], edge: ei, ec: in.Tag == "ec"})
				frac := math.Abs(in.Params[0]) / (math.Pi / 2)
				if frac > 1 {
					frac = 1
				}
				emit(cevent{t: end, kind: cevGateErr2, q0: q0, q1: q1, errP: errP * frac})
			default: // ECR, CX, SWAP, Clifford Ucan/ZX: one ideal Clifford
				tab := clifford2For(in.Gate, in.Params)
				if tab == nil {
					return fmt.Errorf("%s is not Clifford", in.Gate)
				}
				emit(cevent{t: l.Start, kind: cevClifford2, q0: q0, q1: q1, c2: tab, ecr: in.Gate == gates.ECR})
				emit(cevent{t: mid, kind: cevEchoFlip, q0: q0})
				emit(cevent{t: end, kind: cevGateErr2, q0: q0, q1: q1, errP: errP})
			}
		default: // one-qubit
			q := in.Qubits[0]
			if in.Tag != "dd" {
				cp.active[q] = true
			}
			t := l.Start + in.Time
			errP := dev.Err1Q[q]
			if in.Tag == "twirl" {
				errP = 0
			}
			switch in.Gate {
			case gates.RZ:
				emit(cevent{t: t, kind: cevVirtualZ, q0: q, angle: in.Params[0], ec: in.Tag == "ec"})
			case gates.ZGate:
				emit(cevent{t: t, kind: cevVirtualZ, q0: q, angle: math.Pi})
			case gates.S:
				emit(cevent{t: t, kind: cevVirtualZ, q0: q, angle: math.Pi / 2})
			case gates.Sdg:
				emit(cevent{t: t, kind: cevVirtualZ, q0: q, angle: -math.Pi / 2})
			case gates.ID:
				// no-op
			case gates.XGate, gates.XDD:
				emit(cevent{t: t, kind: cevPauliPulse, q0: q, p: pauli.X, errP: errP})
			case gates.YGate:
				emit(cevent{t: t, kind: cevPauliPulse, q0: q, p: pauli.Y, errP: errP})
			default:
				tab := clifford1For(in.Gate, in.Params)
				if tab == nil {
					return fmt.Errorf("%s%v is not Clifford", in.Gate, in.Params)
				}
				emit(cevent{t: t, kind: cevApply1Q, q0: q, c1: tab, errP: errP})
			}
		}
	}
	slices.SortFunc(evs, func(a, b cevent) int {
		if a.t != b.t {
			return cmp.Compare(a.t, b.t)
		}
		return cmp.Compare(a.seq, b.seq)
	})

	cur := l.Start
	for i := range evs {
		ev := &evs[i]
		cp.accumulate(cur, ev.t)
		cur = ev.t
		cp.exec(ev)
	}
	cp.accumulate(cur, l.Start+l.Duration)
	if cp.e.Cfg.EnableT1T2 && l.Duration > 0 {
		for q := 0; q < nq; q++ {
			cp.emitRelaxation(q, l.Duration)
		}
	}
	return nil
}

func (cp *compiler) exec(ev *cevent) {
	cfg := &cp.e.Cfg
	switch ev.kind {
	case cevClifford2:
		if !ev.ecr {
			// Z does not generally commute through CX/SWAP/Ucan as
			// modeled (their ghost echo is not a physical pulse), so both
			// operands' pending phases materialize as channels here.
			cp.flush(ev.q0)
		}
		// An ECR control's pending phases ride: ECR = X(ctrl)·ZX(pi/2)
		// conjugates Z(ctrl) to -Z(ctrl), and the mid-gate echo-flip
		// event applies exactly that sign — so coherent Z/ZZ terms on the
		// control (including control-control ZZ, the CA-EC headline
		// channel) stay in the accumulator until a genuinely
		// non-commuting point, where a deferred EC compensation can still
		// cancel them, matching the statevector kernel's algebra. The
		// target's Z is rotated by ZX into non-diagonal form, so it must
		// convert to a channel before the gate.
		cp.flush(ev.q1)
		cp.ops = append(cp.ops, op{kind: opCliff2, q0: ev.q0, q1: ev.q1, c2: ev.c2})
	case cevPauliPulse:
		cp.flipAccum(ev.q0)
		cp.ops = append(cp.ops, op{kind: opPauliGate, q0: ev.q0, p: ev.p})
		if cfg.EnableGateErr && ev.errP > 0 {
			cp.emitDepol1(ev.q0, ev.errP)
		}
	case cevVirtualZ:
		if ev.ec {
			// A CA-EC compensation exists to cancel the error integral in
			// this same accumulator; splitting off a Clifford part here
			// would desynchronize the two whenever the compensation
			// exceeds pi/4 (net -k*pi/2 at flush instead of ~0), so the
			// full angle rides the accumulator exactly as it does in the
			// statevector kernel.
			cp.phi[ev.q0] += ev.angle
			return
		}
		k, delta := splitQuarter(ev.angle)
		if k != 0 {
			cp.ops = append(cp.ops, op{kind: opCliff1, q0: ev.q0, c1: sPowTable(k)})
		}
		cp.phi[ev.q0] += delta
	case cevRZZ:
		if ev.ec {
			cp.phiZZ[ev.edge] += ev.angle
			return
		}
		k, delta := splitQuarter(ev.angle)
		if k != 0 {
			cp.ops = append(cp.ops, op{kind: opCliff2, q0: ev.q0, q1: ev.q1, c2: clifford2For(gates.RZZ, []float64{float64(k) * math.Pi / 2})})
		}
		cp.phiZZ[ev.edge] += delta
	case cevEchoFlip:
		cp.flipAccum(ev.q0)
	case cevApply1Q:
		cp.flush(ev.q0)
		cp.ops = append(cp.ops, op{kind: opCliff1, q0: ev.q0, c1: ev.c1})
		if cfg.EnableGateErr && ev.errP > 0 {
			cp.emitDepol1(ev.q0, ev.errP)
		}
	case cevGateErr2:
		if cfg.EnableGateErr && ev.errP > 0 {
			cp.ops = append(cp.ops, op{kind: opDepol2, q0: ev.q0, q1: ev.q1, prob: ev.errP})
		}
	case cevMeasure:
		cp.flush(ev.q0)
		flip := 0.0
		if cfg.EnableReadoutErr {
			flip = cp.e.Dev.ReadoutErr[ev.q0]
		}
		cp.ops = append(cp.ops, op{kind: opMeasure, q0: ev.q0, cbit: ev.cbit, prob: flip, mi: cp.nMeas})
		cp.nMeas++
	}
}

// accumulate integrates the coherent crosstalk Hamiltonian over [from, to]
// into the symbolic phase accumulators — the compile-time mirror of the
// statevector shot's accumulate.
func (cp *compiler) accumulate(from, to float64) {
	dt := to - from
	if dt <= 0 {
		return
	}
	cfg := &cp.e.Cfg
	res := cp.e.Dev.RotaryResidual
	if cfg.EnableZZ {
		for i, ed := range cp.edges {
			w := cp.omega[i]
			if w == 0 || cp.gatePair[i] {
				continue
			}
			fa, fb := 1.0, 1.0
			if cp.rotary[ed.A] {
				fa = res
			}
			if cp.rotary[ed.B] {
				fb = res
			}
			cp.phiZZ[i] += w * dt * fa * fb
			cp.phi[ed.A] -= w * dt * fa
			cp.phi[ed.B] -= w * dt * fb
		}
	}
	if cfg.EnableStark {
		for _, st := range cp.starks {
			if !cp.driven[st.src] || cp.active[st.dst] {
				continue
			}
			f := 1.0
			if cp.rotary[st.dst] {
				f = res
			}
			cp.phi[st.dst] += st.w * dt * f
		}
	}
	if cfg.EnableParity || cfg.EnableQuasistatic {
		for q := range cp.tau {
			f := 1.0
			if cp.rotary[q] {
				f = res
			}
			cp.tau[q] += dt * f
		}
	}
}

// flipAccum conjugates the pending phases on q through an X/Y pulse.
func (cp *compiler) flipAccum(q int) {
	cp.phi[q] = -cp.phi[q]
	cp.tau[q] = -cp.tau[q]
	for _, ei := range cp.qEdges[q] {
		cp.phiZZ[ei] = -cp.phiZZ[ei]
	}
}

// flush converts the pending coherent phases involving q into Pauli
// channels via the Pauli-twirling approximation and clears them. The
// surviving single-qubit angle phi combines the deterministic integral
// with the per-shot random detunings through their characteristic
// functions: 1 - 2 pZ = cos(phi) * cos(delta*tau) * exp(-(sigma*tau)^2/2),
// which is exactly the twirl-averaged coherence factor of the segment.
// Pending ZZ angles become correlated Z(x)Z channels with sin^2(phi/2).
func (cp *compiler) flush(q int) {
	cfg := &cp.e.Cfg
	dev := cp.e.Dev
	c := math.Cos(cp.phi[q])
	if cfg.EnableParity {
		c *= math.Cos(dev.Delta[q] * hzToRadPerNs * cp.tau[q])
	}
	if cfg.EnableQuasistatic && q < len(dev.Quasistatic) {
		sg := dev.Quasistatic[q] * hzToRadPerNs * cp.tau[q]
		c *= math.Exp(-sg * sg / 2)
	}
	cp.phi[q] = 0
	cp.tau[q] = 0
	if pz := (1 - c) / 2; pz > 1e-15 {
		cp.ops = append(cp.ops, op{kind: opChan1, q0: q, thrXYZ: pz})
	}
	for _, ei := range cp.qEdges[q] {
		phi := cp.phiZZ[ei]
		if phi == 0 {
			continue
		}
		cp.phiZZ[ei] = 0
		s := math.Sin(phi / 2)
		if pzz := s * s; pzz > 1e-15 {
			ed := cp.edges[ei]
			cp.ops = append(cp.ops, op{kind: opZZ, q0: ed.A, q1: ed.B, prob: pzz})
		}
	}
}

// emitDepol1 emits a uniform one-qubit depolarizing channel (probability p
// split evenly over X, Y, Z — matching the statevector kernel's gate-error
// model).
func (cp *compiler) emitDepol1(q int, p float64) {
	cp.ops = append(cp.ops, op{kind: opChan1, q0: q, thrX: p / 3, thrXY: 2 * p / 3, thrXYZ: p})
}

// emitRelaxation emits the layer's T1/T2 channel on q: the Pauli-twirled
// amplitude-damping channel composed with pure dephasing, with the same
// gamma and 1/Tphi bookkeeping as the statevector kernel (T1 <= 0 disables
// damping and leaves 1/Tphi = 1/T2).
func (cp *compiler) emitRelaxation(q int, dur float64) {
	dev := cp.e.Dev
	t1, t2 := dev.T1[q], dev.T2[q]
	probs := [4]float64{1, 0, 0, 0} // I, X, Y, Z
	if t1 > 0 {
		gamma := 1 - math.Exp(-dur/t1)
		s := math.Sqrt(1 - gamma)
		probs = composeChan(probs, [4]float64{(1 + s) * (1 + s) / 4, gamma / 4, gamma / 4, (1 - s) * (1 - s) / 4})
	}
	if t2 > 0 {
		invTphi := 1 / t2
		if t1 > 0 {
			invTphi -= 1 / (2 * t1)
		}
		if invTphi > 0 {
			pphi := (1 - math.Exp(-dur*invTphi)) / 2
			probs = composeChan(probs, [4]float64{1 - pphi, 0, 0, pphi})
		}
	}
	if probs[1]+probs[2]+probs[3] > 1e-15 {
		cp.ops = append(cp.ops, op{
			kind: opChan1, q0: q,
			thrX: probs[1], thrXY: probs[1] + probs[2], thrXYZ: probs[1] + probs[2] + probs[3],
		})
	}
}

// composeChan convolves two Pauli channels over the phase-free Pauli
// group, indexed I=0, X=1, Y=2, Z=3 (XOR is the group product in this
// enumeration).
func composeChan(a, b [4]float64) [4]float64 {
	var out [4]float64
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			out[i^j] += a[i] * b[j]
		}
	}
	return out
}

// reference runs the ideal Clifford skeleton once on the tableau, drawing
// nondeterministic measurement outcomes from a seed-derived RNG and
// recording, per measurement, the branch-flip stabilizer the frame
// sampler needs.
func (p *program) reference(seed int64) {
	p.tab = NewTableau(p.nq)
	rng := rand.New(rand.NewSource(seed*6364136223846793005 + 1442695040888963407))
	for i := range p.ops {
		o := &p.ops[i]
		switch o.kind {
		case opCliff1:
			p.tab.ApplyClifford1(o.q0, o.c1)
		case opCliff2:
			p.tab.ApplyClifford2(o.q0, o.q1, o.c2)
		case opPauliGate:
			p.tab.ApplyPauli(o.q0, o.p)
		case opMeasure:
			bit, det, fx, fz := p.tab.MeasureZ(o.q0, rng)
			p.meas = append(p.meas, measInfo{ref: bit, det: det, fx: fx, fz: fz})
		}
	}
}

// info summarizes the program.
func (p *program) info() CompileInfo {
	inf := CompileInfo{Ops: len(p.ops), Measures: len(p.meas)}
	for i := range p.ops {
		switch p.ops[i].kind {
		case opCliff1, opCliff2, opPauliGate:
			inf.Cliffords++
		case opChan1, opZZ, opDepol2:
			inf.Channels++
		}
	}
	return inf
}
