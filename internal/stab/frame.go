package stab

import (
	"math/rand"

	"casq/internal/pauli"
	"casq/internal/sim"
)

// frame is one worker's reusable Pauli-frame state: the packed X/Z masks
// of the current frame, the classical bits of the shot in flight, and a
// reseedable RNG. One frame value is owned by exactly one worker for its
// whole lifetime, so the steady-state shot loop allocates nothing and the
// race detector can verify the buffers never cross goroutines.
type frame struct {
	x, z  []uint64
	cbits []int
	src   rand.Source
	rng   *rand.Rand
}

func newFrame(p *program) *frame {
	src := rand.NewSource(0)
	return &frame{
		x:     make([]uint64, p.words),
		z:     make([]uint64, p.words),
		cbits: make([]int, p.ncb),
		src:   src,
		rng:   rand.New(src),
	}
}

// reset clears the frame and classical bits and reseeds the RNG for a new
// trajectory.
func (f *frame) reset(seed int64) {
	f.src.Seed(seed)
	for i := range f.x {
		f.x[i] = 0
		f.z[i] = 0
	}
	for i := range f.cbits {
		f.cbits[i] = 0
	}
}

func (f *frame) xorPauli(q int, code int) {
	w, b := q/64, uint(q%64)
	// code: 0=I, 1=X, 2=Y, 3=Z (matching the statevector kernel's draw).
	switch code {
	case 1:
		f.x[w] ^= 1 << b
	case 2:
		f.x[w] ^= 1 << b
		f.z[w] ^= 1 << b
	case 3:
		f.z[w] ^= 1 << b
	}
}

// run propagates one trajectory's frame through the program, sampling
// every derived Pauli channel and recording measured bits.
func (f *frame) run(p *program) {
	for i := range p.ops {
		o := &p.ops[i]
		switch o.kind {
		case opCliff1:
			w, b := o.q0/64, uint(o.q0%64)
			xb := (f.x[w] >> b) & 1
			zb := (f.z[w] >> b) & 1
			if xb == 0 && zb == 0 {
				continue
			}
			c := o.c1.Conjugate(pauliFromXZ(xb, zb))
			nx, nz := xzFromPauli(c.Out)
			f.x[w] = f.x[w]&^(1<<b) | nx<<b
			f.z[w] = f.z[w]&^(1<<b) | nz<<b
		case opCliff2:
			w0, b0 := o.q0/64, uint(o.q0%64)
			w1, b1 := o.q1/64, uint(o.q1%64)
			p0 := pauliFromXZ((f.x[w0]>>b0)&1, (f.z[w0]>>b0)&1)
			p1 := pauliFromXZ((f.x[w1]>>b1)&1, (f.z[w1]>>b1)&1)
			if p0 == pauli.I && p1 == pauli.I {
				continue
			}
			c := o.c2.Conjugate(pauli.Pair{P0: p0, P1: p1})
			nx0, nz0 := xzFromPauli(c.Out.P0)
			nx1, nz1 := xzFromPauli(c.Out.P1)
			f.x[w0] = f.x[w0]&^(1<<b0) | nx0<<b0
			f.z[w0] = f.z[w0]&^(1<<b0) | nz0<<b0
			f.x[w1] = f.x[w1]&^(1<<b1) | nx1<<b1
			f.z[w1] = f.z[w1]&^(1<<b1) | nz1<<b1
		case opPauliGate:
			// Conjugating a Pauli frame through a Pauli gate changes at
			// most its (unobservable) sign.
		case opChan1:
			u := f.rng.Float64()
			if u >= o.thrXYZ {
				continue
			}
			switch {
			case u < o.thrX:
				f.xorPauli(o.q0, 1)
			case u < o.thrXY:
				f.xorPauli(o.q0, 2)
			default:
				f.xorPauli(o.q0, 3)
			}
		case opZZ:
			if f.rng.Float64() < o.prob {
				f.z[o.q0/64] ^= 1 << (o.q0 % 64)
				f.z[o.q1/64] ^= 1 << (o.q1 % 64)
			}
		case opDepol2:
			if f.rng.Float64() < o.prob {
				k := 1 + f.rng.Intn(15)
				f.xorPauli(o.q0, k%4)
				f.xorPauli(o.q1, k/4)
			}
		case opMeasure:
			inf := &p.meas[o.mi]
			bit := inf.ref ^ int((f.x[o.q0/64]>>(o.q0%64))&1)
			if !inf.det && f.rng.Intn(2) == 1 {
				// Redraw the nondeterministic collapse: flip the recorded
				// branch and move the frame onto the opposite one via the
				// recorded anticommuting stabilizer, preserving outcome
				// correlations across later measurements.
				bit ^= 1
				for w := range f.x {
					f.x[w] ^= inf.fx[w]
					f.z[w] ^= inf.fz[w]
				}
			}
			if o.prob > 0 && f.rng.Float64() < o.prob {
				bit ^= 1
			}
			if o.cbit >= 0 && o.cbit < len(f.cbits) {
				f.cbits[o.cbit] = bit
			}
		}
	}
}

// anticommutes reports whether the frame anticommutes with the packed
// Pauli (px, pz) — the per-shot sign of an observable relative to the
// reference state.
func (f *frame) anticommutes(px, pz []uint64) bool {
	var par uint64
	for w := range f.x {
		par ^= f.x[w] & pz[w]
		par ^= f.z[w] & px[w]
	}
	return parity64(par)
}

// numShots returns the effective shot count (at least 1).
func (e *Engine) numShots() int {
	if e.Cfg.Shots <= 0 {
		return 1
	}
	return e.Cfg.Shots
}

// forEachShot runs one reset+run trajectory per shot index through the
// shared engine shot loop (sim.ForEachShot): per-worker reusable frames,
// sim.ShotSeed seeding — the identical discipline to the statevector
// kernel, from the same code.
func (e *Engine) forEachShot(p *program, fn func(i int, f *frame)) {
	sim.ForEachShot(e.numShots(), e.Cfg.Workers, func() *frame { return newFrame(p) },
		func(i int, f *frame) {
			f.reset(sim.ShotSeed(e.Cfg.Seed, i))
			f.run(p)
			fn(i, f)
		})
}
