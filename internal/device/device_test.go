package device

import (
	"testing"
)

func TestNewLineTopology(t *testing.T) {
	d := NewLine("l", 5, DefaultOptions())
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Edges) != 4 {
		t.Errorf("line(5) should have 4 edges, got %d", len(d.Edges))
	}
	if !d.HasEdge(2, 3) || d.HasEdge(0, 2) {
		t.Error("edge membership wrong")
	}
	nb := d.Neighbors(2)
	if len(nb) != 2 || nb[0] != 1 || nb[1] != 3 {
		t.Errorf("neighbors(2) = %v", nb)
	}
	// Alternating ECR directions: edge (0,1) controlled by 0, (1,2) by 2.
	if d.ECRDir[NewEdge(0, 1)].Src != 0 || d.ECRDir[NewEdge(1, 2)].Src != 2 {
		t.Error("ECR directions not alternating")
	}
}

func TestNewRingTopology(t *testing.T) {
	d := NewRing("r", 12, DefaultOptions())
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Edges) != 12 {
		t.Errorf("ring(12) should have 12 edges, got %d", len(d.Edges))
	}
	if !d.HasEdge(0, 11) {
		t.Error("ring closure edge missing")
	}
}

func TestCalibrationRanges(t *testing.T) {
	opts := DefaultOptions()
	d := NewLine("cal", 6, opts)
	for _, e := range d.Edges {
		if d.ZZ[e] < opts.ZZMin || d.ZZ[e] > opts.ZZMax {
			t.Errorf("ZZ rate %v outside range", d.ZZ[e])
		}
	}
	for q := 0; q < 6; q++ {
		if d.T1[q] < opts.T1Min || d.T1[q] > opts.T1Max {
			t.Errorf("T1 out of range")
		}
		if d.T2[q] > 2*d.T1[q] {
			t.Errorf("T2 exceeds physical bound 2*T1")
		}
		if d.Delta[q] < 0 || d.Delta[q] > opts.DeltaMax {
			t.Errorf("Delta out of range")
		}
	}
}

func TestDeterministicSeeding(t *testing.T) {
	a := NewLine("a", 4, DefaultOptions())
	b := NewLine("b", 4, DefaultOptions())
	for _, e := range a.Edges {
		if a.ZZ[e] != b.ZZ[e] {
			t.Fatal("same seed must give identical calibration")
		}
	}
	opts := DefaultOptions()
	opts.Seed = 999
	c := NewLine("c", 4, opts)
	same := true
	for _, e := range a.Edges {
		if a.ZZ[e] != c.ZZ[e] {
			same = false
		}
	}
	if same {
		t.Error("different seeds should give different calibration")
	}
}

func TestCrosstalkGraphIncludesNNN(t *testing.T) {
	d := NewHeavyHexFragment(DefaultOptions())
	g := d.CrosstalkGraph()
	if !g.HasEdge(2, 4) {
		t.Error("NNN collision edge missing from crosstalk graph")
	}
	cg := d.CouplingGraph()
	if cg.HasEdge(2, 4) {
		t.Error("NNN edge must not be in the coupling graph")
	}
	if d.ZZRate(2, 4) <= 0 {
		t.Error("NNN edge must carry a ZZ rate")
	}
}

func TestLayerFidelityDevice(t *testing.T) {
	d, labels := NewLayerFidelityDevice(DefaultOptions())
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NQubits != 10 || len(labels) != 10 {
		t.Fatal("layer-fidelity device must have 10 qubits")
	}
	// The paper's adjacent-control pair Q37-Q38 maps to qubits 1 and 2.
	if labels[1] != 37 || labels[2] != 38 {
		t.Error("label mapping broken")
	}
	if !d.HasEdge(1, 2) {
		t.Error("ctrl-ctrl edge (37,38) missing")
	}
	// The idle pair (59,60) maps to (8,9).
	if !d.HasEdge(8, 9) {
		t.Error("idle-pair edge (59,60) missing")
	}
}

func TestValidateCatchesMistakes(t *testing.T) {
	d := NewLine("bad", 3, DefaultOptions())
	d.Edges = append(d.Edges, Edge{2, 1}) // unnormalized
	if err := d.Validate(); err == nil {
		t.Error("unnormalized edge not caught")
	}

	d2 := NewLine("bad2", 3, DefaultOptions())
	delete(d2.ECRDir, NewEdge(0, 1))
	if err := d2.Validate(); err == nil {
		t.Error("missing ECR direction not caught")
	}

	d3 := NewLine("bad3", 3, DefaultOptions())
	d3.T1 = d3.T1[:2]
	if err := d3.Validate(); err == nil {
		t.Error("short calibration array not caught")
	}
}

func TestNewEdgeNormalizes(t *testing.T) {
	if NewEdge(5, 2) != (Edge{2, 5}) {
		t.Error("NewEdge must normalize ordering")
	}
}

func TestAllCrosstalkEdges(t *testing.T) {
	d := NewHeavyHexFragment(DefaultOptions())
	all := d.AllCrosstalkEdges()
	if len(all) != len(d.Edges)+1 {
		t.Errorf("AllCrosstalkEdges length %d", len(all))
	}
}
