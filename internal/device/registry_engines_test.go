package device_test

import (
	"testing"

	"casq/internal/device"
	"casq/internal/sim"
)

// TestRegistryEngines pins the engine capability listing to the
// statevector kernel's real limit: every backend the statevector can hold
// lists both engines, every larger one is stab-only, and every backend
// lists at least one engine.
func TestRegistryEngines(t *testing.T) {
	for _, b := range device.Backends() {
		has := func(name string) bool {
			for _, e := range b.Engines {
				if e == name {
					return true
				}
			}
			return false
		}
		if !has("stab") {
			t.Errorf("%s: every backend must list the stab engine, got %v", b.Name, b.Engines)
		}
		if sv := b.NQubits <= sim.MaxQubits; sv != has("statevector") {
			t.Errorf("%s (%dq): statevector listed=%v, want %v (sim.MaxQubits=%d)",
				b.Name, b.NQubits, has("statevector"), sv, sim.MaxQubits)
		}
	}
}

// TestEagleAlias pins eagle127 to the exact calibration of heavyhex127:
// same topology draw, same collision seed, same per-edge and per-qubit
// tables — only the name differs.
func TestEagleAlias(t *testing.T) {
	eagle, err := device.NewBackend("eagle127")
	if err != nil {
		t.Fatal(err)
	}
	hex, err := device.NewBackend("heavyhex127")
	if err != nil {
		t.Fatal(err)
	}
	if eagle.NQubits != hex.NQubits || len(eagle.Edges) != len(hex.Edges) || len(eagle.NNNEdges) != len(hex.NNNEdges) {
		t.Fatalf("geometry mismatch: %dq/%d/%d vs %dq/%d/%d",
			eagle.NQubits, len(eagle.Edges), len(eagle.NNNEdges), hex.NQubits, len(hex.Edges), len(hex.NNNEdges))
	}
	for i, e := range hex.Edges {
		if eagle.Edges[i] != e {
			t.Fatalf("edge %d differs: %v vs %v", i, eagle.Edges[i], e)
		}
	}
	for e, v := range hex.ZZ {
		if eagle.ZZ[e] != v {
			t.Fatalf("ZZ[%v] differs: %g vs %g", e, eagle.ZZ[e], v)
		}
	}
	for q := range hex.T1 {
		if eagle.T1[q] != hex.T1[q] || eagle.Delta[q] != hex.Delta[q] {
			t.Fatalf("qubit %d calibration differs", q)
		}
	}
}
