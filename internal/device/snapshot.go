package device

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
)

// DirectedRate names one directed pair's rate in Hz (the Stark table's
// snapshot encoding).
type DirectedRate struct {
	Src int     `json:"src"`
	Dst int     `json:"dst"`
	Hz  float64 `json:"hz"`
}

// Snapshot is the JSON-serializable form of a full device: topology plus
// calibration, with the per-edge maps flattened into canonically sorted
// entry lists. A snapshot round-trips bit-identically: for any device d,
// FromSnapshot(d.Snapshot()).Snapshot() fingerprints to the same content
// address, so result-store keys derived from a calibration survive
// export/import (pinned by TestSnapshotFingerprintRoundTrip).
type Snapshot struct {
	Topology Topology `json:"topology"`

	ZZ    []EdgeRate     `json:"zz"`
	Stark []DirectedRate `json:"stark"`
	Err2Q []EdgeRate     `json:"err_2q"`

	Delta       []float64 `json:"delta"`
	Quasistatic []float64 `json:"quasistatic"`
	T1          []float64 `json:"t1"`
	T2          []float64 `json:"t2"`
	Err1Q       []float64 `json:"err_1q"`
	ReadoutErr  []float64 `json:"readout_err"`

	Dur1Q   float64 `json:"dur_1q"`
	DurECR  float64 `json:"dur_ecr"`
	DurMeas float64 `json:"dur_meas"`
	DurFF   float64 `json:"dur_ff"`

	RotaryResidual float64 `json:"rotary_residual"`
}

func sortedEdgeRates(m map[Edge]float64) []EdgeRate {
	out := make([]EdgeRate, 0, len(m))
	for e, v := range m {
		out = append(out, EdgeRate{A: e.A, B: e.B, Hz: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Snapshot exports the device in canonical order (edge tables sorted), so
// equal devices always produce byte-identical encodings.
func (d *Device) Snapshot() Snapshot {
	s := Snapshot{
		Topology: Topology{
			Name:     d.Name,
			NQubits:  d.NQubits,
			Couplers: append([]Directed(nil), d.Couplers...),
			NNN:      append([]Edge(nil), d.Topology.NNN...),
		},
		ZZ:             sortedEdgeRates(d.ZZ),
		Err2Q:          sortedEdgeRates(d.Err2Q),
		Delta:          append([]float64(nil), d.Delta...),
		Quasistatic:    append([]float64(nil), d.Quasistatic...),
		T1:             append([]float64(nil), d.T1...),
		T2:             append([]float64(nil), d.T2...),
		Err1Q:          append([]float64(nil), d.Err1Q...),
		ReadoutErr:     append([]float64(nil), d.ReadoutErr...),
		Dur1Q:          d.Dur1Q,
		DurECR:         d.DurECR,
		DurMeas:        d.DurMeas,
		DurFF:          d.DurFF,
		RotaryResidual: d.RotaryResidual,
	}
	s.Stark = sortedDirectedRates(d.Stark)
	return s
}

func sortedDirectedRates(m map[Directed]float64) []DirectedRate {
	out := make([]DirectedRate, 0, len(m))
	for dir, v := range m {
		out = append(out, DirectedRate{Src: dir.Src, Dst: dir.Dst, Hz: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// FromSnapshot rebuilds a validated device from a snapshot.
func FromSnapshot(s Snapshot) (*Device, error) {
	if err := s.Topology.Validate(); err != nil {
		return nil, err
	}
	d := &Device{
		Topology: s.Topology,
		ECRDir:   map[Edge]Directed{},
		Calibration: Calibration{
			ZZ:             map[Edge]float64{},
			Stark:          map[Directed]float64{},
			Err2Q:          map[Edge]float64{},
			Dur1Q:          s.Dur1Q,
			DurECR:         s.DurECR,
			DurMeas:        s.DurMeas,
			DurFF:          s.DurFF,
			RotaryResidual: s.RotaryResidual,
		},
	}
	for _, c := range s.Topology.Couplers {
		e := NewEdge(c.Src, c.Dst)
		d.Edges = append(d.Edges, e)
		d.ECRDir[e] = c
	}
	sort.Slice(d.Edges, func(i, j int) bool {
		if d.Edges[i].A != d.Edges[j].A {
			return d.Edges[i].A < d.Edges[j].A
		}
		return d.Edges[i].B < d.Edges[j].B
	})
	d.NNNEdges = append([]Edge(nil), s.Topology.NNN...)
	for _, er := range s.ZZ {
		d.ZZ[NewEdge(er.A, er.B)] = er.Hz
	}
	for _, dr := range s.Stark {
		d.Stark[Directed{dr.Src, dr.Dst}] = dr.Hz
	}
	for _, er := range s.Err2Q {
		d.Err2Q[NewEdge(er.A, er.B)] = er.Hz
	}
	d.Delta = append([]float64(nil), s.Delta...)
	d.Quasistatic = append([]float64(nil), s.Quasistatic...)
	d.T1 = append([]float64(nil), s.T1...)
	d.T2 = append([]float64(nil), s.T2...)
	d.Err1Q = append([]float64(nil), s.Err1Q...)
	d.ReadoutErr = append([]float64(nil), s.ReadoutErr...)
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// Encode marshals the snapshot as indented JSON.
func (s Snapshot) Encode() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// DecodeSnapshot parses a snapshot previously produced by Encode (or any
// JSON matching the Snapshot schema).
func DecodeSnapshot(b []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return s, fmt.Errorf("device: decode snapshot: %w", err)
	}
	return s, nil
}

// Perturb returns a copy of the device whose calibration has drifted: every
// rate, coherence time, and error probability is scaled by an independent
// factor 1 + drift*u with u uniform in [-1, 1], drawn deterministically
// from the seed (tables in canonical sorted order, then per-qubit arrays).
// Durations are controller constants and do not drift. T2 stays clamped to
// 2*T1. The scenario-sweep layers use this to ask "does the chosen pipeline
// survive a stale calibration?" without re-synthesizing a new device.
func (d *Device) Perturb(seed int64, drift float64) *Device {
	rng := rand.New(rand.NewSource(seed))
	factor := func() float64 { return 1 + drift*(2*rng.Float64()-1) }
	out := &Device{
		Topology:    d.Topology,
		Edges:       append([]Edge(nil), d.Edges...),
		NNNEdges:    append([]Edge(nil), d.NNNEdges...),
		ECRDir:      make(map[Edge]Directed, len(d.ECRDir)),
		Calibration: d.Calibration.Clone(),
	}
	for e, dir := range d.ECRDir {
		out.ECRDir[e] = dir
	}
	for _, er := range sortedEdgeRates(d.ZZ) {
		out.ZZ[Edge{er.A, er.B}] = er.Hz * factor()
	}
	for _, dr := range sortedDirectedRates(d.Stark) {
		out.Stark[Directed{dr.Src, dr.Dst}] = dr.Hz * factor()
	}
	for _, er := range sortedEdgeRates(d.Err2Q) {
		out.Err2Q[Edge{er.A, er.B}] = er.Hz * factor()
	}
	for q := 0; q < d.NQubits; q++ {
		out.Delta[q] *= factor()
		out.Quasistatic[q] *= factor()
		out.T1[q] *= factor()
		out.T2[q] *= factor()
		if out.T2[q] > 2*out.T1[q] {
			out.T2[q] = 2 * out.T1[q]
		}
		out.Err1Q[q] *= factor()
		out.ReadoutErr[q] *= factor()
	}
	return out
}
