package device

import (
	"fmt"
	"sort"
	"sync"
)

// BackendInfo describes one registered backend without building it.
type BackendInfo struct {
	Name        string `json:"name"`
	NQubits     int    `json:"n_qubits"`
	Family      string `json:"family"` // line | ring | grid | heavy-hex | fragment
	Couplers    int    `json:"couplers"`
	NNN         int    `json:"nnn"`
	Description string `json:"description"`
	// Engines lists the simulation backends able to run the FULL device:
	// the stabilizer engine always can; the statevector kernel only up to
	// its amplitude limit (sim.MaxQubits — kept in sync by a registry
	// test). Larger backends remain statevector-targetable through the
	// layout stage's induced subregions.
	Engines []string `json:"engines"`
}

// statevectorMaxQubits mirrors sim.MaxQubits (device cannot import sim —
// sim imports device); TestRegistryEngines pins the two together.
const statevectorMaxQubits = 26

// enginesFor returns the engines able to simulate a full n-qubit device.
func enginesFor(n int) []string {
	if n <= statevectorMaxQubits {
		return []string{"statevector", "stab"}
	}
	return []string{"stab"}
}

type backendEntry struct {
	info  BackendInfo
	build func() *Device
}

var (
	registryMu sync.Mutex
	registry   = map[string]backendEntry{}
)

// RegisterBackend adds a named backend builder to the registry. The builder
// must be deterministic: every call returns an identical device (the
// experiment cache keys assume backend name fully determines calibration).
// Registering a duplicate name panics.
func RegisterBackend(info BackendInfo, build func() *Device) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[info.Name]; dup {
		panic("device: duplicate backend " + info.Name)
	}
	if info.Engines == nil {
		info.Engines = enginesFor(info.NQubits)
	}
	registry[info.Name] = backendEntry{info: info, build: build}
}

// Backends lists the registered backends ordered by size then name.
func Backends() []BackendInfo {
	registryMu.Lock()
	defer registryMu.Unlock()
	out := make([]BackendInfo, 0, len(registry))
	for _, e := range registry {
		out = append(out, e.info)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].NQubits != out[j].NQubits {
			return out[i].NQubits < out[j].NQubits
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// BackendNames lists the registered backend names ordered by size then name.
func BackendNames() []string {
	infos := Backends()
	out := make([]string, len(infos))
	for i, inf := range infos {
		out[i] = inf.Name
	}
	return out
}

// NewBackend builds the named backend.
func NewBackend(name string) (*Device, error) {
	registryMu.Lock()
	e, ok := registry[name]
	registryMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("device: unknown backend %q (known: %v)", name, BackendNames())
	}
	return e.build(), nil
}

// LookupBackend returns the named backend's description.
func LookupBackend(name string) (BackendInfo, bool) {
	registryMu.Lock()
	defer registryMu.Unlock()
	e, ok := registry[name]
	return e.info, ok
}

// registerTopo registers a standard synthetic backend: the topology under
// its own name, calibrated from DefaultOptions at the given seed.
func registerTopo(t Topology, family, desc string, seed int64) {
	opts := DefaultOptions()
	opts.Seed = seed
	RegisterBackend(BackendInfo{
		Name:        t.Name,
		NQubits:     t.NQubits,
		Family:      family,
		Couplers:    len(t.Couplers),
		NNN:         len(t.NNN),
		Description: desc,
	}, func() *Device { return Synthesize(t, opts) })
}

// The built-in registry: the paper's small fragments plus full-scale
// heavy-hex lattices, so every figure can also run on a device that the
// circuit does not fit exactly — the layout stage picks the subregion.
func init() {
	registerTopo(LineTopology("line6", 6), "line",
		"6-qubit line, the Fig. 6 Ising-chain geometry", 61)
	registerTopo(LineTopology("line12", 12), "line",
		"12-qubit line", 62)
	registerTopo(RingTopology("ring12", 12), "ring",
		"12-qubit ring, the Fig. 7 Heisenberg geometry", 63)
	registerTopo(GridTopology("grid16", 4, 4), "grid",
		"4x4 square lattice", 64)

	hex := func(name string, rows, cols int, seed int64, desc string) {
		t := HeavyHexTopology(name, rows, cols)
		// Sparse seeded frequency collisions: the NNN ZZ terms that make
		// the CA-DD coloring problem non-bipartite on real lattices.
		t.NNN = SampleCollisions(t, seed, 0.04)
		registerTopo(t, "heavy-hex", desc, seed)
	}
	hex("heavyhex29", 3, 9, 29, "29-qubit heavy-hex patch (Falcon-class)")
	hex("heavyhex65", 5, 11, 65, "65-qubit heavy-hex lattice (Hummingbird-class)")
	hex("heavyhex127", 7, 15, 127, "127-qubit heavy-hex lattice (Eagle-class)")
	// eagle127 is the paper-facing name of the Eagle-class lattice: the
	// same geometry, collision seed and calibration draw as heavyhex127,
	// registered separately so `fig8 -backend eagle127` reads like the
	// paper. Identical calibration is pinned by TestEagleAlias.
	hex("eagle127", 7, 15, 127, "IBM Eagle-class 127-qubit lattice (alias of heavyhex127)")

	RegisterBackend(BackendInfo{
		Name: "hexfrag6", NQubits: 6, Family: "fragment", Couplers: 5, NNN: 1,
		Description: "6-qubit heavy-hex fragment with one NNN collision (Fig. 5)",
	}, func() *Device { return NewHeavyHexFragment(DefaultOptions()) })
	RegisterBackend(BackendInfo{
		Name: "layerfid10", NQubits: 10, Family: "fragment", Couplers: 9,
		Description: "10-qubit layer-fidelity fragment (Fig. 8)",
	}, func() *Device { d, _ := NewLayerFidelityDevice(DefaultOptions()); return d })
}
