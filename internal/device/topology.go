package device

import (
	"fmt"
	"math/rand"
	"sort"

	"casq/internal/qgraph"
)

// Topology is the connectivity half of a device: which qubits exist, which
// pairs are coupled (with a fixed ECR direction per coupler), and which
// next-nearest-neighbor pairs carry collision-enhanced ZZ. A Topology knows
// nothing about rates — Synthesize marries it to a seeded Calibration, and
// the backend registry names the resulting devices.
//
// Couplers are kept in declaration order: seeded calibration synthesis draws
// parameters coupler by coupler, so the order is part of a synthetic
// backend's identity (the same topology declared in a different order is a
// different random device).
type Topology struct {
	Name    string `json:"name"`
	NQubits int    `json:"n_qubits"`
	// Couplers lists NN couplings in declaration order; each entry's
	// (Src, Dst) fixes the ECR direction of that edge.
	Couplers []Directed `json:"couplers"`
	// NNN lists collision-enhanced next-nearest-neighbor pairs.
	NNN []Edge `json:"nnn,omitempty"`
}

// Validate checks qubit ranges, self-couplings, and duplicate couplers.
func (t Topology) Validate() error {
	if t.NQubits <= 0 {
		return fmt.Errorf("device: topology %q has %d qubits", t.Name, t.NQubits)
	}
	inRange := func(q int) bool { return q >= 0 && q < t.NQubits }
	seen := map[Edge]bool{}
	for _, c := range t.Couplers {
		if !inRange(c.Src) || !inRange(c.Dst) || c.Src == c.Dst {
			return fmt.Errorf("device: topology %q: bad coupler %v", t.Name, c)
		}
		e := NewEdge(c.Src, c.Dst)
		if seen[e] {
			return fmt.Errorf("device: topology %q: duplicate coupler on edge %v", t.Name, e)
		}
		seen[e] = true
	}
	for _, e := range t.NNN {
		if !inRange(e.A) || !inRange(e.B) || e.A >= e.B {
			return fmt.Errorf("device: topology %q: bad NNN edge %v", t.Name, e)
		}
		if seen[e] {
			return fmt.Errorf("device: topology %q: NNN edge %v duplicates a coupler", t.Name, e)
		}
	}
	return nil
}

// Graph builds the NN coupling graph of the topology.
func (t Topology) Graph() *qgraph.Graph {
	g := qgraph.New(t.NQubits)
	for _, c := range t.Couplers {
		g.AddEdge(c.Src, c.Dst)
	}
	return g
}

// LineTopology is an n-qubit line with alternating ECR directions (even
// qubit controls its right neighbor), the layout of the paper's Ising
// chain experiments.
func LineTopology(name string, n int) Topology {
	return Topology{Name: name, NQubits: n, Couplers: LineEdges(n)}
}

// RingTopology is an n-qubit ring (a line closed by one extra coupler), the
// layout of the 12-spin Heisenberg experiment.
func RingTopology(name string, n int) Topology {
	return Topology{Name: name, NQubits: n, Couplers: RingEdges(n)}
}

// GridTopology is a rows x cols square lattice. Qubit (r, c) has index
// r*cols + c; couplers run rightward and downward, directed away from the
// even-checkerboard sites so no qubit is both control and target of the
// same neighbor.
func GridTopology(name string, rows, cols int) Topology {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("device: grid %dx%d", rows, cols))
	}
	t := Topology{Name: name, NQubits: rows * cols}
	idx := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			q := idx(r, c)
			if c+1 < cols {
				if (r+c)%2 == 0 {
					t.Couplers = append(t.Couplers, Directed{q, idx(r, c+1)})
				} else {
					t.Couplers = append(t.Couplers, Directed{idx(r, c+1), q})
				}
			}
			if r+1 < rows {
				if (r+c)%2 == 0 {
					t.Couplers = append(t.Couplers, Directed{q, idx(r+1, c)})
				} else {
					t.Couplers = append(t.Couplers, Directed{idx(r+1, c), q})
				}
			}
		}
	}
	return t
}

// HeavyHexTopology is the parametric heavy-hexagon lattice of IBM's
// fixed-frequency processors: `rows` full qubit rows of up to `cols`
// qubits, with bridge qubits between consecutive rows every fourth column,
// offset by two columns on alternating gaps. The first row omits its last
// column and the last row its first, reproducing the truncation of the
// production lattices: (3, 9) is a 29-qubit Falcon-class patch, (5, 11)
// the 65-qubit Hummingbird lattice, and (7, 15) the 127-qubit Eagle
// lattice. rows must be odd so the boundary rows are truncated
// symmetrically.
//
// Qubits are numbered row-major: each qubit row left to right, then the
// bridge row below it. Horizontal couplers are directed left-to-right from
// even columns; bridges are directed top-down into and out of the bridge
// qubit.
func HeavyHexTopology(name string, rows, cols int) Topology {
	if rows < 3 || rows%2 == 0 || cols < 5 {
		panic(fmt.Sprintf("device: heavy-hex needs odd rows >= 3 and cols >= 5, got %dx%d", rows, cols))
	}
	// Column span of qubit row r.
	span := func(r int) (lo, hi int) {
		switch r {
		case 0:
			return 0, cols - 2
		case rows - 1:
			return 1, cols - 1
		default:
			return 0, cols - 1
		}
	}
	t := Topology{Name: name}
	// First pass: assign indices row-major — each qubit row left to right,
	// then the bridge qubits of the gap below it.
	type cell struct{ r, c int }
	index := map[cell]int{}
	type bridge struct{ r, c, q int } // bridge qubit q in the gap below row r at column c
	var bridges []bridge
	n := 0
	for r := 0; r < rows; r++ {
		lo, hi := span(r)
		for c := lo; c <= hi; c++ {
			index[cell{r, c}] = n
			n++
		}
		if r+1 < rows {
			// Bridge columns: every fourth column, starting at 0 for even
			// gaps and 2 for odd gaps, restricted to columns present in
			// both adjacent rows.
			nlo, nhi := span(r + 1)
			blo, bhi := max(lo, nlo), min(hi, nhi)
			for c := 2 * (r % 2); c <= bhi; c += 4 {
				if c < blo {
					continue
				}
				bridges = append(bridges, bridge{r, c, n})
				n++
			}
		}
	}
	t.NQubits = n
	// Second pass: horizontal couplers of each row, then its gap's bridges.
	bi := 0
	for r := 0; r < rows; r++ {
		lo, hi := span(r)
		for c := lo; c < hi; c++ {
			a, b := index[cell{r, c}], index[cell{r, c + 1}]
			if c%2 == 0 {
				t.Couplers = append(t.Couplers, Directed{a, b})
			} else {
				t.Couplers = append(t.Couplers, Directed{b, a})
			}
		}
		for bi < len(bridges) && bridges[bi].r == r {
			br := bridges[bi]
			t.Couplers = append(t.Couplers,
				Directed{index[cell{r, br.c}], br.q},
				Directed{br.q, index[cell{r + 1, br.c}]})
			bi++
		}
	}
	return t
}

// SampleCollisions draws a sparse, seeded set of next-nearest-neighbor
// frequency-collision pairs for a topology: each pair of qubits at NN
// distance exactly two is promoted to a collision edge with probability
// prob. Pairs are visited in sorted order so the draw is reproducible.
func SampleCollisions(t Topology, seed int64, prob float64) []Edge {
	g := t.Graph()
	var cand []Edge
	seen := map[Edge]bool{}
	for q := 0; q < t.NQubits; q++ {
		for _, a := range g.Neighbors(q) {
			for _, b := range g.Neighbors(a) {
				if b == q || g.HasEdge(q, b) {
					continue
				}
				e := NewEdge(q, b)
				if !seen[e] {
					seen[e] = true
					cand = append(cand, e)
				}
			}
		}
	}
	sort.Slice(cand, func(i, j int) bool {
		if cand[i].A != cand[j].A {
			return cand[i].A < cand[j].A
		}
		return cand[i].B < cand[j].B
	})
	rng := rand.New(rand.NewSource(seed))
	var out []Edge
	for _, e := range cand {
		if rng.Float64() < prob {
			out = append(out, e)
		}
	}
	return out
}
