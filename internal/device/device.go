// Package device models the quantum processors the compiler targets. It is
// organized as a Topology / Calibration split:
//
//   - Topology (topology.go) is pure connectivity — qubit count, directed
//     couplers, collision NNN pairs — with first-class generator families:
//     line, ring, grid, and the parametric heavy-hex lattice up to the
//     127-qubit Eagle geometry.
//   - Calibration is the measured half a context-aware compiler consumes:
//     always-on ZZ rates, Stark shifts, charge-parity frequencies,
//     coherence times, gate/readout errors and durations. It is
//     JSON-serializable through Snapshot (snapshot.go) so calibrations can
//     be exported, re-imported bit-identically, and perturbed for drift
//     scenario sweeps.
//   - Device = materialized Topology + Calibration. Synthesize draws a
//     seeded synthetic calibration for a topology; the backend registry
//     (registry.go) names ready-made devices from 6 to 127 qubits that the
//     experiment layers address by name.
//
// The paper runs on IBM Quantum backends; casq substitutes seeded synthetic
// backends whose parameters sit in the ranges the paper reports (ZZ of tens
// of kHz, Stark ~20 kHz, NNN 0.1 kHz rising to ~10 kHz at frequency
// collisions). CA-EC reads rates from this calibration exactly the way the
// paper reads IBM backend properties.
package device

import (
	"fmt"
	"math/rand"
	"sort"

	"casq/internal/qgraph"
)

// Edge is a normalized undirected qubit pair (A < B).
type Edge struct {
	A int `json:"a"`
	B int `json:"b"`
}

// NewEdge normalizes the pair ordering.
func NewEdge(a, b int) Edge {
	if a > b {
		a, b = b, a
	}
	return Edge{a, b}
}

// Directed is an ordered qubit pair, used for ECR direction and for Stark
// shifts (drive on Src shifts Dst).
type Directed struct {
	Src int `json:"src"`
	Dst int `json:"dst"`
}

// Calibration is the measured half of a device: every rate, coherence time,
// error probability, and duration the context-aware passes read. It is
// deliberately free of connectivity — the same struct can be exported,
// drifted, and re-attached to its topology (see Snapshot and Perturb).
type Calibration struct {
	// Coherent crosstalk calibration (Hz).
	ZZ    map[Edge]float64     // always-on ZZ rate nu per edge (NN and NNN)
	Stark map[Directed]float64 // Stark shift on Dst while a gate drives Src
	Delta []float64            // charge-parity frequency per qubit
	// Quasistatic is the per-qubit standard deviation (Hz) of slow
	// low-frequency Z detuning noise: constant within a shot, Gaussian
	// across shots. This is the temporally correlated incoherent noise that
	// DD suppresses but error compensation cannot (paper Sec. III B).
	Quasistatic []float64

	// Incoherent calibration.
	T1         []float64 // ns
	T2         []float64 // ns
	Err1Q      []float64 // depolarizing probability per 1q gate
	Err2Q      map[Edge]float64
	ReadoutErr []float64 // assignment error per qubit

	// Durations (ns).
	Dur1Q   float64
	DurECR  float64
	DurMeas float64
	DurFF   float64 // classical feed-forward latency

	// RotaryResidual in [0,1]: fraction of crosstalk involving an ECR target
	// that survives the rotary echo (0 = perfect rotary suppression).
	RotaryResidual float64
}

// Clone deep-copies the calibration.
func (c Calibration) Clone() Calibration {
	out := c
	out.ZZ = make(map[Edge]float64, len(c.ZZ))
	for k, v := range c.ZZ {
		out.ZZ[k] = v
	}
	out.Stark = make(map[Directed]float64, len(c.Stark))
	for k, v := range c.Stark {
		out.Stark[k] = v
	}
	out.Err2Q = make(map[Edge]float64, len(c.Err2Q))
	for k, v := range c.Err2Q {
		out.Err2Q[k] = v
	}
	out.Delta = append([]float64(nil), c.Delta...)
	out.Quasistatic = append([]float64(nil), c.Quasistatic...)
	out.T1 = append([]float64(nil), c.T1...)
	out.T2 = append([]float64(nil), c.T2...)
	out.Err1Q = append([]float64(nil), c.Err1Q...)
	out.ReadoutErr = append([]float64(nil), c.ReadoutErr...)
	return out
}

// Device is a materialized target: a topology plus the derived edge tables
// the passes index, plus its calibration.
type Device struct {
	Topology

	// Materialized connectivity, derived from Topology.Couplers/NNN: the
	// sorted NN edge list, the collision NNN edges, and the ECR direction
	// per coupled edge.
	Edges    []Edge
	NNNEdges []Edge
	ECRDir   map[Edge]Directed

	Calibration
}

// HasEdge reports whether (a, b) is a NN coupling.
func (d *Device) HasEdge(a, b int) bool {
	e := NewEdge(a, b)
	for _, x := range d.Edges {
		if x == e {
			return true
		}
	}
	return false
}

// Neighbors returns the sorted NN neighbors of q.
func (d *Device) Neighbors(q int) []int {
	var out []int
	for _, e := range d.Edges {
		if e.A == q {
			out = append(out, e.B)
		} else if e.B == q {
			out = append(out, e.A)
		}
	}
	sort.Ints(out)
	return out
}

// ZZRate returns the always-on ZZ rate (Hz) between a and b, or 0 if they
// are not coupled (directly or via an NNN collision).
func (d *Device) ZZRate(a, b int) float64 {
	return d.ZZ[NewEdge(a, b)]
}

// AllCrosstalkEdges returns NN followed by NNN edges.
func (d *Device) AllCrosstalkEdges() []Edge {
	out := append([]Edge(nil), d.Edges...)
	return append(out, d.NNNEdges...)
}

// CrosstalkGraph builds the qubit crosstalk graph used by Algorithm 1: an
// edge wherever a nonzero ZZ term exists (NN couplings plus NNN collision
// edges).
func (d *Device) CrosstalkGraph() *qgraph.Graph {
	g := qgraph.New(d.NQubits)
	for _, e := range d.AllCrosstalkEdges() {
		g.AddEdge(e.A, e.B)
	}
	return g
}

// CouplingGraph builds the NN-only connectivity graph.
func (d *Device) CouplingGraph() *qgraph.Graph {
	g := qgraph.New(d.NQubits)
	for _, e := range d.Edges {
		g.AddEdge(e.A, e.B)
	}
	return g
}

// Validate checks internal consistency.
func (d *Device) Validate() error {
	inRange := func(q int) bool { return q >= 0 && q < d.NQubits }
	for _, e := range append(append([]Edge(nil), d.Edges...), d.NNNEdges...) {
		if !inRange(e.A) || !inRange(e.B) || e.A >= e.B {
			return fmt.Errorf("device: bad edge %v", e)
		}
	}
	for _, e := range d.Edges {
		dir, ok := d.ECRDir[e]
		if !ok {
			return fmt.Errorf("device: edge %v has no ECR direction", e)
		}
		if NewEdge(dir.Src, dir.Dst) != e {
			return fmt.Errorf("device: ECR direction %v does not match edge %v", dir, e)
		}
	}
	for _, s := range []int{len(d.Delta), len(d.Quasistatic), len(d.T1), len(d.T2), len(d.Err1Q), len(d.ReadoutErr)} {
		if s != d.NQubits {
			return fmt.Errorf("device: calibration array length %d != %d qubits", s, d.NQubits)
		}
	}
	if d.Dur1Q <= 0 || d.DurECR <= 0 || d.DurMeas <= 0 {
		return fmt.Errorf("device: durations must be positive")
	}
	return nil
}

// Options configure synthetic backend generation.
type Options struct {
	Seed int64

	ZZMin, ZZMax       float64 // Hz, NN always-on ZZ
	NNNBase            float64 // Hz, non-collision NNN (usually negligible)
	NNNCollision       float64 // Hz, collision-enhanced NNN
	StarkMin, StarkMax float64 // Hz
	DeltaMax           float64 // Hz, charge-parity
	QuasistaticSigma   float64 // Hz, slow Z detuning std-dev
	T1Min, T1Max       float64 // ns
	T2Factor           float64 // T2 = T2Factor * T1 (clamped to 2*T1)
	Err1Q              float64
	Err2Q              float64
	ReadoutErr         float64
	Dur1Q              float64
	DurECR             float64
	DurMeas            float64
	DurFF              float64
	RotaryResidual     float64

	// ZZOverride pins specific edges' ZZ rates after synthesis (and before
	// validation) — the supported way to place a near-collision pair on a
	// synthetic backend. Overriding an edge the topology does not couple
	// panics: a typo must not silently synthesize a clean device.
	ZZOverride []EdgeRate
}

// EdgeRate names one edge's rate in Hz; used for calibration overrides and
// for the JSON snapshot encoding of the per-edge maps.
type EdgeRate struct {
	A  int     `json:"a"`
	B  int     `json:"b"`
	Hz float64 `json:"hz"`
}

// DefaultOptions returns parameter ranges representative of the paper's
// fixed-frequency CR backends.
func DefaultOptions() Options {
	return Options{
		Seed:             1,
		ZZMin:            40e3,
		ZZMax:            90e3,
		NNNBase:          0.1e3,
		NNNCollision:     10e3,
		StarkMin:         10e3,
		StarkMax:         30e3,
		DeltaMax:         4e3,
		QuasistaticSigma: 9e3,
		T1Min:            150e3, // 150 us
		T1Max:            350e3,
		T2Factor:         0.8,
		Err1Q:            2.5e-4,
		Err2Q:            7e-3,
		ReadoutErr:       0.012,
		Dur1Q:            60,
		DurECR:           500,
		DurMeas:          4000,
		DurFF:            1150,
		RotaryResidual:   0.02,
	}
}

// Synthesize materializes a topology into a device with a seeded synthetic
// calibration. Parameters are drawn deterministically from opts.Seed,
// coupler by coupler in the topology's declaration order, then qubit by
// qubit — the draw order is part of the device identity.
func Synthesize(t Topology, opts Options) *Device {
	if err := t.Validate(); err != nil {
		panic(err.Error())
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	uniform := func(lo, hi float64) float64 { return lo + rng.Float64()*(hi-lo) }

	d := &Device{
		Topology: t,
		ECRDir:   map[Edge]Directed{},
		Calibration: Calibration{
			ZZ:             map[Edge]float64{},
			Stark:          map[Directed]float64{},
			Err2Q:          map[Edge]float64{},
			Dur1Q:          opts.Dur1Q,
			DurECR:         opts.DurECR,
			DurMeas:        opts.DurMeas,
			DurFF:          opts.DurFF,
			RotaryResidual: opts.RotaryResidual,
		},
	}
	for _, de := range t.Couplers {
		e := NewEdge(de.Src, de.Dst)
		d.Edges = append(d.Edges, e)
		d.ECRDir[e] = de
		d.ZZ[e] = uniform(opts.ZZMin, opts.ZZMax)
		d.Err2Q[e] = opts.Err2Q * uniform(0.7, 1.4)
		d.Stark[Directed{de.Src, de.Dst}] = uniform(opts.StarkMin, opts.StarkMax)
		d.Stark[Directed{de.Dst, de.Src}] = uniform(opts.StarkMin, opts.StarkMax)
	}
	sort.Slice(d.Edges, func(i, j int) bool {
		if d.Edges[i].A != d.Edges[j].A {
			return d.Edges[i].A < d.Edges[j].A
		}
		return d.Edges[i].B < d.Edges[j].B
	})
	for _, e := range t.NNN {
		d.NNNEdges = append(d.NNNEdges, e)
		d.ZZ[e] = opts.NNNCollision
	}
	for q := 0; q < t.NQubits; q++ {
		d.Delta = append(d.Delta, rng.Float64()*opts.DeltaMax)
		d.Quasistatic = append(d.Quasistatic, opts.QuasistaticSigma*uniform(0.7, 1.3))
		t1 := uniform(opts.T1Min, opts.T1Max)
		d.T1 = append(d.T1, t1)
		t2 := opts.T2Factor * t1 * uniform(0.8, 1.2)
		if t2 > 2*t1 {
			t2 = 2 * t1
		}
		d.T2 = append(d.T2, t2)
		d.Err1Q = append(d.Err1Q, opts.Err1Q*uniform(0.6, 1.5))
		d.ReadoutErr = append(d.ReadoutErr, opts.ReadoutErr*uniform(0.6, 1.5))
	}
	if len(opts.ZZOverride) > 0 {
		for _, ov := range opts.ZZOverride {
			e := NewEdge(ov.A, ov.B)
			if _, ok := d.ZZ[e]; !ok {
				panic(fmt.Sprintf("device: ZZ override on uncoupled edge %v of %s", e, t.Name))
			}
			d.ZZ[e] = ov.Hz
		}
		if err := d.Validate(); err != nil {
			panic(err.Error())
		}
	}
	return d
}

// NewSynthetic builds a device from a topology (edges with ECR directions
// given by the order (control, target)) and options. It is Synthesize over
// an anonymous Topology.
func NewSynthetic(name string, nQubits int, directedEdges []Directed, nnn []Edge, opts Options) *Device {
	return Synthesize(Topology{Name: name, NQubits: nQubits, Couplers: directedEdges, NNN: nnn}, opts)
}

// Induced returns the sub-device on the given physical qubits under the
// new name, with qubit indices compacted to 0..len(qubits)-1 in ascending
// physical order. Couplers, NNN edges, and every calibration table are
// restricted to the region and reindexed; crosstalk edges leaving the
// region are dropped (callers that care about boundary coupling must
// account for it before inducing — the layout scorer does). The second
// return value maps new index -> original physical qubit.
func (d *Device) Induced(name string, qubits []int) (*Device, []int, error) {
	phys := append([]int(nil), qubits...)
	sort.Ints(phys)
	idx := make(map[int]int, len(phys))
	for i, q := range phys {
		if q < 0 || q >= d.NQubits {
			return nil, nil, fmt.Errorf("device: induced qubit %d out of range", q)
		}
		if _, dup := idx[q]; dup {
			return nil, nil, fmt.Errorf("device: induced qubit %d repeated", q)
		}
		idx[q] = i
	}
	t := Topology{Name: name, NQubits: len(phys)}
	for _, c := range d.Couplers {
		si, sok := idx[c.Src]
		di, dok := idx[c.Dst]
		if sok && dok {
			t.Couplers = append(t.Couplers, Directed{si, di})
		}
	}
	for _, e := range d.Topology.NNN {
		ai, aok := idx[e.A]
		bi, bok := idx[e.B]
		if aok && bok {
			t.NNN = append(t.NNN, NewEdge(ai, bi))
		}
	}
	sub := &Device{Topology: t, ECRDir: map[Edge]Directed{}, Calibration: Calibration{
		ZZ:             map[Edge]float64{},
		Stark:          map[Directed]float64{},
		Err2Q:          map[Edge]float64{},
		Dur1Q:          d.Dur1Q,
		DurECR:         d.DurECR,
		DurMeas:        d.DurMeas,
		DurFF:          d.DurFF,
		RotaryResidual: d.RotaryResidual,
	}}
	for _, c := range t.Couplers {
		sub.Edges = append(sub.Edges, NewEdge(c.Src, c.Dst))
		sub.ECRDir[NewEdge(c.Src, c.Dst)] = c
	}
	sort.Slice(sub.Edges, func(i, j int) bool {
		if sub.Edges[i].A != sub.Edges[j].A {
			return sub.Edges[i].A < sub.Edges[j].A
		}
		return sub.Edges[i].B < sub.Edges[j].B
	})
	sub.NNNEdges = append(sub.NNNEdges, t.NNN...)
	for e, v := range d.ZZ {
		ai, aok := idx[e.A]
		bi, bok := idx[e.B]
		if aok && bok {
			sub.ZZ[NewEdge(ai, bi)] = v
		}
	}
	for dir, v := range d.Stark {
		si, sok := idx[dir.Src]
		di, dok := idx[dir.Dst]
		if sok && dok {
			sub.Stark[Directed{si, di}] = v
		}
	}
	for e, v := range d.Err2Q {
		ai, aok := idx[e.A]
		bi, bok := idx[e.B]
		if aok && bok {
			sub.Err2Q[NewEdge(ai, bi)] = v
		}
	}
	for _, q := range phys {
		sub.Delta = append(sub.Delta, d.Delta[q])
		sub.Quasistatic = append(sub.Quasistatic, d.Quasistatic[q])
		sub.T1 = append(sub.T1, d.T1[q])
		sub.T2 = append(sub.T2, d.T2[q])
		sub.Err1Q = append(sub.Err1Q, d.Err1Q[q])
		sub.ReadoutErr = append(sub.ReadoutErr, d.ReadoutErr[q])
	}
	if err := sub.Validate(); err != nil {
		return nil, nil, fmt.Errorf("device: induced %s: %w", name, err)
	}
	return sub, phys, nil
}

// LineEdges returns directed edges of an n-qubit line with alternating ECR
// directions (even qubit controls its right neighbor).
func LineEdges(n int) []Directed {
	var out []Directed
	for i := 0; i+1 < n; i++ {
		if i%2 == 0 {
			out = append(out, Directed{i, i + 1})
		} else {
			out = append(out, Directed{i + 1, i})
		}
	}
	return out
}

// RingEdges returns directed edges of an n-qubit ring (n even for
// alternating directions).
func RingEdges(n int) []Directed {
	out := LineEdges(n)
	out = append(out, Directed{0, n - 1})
	return out
}

// NewLine builds a synthetic n-qubit linear device.
func NewLine(name string, n int, opts Options) *Device {
	return Synthesize(LineTopology(name, n), opts)
}

// NewRing builds a synthetic n-qubit ring device, as used for the 12-spin
// Heisenberg experiment (paper Fig. 7: a ring embedded in the heavy-hex
// lattice).
func NewRing(name string, n int, opts Options) *Device {
	return Synthesize(RingTopology(name, n), opts)
}

// NewLayerFidelityDevice builds the 10-qubit fragment used in the paper's
// layer-fidelity benchmark (Fig. 8): two rows of a heavy-hex lattice joined
// by a bridge qubit, hosting 3 ECR gates and 4 idle qubits, with two
// adjacent controls (the configuration DD cannot fix). Qubit indices are
// relabeled 0..9; Labels maps them to the paper's physical qubit numbers.
func NewLayerFidelityDevice(opts Options) (*Device, map[int]int) {
	// 0..9 correspond to paper qubits 52,37,38,39,40,56,57,58,59,60.
	labels := map[int]int{0: 52, 1: 37, 2: 38, 3: 39, 4: 40, 5: 56, 6: 57, 7: 58, 8: 59, 9: 60}
	edges := []Directed{
		{1, 0}, // 37 -> 52 (bridge), control on 37
		{0, 5}, // 52 -> 56
		{2, 3}, // 38 -> 39, control on 38 (adjacent to control 37 via edge 37-38)
		{1, 2}, // 37 - 38 coupling (directed arbitrarily)
		{3, 4}, // 39 - 40
		{5, 6}, // 56 - 57
		{7, 6}, // 58 -> 57
		{7, 8}, // 58 - 59
		{9, 8}, // 60 -> 59
	}
	d := NewSynthetic("layerfid10", 10, edges, nil, opts)
	return d, labels
}

// NewHeavyHexFragment builds a 6-qubit fragment with one NNN collision edge,
// matching the coloring example of paper Fig. 5 (Q0..Q5 with an NNN ZZ term
// between Q2 and Q4).
func NewHeavyHexFragment(opts Options) *Device {
	edges := []Directed{
		{0, 1}, {2, 1}, {2, 3}, {4, 3}, {4, 5},
	}
	nnn := []Edge{NewEdge(2, 4)}
	return NewSynthetic("hexfrag6", 6, edges, nnn, opts)
}
