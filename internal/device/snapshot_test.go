package device

import (
	"encoding/json"
	"testing"

	"casq/internal/store"
)

// TestSnapshotFingerprintRoundTrip pins the satellite contract: exporting a
// calibration snapshot, serializing it to JSON, re-importing it, and
// re-exporting must produce a bit-identical fingerprint, so result-store
// cache keys derived from a device survive serialization.
func TestSnapshotFingerprintRoundTrip(t *testing.T) {
	for _, name := range BackendNames() {
		d, err := NewBackend(name)
		if err != nil {
			t.Fatal(err)
		}
		s1 := d.Snapshot()
		k1, err := store.Fingerprint(s1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		raw, err := s1.Encode()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s2, err := DecodeSnapshot(raw)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		d2, err := FromSnapshot(s2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		k2, err := store.Fingerprint(d2.Snapshot())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if k1 != k2 {
			t.Errorf("%s: fingerprint changed across export -> import: %s vs %s", name, k1, k2)
		}
	}
}

// TestSnapshotRebuildsEqualDevice spot-checks that the imported device
// carries identical tables, not just an identical fingerprint.
func TestSnapshotRebuildsEqualDevice(t *testing.T) {
	d, err := NewBackend("heavyhex29")
	if err != nil {
		t.Fatal(err)
	}
	d2, err := FromSnapshot(d.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if d2.NQubits != d.NQubits || len(d2.Edges) != len(d.Edges) || len(d2.NNNEdges) != len(d.NNNEdges) {
		t.Fatalf("shape mismatch: %d/%d qubits, %d/%d edges", d2.NQubits, d.NQubits, len(d2.Edges), len(d.Edges))
	}
	for e, v := range d.ZZ {
		if d2.ZZ[e] != v {
			t.Fatalf("ZZ[%v] = %v, want %v", e, d2.ZZ[e], v)
		}
	}
	for dir, v := range d.Stark {
		if d2.Stark[dir] != v {
			t.Fatalf("Stark[%v] mismatch", dir)
		}
	}
	for q := 0; q < d.NQubits; q++ {
		if d2.T1[q] != d.T1[q] || d2.T2[q] != d.T2[q] || d2.Delta[q] != d.Delta[q] {
			t.Fatalf("per-qubit calibration mismatch at %d", q)
		}
	}
	if d2.ECRDir[d.Edges[0]] != d.ECRDir[d.Edges[0]] {
		t.Error("ECR direction lost")
	}
}

// TestSnapshotJSONStable pins that the snapshot encoding itself is
// deterministic (sorted tables): two exports of the same device are
// byte-identical.
func TestSnapshotJSONStable(t *testing.T) {
	d, _ := NewBackend("grid16")
	a, _ := json.Marshal(d.Snapshot())
	b, _ := json.Marshal(d.Snapshot())
	if string(a) != string(b) {
		t.Error("snapshot encoding is not deterministic")
	}
}

// TestPerturbDrift checks the drift knob: rates move by at most the
// requested fraction, deterministically in the seed, and the original is
// untouched.
func TestPerturbDrift(t *testing.T) {
	d, _ := NewBackend("line12")
	before := d.Snapshot()
	p1 := d.Perturb(9, 0.1)
	p2 := d.Perturb(9, 0.1)
	changed := false
	for e, v := range d.ZZ {
		r := p1.ZZ[e] / v
		if r < 0.9-1e-12 || r > 1.1+1e-12 {
			t.Fatalf("ZZ[%v] drifted by %v, want within ±10%%", e, r)
		}
		if p1.ZZ[e] != p2.ZZ[e] {
			t.Fatal("perturbation is not deterministic")
		}
		if p1.ZZ[e] != v {
			changed = true
		}
	}
	if !changed {
		t.Error("perturbation changed nothing")
	}
	for q := 0; q < d.NQubits; q++ {
		if p1.T2[q] > 2*p1.T1[q] {
			t.Errorf("T2[%d] exceeds 2*T1 after drift", q)
		}
	}
	k1, _ := store.Fingerprint(before)
	k2, _ := store.Fingerprint(d.Snapshot())
	if k1 != k2 {
		t.Error("Perturb mutated the source device")
	}
	if err := p1.Validate(); err != nil {
		t.Error(err)
	}
}

// TestInduced pins the sub-device extraction used by the layout stage.
func TestInduced(t *testing.T) {
	d, _ := NewBackend("heavyhex29")
	region := []int{0, 1, 2, 3}
	sub, phys, err := d.Induced("sub4", region)
	if err != nil {
		t.Fatal(err)
	}
	if sub.NQubits != 4 || len(phys) != 4 {
		t.Fatalf("induced %d qubits", sub.NQubits)
	}
	for i, p := range phys {
		if sub.T1[i] != d.T1[p] || sub.ReadoutErr[i] != d.ReadoutErr[p] {
			t.Errorf("per-qubit calibration not carried for %d<-%d", i, p)
		}
	}
	for _, e := range sub.Edges {
		pe := NewEdge(phys[e.A], phys[e.B])
		if !d.HasEdge(pe.A, pe.B) {
			t.Errorf("induced edge %v has no parent edge %v", e, pe)
		}
		if sub.ZZ[e] != d.ZZ[pe] {
			t.Errorf("induced ZZ[%v] != parent ZZ[%v]", e, pe)
		}
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Induced("bad", []int{0, 0}); err == nil {
		t.Error("duplicate region qubit must error")
	}
	if _, _, err := d.Induced("bad", []int{-1}); err == nil {
		t.Error("out-of-range region qubit must error")
	}
}

// TestZZOverride pins the build-time calibration override (the supported
// replacement for mutating dev.ZZ after construction).
func TestZZOverride(t *testing.T) {
	opts := DefaultOptions()
	opts.ZZOverride = []EdgeRate{{A: 1, B: 2, Hz: 230e3}}
	d := NewLine("ov", 4, opts)
	if d.ZZ[NewEdge(1, 2)] != 230e3 {
		t.Errorf("override not applied: %v", d.ZZ[NewEdge(1, 2)])
	}
	// Everything else matches the override-free synthesis (the override
	// must not consume RNG draws).
	plain := NewLine("ov", 4, DefaultOptions())
	if d.ZZ[NewEdge(0, 1)] != plain.ZZ[NewEdge(0, 1)] || d.T1[3] != plain.T1[3] {
		t.Error("override perturbed unrelated calibration")
	}
	defer func() {
		if recover() == nil {
			t.Error("override on an uncoupled edge must panic")
		}
	}()
	opts.ZZOverride = []EdgeRate{{A: 0, B: 3, Hz: 1}}
	NewLine("ov", 4, opts)
}

// TestRegistryDeterministic pins that backend builders are pure: two
// builds fingerprint identically (the sweep cache keys rely on it).
func TestRegistryDeterministic(t *testing.T) {
	for _, name := range BackendNames() {
		a, err := NewBackend(name)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := NewBackend(name)
		ka, _ := store.Fingerprint(a.Snapshot())
		kb, _ := store.Fingerprint(b.Snapshot())
		if ka != kb {
			t.Errorf("backend %s is not deterministic", name)
		}
	}
	if _, err := NewBackend("nope"); err == nil {
		t.Error("unknown backend must error")
	}
	infos := Backends()
	for _, inf := range infos {
		d, _ := NewBackend(inf.Name)
		if d.NQubits != inf.NQubits || len(d.Couplers) != inf.Couplers {
			t.Errorf("%s: info (%dq, %d couplers) disagrees with device (%dq, %d)",
				inf.Name, inf.NQubits, inf.Couplers, d.NQubits, len(d.Couplers))
		}
	}
}

// TestTopologyFamilies sanity-checks the generators.
func TestTopologyFamilies(t *testing.T) {
	hex := HeavyHexTopology("eagle", 7, 15)
	if hex.NQubits != 127 {
		t.Errorf("Eagle lattice has %d qubits, want 127", hex.NQubits)
	}
	if got := HeavyHexTopology("falcon", 3, 9).NQubits; got != 29 {
		t.Errorf("Falcon-class patch has %d qubits, want 29", got)
	}
	if got := HeavyHexTopology("hummingbird", 5, 11).NQubits; got != 65 {
		t.Errorf("Hummingbird lattice has %d qubits, want 65", got)
	}
	grid := GridTopology("g", 4, 4)
	if grid.NQubits != 16 || len(grid.Couplers) != 24 {
		t.Errorf("grid 4x4: %d qubits, %d couplers", grid.NQubits, len(grid.Couplers))
	}
	for _, tp := range []Topology{hex, grid, LineTopology("l", 8), RingTopology("r", 12)} {
		if err := tp.Validate(); err != nil {
			t.Errorf("%s: %v", tp.Name, err)
		}
		if comps := tp.Graph().Components(); len(comps) != 1 {
			t.Errorf("%s: %d components", tp.Name, len(comps))
		}
	}
	// Degree bound of heavy-hex: row qubits have <= 3 neighbors (two
	// horizontal + one bridge), bridges exactly 2.
	g := hex.Graph()
	for q := 0; q < hex.NQubits; q++ {
		if g.Degree(q) > 3 {
			t.Errorf("heavy-hex qubit %d has degree %d", q, g.Degree(q))
		}
	}
}
