package linalg

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestIdentityAndMul(t *testing.T) {
	id := Identity(4)
	m := FromRows([][]complex128{
		{1, 2, 0, 0},
		{0, 1, 0, 0},
		{0, 0, 3, 1i},
		{0, 0, 0, 1},
	})
	if !ApproxEqual(Mul(id, m), m, 1e-14) || !ApproxEqual(Mul(m, id), m, 1e-14) {
		t.Error("identity is not neutral under Mul")
	}
}

func TestMulChainAssociativity(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	b := FromRows([][]complex128{{0, 1i}, {-1i, 0}})
	c := FromRows([][]complex128{{2, 0}, {0, 0.5}})
	lhs := Mul(Mul(a, b), c)
	rhs := Mul(a, Mul(b, c))
	if !ApproxEqual(lhs, rhs, 1e-12) {
		t.Error("matrix multiplication is not associative")
	}
	if !ApproxEqual(MulChain(a, b, c), lhs, 1e-12) {
		t.Error("MulChain mismatch")
	}
}

func TestKronDimensionsAndValues(t *testing.T) {
	x := FromRows([][]complex128{{0, 1}, {1, 0}})
	z := FromRows([][]complex128{{1, 0}, {0, -1}})
	k := Kron(x, z)
	if k.N != 4 {
		t.Fatalf("Kron dimension %d, want 4", k.N)
	}
	// (X kron Z)[0][2] = x01*z00 = 1.
	if k.At(0, 2) != 1 || k.At(1, 3) != -1 || k.At(2, 0) != 1 || k.At(3, 1) != -1 {
		t.Errorf("Kron values wrong:\n%v", k)
	}
}

func TestDaggerInvolution(t *testing.T) {
	m := FromRows([][]complex128{{1 + 2i, 3}, {4i, 5 - 1i}})
	if !ApproxEqual(Dagger(Dagger(m)), m, 1e-14) {
		t.Error("dagger is not an involution")
	}
	if Dagger(m).At(0, 1) != -4i {
		t.Error("dagger does not conjugate-transpose")
	}
}

func TestTrace(t *testing.T) {
	m := FromRows([][]complex128{{1, 9}, {9, 2i}})
	if Trace(m) != 1+2i {
		t.Errorf("trace = %v", Trace(m))
	}
}

func TestIsUnitary(t *testing.T) {
	h := complex(1/math.Sqrt2, 0)
	had := FromRows([][]complex128{{h, h}, {h, -h}})
	if !IsUnitary(had, 1e-12) {
		t.Error("Hadamard should be unitary")
	}
	if IsUnitary(FromRows([][]complex128{{1, 1}, {0, 1}}), 1e-12) {
		t.Error("shear should not be unitary")
	}
}

func TestEqualUpToPhase(t *testing.T) {
	m := FromRows([][]complex128{{0, 1}, {1, 0}})
	ph := cmplx.Exp(complex(0, 1.234))
	if !EqualUpToPhase(Scale(ph, m), m, 1e-12) {
		t.Error("phase-equivalent matrices not detected")
	}
	z := FromRows([][]complex128{{1, 0}, {0, -1}})
	if EqualUpToPhase(m, z, 1e-12) {
		t.Error("X and Z should not be phase-equivalent")
	}
}

func TestVectorNormalizeAndInner(t *testing.T) {
	v := Vector{3, 4i}
	v.Normalize()
	if math.Abs(v.Norm()-1) > 1e-12 {
		t.Error("normalize failed")
	}
	w := Vector{1, 0}
	ip := Inner(w, v)
	if math.Abs(real(ip)-0.6) > 1e-12 {
		t.Errorf("inner product %v", ip)
	}
}

func TestApply1QOnBasis(t *testing.T) {
	v := NewVector(2) // |00>
	x := FromRows([][]complex128{{0, 1}, {1, 0}})
	v.Apply1Q(x, 1)
	// should now be |10> = index 2 (qubit1 is bit 1)
	if v[2] != 1 || v[0] != 0 {
		t.Errorf("Apply1Q moved to wrong basis state: %v", v)
	}
}

func TestApply2QMatchesKron(t *testing.T) {
	// Applying u on (q1=1, q0=0) must equal the full Kron matrix action.
	u := FromRows([][]complex128{
		{0, 1, 0, 0},
		{1, 0, 0, 0},
		{0, 0, 0, -1i},
		{0, 0, 1i, 0},
	})
	v := NewVector(2)
	v[0] = 0.5
	v[1] = 0.5
	v[2] = 0.5
	v[3] = 0.5
	got := v.Copy()
	got.Apply2Q(u, 1, 0)
	// Build the same by direct matrix multiplication: index = q1*2 + q0,
	// which matches the vector's bit layout (q1 = bit1, q0 = bit0).
	want := make(Vector, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want[i] += u.At(i, j) * v[j]
		}
	}
	for i := range want {
		if cmplx.Abs(want[i]-got[i]) > 1e-12 {
			t.Fatalf("Apply2Q mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestProbCollapseExpectZ(t *testing.T) {
	v := NewVector(1)
	h := complex(1/math.Sqrt2, 0)
	v.Apply1Q(FromRows([][]complex128{{h, h}, {h, -h}}), 0)
	if math.Abs(v.Prob(0, 1)-0.5) > 1e-12 {
		t.Error("|+> should have P(1) = 0.5")
	}
	if math.Abs(v.ExpectZ(0)) > 1e-12 {
		t.Error("|+> should have <Z> = 0")
	}
	v.Collapse(0, 1)
	if math.Abs(v.Prob(0, 1)-1) > 1e-12 {
		t.Error("collapse to 1 failed")
	}
}

func TestUnitaryPreservesNormProperty(t *testing.T) {
	// Random diagonal-phase + X mixing circuits preserve the norm.
	f := func(seedA, seedB int64) bool {
		phase := float64(seedA%1000) / 1000 * 2 * math.Pi
		rz := FromRows([][]complex128{
			{cmplx.Exp(complex(0, -phase/2)), 0},
			{0, cmplx.Exp(complex(0, phase/2))},
		})
		x := FromRows([][]complex128{{0, 1}, {1, 0}})
		v := NewVector(3)
		v.Apply1Q(x, int(uint(seedB)%3))
		v.Apply1Q(rz, int(uint(seedA)%3))
		v.Apply1Q(x, 0)
		return math.Abs(v.Norm()-1) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFidelityPure(t *testing.T) {
	a := NewVector(1)
	b := NewVector(1)
	if math.Abs(FidelityPure(a, b)-1) > 1e-12 {
		t.Error("identical states should have fidelity 1")
	}
	b[0], b[1] = 0, 1
	if FidelityPure(a, b) > 1e-12 {
		t.Error("orthogonal states should have fidelity 0")
	}
}
