// Package linalg provides the small dense complex linear algebra kernel used
// throughout casq: column-major-free square matrices, Kronecker products,
// dagger, matrix-vector products on n-qubit statevectors, and numerical
// comparisons. Everything is complex128 and allocation-explicit; matrices
// are tiny (2x2 .. 16x16) while vectors can be 2^n entries.
package linalg

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Matrix is a square complex matrix stored row-major.
type Matrix struct {
	N    int          // dimension
	Data []complex128 // len N*N, row-major
}

// NewMatrix returns an N x N zero matrix.
func NewMatrix(n int) Matrix {
	return Matrix{N: n, Data: make([]complex128, n*n)}
}

// FromRows builds a matrix from row slices. All rows must have equal length
// matching the number of rows.
func FromRows(rows [][]complex128) Matrix {
	n := len(rows)
	m := NewMatrix(n)
	for i, r := range rows {
		if len(r) != n {
			panic(fmt.Sprintf("linalg: row %d has length %d, want %d", i, len(r), n))
		}
		copy(m.Data[i*n:(i+1)*n], r)
	}
	return m
}

// Identity returns the N x N identity.
func Identity(n int) Matrix {
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m Matrix) At(i, j int) complex128 { return m.Data[i*m.N+j] }

// Set assigns element (i, j).
func (m Matrix) Set(i, j int, v complex128) { m.Data[i*m.N+j] = v }

// Copy returns a deep copy of m.
func (m Matrix) Copy() Matrix {
	c := NewMatrix(m.N)
	copy(c.Data, m.Data)
	return c
}

// Mul returns a*b.
func Mul(a, b Matrix) Matrix {
	if a.N != b.N {
		panic(fmt.Sprintf("linalg: dimension mismatch %d x %d", a.N, b.N))
	}
	n := a.N
	c := NewMatrix(n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			aik := a.Data[i*n+k]
			if aik == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				c.Data[i*n+j] += aik * b.Data[k*n+j]
			}
		}
	}
	return c
}

// MulChain multiplies matrices left to right: MulChain(a,b,c) = a*b*c.
func MulChain(ms ...Matrix) Matrix {
	if len(ms) == 0 {
		panic("linalg: MulChain needs at least one matrix")
	}
	acc := ms[0].Copy()
	for _, m := range ms[1:] {
		acc = Mul(acc, m)
	}
	return acc
}

// Add returns a+b.
func Add(a, b Matrix) Matrix {
	if a.N != b.N {
		panic("linalg: dimension mismatch in Add")
	}
	c := NewMatrix(a.N)
	for i := range a.Data {
		c.Data[i] = a.Data[i] + b.Data[i]
	}
	return c
}

// Scale returns s*m.
func Scale(s complex128, m Matrix) Matrix {
	c := NewMatrix(m.N)
	for i := range m.Data {
		c.Data[i] = s * m.Data[i]
	}
	return c
}

// Dagger returns the conjugate transpose of m.
func Dagger(m Matrix) Matrix {
	n := m.N
	d := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d.Data[j*n+i] = cmplx.Conj(m.Data[i*n+j])
		}
	}
	return d
}

// Kron returns the Kronecker product a (x) b.
func Kron(a, b Matrix) Matrix {
	n := a.N * b.N
	c := NewMatrix(n)
	for i := 0; i < a.N; i++ {
		for j := 0; j < a.N; j++ {
			aij := a.Data[i*a.N+j]
			if aij == 0 {
				continue
			}
			for k := 0; k < b.N; k++ {
				for l := 0; l < b.N; l++ {
					c.Data[(i*b.N+k)*n+(j*b.N+l)] = aij * b.Data[k*b.N+l]
				}
			}
		}
	}
	return c
}

// Trace returns the trace of m.
func Trace(m Matrix) complex128 {
	var t complex128
	for i := 0; i < m.N; i++ {
		t += m.Data[i*m.N+i]
	}
	return t
}

// IsUnitary reports whether m is unitary to within tol (max-norm of
// m*m^dagger - I).
func IsUnitary(m Matrix, tol float64) bool {
	p := Mul(m, Dagger(m))
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			want := complex(0, 0)
			if i == j {
				want = 1
			}
			if cmplx.Abs(p.At(i, j)-want) > tol {
				return false
			}
		}
	}
	return true
}

// ApproxEqual reports whether a and b agree element-wise within tol.
func ApproxEqual(a, b Matrix, tol float64) bool {
	if a.N != b.N {
		return false
	}
	for i := range a.Data {
		if cmplx.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// EqualUpToPhase reports whether a = e^{i phi} b for some global phase phi,
// within tol.
func EqualUpToPhase(a, b Matrix, tol float64) bool {
	if a.N != b.N {
		return false
	}
	// Find the largest-magnitude element of b to fix the phase.
	var phase complex128
	best := 0.0
	for i := range b.Data {
		if ab := cmplx.Abs(b.Data[i]); ab > best {
			best = ab
			if cmplx.Abs(a.Data[i]) == 0 {
				return false
			}
			phase = a.Data[i] / b.Data[i]
		}
	}
	if best < tol {
		return ApproxEqual(a, b, tol)
	}
	if math.Abs(cmplx.Abs(phase)-1) > tol {
		return false
	}
	return ApproxEqual(a, Scale(phase, b), tol)
}

// Vector is an n-qubit statevector with 2^n amplitudes. Qubit 0 is the
// least-significant bit of the basis index.
type Vector []complex128

// NewVector returns the all-zeros |0...0> state on n qubits.
func NewVector(nQubits int) Vector {
	v := make(Vector, 1<<nQubits)
	v[0] = 1
	return v
}

// Copy returns a deep copy of v.
func (v Vector) Copy() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// NumQubits returns the qubit count of the statevector.
func (v Vector) NumQubits() int {
	n := 0
	for (1 << n) < len(v) {
		n++
	}
	return n
}

// Norm returns the 2-norm of v.
func (v Vector) Norm() float64 {
	s := 0.0
	for _, a := range v {
		s += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(s)
}

// Normalize scales v to unit norm in place. It panics on the zero vector.
func (v Vector) Normalize() {
	n := v.Norm()
	if n == 0 {
		panic("linalg: cannot normalize zero vector")
	}
	inv := complex(1/n, 0)
	for i := range v {
		v[i] *= inv
	}
}

// Inner returns <a|b>.
func Inner(a, b Vector) complex128 {
	if len(a) != len(b) {
		panic("linalg: dimension mismatch in Inner")
	}
	var s complex128
	for i := range a {
		s += cmplx.Conj(a[i]) * b[i]
	}
	return s
}

// FidelityPure returns |<a|b>|^2 for pure states.
func FidelityPure(a, b Vector) float64 {
	ip := Inner(a, b)
	return real(ip)*real(ip) + imag(ip)*imag(ip)
}

// Apply1Q applies the 2x2 unitary u to qubit q of v in place. The kernel is
// strided: it visits exactly the 2^(n-1) base indices with bit q clear, in
// blocks of 2^q contiguous entries, instead of skip-scanning all 2^n.
func (v Vector) Apply1Q(u Matrix, q int) {
	if u.N != 2 {
		panic("linalg: Apply1Q needs a 2x2 matrix")
	}
	bit := 1 << q
	u00, u01 := u.Data[0], u.Data[1]
	u10, u11 := u.Data[2], u.Data[3]
	for base := 0; base < len(v); base += bit << 1 {
		for i := base; i < base+bit; i++ {
			j := i | bit
			a0, a1 := v[i], v[j]
			v[i] = u00*a0 + u01*a1
			v[j] = u10*a0 + u11*a1
		}
	}
}

// Apply2Q applies the 4x4 unitary u to qubits (q1, q0) of v in place, where
// q0 indexes the least-significant bit of the 4x4 basis {|q1 q0>}. The
// kernel visits exactly the 2^(n-2) base indices with both qubit bits
// clear, striding over the high and low bit positions.
func (v Vector) Apply2Q(u Matrix, q1, q0 int) {
	if u.N != 4 {
		panic("linalg: Apply2Q needs a 4x4 matrix")
	}
	if q1 == q0 {
		panic("linalg: Apply2Q qubits must differ")
	}
	b0 := 1 << q0
	b1 := 1 << q1
	lo, hi := b0, b1
	if lo > hi {
		lo, hi = hi, lo
	}
	u00, u01, u02, u03 := u.Data[0], u.Data[1], u.Data[2], u.Data[3]
	u10, u11, u12, u13 := u.Data[4], u.Data[5], u.Data[6], u.Data[7]
	u20, u21, u22, u23 := u.Data[8], u.Data[9], u.Data[10], u.Data[11]
	u30, u31, u32, u33 := u.Data[12], u.Data[13], u.Data[14], u.Data[15]
	for outer := 0; outer < len(v); outer += hi << 1 {
		for inner := outer; inner < outer+hi; inner += lo << 1 {
			for i00 := inner; i00 < inner+lo; i00++ {
				i01 := i00 | b0
				i10 := i00 | b1
				i11 := i01 | b1
				a0, a1, a2, a3 := v[i00], v[i01], v[i10], v[i11]
				v[i00] = u00*a0 + u01*a1 + u02*a2 + u03*a3
				v[i01] = u10*a0 + u11*a1 + u12*a2 + u13*a3
				v[i10] = u20*a0 + u21*a1 + u22*a2 + u23*a3
				v[i11] = u30*a0 + u31*a1 + u32*a2 + u33*a3
			}
		}
	}
}

// Prob returns the probability of measuring qubit q in state bit (0 or 1).
func (v Vector) Prob(q int, bit int) float64 {
	mask := 1 << q
	p := 0.0
	for i, a := range v {
		hit := (i&mask != 0) == (bit == 1)
		if hit {
			p += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	return p
}

// Collapse projects qubit q onto outcome bit and renormalizes.
func (v Vector) Collapse(q int, bit int) {
	mask := 1 << q
	for i := range v {
		if (i&mask != 0) != (bit == 1) {
			v[i] = 0
		}
	}
	v.Normalize()
}

// ExpectZ returns <Z_q>.
func (v Vector) ExpectZ(q int) float64 {
	mask := 1 << q
	s := 0.0
	for i, a := range v {
		p := real(a)*real(a) + imag(a)*imag(a)
		if i&mask == 0 {
			s += p
		} else {
			s -= p
		}
	}
	return s
}

// String renders the matrix for debugging.
func (m Matrix) String() string {
	s := ""
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			s += fmt.Sprintf("(%6.3f%+6.3fi) ", real(m.At(i, j)), imag(m.At(i, j)))
		}
		s += "\n"
	}
	return s
}
