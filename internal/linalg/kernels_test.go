package linalg

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// randomState returns a normalized random statevector on n qubits.
func randomState(rng *rand.Rand, n int) Vector {
	v := make(Vector, 1<<n)
	for i := range v {
		v[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	v.Normalize()
	return v
}

// randomUnitary returns a Haar-ish random d x d unitary via Gram-Schmidt on
// a Ginibre matrix.
func randomUnitary(rng *rand.Rand, d int) Matrix {
	m := NewMatrix(d)
	for i := range m.Data {
		m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	// Orthonormalize the rows.
	for i := 0; i < d; i++ {
		ri := m.Data[i*d : (i+1)*d]
		for j := 0; j < i; j++ {
			rj := m.Data[j*d : (j+1)*d]
			var ip complex128
			for k := 0; k < d; k++ {
				ip += cmplx.Conj(rj[k]) * ri[k]
			}
			for k := 0; k < d; k++ {
				ri[k] -= ip * rj[k]
			}
		}
		norm := 0.0
		for k := 0; k < d; k++ {
			norm += real(ri[k])*real(ri[k]) + imag(ri[k])*imag(ri[k])
		}
		inv := complex(1/math.Sqrt(norm), 0)
		for k := 0; k < d; k++ {
			ri[k] *= inv
		}
	}
	return m
}

// kronExpand1Q materializes the full 2^n x 2^n operator of the 2x2 unitary
// u acting on qubit q: entry (R, C) is u[r][c] when R and C agree outside
// bit q, with r/c the values of bit q.
func kronExpand1Q(u Matrix, q, n int) Matrix {
	dim := 1 << n
	f := NewMatrix(dim)
	bit := 1 << q
	for r := 0; r < dim; r++ {
		for c := 0; c < dim; c++ {
			if r&^bit != c&^bit {
				continue
			}
			ri, ci := 0, 0
			if r&bit != 0 {
				ri = 1
			}
			if c&bit != 0 {
				ci = 1
			}
			f.Data[r*dim+c] = u.At(ri, ci)
		}
	}
	return f
}

// kronExpand2Q materializes the full operator of the 4x4 unitary u acting
// on qubits (q1, q0), q1 the high bit of the 4x4 index.
func kronExpand2Q(u Matrix, q1, q0, n int) Matrix {
	dim := 1 << n
	f := NewMatrix(dim)
	b0, b1 := 1<<q0, 1<<q1
	rest := ^(b0 | b1)
	sub := func(i int) int {
		s := 0
		if i&b1 != 0 {
			s |= 2
		}
		if i&b0 != 0 {
			s |= 1
		}
		return s
	}
	for r := 0; r < dim; r++ {
		for c := 0; c < dim; c++ {
			if r&rest != c&rest {
				continue
			}
			f.Data[r*dim+c] = u.At(sub(r), sub(c))
		}
	}
	return f
}

// matVec is the naive dense reference product.
func matVec(f Matrix, v Vector) Vector {
	w := make(Vector, len(v))
	for r := 0; r < f.N; r++ {
		var s complex128
		row := f.Data[r*f.N : (r+1)*f.N]
		for c, a := range v {
			s += row[c] * a
		}
		w[r] = s
	}
	return w
}

func maxDiff(a, b Vector) float64 {
	m := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// TestApply1QMatchesKronReference property-tests the strided 1q kernel
// against the Kron-expanded dense operator on random unitaries and random
// states at 8 qubits (dense reference) — every qubit position exercised.
func TestApply1QMatchesKronReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 8
	for trial := 0; trial < 12; trial++ {
		u := randomUnitary(rng, 2)
		q := rng.Intn(n)
		v := randomState(rng, n)
		want := matVec(kronExpand1Q(u, q, n), v)
		got := v.Copy()
		got.Apply1Q(u, q)
		if d := maxDiff(got, want); d > 1e-11 {
			t.Fatalf("trial %d q=%d: max deviation %.3g from Kron reference", trial, q, d)
		}
		if math.Abs(got.Norm()-1) > 1e-10 {
			t.Fatalf("trial %d q=%d: norm drifted to %.12f", trial, q, got.Norm())
		}
	}
}

// TestApply2QMatchesKronReference does the same for the strided 2q kernel,
// covering all qubit-order cases (q1 > q0 and q1 < q0, adjacent and far).
func TestApply2QMatchesKronReference(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const n = 8
	for trial := 0; trial < 12; trial++ {
		u := randomUnitary(rng, 4)
		q0 := rng.Intn(n)
		q1 := rng.Intn(n)
		for q1 == q0 {
			q1 = rng.Intn(n)
		}
		v := randomState(rng, n)
		want := matVec(kronExpand2Q(u, q1, q0, n), v)
		got := v.Copy()
		got.Apply2Q(u, q1, q0)
		if d := maxDiff(got, want); d > 1e-11 {
			t.Fatalf("trial %d (q1=%d,q0=%d): max deviation %.3g from Kron reference", trial, q1, q0, d)
		}
	}
}

// skipScan1Q and skipScan2Q are the pre-strided kernels (scan all 2^n
// indices, skip those with target bits set), kept as a second reference so
// large registers — where the dense Kron operator would not fit in memory —
// are still covered.
func skipScan1Q(v Vector, u Matrix, q int) {
	bit := 1 << q
	for i := 0; i < len(v); i++ {
		if i&bit != 0 {
			continue
		}
		j := i | bit
		a0, a1 := v[i], v[j]
		v[i] = u.Data[0]*a0 + u.Data[1]*a1
		v[j] = u.Data[2]*a0 + u.Data[3]*a1
	}
}

func skipScan2Q(v Vector, u Matrix, q1, q0 int) {
	b0, b1 := 1<<q0, 1<<q1
	for i := 0; i < len(v); i++ {
		if i&b0 != 0 || i&b1 != 0 {
			continue
		}
		i01, i10, i11 := i|b0, i|b1, i|b0|b1
		a0, a1, a2, a3 := v[i], v[i01], v[i10], v[i11]
		v[i] = u.Data[0]*a0 + u.Data[1]*a1 + u.Data[2]*a2 + u.Data[3]*a3
		v[i01] = u.Data[4]*a0 + u.Data[5]*a1 + u.Data[6]*a2 + u.Data[7]*a3
		v[i10] = u.Data[8]*a0 + u.Data[9]*a1 + u.Data[10]*a2 + u.Data[11]*a3
		v[i11] = u.Data[12]*a0 + u.Data[13]*a1 + u.Data[14]*a2 + u.Data[15]*a3
	}
}

// TestStridedKernelsMatchSkipScanLarge pins the strided kernels bit-for-bit
// against the pre-overhaul skip-scan kernels on 10- and 12-qubit registers:
// both orderings perform the identical arithmetic per amplitude pair, so
// the results must be exactly equal, not just close.
func TestStridedKernelsMatchSkipScanLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{10, 12} {
		for trial := 0; trial < 6; trial++ {
			u1 := randomUnitary(rng, 2)
			u2 := randomUnitary(rng, 4)
			q := rng.Intn(n)
			q0 := rng.Intn(n)
			q1 := rng.Intn(n)
			for q1 == q0 {
				q1 = rng.Intn(n)
			}
			v := randomState(rng, n)
			want := v.Copy()
			skipScan1Q(want, u1, q)
			skipScan2Q(want, u2, q1, q0)
			got := v.Copy()
			got.Apply1Q(u1, q)
			got.Apply2Q(u2, q1, q0)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d trial %d: amplitude %d differs: %v vs %v", n, trial, i, got[i], want[i])
				}
			}
		}
	}
}
