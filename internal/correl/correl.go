// Package correl is the error-correlation spectroscopy estimator: it turns
// packed per-shot outcome planes (sim.PackedBits, bit 1 = "this shot's
// outcome flipped on this qubit") into the two-point covariance and
// correlation matrix of outcome flips across every qubit pair — the object
// Edmunds et al. measure directly and the paper's context-aware passes are
// designed to suppress.
//
// The estimator never unpacks shots to bytes. For a pair (i, j) the three
// sufficient statistics are popcount reductions over 64-shot words:
//
//	n1[i]      = popcount(P_i)            one flip count per plane
//	nxor(i,j)  = popcount(P_i XOR P_j)    shots where exactly one flipped
//	n11(i,j)   = (n1[i] + n1[j] - nxor)/2 joint flips, recovered without AND
//
// from which Cov(i,j) = n11/S - p_i p_j and Corr = Cov/sqrt(p_i q_i p_j q_j).
// Standard errors come from a delete-one-block jackknife over the 64-shot
// words (the shot-resampling granularity the bit-plane layout gives for
// free), so every reported covariance carries an honest uncertainty and
// tests can pin estimates with k-sigma bounds instead of eyeballed
// tolerances.
//
// A naive per-shot scalar reference (EstimateScalar) counts the same
// statistics by walking individual bits; the two paths share every
// floating-point step after counting, so they are bit-identical whenever
// the integer counts agree — the differential test that would catch any
// tail-word mask leaking invalid bits into a popcount.
package correl

import (
	"math"
	"math/bits"
	"sort"

	"casq/internal/sim"
)

// Matrix is the estimated two-point flip-correlation structure over n
// classical bits. Pair-indexed slices are packed upper-triangular (i < j)
// via PairIndex; for n = 127 that is 8001 pairs.
type Matrix struct {
	N     int // classical bits (qubits)
	Shots int

	// Ones is the per-bit flip count; P the per-bit flip rate Ones/Shots.
	Ones []int
	P    []float64
	// N11 is the per-pair joint flip count (both bits 1 in one shot).
	N11 []int
	// Cov and Corr are the per-pair covariance and Pearson correlation of
	// the two flip indicators. SECov and SECorr are their delete-one-block
	// jackknife standard errors (zero when the record holds a single
	// 64-shot word — one block cannot be resampled).
	Cov, Corr     []float64
	SECov, SECorr []float64
}

// PairIndex maps a pair i < j on n bits to its packed upper-triangular
// index. Callers must order the pair (swap first if i > j).
func PairIndex(n, i, j int) int {
	return i*n - i*(i+1)/2 + (j - i - 1)
}

// Pairs returns the number of unordered pairs on n bits.
func Pairs(n int) int { return n * (n - 1) / 2 }

// CovAt returns the flip covariance of the pair (order-free).
func (m Matrix) CovAt(i, j int) float64 { return m.pairVal(m.Cov, i, j) }

// CorrAt returns the flip correlation of the pair (order-free).
func (m Matrix) CorrAt(i, j int) float64 { return m.pairVal(m.Corr, i, j) }

// SECovAt returns the jackknife standard error of CovAt.
func (m Matrix) SECovAt(i, j int) float64 { return m.pairVal(m.SECov, i, j) }

// SECorrAt returns the jackknife standard error of CorrAt.
func (m Matrix) SECorrAt(i, j int) float64 { return m.pairVal(m.SECorr, i, j) }

func (m Matrix) pairVal(s []float64, i, j int) float64 {
	if i == j {
		return 0
	}
	if i > j {
		i, j = j, i
	}
	return s[PairIndex(m.N, i, j)]
}

// JointCounts returns the 2x2 contingency table of the pair as
// [n00, n01, n10, n11], where the first index is bit i's value — the
// input to a chi-square goodness-of-fit against model probabilities.
func (m Matrix) JointCounts(i, j int) [4]int {
	if i > j {
		i, j = j, i
		n11 := m.N11[PairIndex(m.N, i, j)]
		n01 := m.Ones[i] - n11 // i now holds the original second bit
		n10 := m.Ones[j] - n11
		return [4]int{m.Shots - n11 - n01 - n10, n01, n10, n11}
	}
	n11 := m.N11[PairIndex(m.N, i, j)]
	n10 := m.Ones[i] - n11
	n01 := m.Ones[j] - n11
	return [4]int{m.Shots - n11 - n10 - n01, n01, n10, n11}
}

// PairStat is one thresholded pair of the sparse representation.
type PairStat struct {
	I    int     `json:"i"`
	J    int     `json:"j"`
	Corr float64 `json:"corr"`
	Cov  float64 `json:"cov"`
	// SE is the jackknife standard error of Corr.
	SE float64 `json:"se"`
}

// Sparse returns the pairs with |Corr| >= minAbsCorr, sorted by
// descending |Corr| (ties by pair order) — the thresholded representation
// that keeps a 127-qubit matrix (8001 pairs) reportable: under weak noise
// almost every pair sits below the statistical floor.
func (m Matrix) Sparse(minAbsCorr float64) []PairStat {
	var out []PairStat
	for i := 0; i < m.N; i++ {
		for j := i + 1; j < m.N; j++ {
			k := PairIndex(m.N, i, j)
			if math.Abs(m.Corr[k]) >= minAbsCorr {
				out = append(out, PairStat{I: i, J: j, Corr: m.Corr[k], Cov: m.Cov[k], SE: m.SECorr[k]})
			}
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		return math.Abs(out[a].Corr) > math.Abs(out[b].Corr)
	})
	return out
}

// DecayBin is the mean absolute correlation over all pairs at one coupling-
// graph distance.
type DecayBin struct {
	Distance    int     `json:"distance"`
	MeanAbsCorr float64 `json:"mean_abs_corr"`
	Pairs       int     `json:"pairs"`
}

// DecayByDistance bins |Corr| by pair distance: dist[i][j] is the graph
// distance between bits i and j (negative = unreachable, skipped), and
// maxDist > 0 caps the reported bins. The result is ascending in distance
// with only populated bins present — the correlation-decay curve of the
// spectroscopy figures.
func DecayByDistance(m Matrix, dist [][]int, maxDist int) []DecayBin {
	sums := map[int]*DecayBin{}
	for i := 0; i < m.N; i++ {
		for j := i + 1; j < m.N; j++ {
			d := dist[i][j]
			if d < 1 || (maxDist > 0 && d > maxDist) {
				continue
			}
			b := sums[d]
			if b == nil {
				b = &DecayBin{Distance: d}
				sums[d] = b
			}
			b.MeanAbsCorr += math.Abs(m.Corr[PairIndex(m.N, i, j)])
			b.Pairs++
		}
	}
	out := make([]DecayBin, 0, len(sums))
	for _, b := range sums {
		b.MeanAbsCorr /= float64(b.Pairs)
		out = append(out, *b)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Distance < out[b].Distance })
	return out
}

// ChiSquare2x2 returns the chi-square goodness-of-fit statistic of an
// observed 2x2 contingency table (JointCounts order) against model joint
// probabilities p summing to 1 over `shots` trials. Cells with zero
// expected count contribute +Inf unless also observed zero — a model that
// forbids an observed outcome is rejected outright. Three degrees of
// freedom; the test-harness convention bounds the statistic at the
// 5-sigma-equivalent quantile.
func ChiSquare2x2(n [4]int, p [4]float64, shots int) float64 {
	chi := 0.0
	for k := 0; k < 4; k++ {
		exp := p[k] * float64(shots)
		if exp == 0 {
			if n[k] != 0 {
				return math.Inf(1)
			}
			continue
		}
		d := float64(n[k]) - exp
		chi += d * d / exp
	}
	return chi
}

// ChiSquare3DF5Sigma is the df=3 chi-square quantile at the two-sided
// 5-sigma tail probability (~5.7e-7): the harness-wide acceptance bound
// for ChiSquare2x2 statistics. A correct model exceeds it about once per
// 1.7 million tables.
const ChiSquare3DF5Sigma = 33.0

// Estimate computes the flip-correlation matrix from packed outcome
// planes by word-parallel popcount reductions: one XOR+popcount per pair
// per 64 shots, never unpacking to per-shot bytes. Invalid bits beyond
// pb.Shots in the final word are masked out of every count.
func Estimate(pb sim.PackedBits) Matrix { return estimate(pb, false) }

// EstimateScalar is the naive per-shot reference estimator: it counts the
// same sufficient statistics by reading individual bits, then shares every
// floating-point step with Estimate — so the two are bit-identical
// whenever the counting paths agree, and any masked-tail leak in the
// packed path shows up as an exact mismatch. It exists for differential
// tests and benchmarks; production callers use Estimate.
func EstimateScalar(pb sim.PackedBits) Matrix { return estimate(pb, true) }

// blockWords returns the word count of a shot record.
func blockWords(shots int) int {
	return (shots + sim.ShotBlockSize - 1) / sim.ShotBlockSize
}

// wordMask returns the valid-bit mask of word w for the given shot count.
func wordMask(shots, w int) uint64 {
	if rem := shots - w*sim.ShotBlockSize; rem < sim.ShotBlockSize {
		return 1<<uint(rem) - 1
	}
	return ^uint64(0)
}

// wordShots returns the number of valid shots in word w.
func wordShots(shots, w int) int {
	if rem := shots - w*sim.ShotBlockSize; rem < sim.ShotBlockSize {
		return rem
	}
	return sim.ShotBlockSize
}

func estimate(pb sim.PackedBits, scalar bool) Matrix {
	n, S := len(pb.Planes), pb.Shots
	m := Matrix{
		N: n, Shots: S,
		Ones: make([]int, n),
		P:    make([]float64, n),
		N11:  make([]int, Pairs(n)),
		Cov:  make([]float64, Pairs(n)), Corr: make([]float64, Pairs(n)),
		SECov: make([]float64, Pairs(n)), SECorr: make([]float64, Pairs(n)),
	}
	if n == 0 || S == 0 {
		return m
	}
	words := blockWords(S)

	// Per-bit, per-word flip counts. The packed path is one masked
	// popcount per word; the scalar reference increments per shot.
	rowOnes := make([][]int, n)
	for i := range rowOnes {
		rowOnes[i] = make([]int, words)
		if scalar {
			for s := 0; s < S; s++ {
				if pb.Bit(i, s) == 1 {
					rowOnes[i][s/sim.ShotBlockSize]++
				}
			}
		} else {
			for w := 0; w < words; w++ {
				rowOnes[i][w] = bits.OnesCount64(pb.Planes[i][w] & wordMask(S, w))
			}
		}
		for _, c := range rowOnes[i] {
			m.Ones[i] += c
		}
		m.P[i] = float64(m.Ones[i]) / float64(S)
	}

	// Per-pair reduction. xw holds this pair's per-word XOR popcounts so
	// the jackknife can delete one block at a time; thetaCov/thetaCorr are
	// the leave-one-out estimates, reused across pairs.
	xw := make([]int, words)
	thetaCov := make([]float64, words)
	thetaCorr := make([]float64, words)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			nxor := 0
			if scalar {
				for w := range xw {
					xw[w] = 0
				}
				for s := 0; s < S; s++ {
					if pb.Bit(i, s) != pb.Bit(j, s) {
						xw[s/sim.ShotBlockSize]++
					}
				}
				for _, c := range xw {
					nxor += c
				}
			} else {
				pi, pj := pb.Planes[i], pb.Planes[j]
				for w := 0; w < words; w++ {
					c := bits.OnesCount64((pi[w] ^ pj[w]) & wordMask(S, w))
					xw[w] = c
					nxor += c
				}
			}
			// Everything below is shared between the packed and scalar
			// paths: identical float ops on identical integer counts.
			k := PairIndex(n, i, j)
			n11 := (m.Ones[i] + m.Ones[j] - nxor) / 2
			m.N11[k] = n11
			m.Cov[k] = covOf(n11, m.Ones[i], m.Ones[j], S)
			m.Corr[k] = corrOf(n11, m.Ones[i], m.Ones[j], S)
			if words > 1 {
				var meanCov, meanCorr float64
				for w := 0; w < words; w++ {
					Sw := S - wordShots(S, w)
					oi := m.Ones[i] - rowOnes[i][w]
					oj := m.Ones[j] - rowOnes[j][w]
					n11w := (oi + oj - (nxor - xw[w])) / 2
					thetaCov[w] = covOf(n11w, oi, oj, Sw)
					thetaCorr[w] = corrOf(n11w, oi, oj, Sw)
					meanCov += thetaCov[w]
					meanCorr += thetaCorr[w]
				}
				W := float64(words)
				meanCov /= W
				meanCorr /= W
				var vc, vr float64
				for w := 0; w < words; w++ {
					dc := thetaCov[w] - meanCov
					dr := thetaCorr[w] - meanCorr
					vc += dc * dc
					vr += dr * dr
				}
				m.SECov[k] = math.Sqrt((W - 1) / W * vc)
				m.SECorr[k] = math.Sqrt((W - 1) / W * vr)
			}
		}
	}
	return m
}

// covOf is the plug-in covariance of two flip indicators from their
// sufficient statistics.
func covOf(n11, oi, oj, S int) float64 {
	if S == 0 {
		return 0
	}
	fS := float64(S)
	return float64(n11)/fS - (float64(oi)/fS)*(float64(oj)/fS)
}

// corrOf is the Pearson correlation; zero when either marginal is
// degenerate (flip rate exactly 0 or 1 leaves no variance to correlate).
func corrOf(n11, oi, oj, S int) float64 {
	if S == 0 || oi == 0 || oi == S || oj == 0 || oj == S {
		return 0
	}
	fS := float64(S)
	pi, pj := float64(oi)/fS, float64(oj)/fS
	return covOf(n11, oi, oj, S) / math.Sqrt(pi*(1-pi)*pj*(1-pj))
}

// PackedFromCounts expands a bitstring-counts map (sim.BitsKey layout:
// classical bit c at string position c) into packed planes over ncb bits,
// in sorted-key order. It is the bridge from engines that return only a
// counts map (the statevector kernel) into the packed estimator; the shot
// order is synthetic, so jackknife blocks resample sorted outcomes rather
// than true acquisition order — statistically equivalent for i.i.d. shots.
func PackedFromCounts(counts map[string]int, ncb int) sim.PackedBits {
	shots := 0
	keys := make([]string, 0, len(counts))
	for k, c := range counts {
		keys = append(keys, k)
		shots += c
	}
	sort.Strings(keys)
	pb := sim.NewPackedBits(ncb, shots)
	s := 0
	for _, k := range keys {
		for rep := 0; rep < counts[k]; rep++ {
			for c := 0; c < ncb && c < len(k); c++ {
				if k[c] == '1' {
					pb.Set(c, s, 1)
				}
			}
			s++
		}
	}
	return pb
}
