package correl

// Statistical harness conventions (see DESIGN.md "Correlation
// spectroscopy"): every test is seeded (no flaky randomness), acceptance
// bounds are 5-sigma (or the chi-square 5-sigma-equivalent quantile), and
// each bound is derived from either the closed-form model variance or the
// estimator's own jackknife standard error — never an eyeballed tolerance.

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"casq/internal/sim"
)

// genIndependent returns n planes of S i.i.d. Bernoulli(p) flips.
func genIndependent(rng *rand.Rand, n, S int, p float64) sim.PackedBits {
	pb := sim.NewPackedBits(n, S)
	for i := 0; i < n; i++ {
		for s := 0; s < S; s++ {
			if rng.Float64() < p {
				pb.Set(i, s, 1)
			}
		}
	}
	return pb
}

func TestPairIndex(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8, 127} {
		k := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if got := PairIndex(n, i, j); got != k {
					t.Fatalf("PairIndex(%d,%d,%d) = %d, want %d", n, i, j, got, k)
				}
				k++
			}
		}
		if k != Pairs(n) {
			t.Fatalf("Pairs(%d) = %d, enumerated %d", n, Pairs(n), k)
		}
	}
}

// TestIndependentBernoulli5Sigma pins the estimator against the
// closed-form independent model: every off-diagonal covariance must sit
// within 5 jackknife standard errors of zero, the marginals within 5
// binomial standard errors of p, and the jackknife SE itself must be
// calibrated against the analytic sampling variance
// Var(cov) ~ p_i q_i p_j q_j / S.
func TestIndependentBernoulli5Sigma(t *testing.T) {
	const (
		n = 16
		S = 1 << 15
	)
	for _, p := range []float64{0.01, 0.1, 0.5} {
		rng := rand.New(rand.NewSource(1234 + int64(p*1000)))
		m := Estimate(genIndependent(rng, n, S, p))
		sigmaP := math.Sqrt(p * (1 - p) / float64(S))
		for i := 0; i < n; i++ {
			if d := math.Abs(m.P[i] - p); d > 5*sigmaP {
				t.Errorf("p=%v: flip rate of bit %d = %v, off by %.1f sigma", p, i, m.P[i], d/sigmaP)
			}
		}
		sigmaCov := math.Sqrt(p * (1 - p) * p * (1 - p) / float64(S))
		var meanSE float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				k := PairIndex(n, i, j)
				bound := 5 * math.Max(m.SECov[k], sigmaCov)
				if math.Abs(m.Cov[k]) > bound {
					t.Errorf("p=%v: cov(%d,%d) = %v exceeds 5 sigma (%v)", p, i, j, m.Cov[k], bound)
				}
				meanSE += m.SECov[k]
			}
		}
		// Jackknife calibration: the mean reported SE must be within a
		// factor 1.5 of the analytic sampling sigma (it concentrates much
		// tighter; 1.5 leaves room for the p=0.01 small-count regime).
		meanSE /= float64(Pairs(n))
		if meanSE < sigmaCov/1.5 || meanSE > sigmaCov*1.5 {
			t.Errorf("p=%v: mean jackknife SE %v not calibrated to analytic %v", p, meanSE, sigmaCov)
		}
	}
}

// zzModel is the shared correlated-ZZ fixture: bits 2k and 2k+1 flip
// together through a shared Bernoulli(q) ZZ event on top of independent
// Bernoulli(p) background flips (flip = background XOR event).
type zzModel struct{ p, q float64 }

func (mo zzModel) rate() float64 { return mo.p*(1-mo.q) + mo.q*(1-mo.p) }

// cov is the closed-form covariance of a shared-event pair.
func (mo zzModel) cov() float64 {
	r := mo.rate()
	e11 := mo.q*(1-mo.p)*(1-mo.p) + (1-mo.q)*mo.p*mo.p
	return e11 - r*r
}

// joint is the closed-form 2x2 joint distribution [p00, p01, p10, p11].
func (mo zzModel) joint() [4]float64 {
	p11 := mo.q*(1-mo.p)*(1-mo.p) + (1-mo.q)*mo.p*mo.p
	p10 := mo.p * (1 - mo.p) // event value cancels across the two branches
	return [4]float64{1 - p11 - 2*p10, p10, p10, p11}
}

func genZZ(rng *rand.Rand, pairs, S int, mo zzModel) sim.PackedBits {
	pb := sim.NewPackedBits(2*pairs, S)
	for s := 0; s < S; s++ {
		for k := 0; k < pairs; k++ {
			e := 0
			if rng.Float64() < mo.q {
				e = 1
			}
			for _, b := range []int{2 * k, 2*k + 1} {
				x := 0
				if rng.Float64() < mo.p {
					x = 1
				}
				pb.Set(b, s, x^e)
			}
		}
	}
	return pb
}

// TestCorrelatedZZClosedForm pins the estimator against the analytically
// solvable shared-event model: within-pair covariance and correlation
// must match the closed form within 5 jackknife SEs, across-pair
// covariance must vanish, and the chi-square of the joint counts against
// the model distribution must pass at the 5-sigma quantile — while a
// deliberately wrong model (independence) must be rejected by the same
// statistic, so the test has power.
func TestCorrelatedZZClosedForm(t *testing.T) {
	const (
		pairs = 4
		S     = 1 << 16
	)
	mo := zzModel{p: 0.05, q: 0.08}
	rng := rand.New(rand.NewSource(99))
	m := Estimate(genZZ(rng, pairs, S, mo))
	r := mo.rate()
	wantCorr := mo.cov() / (r * (1 - r))
	for k := 0; k < pairs; k++ {
		a, b := 2*k, 2*k+1
		if d := math.Abs(m.CovAt(a, b) - mo.cov()); d > 5*m.SECovAt(a, b) {
			t.Errorf("pair (%d,%d): cov %v vs closed form %v (> 5 SE = %v)",
				a, b, m.CovAt(a, b), mo.cov(), 5*m.SECovAt(a, b))
		}
		if d := math.Abs(m.CorrAt(a, b) - wantCorr); d > 5*m.SECorrAt(a, b) {
			t.Errorf("pair (%d,%d): corr %v vs closed form %v (> 5 SE = %v)",
				a, b, m.CorrAt(a, b), wantCorr, 5*m.SECorrAt(a, b))
		}
		chi := ChiSquare2x2(m.JointCounts(a, b), mo.joint(), S)
		if chi > ChiSquare3DF5Sigma {
			t.Errorf("pair (%d,%d): chi-square %v vs model exceeds %v", a, b, chi, ChiSquare3DF5Sigma)
		}
		// Power check: the independence model must be rejected.
		pi, pj := m.P[a], m.P[b]
		indep := [4]float64{(1 - pi) * (1 - pj), (1 - pi) * pj, pi * (1 - pj), pi * pj}
		if chi := ChiSquare2x2(m.JointCounts(a, b), indep, S); chi < ChiSquare3DF5Sigma {
			t.Errorf("pair (%d,%d): chi-square %v failed to reject independence", a, b, chi)
		}
	}
	// Bits of different pairs are independent: covariance within 5 sigma
	// of zero.
	for a := 0; a < 2*pairs; a++ {
		for b := a + 1; b < 2*pairs; b++ {
			if b == a+1 && a%2 == 0 {
				continue // within-pair
			}
			if math.Abs(m.CovAt(a, b)) > 5*m.SECovAt(a, b) {
				t.Errorf("cross pair (%d,%d): cov %v exceeds 5 SE %v", a, b, m.CovAt(a, b), 5*m.SECovAt(a, b))
			}
		}
	}
}

// TestPackedVsScalarBitIdentical is the differential pin: the packed
// word-parallel estimator and the naive per-shot reference must agree
// bit-for-bit on random planes — including records whose shot counts are
// not multiples of 64 and whose tail words carry deliberately planted
// garbage beyond the last valid shot, the exact class of bug a missing
// tail mask would silently absorb into a popcount.
func TestPackedVsScalarBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, S := range []int{1, 63, 64, 65, 130, 640, 1000} {
		pb := sim.NewPackedBits(13, S)
		for i := range pb.Planes {
			for w := range pb.Planes[i] {
				// Fill whole words: bits beyond S in the last word are
				// garbage the estimator must mask out.
				pb.Planes[i][w] = rng.Uint64()
			}
		}
		packed, scalar := Estimate(pb), EstimateScalar(pb)
		if !reflect.DeepEqual(packed, scalar) {
			t.Fatalf("shots=%d: packed and scalar estimators differ\npacked: %+v\nscalar: %+v", S, packed, scalar)
		}
		if S < 64 {
			for _, se := range packed.SECov {
				if se != 0 {
					t.Fatalf("shots=%d: single-block record reported nonzero jackknife SE", S)
				}
			}
		}
	}
}

// TestPackedFromCountsPreservesStatistics pins the counts-map bridge: the
// reconstructed planes carry exactly the original marginal and joint flip
// counts (shot order is synthetic, counts are not).
func TestPackedFromCountsPreservesStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pb := genIndependent(rng, 6, 500, 0.3)
	recon := PackedFromCounts(pb.Counts().Counts, 6)
	if recon.Shots != pb.Shots {
		t.Fatalf("shots: %d != %d", recon.Shots, pb.Shots)
	}
	a, b := Estimate(pb), Estimate(recon)
	if !reflect.DeepEqual(a.Ones, b.Ones) {
		t.Fatalf("marginal counts differ: %v vs %v", a.Ones, b.Ones)
	}
	if !reflect.DeepEqual(a.N11, b.N11) {
		t.Fatalf("joint counts differ: %v vs %v", a.N11, b.N11)
	}
}

// TestSparseAndDecay checks the thresholded representation and the
// distance-binned decay curve on a construction with one strong pair.
func TestSparseAndDecay(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	mo := zzModel{p: 0.02, q: 0.2}
	pb := genZZ(rng, 1, 1<<14, mo) // bits 0,1 correlated
	ext := genIndependent(rng, 2, 1<<14, 0.02)
	pb.Planes = append(pb.Planes, ext.Planes...) // bits 2,3 independent
	m := Estimate(pb)

	sp := m.Sparse(0.1)
	if len(sp) == 0 || sp[0].I != 0 || sp[0].J != 1 {
		t.Fatalf("Sparse(0.1) did not rank the correlated pair first: %+v", sp)
	}
	for _, ps := range sp[1:] {
		if ps.I == 0 && ps.J == 1 {
			continue
		}
		t.Errorf("Sparse(0.1) kept an uncorrelated pair: %+v", ps)
	}

	// Path-graph distances on 4 nodes: |i-j|.
	dist := make([][]int, 4)
	for i := range dist {
		dist[i] = make([]int, 4)
		for j := range dist[i] {
			dist[i][j] = int(math.Abs(float64(i - j)))
		}
	}
	bins := DecayByDistance(m, dist, 0)
	if len(bins) != 3 || bins[0].Distance != 1 || bins[0].Pairs != 3 {
		t.Fatalf("unexpected decay bins: %+v", bins)
	}
	if bins[0].MeanAbsCorr <= bins[2].MeanAbsCorr {
		t.Errorf("distance-1 bin (%v) not above distance-3 bin (%v) despite the planted pair",
			bins[0].MeanAbsCorr, bins[2].MeanAbsCorr)
	}
	capped := DecayByDistance(m, dist, 2)
	if len(capped) != 2 {
		t.Errorf("maxDist=2 kept %d bins, want 2", len(capped))
	}
}

func TestJointCountsOrderFree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := Estimate(genIndependent(rng, 4, 300, 0.4))
	a, b := m.JointCounts(1, 3), m.JointCounts(3, 1)
	// Swapping the pair transposes the table: n01 <-> n10.
	if a[0] != b[0] || a[3] != b[3] || a[1] != b[2] || a[2] != b[1] {
		t.Fatalf("JointCounts not transpose-consistent: %v vs %v", a, b)
	}
	total := a[0] + a[1] + a[2] + a[3]
	if total != m.Shots {
		t.Fatalf("joint counts sum to %d, want %d", total, m.Shots)
	}
}
