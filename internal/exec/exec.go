// Package exec is the concurrent twirl-averaged executor. It fans the
// twirl instances of a Job out across a worker pool — each instance is an
// independent compilation (its own derived RNG) and simulation (its own
// shot slice and sim seed) — and aggregates results in instance order, so
// the output is bit-identical for any worker count.
//
// The shot budget is distributed exactly: shots/instances per instance,
// with the remainder spread one-per-instance over the first instances, so
// no shots are silently dropped (the pre-redesign averaging loops lost
// shots % instances of the budget).
package exec

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"casq/internal/circuit"
	"casq/internal/device"
	"casq/internal/obs"
	"casq/internal/pass"
	"casq/internal/sim"
	"casq/internal/stab"
)

// Engine names accepted by RunOptions.Engine (and by the experiment,
// sweep, serve, and CLI layers that forward to it).
const (
	// EngineStatevector is the exact noisy statevector kernel
	// (internal/sim) — the default, limited to sim.MaxQubits.
	EngineStatevector = "statevector"
	// EngineStab is the stabilizer/Pauli-frame engine (internal/stab):
	// O(shots*gates*n) scaling for twirl-representable circuits under the
	// Pauli-twirling approximation.
	EngineStab = "stab"
	// EngineAuto dispatches per compiled instance: the stabilizer engine
	// when the circuit is twirl-representable and twirled, the
	// statevector kernel otherwise.
	EngineAuto = "auto"
)

// EngineNames lists the selectable engines ("" is accepted as
// EngineStatevector).
func EngineNames() []string { return []string{EngineStatevector, EngineStab, EngineAuto} }

// ValidEngine reports whether name is an accepted engine selector.
func ValidEngine(name string) bool {
	switch name {
	case "", EngineStatevector, EngineStab, EngineAuto:
		return true
	}
	return false
}

// resolveEngine picks the simulation backend for one compiled instance.
// It returns the engine and the resolved name recorded in the report.
func resolveEngine(dev *device.Device, cfg sim.Config, name string, c *circuit.Circuit) (sim.Engine, string, error) {
	statevector := func() (sim.Engine, string, error) {
		if c.NQubits > sim.MaxQubits {
			return nil, "", fmt.Errorf("exec: %d qubits exceed the statevector limit of %d — run with Engine %q (twirl-representable circuits only)",
				c.NQubits, sim.MaxQubits, EngineStab)
		}
		return sim.New(dev, cfg), EngineStatevector, nil
	}
	switch name {
	case "", EngineStatevector:
		return statevector()
	case EngineStab:
		if err := stab.Supports(c); err != nil {
			return nil, "", fmt.Errorf("exec: engine %q cannot represent the compiled circuit: %w", EngineStab, err)
		}
		return stab.New(dev, blockClamp(cfg)), EngineStab, nil
	case EngineAuto:
		supErr := stab.Supports(c)
		if supErr == nil && stab.HasTwirl(c) {
			return stab.New(dev, blockClamp(cfg)), EngineStab, nil
		}
		eng, resolved, err := statevector()
		if err != nil {
			// Don't advise "use stab" when auto just determined it can't:
			// say why the dispatch fell through instead.
			if supErr != nil {
				err = fmt.Errorf("exec: %d qubits exceed the statevector limit of %d and auto could not select %q: %w",
					c.NQubits, sim.MaxQubits, EngineStab, supErr)
			} else {
				err = fmt.Errorf("exec: %d qubits exceed the statevector limit of %d and auto could not select %q: circuit carries no twirl",
					c.NQubits, sim.MaxQubits, EngineStab)
			}
		}
		return eng, resolved, err
	}
	return nil, "", fmt.Errorf("exec: unknown engine %q (known: %v)", name, EngineNames())
}

// blockClamp hands a bit-plane engine its worker share in shot blocks:
// the stabilizer engine's shot loop claims 64-shot words, so workers
// beyond sim.ShotBlocks(shots) could never pick up a unit. Capping the
// request here returns the excess to the scheduler instead of parking
// idle goroutines on it. Results are worker-count independent, so the
// clamp cannot change the output.
func blockClamp(cfg sim.Config) sim.Config {
	if blocks := sim.ShotBlocks(cfg.Shots); cfg.Workers > blocks {
		cfg.Workers = blocks
	}
	return cfg
}

// RunOptions configure one twirl-averaged execution.
type RunOptions struct {
	// Instances is the number of twirl instances to average over (min 1).
	Instances int
	// Workers is the total parallelism budget of the job; 0 means
	// GOMAXPROCS. The budget is split between instance-level fan-out and
	// shot-level fan-out inside each simulator (see workerBudget): a
	// many-instance job parallelizes over instances with serial simulators,
	// while a single-instance job hands the whole budget to the
	// simulator's shot loop. An explicit Cfg.Workers overrides the
	// simulator share. Results are identical for any value.
	Workers int
	// Seed derives each instance's compilation RNG. Two runs with the
	// same seed produce identical results.
	Seed int64
	// Cfg is the simulator configuration. Cfg.Shots is the TOTAL shot
	// budget across all instances; Cfg.Seed seeds instance 0's simulation
	// (instance k uses Cfg.Seed + 101k).
	Cfg sim.Config
	// Engine selects the simulation backend: EngineStatevector (the
	// default, also ""), EngineStab, or EngineAuto. Auto dispatches per
	// instance to the stabilizer engine when the compiled circuit is
	// twirl-representable and twirled — the regime where the two engines
	// agree within sampling error — and to the statevector kernel
	// otherwise. The resolved engine is recorded in each instance Report.
	Engine string
	// Tracer records job/instance/pass/engine spans for this execution;
	// nil (the default) disables tracing at zero cost. Instance k's spans
	// render on lane k+1, and TraceID (when non-zero) stamps every span
	// so cross-process aggregation can group them.
	Tracer  *obs.Tracer
	TraceID uint64
}

// Job is one unit of executor work.
type Job struct {
	Circuit *circuit.Circuit
	// Observables, when non-empty, makes the executor estimate
	// expectation values; otherwise it collects measured bitstring
	// counts.
	Observables []sim.ObsSpec
	Opts        RunOptions
}

// Result aggregates a Job's instances.
type Result struct {
	// ExpVals are the shot-weighted means of the observables (expectation
	// jobs only).
	ExpVals []float64
	// Counts merges the measured bitstrings (counts jobs only).
	Counts map[string]int
	// Packed holds the job's outcomes as bit-planes — instance shot slices
	// concatenated in instance order — when every instance ran on a
	// bit-plane engine (counts jobs only; nil otherwise). Downstream
	// estimators can accumulate from these words (expval's *Packed
	// functions) instead of walking the Counts map.
	Packed *sim.PackedBits
	// Shots is the total number of shots executed — always the full
	// budget.
	Shots int
	// InstanceShots is each instance's share of the budget, in instance
	// order: shots/instances each, with the remainder spread one per
	// instance from the front.
	InstanceShots []int
	// Reports holds each instance's compilation report in instance order.
	Reports []pass.Report
}

// Executor runs jobs compiled through a pipeline on a device.
type Executor struct {
	Dev      *device.Device
	Pipeline pass.Pipeline
}

// New returns an executor for the device and pipeline.
func New(dev *device.Device, pl pass.Pipeline) *Executor {
	return &Executor{Dev: dev, Pipeline: pl}
}

// instanceOut is one instance's contribution, aggregated in index order.
type instanceOut struct {
	vals      []float64
	counts    map[string]int
	packed    sim.PackedBits
	hasPacked bool
	shots     int
	report    pass.Report
}

// splitmix64 is the SplitMix64 output function — used to derive
// well-separated per-instance compilation seeds from (Seed, k).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// InstanceSeed derives the compilation seed of instance k from the base
// seed. Exposed so tests can reproduce a single instance.
func InstanceSeed(seed int64, k int) int64 {
	return int64(splitmix64(uint64(seed) + uint64(k)*0x9e3779b97f4a7c15))
}

// workerBudget splits one parallelism budget between the two fan-out
// levels: `inst` instance workers run concurrently, and each runs its
// simulator with `sim` shot workers. The split covers the whole spectrum
// without oversubscription — instances >= budget gives serial simulators,
// a single instance gives full shot-level fan-out, and anything between
// divides the budget (inst * sim <= budget always). Before this model,
// Workers=0 multiplied GOMAXPROCS instance workers by GOMAXPROCS simulator
// workers, oversubscribing quadratically.
func workerBudget(requested, instances, gomax int) (inst, sim int) {
	budget := requested
	if budget <= 0 {
		budget = gomax
	}
	if budget < 1 {
		budget = 1
	}
	if instances < 1 {
		instances = 1
	}
	inst = budget
	if inst > instances {
		inst = instances
	}
	sim = budget / inst
	if sim < 1 {
		sim = 1
	}
	return inst, sim
}

// Run executes the job: Opts.Instances independent twirl instances, fanned
// out over the worker pool, aggregated in instance order. It honors ctx
// cancellation between instances.
func (e *Executor) Run(ctx context.Context, job Job) (Result, error) {
	if job.Circuit == nil {
		return Result{}, fmt.Errorf("exec: job has no circuit")
	}
	ro := job.Opts
	if !ValidEngine(ro.Engine) {
		return Result{}, fmt.Errorf("exec: unknown engine %q (known: %v)", ro.Engine, EngineNames())
	}
	if ro.Instances < 1 {
		ro.Instances = 1
	}
	shots := ro.Cfg.Shots
	if shots < ro.Instances {
		shots = ro.Instances
	}
	perInst, rem := shots/ro.Instances, shots%ro.Instances

	workers, simWorkers := workerBudget(ro.Workers, ro.Instances, runtime.GOMAXPROCS(0))

	mJobs.Inc()
	jobSpan := ro.Tracer.Start("exec.job").WithTrace(ro.TraceID)
	defer jobSpan.End()

	runInstance := func(k int) (instanceOut, error) {
		instStart := time.Now()
		instSpan := ro.Tracer.Start("exec.instance").WithLane(k + 1).WithTrace(ro.TraceID)
		defer func() {
			instSpan.End()
			mInstances.Inc()
			mInstanceSeconds.Observe(time.Since(instStart).Seconds())
		}()
		rng := rand.New(rand.NewSource(InstanceSeed(ro.Seed, k)))
		compiled, rep, err := e.Pipeline.ApplyContext(&pass.Context{
			Dev: e.Dev, Rng: rng, Engine: ro.Engine,
			Tracer: ro.Tracer, Lane: k + 1,
		}, job.Circuit)
		if err != nil {
			return instanceOut{}, fmt.Errorf("exec: instance %d: %w", k, err)
		}
		cfg := ro.Cfg
		if cfg.Workers <= 0 {
			// Hand each simulator its share of the unified budget. An
			// explicit Cfg.Workers is respected. Simulator results do not
			// depend on its worker count, so this cannot change the output.
			cfg.Workers = simWorkers
		}
		cfg.Shots = perInst
		if k < rem {
			cfg.Shots++
		}
		cfg.Seed = ro.Cfg.Seed + int64(k)*101
		cfg.Tracer, cfg.Lane = ro.Tracer, k+1
		r, engine, err := resolveEngine(e.Dev, cfg, ro.Engine, compiled)
		if err != nil {
			return instanceOut{}, fmt.Errorf("exec: instance %d: %w", k, err)
		}
		rep.Engine = engine
		out := instanceOut{shots: cfg.Shots, report: rep}
		if len(job.Observables) > 0 {
			out.vals, err = r.Expectations(compiled, job.Observables)
		} else if ps, ok := r.(sim.PackedSampler); ok {
			// Bit-plane engines hand back packed outcome words; they stay
			// packed until job-level aggregation.
			out.packed, err = ps.CountsPacked(compiled)
			if err == nil {
				out.hasPacked = true
				out.shots = out.packed.Shots
			}
		} else {
			var res sim.Result
			res, err = r.Counts(compiled)
			out.counts = res.Counts
			out.shots = res.Shots
		}
		if err != nil {
			return instanceOut{}, fmt.Errorf("exec: instance %d: %w", k, err)
		}
		return out, nil
	}

	outs := make([]instanceOut, ro.Instances)
	if workers == 1 {
		// Serial fast path: no goroutines, but still cancellable.
		for k := 0; k < ro.Instances; k++ {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
			var err error
			if outs[k], err = runInstance(k); err != nil {
				return Result{}, err
			}
		}
	} else {
		cctx, cancel := context.WithCancel(ctx)
		defer cancel()
		indices := make(chan int)
		var (
			wg       sync.WaitGroup
			errOnce  sync.Once
			firstErr error
		)
		fail := func(err error) {
			errOnce.Do(func() { firstErr = err })
			cancel()
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for k := range indices {
					// The feed select can hand out an index even after
					// cancellation; re-check here so no instance burns
					// CPU once the caller has given up.
					if cctx.Err() != nil {
						return
					}
					out, err := runInstance(k)
					if err != nil {
						fail(err)
						return
					}
					outs[k] = out
				}
			}()
		}
	feed:
		for k := 0; k < ro.Instances; k++ {
			select {
			case indices <- k:
			case <-cctx.Done():
				break feed
			}
		}
		close(indices)
		wg.Wait()
		if firstErr != nil {
			return Result{}, firstErr
		}
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
	}

	// Aggregate strictly in instance order so floating-point reduction is
	// independent of worker scheduling.
	res := Result{
		InstanceShots: make([]int, 0, ro.Instances),
		Reports:       make([]pass.Report, 0, ro.Instances),
	}
	if len(job.Observables) > 0 {
		res.ExpVals = make([]float64, len(job.Observables))
	} else {
		res.Counts = map[string]int{}
	}
	// Counts jobs where every instance ran on a bit-plane engine stay
	// packed through aggregation: instance planes are concatenated in
	// instance order and expanded to the bitstring map once, and the merged
	// planes are returned for downstream packed accumulation. A mixed job
	// (auto dispatch picking the statevector kernel for some instances)
	// falls back to per-instance expansion.
	allPacked := len(job.Observables) == 0
	for k := 0; allPacked && k < ro.Instances; k++ {
		if !outs[k].hasPacked || len(outs[k].packed.Planes) != len(outs[0].packed.Planes) {
			allPacked = false
		}
	}
	for k := 0; k < ro.Instances; k++ {
		o := outs[k]
		res.Shots += o.shots
		res.InstanceShots = append(res.InstanceShots, o.shots)
		res.Reports = append(res.Reports, o.report)
		for i, v := range o.vals {
			res.ExpVals[i] += v * float64(o.shots)
		}
		if o.hasPacked && !allPacked {
			o.packed.CountsInto(res.Counts)
		}
		for bits, n := range o.counts {
			res.Counts[bits] += n
		}
	}
	if allPacked {
		merged := outs[0].packed
		for k := 1; k < ro.Instances; k++ {
			merged = merged.Append(outs[k].packed)
		}
		res.Packed = &merged
		merged.CountsInto(res.Counts)
	}
	if len(job.Observables) > 0 && res.Shots > 0 {
		for i := range res.ExpVals {
			res.ExpVals[i] /= float64(res.Shots)
		}
	}
	mShots.Add(uint64(res.Shots))
	return res, nil
}

// Expectations is the expectation-value entry point: it runs the circuit's
// twirl instances and returns the shot-weighted mean of each observable.
func (e *Executor) Expectations(ctx context.Context, c *circuit.Circuit, obs []sim.ObsSpec, ro RunOptions) ([]float64, error) {
	if len(obs) == 0 {
		return nil, fmt.Errorf("exec: Expectations needs at least one observable")
	}
	res, err := e.Run(ctx, Job{Circuit: c, Observables: obs, Opts: ro})
	if err != nil {
		return nil, err
	}
	return res.ExpVals, nil
}

// Counts is the sampling entry point: it merges measured bitstring counts
// across the twirl instances, preserving the full shot budget.
func (e *Executor) Counts(ctx context.Context, c *circuit.Circuit, ro RunOptions) (sim.Result, error) {
	res, err := e.Run(ctx, Job{Circuit: c, Opts: ro})
	if err != nil {
		return sim.Result{}, err
	}
	return sim.Result{Counts: res.Counts, Shots: res.Shots}, nil
}
