package exec

import (
	"casq/internal/obs"
)

// Process-wide executor metrics on the obs default registry, exposed by
// `casq serve` on GET /metrics. Children are package vars so the job
// path pays only atomic adds.
var (
	mJobs = obs.Default().Counter("casq_exec_jobs_total",
		"Executor jobs run (one per figure point or sweep cell execution).")
	mInstances = obs.Default().Counter("casq_exec_instances_total",
		"Twirl instances compiled and simulated across all jobs.")
	mShots = obs.Default().Counter("casq_exec_shots_total",
		"Simulator shots executed across all jobs.")
	mInstanceSeconds = obs.Default().Histogram("casq_exec_instance_seconds",
		"Wall time of one twirl instance (compile + simulate).", nil)
)
