package exec

import (
	"context"
	"math/rand"
	"runtime"
	"testing"

	"casq/internal/circuit"
	"casq/internal/device"
	"casq/internal/models"
	"casq/internal/pass"
	"casq/internal/sim"
)

func testDevice() *device.Device {
	return device.NewLine("exec", 4, device.DefaultOptions())
}

func testConfig(shots int) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Shots = shots
	cfg.Workers = 1 // isolate executor-level parallelism
	return cfg
}

// TestExpectationsDeterministicAcrossWorkerCounts is the redesign's core
// guarantee: same seed => bit-identical results at any worker count.
func TestExpectationsDeterministicAcrossWorkerCounts(t *testing.T) {
	dev := testDevice()
	c := models.BuildFloquetIsing(4, 2)
	obs := []sim.ObsSpec{{0: 'X', 3: 'X'}, {1: 'Z'}}
	e := New(dev, pass.Combined())
	var ref []float64
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		ro := RunOptions{Instances: 7, Workers: workers, Seed: 19, Cfg: testConfig(90)}
		vals, err := e.Expectations(context.Background(), c, obs, ro)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = vals
			continue
		}
		for i := range vals {
			if vals[i] != ref[i] {
				t.Errorf("workers=%d: vals[%d] = %v, want %v (bit-identical)", workers, i, vals[i], ref[i])
			}
		}
	}
}

func TestCountsDeterministicAcrossWorkerCounts(t *testing.T) {
	dev := testDevice()
	c := circuit.New(4, 2)
	c.AddLayer(circuit.OneQubitLayer).H(0)
	c.AddLayer(circuit.TwoQubitLayer).CX(0, 1)
	c.AddLayer(circuit.MeasureLayer).Measure(0, 0).Measure(1, 1)
	e := New(dev, pass.Twirled())
	var ref map[string]int
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		ro := RunOptions{Instances: 5, Workers: workers, Seed: 3, Cfg: testConfig(77)}
		res, err := e.Counts(context.Background(), c, ro)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Shots != 77 {
			t.Errorf("workers=%d: merged shots %d, want 77", workers, res.Shots)
		}
		if ref == nil {
			ref = res.Counts
			continue
		}
		if len(res.Counts) != len(ref) {
			t.Fatalf("workers=%d: counts keys differ", workers)
		}
		for bits, n := range ref {
			if res.Counts[bits] != n {
				t.Errorf("workers=%d: counts[%q] = %d, want %d", workers, bits, res.Counts[bits], n)
			}
		}
	}
}

// TestShotBudgetFullyDistributed pins the remainder fix: the pre-redesign
// loops ran shots/instances per instance and silently dropped
// shots % instances.
func TestShotBudgetFullyDistributed(t *testing.T) {
	dev := testDevice()
	c := circuit.New(4, 1)
	c.AddLayer(circuit.OneQubitLayer).X(0)
	c.AddLayer(circuit.MeasureLayer).Measure(0, 0)
	e := New(dev, pass.Twirled())
	for _, tc := range []struct{ shots, instances int }{
		{10, 4},  // remainder 2
		{7, 3},   // remainder 1
		{5, 8},   // fewer shots than instances: budget grows to instances
		{96, 6},  // exact division
		{101, 8}, // remainder 5
	} {
		ro := RunOptions{Instances: tc.instances, Seed: 1, Cfg: testConfig(tc.shots)}
		res, err := e.Run(context.Background(), Job{Circuit: c, Opts: ro})
		if err != nil {
			t.Fatal(err)
		}
		want := tc.shots
		if want < tc.instances {
			want = tc.instances
		}
		if res.Shots != want {
			t.Errorf("shots=%d instances=%d: executed %d shots, want %d (none dropped)",
				tc.shots, tc.instances, res.Shots, want)
		}
		if len(res.Reports) != tc.instances {
			t.Errorf("shots=%d instances=%d: %d reports", tc.shots, tc.instances, len(res.Reports))
		}
	}
}

// TestInstanceShotsBalanced verifies the remainder spreads one-per-instance
// over the first instances rather than landing on one.
func TestInstanceShotsBalanced(t *testing.T) {
	dev := testDevice()
	c := circuit.New(4, 1)
	c.AddLayer(circuit.OneQubitLayer).X(0)
	c.AddLayer(circuit.MeasureLayer).Measure(0, 0)
	e := New(dev, pass.Bare())
	res, err := e.Run(context.Background(), Job{Circuit: c, Opts: RunOptions{
		Instances: 4, Seed: 1, Cfg: testConfig(10),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shots != 10 {
		t.Fatalf("total %d", res.Shots)
	}
	// 10 over 4 instances: 3,3,2,2 — the remainder must not land on one
	// instance.
	want := []int{3, 3, 2, 2}
	if len(res.InstanceShots) != len(want) {
		t.Fatalf("instance shots %v", res.InstanceShots)
	}
	for k, n := range want {
		if res.InstanceShots[k] != n {
			t.Errorf("instance %d ran %d shots, want %d (full split %v)", k, res.InstanceShots[k], n, res.InstanceShots)
		}
	}
	sum := 0
	for _, n := range res.Counts {
		sum += n
	}
	if sum != 10 {
		t.Errorf("counts sum %d, want 10", sum)
	}
}

func TestRunReportsPerInstance(t *testing.T) {
	dev := testDevice()
	c := models.BuildFloquetIsing(4, 2)
	e := New(dev, pass.Combined())
	res, err := e.Run(context.Background(), Job{
		Circuit:     c,
		Observables: []sim.ObsSpec{{0: 'X'}},
		Opts:        RunOptions{Instances: 3, Seed: 7, Cfg: testConfig(30)},
	})
	if err != nil {
		t.Fatal(err)
	}
	for k, rep := range res.Reports {
		if rep.Pipeline != "ca-ec+dd" {
			t.Errorf("instance %d: pipeline %q", k, rep.Pipeline)
		}
		if rep.DD.Total == 0 {
			t.Errorf("instance %d: no DD pulses", k)
		}
	}
}

// TestWorkerBudget pins the unified parallelism split: instance workers
// times per-instance sim workers never exceeds the budget, many instances
// get serial simulators, and a single instance hands the whole budget to
// shot-level fan-out (the pre-overhaul default multiplied GOMAXPROCS
// instance workers by GOMAXPROCS sim workers).
func TestWorkerBudget(t *testing.T) {
	for _, tc := range []struct {
		requested, instances, gomax int
		wantInst, wantSim           int
	}{
		{0, 12, 8, 8, 1},  // many instances: saturate with instances, serial sim
		{0, 1, 8, 1, 8},   // single job: full shot-level fan-out
		{0, 2, 8, 2, 4},   // split budget between levels
		{0, 3, 8, 3, 2},   // uneven split rounds down (3*2 <= 8)
		{1, 64, 32, 1, 1}, // explicit serial stays fully serial
		{4, 2, 32, 2, 2},  // explicit budget overrides GOMAXPROCS
		{0, 8, 1, 1, 1},   // single-core box
		{5, 0, 8, 1, 5},   // instances clamped to >= 1
	} {
		inst, sim := workerBudget(tc.requested, tc.instances, tc.gomax)
		if inst != tc.wantInst || sim != tc.wantSim {
			t.Errorf("workerBudget(%d, %d, %d) = (%d, %d), want (%d, %d)",
				tc.requested, tc.instances, tc.gomax, inst, sim, tc.wantInst, tc.wantSim)
		}
		budget := tc.requested
		if budget <= 0 {
			budget = tc.gomax
		}
		if inst*sim > budget {
			t.Errorf("workerBudget(%d, %d, %d): %d*%d oversubscribes budget %d",
				tc.requested, tc.instances, tc.gomax, inst, sim, budget)
		}
	}
}

func TestInstanceSeedsDiffer(t *testing.T) {
	seen := map[int64]bool{}
	for k := 0; k < 64; k++ {
		s := InstanceSeed(42, k)
		if seen[s] {
			t.Fatalf("instance seed collision at k=%d", k)
		}
		seen[s] = true
	}
	if InstanceSeed(1, 0) == InstanceSeed(2, 0) {
		t.Error("different base seeds map to the same instance seed")
	}
}

func TestCancellation(t *testing.T) {
	dev := testDevice()
	c := models.BuildFloquetIsing(4, 4)
	e := New(dev, pass.Combined())
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: Run must not do the work
	for _, workers := range []int{1, 4} {
		_, err := e.Run(ctx, Job{
			Circuit:     c,
			Observables: []sim.ObsSpec{{0: 'X'}},
			Opts:        RunOptions{Instances: 8, Workers: workers, Seed: 1, Cfg: testConfig(64)},
		})
		if err != context.Canceled {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

func TestRunValidation(t *testing.T) {
	e := New(testDevice(), pass.Bare())
	if _, err := e.Run(context.Background(), Job{}); err == nil {
		t.Error("nil circuit accepted")
	}
	if _, err := e.Expectations(context.Background(), circuit.New(4, 0), nil, RunOptions{}); err == nil {
		t.Error("empty observables accepted")
	}
}

// TestMatchesSerialReference cross-checks the parallel executor against a
// hand-rolled serial loop using the same per-instance seeds and shot
// split.
func TestMatchesSerialReference(t *testing.T) {
	dev := testDevice()
	c := models.BuildFloquetIsing(4, 2)
	obs := []sim.ObsSpec{{0: 'X', 3: 'X'}}
	pl := pass.CAEC()
	const instances, shots, seed = 5, 52, 13

	// Reference: sequential, no executor.
	perInst, rem := shots/instances, shots%instances
	var sum float64
	total := 0
	for k := 0; k < instances; k++ {
		rng := rand.New(rand.NewSource(InstanceSeed(seed, k)))
		compiled, _, err := pl.Apply(dev, rng, c)
		if err != nil {
			t.Fatal(err)
		}
		cfg := testConfig(perInst)
		if k < rem {
			cfg.Shots++
		}
		cfg.Seed = testConfig(0).Seed + int64(k)*101
		vals, err := sim.New(dev, cfg).Expectations(compiled, obs)
		if err != nil {
			t.Fatal(err)
		}
		sum += vals[0] * float64(cfg.Shots)
		total += cfg.Shots
	}
	want := sum / float64(total)

	e := New(dev, pl)
	got, err := e.Expectations(context.Background(), c, obs, RunOptions{
		Instances: instances, Workers: 4, Seed: seed, Cfg: testConfig(shots),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != want {
		t.Errorf("executor %v, serial reference %v", got[0], want)
	}
}

// TestCountsPackedAggregation pins the packed-counts aggregation contract:
// a counts job whose instances all run on the bit-plane stabilizer engine
// returns the merged outcome planes — instance shot slices concatenated in
// instance order, covering the full budget — and the bitstring map is
// exactly their expansion. A statevector job returns no planes.
func TestCountsPackedAggregation(t *testing.T) {
	dev := testDevice()
	c := circuit.New(4, 2)
	c.AddLayer(circuit.OneQubitLayer).H(0)
	c.AddLayer(circuit.TwoQubitLayer).CX(0, 1)
	c.AddLayer(circuit.MeasureLayer).Measure(0, 0).Measure(1, 1)
	e := New(dev, pass.Twirled())
	// 150 shots over 3 instances = 50 each, so the instance-order merge
	// exercises the non-word-aligned concatenation offsets.
	ro := RunOptions{Instances: 3, Seed: 5, Cfg: testConfig(150), Engine: EngineStab}
	res, err := e.Run(context.Background(), Job{Circuit: c, Opts: ro})
	if err != nil {
		t.Fatal(err)
	}
	if res.Packed == nil {
		t.Fatal("stab counts job returned no packed planes")
	}
	if res.Packed.Shots != res.Shots || res.Shots != 150 {
		t.Fatalf("packed shots %d, merged shots %d, want 150", res.Packed.Shots, res.Shots)
	}
	if len(res.Packed.Planes) != 2 {
		t.Fatalf("%d planes, want 2", len(res.Packed.Planes))
	}
	expanded := res.Packed.Counts()
	if len(expanded.Counts) != len(res.Counts) {
		t.Fatalf("plane expansion %v differs from merged counts %v", expanded.Counts, res.Counts)
	}
	for bits, n := range res.Counts {
		if expanded.Counts[bits] != n {
			t.Errorf("counts[%q] = %d, plane expansion has %d", bits, n, expanded.Counts[bits])
		}
	}
	ro.Engine = EngineStatevector
	res, err = e.Run(context.Background(), Job{Circuit: c, Opts: ro})
	if err != nil {
		t.Fatal(err)
	}
	if res.Packed != nil {
		t.Error("statevector counts job returned packed planes")
	}
}
