package surrogate

import (
	"math"
	"math/rand"
	"testing"
)

// linearSamples draws n samples from a known linear function plus optional
// noise, with feature scales deliberately spanning orders of magnitude so
// the test exercises standardization.
func linearSamples(rng *rand.Rand, n int, noise float64) ([]Sample, Features, float64) {
	truth := Features{2e-5, 1e-5, 3e-4, 8e-4, 0.02, 0.005, 0.15}
	const bias = 0.3
	out := make([]Sample, n)
	for i := range out {
		var x Features
		x[FeatInternalZZ] = rng.Float64() * 400e3
		x[FeatBoundaryZZ] = rng.Float64() * 600e3
		x[FeatInvT1] = 3e3 + rng.Float64()*4e3
		x[FeatInvT2] = 4e3 + rng.Float64()*6e3
		x[FeatNNN] = float64(rng.Intn(4))
		x[FeatDiameter] = float64(2 + rng.Intn(8))
		x[FeatSwapEst] = float64(rng.Intn(6))
		y := bias
		for j := 0; j < NumFeatures; j++ {
			y += truth[j] * x[j]
		}
		y += noise * rng.NormFloat64()
		out[i] = Sample{X: x, Y: y}
	}
	return out, truth, bias
}

// TestFitRecoversLinearFunction pins that a noiseless linear labelling is
// recovered to high accuracy despite wildly different feature scales: the
// whole point of the surrogate is to rank candidates whose score is nearly
// linear in these features.
func TestFitRecoversLinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	samples, _, _ := linearSamples(rng, 64, 0)
	m, err := Fit(samples, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	probe, _, _ := linearSamples(rand.New(rand.NewSource(2)), 32, 0)
	for _, s := range probe {
		got := m.Predict(s.X)
		if rel := math.Abs(got-s.Y) / math.Abs(s.Y); rel > 1e-4 {
			t.Fatalf("prediction %.6g for label %.6g (rel err %.2g)", got, s.Y, rel)
		}
	}
	if m.RMSE > 1e-6 {
		t.Errorf("noiseless fit RMSE %.3g, want ~0", m.RMSE)
	}
}

// TestFitRanksUnderNoise checks the pruning contract under label noise:
// exact recovery is impossible, but the model must still rank a clearly
// better candidate below a clearly worse one.
func TestFitRanksUnderNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	samples, truth, bias := linearSamples(rng, 48, 0.05)
	m, err := Fit(samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	lo := Features{10e3, 20e3, 3.2e3, 4.5e3, 0, 2, 0}
	hi := Features{380e3, 550e3, 6.8e3, 9.5e3, 3, 9, 5}
	yOf := func(x Features) float64 {
		y := bias
		for j := 0; j < NumFeatures; j++ {
			y += truth[j] * x[j]
		}
		return y
	}
	if yOf(lo) >= yOf(hi) {
		t.Fatal("fixture broken: lo should be the better candidate")
	}
	if m.Predict(lo) >= m.Predict(hi) {
		t.Errorf("model ranks lo (%.4f) above hi (%.4f)", m.Predict(lo), m.Predict(hi))
	}
}

// TestFitDeterministic pins bit-identical refits: the layout search refits
// the model inside every Choose call and its decisions must not drift
// between runs or worker counts.
func TestFitDeterministic(t *testing.T) {
	samples, _, _ := linearSamples(rand.New(rand.NewSource(5)), 24, 0.02)
	a, err := Fit(samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(append([]Sample(nil), samples...), 0)
	if err != nil {
		t.Fatal(err)
	}
	probe, _, _ := linearSamples(rand.New(rand.NewSource(6)), 16, 0)
	for _, s := range probe {
		pa, pb := a.Predict(s.X), b.Predict(s.X)
		if pa != pb {
			t.Fatalf("non-deterministic refit: %v vs %v", pa, pb)
		}
	}
	if a.RMSE != b.RMSE {
		t.Fatalf("non-deterministic RMSE: %v vs %v", a.RMSE, b.RMSE)
	}
}

// TestFitDegenerateFeatures checks constant features do not blow up the
// solve: their standardized column is zero and the ridge keeps the system
// nonsingular.
func TestFitDegenerateFeatures(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	samples, _, _ := linearSamples(rng, 32, 0)
	for i := range samples {
		samples[i].X[FeatNNN] = 2 // constant across the fit set
		samples[i].X[FeatSwapEst] = 0
	}
	m, err := Fit(samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := m.Predict(samples[0].X)
	if math.IsNaN(p) || math.IsInf(p, 0) {
		t.Fatalf("degenerate features produced %v", p)
	}
	w := m.Weights()
	for _, j := range []int{FeatNNN, FeatSwapEst} {
		if w[j] != 0 {
			t.Errorf("constant feature %s got nonzero raw weight %v", FeatureNames[j], w[j])
		}
	}
}

// TestFitRejectsTinySets pins the MinSamples floor.
func TestFitRejectsTinySets(t *testing.T) {
	samples, _, _ := linearSamples(rand.New(rand.NewSource(8)), MinSamples-1, 0)
	if _, err := Fit(samples, 0); err == nil {
		t.Fatal("fit below MinSamples must error")
	}
	if _, err := Fit(nil, 0); err == nil {
		t.Fatal("empty fit must error")
	}
}
