// Package surrogate fits a cheap deterministic noise-prediction model over
// layout candidates: a ridge regression from static per-candidate features
// (region ZZ sums, coherence rates, collision counts, routing estimates) to
// the exact toggling-frame predicted error, in the spirit of learned noise
// predictors (Zlokapa & Gheorghiu). The layout search labels a small batch
// of candidates with the exact scorer, fits the model online, and uses its
// predictions to prune the remaining candidates 10-100x before any further
// exact scoring — the model never replaces the exact score of the chosen
// placement, it only decides which candidates deserve one.
//
// Everything is bit-deterministic: the fit solves the ridge normal
// equations by Gaussian elimination with partial pivoting in fixed feature
// order, so identical samples produce identical weights on every run and
// at any worker count.
package surrogate

import (
	"fmt"
	"math"
)

// NumFeatures is the fixed width of a candidate feature vector.
const NumFeatures = 7

// Feature indices of a candidate vector, in canonical order.
const (
	FeatInternalZZ = iota // sum of ZZ rates internal to the region (Hz)
	FeatBoundaryZZ        // sum of ZZ rates crossing the region boundary (Hz)
	FeatInvT1             // sum over members of 1e9/T1 (Hz)
	FeatInvT2             // sum over members of 1e9/T2 (Hz)
	FeatNNN               // count of NNN collision edges inside the region
	FeatDiameter          // region diameter in coupling-graph hops
	FeatSwapEst           // estimated routing SWAPs (sum of interaction distances - 1)
)

// FeatureNames labels the canonical feature order for reports.
var FeatureNames = [NumFeatures]string{
	"internal_zz", "boundary_zz", "inv_t1", "inv_t2", "nnn", "diameter", "swap_est",
}

// Features is one candidate's feature vector.
type Features [NumFeatures]float64

// Sample is one exact-labelled training point: the feature vector of a
// candidate and the exact predicted error the full scorer assigned it.
type Sample struct {
	X Features
	Y float64
}

// Model is a fitted ridge regression over standardized features. The zero
// value is not usable; obtain one from Fit.
type Model struct {
	mean  Features // per-feature mean of the fit set
	scale Features // per-feature std-dev (1 where degenerate)
	w     Features // weights in standardized space
	bias  float64  // mean label

	// Lambda is the ridge penalty the model was fitted with.
	Lambda float64
	// N is the number of training samples.
	N int
	// RMSE is the in-sample root-mean-square residual of the fit — the
	// honest noise floor a pruning tolerance must respect.
	RMSE float64
}

// MinSamples is the smallest fit set Fit accepts: one more than the
// feature count, so the ridge system is at least minimally constrained.
const MinSamples = NumFeatures + 1

// DefaultLambda is the standard ridge penalty (features are standardized,
// so it is scale-free).
const DefaultLambda = 1e-2

// Fit trains a ridge regression on the samples: features are standardized
// (zero mean, unit variance per feature over the fit set), the label mean
// becomes the intercept, and the weights solve
//
//	(X'X + lambda*N*I) w = X'y
//
// by Gaussian elimination with partial pivoting. lambda <= 0 takes
// DefaultLambda. Fitting fewer than MinSamples samples is an error.
func Fit(samples []Sample, lambda float64) (*Model, error) {
	n := len(samples)
	if n < MinSamples {
		return nil, fmt.Errorf("surrogate: %d samples, need at least %d", n, MinSamples)
	}
	if lambda <= 0 {
		lambda = DefaultLambda
	}
	m := &Model{Lambda: lambda, N: n}

	// Standardize: per-feature mean and std-dev over the fit set.
	for _, s := range samples {
		for j := 0; j < NumFeatures; j++ {
			m.mean[j] += s.X[j]
		}
		m.bias += s.Y
	}
	for j := 0; j < NumFeatures; j++ {
		m.mean[j] /= float64(n)
	}
	m.bias /= float64(n)
	for _, s := range samples {
		for j := 0; j < NumFeatures; j++ {
			d := s.X[j] - m.mean[j]
			m.scale[j] += d * d
		}
	}
	for j := 0; j < NumFeatures; j++ {
		m.scale[j] = math.Sqrt(m.scale[j] / float64(n))
		if m.scale[j] == 0 {
			m.scale[j] = 1 // constant feature: standardizes to 0, weight inert
		}
	}

	// Normal equations over standardized features and centered labels.
	var ata [NumFeatures][NumFeatures]float64
	var aty Features
	for _, s := range samples {
		var z Features
		for j := 0; j < NumFeatures; j++ {
			z[j] = (s.X[j] - m.mean[j]) / m.scale[j]
		}
		yc := s.Y - m.bias
		for j := 0; j < NumFeatures; j++ {
			aty[j] += z[j] * yc
			for k := j; k < NumFeatures; k++ {
				ata[j][k] += z[j] * z[k]
			}
		}
	}
	ridge := lambda * float64(n)
	for j := 0; j < NumFeatures; j++ {
		for k := 0; k < j; k++ {
			ata[j][k] = ata[k][j]
		}
		ata[j][j] += ridge
	}
	w, err := solve(ata, aty)
	if err != nil {
		return nil, err
	}
	m.w = w

	var sse float64
	for _, s := range samples {
		r := m.Predict(s.X) - s.Y
		sse += r * r
	}
	m.RMSE = math.Sqrt(sse / float64(n))
	return m, nil
}

// Predict returns the model's error estimate for one feature vector.
func (m *Model) Predict(x Features) float64 {
	y := m.bias
	for j := 0; j < NumFeatures; j++ {
		y += m.w[j] * (x[j] - m.mean[j]) / m.scale[j]
	}
	return y
}

// Weights returns the fitted weights mapped back to raw feature units
// (dy per unit of feature j), for reports.
func (m *Model) Weights() Features {
	var out Features
	for j := 0; j < NumFeatures; j++ {
		out[j] = m.w[j] / m.scale[j]
	}
	return out
}

// solve runs Gaussian elimination with partial pivoting on the fixed-size
// ridge system. The pivot choice is deterministic (largest magnitude,
// lowest index on ties), so identical inputs give bit-identical solutions.
func solve(a [NumFeatures][NumFeatures]float64, b Features) (Features, error) {
	const d = NumFeatures
	for col := 0; col < d; col++ {
		piv := col
		for r := col + 1; r < d; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if a[piv][col] == 0 {
			return Features{}, fmt.Errorf("surrogate: singular ridge system at column %d", col)
		}
		if piv != col {
			a[piv], a[col] = a[col], a[piv]
			b[piv], b[col] = b[col], b[piv]
		}
		inv := 1 / a[col][col]
		for r := col + 1; r < d; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			a[r][col] = 0
			for k := col + 1; k < d; k++ {
				a[r][k] -= f * a[col][k]
			}
			b[r] -= f * b[col]
		}
	}
	var x Features
	for r := d - 1; r >= 0; r-- {
		s := b[r]
		for k := r + 1; k < d; k++ {
			s -= a[r][k] * x[k]
		}
		x[r] = s / a[r][r]
	}
	return x, nil
}
