package toggling

import (
	"math"
	"sort"
	"testing"

	"casq/internal/circuit"
	"casq/internal/device"
	"casq/internal/gates"
)

// scheduleFixture builds a small scheduled workload with every feature the
// scorer must model: ECR internal echoes and rotary targets, DD and twirl
// pulses, an RZZ frame-restoring echo, bare idles, and a measure layer.
func scheduleFixture(t *testing.T) (*device.Device, *circuit.Circuit) {
	t.Helper()
	opts := device.DefaultOptions()
	opts.Seed = 21
	dev := device.NewLine("score6", 6, opts)
	c := circuit.New(6, 1)
	l0 := c.AddLayer(circuit.OneQubitLayer)
	l0.H(0)
	l0.SX(3)
	l0.Duration = dev.Dur1Q
	l1 := c.AddLayer(circuit.TwoQubitLayer)
	l1.ECR(0, 1)
	l1.ECR(4, 5)
	l1.Duration = dev.DurECR
	l2 := c.AddLayer(circuit.TwoQubitLayer)
	l2.RZZ(2, 3, 0.3)
	l2.Duration = dev.DurECR
	l3 := c.AddLayer(circuit.OneQubitLayer)
	l3.Add(circuit.Instruction{Gate: gates.Delay, Qubits: []int{0}, Params: []float64{800}})
	l3.Add(circuit.Instruction{Gate: gates.XDD, Qubits: []int{1}, Time: 200, Tag: "dd"})
	l3.Add(circuit.Instruction{Gate: gates.XDD, Qubits: []int{1}, Time: 600, Tag: "dd"})
	l3.Add(circuit.Instruction{Gate: gates.XGate, Qubits: []int{2}, Time: 400, Tag: "twirl"})
	l3.Duration = 800
	l4 := c.AddLayer(circuit.MeasureLayer)
	l4.Measure(0, 0)
	l4.Duration = dev.DurMeas
	return dev, c
}

// referenceScore is the pre-scorer exact score: BuildLayerModel + Integrate
// per layer, magnitudes summed in sorted key order — the map-based path the
// compensation passes still use.
func referenceScore(dev *device.Device, c *circuit.Circuit) float64 {
	tot := 0.0
	for i := range c.Layers {
		m := BuildLayerModel(&c.Layers[i], dev)
		r := Integrate(m, dev, true)
		qs := make([]int, 0, len(r.PhiZ))
		for q := range r.PhiZ {
			qs = append(qs, q)
		}
		sort.Ints(qs)
		for _, q := range qs {
			tot += math.Abs(r.PhiZ[q])
		}
		es := make([]device.Edge, 0, len(r.PhiZZ))
		for e := range r.PhiZZ {
			es = append(es, e)
		}
		sort.Slice(es, func(i, j int) bool {
			if es[i].A != es[j].A {
				return es[i].A < es[j].A
			}
			return es[i].B < es[j].B
		})
		for _, e := range es {
			tot += math.Abs(r.PhiZZ[e])
		}
	}
	return tot
}

// TestScorerMatchesIntegrate pins the scorer against the map-based
// Integrate path on the full fixture: identical angles, only the float
// summation order may differ (tolerance scales with the total).
func TestScorerMatchesIntegrate(t *testing.T) {
	dev, c := scheduleFixture(t)
	want := referenceScore(dev, c)
	s := NewScorer(dev)
	got := s.ScoreCircuit(c)
	if want == 0 {
		t.Fatal("fixture produces a zero score; broken fixture")
	}
	if rel := math.Abs(got-want) / want; rel > 1e-12 {
		t.Fatalf("scorer %.15g vs integrate %.15g (rel %.2g)", got, want, rel)
	}
}

// TestScorerRepeatBitIdentical pins that repeated scoring through the same
// scratch is bit-identical — the layout argmin depends on it.
func TestScorerRepeatBitIdentical(t *testing.T) {
	dev, c := scheduleFixture(t)
	s := NewScorer(dev)
	first := s.ScoreCircuit(c)
	for i := 0; i < 10; i++ {
		if got := s.ScoreCircuit(c); got != first {
			t.Fatalf("iteration %d: %v != %v", i, got, first)
		}
	}
	if fresh := NewScorer(dev).ScoreCircuit(c); fresh != first {
		t.Fatalf("fresh scorer %v != reused %v", fresh, first)
	}
}

// TestScorerZeroAlloc pins the scoring inner loop at zero steady-state
// allocations: Choose exact-scores dozens of candidates per call on a
// worker pool and the per-layer map churn was the compile-time hot path.
func TestScorerZeroAlloc(t *testing.T) {
	dev, c := scheduleFixture(t)
	s := NewScorer(dev)
	s.ScoreCircuit(c) // warm the scratch buffers
	avg := testing.AllocsPerRun(100, func() {
		s.ScoreCircuit(c)
	})
	if avg != 0 {
		t.Fatalf("scoring inner loop allocates %.1f times per circuit, want 0", avg)
	}
}

// TestScorerZeroDurationLayer pins the Duration<=0 guard of Integrate.
func TestScorerZeroDurationLayer(t *testing.T) {
	dev, _ := scheduleFixture(t)
	c := circuit.New(6, 0)
	l := c.AddLayer(circuit.TwoQubitLayer)
	l.ECR(0, 1) // never scheduled: Duration stays 0
	if got := NewScorer(dev).ScoreCircuit(c); got != 0 {
		t.Fatalf("unscheduled layer scored %v, want 0", got)
	}
}
