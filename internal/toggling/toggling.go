// Package toggling computes the coherent Z/ZZ error angles that survive a
// circuit layer given its pulse schedule — the toggling-frame integrals that
// both the CA-EC pass (to know what to compensate) and the tests (to predict
// the simulator's exact coherent evolution) rely on.
//
// For a layer spanning [0, T], each qubit carries a sign function s_q(t)
// that flips at every pi pulse on q (DD pulses, twirl X/Y Paulis, and the
// internal echo of an ECR control at T/2). Using the suffix convention
// (s_q(t) = parity of the pulses in (t, T]), the error unitary that acts
// after the layer's ideal gates is
//
//	E = Rzz(phiZZ) * prod_q Rz(phiZ_q),
//	phiZZ(a,b) =  omega_ab * Int s_a s_b dt,
//	phiZ(q)    = -sum_b omega_qb * Int s_q dt  (+ Stark and other Z terms),
//
// matching the idle-pair Hamiltonian H11 = nu/2 (ZZ - ZI - IZ) of paper
// Eq. 1. Terms involving a rotary-echoed ECR target are suppressed to zero
// (the compiler's ideal model; the simulator keeps a small configurable
// residual).
package toggling

import (
	"math"
	"sort"

	"casq/internal/circuit"
	"casq/internal/device"
	"casq/internal/gates"
)

// QubitSchedule is the pulse activity of one qubit within a layer.
type QubitSchedule struct {
	Pulses []float64 // pulse times relative to layer start, sorted
	Rotary bool      // qubit is the target of an ECR (rotary echo active)
	Active bool      // qubit participates in a gate this layer
}

// LayerModel is the context of one layer as seen by the toggling
// calculation.
type LayerModel struct {
	Duration  float64
	Sched     map[int]*QubitSchedule
	GatePairs map[device.Edge]bool // intra-gate edges, calibrated away
	Driven    map[int]bool         // qubits whose drive Stark-shifts neighbors
}

// BuildLayerModel extracts the pulse/context model from a scheduled layer.
// Two-qubit gates contribute an internal echo pulse on their first operand
// (the control) at mid-layer and a rotary flag on their second operand (the
// target); DD pulses contribute at their recorded offsets. Conditional gates
// are ignored (their execution is data-dependent; CA-EC handles measurement
// layers separately).
func BuildLayerModel(l *circuit.Layer, dev *device.Device) *LayerModel {
	m := &LayerModel{
		Duration:  l.Duration,
		Sched:     map[int]*QubitSchedule{},
		GatePairs: map[device.Edge]bool{},
		Driven:    map[int]bool{},
	}
	get := func(q int) *QubitSchedule {
		if s, ok := m.Sched[q]; ok {
			return s
		}
		s := &QubitSchedule{}
		m.Sched[q] = s
		return s
	}
	for _, in := range l.Instrs {
		if in.Cond != nil {
			continue
		}
		switch {
		case gates.NumQubits(in.Gate) == 2:
			c, t := in.Qubits[0], in.Qubits[1]
			sc, st := get(c), get(t)
			sc.Active, st.Active = true, true
			sc.Pulses = append(sc.Pulses, l.Duration/2) // internal echo
			if in.Gate == gates.RZZ {
				// Pulse-stretched RZZ uses a frame-restoring X2 echo.
				sc.Pulses = append(sc.Pulses, l.Duration)
			}
			st.Rotary = true
			m.GatePairs[device.NewEdge(c, t)] = true
			m.Driven[c] = true
			m.Driven[t] = true
		case in.Gate == gates.XGate || in.Gate == gates.YGate || in.Gate == gates.XDD:
			s := get(in.Qubits[0])
			s.Pulses = append(s.Pulses, in.Time)
			if in.Tag != "dd" && in.Tag != "twirl" {
				s.Active = true
			}
		case in.Gate == gates.Delay || in.Gate == gates.Barrier:
			// no effect
		default:
			// Other 1q gates break the frame; mark active so the pass does
			// not treat the qubit as decoupled idle.
			if len(in.Qubits) == 1 {
				get(in.Qubits[0]).Active = true
			}
		}
	}
	for _, s := range m.Sched {
		sort.Float64s(s.Pulses)
	}
	return m
}

// signIntegral returns Int_0^T s(t) dt for the suffix-convention sign
// function of the given pulse times.
func signIntegral(pulses []float64, T float64) float64 {
	// Prefix integral first, then convert: s_suffix = s_prefix * parity(all).
	integral := 0.0
	sign := 1.0
	prev := 0.0
	for _, p := range pulses {
		integral += sign * (p - prev)
		sign = -sign
		prev = p
	}
	integral += sign * (T - prev)
	parity := 1.0
	if len(pulses)%2 == 1 {
		parity = -1
	}
	return integral * parity
}

// pairIntegral returns Int_0^T s_a(t) s_b(t) dt (the suffix parities cancel
// pairwise only when both have even pulse counts; the product of suffix
// signs equals the product of prefix signs times both parities).
func pairIntegral(pa, pb []float64, T float64) float64 {
	times := make([]float64, 0, len(pa)+len(pb)+2)
	times = append(times, pa...)
	times = append(times, pb...)
	sort.Float64s(times)
	sa, sb := 1.0, 1.0
	ia, ib := 0, 0
	integral := 0.0
	prev := 0.0
	for _, t := range times {
		integral += sa * sb * (t - prev)
		prev = t
		// Advance whichever schedule pulsed at t (both may).
		for ia < len(pa) && pa[ia] == t {
			sa = -sa
			ia++
		}
		for ib < len(pb) && pb[ib] == t {
			sb = -sb
			ib++
		}
	}
	integral += sa * sb * (T - prev)
	parity := 1.0
	if (len(pa)+len(pb))%2 == 1 {
		parity = -1
	}
	return integral * parity
}

// Result holds the surviving coherent error angles after the layer.
type Result struct {
	PhiZ  map[int]float64         // Rz(theta) error per qubit
	PhiZZ map[device.Edge]float64 // Rzz(theta) error per edge
}

// Integrate computes the surviving error angles of a layer for the device's
// calibrated crosstalk (ZZ and, when includeStark is set, Stark shifts).
// Rates are read in Hz and converted to angular frequencies; durations are
// in ns.
func Integrate(m *LayerModel, dev *device.Device, includeStark bool) Result {
	return IntegrateFiltered(m, dev, includeStark, nil)
}

// IntegrateFiltered is Integrate with an optional edge filter: crosstalk
// edges for which skip returns true contribute nothing (used by CA-EC to
// exclude edges whose effect is handled by measurement-conditioned
// corrections).
func IntegrateFiltered(m *LayerModel, dev *device.Device, includeStark bool, skip func(device.Edge) bool) Result {
	res := Result{PhiZ: map[int]float64{}, PhiZZ: map[device.Edge]float64{}}
	if m.Duration <= 0 {
		return res
	}
	T := m.Duration
	pulsesOf := func(q int) ([]float64, bool, bool) {
		if s, ok := m.Sched[q]; ok {
			return s.Pulses, s.Rotary, s.Active
		}
		return nil, false, false
	}
	const nsToS = 1e-9
	for _, e := range dev.AllCrosstalkEdges() {
		if m.GatePairs[e] || (skip != nil && skip(e)) {
			continue
		}
		w := 2 * math.Pi * dev.ZZ[e] * nsToS
		if w == 0 {
			continue
		}
		pa, rotA, _ := pulsesOf(e.A)
		pb, rotB, _ := pulsesOf(e.B)
		if !rotA && !rotB {
			if zz := w * pairIntegral(pa, pb, T); zz != 0 {
				res.PhiZZ[e] += zz
			}
		}
		if !rotA {
			res.PhiZ[e.A] -= w * signIntegral(pa, T)
		}
		if !rotB {
			res.PhiZ[e.B] -= w * signIntegral(pb, T)
		}
	}
	if includeStark {
		for src := range m.Driven {
			for _, nb := range dev.Neighbors(src) {
				pn, rotN, activeN := pulsesOf(nb)
				if activeN || rotN {
					continue
				}
				w := 2 * math.Pi * dev.Stark[device.Directed{Src: src, Dst: nb}] * nsToS
				if w == 0 {
					continue
				}
				res.PhiZ[nb] += w * signIntegral(pn, T)
			}
		}
	}
	// Drop numerically negligible entries so the EC pass does not chase
	// noise-floor angles.
	const eps = 1e-12
	for q, v := range res.PhiZ {
		if math.Abs(v) < eps {
			delete(res.PhiZ, q)
		}
	}
	for e, v := range res.PhiZZ {
		if math.Abs(v) < eps {
			delete(res.PhiZZ, e)
		}
	}
	return res
}
