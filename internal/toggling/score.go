package toggling

import (
	"math"

	"casq/internal/circuit"
	"casq/internal/device"
	"casq/internal/gates"
)

// Scorer computes the layout stage's exact predicted-error score — the sum
// of |phiZ| and |phiZZ| toggling-frame angles over every layer — with
// reusable per-device scratch instead of the per-layer map allocation of
// Integrate. The layout search exact-scores dozens of candidates per
// Choose call on a worker pool, so the steady-state inner loop here is
// allocation-free (pinned by TestScorerZeroAlloc) and every accumulation
// runs in a fixed canonical order (edges in the cached crosstalk order,
// Stark sources by ascending qubit), making the score bit-deterministic
// across runs and worker counts.
//
// Scorer and IntegrateFiltered share signIntegral/pairIntegral, so the
// angles agree with the compensation passes' view of the same schedule;
// only the accumulation container (slices vs maps) and the float summation
// order differ.
type Scorer struct {
	dev   *device.Device
	edges []device.Edge // crosstalk edges with nonzero ZZ, canonical order
	wZZ   []float64     // 2*pi*ZZ*1e-9 per cached edge
	eIdx  map[device.Edge]int

	stark [][]starkTerm // per source qubit, targets sorted ascending

	// Per-layer scratch, reset between layers.
	sched    []qubitScratch
	touched  []int  // qubits with layer state to reset
	gateMask []bool // per cached edge: intra-gate this layer
	gateHit  []int  // cached edge indices to reset
	phiZ     []float64
	times    []float64 // pairIntegral merge buffer
}

type starkTerm struct {
	dst int
	w   float64 // 2*pi*Stark*1e-9
}

// qubitScratch mirrors QubitSchedule with a reusable pulse buffer plus the
// driven flag the Stark loop needs.
type qubitScratch struct {
	pulses  []float64
	rotary  bool
	active  bool
	driven  bool
	touched bool
}

// NewScorer builds a scorer bound to one device, caching the crosstalk
// edge tables and Stark adjacency so repeated ScoreCircuit calls allocate
// nothing.
func NewScorer(dev *device.Device) *Scorer {
	s := &Scorer{
		dev:      dev,
		eIdx:     map[device.Edge]int{},
		sched:    make([]qubitScratch, dev.NQubits),
		gateMask: nil,
		phiZ:     make([]float64, dev.NQubits),
		stark:    make([][]starkTerm, dev.NQubits),
	}
	const nsToS = 1e-9
	for _, e := range dev.AllCrosstalkEdges() {
		w := 2 * math.Pi * dev.ZZ[e] * nsToS
		if w == 0 {
			continue
		}
		s.eIdx[e] = len(s.edges)
		s.edges = append(s.edges, e)
		s.wZZ = append(s.wZZ, w)
	}
	s.gateMask = make([]bool, len(s.edges))
	for src := 0; src < dev.NQubits; src++ {
		for _, dst := range dev.Neighbors(src) { // sorted ascending
			w := 2 * math.Pi * dev.Stark[device.Directed{Src: src, Dst: dst}] * nsToS
			if w != 0 {
				s.stark[src] = append(s.stark[src], starkTerm{dst, w})
			}
		}
	}
	return s
}

// ScoreCircuit returns the total predicted coherent error (radians) of a
// scheduled circuit on the scorer's device: per layer, the magnitudes of
// every surviving phiZ and phiZZ angle above the Integrate noise floor,
// Stark included.
func (s *Scorer) ScoreCircuit(c *circuit.Circuit) float64 {
	tot := 0.0
	for i := range c.Layers {
		tot += s.scoreLayer(&c.Layers[i])
	}
	return tot
}

// scoreLayer builds the layer's pulse model into the scratch and
// integrates it. It mirrors BuildLayerModel + IntegrateFiltered(includeStark)
// exactly, minus the map containers.
func (s *Scorer) scoreLayer(l *circuit.Layer) float64 {
	s.reset()
	for ii := range l.Instrs {
		in := &l.Instrs[ii]
		if in.Cond != nil {
			continue
		}
		switch {
		case gates.NumQubits(in.Gate) == 2:
			c, t := in.Qubits[0], in.Qubits[1]
			sc, st := s.touch(c), s.touch(t)
			sc.active, st.active = true, true
			sc.pulses = append(sc.pulses, l.Duration/2) // internal echo
			if in.Gate == gates.RZZ {
				sc.pulses = append(sc.pulses, l.Duration)
			}
			st.rotary = true
			sc.driven, st.driven = true, true
			if idx, ok := s.eIdx[device.NewEdge(c, t)]; ok {
				if !s.gateMask[idx] {
					s.gateMask[idx] = true
					s.gateHit = append(s.gateHit, idx)
				}
			}
		case in.Gate == gates.XGate || in.Gate == gates.YGate || in.Gate == gates.XDD:
			q := s.touch(in.Qubits[0])
			q.pulses = append(q.pulses, in.Time)
			if in.Tag != "dd" && in.Tag != "twirl" {
				q.active = true
			}
		case in.Gate == gates.Delay || in.Gate == gates.Barrier:
			// no effect
		default:
			if len(in.Qubits) == 1 {
				s.touch(in.Qubits[0]).active = true
			}
		}
	}
	for _, q := range s.touched {
		sortFloats(s.sched[q].pulses)
	}

	if l.Duration <= 0 {
		return 0
	}
	T := l.Duration
	const eps = 1e-12
	tot := 0.0
	for i, e := range s.edges {
		if s.gateMask[i] {
			continue
		}
		w := s.wZZ[i]
		a, b := &s.sched[e.A], &s.sched[e.B]
		if !a.rotary && !b.rotary {
			if zz := w * s.pairIntegral(a.pulses, b.pulses, T); math.Abs(zz) >= eps {
				tot += math.Abs(zz)
			}
		}
		if !a.rotary {
			s.phiZ[e.A] -= w * signIntegral(a.pulses, T)
		}
		if !b.rotary {
			s.phiZ[e.B] -= w * signIntegral(b.pulses, T)
		}
	}
	// Stark shifts from driven qubits onto idle neighbors, sources in
	// ascending order (Integrate walks its Driven map; the scorer's fixed
	// order is what makes the layout argmin bit-stable).
	for src := 0; src < len(s.sched); src++ {
		if !s.sched[src].driven {
			continue
		}
		for _, st := range s.stark[src] {
			nb := &s.sched[st.dst]
			if nb.active || nb.rotary {
				continue
			}
			s.phiZ[st.dst] += st.w * signIntegral(nb.pulses, T)
		}
	}
	for q := 0; q < len(s.phiZ); q++ {
		if v := s.phiZ[q]; math.Abs(v) >= eps {
			tot += math.Abs(v)
		}
	}
	return tot
}

// touch returns the scratch of q, marking it for reset.
func (s *Scorer) touch(q int) *qubitScratch {
	qs := &s.sched[q]
	if !qs.touched {
		qs.touched = true
		s.touched = append(s.touched, q)
	}
	return qs
}

// reset clears the previous layer's scratch without releasing buffers.
func (s *Scorer) reset() {
	for _, q := range s.touched {
		qs := &s.sched[q]
		qs.pulses = qs.pulses[:0]
		qs.rotary, qs.active, qs.driven, qs.touched = false, false, false, false
	}
	s.touched = s.touched[:0]
	for _, i := range s.gateHit {
		s.gateMask[i] = false
	}
	s.gateHit = s.gateHit[:0]
	for i := range s.phiZ {
		s.phiZ[i] = 0
	}
}

// pairIntegral is the package pairIntegral over a reused merge buffer.
func (s *Scorer) pairIntegral(pa, pb []float64, T float64) float64 {
	s.times = s.times[:0]
	s.times = append(s.times, pa...)
	s.times = append(s.times, pb...)
	sortFloats(s.times)
	sa, sb := 1.0, 1.0
	ia, ib := 0, 0
	integral := 0.0
	prev := 0.0
	for _, t := range s.times {
		integral += sa * sb * (t - prev)
		prev = t
		for ia < len(pa) && pa[ia] == t {
			sa = -sa
			ia++
		}
		for ib < len(pb) && pb[ib] == t {
			sb = -sb
			ib++
		}
	}
	integral += sa * sb * (T - prev)
	if (len(pa)+len(pb))%2 == 1 {
		return -integral
	}
	return integral
}

// sortFloats is an allocation-free insertion sort: pulse lists are tiny
// (a handful of DD/echo pulses), where it beats the generic sort anyway.
func sortFloats(x []float64) {
	for i := 1; i < len(x); i++ {
		v := x[i]
		j := i - 1
		for j >= 0 && x[j] > v {
			x[j+1] = x[j]
			j--
		}
		x[j+1] = v
	}
}
