package toggling

import (
	"math"
	"testing"

	"casq/internal/circuit"
	"casq/internal/device"
	"casq/internal/gates"
	"casq/internal/sched"
)

func quietDev(n int) *device.Device {
	o := device.DefaultOptions()
	o.DeltaMax, o.QuasistaticSigma = 0, 0
	return device.NewLine("tog", n, o)
}

func scheduled(c *circuit.Circuit, d *device.Device) *circuit.Circuit {
	sched.Schedule(c, d)
	return c
}

func TestIdlePairFullAccumulation(t *testing.T) {
	d := quietDev(2)
	c := circuit.New(2, 0)
	l := c.AddLayer(circuit.TwoQubitLayer)
	l.Add(circuit.Instruction{Gate: gates.Delay, Qubits: []int{0}, Params: []float64{500}})
	l.Add(circuit.Instruction{Gate: gates.Delay, Qubits: []int{1}, Params: []float64{500}})
	scheduled(c, d)

	m := BuildLayerModel(&c.Layers[0], d)
	res := Integrate(m, d, false)
	w := 2 * math.Pi * d.ZZRate(0, 1) * 500e-9
	e := device.NewEdge(0, 1)
	if math.Abs(res.PhiZZ[e]-w) > 1e-12 {
		t.Errorf("PhiZZ = %v, want %v", res.PhiZZ[e], w)
	}
	if math.Abs(res.PhiZ[0]+w) > 1e-12 || math.Abs(res.PhiZ[1]+w) > 1e-12 {
		t.Errorf("PhiZ = %v, want %v each", res.PhiZ, -w)
	}
}

func TestECREchoCancelsControlTerms(t *testing.T) {
	d := quietDev(3)
	c := circuit.New(3, 0)
	c.AddLayer(circuit.TwoQubitLayer).ECR(1, 2) // control 1, spectator 0
	scheduled(c, d)

	m := BuildLayerModel(&c.Layers[0], d)
	res := Integrate(m, d, false)
	// ZZ(0,1) echoed away; spectator keeps its Z; control's Z echoed.
	if v := res.PhiZZ[device.NewEdge(0, 1)]; math.Abs(v) > 1e-12 {
		t.Errorf("ctrl-spectator ZZ should be echoed: %v", v)
	}
	if v := res.PhiZ[1]; math.Abs(v) > 1e-12 {
		t.Errorf("control Z should be echoed: %v", v)
	}
	w := 2 * math.Pi * d.ZZRate(0, 1) * d.DurECR * 1e-9
	if v := res.PhiZ[0]; math.Abs(v+w) > 1e-12 {
		t.Errorf("spectator Z = %v, want %v", v, -w)
	}
}

func TestRotarySuppressesTargetTerms(t *testing.T) {
	d := quietDev(3)
	c := circuit.New(3, 0)
	c.AddLayer(circuit.TwoQubitLayer).ECR(2, 1) // target 1, spectator 0
	scheduled(c, d)
	m := BuildLayerModel(&c.Layers[0], d)
	res := Integrate(m, d, false)
	if v := res.PhiZZ[device.NewEdge(0, 1)]; math.Abs(v) > 1e-12 {
		t.Errorf("target-spectator ZZ should be rotary-suppressed: %v", v)
	}
	// Spectator 0 keeps its own -Z term from the (0,1) coupling.
	w := 2 * math.Pi * d.ZZRate(0, 1) * d.DurECR * 1e-9
	if v := res.PhiZ[0]; math.Abs(v+w) > 1e-12 {
		t.Errorf("target spectator Z = %v, want %v", v, -w)
	}
}

func TestControlControlZZSurvives(t *testing.T) {
	o := device.DefaultOptions()
	edges := []device.Directed{{Src: 1, Dst: 0}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}}
	d := device.NewSynthetic("cc", 4, edges, nil, o)
	c := circuit.New(4, 0)
	l := c.AddLayer(circuit.TwoQubitLayer)
	l.ECR(1, 0)
	l.ECR(2, 3)
	scheduled(c, d)
	m := BuildLayerModel(&c.Layers[0], d)
	res := Integrate(m, d, false)
	w := 2 * math.Pi * d.ZZRate(1, 2) * d.DurECR * 1e-9
	if v := res.PhiZZ[device.NewEdge(1, 2)]; math.Abs(v-w) > 1e-12 {
		t.Errorf("ctrl-ctrl ZZ should survive in full: %v, want %v", v, w)
	}
}

func TestStaggeredPulsesCancelEverything(t *testing.T) {
	d := quietDev(2)
	c := circuit.New(2, 0)
	l := c.AddLayer(circuit.TwoQubitLayer)
	T := 1000.0
	l.Add(circuit.Instruction{Gate: gates.Delay, Qubits: []int{0}, Params: []float64{T}})
	l.Add(circuit.Instruction{Gate: gates.Delay, Qubits: []int{1}, Params: []float64{T}})
	// Staggered X2: qubit 0 at T/2, T; qubit 1 at T/4, 3T/4.
	l.Add(circuit.Instruction{Gate: gates.XDD, Qubits: []int{0}, Tag: "dd", Time: T / 2})
	l.Add(circuit.Instruction{Gate: gates.XDD, Qubits: []int{0}, Tag: "dd", Time: T})
	l.Add(circuit.Instruction{Gate: gates.XDD, Qubits: []int{1}, Tag: "dd", Time: T / 4})
	l.Add(circuit.Instruction{Gate: gates.XDD, Qubits: []int{1}, Tag: "dd", Time: 3 * T / 4})
	scheduled(c, d)
	m := BuildLayerModel(&c.Layers[0], d)
	res := Integrate(m, d, true)
	if len(res.PhiZ) != 0 || len(res.PhiZZ) != 0 {
		t.Errorf("staggered X2 should cancel everything: %+v", res)
	}
}

func TestAlignedPulsesLeaveZZ(t *testing.T) {
	d := quietDev(2)
	c := circuit.New(2, 0)
	l := c.AddLayer(circuit.TwoQubitLayer)
	T := 1000.0
	for _, q := range []int{0, 1} {
		l.Add(circuit.Instruction{Gate: gates.Delay, Qubits: []int{q}, Params: []float64{T}})
		l.Add(circuit.Instruction{Gate: gates.XDD, Qubits: []int{q}, Tag: "dd", Time: T / 2})
		l.Add(circuit.Instruction{Gate: gates.XDD, Qubits: []int{q}, Tag: "dd", Time: T})
	}
	scheduled(c, d)
	res := Integrate(BuildLayerModel(&c.Layers[0], d), d, false)
	if len(res.PhiZ) != 0 {
		t.Errorf("aligned X2 should cancel single-qubit Z: %+v", res.PhiZ)
	}
	w := 2 * math.Pi * d.ZZRate(0, 1) * T * 1e-9
	if v := res.PhiZZ[device.NewEdge(0, 1)]; math.Abs(v-w) > 1e-12 {
		t.Errorf("aligned X2 must leave the ZZ term: %v, want %v", v, w)
	}
}

func TestStarkOnSpectator(t *testing.T) {
	d := quietDev(3)
	c := circuit.New(3, 0)
	c.AddLayer(circuit.TwoQubitLayer).ECR(1, 2)
	scheduled(c, d)
	m := BuildLayerModel(&c.Layers[0], d)
	withStark := Integrate(m, d, true)
	noStark := Integrate(m, d, false)
	ws := 2 * math.Pi * d.Stark[device.Directed{Src: 1, Dst: 0}] * d.DurECR * 1e-9
	diff := withStark.PhiZ[0] - noStark.PhiZ[0]
	if math.Abs(diff-ws) > 1e-12 {
		t.Errorf("Stark contribution %v, want %v", diff, ws)
	}
}

func TestRZZFrameRestoringEcho(t *testing.T) {
	d := quietDev(3)
	c := circuit.New(3, 0)
	c.AddLayer(circuit.TwoQubitLayer).RZZ(1, 2, 0.4)
	scheduled(c, d)
	m := BuildLayerModel(&c.Layers[0], d)
	// The RZZ control (qubit 1) carries a frame-restoring X2 echo.
	if n := len(m.Sched[1].Pulses); n != 2 {
		t.Errorf("RZZ control should have 2 echo pulses, got %d", n)
	}
	res := Integrate(m, d, false)
	// Spectator 0's ZZ with the echoed control cancels.
	if v := res.PhiZZ[device.NewEdge(0, 1)]; math.Abs(v) > 1e-12 {
		t.Errorf("spectator ZZ should cancel under X2 echo: %v", v)
	}
}

func TestIntegrateFiltered(t *testing.T) {
	d := quietDev(2)
	c := circuit.New(2, 0)
	l := c.AddLayer(circuit.TwoQubitLayer)
	l.Add(circuit.Instruction{Gate: gates.Delay, Qubits: []int{0}, Params: []float64{500}})
	l.Add(circuit.Instruction{Gate: gates.Delay, Qubits: []int{1}, Params: []float64{500}})
	scheduled(c, d)
	m := BuildLayerModel(&c.Layers[0], d)
	res := IntegrateFiltered(m, d, false, func(e device.Edge) bool { return true })
	if len(res.PhiZ) != 0 || len(res.PhiZZ) != 0 {
		t.Errorf("filter should remove all edges: %+v", res)
	}
}

func TestZeroDurationLayer(t *testing.T) {
	d := quietDev(2)
	l := &circuit.Layer{Kind: circuit.TwirlLayer}
	l.X(0)
	m := BuildLayerModel(l, d)
	res := Integrate(m, d, true)
	if len(res.PhiZ) != 0 || len(res.PhiZZ) != 0 {
		t.Error("zero-duration layers must contribute nothing")
	}
}
