// Package pauli implements the single- and multi-qubit Pauli algebra used by
// Pauli twirling and by the CA-EC compensation pass: products with phase
// tracking, (anti)commutation tests, and conjugation tables through Clifford
// gates built numerically from their matrices.
package pauli

import (
	"fmt"
	"math/cmplx"

	"casq/internal/linalg"
)

// Pauli labels a single-qubit Pauli operator.
type Pauli byte

// The four single-qubit Paulis.
const (
	I Pauli = iota
	X
	Y
	Z
)

var names = [4]string{"I", "X", "Y", "Z"}

// String returns "I", "X", "Y", or "Z".
func (p Pauli) String() string {
	if p > Z {
		return fmt.Sprintf("Pauli(%d)", byte(p))
	}
	return names[p]
}

// Parse converts a single-character Pauli label.
func Parse(c byte) (Pauli, error) {
	switch c {
	case 'I', 'i':
		return I, nil
	case 'X', 'x':
		return X, nil
	case 'Y', 'y':
		return Y, nil
	case 'Z', 'z':
		return Z, nil
	}
	return I, fmt.Errorf("pauli: invalid label %q", c)
}

// Matrix returns the 2x2 matrix of p.
func (p Pauli) Matrix() linalg.Matrix {
	switch p {
	case I:
		return linalg.FromRows([][]complex128{{1, 0}, {0, 1}})
	case X:
		return linalg.FromRows([][]complex128{{0, 1}, {1, 0}})
	case Y:
		return linalg.FromRows([][]complex128{{0, -1i}, {1i, 0}})
	case Z:
		return linalg.FromRows([][]complex128{{1, 0}, {0, -1}})
	}
	panic("pauli: invalid Pauli")
}

// Commutes reports whether p and q commute (true unless both are non-identity
// and different).
func (p Pauli) Commutes(q Pauli) bool {
	return p == I || q == I || p == q
}

// mulTable[p][q] gives (phase exponent k, result r) with p*q = i^k r.
var mulTable = [4][4]struct {
	phase int // exponent of i
	res   Pauli
}{
	I: {I: {0, I}, X: {0, X}, Y: {0, Y}, Z: {0, Z}},
	X: {I: {0, X}, X: {0, I}, Y: {1, Z}, Z: {3, Y}},
	Y: {I: {0, Y}, X: {3, Z}, Y: {0, I}, Z: {1, X}},
	Z: {I: {0, Z}, X: {1, Y}, Y: {3, X}, Z: {0, I}},
}

// Mul returns p*q as (i^phase, result).
func Mul(p, q Pauli) (phase int, r Pauli) {
	e := mulTable[p][q]
	return e.phase, e.res
}

// HasX reports whether p flips Z eigenstates (p is X or Y). Such Paulis act
// as pi pulses for phase-type noise and toggle the dynamical-decoupling
// frame.
func (p Pauli) HasX() bool { return p == X || p == Y }

// HasZ reports whether p contains a Z component (p is Z or Y).
func (p Pauli) HasZ() bool { return p == Z || p == Y }

// String is a multi-qubit Pauli operator with a phase i^Phase; Ops[k] acts on
// qubit k.
type String struct {
	Ops   []Pauli
	Phase int // exponent of i, modulo 4
}

// NewString builds an identity Pauli string on n qubits.
func NewString(n int) String {
	return String{Ops: make([]Pauli, n)}
}

// ParseString parses labels like "XIZ" with Ops[0] being the leftmost
// character (acting on qubit 0).
func ParseString(s string) (String, error) {
	ps := NewString(len(s))
	for i := 0; i < len(s); i++ {
		p, err := Parse(s[i])
		if err != nil {
			return String{}, err
		}
		ps.Ops[i] = p
	}
	return ps, nil
}

// String renders the operator, including a phase prefix when nontrivial.
func (s String) String() string {
	pre := [4]string{"", "i", "-", "-i"}[((s.Phase%4)+4)%4]
	out := pre
	for _, p := range s.Ops {
		out += p.String()
	}
	return out
}

// Weight returns the number of non-identity factors.
func (s String) Weight() int {
	w := 0
	for _, p := range s.Ops {
		if p != I {
			w++
		}
	}
	return w
}

// Commutes reports whether two Pauli strings commute: they commute iff the
// number of positions where the factors anticommute is even.
func (s String) Commutes(t String) bool {
	if len(s.Ops) != len(t.Ops) {
		panic("pauli: length mismatch in Commutes")
	}
	anti := 0
	for i := range s.Ops {
		if !s.Ops[i].Commutes(t.Ops[i]) {
			anti++
		}
	}
	return anti%2 == 0
}

// MulStrings returns s*t with phase tracking.
func MulStrings(s, t String) String {
	if len(s.Ops) != len(t.Ops) {
		panic("pauli: length mismatch in MulStrings")
	}
	r := NewString(len(s.Ops))
	r.Phase = (s.Phase + t.Phase) % 4
	for i := range s.Ops {
		ph, p := Mul(s.Ops[i], t.Ops[i])
		r.Phase = (r.Phase + ph) % 4
		r.Ops[i] = p
	}
	return r
}

// Matrix returns the full 2^n x 2^n matrix of s with qubit 0 as the
// least-significant tensor factor (matching linalg.Vector convention).
func (s String) Matrix() linalg.Matrix {
	m := linalg.Identity(1)
	for i := len(s.Ops) - 1; i >= 0; i-- {
		m = linalg.Kron(m, s.Ops[i].Matrix())
	}
	ph := [4]complex128{1, 1i, -1, -1i}[((s.Phase%4)+4)%4]
	return linalg.Scale(ph, m)
}

// Pair is an ordered pair of single-qubit Paulis acting on (q0, q1) of a
// two-qubit gate.
type Pair struct {
	P0, P1 Pauli
}

// Conjugation records G (P0 x P1) G^dagger = sign * (Q0 x Q1) for a Clifford
// two-qubit gate G. Sign is +1 or -1.
type Conjugation struct {
	Out  Pair
	Sign int
}

// CliffordTable maps input Pauli pairs to their conjugations through a fixed
// two-qubit Clifford gate.
type CliffordTable struct {
	table [16]Conjugation
}

func pairIndex(p Pair) int { return int(p.P0)*4 + int(p.P1) }

// NewCliffordTable builds the conjugation table for the 4x4 Clifford unitary
// g, whose basis convention is |first operand, second operand> with the
// first operand as the high bit (matching gates.Matrix2Q). P0 of a Pair acts
// on the first operand. It returns an error if g does not map every Pauli
// pair to +/- another Pauli pair, i.e. if g is not Clifford (up to phase).
func NewCliffordTable(g linalg.Matrix) (*CliffordTable, error) {
	if g.N != 4 {
		return nil, fmt.Errorf("pauli: Clifford table needs a 4x4 matrix, got %dx%d", g.N, g.N)
	}
	gd := linalg.Dagger(g)
	var t CliffordTable
	for p0 := I; p0 <= Z; p0++ {
		for p1 := I; p1 <= Z; p1++ {
			in := linalg.Kron(p0.Matrix(), p1.Matrix()) // first operand = high bit
			conj := linalg.MulChain(g, in, gd)
			found := false
			for q0 := I; q0 <= Z && !found; q0++ {
				for q1 := I; q1 <= Z && !found; q1++ {
					cand := linalg.Kron(q0.Matrix(), q1.Matrix())
					for _, sign := range []int{1, -1} {
						scaled := linalg.Scale(complex(float64(sign), 0), cand)
						if linalg.ApproxEqual(conj, scaled, 1e-9) {
							t.table[pairIndex(Pair{p0, p1})] = Conjugation{Pair{q0, q1}, sign}
							found = true
							break
						}
					}
				}
			}
			if !found {
				return nil, fmt.Errorf("pauli: matrix is not Clifford: no Pauli image for %v%v", p0, p1)
			}
		}
	}
	return &t, nil
}

// Conjugate returns the image of pair p under the table's gate.
func (t *CliffordTable) Conjugate(p Pair) Conjugation {
	return t.table[pairIndex(p)]
}

// Conjugation1 records G P G^dagger = sign * Q for a one-qubit Clifford
// gate G. Sign is +1 or -1.
type Conjugation1 struct {
	Out  Pauli
	Sign int
}

// Clifford1Q maps single-qubit Paulis through conjugation by a fixed
// one-qubit Clifford gate. It is the 1q analogue of CliffordTable and is
// what the stabilizer tableau and the Pauli-frame sampler use to push
// frames through SX/H/S-type layers.
type Clifford1Q struct {
	table [4]Conjugation1
}

// NewClifford1Q builds the conjugation table for the 2x2 Clifford unitary
// g. It returns an error if g does not map every Pauli to +/- a Pauli,
// i.e. if g is not Clifford (up to phase).
func NewClifford1Q(g linalg.Matrix) (*Clifford1Q, error) {
	if g.N != 2 {
		return nil, fmt.Errorf("pauli: 1q Clifford table needs a 2x2 matrix, got %dx%d", g.N, g.N)
	}
	gd := linalg.Dagger(g)
	var t Clifford1Q
	for p := I; p <= Z; p++ {
		conj := linalg.MulChain(g, p.Matrix(), gd)
		found := false
		for q := I; q <= Z && !found; q++ {
			for _, sign := range []int{1, -1} {
				scaled := linalg.Scale(complex(float64(sign), 0), q.Matrix())
				if linalg.ApproxEqual(conj, scaled, 1e-9) {
					t.table[p] = Conjugation1{q, sign}
					found = true
					break
				}
			}
		}
		if !found {
			return nil, fmt.Errorf("pauli: matrix is not Clifford: no Pauli image for %v", p)
		}
	}
	return &t, nil
}

// Conjugate returns the image of p under the table's gate.
func (t *Clifford1Q) Conjugate(p Pauli) Conjugation1 {
	return t.table[p]
}

// InvertFor returns the pair (Q0, Q1) such that applying (P0 x P1) before the
// gate and (Q0 x Q1) after it leaves the gate's action unchanged up to the
// returned sign: (Q0 x Q1) G (P0 x P1) = sign * G. This is the relation a
// Pauli twirl needs.
func (t *CliffordTable) InvertFor(p Pair) (Pair, int) {
	// G P = (G P G^dagger) G = sign * (Q' ) G, so the after-gate correction is
	// the inverse of the conjugated Pauli; Paulis are self-inverse so the
	// correction is the conjugated pair itself and the sign carries over.
	c := t.Conjugate(p)
	return c.Out, c.Sign
}

// ExpectationOnState computes <v| s |v> for a statevector v.
func (s String) ExpectationOnState(v linalg.Vector) float64 {
	// Apply s to a copy and take the inner product.
	w := v.Copy()
	for q, p := range s.Ops {
		if p == I {
			continue
		}
		w.Apply1Q(p.Matrix(), q)
	}
	ph := [4]complex128{1, 1i, -1, -1i}[((s.Phase%4)+4)%4]
	ip := linalg.Inner(v, w)
	return real(ph * ip)
}

// RandomSupported returns a uniformly random Pauli (possibly I) per qubit in
// support, using the provided random source via the next() function which
// must return uniform values in [0, 4).
func RandomSupported(n int, support []int, next func() int) String {
	s := NewString(n)
	for _, q := range support {
		s.Ops[q] = Pauli(next())
	}
	return s
}

// PhaseComplex converts a phase exponent to the complex unit i^k.
func PhaseComplex(k int) complex128 {
	switch ((k % 4) + 4) % 4 {
	case 0:
		return 1
	case 1:
		return 1i
	case 2:
		return -1
	default:
		return -1i
	}
}

// CheckUnitaryPauli verifies numerically that m equals i^k * (Pauli string)
// for some k, returning the string. Useful in tests.
func CheckUnitaryPauli(m linalg.Matrix, n int) (String, bool) {
	idx := make([]Pauli, n)
	for {
		s := String{Ops: append([]Pauli(nil), idx...)}
		sm := s.Matrix()
		for k := 0; k < 4; k++ {
			if linalg.ApproxEqual(m, linalg.Scale(PhaseComplex(k), sm), 1e-9) {
				s.Phase = k
				return s, true
			}
		}
		// Increment the mixed-radix counter.
		i := 0
		for ; i < n; i++ {
			if idx[i] < Z {
				idx[i]++
				break
			}
			idx[i] = I
		}
		if i == n {
			return String{}, false
		}
	}
}

// AbsCmplx is a convenience wrapper (exported for tests of numerical code).
func AbsCmplx(c complex128) float64 { return cmplx.Abs(c) }
