package pauli

import (
	"testing"
	"testing/quick"

	"casq/internal/gates"
	"casq/internal/linalg"
)

func TestMulTableMatchesMatrices(t *testing.T) {
	for p := I; p <= Z; p++ {
		for q := I; q <= Z; q++ {
			ph, r := Mul(p, q)
			got := linalg.Mul(p.Matrix(), q.Matrix())
			want := linalg.Scale(PhaseComplex(ph), r.Matrix())
			if !linalg.ApproxEqual(got, want, 1e-12) {
				t.Errorf("%v*%v != i^%d %v", p, q, ph, r)
			}
		}
	}
}

func TestCommutes(t *testing.T) {
	cases := []struct {
		p, q Pauli
		want bool
	}{
		{I, X, true}, {X, X, true}, {X, Y, false}, {Y, Z, false}, {Z, Z, true}, {Z, I, true},
	}
	for _, c := range cases {
		if c.p.Commutes(c.q) != c.want {
			t.Errorf("Commutes(%v,%v) != %v", c.p, c.q, c.want)
		}
	}
}

func TestStringCommutes(t *testing.T) {
	xx, _ := ParseString("XX")
	zz, _ := ParseString("ZZ")
	zi, _ := ParseString("ZI")
	if !xx.Commutes(zz) {
		t.Error("XX and ZZ should commute (two anticommuting sites)")
	}
	if xx.Commutes(zi) {
		t.Error("XX and ZI should anticommute")
	}
}

func TestMulStringsMatchesMatrices(t *testing.T) {
	a, _ := ParseString("XYZ")
	b, _ := ParseString("ZZX")
	prod := MulStrings(a, b)
	got := prod.Matrix()
	want := linalg.Mul(a.Matrix(), b.Matrix())
	if !linalg.ApproxEqual(got, want, 1e-9) {
		t.Error("string product does not match matrix product")
	}
}

func TestWeight(t *testing.T) {
	s, _ := ParseString("IXIZ")
	if s.Weight() != 2 {
		t.Errorf("weight = %d", s.Weight())
	}
}

func TestCliffordTableCNOT(t *testing.T) {
	tab, err := NewCliffordTable(gates.Matrix2Q(gates.CX))
	if err != nil {
		t.Fatal(err)
	}
	// Known CNOT conjugations (control = first operand): XI -> XX, IX -> IX,
	// ZI -> ZI, IZ -> ZZ.
	cases := []struct {
		in, out Pair
		sign    int
	}{
		{Pair{X, I}, Pair{X, X}, 1},
		{Pair{I, X}, Pair{I, X}, 1},
		{Pair{Z, I}, Pair{Z, I}, 1},
		{Pair{I, Z}, Pair{Z, Z}, 1},
		{Pair{Y, I}, Pair{Y, X}, 1},
		{Pair{I, Y}, Pair{Z, Y}, 1},
	}
	for _, c := range cases {
		got := tab.Conjugate(c.in)
		if got.Out != c.out || got.Sign != c.sign {
			t.Errorf("CNOT conj %v%v -> %v%v sign %d, want %v%v sign %d",
				c.in.P0, c.in.P1, got.Out.P0, got.Out.P1, got.Sign, c.out.P0, c.out.P1, c.sign)
		}
	}
}

func TestCliffordTableECRValid(t *testing.T) {
	tab, err := NewCliffordTable(gates.Matrix2Q(gates.ECR))
	if err != nil {
		t.Fatalf("ECR must be Clifford: %v", err)
	}
	// Verify every entry numerically: G (P0 x P1) G^dag = sign (Q0 x Q1).
	g := gates.Matrix2Q(gates.ECR)
	gd := linalg.Dagger(g)
	for p0 := I; p0 <= Z; p0++ {
		for p1 := I; p1 <= Z; p1++ {
			c := tab.Conjugate(Pair{p0, p1})
			in := linalg.Kron(p0.Matrix(), p1.Matrix())
			lhs := linalg.MulChain(g, in, gd)
			rhs := linalg.Scale(complex(float64(c.Sign), 0),
				linalg.Kron(c.Out.P0.Matrix(), c.Out.P1.Matrix()))
			if !linalg.ApproxEqual(lhs, rhs, 1e-9) {
				t.Errorf("ECR table wrong for %v%v", p0, p1)
			}
		}
	}
}

func TestInvertForTwirlIdentity(t *testing.T) {
	// (Q0 x Q1) G (P0 x P1) must equal +/- G for every pair — the twirl
	// invariance relation.
	for _, kind := range []gates.Kind{gates.CX, gates.ECR} {
		g := gates.Matrix2Q(kind)
		tab, err := NewCliffordTable(g)
		if err != nil {
			t.Fatal(err)
		}
		for p0 := I; p0 <= Z; p0++ {
			for p1 := I; p1 <= Z; p1++ {
				q, sign := tab.InvertFor(Pair{p0, p1})
				pre := linalg.Kron(p0.Matrix(), p1.Matrix())
				post := linalg.Kron(q.P0.Matrix(), q.P1.Matrix())
				lhs := linalg.MulChain(post, g, pre)
				rhs := linalg.Scale(complex(float64(sign), 0), g)
				if !linalg.ApproxEqual(lhs, rhs, 1e-9) {
					t.Errorf("%s twirl identity fails for %v%v", kind, p0, p1)
				}
			}
		}
	}
}

func TestNonCliffordRejected(t *testing.T) {
	if _, err := NewCliffordTable(gates.Matrix2Q(gates.Ucan, 0.3, 0.2, 0.1)); err == nil {
		t.Error("generic Ucan should not produce a Clifford table")
	}
}

func TestExpectationOnState(t *testing.T) {
	// <+|X|+> = 1, <0|Z|0> = 1, <0|X|0> = 0.
	v := linalg.NewVector(2)
	v.Apply1Q(gates.Matrix1Q(gates.H), 0)
	x0, _ := ParseString("XI")
	z1, _ := ParseString("IZ")
	x1, _ := ParseString("IX")
	if got := x0.ExpectationOnState(v); got < 0.999 {
		t.Errorf("<X0> = %v", got)
	}
	if got := z1.ExpectationOnState(v); got < 0.999 {
		t.Errorf("<Z1> = %v", got)
	}
	if got := x1.ExpectationOnState(v); got > 1e-9 {
		t.Errorf("<X1> = %v", got)
	}
}

func TestCheckUnitaryPauli(t *testing.T) {
	m := linalg.Scale(-1i, linalg.Kron(Y.Matrix(), X.Matrix()))
	s, ok := CheckUnitaryPauli(m, 2)
	if !ok {
		t.Fatal("should identify -i YX")
	}
	// Ops[0] is the low tensor factor: Kron(Y, X) has Y on qubit 1.
	if s.Ops[0] != X || s.Ops[1] != Y || s.Phase != 3 {
		t.Errorf("identified %v phase %d", s.Ops, s.Phase)
	}
}

func TestMulStringsPropertyPhaseConsistent(t *testing.T) {
	labels := []string{"IXYZ", "ZZXX", "YIYI", "XYZX", "IIZY"}
	f := func(i, j uint8) bool {
		a, _ := ParseString(labels[int(i)%len(labels)])
		b, _ := ParseString(labels[int(j)%len(labels)])
		prod := MulStrings(a, b)
		return linalg.ApproxEqual(prod.Matrix(), linalg.Mul(a.Matrix(), b.Matrix()), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
