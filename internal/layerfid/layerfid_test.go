package layerfid

import (
	"math"
	"testing"

	"casq/internal/circuit"
	"casq/internal/core"
	"casq/internal/device"
)

func TestPartitionsCoverAllQubits(t *testing.T) {
	dev, layer, _ := BenchmarkLayerDevice(device.DefaultOptions())
	parts := Partitions(layer, dev)
	seen := map[int]int{}
	for _, p := range parts {
		for _, q := range p.Qubits {
			seen[q]++
		}
	}
	for q := 0; q < dev.NQubits; q++ {
		if seen[q] != 1 {
			t.Errorf("qubit %d appears in %d partitions", q, seen[q])
		}
	}
	// The paper's layout: 3 gate pairs, 1 idle pair, 2 singles.
	var gatePairs, idlePairs, singles int
	for _, p := range parts {
		switch {
		case len(p.Qubits) == 2 && p.Label[0] == 'g':
			gatePairs++
		case len(p.Qubits) == 2:
			idlePairs++
		default:
			singles++
		}
	}
	if gatePairs != 3 || idlePairs != 1 || singles != 2 {
		t.Errorf("partition structure: %d gates, %d idle pairs, %d singles", gatePairs, idlePairs, singles)
	}
}

func TestMeasureOnQuietDevice(t *testing.T) {
	// With all noise disabled, the layer fidelity must be ~1 for every
	// strategy.
	o := device.DefaultOptions()
	o.DeltaMax, o.QuasistaticSigma = 0, 0
	o.Err1Q, o.Err2Q, o.ReadoutErr = 0, 0, 0
	o.T1Min, o.T1Max, o.T2Factor = 1e15, 1e15, 2
	o.RotaryResidual = 0
	o.ZZMin, o.ZZMax = 0, 1e-9 // no coherent crosstalk either
	o.StarkMin, o.StarkMax = 0, 1e-9
	dev, layer, _ := BenchmarkLayerDevice(o)

	opts := DefaultOptions()
	opts.Depths = []int{1, 2, 4}
	opts.Instances = 2
	opts.Shots = 4
	opts.PauliRounds = 4
	res, err := Measure(dev, layer, core.Twirled(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.LF < 0.999 {
		t.Errorf("noiseless layer fidelity = %v, want ~1 (%+v)", res.LF, res.Partitions)
	}
	if math.Abs(res.Gamma-1/(res.LF*res.LF)) > 1e-9 {
		t.Error("gamma != LF^-2")
	}
}

func TestOrderingMatchesPaperOnNoisyDevice(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	// Reduced version of the Fig. 8 setting: CA-EC and CA-DD must both beat
	// bare twirling.
	o := device.DefaultOptions()
	o.Seed = 47
	o.ZZMin, o.ZZMax = 90e3, 160e3
	o.QuasistaticSigma = 3e3
	o.ZZOverride = []device.EdgeRate{{A: 1, B: 2, Hz: 230e3}}
	dev, layer, _ := BenchmarkLayerDevice(o)

	opts := DefaultOptions()
	opts.Depths = []int{1, 2, 4, 7}
	opts.Instances = 3
	opts.Shots = 16
	opts.PauliRounds = 5

	lf := map[string]float64{}
	for _, st := range []core.Strategy{core.Twirled(), core.CADD(), core.CAEC()} {
		res, err := Measure(dev, layer, st, opts)
		if err != nil {
			t.Fatal(err)
		}
		lf[st.Name] = res.LF
	}
	if lf["ca-dd"] <= lf["twirled"] {
		t.Errorf("CA-DD (%v) should beat bare (%v)", lf["ca-dd"], lf["twirled"])
	}
	if lf["ca-ec"] <= lf["twirled"] {
		t.Errorf("CA-EC (%v) should beat bare (%v)", lf["ca-ec"], lf["twirled"])
	}
}

func TestPrepFor(t *testing.T) {
	l := &circuit.Layer{Kind: circuit.OneQubitLayer}
	prepFor(l, 'X', 0)
	prepFor(l, 'Y', 1)
	prepFor(l, 'Z', 2) // no gate
	prepFor(l, 'I', 3) // no gate
	if len(l.Instrs) != 2 {
		t.Errorf("prep gates: %d", len(l.Instrs))
	}
}

func TestPairPaulis(t *testing.T) {
	ps := pairPaulis()
	if len(ps) != 15 {
		t.Errorf("pair Paulis: %d, want 15", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p] || p == "II" {
			t.Errorf("bad Pauli list entry %q", p)
		}
		seen[p] = true
	}
}
