// Package layerfid implements the layer-fidelity benchmark of paper Fig. 8
// (following McKay et al., "Benchmarking quantum processor performance at
// scale"): the device is partitioned into disjoint groups — gate pairs,
// adjacent idle pairs, and single idle qubits — and the process fidelity of
// each group under repeated application of a fixed twirled layer is
// estimated from the exponential decay of its Pauli expectation values.
// The layer fidelity is the product of the per-group fidelities, and the
// error-mitigation sampling overhead per layer follows as
// gamma = LF^(-2) (matching the paper's numbers: LF 0.648 -> gamma 2.38).
package layerfid

import (
	"context"
	"fmt"
	"math"
	"sort"

	"casq/internal/circuit"
	"casq/internal/core"
	"casq/internal/device"
	"casq/internal/exec"
	"casq/internal/fitting"
	"casq/internal/models"
	"casq/internal/obs"
	"casq/internal/pauli"
	"casq/internal/sim"
	"casq/internal/twirl"
)

// Partition is a disjoint group of 1 or 2 qubits.
type Partition struct {
	Qubits []int
	Label  string
}

// Partitions splits the device qubits for a benchmark layer: gate pairs
// first, then adjacent idle pairs (greedy matching on the coupling graph),
// then remaining idle singles (paper Sec. V C).
func Partitions(l *circuit.Layer, dev *device.Device) []Partition {
	var parts []Partition
	used := map[int]bool{}
	for _, in := range l.TwoQubitGates() {
		parts = append(parts, Partition{
			Qubits: []int{in.Qubits[0], in.Qubits[1]},
			Label:  fmt.Sprintf("gate(%d,%d)", in.Qubits[0], in.Qubits[1]),
		})
		used[in.Qubits[0]] = true
		used[in.Qubits[1]] = true
	}
	idle := l.IdleQubits(dev.NQubits)
	for _, q := range idle {
		if used[q] {
			continue
		}
		for _, nb := range dev.Neighbors(q) {
			if nb > q && !used[nb] && contains(idle, nb) {
				parts = append(parts, Partition{Qubits: []int{q, nb}, Label: fmt.Sprintf("idlepair(%d,%d)", q, nb)})
				used[q], used[nb] = true, true
				break
			}
		}
	}
	for _, q := range idle {
		if !used[q] {
			parts = append(parts, Partition{Qubits: []int{q}, Label: fmt.Sprintf("idle(%d)", q)})
			used[q] = true
		}
	}
	return parts
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// PartitionResult holds the fit for one group.
type PartitionResult struct {
	Partition Partition
	Fidelity  float64            // process fidelity per layer application
	Lambdas   map[string]float64 // Pauli label -> decay per layer
}

// Result is a complete layer-fidelity measurement.
type Result struct {
	Strategy   string
	LF         float64 // product of partition process fidelities
	Gamma      float64 // LF^-2, the PEC sampling-overhead base
	Partitions []PartitionResult
}

// Options configure the protocol.
type Options struct {
	Depths    []int
	Instances int // twirl instances per circuit
	Workers   int // concurrent twirl instances; 0 = GOMAXPROCS
	Shots     int
	Seed      int64
	// PauliRounds bounds how many basis Paulis are measured per partition
	// (pairs have 15; 0 = all).
	PauliRounds int
	// Engine selects the executor's simulation backend ("" = statevector,
	// "stab", "auto"). Full-device runs on 127-qubit lattices require the
	// stabilizer engine; the protocol's circuits are twirled Clifford, so
	// "auto" resolves to it. The stabilizer engine batches shots into
	// 64-wide bit-plane words, so each round's expectation values are
	// accumulated from packed parity words (one popcount per 64 shots) —
	// raising Shots to full-scale budgets costs milliseconds, not seconds.
	Engine string
	// Tracer records compile/execute spans for the protocol's circuit
	// runs; nil disables tracing at zero cost.
	Tracer *obs.Tracer
}

// DefaultOptions uses depth points suited to layer fidelities in the
// 0.6-0.95 range.
func DefaultOptions() Options {
	return Options{Depths: []int{1, 2, 4, 6, 9, 12}, Instances: 4, Shots: 64, Seed: 29, PauliRounds: 0}
}

var onePaulis = []string{"X", "Y", "Z"}

func pairPaulis() []string {
	var out []string
	for _, a := range []string{"I", "X", "Y", "Z"} {
		for _, b := range []string{"I", "X", "Y", "Z"} {
			if a == "I" && b == "I" {
				continue
			}
			out = append(out, a+b)
		}
	}
	return out
}

// prepFor appends the 1q gate preparing the +1 eigenstate of the Pauli
// label on qubit q ("I" and "Z" -> |0>, "X" -> |+>, "Y" -> |+i>). Each
// preparation is a single SU(2) gate so one layer slot suffices
// (U3(pi/2, pi/2, pi) = S·H up to global phase).
func prepFor(l *circuit.Layer, label byte, q int) {
	switch label {
	case 'X':
		l.H(q)
	case 'Y':
		l.U(q, math.Pi/2, math.Pi/2, math.Pi)
	}
}

// Measure runs the layer-fidelity protocol for the given benchmark layer
// and compilation strategy.
func Measure(dev *device.Device, layer *circuit.Layer, strategy core.Strategy, opts Options) (Result, error) {
	if len(opts.Depths) == 0 {
		opts.Depths = DefaultOptions().Depths
	}
	parts := Partitions(layer, dev)
	// Per-partition list of Pauli labels to estimate.
	labels := make([][]string, len(parts))
	rounds := 0
	for i, p := range parts {
		if len(p.Qubits) == 1 {
			labels[i] = onePaulis
		} else {
			labels[i] = pairPaulis()
		}
		if opts.PauliRounds > 0 && len(labels[i]) > opts.PauliRounds {
			// Stride across the basis so the sample covers first-qubit,
			// second-qubit and correlated Paulis instead of a biased prefix.
			stride := len(labels[i]) / opts.PauliRounds
			var sampled []string
			for k := 0; k < opts.PauliRounds; k++ {
				sampled = append(sampled, labels[i][k*stride])
			}
			labels[i] = sampled
		}
		if len(labels[i]) > rounds {
			rounds = len(labels[i])
		}
	}

	// decays[partition][label] = (depths, values)
	type curve struct{ xs, ys []float64 }
	decays := make([]map[string]*curve, len(parts))
	for i := range decays {
		decays[i] = map[string]*curve{}
	}

	strategy.TwirlScope = twirl.AllQubits
	for round := 0; round < rounds; round++ {
		for _, d := range opts.Depths {
			// Build the circuit: simultaneous preparation of each
			// partition's round-robin Pauli, d layer repetitions.
			c := circuit.New(dev.NQubits, 0)
			prep := c.AddLayer(circuit.OneQubitLayer)
			chosen := make([]string, len(parts))
			for i, p := range parts {
				lab := labels[i][round%len(labels[i])]
				chosen[i] = lab
				for k, q := range p.Qubits {
					prepFor(prep, lab[k], q)
				}
			}
			for rep := 0; rep < d; rep++ {
				c.Layers = append(c.Layers, layer.Clone())
			}
			// Ideal propagation of each partition's Pauli through d layers.
			obs := make([]sim.ObsSpec, len(parts))
			signs := make([]float64, len(parts))
			for i, p := range parts {
				ps := pauli.NewString(dev.NQubits)
				for k, q := range p.Qubits {
					pp, err := pauli.Parse(chosen[i][k])
					if err != nil {
						return Result{}, err
					}
					ps.Ops[q] = pp
				}
				for rep := 0; rep < d; rep++ {
					var err error
					ps, err = twirl.PropagateThroughLayer(layer, ps)
					if err != nil {
						return Result{}, err
					}
				}
				spec := sim.ObsSpec{}
				for q, op := range ps.Ops {
					if op != pauli.I {
						spec[q] = op.String()[0]
					}
				}
				obs[i] = spec
				if ps.Phase%4 == 2 {
					signs[i] = -1
				} else {
					signs[i] = 1
				}
			}
			ex := exec.New(dev, strategy.Pipeline())
			cfg := sim.DefaultConfig()
			cfg.Shots = opts.Shots
			cfg.Seed = opts.Seed + int64(round*7919+d*13)
			cfg.EnableReadoutErr = false // expectations are readout-corrected
			vals, err := ex.Expectations(context.Background(), c, obs,
				exec.RunOptions{Instances: opts.Instances, Workers: opts.Workers, Seed: opts.Seed + int64(round*1000+d), Cfg: cfg, Engine: opts.Engine, Tracer: opts.Tracer})
			if err != nil {
				return Result{}, err
			}
			for i := range parts {
				lab := chosen[i]
				cv := decays[i][lab]
				if cv == nil {
					cv = &curve{}
					decays[i][lab] = cv
				}
				cv.xs = append(cv.xs, float64(d))
				cv.ys = append(cv.ys, vals[i]*signs[i])
			}
		}
	}

	// Fit decays and assemble per-partition process fidelities.
	res := Result{Strategy: strategy.Name, LF: 1}
	for i, p := range parts {
		pr := PartitionResult{Partition: p, Lambdas: map[string]float64{}}
		dim2 := math.Pow(4, float64(len(p.Qubits)))
		sum := 1.0 // identity Pauli contributes lambda = 1
		nFit := 1
		keys := make([]string, 0, len(decays[i]))
		for k := range decays[i] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, lab := range keys {
			cv := decays[i][lab]
			_, lambda, err := fitting.ExpDecay(cv.xs, cv.ys)
			if err != nil || math.IsNaN(lambda) {
				// A fully decayed Pauli: count as 0 (conservative).
				lambda = 0
			}
			if lambda > 1 {
				lambda = 1
			}
			pr.Lambdas[lab] = lambda
			sum += lambda
			nFit++
		}
		// Extrapolate unsampled Paulis (when PauliRounds truncates) by the
		// mean of the fitted ones.
		if nFit < int(dim2) {
			mean := (sum - 1) / float64(nFit-1)
			sum += mean * float64(int(dim2)-nFit)
		}
		pr.Fidelity = sum / dim2
		res.LF *= pr.Fidelity
		res.Partitions = append(res.Partitions, pr)
	}
	if res.LF > 0 {
		res.Gamma = 1 / (res.LF * res.LF)
	} else {
		res.Gamma = math.Inf(1)
	}
	return res, nil
}

// BenchmarkLayerDevice returns the paper's Fig. 8 device and layer.
func BenchmarkLayerDevice(opts device.Options) (*device.Device, *circuit.Layer, map[int]int) {
	dev, labels := device.NewLayerFidelityDevice(opts)
	return dev, models.LayerFidelityLayer(), labels
}

// TiledLayer builds a full-device benchmark layer: a greedy maximal
// matching of the device's couplers, one ECR per matched edge in its
// calibrated direction. On the 127-qubit Eagle lattice this is the
// at-scale analogue of the paper's sparse Fig. 8 layer — every qubit is
// either gated or an idle spectator of a gate, which is exactly the
// regime the layer-fidelity protocol benchmarks.
func TiledLayer(dev *device.Device) *circuit.Layer {
	used := make([]bool, dev.NQubits)
	l := &circuit.Layer{Kind: circuit.TwoQubitLayer}
	for _, e := range dev.Edges {
		if used[e.A] || used[e.B] {
			continue
		}
		used[e.A], used[e.B] = true, true
		dir := dev.ECRDir[e]
		l.ECR(dir.Src, dir.Dst)
	}
	return l
}
