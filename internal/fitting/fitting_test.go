package fitting

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLinearExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 1 + 2x
	a, b, err := Linear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-1) > 1e-12 || math.Abs(b-2) > 1e-12 {
		t.Errorf("fit a=%v b=%v", a, b)
	}
}

func TestLinearDegenerate(t *testing.T) {
	if _, _, err := Linear([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("degenerate x not rejected")
	}
	if _, _, err := Linear([]float64{1}, []float64{2}); err == nil {
		t.Error("single point not rejected")
	}
}

func TestExpDecayExact(t *testing.T) {
	amp, lambda := 0.93, 0.85
	var xs, ys []float64
	for d := 0; d <= 10; d += 2 {
		xs = append(xs, float64(d))
		ys = append(ys, amp*math.Pow(lambda, float64(d)))
	}
	a, l, err := ExpDecay(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-amp) > 1e-9 || math.Abs(l-lambda) > 1e-9 {
		t.Errorf("fit A=%v lambda=%v", a, l)
	}
}

func TestExpDecaySkipsNonPositive(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 0.5, -0.01, 0.125}
	_, l, err := ExpDecay(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l-0.5) > 0.1 {
		t.Errorf("lambda %v, want ~0.5", l)
	}
}

func TestExpDecayProperty(t *testing.T) {
	f := func(ai, li uint16) bool {
		amp := 0.5 + float64(ai%500)/1000 // [0.5, 1)
		lam := 0.5 + float64(li%499)/1000 // [0.5, 1)
		var xs, ys []float64
		for d := 1; d <= 8; d++ {
			xs = append(xs, float64(d))
			ys = append(ys, amp*math.Pow(lam, float64(d)))
		}
		a, l, err := ExpDecay(xs, ys)
		return err == nil && math.Abs(a-amp) < 1e-6 && math.Abs(l-lam) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestScaledIdealRecoversParameters(t *testing.T) {
	ideal := []float64{1, -0.8, 0.5, -0.9, 0.7}
	ds := []float64{1, 2, 3, 4, 5}
	amp, lambda := 0.95, 0.90
	meas := make([]float64, len(ideal))
	for i := range ideal {
		meas[i] = amp * math.Pow(lambda, ds[i]) * ideal[i]
	}
	a, l, rms, err := ScaledIdeal(ds, ideal, meas)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l-lambda) > 0.002 || math.Abs(a-amp) > 0.02 || rms > 0.01 {
		t.Errorf("fit A=%v lambda=%v rms=%v", a, l, rms)
	}
}

func TestSamplingOverhead(t *testing.T) {
	// Overhead = (A lambda^d)^-2.
	ov := SamplingOverhead(1, 0.9, 5)
	want := math.Pow(0.9, -10)
	if math.Abs(ov-want) > 1e-9 {
		t.Errorf("overhead %v, want %v", ov, want)
	}
	if !math.IsInf(SamplingOverhead(0, 0.9, 5), 1) {
		t.Error("zero amplitude should give infinite overhead")
	}
	// Paper cross-check: LF = 0.648 corresponds to gamma 2.38 under
	// gamma = LF^-2 (one layer).
	if g := SamplingOverhead(1, 0.648, 1); math.Abs(g-2.381) > 0.01 {
		t.Errorf("gamma(0.648) = %v", g)
	}
}

func TestFreqScan(t *testing.T) {
	f0 := 55e3
	var ts, ys []float64
	for i := 0; i < 60; i++ {
		tm := float64(i) * 1e-6
		ts = append(ts, tm)
		ys = append(ys, math.Cos(2*math.Pi*f0*tm))
	}
	got, power := FreqScan(ts, ys, 10e3, 100e3, 2001)
	if math.Abs(got-f0) > 1e3 {
		t.Errorf("peak at %v, want %v", got, f0)
	}
	if power <= 0 {
		t.Error("zero peak power")
	}
}

func TestMeanStdErr(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Error("mean wrong")
	}
	se := StdErr(xs)
	want := math.Sqrt((2.25+0.25+0.25+2.25)/3) / 2
	if math.Abs(se-want) > 1e-12 {
		t.Errorf("stderr %v, want %v", se, want)
	}
	if Mean(nil) != 0 || StdErr([]float64{1}) != 0 {
		t.Error("edge cases wrong")
	}
}
