// Package fitting provides the estimation routines the experiment harnesses
// need: exponential decay fits A*lambda^d for layer-fidelity and
// error-mitigation-overhead analysis, scaled-ideal fits meas ~ A*lambda^d *
// ideal for the global depolarizing model of paper Sec. V B, linear least
// squares, and a Ramsey frequency scan used in the Stark characterization
// (Fig. 4a).
package fitting

import (
	"errors"
	"math"
)

// Linear fits y = a + b*x by ordinary least squares.
func Linear(xs, ys []float64) (a, b float64, err error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, 0, errors.New("fitting: need >= 2 matching points")
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, errors.New("fitting: degenerate x values")
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	return a, b, nil
}

// ExpDecay fits y = A * lambda^x via log-linear least squares over the
// points with y > floor (default floor 1e-6). Returns A and lambda.
func ExpDecay(xs, ys []float64) (amp, lambda float64, err error) {
	const floor = 1e-6
	var fx, fy []float64
	for i := range xs {
		if ys[i] > floor {
			fx = append(fx, xs[i])
			fy = append(fy, math.Log(ys[i]))
		}
	}
	if len(fx) < 2 {
		return 0, 0, errors.New("fitting: too few positive points for decay fit")
	}
	a, b, err := Linear(fx, fy)
	if err != nil {
		return 0, 0, err
	}
	return math.Exp(a), math.Exp(b), nil
}

// ScaledIdeal fits meas_d ~ A * lambda^d * ideal_d — the global
// depolarizing model the paper uses to estimate mitigation overhead
// (Sec. V B): A captures state preparation/readout error and lambda the
// per-step fidelity. lambda is grid-searched on (0, 1]; A has a closed form
// given lambda. Returns the fit and its RMS residual.
func ScaledIdeal(ds []float64, ideal, meas []float64) (amp, lambda, rms float64, err error) {
	if len(ds) != len(ideal) || len(ds) != len(meas) || len(ds) < 2 {
		return 0, 0, 0, errors.New("fitting: need >= 2 matching points")
	}
	best := math.Inf(1)
	for l := 0.500; l <= 1.0001; l += 0.0005 {
		// Closed-form A minimizing sum (A f_d - m_d)^2 with f_d = l^d * ideal_d.
		var num, den float64
		for i := range ds {
			f := math.Pow(l, ds[i]) * ideal[i]
			num += f * meas[i]
			den += f * f
		}
		if den == 0 {
			continue
		}
		a := num / den
		var sse float64
		for i := range ds {
			r := a*math.Pow(l, ds[i])*ideal[i] - meas[i]
			sse += r * r
		}
		if sse < best {
			best = sse
			amp, lambda = a, l
		}
	}
	if math.IsInf(best, 1) {
		return 0, 0, 0, errors.New("fitting: scaled-ideal fit failed")
	}
	return amp, lambda, math.Sqrt(best / float64(len(ds))), nil
}

// SamplingOverhead converts a scaled-ideal fit into the relative
// error-mitigation sampling overhead at depth d: rescaling the signal by
// 1/(A lambda^d) multiplies the variance by (A lambda^d)^-2 (paper
// Sec. V B).
func SamplingOverhead(amp, lambda float64, d int) float64 {
	f := amp * math.Pow(lambda, float64(d))
	if f <= 0 {
		return math.Inf(1)
	}
	return 1 / (f * f)
}

// FreqScan estimates the dominant oscillation frequency of a signal sampled
// at times ts by scanning a frequency grid [fMin, fMax] with nGrid points
// and maximizing the periodogram power. Used to locate Ramsey peaks
// (paper Fig. 4a).
func FreqScan(ts, ys []float64, fMin, fMax float64, nGrid int) (fBest float64, power float64) {
	if nGrid < 2 {
		nGrid = 256
	}
	mean := 0.0
	for _, y := range ys {
		mean += y
	}
	mean /= float64(len(ys))
	for k := 0; k < nGrid; k++ {
		f := fMin + (fMax-fMin)*float64(k)/float64(nGrid-1)
		var c, s float64
		for i := range ts {
			ph := 2 * math.Pi * f * ts[i]
			c += (ys[i] - mean) * math.Cos(ph)
			s += (ys[i] - mean) * math.Sin(ph)
		}
		if p := c*c + s*s; p > power {
			power = p
			fBest = f
		}
	}
	return fBest, power
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdErr returns the standard error of the mean.
func StdErr(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		ss += (x - m) * (x - m)
	}
	return math.Sqrt(ss / float64(n-1) / float64(n))
}
