package gates

import (
	"math"
	"testing"
	"testing/quick"

	"casq/internal/linalg"
)

func TestAllOneQubitGatesUnitary(t *testing.T) {
	kinds := []Kind{ID, XGate, YGate, ZGate, H, S, Sdg, SX, SXdg, XDD}
	for _, k := range kinds {
		if !linalg.IsUnitary(Matrix1Q(k), 1e-12) {
			t.Errorf("%s is not unitary", k)
		}
	}
	for _, theta := range []float64{0, 0.3, math.Pi / 2, math.Pi, -1.7} {
		for _, k := range []Kind{RZ, RX, RY} {
			if !linalg.IsUnitary(Matrix1Q(k, theta), 1e-12) {
				t.Errorf("%s(%g) is not unitary", k, theta)
			}
		}
	}
}

func TestAllTwoQubitGatesUnitary(t *testing.T) {
	if !linalg.IsUnitary(Matrix2Q(CX), 1e-12) {
		t.Error("CX not unitary")
	}
	if !linalg.IsUnitary(Matrix2Q(ECR), 1e-12) {
		t.Error("ECR not unitary")
	}
	if !linalg.IsUnitary(Matrix2Q(SWAP), 1e-12) {
		t.Error("SWAP not unitary")
	}
	for _, theta := range []float64{0.1, -0.5, math.Pi / 2} {
		if !linalg.IsUnitary(Matrix2Q(RZZ, theta), 1e-12) {
			t.Errorf("RZZ(%g) not unitary", theta)
		}
		if !linalg.IsUnitary(Matrix2Q(ZX, theta), 1e-12) {
			t.Errorf("ZX(%g) not unitary", theta)
		}
	}
	if !linalg.IsUnitary(Matrix2Q(Ucan, 0.3, -0.2, 0.9), 1e-12) {
		t.Error("Ucan not unitary")
	}
}

func TestSXSquaredIsX(t *testing.T) {
	got := linalg.Mul(Matrix1Q(SX), Matrix1Q(SX))
	if !linalg.EqualUpToPhase(got, Matrix1Q(XGate), 1e-12) {
		t.Errorf("SX^2 != X:\n%v", got)
	}
}

func TestECRIsEchoedSequence(t *testing.T) {
	// ECR must equal ZX(-pi/4) . X(ctrl) . ZX(pi/4), the physical pulse
	// sequence executed by the simulator.
	xc := linalg.Kron(Matrix1Q(XGate), linalg.Identity(2))
	seq := linalg.MulChain(ZXMatrix(-math.Pi/4), xc, ZXMatrix(math.Pi/4))
	if !linalg.ApproxEqual(ECRMatrix(), seq, 1e-12) {
		t.Errorf("ECR != echoed sequence:\n%v\nvs\n%v", ECRMatrix(), seq)
	}
}

func TestECRSelfInverse(t *testing.T) {
	sq := linalg.Mul(ECRMatrix(), ECRMatrix())
	if !linalg.EqualUpToPhase(sq, linalg.Identity(4), 1e-12) {
		t.Errorf("ECR^2 != I:\n%v", sq)
	}
}

func TestCNOTFromECR(t *testing.T) {
	// CNOT = (Rz(-pi/2) X on ctrl) x (Rx(-pi/2) on tgt) . ECR, up to global
	// phase. This is the dressing the transpiler uses.
	ctrl := linalg.Mul(Matrix1Q(RZ, -math.Pi/2), Matrix1Q(XGate))
	tgt := Matrix1Q(RX, -math.Pi/2)
	dress := linalg.Kron(ctrl, tgt)
	got := linalg.Mul(dress, ECRMatrix())
	if !linalg.EqualUpToPhase(got, Matrix2Q(CX), 1e-12) {
		t.Errorf("CNOT != dressing . ECR:\n%v", got)
	}
}

func TestUcanFactorizes(t *testing.T) {
	// XX, YY, ZZ commute, so Ucan(a,0,0)*Ucan(0,b,0)*Ucan(0,0,g) = Ucan(a,b,g).
	a, b, g := 0.37, -0.21, 0.85
	lhs := UcanMatrix(a, b, g)
	rhs := linalg.MulChain(UcanMatrix(a, 0, 0), UcanMatrix(0, b, 0), UcanMatrix(0, 0, g))
	if !linalg.ApproxEqual(lhs, rhs, 1e-12) {
		t.Error("Ucan does not factorize over commuting terms")
	}
}

func TestUcanGammaOnlyIsRzz(t *testing.T) {
	// Ucan(0,0,g) = exp(i g ZZ) = Rzz(-2g).
	g := 0.42
	if !linalg.ApproxEqual(UcanMatrix(0, 0, g), Matrix2Q(RZZ, -2*g), 1e-12) {
		t.Error("Ucan(0,0,g) != Rzz(-2g)")
	}
}

func TestAbsorbRzzIntoUcan(t *testing.T) {
	// Ucan(a,b,g+d/2) must equal Ucan(a,b,g) . Rzz(-d), the compensation of
	// an Rzz(d) error preceding the gate.
	a, b, g, d := 0.3, 0.7, -0.4, 0.23
	na, nb, ng := AbsorbRzzIntoUcan(a, b, g, d)
	lhs := UcanMatrix(na, nb, ng)
	rhs := linalg.Mul(UcanMatrix(a, b, g), Matrix2Q(RZZ, -d))
	if !linalg.ApproxEqual(lhs, rhs, 1e-12) {
		t.Error("AbsorbRzzIntoUcan identity violated")
	}
	// And the compensated product cancels the error exactly.
	tot := linalg.Mul(lhs, Matrix2Q(RZZ, d))
	if !linalg.ApproxEqual(tot, UcanMatrix(a, b, g), 1e-12) {
		t.Error("compensation does not cancel the error")
	}
}

func TestCXCommutationWithRzz(t *testing.T) {
	// CX . Rzz(t) = (I x Rz(t)) . CX — the rule CA-EC uses to convert a
	// pending ZZ into a free virtual Rz on the target.
	theta := 0.61
	lhs := linalg.Mul(Matrix2Q(CX), Matrix2Q(RZZ, theta))
	rz := linalg.Kron(linalg.Identity(2), Matrix1Q(RZ, theta))
	rhs := linalg.Mul(rz, Matrix2Q(CX))
	if !linalg.ApproxEqual(lhs, rhs, 1e-12) {
		t.Error("CX/Rzz commutation rule violated")
	}
}

func TestDecompose1QRoundTrip(t *testing.T) {
	cases := []linalg.Matrix{
		Matrix1Q(H), Matrix1Q(XGate), Matrix1Q(YGate), Matrix1Q(ZGate),
		Matrix1Q(S), Matrix1Q(SX), Matrix1Q(RZ, 0.7), Matrix1Q(RY, -1.2),
		Matrix1Q(RX, 2.9), linalg.Identity(2),
	}
	for i, u := range cases {
		e := Decompose1Q(u)
		if !linalg.ApproxEqual(e.Matrix(), u, 1e-9) {
			t.Errorf("case %d: round trip failed", i)
		}
	}
}

func TestZXZXZIdentity(t *testing.T) {
	// The native sequence Rz(phi+pi) SX Rz(theta+pi) SX Rz(lambda) must
	// implement U3(theta, phi, lambda) up to global phase (paper Eq. 4).
	for _, c := range [][3]float64{
		{0.3, 0.8, -1.1}, {math.Pi / 2, 0, math.Pi}, {1.9, -0.4, 0.2}, {0, 0, 0},
	} {
		e := EulerZXZXZ{Theta: c[0], Phi: c[1], Lambda: c[2]}
		want := U3Matrix(c[0], c[1], c[2])
		if !linalg.EqualUpToPhase(e.ZXZXZMatrix(), want, 1e-9) {
			t.Errorf("ZXZXZ(%v) does not reproduce U3", c)
		}
	}
}

func TestAbsorbRzBeforeAfter(t *testing.T) {
	theta, phi, lambda, delta := 0.9, -0.3, 1.4, 0.37
	e := EulerZXZXZ{Theta: theta, Phi: phi, Lambda: lambda}
	u := e.Matrix()

	before := e.AbsorbRzBefore(delta)
	want := linalg.Mul(u, Matrix1Q(RZ, -delta))
	if !linalg.EqualUpToPhase(before.Matrix(), want, 1e-9) {
		t.Error("AbsorbRzBefore: U' != U . Rz(-delta)")
	}
	// Compensation of an error occurring before the gate: U' Rz(delta) == U.
	tot := linalg.Mul(before.Matrix(), Matrix1Q(RZ, delta))
	if !linalg.EqualUpToPhase(tot, u, 1e-9) {
		t.Error("AbsorbRzBefore does not cancel the error")
	}

	after := e.AbsorbRzAfter(delta)
	want = linalg.Mul(Matrix1Q(RZ, -delta), u)
	if !linalg.EqualUpToPhase(after.Matrix(), want, 1e-9) {
		t.Error("AbsorbRzAfter: U' != Rz(-delta) . U")
	}
}

// boundedAngle maps an arbitrary integer to an angle in (-pi, pi].
func boundedAngle(x int64) float64 {
	return (float64(x%100000)/100000.0)*2*math.Pi - math.Pi
}

func TestDecompose1QProperty(t *testing.T) {
	f := func(a, b, c int64) bool {
		u := U3Matrix(math.Abs(boundedAngle(a)), boundedAngle(b), boundedAngle(c))
		e := Decompose1Q(u)
		return linalg.ApproxEqual(e.Matrix(), u, 1e-8) &&
			linalg.EqualUpToPhase(e.ZXZXZMatrix(), u, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRZZDiagonalForm(t *testing.T) {
	theta := 0.81
	m := Matrix2Q(RZZ, theta)
	// Rzz = exp(-i theta/2 Z x Z): diag(e^-, e^+, e^+, e^-).
	zz := linalg.Kron(Matrix1Q(ZGate), Matrix1Q(ZGate))
	want := linalg.NewMatrix(4)
	for i := 0; i < 4; i++ {
		z := real(zz.At(i, i))
		want.Set(i, i, complex(math.Cos(-theta/2*z), math.Sin(-theta/2*z)))
	}
	if !linalg.ApproxEqual(m, want, 1e-12) {
		t.Error("RZZ diagonal mismatch")
	}
}

func TestNumQubits(t *testing.T) {
	if NumQubits(ECR) != 2 || NumQubits(H) != 1 || NumQubits(Measure) != 0 {
		t.Error("NumQubits misclassifies kinds")
	}
	if IsUnitaryGate(Measure) || !IsUnitaryGate(SX) {
		t.Error("IsUnitaryGate misclassifies kinds")
	}
}
