// Package gates defines the gate set of the casq compiler: matrices for the
// hardware-native basis (RZ, SX, X, ECR) and for the logical gates used by
// the paper's applications (CNOT, RZZ, the canonical gate Ucan of Eq. 5),
// plus the Euler ZXZXZ decomposition and the angle-absorption rules that
// CA-EC uses to compensate coherent errors at zero cost (paper Fig. 1c,d).
package gates

import (
	"fmt"
	"math"
	"math/cmplx"

	"casq/internal/linalg"
)

// Kind names a gate or scheduling pseudo-op in the circuit IR.
type Kind string

// Gate kinds. One- and two-qubit unitaries, plus pseudo-ops used by the
// scheduler and the measurement model.
const (
	ID      Kind = "id"
	XGate   Kind = "x"
	YGate   Kind = "y"
	ZGate   Kind = "z"
	H       Kind = "h"
	S       Kind = "s"
	Sdg     Kind = "sdg"
	SX      Kind = "sx"
	SXdg    Kind = "sxdg"
	RZ      Kind = "rz" // params: theta
	RX      Kind = "rx" // params: theta
	RY      Kind = "ry" // params: theta
	U3      Kind = "u"  // params: theta, phi, lambda
	CX      Kind = "cx"
	ECR     Kind = "ecr"
	RZZ     Kind = "rzz"  // params: theta
	Ucan    Kind = "ucan" // params: alpha, beta, gamma (Eq. 5)
	ZX      Kind = "zx"   // params: theta; exp(-i theta/2 Z(x)X)
	SWAP    Kind = "swap"
	XDD     Kind = "xdd"   // an X pulse inserted by a DD pass (same matrix as X)
	Delay   Kind = "delay" // params: duration in ns
	Barrier Kind = "barrier"
	Measure Kind = "measure"
	Reset   Kind = "reset"
)

// NumQubits returns how many qubits a gate kind acts on, or 0 for pseudo-ops
// that apply per-qubit (delay, measure, reset, barrier).
func NumQubits(k Kind) int {
	switch k {
	case CX, ECR, RZZ, Ucan, ZX, SWAP:
		return 2
	case Delay, Barrier, Measure, Reset:
		return 0
	default:
		return 1
	}
}

// IsUnitaryGate reports whether k denotes a unitary gate (not a pseudo-op).
func IsUnitaryGate(k Kind) bool {
	switch k {
	case Delay, Barrier, Measure, Reset:
		return false
	}
	return true
}

// Matrix1Q returns the 2x2 matrix for a one-qubit gate kind.
func Matrix1Q(k Kind, params ...float64) linalg.Matrix {
	need := func(n int) {
		if len(params) != n {
			panic(fmt.Sprintf("gates: %s needs %d params, got %d", k, n, len(params)))
		}
	}
	switch k {
	case ID:
		return linalg.Identity(2)
	case XGate, XDD:
		return linalg.FromRows([][]complex128{{0, 1}, {1, 0}})
	case YGate:
		return linalg.FromRows([][]complex128{{0, -1i}, {1i, 0}})
	case ZGate:
		return linalg.FromRows([][]complex128{{1, 0}, {0, -1}})
	case H:
		s := complex(1/math.Sqrt2, 0)
		return linalg.FromRows([][]complex128{{s, s}, {s, -s}})
	case S:
		return linalg.FromRows([][]complex128{{1, 0}, {0, 1i}})
	case Sdg:
		return linalg.FromRows([][]complex128{{1, 0}, {0, -1i}})
	case SX:
		return linalg.FromRows([][]complex128{
			{0.5 + 0.5i, 0.5 - 0.5i},
			{0.5 - 0.5i, 0.5 + 0.5i},
		})
	case SXdg:
		return linalg.FromRows([][]complex128{
			{0.5 - 0.5i, 0.5 + 0.5i},
			{0.5 + 0.5i, 0.5 - 0.5i},
		})
	case RZ:
		need(1)
		t := params[0]
		return linalg.FromRows([][]complex128{
			{cmplx.Exp(complex(0, -t/2)), 0},
			{0, cmplx.Exp(complex(0, t/2))},
		})
	case RX:
		need(1)
		t := params[0]
		c, s := complex(math.Cos(t/2), 0), complex(0, -math.Sin(t/2))
		return linalg.FromRows([][]complex128{{c, s}, {s, c}})
	case RY:
		need(1)
		t := params[0]
		c, s := complex(math.Cos(t/2), 0), complex(math.Sin(t/2), 0)
		return linalg.FromRows([][]complex128{{c, -s}, {s, c}})
	case U3:
		need(3)
		return U3Matrix(params[0], params[1], params[2])
	}
	panic(fmt.Sprintf("gates: %s is not a one-qubit gate", k))
}

// U3Matrix returns the standard U(theta, phi, lambda) matrix.
func U3Matrix(theta, phi, lambda float64) linalg.Matrix {
	c := math.Cos(theta / 2)
	s := math.Sin(theta / 2)
	return linalg.FromRows([][]complex128{
		{complex(c, 0), -cmplx.Exp(complex(0, lambda)) * complex(s, 0)},
		{cmplx.Exp(complex(0, phi)) * complex(s, 0), cmplx.Exp(complex(0, phi+lambda)) * complex(c, 0)},
	})
}

// Matrix2Q returns the 4x4 matrix for a two-qubit gate kind in the
// |q_first q_second> basis, where q_first is the first operand of the gate
// (the control for CX/ECR/ZX).
func Matrix2Q(k Kind, params ...float64) linalg.Matrix {
	need := func(n int) {
		if len(params) != n {
			panic(fmt.Sprintf("gates: %s needs %d params, got %d", k, n, len(params)))
		}
	}
	switch k {
	case CX:
		return linalg.FromRows([][]complex128{
			{1, 0, 0, 0},
			{0, 1, 0, 0},
			{0, 0, 0, 1},
			{0, 0, 1, 0},
		})
	case SWAP:
		return linalg.FromRows([][]complex128{
			{1, 0, 0, 0},
			{0, 0, 1, 0},
			{0, 1, 0, 0},
			{0, 0, 0, 1},
		})
	case ZX:
		need(1)
		return ZXMatrix(params[0])
	case ECR:
		return ECRMatrix()
	case RZZ:
		need(1)
		t := params[0]
		em := cmplx.Exp(complex(0, -t/2))
		ep := cmplx.Exp(complex(0, t/2))
		return linalg.FromRows([][]complex128{
			{em, 0, 0, 0},
			{0, ep, 0, 0},
			{0, 0, ep, 0},
			{0, 0, 0, em},
		})
	case Ucan:
		need(3)
		return UcanMatrix(params[0], params[1], params[2])
	}
	panic(fmt.Sprintf("gates: %s is not a two-qubit gate", k))
}

// ZXMatrix returns exp(-i theta/2 Z(x)X) with Z acting on the first operand
// (control) and X on the second (target).
func ZXMatrix(theta float64) linalg.Matrix {
	c := complex(math.Cos(theta/2), 0)
	s := complex(0, -math.Sin(theta/2))
	// Block diagonal: control |0> -> Rx(theta), control |1> -> Rx(-theta).
	return linalg.FromRows([][]complex128{
		{c, s, 0, 0},
		{s, c, 0, 0},
		{0, 0, c, -s},
		{0, 0, -s, c},
	})
}

// ECRMatrix returns the echoed cross-resonance gate used throughout the
// paper. It is defined by its physical pulse sequence
//
//	ECR = ZX(-pi/4) . X(ctrl) . ZX(+pi/4)
//
// executed over the gate duration, which composes to X(ctrl) . ZX(pi/2).
// It is a Clifford entangler locally equivalent to CNOT. The mid-gate echo
// X on the control is what cancels control-spectator ZZ during the gate
// (paper Sec. III B, cases II-IV).
func ECRMatrix() linalg.Matrix {
	xc := linalg.Kron(Matrix1Q(XGate), linalg.Identity(2)) // X on control (high bit)
	return linalg.Mul(xc, ZXMatrix(math.Pi/2))
}

// UcanMatrix returns Ucan = exp[i(alpha XX + beta YY + gamma ZZ)] (paper
// Eq. 5). XX, YY and ZZ commute, so the exponential factors exactly.
func UcanMatrix(alpha, beta, gamma float64) linalg.Matrix {
	xx := linalg.Kron(Matrix1Q(XGate), Matrix1Q(XGate))
	yy := linalg.Kron(Matrix1Q(YGate), Matrix1Q(YGate))
	zz := linalg.Kron(Matrix1Q(ZGate), Matrix1Q(ZGate))
	expP := func(a float64, p linalg.Matrix) linalg.Matrix {
		// exp(i a P) = cos(a) I + i sin(a) P for P^2 = I.
		m := linalg.Scale(complex(math.Cos(a), 0), linalg.Identity(4))
		return linalg.Add(m, linalg.Scale(complex(0, math.Sin(a)), p))
	}
	return linalg.MulChain(expP(alpha, xx), expP(beta, yy), expP(gamma, zz))
}

// EulerZXZXZ holds the three Rz angles of the hardware-native decomposition
// U = e^{i phase} Rz(phi+pi) SX Rz(theta+pi) SX Rz(lambda)  (paper Eq. 4;
// the rightmost factor acts first).
type EulerZXZXZ struct {
	Theta, Phi, Lambda float64
	Phase              float64
}

// Decompose1Q extracts U3 angles (and global phase) from an arbitrary 2x2
// unitary. The result satisfies U = e^{i phase} U3(theta, phi, lambda).
func Decompose1Q(u linalg.Matrix) EulerZXZXZ {
	if u.N != 2 {
		panic("gates: Decompose1Q needs a 2x2 matrix")
	}
	u00, u01 := u.At(0, 0), u.At(0, 1)
	u10, u11 := u.At(1, 0), u.At(1, 1)
	a00, a10 := cmplx.Abs(u00), cmplx.Abs(u10)
	theta := 2 * math.Atan2(a10, a00)
	var phi, lambda, phase float64
	const eps = 1e-12
	switch {
	case a10 < eps: // diagonal: theta = 0
		theta = 0
		phi = 0
		phase = cmplx.Phase(u00)
		lambda = cmplx.Phase(u11) - phase
	case a00 < eps: // anti-diagonal: theta = pi
		theta = math.Pi
		lambda = 0
		phase = cmplx.Phase(-u01)
		phi = cmplx.Phase(u10) - phase
	default:
		phase = cmplx.Phase(u00)
		phi = cmplx.Phase(u10) - phase
		lambda = cmplx.Phase(-u01) - phase
	}
	return EulerZXZXZ{Theta: theta, Phi: phi, Lambda: lambda, Phase: phase}
}

// Matrix reconstructs the unitary including global phase.
func (e EulerZXZXZ) Matrix() linalg.Matrix {
	m := U3Matrix(e.Theta, e.Phi, e.Lambda)
	return linalg.Scale(cmplx.Exp(complex(0, e.Phase)), m)
}

// ZXZXZMatrix reconstructs the unitary from the native-gate sequence
// Rz(phi+pi) SX Rz(theta+pi) SX Rz(lambda), up to global phase. It is used
// in tests to validate the hardware decomposition identity.
func (e EulerZXZXZ) ZXZXZMatrix() linalg.Matrix {
	return linalg.MulChain(
		Matrix1Q(RZ, e.Phi+math.Pi),
		Matrix1Q(SX),
		Matrix1Q(RZ, e.Theta+math.Pi),
		Matrix1Q(SX),
		Matrix1Q(RZ, e.Lambda),
	)
}

// AbsorbRzBefore returns the Euler angles of U' = U . Rz(-delta): it
// compensates a coherent Rz(delta) error that occurred immediately before U
// (paper Fig. 1c). The absorption is free: only the virtual Rz angle
// changes.
func (e EulerZXZXZ) AbsorbRzBefore(delta float64) EulerZXZXZ {
	e.Lambda -= delta
	return e
}

// AbsorbRzAfter returns the Euler angles of U' = Rz(-delta) . U,
// compensating an Rz(delta) error occurring immediately after U.
func (e EulerZXZXZ) AbsorbRzAfter(delta float64) EulerZXZXZ {
	e.Phi -= delta
	return e
}

// AbsorbRzzIntoUcan compensates an Rzz(delta) error adjacent to a Ucan gate
// by shifting the gamma angle (paper Sec. II C, where the shift is written
// gamma -> gamma - theta/2 in the paper's Rzz sign convention). With this
// package's conventions, Ucan contains exp(+i gamma ZZ) while
// Rzz(delta) = exp(-i delta/2 ZZ), so cancelling the error requires
// gamma -> gamma + delta/2: Ucan(a, b, g + d/2) = Ucan(a, b, g) Rzz(-d).
// Works on either side since ZZ commutes with Ucan.
func AbsorbRzzIntoUcan(alpha, beta, gamma, delta float64) (a, b, g float64) {
	return alpha, beta, gamma + delta/2
}

// AbsorbRzzIntoRzz merges the compensation of an Rzz(delta) error into an
// adjacent Rzz(theta) gate: the combined gate is Rzz(theta - delta).
func AbsorbRzzIntoRzz(theta, delta float64) float64 { return theta - delta }
