package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"casq/internal/experiments"
	"casq/internal/store"
	"casq/internal/sweep"
)

// newTestServer returns an httptest server over a memory store whose
// compute path counts harness invocations.
func newTestServer(t *testing.T, computes *atomic.Int32) *httptest.Server {
	ts, _ := newTestServerWith(t, computes, Config{SweepWorkers: 2})
	return ts
}

// newTestServerWith is newTestServer with an explicit Config (its Cache
// field is filled in here).
func newTestServerWith(t *testing.T, computes *atomic.Int32, cfg Config) (*httptest.Server, *Server) {
	t.Helper()
	st, err := store.Open("", 64)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Cache = &sweep.Cache{Store: st, Compute: func(id string, opts experiments.Options) (experiments.Figure, error) {
		if computes != nil {
			computes.Add(1)
		}
		return experiments.Run(id, opts)
	}}
	srv := NewWith(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return ts, srv
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestExperimentsEndpoint(t *testing.T) {
	ts := newTestServer(t, nil)
	resp, body := get(t, ts.URL+"/experiments")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var specs []experiments.Spec
	if err := json.Unmarshal(body, &specs); err != nil {
		t.Fatal(err)
	}
	if len(specs) != len(experiments.IDs()) {
		t.Fatalf("served %d specs, want %d", len(specs), len(experiments.IDs()))
	}
	if specs[0].ID != "fig3c" || specs[0].Paper != "Fig. 3c" {
		t.Errorf("first spec = %+v", specs[0])
	}
	// The declared axes are enumerable by clients.
	if len(specs[0].Axes) == 0 || specs[0].Axes[0].Name != "depth" {
		t.Errorf("fig3c axes = %+v", specs[0].Axes)
	}
}

// TestFigureCachedSecondRequest pins the serving acceptance criterion: the
// same figure requested twice computes once, and the second response is
// served from the store with a bit-identical payload.
func TestFigureCachedSecondRequest(t *testing.T) {
	var computes atomic.Int32
	ts := newTestServer(t, &computes)
	url := ts.URL + "/figures/fig3c?fast=1&shots=16&instances=2&maxdepth=2"

	resp1, body1 := get(t, url)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp1.StatusCode, body1)
	}
	if h := resp1.Header.Get("X-Casq-Cache"); h != "miss" {
		t.Errorf("first request cache header = %q", h)
	}
	resp2, body2 := get(t, url)
	if h := resp2.Header.Get("X-Casq-Cache"); h != "hit" {
		t.Errorf("second request cache header = %q", h)
	}
	if computes.Load() != 1 {
		t.Errorf("computed %d times, want 1", computes.Load())
	}
	if !bytes.Equal(body1, body2) {
		t.Error("cached response not bit-identical")
	}
	var fig experiments.Figure
	if err := json.Unmarshal(body2, &fig); err != nil {
		t.Fatal(err)
	}
	if fig.ID != "fig3c" || len(fig.Series) == 0 {
		t.Errorf("served figure = %+v", fig)
	}
	// A different configuration is a different address: computes again.
	get(t, ts.URL+"/figures/fig3c?fast=1&shots=16&instances=2&maxdepth=2&seed=99")
	if computes.Load() != 2 {
		t.Errorf("distinct options should recompute: %d", computes.Load())
	}
}

func TestFigureErrors(t *testing.T) {
	ts := newTestServer(t, nil)
	resp, _ := get(t, ts.URL+"/figures/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id status = %d", resp.StatusCode)
	}
	resp, _ = get(t, ts.URL+"/figures/fig5?shots=banana")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad shots status = %d", resp.StatusCode)
	}
	resp, _ = get(t, ts.URL+"/figures/fig5?fast=maybe")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad fast status = %d", resp.StatusCode)
	}
}

func TestSweepLifecycle(t *testing.T) {
	var computes atomic.Int32
	ts := newTestServer(t, &computes)

	spec := `{"ids":["fig5","table1"],"grid":{"seeds":[1,2]},"fast":true,
	          "base":{"Seed":11,"Shots":16,"Instances":2,"MaxDepth":2,"Fast":true}}`
	resp, err := http.Post(ts.URL+"/sweeps", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d: %s", resp.StatusCode, body)
	}
	var acc struct {
		ID     string `json:"id"`
		Total  int    `json:"total"`
		Status string `json:"status"`
	}
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	if acc.Total != 4 || acc.ID == "" {
		t.Fatalf("accepted = %+v", acc)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, body := get(t, ts.URL+acc.Status)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status poll = %d: %s", resp.StatusCode, body)
		}
		var st struct {
			Progress sweep.Progress `json:"progress"`
			Cells    []struct {
				Experiment string `json:"experiment"`
				State      string `json:"state"`
			} `json:"cells"`
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.Progress.Finished {
			if st.Progress.Done != 4 || st.Progress.Failed != 0 {
				t.Fatalf("final progress = %+v", st.Progress)
			}
			if len(st.Cells) != 4 || st.Cells[0].Experiment != "fig5" {
				t.Fatalf("cells = %+v", st.Cells)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep did not finish in time")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The sweep checkpointed its cells: a figure request for one of them
	// is a pure store hit.
	before := computes.Load()
	resp2, _ := get(t, ts.URL+"/figures/fig5?fast=1&shots=16&instances=2&maxdepth=2&seed=1")
	if h := resp2.Header.Get("X-Casq-Cache"); h != "hit" {
		t.Errorf("post-sweep figure request = %q, want hit", h)
	}
	if computes.Load() != before {
		t.Error("post-sweep figure request recomputed")
	}

	resp3, _ := get(t, ts.URL+"/sweeps/sweep-999")
	if resp3.StatusCode != http.StatusNotFound {
		t.Errorf("unknown sweep status = %d", resp3.StatusCode)
	}
}

func TestSweepSubmitRejectsBadSpec(t *testing.T) {
	ts := newTestServer(t, nil)
	for _, bad := range []string{`{"ids":["nope"]}`, `{"unknown_field":1}`, `not json`} {
		resp, err := http.Post(ts.URL+"/sweeps", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("spec %q status = %d", bad, resp.StatusCode)
		}
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t, nil)
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var h struct {
		OK    bool        `json:"ok"`
		Store store.Stats `json:"store"`
	}
	if err := json.Unmarshal(body, &h); err != nil || !h.OK {
		t.Fatalf("health = %s (%v)", body, err)
	}
}

// TestFigureRejectsUnknownParam: a typoed query parameter must not
// silently serve (and cache) a different configuration.
func TestFigureRejectsUnknownParam(t *testing.T) {
	ts := newTestServer(t, nil)
	for _, q := range []string{"shot=100", "seeds=5", "fast=1&depth=3"} {
		resp, body := get(t, ts.URL+"/figures/fig5?"+q)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("query %q status = %d: %s", q, resp.StatusCode, body)
		}
	}
}

// TestSweepHistoryBounded pins the history cap: old finished sweeps are
// pruned once submissions exceed maxSweepHistory, newest stay reachable.
// HistoryTTL < 0 prunes finished runs the moment the cap is hit (the TTL
// grace period has its own test); the admission bound is lifted because
// the test submits faster than runs are noticed finished.
func TestSweepHistoryBounded(t *testing.T) {
	ts, _ := newTestServerWith(t, nil, Config{SweepWorkers: 2, HistoryTTL: -1, MaxActiveSweeps: -1})
	spec := `{"ids":["fig5"],"fast":true,"base":{"Seed":11,"Shots":16,"Instances":2,"MaxDepth":2,"Fast":true}}`
	submit := func() string {
		resp, err := http.Post(ts.URL+"/sweeps", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var acc struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(body, &acc); err != nil || acc.ID == "" {
			t.Fatalf("submit: %s (%v)", body, err)
		}
		return acc.ID
	}
	waitFinished := func(id string) {
		deadline := time.Now().Add(30 * time.Second)
		for {
			_, body := get(t, ts.URL+"/sweeps/"+id)
			var st struct {
				Progress sweep.Progress `json:"progress"`
			}
			if err := json.Unmarshal(body, &st); err == nil && st.Progress.Finished {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("sweep %s did not finish", id)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	first := submit()
	waitFinished(first) // computed once; every later submission is a store hit
	var last string
	for i := 0; i < maxSweepHistory+10; i++ {
		last = submit()
	}
	waitFinished(last)
	// Give pruning one more trigger now that everything is finished.
	final := submit()
	waitFinished(final)
	if resp, _ := get(t, ts.URL+"/sweeps/"+first); resp.StatusCode != http.StatusNotFound {
		t.Errorf("oldest sweep still retained: %d", resp.StatusCode)
	}
	if resp, _ := get(t, ts.URL+"/sweeps/"+final); resp.StatusCode != http.StatusOK {
		t.Errorf("newest sweep pruned: %d", resp.StatusCode)
	}
}

// TestSweepSubmitFillsPartialBase: a partially-specified base gets unset
// fields defaulted per-field — it must never run (and checkpoint) a
// meaningless 0-shot configuration.
func TestSweepSubmitFillsPartialBase(t *testing.T) {
	ts := newTestServer(t, nil)
	resp, err := http.Post(ts.URL+"/sweeps", "application/json",
		strings.NewReader(`{"ids":["fig5"],"fast":true,"base":{"Fast":true}}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d: %s", resp.StatusCode, body)
	}
	var acc struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	_, body = get(t, ts.URL+acc.Status)
	var st struct {
		Cells []sweepCellState `json:"cells"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	want := experiments.FastOptions()
	if len(st.Cells) != 1 {
		t.Fatalf("cells = %+v", st.Cells)
	}
	c := st.Cells[0]
	if c.Shots != want.Shots || c.Instances != want.Instances || c.Seed != want.Seed {
		t.Errorf("partial base not defaulted: %+v (want shots=%d instances=%d seed=%d)",
			c, want.Shots, want.Instances, want.Seed)
	}
}
