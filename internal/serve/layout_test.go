package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"casq/internal/layout"
)

// TestLayoutEndpoint pins GET /backends/{id}/layout: first request
// compiles, the response carries a valid placement with search telemetry,
// and a repeat request answers from the same monitor (deterministically
// identical placement, no fresh drift counters).
func TestLayoutEndpoint(t *testing.T) {
	ts := newTestServer(t, nil)
	resp, body := get(t, ts.URL+"/backends/heavyhex29/layout?qubits=4&depth=2")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var got layoutBody
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Backend != "heavyhex29" || got.Qubits != 4 || got.Depth != 2 {
		t.Fatalf("echoed config %s/%d/%d", got.Backend, got.Qubits, got.Depth)
	}
	if len(got.Region) != 4 || len(got.Phys) != 4 || got.Score <= 0 {
		t.Fatalf("placement region=%v phys=%v score=%v", got.Region, got.Phys, got.Score)
	}
	if got.Threshold != layout.DefaultRecompileThreshold {
		t.Fatalf("threshold %v, want default %v", got.Threshold, layout.DefaultRecompileThreshold)
	}
	if got.Search == nil || got.Search.Enumerated == 0 || got.Search.ExactScored == 0 {
		t.Fatalf("search telemetry missing: %+v", got.Search)
	}

	resp2, body2 := get(t, ts.URL+"/backends/heavyhex29/layout?qubits=4&depth=2")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("repeat status = %d", resp2.StatusCode)
	}
	var again layoutBody
	if err := json.Unmarshal(body2, &again); err != nil {
		t.Fatal(err)
	}
	if again.Score != got.Score || again.Stats.Drifts != 0 {
		t.Fatalf("repeat request recompiled or drifted: %+v", again.Stats)
	}
}

// TestLayoutEndpointValidation pins the parameter guards.
func TestLayoutEndpointValidation(t *testing.T) {
	ts := newTestServer(t, nil)
	for path, want := range map[string]int{
		"/backends/nosuch/layout":                http.StatusNotFound,
		"/backends/heavyhex29/layout?qubit=4":    http.StatusBadRequest,
		"/backends/heavyhex29/layout?qubits=1":   http.StatusBadRequest,
		"/backends/heavyhex29/layout?qubits=99":  http.StatusBadRequest,
		"/backends/heavyhex29/layout?depth=0":    http.StatusBadRequest,
		"/backends/heavyhex29/layout?qubits=abc": http.StatusBadRequest,
		"/backends/heavyhex29/layout?qubits=4":   http.StatusOK,
	} {
		resp, body := get(t, ts.URL+path)
		if resp.StatusCode != want {
			t.Errorf("%s: status %d, want %d: %s", path, resp.StatusCode, want, body)
		}
	}
}

// postDrift posts one drift event and decodes the response.
func postDrift(t *testing.T, url, backend string, req driftRequest) (*http.Response, driftBody) {
	t.Helper()
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/backends/"+backend+"/drift", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body driftBody
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
	}
	return resp, body
}

// TestDriftEndpoint pins the service loop: small drifts are absorbed
// without recompiling, the counters accumulate across posts, and the
// healthz rollup sees the monitor.
func TestDriftEndpoint(t *testing.T) {
	ts := newTestServer(t, nil)
	req := driftRequest{Qubits: 4, Depth: 2, Seed: 5, Drift: 0.01}
	resp, body := postDrift(t, ts.URL, "heavyhex29", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if body.Decision == nil {
		t.Fatal("no decision in drift response")
	}
	if body.Decision.Recompiled {
		t.Fatalf("1%% drift recompiled: %+v", body.Decision)
	}
	if body.Stats.Drifts != 1 {
		t.Fatalf("stats after one drift: %+v", body.Stats)
	}
	req.Seed = 6
	if _, body = postDrift(t, ts.URL, "heavyhex29", req); body.Stats.Drifts != 2 {
		t.Fatalf("stats after two drifts: %+v", body.Stats)
	}

	_, health := get(t, ts.URL+"/healthz")
	var h struct {
		Layouts layoutCounts `json:"layouts"`
	}
	if err := json.Unmarshal(health, &h); err != nil {
		t.Fatal(err)
	}
	if h.Layouts.Monitors != 1 || h.Layouts.Drifts != 2 {
		t.Fatalf("healthz layout rollup %+v, want 1 monitor / 2 drifts", h.Layouts)
	}
}

// TestDriftEndpointValidation pins body and range guards.
func TestDriftEndpointValidation(t *testing.T) {
	ts := newTestServer(t, nil)
	if resp, _ := postDrift(t, ts.URL, "nosuch", driftRequest{Qubits: 4, Depth: 2, Drift: 0.1}); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown backend: status %d", resp.StatusCode)
	}
	for _, bad := range []driftRequest{
		{Qubits: 4, Depth: 2, Drift: 0},    // drift must be positive
		{Qubits: 4, Depth: 2, Drift: 2},    // beyond the magnitude cap
		{Qubits: 1, Depth: 2, Drift: 0.1},  // probe too narrow
		{Qubits: 4, Depth: 99, Drift: 0.1}, // probe too deep
	} {
		if resp, _ := postDrift(t, ts.URL, "heavyhex29", bad); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("request %+v: status %d, want 400", bad, resp.StatusCode)
		}
	}
	resp, err := http.Post(ts.URL+"/backends/heavyhex29/drift", "application/json",
		bytes.NewReader([]byte(`{"sede": 1}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", resp.StatusCode)
	}
}

// TestDriftRecompileObservable forces recompilation through the HTTP
// surface with a tight configured threshold and checks the event is
// visible in both the decision and the healthz rollup.
func TestDriftRecompileObservable(t *testing.T) {
	ts, _ := newTestServerWith(t, nil, Config{SweepWorkers: 1, RecompileThreshold: 1.0001})
	var recompiled bool
	var last driftBody
	for seed := int64(1); seed <= 20 && !recompiled; seed++ {
		resp, body := postDrift(t, ts.URL, "heavyhex29", driftRequest{Qubits: 4, Depth: 2, Seed: seed, Drift: 0.3})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: status %d", seed, resp.StatusCode)
		}
		last = body
		recompiled = body.Decision.Recompiled
	}
	if !recompiled {
		t.Fatal("compounding 30% drift never recompiled at threshold 1.0001")
	}
	if last.Stats.Recompiles < 1 {
		t.Fatalf("stats %+v, want a recompile", last.Stats)
	}
	_, health := get(t, ts.URL+"/healthz")
	var h struct {
		Layouts layoutCounts `json:"layouts"`
	}
	if err := json.Unmarshal(health, &h); err != nil {
		t.Fatal(err)
	}
	if h.Layouts.Recompiles < 1 {
		t.Fatalf("healthz rollup %+v, want >=1 recompile", h.Layouts)
	}
}
