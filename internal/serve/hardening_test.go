package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"casq/internal/experiments"
	"casq/internal/fabric"
	"casq/internal/store"
	"casq/internal/sweep"
)

// newGatedServer returns a server whose compute path blocks until the
// test sends on (or closes) the returned release channel — one receive
// per compute — so tests can hold sweeps in flight deterministically.
func newGatedServer(t *testing.T, cfg Config) (*httptest.Server, *Server, chan struct{}) {
	t.Helper()
	st, err := store.Open("", 64)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	cfg.Cache = &sweep.Cache{Store: st, Compute: func(id string, opts experiments.Options) (experiments.Figure, error) {
		<-release
		return experiments.Run(id, opts)
	}}
	srv := NewWith(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	// Runs first (LIFO): unblock any compute still gated so Close's drain
	// cannot hang a failing test.
	t.Cleanup(func() { close(release) })
	return ts, srv, release
}

func postSweep(t *testing.T, ts *httptest.Server, spec string) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+"/sweeps", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp
}

const oneCellSpec = `{"ids":["fig5"],"fast":true,"base":{"Seed":11,"Shots":16,"Instances":2,"MaxDepth":2,"Fast":true}}`

func waitSweepFinished(t *testing.T, ts *httptest.Server, id string) sweep.Progress {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, body := get(t, ts.URL+"/sweeps/"+id)
		var st struct {
			Progress sweep.Progress `json:"progress"`
		}
		if err := json.Unmarshal(body, &st); err == nil && st.Progress.Finished {
			return st.Progress
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s did not finish", id)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSweepEventsOrdering pins the SSE contract: one progress event per
// coalesced state change with strictly increasing ids and monotonically
// non-decreasing done counts, terminated by the snapshot whose finished
// field is true.
func TestSweepEventsOrdering(t *testing.T) {
	ts, _, release := newGatedServer(t, Config{SweepWorkers: 1})

	spec := `{"ids":["fig5"],"grid":{"seeds":[1,2,3]},"fast":true,
	          "base":{"Shots":16,"Instances":2,"MaxDepth":2,"Fast":true}}`
	if resp := postSweep(t, ts, spec); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}

	resp, err := http.Get(ts.URL + "/sweeps/sweep-1/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}

	type event struct {
		id       int
		progress sweep.Progress
	}
	events := make(chan event)
	readErr := make(chan error, 1)
	go func() {
		defer close(events)
		sc := bufio.NewScanner(resp.Body)
		cur := event{}
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "id: "):
				cur.id, _ = strconv.Atoi(strings.TrimPrefix(line, "id: "))
			case strings.HasPrefix(line, "data: "):
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.progress); err != nil {
					readErr <- err
					return
				}
				events <- cur
			}
		}
		readErr <- sc.Err()
	}()

	// Release the three computes one at a time while the stream is live.
	go func() {
		for i := 0; i < 3; i++ {
			release <- struct{}{}
		}
	}()

	var got []event
	deadline := time.After(30 * time.Second)
	for events != nil {
		select {
		case ev, ok := <-events:
			if !ok {
				events = nil
				break
			}
			got = append(got, ev)
		case <-deadline:
			t.Fatalf("stream did not finish; got %d events", len(got))
		}
	}
	if err := <-readErr; err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if len(got) == 0 {
		t.Fatal("no events")
	}
	lastID, lastDone := 0, -1
	for i, ev := range got {
		if ev.id <= lastID {
			t.Errorf("event %d: id %d not increasing (prev %d)", i, ev.id, lastID)
		}
		if ev.progress.Done < lastDone {
			t.Errorf("event %d: done %d went backwards (prev %d)", i, ev.progress.Done, lastDone)
		}
		if ev.progress.Finished && i != len(got)-1 {
			t.Errorf("event %d: finished snapshot before end of stream", i)
		}
		lastID, lastDone = ev.id, ev.progress.Done
	}
	final := got[len(got)-1].progress
	if !final.Finished || final.Done != 3 || final.Failed != 0 {
		t.Errorf("final progress = %+v", final)
	}
}

func TestSweepEventsUnknownSweep(t *testing.T) {
	ts := newTestServer(t, nil)
	resp, _ := get(t, ts.URL+"/sweeps/sweep-404/events")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

// TestFigureRateLimit pins the overload contract on figure endpoints:
// beyond the token-bucket burst, 429 with a Retry-After hint — and the
// limit scopes to figures only, never the control plane.
func TestFigureRateLimit(t *testing.T) {
	ts, _ := newTestServerWith(t, nil, Config{SweepWorkers: 2, FigureRPS: 1, FigureBurst: 1})
	url := ts.URL + "/figures/fig5?fast=1&shots=16&instances=2&maxdepth=2"

	resp, body := get(t, url)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request status = %d: %s", resp.StatusCode, body)
	}
	resp, body = get(t, url)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request status = %d: %s", resp.StatusCode, body)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Errorf("Retry-After = %q", resp.Header.Get("Retry-After"))
	}
	// Control-plane endpoints stay reachable under figure overload.
	for _, path := range []string{"/experiments", "/healthz", "/sweeps"} {
		if resp, _ := get(t, ts.URL+path); resp.StatusCode != http.StatusOK {
			t.Errorf("%s status under figure limit = %d", path, resp.StatusCode)
		}
	}
}

// TestSweepAdmissionBounded pins bounded admission: submissions beyond
// MaxActiveSweeps get 429 until a run finishes, then admit again.
func TestSweepAdmissionBounded(t *testing.T) {
	ts, _, release := newGatedServer(t, Config{SweepWorkers: 1, MaxActiveSweeps: 1})

	if resp := postSweep(t, ts, oneCellSpec); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit status = %d", resp.StatusCode)
	}
	resp := postSweep(t, ts, oneCellSpec)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit submit status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	release <- struct{}{} // let the first sweep finish
	waitSweepFinished(t, ts, "sweep-1")
	// Same cell: the resubmission is a store hit, no gate needed.
	if resp := postSweep(t, ts, oneCellSpec); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-finish submit status = %d", resp.StatusCode)
	}
	waitSweepFinished(t, ts, "sweep-2")
}

// TestCloseDrains pins graceful shutdown: during Close, new submissions
// get 503 while the in-flight sweep runs to completion.
func TestCloseDrains(t *testing.T) {
	ts, srv, release := newGatedServer(t, Config{SweepWorkers: 1})

	if resp := postSweep(t, ts, oneCellSpec); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	closed := make(chan struct{})
	go func() { srv.Close(); close(closed) }()

	// Wait until the server reports draining, then verify submissions are
	// refused while the in-flight sweep is still incomplete.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, body := get(t, ts.URL+"/healthz")
		var h struct {
			Draining bool `json:"draining"`
		}
		if json.Unmarshal(body, &h) == nil && h.Draining {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never reported draining")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if resp := postSweep(t, ts, oneCellSpec); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503", resp.StatusCode)
	}

	release <- struct{}{}
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return after drain")
	}
	if p := waitSweepFinished(t, ts, "sweep-1"); p.Done != 1 || p.Failed != 0 {
		t.Errorf("drained sweep progress = %+v", p)
	}
}

// TestSweepListEndpoint pins GET /sweeps: every retained sweep in
// submission order with its live progress.
func TestSweepListEndpoint(t *testing.T) {
	ts := newTestServer(t, nil)
	for i := 0; i < 2; i++ {
		if resp := postSweep(t, ts, oneCellSpec); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d status = %d", i, resp.StatusCode)
		}
	}
	waitSweepFinished(t, ts, "sweep-2")
	_, body := get(t, ts.URL+"/sweeps")
	var list []struct {
		ID        string         `json:"id"`
		Submitted time.Time      `json:"submitted"`
		Progress  sweep.Progress `json:"progress"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatalf("list: %v: %s", err, body)
	}
	if len(list) != 2 || list[0].ID != "sweep-1" || list[1].ID != "sweep-2" {
		t.Fatalf("list = %+v", list)
	}
	for _, e := range list {
		if e.Progress.Total != 1 || e.Submitted.IsZero() {
			t.Errorf("entry = %+v", e)
		}
	}
}

// TestSweepHistoryTTLRetention pins the satellite fix: with a live TTL,
// a finished sweep stays queryable past the history cap — clients that
// just submitted can still read the status URL they were handed.
func TestSweepHistoryTTLRetention(t *testing.T) {
	ts, _ := newTestServerWith(t, nil, Config{SweepWorkers: 2, HistoryTTL: time.Hour, MaxActiveSweeps: -1})
	submit := func() {
		if resp := postSweep(t, ts, oneCellSpec); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit status = %d", resp.StatusCode)
		}
	}
	submit()
	waitSweepFinished(t, ts, "sweep-1")
	for i := 0; i < maxSweepHistory+10; i++ {
		submit()
	}
	if resp, _ := get(t, ts.URL+"/sweeps/sweep-1"); resp.StatusCode != http.StatusOK {
		t.Errorf("finished sweep pruned inside its TTL: %d", resp.StatusCode)
	}
}

// TestHealthzCounters pins the observability satellite: per-endpoint
// request counters, store stats (with backend and put counters), and
// sweep retention counts on /healthz.
func TestHealthzCounters(t *testing.T) {
	ts := newTestServer(t, nil)
	get(t, ts.URL+"/experiments")
	get(t, ts.URL+"/experiments")
	postSweep(t, ts, oneCellSpec)
	waitSweepFinished(t, ts, "sweep-1")

	_, body := get(t, ts.URL+"/healthz")
	var h struct {
		OK       bool              `json:"ok"`
		Draining bool              `json:"draining"`
		Store    store.Stats       `json:"store"`
		Requests map[string]uint64 `json:"requests"`
		Sweeps   struct {
			Active   int `json:"active"`
			Retained int `json:"retained"`
		} `json:"sweeps"`
	}
	if err := json.Unmarshal(body, &h); err != nil || !h.OK || h.Draining {
		t.Fatalf("health = %s (%v)", body, err)
	}
	if h.Requests["experiments"] != 2 {
		t.Errorf("experiments counter = %d", h.Requests["experiments"])
	}
	if h.Requests["sweeps.submit"] != 1 || h.Requests["sweeps.status"] == 0 {
		t.Errorf("sweep counters = %v", h.Requests)
	}
	if h.Store.Backend != "none" || h.Store.Puts != 1 {
		t.Errorf("store stats = %+v", h.Store)
	}
	if h.Sweeps.Active != 0 || h.Sweeps.Retained != 1 {
		t.Errorf("sweep counts = %+v", h.Sweeps)
	}
}

// TestServeWithCoordinator is the serve-layer integration of the fabric:
// a server with an attached coordinator routes sweep submissions to the
// worker fleet, streams their progress over SSE, and reports fleet stats
// on /healthz — while figure requests answer from the same shared store
// the workers write through.
func TestServeWithCoordinator(t *testing.T) {
	st, err := store.Open("", 64)
	if err != nil {
		t.Fatal(err)
	}
	coord := fabric.NewCoordinator(st, fabric.Options{LeaseTTL: 2 * time.Second})
	defer coord.Close()
	srv := NewWith(Config{Cache: sweep.NewCache(st), Coordinator: coord})
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 2; i++ {
		w := fabric.NewWorker(ts.URL, 16)
		w.ID = fmt.Sprintf("w%d", i)
		w.Poll = 20 * time.Millisecond
		go w.Run(ctx)
	}

	spec := `{"ids":["fig5","table1"],"grid":{"seeds":[1,2]},"fast":true,
	          "base":{"Shots":16,"Instances":2,"MaxDepth":2,"Fast":true}}`
	resp := postSweep(t, ts, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	p := waitSweepFinished(t, ts, "sweep-1")
	if p.Done != 4 || p.Failed != 0 {
		t.Fatalf("distributed progress = %+v", p)
	}

	// The workers wrote through the shared store: the server's own figure
	// path is now a pure hit.
	resp, _ = get(t, ts.URL+"/figures/fig5?fast=1&shots=16&instances=2&maxdepth=2&seed=1")
	if h := resp.Header.Get("X-Casq-Cache"); h != "hit" {
		t.Errorf("post-sweep figure request = %q, want hit", h)
	}

	_, body := get(t, ts.URL+"/healthz")
	var h struct {
		Fabric *fabric.Stats `json:"fabric"`
	}
	if err := json.Unmarshal(body, &h); err != nil || h.Fabric == nil {
		t.Fatalf("healthz fabric stats = %s (%v)", body, err)
	}
	if h.Fabric.Completes != 4 || h.Fabric.Workers == 0 {
		t.Errorf("fabric stats = %+v", h.Fabric)
	}
}
