package serve

import (
	"bytes"
	"net/http"
	"strings"
	"testing"

	"casq/internal/obs"
)

// TestMetricsEndpoint pins GET /metrics: after a figure request and a
// layout compile, the exposition parses as valid Prometheus text and
// carries non-zero serve request counters, a figure latency histogram,
// and the engine-layer families (store, exec, layout, sweep) from the
// process-wide default registry.
func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t, nil)
	if resp, _ := get(t, ts.URL+"/figures/fig3c?fast=1&shots=16&instances=2&maxdepth=2"); resp.StatusCode != http.StatusOK {
		t.Fatalf("figure status = %d", resp.StatusCode)
	}
	if resp, _ := get(t, ts.URL+"/backends/heavyhex29/layout?qubits=4&depth=2"); resp.StatusCode != http.StatusOK {
		t.Fatalf("layout status = %d", resp.StatusCode)
	}

	resp, body := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	samples, err := obs.ParseProm(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, body)
	}

	value := func(name, label string) (float64, bool) {
		for _, s := range samples {
			if s.Name != name {
				continue
			}
			if label == "" || s.Label("endpoint") == label || s.Label("state") == label ||
				s.Label("result") == label || s.Label("tier") == label {
				return s.Value, true
			}
		}
		return 0, false
	}

	// Per-endpoint serve counters from the server's own registry.
	if v, ok := value("casq_serve_requests_total", "figures"); !ok || v != 1 {
		t.Errorf("figures request counter = %v, %v", v, ok)
	}
	// The figure latency histogram has a populated _count.
	if v, ok := value("casq_serve_request_seconds_count", "figures"); !ok || v != 1 {
		t.Errorf("figures latency count = %v, %v", v, ok)
	}

	// Engine-layer families on the default registry. These are process
	// globals shared across tests, so assert presence and non-zero rather
	// than exact values.
	for _, name := range []string{
		"casq_store_hits_total", "casq_store_misses_total", "casq_store_puts_total",
		"casq_exec_jobs_total", "casq_exec_instances_total", "casq_exec_shots_total",
		"casq_layout_searches_total",
	} {
		if _, ok := value(name, ""); !ok {
			t.Errorf("family %s missing from /metrics", name)
		}
	}
	if v, ok := value("casq_exec_shots_total", ""); !ok || v <= 0 {
		t.Errorf("exec shots counter = %v, %v (figure request must have simulated shots)", v, ok)
	}
	if v, ok := value("casq_layout_tier_seconds_count", "exact"); !ok || v <= 0 {
		t.Errorf("layout exact-tier histogram count = %v, %v", v, ok)
	}
}

// TestMetricsServerIsolation: per-endpoint request counters live on the
// server's own registry, so a second server starts from zero even after
// another instance in the same process has served traffic.
func TestMetricsServerIsolation(t *testing.T) {
	ts1 := newTestServer(t, nil)
	get(t, ts1.URL+"/experiments")
	get(t, ts1.URL+"/experiments")

	ts2 := newTestServer(t, nil)
	_, body := get(t, ts2.URL+"/metrics")
	samples, err := obs.ParseProm(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if s.Name == "casq_serve_requests_total" && s.Label("endpoint") == "experiments" && s.Value != 0 {
			t.Errorf("fresh server reports %v experiments requests (leaked across instances)", s.Value)
		}
	}
}
