package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"casq/internal/device"
	"casq/internal/experiments"
	"casq/internal/store"
	"casq/internal/sweep"
)

func backendTestServer(t *testing.T, compute sweep.Compute) *Server {
	t.Helper()
	st, err := store.Open("", 0)
	if err != nil {
		t.Fatal(err)
	}
	s := New(&sweep.Cache{Store: st, Compute: compute}, 1)
	t.Cleanup(s.Close)
	return s
}

// TestBackendsEndpoint pins GET /backends: the full registry, in size
// order, with qubit counts.
func TestBackendsEndpoint(t *testing.T) {
	s := backendTestServer(t, nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/backends", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var got []device.BackendInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(device.Backends()) {
		t.Fatalf("served %d backends, registry has %d", len(got), len(device.Backends()))
	}
	names := map[string]int{}
	for _, b := range got {
		names[b.Name] = b.NQubits
	}
	if names["heavyhex127"] != 127 {
		t.Errorf("heavyhex127 served as %d qubits", names["heavyhex127"])
	}
}

// TestFigureBackendParam pins the backend query parameter: it reaches the
// compute layer, distinguishes cache entries, and unknown/unsupported
// backends are 4xx before anything is computed or cached.
func TestFigureBackendParam(t *testing.T) {
	var gotBackend []string
	s := backendTestServer(t, func(id string, opts experiments.Options) (experiments.Figure, error) {
		gotBackend = append(gotBackend, opts.Backend)
		return experiments.Figure{ID: id}, nil
	})
	h := s.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/figures/fig6?backend=heavyhex29&fast=1", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("X-Casq-Cache") != "miss" {
		t.Error("first request should miss")
	}
	if len(gotBackend) != 1 || gotBackend[0] != "heavyhex29" {
		t.Fatalf("compute saw backends %v", gotBackend)
	}

	// Same figure without the backend is a different cache entry.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/figures/fig6?fast=1", nil))
	if rec.Header().Get("X-Casq-Cache") != "miss" {
		t.Error("default-backend request must not reuse the backend entry")
	}

	// Repeat of the backend request hits.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/figures/fig6?backend=heavyhex29&fast=1", nil))
	if rec.Header().Get("X-Casq-Cache") != "hit" {
		t.Error("repeat backend request should hit")
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/figures/fig6?backend=bogus", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("unknown backend: status %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/figures/fig5?backend=heavyhex29", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("fig5 with an undeclared backend must be a 400 client error, got %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/figures/fig6?engine=warp", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("unknown engine must be a 400 client error, got %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/figures/fig5?engine=stab", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("fig5 with an undeclared engine must be a 400 client error, got %d", rec.Code)
	}
	if calls := len(gotBackend); calls != 2 {
		t.Errorf("compute ran %d times, want 2 (bad requests must not compute)", calls)
	}
}
