package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"casq/internal/experiments"
)

// TestCorrelationsCachedSecondRequest pins the endpoint's caching
// contract: the same diagnostic requested twice is served bit-identically
// the second time, straight from the content-addressed store.
func TestCorrelationsCachedSecondRequest(t *testing.T) {
	ts := newTestServer(t, nil)
	url := ts.URL + "/backends/line6/correlations?fast=1&shots=256&instances=2&seed=5"

	resp1, body1 := get(t, url)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp1.StatusCode, body1)
	}
	if h := resp1.Header.Get("X-Casq-Cache"); h != "miss" {
		t.Errorf("first request cache header = %q", h)
	}
	resp2, body2 := get(t, url)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second status = %d: %s", resp2.StatusCode, body2)
	}
	if h := resp2.Header.Get("X-Casq-Cache"); h != "hit" {
		t.Errorf("second request cache header = %q", h)
	}
	if !bytes.Equal(body1, body2) {
		t.Error("cached response not bit-identical")
	}
	var rep experiments.CorrelationReport
	if err := json.Unmarshal(body2, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Backend != "line6" || rep.Strategy != "twirled" || rep.NQubits != 6 {
		t.Errorf("served report identity = %+v", rep)
	}
	if len(rep.FlipRates) != 6 || rep.Shots < 256 {
		t.Errorf("served report payload = %+v", rep)
	}

	// A different strategy is a different address: cache misses again.
	resp3, body3 := get(t, url+"&strategy=ca-dd")
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("strategy request status = %d: %s", resp3.StatusCode, body3)
	}
	if h := resp3.Header.Get("X-Casq-Cache"); h != "miss" {
		t.Errorf("distinct strategy cache header = %q", h)
	}
	if bytes.Equal(body1, body3) {
		t.Error("distinct strategies served identical payloads")
	}
}

// TestCorrelationsEngineParam checks the endpoint honors engine=: the
// stabilizer-engine report differs from the statevector one (different
// sampling paths), both succeed on a small backend, and "statevector" is
// normalized to the default engine's cache address.
func TestCorrelationsEngineParam(t *testing.T) {
	ts := newTestServer(t, nil)
	base := ts.URL + "/backends/line6/correlations?fast=1&shots=256&instances=2&seed=5"

	_, bodyDefault := get(t, base)
	respStab, bodyStab := get(t, base+"&engine=stab")
	if respStab.StatusCode != http.StatusOK {
		t.Fatalf("engine=stab status = %d: %s", respStab.StatusCode, bodyStab)
	}
	var rep experiments.CorrelationReport
	if err := json.Unmarshal(bodyStab, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Engine != "stab" {
		t.Errorf("engine=stab report records engine %q", rep.Engine)
	}
	if bytes.Equal(bodyDefault, bodyStab) {
		t.Error("stab and statevector reports are byte-identical; engine param ignored?")
	}
	// engine=statevector spells the same computation as the default: hit.
	respSv, _ := get(t, base+"&engine=statevector")
	if h := respSv.Header.Get("X-Casq-Cache"); h != "hit" {
		t.Errorf("engine=statevector after default request: cache header = %q, want hit", h)
	}
	// An explicit statevector request beyond the amplitude limit is the
	// client's mistake: 400, not a compute-path 500.
	resp, body := get(t, ts.URL+"/backends/heavyhex127/correlations?engine=statevector")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("statevector on 127q: status = %d: %s", resp.StatusCode, body)
	}
}

// TestCorrelationsErrors checks the endpoint's rejection paths: unknown
// backends 404, unknown parameters / strategies / engines 400.
func TestCorrelationsErrors(t *testing.T) {
	ts := newTestServer(t, nil)
	for _, tc := range []struct {
		url  string
		want int
	}{
		{"/backends/nosuch/correlations", http.StatusNotFound},
		{"/backends/line6/correlations?shot=16", http.StatusBadRequest},
		{"/backends/line6/correlations?maxdepth=2", http.StatusBadRequest},
		{"/backends/line6/correlations?strategy=nosuch&fast=1&shots=64&instances=2", http.StatusBadRequest},
		{"/backends/line6/correlations?engine=nosuch", http.StatusBadRequest},
		{"/backends/line6/correlations?shots=-1", http.StatusBadRequest},
		{"/backends/line6/correlations?seed=abc", http.StatusBadRequest},
		{"/backends/line6/correlations?fast=2", http.StatusBadRequest},
	} {
		resp, body := get(t, ts.URL+tc.url)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d: %s", tc.url, resp.StatusCode, tc.want, body)
		}
	}
}
