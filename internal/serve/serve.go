// Package serve exposes the experiment catalog over HTTP, turning the
// repository from a batch tool into a result service. Figure requests go
// through the sweep.Cache, so the first request for a configuration
// computes and checkpoints it and every later request streams the
// checkpointed JSON bytes back unchanged; sweep submissions run
// asynchronously — in-process on the sweep.Runner, or sharded across a
// worker fleet when a fabric.Coordinator is attached — and report live
// progress, including a Server-Sent-Events stream per sweep.
//
// The server is hardened for heavy traffic: figure endpoints sit behind a
// token-bucket rate limiter (429 + Retry-After under overload), sweep
// admission is bounded so a submission flood cannot pile up unbounded
// background work, and Close drains in-flight sweeps — returning 503 for
// new submissions — instead of dropping work.
//
// Routes:
//
//	GET  /experiments        catalog of declarative experiment Specs
//	GET  /backends           the named device registry (sizes, families)
//	GET  /backends/{id}/correlations
//	                         error-correlation spectroscopy diagnostic:
//	                         the thresholded flip-correlation matrix of a
//	                         full-device Ramsey probe (seed, shots,
//	                         instances, fast, strategy, engine); cached,
//	                         X-Casq-Cache hit or miss
//	GET  /backends/{id}/layout
//	                         deployed placement of the standard path probe
//	                         (qubits, depth): region, exact score, search
//	                         telemetry, drift-monitor stats; compiled on
//	                         first request
//	POST /backends/{id}/drift
//	                         perturb the monitor's calibration (seed,
//	                         drift, qubits, depth as JSON) and report the
//	                         decision: absorbed, exact-checked, recompiled
//	GET  /figures/{id}       one figure; options via query parameters
//	                         (seed, shots, instances, maxdepth, fast,
//	                         backend, engine); X-Casq-Cache hit or miss
//	POST /sweeps             submit a sweep.Spec as JSON; returns 202 + id
//	GET  /sweeps             all retained sweeps with their progress
//	GET  /sweeps/{id}        progress of a submitted sweep
//	GET  /sweeps/{id}/events SSE stream of progress snapshots
//	GET  /healthz            liveness, store counters, request counters,
//	                         and fabric fleet stats when attached
//	GET  /metrics            Prometheus text exposition: per-endpoint
//	                         request counters + latency histograms, plus
//	                         the process-wide engine metrics (store, exec,
//	                         layout, sweep, fabric)
//	GET  /debug/pprof/*      net/http/pprof profiling (opt-in: Config.PProf
//	                         / `casq serve -pprof`)
//	POST /fabric/claim       (coordinator mode) worker cell claim
//	POST /fabric/heartbeat   (coordinator mode) lease keep-alive
//	POST /fabric/complete    (coordinator mode) cell completion
//	GET/PUT /store/{key}     (coordinator mode) the shared result store
//
// The `casq serve` and `casq fabric coordinator` subcommands wire this
// handler to a listening socket.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"casq/internal/device"
	"casq/internal/exec"
	"casq/internal/experiments"
	"casq/internal/fabric"
	"casq/internal/obs"
	"casq/internal/store"
	"casq/internal/sweep"
)

// Defaults for Config fields left zero.
const (
	// DefaultMaxActiveSweeps bounds concurrently unfinished sweeps.
	DefaultMaxActiveSweeps = 32
	// DefaultHistoryTTL keeps finished sweeps queryable after the history
	// cap is reached.
	DefaultHistoryTTL = 2 * time.Minute
	// DefaultDrainTimeout bounds how long Close waits for in-flight
	// sweeps before giving up and cancelling them.
	DefaultDrainTimeout = 30 * time.Second
)

// maxSweepHistory bounds retained sweep runs: beyond it, the oldest
// finished runs older than the history TTL are forgotten (their results
// stay checkpointed in the store — only the progress handle goes away).
// Running sweeps are never pruned; hardSweepHistory is the flood
// backstop past which the TTL no longer protects finished runs.
const (
	maxSweepHistory  = 128
	hardSweepHistory = 8 * maxSweepHistory
)

// Config assembles a Server. Zero fields take the documented defaults.
type Config struct {
	// Cache answers figure requests and computes sweep cells (required).
	Cache *sweep.Cache
	// SweepWorkers bounds in-process sweep concurrency (0 = GOMAXPROCS).
	// Ignored when a Coordinator is attached.
	SweepWorkers int
	// Coordinator, when non-nil, runs sweeps on the distributed fabric
	// instead of in-process, and mounts the worker + shared-store
	// endpoints on this server.
	Coordinator *fabric.Coordinator
	// FigureRPS rate-limits /figures/{id} with a token bucket refilled at
	// this rate (0 = unlimited).
	FigureRPS float64
	// FigureBurst is the bucket depth (0 = 2×FigureRPS, min 1).
	FigureBurst int
	// MaxActiveSweeps bounds concurrently unfinished sweeps; submissions
	// beyond it get 429 (0 = DefaultMaxActiveSweeps, <0 = unlimited).
	MaxActiveSweeps int
	// HistoryTTL keeps finished sweeps queryable for this long once the
	// history cap is hit (0 = DefaultHistoryTTL, <0 = prune immediately).
	HistoryTTL time.Duration
	// DrainTimeout bounds Close's wait for in-flight sweeps
	// (0 = DefaultDrainTimeout, <0 = do not wait).
	DrainTimeout time.Duration
	// RecompileThreshold tunes the drift monitors behind
	// /backends/{id}/drift: a drifted placement is recompiled when its
	// exact score exceeds this ratio of the deployed baseline
	// (0 = layout.DefaultRecompileThreshold).
	RecompileThreshold float64
	// Tracer, when non-nil, records spans for in-process sweep cells (and
	// everything compiled/simulated under them). Nil disables tracing at
	// zero cost.
	Tracer *obs.Tracer
	// PProf mounts the net/http/pprof profiling endpoints under
	// /debug/pprof/ when true. Off by default: profiling handlers expose
	// heap and goroutine internals and cost CPU while sampling, so they
	// are opt-in (`casq serve -pprof`).
	PProf bool
}

// runHandle abstracts a scheduled sweep; the in-process sweep.Run and
// the fabric coordinator's distributed Sweep both satisfy it, which is
// what lets every progress surface (status, list, SSE, drain) treat the
// two identically.
type runHandle interface {
	Cells() []sweep.Cell
	States() []sweep.CellState
	Progress() sweep.Progress
	Changed() <-chan struct{}
	Done() <-chan struct{}
	TraceID() uint64
}

// sweepRecord tracks one retained sweep.
type sweepRecord struct {
	run        runHandle
	submitted  time.Time
	finishedAt time.Time // zero while running; set by the watcher
}

// Server serves the experiment catalog, cached figures, and sweeps. Use
// New or NewWith; the zero value is not usable.
type Server struct {
	cache    *sweep.Cache
	runner   *sweep.Runner
	coord    *fabric.Coordinator
	limiter  *tokenBucket
	maxRuns  int
	ttl      time.Duration
	drainFor time.Duration

	ctx    context.Context // governs background sweeps
	cancel context.CancelFunc

	// reg is the server's own metrics registry: per-endpoint request
	// counters and latency histograms live here (not on the process-wide
	// default registry) so each Server instance — including every test
	// server — observes exactly its own traffic. GET /metrics writes this
	// registry followed by obs.Default(), which carries the engine-layer
	// families (store, exec, layout, sweep, fabric).
	reg        *obs.Registry
	reqCount   *obs.CounterVec
	reqSeconds *obs.HistogramVec
	pprof      bool

	mu       sync.Mutex
	sweeps   map[string]*sweepRecord
	order    []string // sweep ids in submission order, for history pruning
	seq      int
	draining bool

	// Drift-monitor registry behind /backends/{id}/layout and /drift,
	// under its own lock: monitor compiles and drift decisions run layout
	// searches and must not stall the sweep/figure surfaces.
	layoutMu           sync.Mutex
	layouts            map[string]*layoutRecord
	recompileThreshold float64

	closeOnce sync.Once
}

// New returns a server answering from the cache; sweepWorkers bounds the
// concurrency of submitted sweeps (0 = GOMAXPROCS).
func New(cache *sweep.Cache, sweepWorkers int) *Server {
	return NewWith(Config{Cache: cache, SweepWorkers: sweepWorkers})
}

// NewWith returns a server assembled from an explicit Config.
func NewWith(cfg Config) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	maxRuns := cfg.MaxActiveSweeps
	switch {
	case maxRuns == 0:
		maxRuns = DefaultMaxActiveSweeps
	case maxRuns < 0:
		maxRuns = math.MaxInt
	}
	ttl := cfg.HistoryTTL
	switch {
	case ttl == 0:
		ttl = DefaultHistoryTTL
	case ttl < 0:
		ttl = 0
	}
	drain := cfg.DrainTimeout
	switch {
	case drain == 0:
		drain = DefaultDrainTimeout
	case drain < 0:
		drain = 0
	}
	var limiter *tokenBucket
	if cfg.FigureRPS > 0 {
		burst := cfg.FigureBurst
		if burst <= 0 {
			burst = int(2 * cfg.FigureRPS)
			if burst < 1 {
				burst = 1
			}
		}
		limiter = newTokenBucket(cfg.FigureRPS, burst)
	}
	reg := obs.NewRegistry()
	return &Server{
		cache:    cfg.Cache,
		runner:   &sweep.Runner{Cache: cfg.Cache, Workers: cfg.SweepWorkers, Tracer: cfg.Tracer},
		coord:    cfg.Coordinator,
		limiter:  limiter,
		maxRuns:  maxRuns,
		ttl:      ttl,
		drainFor: drain,
		ctx:      ctx,
		cancel:   cancel,
		sweeps:   map[string]*sweepRecord{},

		reg: reg,
		reqCount: reg.CounterVec("casq_serve_requests_total",
			"HTTP requests handled, by endpoint.", "endpoint"),
		reqSeconds: reg.HistogramVec("casq_serve_request_seconds",
			"HTTP request latency, by endpoint.", "endpoint", nil),
		pprof: cfg.PProf,

		layouts:            map[string]*layoutRecord{},
		recompileThreshold: cfg.RecompileThreshold,
	}
}

// Close drains the server: new sweep submissions are refused with 503
// while in-flight sweeps run to completion (bounded by the configured
// drain timeout), then background work is cancelled. Cells already
// checkpointed stay in the store either way, so a later server over the
// same store resumes whatever the drain window missed.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.draining = true
		s.refreshLocked(time.Now())
		active := make([]runHandle, 0, len(s.sweeps))
		for _, rec := range s.sweeps {
			if rec.finishedAt.IsZero() {
				active = append(active, rec.run)
			}
		}
		s.mu.Unlock()

		deadline := time.After(s.drainFor)
		for _, run := range active {
			select {
			case <-run.Done():
			case <-deadline:
				s.cancel()
				return
			}
		}
		s.cancel()
	})
}

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /experiments", s.counted("experiments", s.handleExperiments))
	mux.HandleFunc("GET /backends", s.counted("backends", s.handleBackends))
	mux.HandleFunc("GET /backends/{id}/correlations", s.counted("backends.correlations", s.handleCorrelations))
	mux.HandleFunc("GET /backends/{id}/layout", s.counted("backends.layout", s.handleLayout))
	mux.HandleFunc("POST /backends/{id}/drift", s.counted("backends.drift", s.handleDrift))
	mux.HandleFunc("GET /figures/{id}", s.counted("figures", s.handleFigure))
	mux.HandleFunc("POST /sweeps", s.counted("sweeps.submit", s.handleSweepSubmit))
	mux.HandleFunc("GET /sweeps", s.counted("sweeps.list", s.handleSweepList))
	mux.HandleFunc("GET /sweeps/{id}", s.counted("sweeps.status", s.handleSweepStatus))
	mux.HandleFunc("GET /sweeps/{id}/events", s.counted("sweeps.events", s.handleSweepEvents))
	mux.HandleFunc("GET /healthz", s.counted("healthz", s.handleHealth))
	mux.HandleFunc("GET /metrics", s.counted("metrics", s.handleMetrics))
	if s.coord != nil {
		ch := s.coord.Handler()
		mux.Handle("/fabric/", ch)
		mux.Handle("/store/", ch)
	}
	if s.pprof {
		// Mount the handlers explicitly instead of blank-importing the
		// package, which would register them on DefaultServeMux for every
		// binary linking serve — profiling stays opt-in per server.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// counted wraps a handler with its per-endpoint request counter and
// latency histogram on the server registry (scraped from /metrics; the
// counters also surface on /healthz). The counter and histogram children
// are resolved once here, so the per-request cost is two atomic bumps —
// no lock, no map lookup. The counter increments before the handler runs
// (a request is "handled" the moment it is routed, so /healthz reports
// its own in-flight request); the histogram observes after, when the
// duration is known.
func (s *Server) counted(name string, h http.HandlerFunc) http.HandlerFunc {
	hits := s.reqCount.With(name)
	seconds := s.reqSeconds.With(name)
	return func(w http.ResponseWriter, r *http.Request) {
		hits.Inc()
		start := time.Now()
		h(w, r)
		seconds.Observe(time.Since(start).Seconds())
	}
}

// handleMetrics serves the Prometheus text exposition: the server's own
// registry (request counters and latency histograms) followed by the
// process-wide default registry (store, exec, layout, sweep and fabric
// families recorded by the engine layers).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
	obs.Default().WritePrometheus(w)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, experiments.Catalog())
}

func (s *Server) handleBackends(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, device.Backends())
}

// figureParams is the accepted /figures/{id} query vocabulary. Unknown
// parameters are rejected rather than ignored: a typo (shot= for shots=)
// must not silently serve — and cache — a different configuration.
var figureParams = map[string]bool{
	"seed": true, "shots": true, "instances": true, "maxdepth": true, "fast": true,
	"backend": true, "engine": true,
}

// figureOptions binds the request's query parameters to run Options:
// fast=1 starts from FastOptions (reduced axes), everything else from
// DefaultOptions, with seed/shots/instances/maxdepth overriding per field.
func figureOptions(r *http.Request) (experiments.Options, error) {
	q := r.URL.Query()
	opts := experiments.DefaultOptions()
	for name := range q {
		if !figureParams[name] {
			return opts, fmt.Errorf("unknown parameter %q (known: backend, engine, fast, instances, maxdepth, seed, shots)", name)
		}
	}
	if fast, err := boolParam(q.Get("fast")); err != nil {
		return opts, fmt.Errorf("fast: %w", err)
	} else if fast {
		opts = experiments.FastOptions()
	}
	for _, p := range []struct {
		name string
		dst  *int
	}{
		{"shots", &opts.Shots},
		{"instances", &opts.Instances},
		{"maxdepth", &opts.MaxDepth},
	} {
		if v := q.Get(p.name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return opts, fmt.Errorf("%s: not a non-negative integer: %q", p.name, v)
			}
			*p.dst = n
		}
	}
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return opts, fmt.Errorf("seed: not an integer: %q", v)
		}
		opts.Seed = n
	}
	if v := q.Get("backend"); v != "" {
		if _, ok := device.LookupBackend(v); !ok {
			return opts, fmt.Errorf("backend: unknown %q (see /backends)", v)
		}
		opts.Backend = v
	}
	if v := q.Get("engine"); v != "" {
		if !exec.ValidEngine(v) {
			return opts, fmt.Errorf("engine: unknown %q (known: %v)", v, exec.EngineNames())
		}
		opts.Engine = v
	}
	return opts, nil
}

func boolParam(v string) (bool, error) {
	switch v {
	case "", "0", "false":
		return false, nil
	case "1", "true":
		return true, nil
	}
	return false, fmt.Errorf("not a boolean: %q", v)
}

func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	if s.limiter != nil {
		if retryAfter, limited := s.limiter.take(time.Now()); limited {
			w.Header().Set("Retry-After", strconv.Itoa(retrySeconds(retryAfter)))
			writeError(w, http.StatusTooManyRequests, "figure rate limit exceeded; retry after %s", retryAfter.Round(time.Millisecond))
			return
		}
	}
	id := r.PathValue("id")
	sp, ok := experiments.Lookup(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown experiment %q (see /experiments)", id)
		return
	}
	opts, err := figureOptions(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// A known backend or engine the figure does not declare is the
	// client's mistake, not a server fault — reject before the compute
	// path turns it into a 500 (or, worse for the engine, a silently
	// statevector-computed figure cached under an engine-qualified key).
	if !sp.SupportsBackend(opts.Backend) {
		writeError(w, http.StatusBadRequest,
			"experiment %s does not support backend %q (declared: %v)", id, opts.Backend, sp.Backends)
		return
	}
	if !sp.SupportsEngine(opts.Engine) {
		writeError(w, http.StatusBadRequest,
			"experiment %s does not honor engine %q (declared: %v)", id, opts.Engine, sp.Engines)
		return
	}
	data, hit, err := s.cache.Figure(sweep.Cell{ID: id, Opts: opts})
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if hit {
		w.Header().Set("X-Casq-Cache", "hit")
	} else {
		w.Header().Set("X-Casq-Cache", "miss")
	}
	w.Write(data)
}

// correlationParams is the accepted /backends/{id}/correlations query
// vocabulary. Unknown parameters are rejected like on /figures/{id}.
var correlationParams = map[string]bool{
	"seed": true, "shots": true, "instances": true, "fast": true,
	"strategy": true, "engine": true,
}

// correlationDescriptor is the content-addressed cache key of one
// correlation diagnostic. Rev versions the payload layout; engine is
// normalized ("statevector" and "" spell the same computation).
type correlationDescriptor struct {
	Rev       int    `json:"rev"`
	Backend   string `json:"backend"`
	Strategy  string `json:"strategy"`
	Engine    string `json:"engine"`
	Seed      int64  `json:"seed"`
	Shots     int    `json:"shots"`
	Instances int    `json:"instances"`
}

// handleCorrelations serves the error-correlation spectroscopy diagnostic
// of one registry backend: the thresholded sparse flip-correlation matrix
// of a full-device Ramsey probe (experiments.CorrelationDiagnostic),
// cached through the content-addressed store — a repeated request streams
// the checkpointed bytes back unchanged with X-Casq-Cache: hit.
func (s *Server) handleCorrelations(w http.ResponseWriter, r *http.Request) {
	if s.limiter != nil {
		if retryAfter, limited := s.limiter.take(time.Now()); limited {
			w.Header().Set("Retry-After", strconv.Itoa(retrySeconds(retryAfter)))
			writeError(w, http.StatusTooManyRequests, "figure rate limit exceeded; retry after %s", retryAfter.Round(time.Millisecond))
			return
		}
	}
	id := r.PathValue("id")
	info, ok := device.LookupBackend(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown backend %q (see /backends)", id)
		return
	}
	q := r.URL.Query()
	for name := range q {
		if !correlationParams[name] {
			writeError(w, http.StatusBadRequest,
				"unknown parameter %q (known: engine, fast, instances, seed, shots, strategy)", name)
			return
		}
	}
	opts := experiments.DefaultOptions()
	if fast, err := boolParam(q.Get("fast")); err != nil {
		writeError(w, http.StatusBadRequest, "fast: %v", err)
		return
	} else if fast {
		opts = experiments.FastOptions()
	}
	for _, p := range []struct {
		name string
		dst  *int
	}{{"shots", &opts.Shots}, {"instances", &opts.Instances}} {
		if v := q.Get(p.name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				writeError(w, http.StatusBadRequest, "%s: not a non-negative integer: %q", p.name, v)
				return
			}
			*p.dst = n
		}
	}
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "seed: not an integer: %q", v)
			return
		}
		opts.Seed = n
	}
	if v := q.Get("engine"); v != "" {
		if !exec.ValidEngine(v) {
			writeError(w, http.StatusBadRequest, "engine: unknown %q (known: %v)", v, exec.EngineNames())
			return
		}
		opts.Engine = v
	}
	// Pre-validate the engine against the backend's capabilities: an
	// explicit statevector request on a device beyond the amplitude limit
	// is the client's mistake, not a server fault. "" defaults to the
	// stabilizer engine at full scale, and "auto" dispatches per instance.
	if opts.Engine == exec.EngineStatevector && !backendHasEngine(info, opts.Engine) {
		writeError(w, http.StatusBadRequest,
			"backend %s (%d qubits) cannot run the full device on engine %q (able: %v)",
			id, info.NQubits, opts.Engine, info.Engines)
		return
	}
	strategy := q.Get("strategy")

	desc := correlationDescriptor{
		Rev:     1,
		Backend: id, Strategy: strategy, Engine: opts.Engine,
		Seed: opts.Seed, Shots: opts.Shots, Instances: opts.Instances,
	}
	if desc.Strategy == "" {
		desc.Strategy = "twirled"
	}
	if desc.Engine == exec.EngineStatevector {
		desc.Engine = ""
	}
	key, err := store.Fingerprint(desc)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if data, ok, err := s.cache.Store.Get(key); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	} else if ok {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Casq-Cache", "hit")
		w.Write(data)
		return
	}
	rep, err := experiments.CorrelationDiagnostic(id, strategy, opts)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	data, err := json.Marshal(rep)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if err := s.cache.Store.Put(key, data); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Casq-Cache", "miss")
	w.Write(data)
}

func backendHasEngine(info device.BackendInfo, engine string) bool {
	for _, e := range info.Engines {
		if e == engine {
			return true
		}
	}
	return false
}

// sweepAccepted is the POST /sweeps response body.
type sweepAccepted struct {
	ID     string `json:"id"`
	Total  int    `json:"total"`
	Status string `json:"status"`
	Events string `json:"events"`
}

func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	var spec sweep.Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decode sweep spec: %v", err)
		return
	}
	// Fill unset base fields per-field (mirroring GET /figures): a
	// partially-specified base must not run — and permanently checkpoint —
	// statistically meaningless 1-shot/1-instance figures.
	def := experiments.DefaultOptions()
	if spec.Fast || spec.Base.Fast {
		def = experiments.FastOptions()
	}
	if spec.Base.Seed == 0 {
		spec.Base.Seed = def.Seed
	}
	if spec.Base.Shots == 0 {
		spec.Base.Shots = def.Shots
	}
	if spec.Base.Instances == 0 {
		spec.Base.Instances = def.Instances
	}
	if spec.Base.MaxDepth == 0 {
		spec.Base.MaxDepth = def.MaxDepth
	}

	// Admission control: refuse rather than queue unbounded work, and
	// refuse everything once draining so Close never strands a fresh run.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "server draining; resubmit to its successor")
		return
	}
	s.refreshLocked(time.Now())
	active := 0
	for _, rec := range s.sweeps {
		if rec.finishedAt.IsZero() {
			active++
		}
	}
	if active >= s.maxRuns {
		s.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "%d sweeps already active (max %d); retry later", active, s.maxRuns)
		return
	}
	s.mu.Unlock()

	var run runHandle
	var err error
	if s.coord != nil {
		run, err = s.coord.Submit(spec)
	} else {
		run, err = s.runner.Start(s.ctx, spec)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rec := &sweepRecord{run: run, submitted: time.Now()}
	s.mu.Lock()
	s.seq++
	id := fmt.Sprintf("sweep-%d", s.seq)
	s.sweeps[id] = rec
	s.order = append(s.order, id)
	s.pruneLocked(time.Now())
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, sweepAccepted{
		ID: id, Total: len(run.Cells()),
		Status: "/sweeps/" + id, Events: "/sweeps/" + id + "/events",
	})
}

// sweepStatus is the GET /sweeps/{id} response body.
type sweepStatus struct {
	ID       string           `json:"id"`
	Progress sweep.Progress   `json:"progress"`
	Cells    []sweepCellState `json:"cells"`
}

// sweepCellState identifies one cell by every gridded option dimension,
// so cells of a sweep over instances or max-depths stay distinguishable.
type sweepCellState struct {
	Experiment string          `json:"experiment"`
	Seed       int64           `json:"seed"`
	Shots      int             `json:"shots"`
	Instances  int             `json:"instances"`
	MaxDepth   int             `json:"max_depth"`
	Backend    string          `json:"backend,omitempty"`
	Engine     string          `json:"engine,omitempty"`
	State      sweep.CellState `json:"state"`
}

func (s *Server) lookupSweep(id string) (*sweepRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.sweeps[id]
	return rec, ok
}

func (s *Server) handleSweepStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.lookupSweep(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown sweep %q", id)
		return
	}
	run := rec.run
	states := run.States()
	cells := run.Cells()
	body := sweepStatus{ID: id, Progress: run.Progress(), Cells: make([]sweepCellState, len(cells))}
	for i, c := range cells {
		body.Cells[i] = sweepCellState{Experiment: c.ID, Seed: c.Opts.Seed, Shots: c.Opts.Shots,
			Instances: c.Opts.Instances, MaxDepth: c.Opts.MaxDepth, Backend: c.Opts.Backend,
			Engine: c.Opts.Engine, State: states[i]}
	}
	writeJSON(w, http.StatusOK, body)
}

// sweepSummary is one GET /sweeps list entry.
type sweepSummary struct {
	ID        string         `json:"id"`
	Submitted time.Time      `json:"submitted"`
	Progress  sweep.Progress `json:"progress"`
}

// handleSweepList returns every retained sweep in submission order — the
// fleet-dashboard view.
func (s *Server) handleSweepList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := make([]string, len(s.order))
	copy(ids, s.order)
	recs := make([]*sweepRecord, len(ids))
	for i, id := range ids {
		recs[i] = s.sweeps[id]
	}
	s.mu.Unlock()
	out := make([]sweepSummary, len(ids))
	for i, id := range ids {
		out[i] = sweepSummary{ID: id, Submitted: recs[i].submitted, Progress: recs[i].run.Progress()}
	}
	writeJSON(w, http.StatusOK, out)
}

// progressEvent is one SSE `progress` payload: the progress snapshot
// plus the sweep's trace id (16 hex digits).
type progressEvent struct {
	sweep.Progress
	TraceID string `json:"trace_id"`
}

// handleSweepEvents streams progress snapshots as Server-Sent Events:
// one `progress` event per state change (coalesced under load) with
// monotonically non-decreasing counts, ending with the snapshot whose
// finished field is true. Clients get push-based progress without
// polling /sweeps/{id}.
func (s *Server) handleSweepEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.lookupSweep(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown sweep %q", id)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by connection")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	run := rec.run
	// Every event echoes the run's trace id (assigned by the in-process
	// runner or the fabric coordinator), so a client can correlate the
	// sweep with spans recorded anywhere in the fleet.
	trace := fmt.Sprintf("%016x", run.TraceID())
	var last *sweep.Progress
	seq := 0
	for {
		// Fetch the change channel before snapshotting: an update landing
		// between snapshot and wait closes the fetched channel, so it
		// cannot be missed.
		changed := run.Changed()
		p := run.Progress()
		if last == nil || p != *last {
			seq++
			data, err := json.Marshal(progressEvent{Progress: p, TraceID: trace})
			if err != nil {
				return
			}
			fmt.Fprintf(w, "id: %d\nevent: progress\ndata: %s\n\n", seq, data)
			flusher.Flush()
			last = &p
		}
		if p.Finished {
			return
		}
		select {
		case <-changed:
		case <-run.Done():
		case <-r.Context().Done():
			return
		case <-s.ctx.Done():
			return
		}
	}
}

// refreshLocked stamps finish times for runs that completed since the
// last look. finishedAt is "when the server noticed" — checked lazily
// under the lock rather than by a per-sweep watcher goroutine, so
// admission control, pruning, and drain always agree on which runs are
// still active. Callers hold s.mu.
func (s *Server) refreshLocked(now time.Time) {
	for _, rec := range s.sweeps {
		if rec.finishedAt.IsZero() {
			select {
			case <-rec.run.Done():
				rec.finishedAt = now
			default:
			}
		}
	}
}

// pruneLocked drops the oldest finished runs beyond maxSweepHistory so a
// long-lived server does not accumulate one Run per submission forever —
// but a finished run stays queryable for the history TTL (clients that
// just submitted deserve to read the result of /sweeps/{id} they were
// given), unless the hard cap is breached by a submission flood.
// Callers hold s.mu.
func (s *Server) pruneLocked(now time.Time) {
	if len(s.order) <= maxSweepHistory {
		return
	}
	s.refreshLocked(now)
	prunable := func(rec *sweepRecord) bool {
		if rec.finishedAt.IsZero() {
			return false // never prune a running sweep
		}
		return now.Sub(rec.finishedAt) >= s.ttl || len(s.order) > hardSweepHistory
	}
	kept := s.order[:0]
	excess := len(s.order) - maxSweepHistory
	for _, id := range s.order {
		if excess > 0 && prunable(s.sweeps[id]) {
			delete(s.sweeps, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// health is the GET /healthz response body.
type health struct {
	OK       bool              `json:"ok"`
	Draining bool              `json:"draining"`
	Store    interface{}       `json:"store"`
	Requests map[string]uint64 `json:"requests"`
	Sweeps   sweepCounts       `json:"sweeps"`
	Layouts  layoutCounts      `json:"layouts"`
	Fabric   *fabric.Stats     `json:"fabric,omitempty"`
}

type sweepCounts struct {
	Active   int `json:"active"`
	Retained int `json:"retained"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	// The requests map is rebuilt from the registry counters, dropping
	// zero-valued endpoints (counted pre-creates every child at Handler
	// build) — the JSON shape matches the pre-registry map, which only
	// held endpoints that had been hit.
	reqs := map[string]uint64{}
	for k, v := range s.reqCount.Snapshot() {
		if v != 0 {
			reqs[k] = v
		}
	}
	s.mu.Lock()
	s.refreshLocked(time.Now())
	active := 0
	for _, rec := range s.sweeps {
		if rec.finishedAt.IsZero() {
			active++
		}
	}
	body := health{
		OK:       true,
		Draining: s.draining,
		Requests: reqs,
		Sweeps:   sweepCounts{Active: active, Retained: len(s.sweeps)},
	}
	s.mu.Unlock()
	body.Store = s.cache.Store.Stats()
	body.Layouts = s.layoutStats()
	if s.coord != nil {
		st := s.coord.Stats()
		body.Fabric = &st
	}
	writeJSON(w, http.StatusOK, body)
}

// retrySeconds rounds a wait up to whole seconds for the Retry-After
// header (whose delta form is integral seconds; 0 would mean "now").
func retrySeconds(d time.Duration) int {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// tokenBucket is a standard token-bucket rate limiter: capacity `burst`,
// refilled continuously at `rate` tokens per second. take consumes one
// token or reports how long until one accrues. It deliberately avoids
// per-client state: the figure endpoints protect shared compute, so the
// budget is global.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64, burst int) *tokenBucket {
	return &tokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst)}
}

// take consumes one token if available; otherwise it reports the wait
// until the next token accrues and limited = true.
func (b *tokenBucket) take(now time.Time) (retryAfter time.Duration, limited bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return 0, false
	}
	need := 1 - b.tokens
	return time.Duration(need / b.rate * float64(time.Second)), true
}
