// Package serve exposes the experiment catalog over HTTP, turning the
// repository from a batch tool into a result service. Figure requests go
// through the sweep.Cache, so the first request for a configuration
// computes and checkpoints it and every later request streams the
// checkpointed JSON bytes back unchanged; sweep submissions run
// asynchronously on the sweep.Runner and report live progress.
//
// Routes:
//
//	GET  /experiments   catalog of declarative experiment Specs
//	GET  /backends      the named device registry (sizes, families)
//	GET  /figures/{id}  one figure; options via query parameters
//	                    (seed, shots, instances, maxdepth, fast, backend,
//	                    engine); X-Casq-Cache reports hit or miss
//	POST /sweeps        submit a sweep.Spec as JSON; returns 202 + id
//	GET  /sweeps/{id}   progress of a submitted sweep
//	GET  /healthz       liveness plus store cache counters
//
// The `casq serve` subcommand wires this handler to a listening socket.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"casq/internal/device"
	"casq/internal/exec"
	"casq/internal/experiments"
	"casq/internal/sweep"
)

// Server serves the experiment catalog, cached figures, and sweeps. Use
// New; the zero value is not usable.
type Server struct {
	cache  *sweep.Cache
	runner *sweep.Runner

	ctx    context.Context // governs background sweeps
	cancel context.CancelFunc

	mu     sync.Mutex
	sweeps map[string]*sweep.Run
	order  []string // sweep ids in submission order, for history pruning
	seq    int
}

// maxSweepHistory bounds retained sweep runs: beyond it, the oldest
// finished runs are forgotten (their results stay checkpointed in the
// store — only the progress handle goes away). Running sweeps are never
// pruned.
const maxSweepHistory = 128

// New returns a server answering from the cache; sweepWorkers bounds the
// concurrency of submitted sweeps (0 = GOMAXPROCS).
func New(cache *sweep.Cache, sweepWorkers int) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cache:  cache,
		runner: &sweep.Runner{Cache: cache, Workers: sweepWorkers},
		ctx:    ctx,
		cancel: cancel,
		sweeps: map[string]*sweep.Run{},
	}
}

// Close stops claiming new sweep cells. In-flight cells finish and stay
// checkpointed, so a later server over the same store resumes them.
func (s *Server) Close() { s.cancel() }

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /experiments", s.handleExperiments)
	mux.HandleFunc("GET /backends", s.handleBackends)
	mux.HandleFunc("GET /figures/{id}", s.handleFigure)
	mux.HandleFunc("POST /sweeps", s.handleSweepSubmit)
	mux.HandleFunc("GET /sweeps/{id}", s.handleSweepStatus)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, experiments.Catalog())
}

func (s *Server) handleBackends(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, device.Backends())
}

// figureParams is the accepted /figures/{id} query vocabulary. Unknown
// parameters are rejected rather than ignored: a typo (shot= for shots=)
// must not silently serve — and cache — a different configuration.
var figureParams = map[string]bool{
	"seed": true, "shots": true, "instances": true, "maxdepth": true, "fast": true,
	"backend": true, "engine": true,
}

// figureOptions binds the request's query parameters to run Options:
// fast=1 starts from FastOptions (reduced axes), everything else from
// DefaultOptions, with seed/shots/instances/maxdepth overriding per field.
func figureOptions(r *http.Request) (experiments.Options, error) {
	q := r.URL.Query()
	opts := experiments.DefaultOptions()
	for name := range q {
		if !figureParams[name] {
			return opts, fmt.Errorf("unknown parameter %q (known: backend, engine, fast, instances, maxdepth, seed, shots)", name)
		}
	}
	if fast, err := boolParam(q.Get("fast")); err != nil {
		return opts, fmt.Errorf("fast: %w", err)
	} else if fast {
		opts = experiments.FastOptions()
	}
	for _, p := range []struct {
		name string
		dst  *int
	}{
		{"shots", &opts.Shots},
		{"instances", &opts.Instances},
		{"maxdepth", &opts.MaxDepth},
	} {
		if v := q.Get(p.name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return opts, fmt.Errorf("%s: not a non-negative integer: %q", p.name, v)
			}
			*p.dst = n
		}
	}
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return opts, fmt.Errorf("seed: not an integer: %q", v)
		}
		opts.Seed = n
	}
	if v := q.Get("backend"); v != "" {
		if _, ok := device.LookupBackend(v); !ok {
			return opts, fmt.Errorf("backend: unknown %q (see /backends)", v)
		}
		opts.Backend = v
	}
	if v := q.Get("engine"); v != "" {
		if !exec.ValidEngine(v) {
			return opts, fmt.Errorf("engine: unknown %q (known: %v)", v, exec.EngineNames())
		}
		opts.Engine = v
	}
	return opts, nil
}

func boolParam(v string) (bool, error) {
	switch v {
	case "", "0", "false":
		return false, nil
	case "1", "true":
		return true, nil
	}
	return false, fmt.Errorf("not a boolean: %q", v)
}

func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sp, ok := experiments.Lookup(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown experiment %q (see /experiments)", id)
		return
	}
	opts, err := figureOptions(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// A known backend or engine the figure does not declare is the
	// client's mistake, not a server fault — reject before the compute
	// path turns it into a 500 (or, worse for the engine, a silently
	// statevector-computed figure cached under an engine-qualified key).
	if !sp.SupportsBackend(opts.Backend) {
		writeError(w, http.StatusBadRequest,
			"experiment %s does not support backend %q (declared: %v)", id, opts.Backend, sp.Backends)
		return
	}
	if !sp.SupportsEngine(opts.Engine) {
		writeError(w, http.StatusBadRequest,
			"experiment %s does not honor engine %q (declared: %v)", id, opts.Engine, sp.Engines)
		return
	}
	data, hit, err := s.cache.Figure(sweep.Cell{ID: id, Opts: opts})
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if hit {
		w.Header().Set("X-Casq-Cache", "hit")
	} else {
		w.Header().Set("X-Casq-Cache", "miss")
	}
	w.Write(data)
}

// sweepAccepted is the POST /sweeps response body.
type sweepAccepted struct {
	ID     string `json:"id"`
	Total  int    `json:"total"`
	Status string `json:"status"`
}

func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	var spec sweep.Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decode sweep spec: %v", err)
		return
	}
	// Fill unset base fields per-field (mirroring GET /figures): a
	// partially-specified base must not run — and permanently checkpoint —
	// statistically meaningless 1-shot/1-instance figures.
	def := experiments.DefaultOptions()
	if spec.Fast || spec.Base.Fast {
		def = experiments.FastOptions()
	}
	if spec.Base.Seed == 0 {
		spec.Base.Seed = def.Seed
	}
	if spec.Base.Shots == 0 {
		spec.Base.Shots = def.Shots
	}
	if spec.Base.Instances == 0 {
		spec.Base.Instances = def.Instances
	}
	if spec.Base.MaxDepth == 0 {
		spec.Base.MaxDepth = def.MaxDepth
	}
	run, err := s.runner.Start(s.ctx, spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.Lock()
	s.seq++
	id := fmt.Sprintf("sweep-%d", s.seq)
	s.sweeps[id] = run
	s.order = append(s.order, id)
	s.pruneLocked()
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, sweepAccepted{ID: id, Total: len(run.Cells()), Status: "/sweeps/" + id})
}

// sweepStatus is the GET /sweeps/{id} response body.
type sweepStatus struct {
	ID       string           `json:"id"`
	Progress sweep.Progress   `json:"progress"`
	Cells    []sweepCellState `json:"cells"`
}

// sweepCellState identifies one cell by every gridded option dimension,
// so cells of a sweep over instances or max-depths stay distinguishable.
type sweepCellState struct {
	Experiment string          `json:"experiment"`
	Seed       int64           `json:"seed"`
	Shots      int             `json:"shots"`
	Instances  int             `json:"instances"`
	MaxDepth   int             `json:"max_depth"`
	Backend    string          `json:"backend,omitempty"`
	Engine     string          `json:"engine,omitempty"`
	State      sweep.CellState `json:"state"`
}

func (s *Server) handleSweepStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	run, ok := s.sweeps[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown sweep %q", id)
		return
	}
	states := run.States()
	cells := run.Cells()
	body := sweepStatus{ID: id, Progress: run.Progress(), Cells: make([]sweepCellState, len(cells))}
	for i, c := range cells {
		body.Cells[i] = sweepCellState{Experiment: c.ID, Seed: c.Opts.Seed, Shots: c.Opts.Shots,
			Instances: c.Opts.Instances, MaxDepth: c.Opts.MaxDepth, Backend: c.Opts.Backend,
			Engine: c.Opts.Engine, State: states[i]}
	}
	writeJSON(w, http.StatusOK, body)
}

// pruneLocked drops the oldest finished runs beyond maxSweepHistory so a
// long-lived server does not accumulate one Run per submission forever.
// Callers hold s.mu.
func (s *Server) pruneLocked() {
	if len(s.order) <= maxSweepHistory {
		return
	}
	kept := s.order[:0]
	excess := len(s.order) - maxSweepHistory
	for _, id := range s.order {
		if excess > 0 && s.sweeps[id].Progress().Finished {
			delete(s.sweeps, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "store": s.cache.Store.Stats()})
}
