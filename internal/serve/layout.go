package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"casq/internal/device"
	"casq/internal/layout"
)

// Drift-service bounds: probe workloads are small line circuits (the
// layout stage's cost grows with the backend, not the probe), and drift
// magnitudes beyond 1 would flip calibration rates negative.
const (
	minProbeQubits   = 2
	maxProbeQubits   = 16
	defaultQubits    = 6
	minProbeDepth    = 1
	maxProbeDepth    = 32
	defaultDepth     = 4
	maxDriftMagnit   = 1.0
	defaultDriftMag  = 0.05
	defaultDriftSeed = 1
)

// layoutRecord is one lazily-compiled drift monitor, keyed by
// backend|qubits|depth. The once gate makes concurrent first requests for
// the same key compile exactly one monitor.
type layoutRecord struct {
	once sync.Once
	mon  *layout.Monitor
	err  error
}

// monitorFor returns (compiling on first use) the drift monitor of one
// backend+probe configuration.
func (s *Server) monitorFor(backend string, qubits, depth int) (*layout.Monitor, error) {
	key := fmt.Sprintf("%s|%d|%d", backend, qubits, depth)
	s.layoutMu.Lock()
	rec, ok := s.layouts[key]
	if !ok {
		rec = &layoutRecord{}
		s.layouts[key] = rec
	}
	s.layoutMu.Unlock()
	rec.once.Do(func() {
		dev, err := device.NewBackend(backend)
		if err != nil {
			rec.err = err
			return
		}
		if qubits > dev.NQubits {
			rec.err = fmt.Errorf("probe needs %d qubits, backend %s has %d", qubits, backend, dev.NQubits)
			return
		}
		rec.mon, rec.err = layout.NewMonitor(dev, layout.PathProbe(qubits, depth), layout.MonitorOptions{
			Threshold: s.recompileThreshold,
		})
	})
	return rec.mon, rec.err
}

// layoutParams is the accepted /backends/{id}/layout query vocabulary.
var layoutParams = map[string]bool{"qubits": true, "depth": true}

// probeShape validates the probe dimensions shared by both layout routes.
func probeShape(qubits, depth int) error {
	if qubits < minProbeQubits || qubits > maxProbeQubits {
		return fmt.Errorf("qubits: %d out of range [%d, %d]", qubits, minProbeQubits, maxProbeQubits)
	}
	if depth < minProbeDepth || depth > maxProbeDepth {
		return fmt.Errorf("depth: %d out of range [%d, %d]", depth, minProbeDepth, maxProbeDepth)
	}
	return nil
}

// layoutBody is the GET /backends/{id}/layout response.
type layoutBody struct {
	Backend   string               `json:"backend"`
	Qubits    int                  `json:"qubits"`
	Depth     int                  `json:"depth"`
	Region    []int                `json:"region"`
	Phys      []int                `json:"phys"`
	Score     float64              `json:"score"`
	Threshold float64              `json:"recompile_threshold"`
	Search    *layout.SearchReport `json:"search"`
	Stats     layout.MonitorStats  `json:"stats"`
}

// handleLayout reports (compiling on first request) the deployed placement
// of the standard path probe on one backend: chosen region, exact score,
// search telemetry including the surrogate pruning ratio, and the drift
// monitor's counters.
func (s *Server) handleLayout(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := device.LookupBackend(id); !ok {
		writeError(w, http.StatusNotFound, "unknown backend %q (see /backends)", id)
		return
	}
	q := r.URL.Query()
	for name := range q {
		if !layoutParams[name] {
			writeError(w, http.StatusBadRequest, "unknown parameter %q (known: depth, qubits)", name)
			return
		}
	}
	qubits, depth := defaultQubits, defaultDepth
	for _, p := range []struct {
		name string
		dst  *int
	}{{"qubits", &qubits}, {"depth", &depth}} {
		if v := q.Get(p.name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				writeError(w, http.StatusBadRequest, "%s: not an integer: %q", p.name, v)
				return
			}
			*p.dst = n
		}
	}
	if err := probeShape(qubits, depth); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	mon, err := s.monitorFor(id, qubits, depth)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	pl := mon.Placement()
	writeJSON(w, http.StatusOK, layoutBody{
		Backend:   id,
		Qubits:    qubits,
		Depth:     depth,
		Region:    pl.Region,
		Phys:      pl.Phys,
		Score:     pl.Score,
		Threshold: mon.Threshold(),
		Search:    mon.Report(),
		Stats:     mon.Stats(),
	})
}

// driftRequest is the POST /backends/{id}/drift body. Probe dimensions
// select which monitor drifts (they default to the GET defaults, so a
// bare body drifts the default probe's monitor).
type driftRequest struct {
	Qubits int     `json:"qubits"`
	Depth  int     `json:"depth"`
	Seed   int64   `json:"seed"`
	Drift  float64 `json:"drift"`
}

// driftBody is the POST /backends/{id}/drift response.
type driftBody struct {
	Backend  string              `json:"backend"`
	Qubits   int                 `json:"qubits"`
	Depth    int                 `json:"depth"`
	Seed     int64               `json:"seed"`
	Drift    float64             `json:"drift"`
	Decision *layout.Decision    `json:"decision"`
	Stats    layout.MonitorStats `json:"stats"`
}

// handleDrift perturbs one monitor's calibration and reports its decision:
// absorbed by the surrogate, exact-checked, or recompiled. This is the
// fleet-amortization loop over HTTP — callers post observed drift and only
// threshold-crossing events pay for a new search.
func (s *Server) handleDrift(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := device.LookupBackend(id); !ok {
		writeError(w, http.StatusNotFound, "unknown backend %q (see /backends)", id)
		return
	}
	req := driftRequest{Qubits: defaultQubits, Depth: defaultDepth, Seed: defaultDriftSeed, Drift: defaultDriftMag}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode drift request: %v", err)
		return
	}
	if err := probeShape(req.Qubits, req.Depth); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Drift <= 0 || req.Drift > maxDriftMagnit {
		writeError(w, http.StatusBadRequest, "drift: %v out of range (0, %v]", req.Drift, maxDriftMagnit)
		return
	}
	mon, err := s.monitorFor(id, req.Qubits, req.Depth)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	decision, err := mon.Drift(req.Seed, req.Drift)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, driftBody{
		Backend: id, Qubits: req.Qubits, Depth: req.Depth,
		Seed: req.Seed, Drift: req.Drift,
		Decision: decision, Stats: mon.Stats(),
	})
}

// layoutCounts is the healthz rollup over every live drift monitor.
type layoutCounts struct {
	Monitors   int `json:"monitors"`
	Drifts     int `json:"drifts"`
	Recompiles int `json:"recompiles"`
}

// layoutStats aggregates monitor counters for /healthz.
func (s *Server) layoutStats() layoutCounts {
	s.layoutMu.Lock()
	recs := make([]*layoutRecord, 0, len(s.layouts))
	for _, rec := range s.layouts {
		recs = append(recs, rec)
	}
	s.layoutMu.Unlock()
	var out layoutCounts
	for _, rec := range recs {
		rec.once.Do(func() {}) // synchronize with a first compile in flight
		if rec.mon == nil {
			continue
		}
		st := rec.mon.Stats()
		out.Monitors++
		out.Drifts += st.Drifts
		out.Recompiles += st.Recompiles
	}
	return out
}
