// Property test cross-checking the two independent Pauli-conjugation
// implementations: twirl.PropagateThroughLayer (per-gate Pair lookups on a
// pauli.String) against stab.ConjugateLayer (the stabilizer engine's
// bit-packed row conjugation). On randomized Clifford layers and random
// Pauli strings the two must agree exactly, sign included.
package twirl_test

import (
	"math/rand"
	"testing"

	"casq/internal/circuit"
	"casq/internal/gates"
	"casq/internal/pauli"
	"casq/internal/stab"
	"casq/internal/twirl"
)

// randomCliffordLayer builds a two-qubit layer of random ECR/CX/SWAP gates
// on random disjoint pairs of n qubits.
func randomCliffordLayer(n int, rng *rand.Rand) *circuit.Layer {
	l := &circuit.Layer{Kind: circuit.TwoQubitLayer}
	perm := rng.Perm(n)
	kinds := []gates.Kind{gates.ECR, gates.CX, gates.SWAP}
	pairs := rng.Intn(n/2) + 1
	for i := 0; i < pairs; i++ {
		g := kinds[rng.Intn(len(kinds))]
		l.Add(circuit.Instruction{Gate: g, Qubits: []int{perm[2*i], perm[2*i+1]}})
	}
	return l
}

func randomPauliString(n int, rng *rand.Rand) pauli.String {
	s := pauli.NewString(n)
	for q := 0; q < n; q++ {
		s.Ops[q] = pauli.Pauli(rng.Intn(4))
	}
	if rng.Intn(2) == 1 {
		s.Phase = 2
	}
	return s
}

func TestPropagateMatchesTableauConjugation(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 300; trial++ {
		n := 4 + rng.Intn(8)
		l := randomCliffordLayer(n, rng)
		s := randomPauliString(n, rng)

		want, err := twirl.PropagateThroughLayer(l, s)
		if err != nil {
			t.Fatal(err)
		}
		got, err := stab.ConjugateLayer(l, s)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Ops) != len(want.Ops) {
			t.Fatalf("trial %d: length mismatch", trial)
		}
		for q := range want.Ops {
			if got.Ops[q] != want.Ops[q] {
				t.Fatalf("trial %d (n=%d, layer %v):\n  in   %v\n  want %v\n  got  %v",
					trial, n, l.Instrs, s, want, got)
			}
		}
		if ((got.Phase%4)+4)%4 != ((want.Phase%4)+4)%4 {
			t.Fatalf("trial %d: phase mismatch: want i^%d, got i^%d (in %v -> %v)",
				trial, want.Phase, got.Phase, s, want)
		}
	}
}

// TestPropagateDepthComposition checks that conjugating through d repeated
// layers with either implementation stays in lockstep — the exact access
// pattern the layer-fidelity protocol uses.
func TestPropagateDepthComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		n := 6
		l := randomCliffordLayer(n, rng)
		a := randomPauliString(n, rng)
		b := pauli.String{Ops: append([]pauli.Pauli(nil), a.Ops...), Phase: a.Phase}
		for d := 0; d < 5; d++ {
			var err error
			if a, err = twirl.PropagateThroughLayer(l, a); err != nil {
				t.Fatal(err)
			}
			if b, err = stab.ConjugateLayer(l, b); err != nil {
				t.Fatal(err)
			}
			for q := range a.Ops {
				if a.Ops[q] != b.Ops[q] {
					t.Fatalf("trial %d depth %d: divergence at qubit %d", trial, d, q)
				}
			}
			if ((a.Phase%4)+4)%4 != ((b.Phase%4)+4)%4 {
				t.Fatalf("trial %d depth %d: phase divergence", trial, d)
			}
		}
	}
}
