package twirl

import (
	"math/rand"
	"testing"

	"casq/internal/circuit"
	"casq/internal/device"
	"casq/internal/gates"
	"casq/internal/linalg"
	"casq/internal/pauli"
	"casq/internal/sched"
	"casq/internal/sim"
)

func quietDev(n int) *device.Device {
	o := device.DefaultOptions()
	o.DeltaMax, o.QuasistaticSigma = 0, 0
	o.Err1Q, o.Err2Q, o.ReadoutErr = 0, 0, 0
	o.T1Min, o.T1Max, o.T2Factor = 1e12, 1e12, 2
	o.RotaryResidual = 0
	return device.NewLine("quiet", n, o)
}

func TestTableForECRAndCX(t *testing.T) {
	for _, k := range []gates.Kind{gates.ECR, gates.CX} {
		if _, err := TableFor(k); err != nil {
			t.Errorf("TableFor(%s): %v", k, err)
		}
	}
	if _, err := TableFor(gates.H); err == nil {
		t.Error("1q gates must be rejected")
	}
}

// buildTestCircuit covers ECR, CX, RZZ and Ucan layers with idles.
func buildTestCircuit() *circuit.Circuit {
	c := circuit.New(4, 0)
	prep := c.AddLayer(circuit.OneQubitLayer)
	prep.H(0).H(1).H(2).H(3)
	c.AddLayer(circuit.TwoQubitLayer).ECR(0, 1)
	c.AddLayer(circuit.TwoQubitLayer).CX(2, 3)
	c.AddLayer(circuit.TwoQubitLayer).RZZ(1, 2, 0.7)
	c.AddLayer(circuit.TwoQubitLayer).Ucan(0, 1, 0.2, -0.3, 0.4)
	return c
}

func TestInstancePreservesLogic(t *testing.T) {
	// Noiseless execution of any twirl instance must match the original
	// circuit's final state up to global phase.
	dev := quietDev(4)
	base := buildTestCircuit()
	sched.Schedule(base, dev)
	r := sim.New(dev, sim.Ideal())
	want, err := r.FinalState(base)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for k := 0; k < 20; k++ {
		inst, err := Instance(base, GatesOnly, rng)
		if err != nil {
			t.Fatal(err)
		}
		sched.Schedule(inst, dev)
		got, err := r.FinalState(inst)
		if err != nil {
			t.Fatal(err)
		}
		if f := linalg.FidelityPure(got, want); f < 1-1e-9 {
			t.Fatalf("twirl instance %d changed the logic: fidelity %.9f", k, f)
		}
	}
}

func TestInstanceAllQubitsPreservesLogic(t *testing.T) {
	dev := quietDev(4)
	base := circuit.New(4, 0)
	base.AddLayer(circuit.OneQubitLayer).H(0).H(2)
	base.AddLayer(circuit.TwoQubitLayer).ECR(0, 1) // 2,3 idle -> twirled too
	sched.Schedule(base, dev)
	r := sim.New(dev, sim.Ideal())
	want, err := r.FinalState(base)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for k := 0; k < 20; k++ {
		inst, err := Instance(base, AllQubits, rng)
		if err != nil {
			t.Fatal(err)
		}
		sched.Schedule(inst, dev)
		got, err := r.FinalState(inst)
		if err != nil {
			t.Fatal(err)
		}
		if f := linalg.FidelityPure(got, want); f < 1-1e-9 {
			t.Fatalf("all-qubit twirl instance %d broke logic: %.9f", k, f)
		}
	}
}

func TestInstanceStructure(t *testing.T) {
	base := buildTestCircuit()
	rng := rand.New(rand.NewSource(1))
	inst, err := Instance(base, GatesOnly, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Every 2q layer gains a pre and post twirl layer.
	twirlLayers := 0
	for _, l := range inst.Layers {
		if l.Kind == circuit.TwirlLayer {
			twirlLayers++
			for _, in := range l.Instrs {
				if in.Tag != "twirl" {
					t.Error("twirl layer instruction missing tag")
				}
			}
		}
	}
	if twirlLayers != 8 {
		t.Errorf("expected 8 twirl layers (4 gates x pre/post), got %d", twirlLayers)
	}
}

func TestInstancesCount(t *testing.T) {
	base := buildTestCircuit()
	rng := rand.New(rand.NewSource(5))
	insts, err := Instances(base, GatesOnly, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 5 {
		t.Errorf("got %d instances", len(insts))
	}
}

func TestPropagateThroughLayer(t *testing.T) {
	// Propagating through an ECR layer must match the conjugation of the
	// full matrix.
	l := &circuit.Layer{Kind: circuit.TwoQubitLayer}
	l.ECR(0, 1)
	in, _ := pauli.ParseString("XZ")
	out, err := PropagateThroughLayer(l, in)
	if err != nil {
		t.Fatal(err)
	}
	g := gates.Matrix2Q(gates.ECR)
	// Build full 2-qubit matrices with qubit0 low bit.
	lhs := linalg.MulChain(kron2(g), in.Matrix(), linalg.Dagger(kron2(g)))
	if !linalg.ApproxEqual(lhs, out.Matrix(), 1e-9) {
		t.Errorf("propagation mismatch: %v -> %v", in, out)
	}
}

// kron2 reorders the gate matrix from |first second> (first = high bit of
// the gate basis, acting on qubit 0) into the simulator's |q1 q0> layout.
func kron2(g linalg.Matrix) linalg.Matrix {
	// Gate operands are (q0, q1) = (first, second); state index is q1*2+q0.
	// Permute basis: gate index b = first*2 + second; state index
	// s = second*2 + first.
	p := linalg.NewMatrix(4)
	for first := 0; first < 2; first++ {
		for second := 0; second < 2; second++ {
			p.Set(second*2+first, first*2+second, 1)
		}
	}
	return linalg.MulChain(p, g, linalg.Dagger(p))
}

func TestPropagateIdleUnchanged(t *testing.T) {
	l := &circuit.Layer{Kind: circuit.TwoQubitLayer}
	l.ECR(0, 1)
	in, _ := pauli.ParseString("IIZ")
	out, err := PropagateThroughLayer(l, in)
	if err != nil {
		t.Fatal(err)
	}
	if out.Ops[2] != pauli.Z || out.Ops[0] != pauli.I {
		t.Error("idle qubit operator must be unchanged")
	}
}
