// Package twirl implements Pauli twirling of two-qubit gate layers (paper
// Sec. III A, Fig. 2). For Clifford gates (ECR, CX) the post-gate Paulis are
// derived from a conjugation table so that the layer's logical action is
// unchanged; for the commuting-family gates (RZZ, Ucan) the twirl group is
// {II, XX, YY, ZZ}. Twirl gates live in dedicated zero-duration TwirlLayers
// and are merged into neighboring single-qubit gates at execution time, so
// they add no runtime and no extra gate error — matching the paper's model.
package twirl

import (
	"fmt"
	"math/rand"
	"sync"

	"casq/internal/circuit"
	"casq/internal/gates"
	"casq/internal/pauli"
)

// Scope selects which qubits receive twirl Paulis.
type Scope int

const (
	// GatesOnly twirls only the qubits participating in two-qubit gates
	// (the PEC/PEA workflow of Sec. III A).
	GatesOnly Scope = iota
	// AllQubits additionally twirls idle qubits in two-qubit layers with
	// self-inverting random Paulis, as the layer-fidelity protocol does.
	AllQubits
)

var (
	tableMu  sync.Mutex
	tables   = map[gates.Kind]*pauli.CliffordTable{}
	twoPauli = []pauli.Pauli{pauli.I, pauli.X, pauli.Y, pauli.Z}
)

// TableFor returns (building on first use) the Pauli conjugation table of a
// Clifford two-qubit gate kind.
func TableFor(k gates.Kind) (*pauli.CliffordTable, error) {
	tableMu.Lock()
	defer tableMu.Unlock()
	if t, ok := tables[k]; ok {
		return t, nil
	}
	switch k {
	case gates.ECR, gates.CX, gates.SWAP:
	default:
		return nil, fmt.Errorf("twirl: %s is not a supported Clifford gate", k)
	}
	t, err := pauli.NewCliffordTable(gates.Matrix2Q(k))
	if err != nil {
		return nil, fmt.Errorf("twirl: %s: %w", k, err)
	}
	tables[k] = t
	return t, nil
}

func pauliGate(p pauli.Pauli) gates.Kind {
	switch p {
	case pauli.X:
		return gates.XGate
	case pauli.Y:
		return gates.YGate
	case pauli.Z:
		return gates.ZGate
	}
	return gates.ID
}

func addPauli(l *circuit.Layer, p pauli.Pauli, q int) {
	if p == pauli.I {
		return
	}
	l.Add(circuit.Instruction{Gate: pauliGate(p), Qubits: []int{q}, Tag: "twirl"})
}

// Instance returns a new circuit with one sampled Pauli twirl applied: every
// two-qubit layer is wrapped in a pre- and post-TwirlLayer whose Paulis
// preserve the layer's logical operation. Layers containing non-twirlable
// gates are passed through unchanged.
func Instance(c *circuit.Circuit, scope Scope, rng *rand.Rand) (*circuit.Circuit, error) {
	out := circuit.New(c.NQubits, c.NCBits)
	for _, l := range c.Layers {
		if l.Kind != circuit.TwoQubitLayer || len(l.TwoQubitGates()) == 0 {
			out.Layers = append(out.Layers, l.Clone())
			continue
		}
		pre := circuit.Layer{Kind: circuit.TwirlLayer}
		post := circuit.Layer{Kind: circuit.TwirlLayer}
		ok := true
		for _, in := range l.TwoQubitGates() {
			q0, q1 := in.Qubits[0], in.Qubits[1]
			switch in.Gate {
			case gates.ECR, gates.CX, gates.SWAP:
				tab, err := TableFor(in.Gate)
				if err != nil {
					return nil, err
				}
				p := pauli.Pair{P0: twoPauli[rng.Intn(4)], P1: twoPauli[rng.Intn(4)]}
				q, _ := tab.InvertFor(p) // global sign is unobservable
				addPauli(&pre, p.P0, q0)
				addPauli(&pre, p.P1, q1)
				addPauli(&post, q.P0, q0)
				addPauli(&post, q.P1, q1)
			case gates.RZZ, gates.Ucan:
				// Twirl group restricted to the commutant {II, XX, YY, ZZ}.
				p := twoPauli[rng.Intn(4)]
				addPauli(&pre, p, q0)
				addPauli(&pre, p, q1)
				addPauli(&post, p, q0)
				addPauli(&post, p, q1)
			default:
				ok = false
			}
		}
		if !ok {
			out.Layers = append(out.Layers, l.Clone())
			continue
		}
		if scope == AllQubits {
			for _, q := range l.IdleQubits(c.NQubits) {
				p := twoPauli[rng.Intn(4)]
				addPauli(&pre, p, q)
				addPauli(&post, p, q)
			}
		}
		out.Layers = append(out.Layers, pre, l.Clone(), post)
	}
	return out, nil
}

// Instances samples k independent twirls of c.
func Instances(c *circuit.Circuit, scope Scope, k int, rng *rand.Rand) ([]*circuit.Circuit, error) {
	out := make([]*circuit.Circuit, 0, k)
	for i := 0; i < k; i++ {
		inst, err := Instance(c, scope, rng)
		if err != nil {
			return nil, err
		}
		out = append(out, inst)
	}
	return out, nil
}

// PropagateThroughLayer conjugates a Pauli string through the ideal action
// of a two-qubit Clifford layer: s -> L s L^dagger (sign tracked via the
// phase). Qubits without gates are unchanged. Used by the layer-fidelity
// protocol to know which Pauli to measure after d layer applications.
func PropagateThroughLayer(l *circuit.Layer, s pauli.String) (pauli.String, error) {
	out := pauli.String{Ops: append([]pauli.Pauli(nil), s.Ops...), Phase: s.Phase}
	for _, in := range l.TwoQubitGates() {
		tab, err := TableFor(in.Gate)
		if err != nil {
			return pauli.String{}, err
		}
		q0, q1 := in.Qubits[0], in.Qubits[1]
		c := tab.Conjugate(pauli.Pair{P0: out.Ops[q0], P1: out.Ops[q1]})
		out.Ops[q0], out.Ops[q1] = c.Out.P0, c.Out.P1
		if c.Sign < 0 {
			out.Phase = (out.Phase + 2) % 4
		}
	}
	return out, nil
}
