package pass

import (
	"math/rand"
	"strings"
	"testing"

	"casq/internal/caec"
	"casq/internal/circuit"
	"casq/internal/dd"
	"casq/internal/device"
	"casq/internal/gates"
	"casq/internal/models"
	"casq/internal/sched"
	"casq/internal/twirl"
)

func testDevice() *device.Device {
	return device.NewLine("pass", 4, device.DefaultOptions())
}

// legacyCompile replays the pre-redesign core.Compiler.Compile pass order
// verbatim (twirl -> schedule -> DD -> CA-EC -> schedule) so the pipeline
// rewrite can be pinned against it.
func legacyCompile(t *testing.T, dev *device.Device, c *circuit.Circuit, seed int64,
	doTwirl bool, ddStrat dd.Strategy, ec bool) (*circuit.Circuit, float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	out := c.Clone()
	var err error
	if doTwirl {
		out, err = twirl.Instance(out, twirl.GatesOnly, rng)
		if err != nil {
			t.Fatal(err)
		}
	}
	sched.Schedule(out, dev)
	if ddStrat != dd.None {
		o := dd.DefaultOptions()
		o.Strategy = ddStrat
		if _, err := dd.Insert(out, dev, o); err != nil {
			t.Fatal(err)
		}
	}
	if ec {
		out, _, err = caec.Apply(out, dev, caec.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
	}
	dur := sched.Schedule(out, dev)
	return out, dur
}

// TestGoldenNamedPipelinesMatchLegacyCompile pins every canned strategy
// pipeline bit-for-bit against the pre-redesign Compile path.
func TestGoldenNamedPipelinesMatchLegacyCompile(t *testing.T) {
	dev := testDevice()
	base := models.BuildFloquetIsing(4, 3)
	cases := []struct {
		pl      Pipeline
		twirl   bool
		ddStrat dd.Strategy
		ec      bool
	}{
		{Bare(), false, dd.None, false},
		{Twirled(), true, dd.None, false},
		{WithDD(dd.Aligned), true, dd.Aligned, false},
		{WithDD(dd.Staggered), true, dd.Staggered, false},
		{CADD(), true, dd.ContextAware, false},
		{CAEC(), true, dd.None, true},
		{Combined(), true, dd.ContextAware, true},
	}
	for _, tc := range cases {
		const seed = 23
		want, wantDur := legacyCompile(t, dev, base, seed, tc.twirl, tc.ddStrat, tc.ec)
		got, rep, err := tc.pl.Apply(dev, rand.New(rand.NewSource(seed)), base)
		if err != nil {
			t.Fatalf("%s: %v", tc.pl.Name, err)
		}
		if got.String() != want.String() {
			t.Errorf("%s: pipeline output diverged from legacy compile\nlegacy:\n%s\npipeline:\n%s",
				tc.pl.Name, want.String(), got.String())
		}
		if rep.Duration != wantDur {
			t.Errorf("%s: duration %v, legacy %v", tc.pl.Name, rep.Duration, wantDur)
		}
	}
}

func TestPipelineDoesNotMutateInput(t *testing.T) {
	dev := testDevice()
	base := models.BuildFloquetIsing(4, 1)
	depth := base.Depth()
	if _, _, err := Combined().Apply(dev, rand.New(rand.NewSource(1)), base); err != nil {
		t.Fatal(err)
	}
	if base.Depth() != depth {
		t.Error("Apply mutated the input circuit")
	}
	if base.CountGates(gates.XDD) != 0 {
		t.Error("Apply inserted pulses into the input circuit")
	}
}

// TestCustomOrderings exercises compositions the pre-redesign Strategy
// could not express.
func TestCustomOrderings(t *testing.T) {
	dev := testDevice()
	base := models.BuildFloquetIsing(4, 2)
	ddOpts := dd.DefaultOptions()
	custom := []Pipeline{
		// EC before DD: compensation first, decoupling on the result.
		New("ec-then-dd", Twirl(twirl.GatesOnly), Schedule(), EC(caec.DefaultOptions()), Schedule(), DD(ddOpts)),
		// Twirl-free DD ablation.
		New("dd-only", Schedule(), DD(ddOpts)),
		// Double twirl.
		New("double-twirl", Twirl(twirl.GatesOnly), Twirl(twirl.AllQubits), Schedule()),
		// EC-only without twirl.
		New("ec-only", Schedule(), EC(caec.DefaultOptions())),
	}
	for _, pl := range custom {
		out, rep, err := pl.Apply(dev, rand.New(rand.NewSource(9)), base)
		if err != nil {
			t.Fatalf("%s: %v", pl.Name, err)
		}
		if err := out.Validate(); err != nil {
			t.Fatalf("%s: invalid circuit: %v", pl.Name, err)
		}
		if rep.Duration <= 0 {
			t.Errorf("%s: zero duration", pl.Name)
		}
		if len(rep.Applied) != len(pl.Passes) {
			t.Errorf("%s: applied %v, want %d passes", pl.Name, rep.Applied, len(pl.Passes))
		}
	}
}

func TestReportRecordsPassWork(t *testing.T) {
	dev := testDevice()
	base := models.BuildFloquetIsing(4, 2)
	out, rep, err := Combined().Apply(dev, rand.New(rand.NewSource(4)), base)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pipeline != "ca-ec+dd" {
		t.Errorf("pipeline name %q", rep.Pipeline)
	}
	if rep.DD.Total == 0 {
		t.Error("no DD pulses recorded")
	}
	if rep.EC.VirtualRZ == 0 {
		t.Error("no EC corrections recorded")
	}
	if out.CountGates(gates.XDD) != rep.DD.Total {
		t.Errorf("report says %d pulses, circuit has %d", rep.DD.Total, out.CountGates(gates.XDD))
	}
}

// TestReportAccumulatesRepeatedPasses pins that repeated DD/EC passes add
// into the report instead of overwriting it with the last pass's work.
func TestReportAccumulatesRepeatedPasses(t *testing.T) {
	dev := testDevice()
	base := models.BuildFloquetIsing(4, 2)
	aligned := dd.DefaultOptions()
	aligned.Strategy = dd.Aligned

	single, srep, err := New("dd-once", Schedule(), DD(aligned)).
		Apply(dev, rand.New(rand.NewSource(7)), base)
	if err != nil {
		t.Fatal(err)
	}
	double, drep, err := New("dd-twice", Schedule(), DD(aligned), Schedule(), DD(aligned)).
		Apply(dev, rand.New(rand.NewSource(7)), base)
	if err != nil {
		t.Fatal(err)
	}
	if srep.DD.Total == 0 {
		t.Fatal("single DD pass inserted nothing")
	}
	// The second DD pass finds the windows already decoupled and inserts
	// nothing; under the old overwrite semantics the report would show
	// that last pass's zero. Accumulation keeps the first pass's work.
	if got, want := drep.DD.Total, double.CountGates(gates.XDD); got != want {
		t.Errorf("double-DD report says %d pulses, circuit has %d", got, want)
	}
	if drep.DD.Total != srep.DD.Total {
		t.Errorf("double-DD total %d, want %d (first pass's pulses, not the last pass's zero)",
			drep.DD.Total, srep.DD.Total)
	}
	if got, want := single.CountGates(gates.XDD), srep.DD.Total; got != want {
		t.Errorf("single-DD circuit has %d pulses, report says %d", got, want)
	}

	ecrep := func(passes ...Pass) Report {
		_, rep, err := New("ec", passes...).Apply(dev, rand.New(rand.NewSource(7)), base)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	once := ecrep(Schedule(), EC(caec.DefaultOptions()))
	twice := ecrep(Schedule(), EC(caec.DefaultOptions()), Schedule(), EC(caec.DefaultOptions()))
	if once.EC.VirtualRZ == 0 {
		t.Fatal("single EC pass recorded nothing")
	}
	if twice.EC.VirtualRZ <= once.EC.VirtualRZ {
		t.Errorf("double-EC VirtualRZ %d should exceed single %d", twice.EC.VirtualRZ, once.EC.VirtualRZ)
	}
}

// customPass checks user-defined passes slot into a pipeline: it strips
// trailing all-delay layers.
type customPass struct{ applied *bool }

func (customPass) Name() string { return "strip-trailing-delays" }
func (p customPass) Apply(ctx *Context, c *circuit.Circuit) error {
	*p.applied = true
	for len(c.Layers) > 0 {
		last := c.Layers[len(c.Layers)-1]
		all := len(last.Instrs) > 0
		for _, in := range last.Instrs {
			if in.Gate != gates.Delay {
				all = false
			}
		}
		if !all {
			break
		}
		c.Layers = c.Layers[:len(c.Layers)-1]
	}
	return nil
}

func TestCustomPassRegistration(t *testing.T) {
	dev := testDevice()
	c := circuit.New(4, 0)
	c.AddLayer(circuit.OneQubitLayer).H(0)
	l := c.AddLayer(circuit.TwoQubitLayer)
	for q := 0; q < 4; q++ {
		l.Add(circuit.Instruction{Gate: gates.Delay, Qubits: []int{q}, Params: []float64{500}})
	}
	applied := false
	pl := Twirled().Then(customPass{&applied}).Named("twirl+strip")
	out, rep, err := pl.Apply(dev, rand.New(rand.NewSource(2)), c)
	if err != nil {
		t.Fatal(err)
	}
	if !applied {
		t.Fatal("custom pass not applied")
	}
	if out.Depth() >= c.Depth() {
		t.Errorf("trailing delay layer not stripped: depth %d -> %d", c.Depth(), out.Depth())
	}
	if want := "strip-trailing-delays"; rep.Applied[len(rep.Applied)-1] != want {
		t.Errorf("applied = %v, want last %q", rep.Applied, want)
	}
	if !strings.Contains(pl.String(), "twirl -> sched -> strip-trailing-delays") {
		t.Errorf("String() = %q", pl.String())
	}
}

// TestUnscheduledDDOrECErrors pins that timing-consuming passes reject
// pipelines missing a preceding Schedule instead of silently inserting
// nothing.
func TestUnscheduledDDOrECErrors(t *testing.T) {
	dev := testDevice()
	base := models.BuildFloquetIsing(4, 2)
	for _, pl := range []Pipeline{
		New("dd-no-sched", Twirl(twirl.GatesOnly), DD(dd.DefaultOptions())),
		New("ec-no-sched", EC(caec.DefaultOptions())),
	} {
		_, _, err := pl.Apply(dev, rand.New(rand.NewSource(1)), base)
		if err == nil {
			t.Fatalf("%s: expected error for missing sched pass", pl.Name)
		}
		if !strings.Contains(err.Error(), "sched") {
			t.Errorf("%s: error %q should point at the missing sched pass", pl.Name, err)
		}
	}
}

func TestApplyErrorNamesPass(t *testing.T) {
	dev := testDevice()
	c := circuit.New(4, 0)
	c.AddLayer(circuit.OneQubitLayer).H(0)
	bad := New("bad", failPass{})
	if _, _, err := bad.Apply(dev, rand.New(rand.NewSource(1)), c); err == nil {
		t.Fatal("expected error")
	} else if !strings.Contains(err.Error(), "boom") || !strings.Contains(err.Error(), "fail") {
		t.Errorf("error %q should name the pass and cause", err)
	}
}

type failPass struct{}

func (failPass) Name() string { return "fail" }
func (failPass) Apply(ctx *Context, c *circuit.Circuit) error {
	return errBoom
}

var errBoom = errorString("boom")

type errorString string

func (e errorString) Error() string { return string(e) }
