// Package pass is the composable compilation layer of the context-aware
// compiler. The paper's central claim is that error suppression must be
// *context-aware* — the right pass composition depends on the workload —
// so instead of one hard-coded pipeline, this package exposes each
// transformation (Pauli twirling, scheduling, CA-DD insertion, CA-EC
// compensation) as a Pass and lets users compose arbitrary orderings
// through a Pipeline.
//
// The paper's six named strategies (Bare … Combined) are provided as
// canned pipelines; anything else — EC before DD, double twirling,
// twirl-free DD ablations — is one pass.New call away:
//
//	pl := pass.New("ec-then-dd",
//	    pass.Twirl(twirl.GatesOnly),
//	    pass.Schedule(),
//	    pass.EC(caec.DefaultOptions()),
//	    pass.Schedule(),
//	    pass.DD(dd.DefaultOptions()),
//	)
//	compiled, report, err := pl.Apply(dev, rng, circ)
//
// A custom Pass is any type implementing Name/Apply; it receives a
// *Context carrying the device, the deterministic RNG of this compilation,
// and the Report sink the built-in passes record into.
package pass

import (
	"fmt"
	"math/rand"

	"casq/internal/caec"
	"casq/internal/circuit"
	"casq/internal/dd"
	"casq/internal/device"
	"casq/internal/obs"
	"casq/internal/sched"
	"casq/internal/twirl"
)

// Context is the per-compilation state threaded through every pass.
type Context struct {
	// Dev is the hardware model the passes compile against.
	Dev *device.Device
	// Rng is the deterministic randomness source of this compilation
	// (twirl sampling). Each compilation owns its Rng; passes must draw
	// all randomness from it so that a pipeline is reproducible from the
	// seed alone.
	Rng *rand.Rand
	// Report is the sink the passes record their work into.
	Report *Report
	// Engine names the simulation backend this compilation targets
	// ("statevector", "stab", "auto"; "" = statevector). Passes may
	// consult it to keep their output representable — e.g. avoid
	// non-Clifford rewrites when compiling for the stabilizer engine.
	Engine string
	// Tracer records per-pass compile spans; nil (the default) disables
	// tracing at zero cost. Lane is the tracer lane the spans land on —
	// the executor assigns one lane per concurrent instance so compile
	// timelines render side by side.
	Tracer *obs.Tracer
	Lane   int
}

// Report accumulates what the passes of one pipeline application did.
// DD and EC accumulate across repeated passes (a double-DD pipeline
// reports the union of both passes' windows and the total pulse count).
type Report struct {
	Pipeline string   // pipeline name
	Applied  []string // pass names in application order
	DD       dd.Report
	EC       caec.Stats
	Duration float64 // scheduled duration of the compiled circuit, ns

	// Layout is the logical -> physical qubit assignment chosen by a
	// layout-selection pass (internal/layout), nil when no layout pass ran.
	Layout []int
	// LayoutScore is that assignment's predicted accumulated coherent
	// error in radians (lower is better).
	LayoutScore float64
	// FinalLayout maps each circuit wire to its physical qubit after
	// routing (SWAPs permute wires); nil when no routing pass ran.
	FinalLayout []int
	// Swaps counts SWAP gates inserted by routing passes.
	Swaps int

	// Engine is the simulation backend that executed this compilation
	// ("statevector" or "stab"), recorded by the executor after engine
	// dispatch; empty when the circuit was compiled but not executed.
	Engine string
}

// Pass is one composable circuit transformation. Apply mutates the circuit
// in place (rebuilding passes swap the new contents into the same
// allocation) and records what it did in ctx.Report.
type Pass interface {
	Name() string
	Apply(ctx *Context, c *circuit.Circuit) error
}

// twirlPass samples one Pauli-twirl instance.
type twirlPass struct{ scope twirl.Scope }

// Twirl returns a pass sampling one Pauli-twirl instance with the scope.
func Twirl(scope twirl.Scope) Pass { return twirlPass{scope} }

func (p twirlPass) Name() string {
	if p.scope == twirl.AllQubits {
		return "twirl:all"
	}
	return "twirl"
}

func (p twirlPass) Apply(ctx *Context, c *circuit.Circuit) error {
	out, err := twirl.Instance(c, p.scope, ctx.Rng)
	if err != nil {
		return err
	}
	*c = *out
	return nil
}

// schedPass assigns start times and durations to every layer.
type schedPass struct{}

// Schedule returns the scheduling pass. DD and EC consume layer timing, so
// a Schedule must precede them in any pipeline.
func Schedule() Pass { return schedPass{} }

func (schedPass) Name() string { return "sched" }

func (schedPass) Apply(ctx *Context, c *circuit.Circuit) error {
	ctx.Report.Duration = sched.Schedule(c, ctx.Dev)
	return nil
}

// needsSchedule guards the timing-consuming passes: on an unscheduled
// circuit they would find no idle windows and silently no-op, so a
// missing Schedule() earlier in the pipeline must be an error, not a
// success with zero pulses.
func needsSchedule(c *circuit.Circuit, pass string) error {
	if c.Depth() > 0 && c.TotalDuration() == 0 {
		return fmt.Errorf("%s requires a scheduled circuit — add a sched pass before it", pass)
	}
	return nil
}

// ddPass inserts dynamical-decoupling pulses (Algorithm 1 when the options
// select the context-aware strategy).
type ddPass struct{ opts dd.Options }

// DD returns a dynamical-decoupling insertion pass.
func DD(opts dd.Options) Pass { return ddPass{opts} }

func (p ddPass) Name() string { return "dd:" + p.opts.Strategy.String() }

func (p ddPass) Apply(ctx *Context, c *circuit.Circuit) error {
	if err := needsSchedule(c, p.Name()); err != nil {
		return err
	}
	rep, err := dd.Insert(c, ctx.Dev, p.opts)
	if err != nil {
		return err
	}
	ctx.Report.DD.Windows = append(ctx.Report.DD.Windows, rep.Windows...)
	ctx.Report.DD.Total += rep.Total
	return nil
}

// ecPass applies context-aware error compensation (Algorithm 2).
type ecPass struct{ opts caec.Options }

// EC returns a context-aware error-compensation pass.
func EC(opts caec.Options) Pass { return ecPass{opts} }

func (ecPass) Name() string { return "ca-ec" }

func (p ecPass) Apply(ctx *Context, c *circuit.Circuit) error {
	if err := needsSchedule(c, "ca-ec"); err != nil {
		return err
	}
	out, stats, err := caec.Apply(c, ctx.Dev, p.opts)
	if err != nil {
		return err
	}
	s := &ctx.Report.EC
	s.VirtualRZ += stats.VirtualRZ
	s.AbsorbedUcan += stats.AbsorbedUcan
	s.AbsorbedCX += stats.AbsorbedCX
	s.InsertedRZZ += stats.InsertedRZZ
	s.Conditional += stats.Conditional
	s.SignFlips += stats.SignFlips
	s.Dropped += stats.Dropped
	s.DroppedAngles += stats.DroppedAngles
	*c = *out
	return nil
}

// Pipeline is an ordered pass composition under a name.
type Pipeline struct {
	Name   string
	Passes []Pass
}

// New composes passes into a named pipeline.
func New(name string, passes ...Pass) Pipeline {
	return Pipeline{Name: name, Passes: passes}
}

// Then returns a new pipeline with the passes appended.
func (p Pipeline) Then(passes ...Pass) Pipeline {
	out := Pipeline{Name: p.Name, Passes: make([]Pass, 0, len(p.Passes)+len(passes))}
	out.Passes = append(out.Passes, p.Passes...)
	out.Passes = append(out.Passes, passes...)
	return out
}

// Named returns a copy of the pipeline under a different name.
func (p Pipeline) Named(name string) Pipeline {
	p.Name = name
	return p
}

// String lists the pipeline as "name(pass1 -> pass2 -> ...)".
func (p Pipeline) String() string {
	s := p.Name + "("
	for i, ps := range p.Passes {
		if i > 0 {
			s += " -> "
		}
		s += ps.Name()
	}
	return s + ")"
}

// Apply clones the circuit, runs every pass in order, re-schedules so the
// result always carries a valid timing assignment, validates, and returns
// the compiled circuit with the report. The input circuit is not mutated.
func (p Pipeline) Apply(dev *device.Device, rng *rand.Rand, c *circuit.Circuit) (*circuit.Circuit, Report, error) {
	return p.ApplyForEngine(dev, rng, c, "")
}

// ApplyForEngine is Apply with the target simulation engine declared in
// the pass Context, so engine-aware passes can adapt their rewrites. The
// RNG draw sequence is independent of the engine: the same seed compiles
// to the same circuit under either backend.
func (p Pipeline) ApplyForEngine(dev *device.Device, rng *rand.Rand, c *circuit.Circuit, engine string) (*circuit.Circuit, Report, error) {
	return p.ApplyContext(&Context{Dev: dev, Rng: rng, Engine: engine}, c)
}

// ApplyContext is the fully general entry point: the caller assembles
// the Context (device, RNG, engine, tracer/lane), and the pipeline
// initializes the Report and runs. Each pass records a "pass:<name>"
// span on ctx.Tracer, so a traced compilation renders its pass timeline.
func (p Pipeline) ApplyContext(ctx *Context, c *circuit.Circuit) (*circuit.Circuit, Report, error) {
	ctx.Report = &Report{Pipeline: p.Name}
	out := c.Clone()
	for _, ps := range p.Passes {
		var sp obs.Span
		if ctx.Tracer.Enabled() {
			sp = ctx.Tracer.Start("pass:" + ps.Name()).WithLane(ctx.Lane)
		}
		err := ps.Apply(ctx, out)
		sp.End()
		if err != nil {
			return nil, *ctx.Report, fmt.Errorf("pass %s: %s: %w", p.Name, ps.Name(), err)
		}
		ctx.Report.Applied = append(ctx.Report.Applied, ps.Name())
	}
	// Final normalization: every compiled circuit leaves scheduled, and the
	// recorded duration reflects all inserted gates.
	var sp obs.Span
	if ctx.Tracer.Enabled() {
		sp = ctx.Tracer.Start("pass:sched.final").WithLane(ctx.Lane)
	}
	ctx.Report.Duration = sched.Schedule(out, ctx.Dev)
	sp.End()
	if err := out.Validate(); err != nil {
		return nil, *ctx.Report, fmt.Errorf("pass %s: compiled circuit invalid: %w", p.Name, err)
	}
	return out, *ctx.Report, nil
}

// The six named strategies benchmarked throughout the paper, as canned
// pipelines. Each mirrors the pre-redesign compiler's pass order exactly:
// twirl -> schedule -> DD -> CA-EC (plus the final normalizing schedule
// Apply always performs).

// Bare schedules only.
func Bare() Pipeline { return New("bare", Schedule()) }

// Twirled applies Pauli twirling only — the baseline of Figs. 6-8.
func Twirled() Pipeline {
	return New("twirled", Twirl(twirl.GatesOnly), Schedule())
}

// WithDD applies twirling plus the given DD strategy.
func WithDD(s dd.Strategy) Pipeline {
	opts := dd.DefaultOptions()
	opts.Strategy = s
	return New("dd-"+s.String(), Twirl(twirl.GatesOnly), Schedule(), DD(opts))
}

// CADD is the paper's context-aware dynamical decoupling (Algorithm 1).
func CADD() Pipeline { return WithDD(dd.ContextAware).Named("ca-dd") }

// CAEC is the paper's context-aware error compensation (Algorithm 2).
func CAEC() Pipeline {
	return New("ca-ec", Twirl(twirl.GatesOnly), Schedule(), EC(caec.DefaultOptions()))
}

// Combined applies CA-DD first and CA-EC on what DD leaves behind
// (Sec. V E).
func Combined() Pipeline {
	ddOpts := dd.DefaultOptions()
	ddOpts.Strategy = dd.ContextAware
	return New("ca-ec+dd", Twirl(twirl.GatesOnly), Schedule(), DD(ddOpts), EC(caec.DefaultOptions()))
}
