package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
)

// Key is the content address of one cached result: the lowercase hex
// SHA-256 of the canonical JSON encoding of its request descriptor.
type Key string

// Valid reports whether k has the shape Fingerprint produces (64 hex
// characters); the disk tier refuses other keys so a corrupted key can
// never escape the store directory.
func (k Key) Valid() bool {
	if len(k) != 2*sha256.Size {
		return false
	}
	for _, c := range k {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Fingerprint computes the content address of an arbitrary request
// descriptor. The descriptor is marshaled to JSON, re-parsed, and
// re-serialized canonically — object keys sorted, no insignificant
// whitespace, numbers kept as their original JSON text — before hashing.
// Because object keys are sorted, the fingerprint is invariant under
// struct field reordering: two descriptor types with the same fields in a
// different declaration order address the same content.
func Fingerprint(v any) (Key, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("store: fingerprint marshal: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber() // keep number text exact; float64 round-trips would lose 64-bit seeds
	var tree any
	if err := dec.Decode(&tree); err != nil {
		return "", fmt.Errorf("store: fingerprint parse: %w", err)
	}
	var b bytes.Buffer
	if err := writeCanonical(&b, tree); err != nil {
		return "", err
	}
	sum := sha256.Sum256(b.Bytes())
	return Key(hex.EncodeToString(sum[:])), nil
}

// writeCanonical serializes a decoded JSON tree deterministically.
func writeCanonical(b *bytes.Buffer, v any) error {
	switch t := v.(type) {
	case nil:
		b.WriteString("null")
	case bool:
		if t {
			b.WriteString("true")
		} else {
			b.WriteString("false")
		}
	case json.Number:
		b.WriteString(t.String())
	case string:
		enc, err := json.Marshal(t)
		if err != nil {
			return err
		}
		b.Write(enc)
	case []any:
		b.WriteByte('[')
		for i, e := range t {
			if i > 0 {
				b.WriteByte(',')
			}
			if err := writeCanonical(b, e); err != nil {
				return err
			}
		}
		b.WriteByte(']')
	case map[string]any:
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(',')
			}
			enc, err := json.Marshal(k)
			if err != nil {
				return err
			}
			b.Write(enc)
			b.WriteByte(':')
			if err := writeCanonical(b, t[k]); err != nil {
				return err
			}
		}
		b.WriteByte('}')
	default:
		return fmt.Errorf("store: unexpected canonical JSON node %T", v)
	}
	return nil
}
