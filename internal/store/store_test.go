package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// reordered pairs: identical fields and values, different declaration
// order. Canonical fingerprinting must give them the same address.
type descA struct {
	ID        string  `json:"id"`
	Seed      int64   `json:"seed"`
	Shots     int     `json:"shots"`
	Fast      bool    `json:"fast"`
	Threshold float64 `json:"threshold"`
}

type descB struct {
	Threshold float64 `json:"threshold"`
	Fast      bool    `json:"fast"`
	Shots     int     `json:"shots"`
	ID        string  `json:"id"`
	Seed      int64   `json:"seed"`
}

func TestFingerprintFieldOrderIndependent(t *testing.T) {
	a := descA{ID: "fig3c", Seed: 1<<62 + 12345, Shots: 240, Fast: true, Threshold: 0.25}
	b := descB{ID: "fig3c", Seed: 1<<62 + 12345, Shots: 240, Fast: true, Threshold: 0.25}
	ka, err := Fingerprint(a)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := Fingerprint(b)
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Errorf("reordered descriptors hash differently:\n  %s\n  %s", ka, kb)
	}
	if !ka.Valid() {
		t.Errorf("fingerprint %q not a valid key", ka)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := descA{ID: "fig3c", Seed: 11, Shots: 240}
	k0, _ := Fingerprint(base)
	perturbed := []descA{
		{ID: "fig3d", Seed: 11, Shots: 240},
		{ID: "fig3c", Seed: 12, Shots: 240},
		{ID: "fig3c", Seed: 11, Shots: 241},
		{ID: "fig3c", Seed: 11, Shots: 240, Fast: true},
		{ID: "fig3c", Seed: 11, Shots: 240, Threshold: 1e-9},
	}
	for _, p := range perturbed {
		k, err := Fingerprint(p)
		if err != nil {
			t.Fatal(err)
		}
		if k == k0 {
			t.Errorf("distinct descriptor %+v collides with base", p)
		}
	}
	// Large seeds must not be rounded through float64: 2^60 and 2^60+1
	// differ only below float64 precision at that magnitude.
	k1, _ := Fingerprint(descA{Seed: 1 << 60})
	k2, _ := Fingerprint(descA{Seed: 1<<60 + 1})
	if k1 == k2 {
		t.Error("adjacent 64-bit seeds collide (float64 round-trip?)")
	}
}

func TestFingerprintNestedMapsAndSlices(t *testing.T) {
	k1, err := Fingerprint(map[string]any{"axes": []any{map[string]any{"b": 2, "a": 1}}, "id": "x"})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := Fingerprint(map[string]any{"id": "x", "axes": []any{map[string]any{"a": 1, "b": 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("map key order leaked into fingerprint")
	}
	// Slice order is significant.
	k3, _ := Fingerprint(map[string]any{"id": "x", "axes": []any{2, 1}})
	k4, _ := Fingerprint(map[string]any{"id": "x", "axes": []any{1, 2}})
	if k3 == k4 {
		t.Error("slice order must be significant")
	}
}

func TestKeyValid(t *testing.T) {
	good := Key("0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef")
	if !good.Valid() {
		t.Error("64-hex key rejected")
	}
	bad := []Key{"", "short", Key("../../../../etc/passwd"),
		Key("0123456789ABCDEF0123456789abcdef0123456789abcdef0123456789abcdef")}
	for _, k := range bad {
		if k.Valid() {
			t.Errorf("key %q accepted", k)
		}
	}
}

func mustKey(t *testing.T, v any) Key {
	t.Helper()
	k, err := Fingerprint(v)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestMemoryRoundTrip(t *testing.T) {
	s, err := Open("", 4)
	if err != nil {
		t.Fatal(err)
	}
	k := mustKey(t, "payload-1")
	if _, ok, _ := s.Get(k); ok {
		t.Fatal("hit before put")
	}
	if err := s.Put(k, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	data, ok, err := s.Get(k)
	if err != nil || !ok || string(data) != "hello" {
		t.Fatalf("get = %q, %v, %v", data, ok, err)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	s, _ := Open("", 3)
	keys := make([]Key, 5)
	for i := range keys {
		keys[i] = mustKey(t, i)
		if err := s.Put(keys[i], []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d, want capacity 3", s.Len())
	}
	// 0 and 1 were least recently used: evicted.
	for i := 0; i < 2; i++ {
		if _, ok, _ := s.Get(keys[i]); ok {
			t.Errorf("key %d survived eviction", i)
		}
	}
	for i := 2; i < 5; i++ {
		if _, ok, _ := s.Get(keys[i]); !ok {
			t.Errorf("key %d missing", i)
		}
	}
	// Touch the oldest survivor, insert one more: the untouched middle
	// entry is evicted instead.
	if _, ok, _ := s.Get(keys[2]); !ok {
		t.Fatal("key 2 missing")
	}
	k5 := mustKey(t, 5)
	s.Put(k5, []byte{5})
	if _, ok, _ := s.Get(keys[3]); ok {
		t.Error("key 3 should be the LRU victim after key 2 was touched")
	}
	if _, ok, _ := s.Get(keys[2]); !ok {
		t.Error("recently touched key 2 evicted")
	}
	if s.Stats().Evictions != 3 {
		t.Errorf("evictions = %d, want 3", s.Stats().Evictions)
	}
}

func TestDiskRoundTripAndReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	k := mustKey(t, "persisted")
	payload := []byte(`{"id":"fig6","series":[1,2,3]}`)
	if err := s.Put(k, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, string(k)+".json")); err != nil {
		t.Fatalf("disk entry missing: %v", err)
	}
	// A fresh store over the same dir serves the entry from disk...
	s2, _ := Open(dir, 2)
	data, ok, err := s2.Get(k)
	if err != nil || !ok || !bytes.Equal(data, payload) {
		t.Fatalf("reopen get = %q, %v, %v", data, ok, err)
	}
	// ...and promotes it into the memory tier.
	if s2.Len() != 1 {
		t.Errorf("disk hit not promoted to memory tier: len=%d", s2.Len())
	}
	// No stray temp files left behind.
	glob, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if len(glob) != 0 {
		t.Errorf("temp files left behind: %v", glob)
	}
}

func TestDiskSurvivesMemEviction(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, 1)
	k1, k2 := mustKey(t, 1), mustKey(t, 2)
	s.Put(k1, []byte("one"))
	s.Put(k2, []byte("two")) // evicts k1 from memory, not from disk
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
	data, ok, err := s.Get(k1)
	if err != nil || !ok || string(data) != "one" {
		t.Fatalf("evicted entry lost from disk: %q, %v, %v", data, ok, err)
	}
}

func TestPutRejectsInvalidKey(t *testing.T) {
	s, _ := Open(t.TempDir(), 2)
	if err := s.Put(Key("../escape"), []byte("x")); err == nil {
		t.Error("invalid key accepted")
	}
}

func TestStoreConcurrent(t *testing.T) {
	s, _ := Open("", 8)
	done := make(chan error, 16)
	for w := 0; w < 16; w++ {
		go func(w int) {
			var err error
			for i := 0; i < 50 && err == nil; i++ {
				k := mustKeyErrless(fmt.Sprintf("k%d", i%12))
				if i%2 == 0 {
					err = s.Put(k, []byte{byte(i)})
				} else {
					_, _, err = s.Get(k)
				}
			}
			done <- err
		}(w)
	}
	for w := 0; w < 16; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func mustKeyErrless(v any) Key {
	k, err := Fingerprint(v)
	if err != nil {
		panic(err)
	}
	return k
}
