package store

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
)

// backendsUnderTest enumerates one instance of every Backend kind; the
// HTTP backend is served by a real Store behind an httptest server, so
// the round trip exercises both sides of the wire protocol.
func backendsUnderTest(t *testing.T) map[string]Backend {
	t.Helper()
	disk, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	remote := OpenWith(NewMem(), 8)
	ts := httptest.NewServer(Handler(remote))
	t.Cleanup(ts.Close)
	return map[string]Backend{
		"disk": disk,
		"mem":  NewMem(),
		"http": NewHTTP(ts.URL, nil),
	}
}

func TestBackendRoundTrip(t *testing.T) {
	for name, b := range backendsUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			if b.Name() != name {
				t.Errorf("Name() = %q, want %q", b.Name(), name)
			}
			k := mustKey(t, "roundtrip-"+name)
			if _, ok, err := b.Load(k); ok || err != nil {
				t.Fatalf("load before store = %v, %v", ok, err)
			}
			payload := []byte(`{"id":"fig6","series":[1,2,3]}`)
			if err := b.Store(k, payload); err != nil {
				t.Fatal(err)
			}
			data, ok, err := b.Load(k)
			if err != nil || !ok || !bytes.Equal(data, payload) {
				t.Fatalf("load = %q, %v, %v", data, ok, err)
			}
			// Re-storing the same key (content addressing makes payloads
			// identical) must succeed.
			if err := b.Store(k, payload); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestStoreOverEveryBackend runs the Store's promote-on-hit path over
// each backend kind: an entry evicted from the LRU tier comes back from
// the backend.
func TestStoreOverEveryBackend(t *testing.T) {
	for name, b := range backendsUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			s := OpenWith(b, 1)
			k1, k2 := mustKey(t, name+"-1"), mustKey(t, name+"-2")
			if err := s.Put(k1, []byte("one")); err != nil {
				t.Fatal(err)
			}
			if err := s.Put(k2, []byte("two")); err != nil {
				t.Fatal(err)
			}
			if s.Len() != 1 {
				t.Fatalf("mem tier len = %d, want 1", s.Len())
			}
			data, ok, err := s.Get(k1)
			if err != nil || !ok || string(data) != "one" {
				t.Fatalf("evicted entry lost from backend: %q, %v, %v", data, ok, err)
			}
			st := s.Stats()
			if st.Backend != name || st.Puts != 2 || st.Evictions == 0 {
				t.Errorf("stats = %+v", st)
			}
		})
	}
}

// TestStoreConcurrentEviction hammers Put/Get on a store whose LRU tier
// is much smaller than the key population, over every backend kind, so
// promotion, eviction, and backend I/O race each other under -race.
func TestStoreConcurrentEviction(t *testing.T) {
	for name, b := range backendsUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			s := OpenWith(b, 4)
			keys := make([]Key, 24)
			for i := range keys {
				keys[i] = mustKeyErrless(fmt.Sprintf("cc-%s-%d", name, i))
			}
			var wg sync.WaitGroup
			errs := make(chan error, 16)
			for w := 0; w < 16; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 40; i++ {
						k := keys[(w*7+i)%len(keys)]
						if (w+i)%3 == 0 {
							if err := s.Put(k, []byte{byte(w), byte(i)}); err != nil {
								errs <- err
								return
							}
						} else if _, _, err := s.Get(k); err != nil {
							errs <- err
							return
						}
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			if got := s.Len(); got > 4 {
				t.Errorf("mem tier overflowed capacity: %d", got)
			}
		})
	}
}

// TestHTTPBackendRejectsInvalidKey pins the wire-level key validation:
// a path-traversal key never reaches the remote store.
func TestHTTPBackendRejectsInvalidKey(t *testing.T) {
	remote := OpenWith(NewMem(), 8)
	ts := httptest.NewServer(Handler(remote))
	t.Cleanup(ts.Close)
	b := NewHTTP(ts.URL, nil)
	if err := b.Store(Key("not-a-key"), []byte("x")); err == nil {
		t.Error("invalid key accepted by remote store")
	}
	if _, ok, err := b.Load(Key("not-a-key")); ok || err == nil {
		t.Errorf("invalid key load = %v, %v", ok, err)
	}
}
