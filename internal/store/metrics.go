package store

import (
	"time"

	"casq/internal/obs"
)

// Process-wide store metrics on the obs default registry. Every Store
// in the process feeds the same families (the per-Store split stays
// available via Stats on /healthz); `casq serve` exposes them on
// GET /metrics. Children are resolved once here so the Get/Put hot
// paths pay only an atomic add plus a bucket search.
var (
	mHits      = obs.Default().Counter("casq_store_hits_total", "Store lookups answered from the memory or backend tier.")
	mMisses    = obs.Default().Counter("casq_store_misses_total", "Store lookups that found nothing in any tier.")
	mPuts      = obs.Default().Counter("casq_store_puts_total", "Accepted store writes across all tiers.")
	mEvictions = obs.Default().Counter("casq_store_evictions_total", "Memory-tier LRU evictions.")

	mGetSeconds = obs.Default().HistogramVec("casq_store_get_seconds",
		"Store lookup latency by result (hit or miss).", "result", nil)
	mGetHit     = mGetSeconds.With("hit")
	mGetMiss    = mGetSeconds.With("miss")
	mPutSeconds = obs.Default().Histogram("casq_store_put_seconds",
		"Store write latency (backend write included when present).", nil)
)

// observeGet records one lookup's outcome and latency.
func observeGet(start time.Time, hit bool) {
	d := time.Since(start).Seconds()
	if hit {
		mHits.Inc()
		mGetHit.Observe(d)
	} else {
		mMisses.Inc()
		mGetMiss.Observe(d)
	}
}
