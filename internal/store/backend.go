package store

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Backend is the persistence tier beneath the Store's in-memory LRU. The
// disk tier that used to be hard-wired into Store is one implementation;
// a memory backend serves tests and single-process fleets, and an HTTP
// backend lets worker processes on other machines read and write one
// shared store through its coordinator. Implementations must be safe for
// concurrent use and atomic per key: a Load concurrent with a Store of
// the same key sees either the old payload or the whole new one, never a
// torn write.
type Backend interface {
	// Name identifies the backend kind for observability ("disk", "mem",
	// "http"); it is surfaced through Stats and /healthz.
	Name() string
	// Load fetches the payload under k. The second return is false on a
	// clean miss; err is reserved for I/O failures.
	Load(k Key) ([]byte, bool, error)
	// Store persists data under k. Storing the same key twice is allowed
	// (content addressing makes the payloads identical).
	Store(k Key, data []byte) error
}

// diskBackend persists one JSON file per key under a root directory,
// written atomically via rename. This is the tier that survives restarts
// and lets interrupted sweeps resume from their checkpoints.
type diskBackend struct {
	dir string
}

// NewDisk returns the JSON-on-disk backend rooted at dir, creating the
// directory if needed.
func NewDisk(dir string) (Backend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	return &diskBackend{dir: dir}, nil
}

func (d *diskBackend) Name() string      { return "disk" }
func (d *diskBackend) path(k Key) string { return filepath.Join(d.dir, string(k)+".json") }

func (d *diskBackend) Load(k Key) ([]byte, bool, error) {
	data, err := os.ReadFile(d.path(k))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

func (d *diskBackend) Store(k Key, data []byte) error {
	tmp, err := os.CreateTemp(d.dir, "put-*.tmp")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), d.path(k))
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return werr
	}
	return nil
}

// memBackend is an unbounded in-process map: the backend for tests and
// for coordinators that want cross-restart durability handled elsewhere.
// Unlike the Store's LRU tier it never evicts, so it behaves like a disk
// tier without the filesystem.
type memBackend struct {
	mu sync.Mutex
	m  map[Key][]byte
}

// NewMem returns an in-memory backend.
func NewMem() Backend { return &memBackend{m: map[Key][]byte{}} }

func (m *memBackend) Name() string { return "mem" }

func (m *memBackend) Load(k Key) ([]byte, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.m[k]
	return data, ok, nil
}

func (m *memBackend) Store(k Key, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.m[k] = data
	return nil
}

// maxHTTPPayload bounds one store entry on the wire (a full-quality
// figure is tens of kilobytes; 64 MiB is generous headroom, not a quota).
const maxHTTPPayload = 64 << 20

// httpBackend speaks the wire protocol Handler serves: GET/PUT
// <base>/store/{key}. It is how fabric workers on other machines share
// the coordinator's content-addressed store.
type httpBackend struct {
	base   string
	client *http.Client
}

// NewHTTP returns a remote backend against the store served at base
// (e.g. "http://coordinator:8823" — the "/store/{key}" suffix is part of
// the protocol). A nil client selects http.DefaultClient.
func NewHTTP(base string, client *http.Client) Backend {
	if client == nil {
		client = http.DefaultClient
	}
	return &httpBackend{base: strings.TrimRight(base, "/"), client: client}
}

func (h *httpBackend) Name() string     { return "http" }
func (h *httpBackend) url(k Key) string { return h.base + "/store/" + string(k) }

func (h *httpBackend) Load(k Key) ([]byte, bool, error) {
	resp, err := h.client.Get(h.url(k))
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return nil, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, false, fmt.Errorf("remote load: %s: %s", resp.Status, snippet)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxHTTPPayload))
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

func (h *httpBackend) Store(k Key, data []byte) error {
	req, err := http.NewRequest(http.MethodPut, h.url(k), bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := h.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("remote store: %s: %s", resp.Status, snippet)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// Handler exposes a Store over HTTP as the wire protocol NewHTTP speaks:
//
//	GET /store/{key}  payload bytes, 404 on a miss
//	PUT /store/{key}  persist the body under key
//
// Keys are validated before they touch the store, so a malformed remote
// key can never escape into the backend. The fabric coordinator mounts
// this next to its job-queue endpoints.
func Handler(s *Store) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /store/{key}", func(w http.ResponseWriter, r *http.Request) {
		k := Key(r.PathValue("key"))
		if !k.Valid() {
			http.Error(w, "invalid store key", http.StatusBadRequest)
			return
		}
		data, ok, err := s.Get(k)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if !ok {
			http.Error(w, "not found", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(data)
	})
	mux.HandleFunc("PUT /store/{key}", func(w http.ResponseWriter, r *http.Request) {
		k := Key(r.PathValue("key"))
		if !k.Valid() {
			http.Error(w, "invalid store key", http.StatusBadRequest)
			return
		}
		data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxHTTPPayload))
		if err != nil {
			http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
			return
		}
		if err := s.Put(k, data); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}
