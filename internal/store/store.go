// Package store is the content-addressed result cache beneath the sweep
// scheduler, the HTTP serving layer, and the distributed sweep fabric. A
// result is addressed by the SHA-256 fingerprint of its canonical request
// descriptor (experiment id, options, declared parameter space — see
// Fingerprint), so any two requests for the same computation resolve to
// the same Key regardless of who asks or how the descriptor struct is
// laid out.
//
// The store is two-tiered: a bounded in-memory LRU tier answers repeated
// requests without touching anything slow, and a pluggable Backend behind
// it persists results beyond the LRU — JSON files on disk (one per key,
// written atomically via rename, surviving restarts), an unbounded
// in-process map, or a remote store reached over HTTP so worker processes
// on other machines share one coordinator's cache. Payloads are opaque
// bytes — callers decide the encoding — which is what lets the serving
// layer return a cached figure bit-identically from any tier.
package store

import (
	"container/list"
	"fmt"
	"sync"
	"time"
)

// DefaultMemCapacity bounds the in-memory tier when Open is given a
// non-positive capacity.
const DefaultMemCapacity = 256

// Store is a two-tier (memory LRU + Backend) content-addressed cache. It
// is safe for concurrent use. The zero value is not usable; call Open or
// OpenWith.
type Store struct {
	mu      sync.Mutex
	capMem  int
	backend Backend    // nil = memory-only
	order   *list.List // of Key; front = most recently used
	mem     map[Key]*memEntry

	// hits/misses/evictions/puts are cumulative counters for
	// observability (exposed by Stats; the serve layer reports them on
	// /healthz). puts counts every accepted Put — the fabric's
	// zero-duplicate-write guarantee is pinned against it.
	hits, misses, evictions, puts uint64
}

type memEntry struct {
	el   *list.Element
	data []byte
}

// Open returns a store rooted at dir, creating it if needed. An empty dir
// makes the store memory-only; memCapacity <= 0 selects
// DefaultMemCapacity entries for the LRU tier.
func Open(dir string, memCapacity int) (*Store, error) {
	if dir == "" {
		return OpenWith(nil, memCapacity), nil
	}
	b, err := NewDisk(dir)
	if err != nil {
		return nil, err
	}
	return OpenWith(b, memCapacity), nil
}

// OpenWith returns a store over an explicit backend (nil = memory-only).
// memCapacity <= 0 selects DefaultMemCapacity entries for the LRU tier.
func OpenWith(b Backend, memCapacity int) *Store {
	if memCapacity <= 0 {
		memCapacity = DefaultMemCapacity
	}
	return &Store{
		capMem:  memCapacity,
		backend: b,
		order:   list.New(),
		mem:     map[Key]*memEntry{},
	}
}

// Backend returns the persistence tier behind the LRU (nil when
// memory-only).
func (s *Store) Backend() Backend { return s.backend }

// Get returns the payload stored under k. A memory hit refreshes the
// entry's LRU position; a backend hit promotes the entry into the memory
// tier. The second return is false on a clean miss; err is reserved for
// I/O failures. Callers must not mutate the returned slice.
func (s *Store) Get(k Key) ([]byte, bool, error) {
	start := time.Now()
	s.mu.Lock()
	if e, ok := s.mem[k]; ok {
		s.order.MoveToFront(e.el)
		s.hits++
		data := e.data
		s.mu.Unlock()
		observeGet(start, true)
		return data, true, nil
	}
	s.mu.Unlock()

	if s.backend == nil || !k.Valid() {
		s.miss()
		observeGet(start, false)
		return nil, false, nil
	}
	data, ok, err := s.backend.Load(k)
	if err != nil {
		return nil, false, fmt.Errorf("store: load %s: %w", k, err)
	}
	if !ok {
		s.miss()
		observeGet(start, false)
		return nil, false, nil
	}
	s.mu.Lock()
	s.insertLocked(k, data)
	s.hits++
	s.mu.Unlock()
	observeGet(start, true)
	return data, true, nil
}

// Put stores the payload under k in the memory tier and, when the store
// has a backend, persists it there first (so a crash mid-Put never leaves
// a memory-tier entry the backend does not hold).
func (s *Store) Put(k Key, data []byte) error {
	if !k.Valid() {
		return fmt.Errorf("store: invalid key %q", k)
	}
	start := time.Now()
	if s.backend != nil {
		if err := s.backend.Store(k, data); err != nil {
			return fmt.Errorf("store: put %s: %w", k, err)
		}
	}
	s.mu.Lock()
	s.insertLocked(k, data)
	s.puts++
	s.mu.Unlock()
	mPuts.Inc()
	mPutSeconds.Observe(time.Since(start).Seconds())
	return nil
}

// insertLocked adds or refreshes a memory-tier entry and evicts from the
// LRU tail beyond capacity. Backend entries are never evicted.
func (s *Store) insertLocked(k Key, data []byte) {
	if e, ok := s.mem[k]; ok {
		e.data = data
		s.order.MoveToFront(e.el)
		return
	}
	s.mem[k] = &memEntry{el: s.order.PushFront(k), data: data}
	for s.order.Len() > s.capMem {
		tail := s.order.Back()
		s.order.Remove(tail)
		delete(s.mem, tail.Value.(Key))
		s.evictions++
		mEvictions.Inc()
	}
}

func (s *Store) miss() {
	s.mu.Lock()
	s.misses++
	s.mu.Unlock()
}

// Len reports the number of entries currently resident in the memory tier.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.Len()
}

// Stats is a snapshot of the store's cumulative cache counters.
type Stats struct {
	Backend    string `json:"backend"` // "disk", "mem", "http", or "none"
	MemEntries int    `json:"mem_entries"`
	Hits       uint64 `json:"hits"`
	Misses     uint64 `json:"misses"`
	Evictions  uint64 `json:"evictions"`
	Puts       uint64 `json:"puts"`
}

// Stats returns a consistent snapshot of the cache counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	name := "none"
	if s.backend != nil {
		name = s.backend.Name()
	}
	return Stats{Backend: name, MemEntries: s.order.Len(),
		Hits: s.hits, Misses: s.misses, Evictions: s.evictions, Puts: s.puts}
}
