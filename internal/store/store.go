// Package store is the content-addressed result cache beneath the sweep
// scheduler and the HTTP serving layer. A result is addressed by the
// SHA-256 fingerprint of its canonical request descriptor (experiment id,
// options, declared parameter space — see Fingerprint), so any two
// requests for the same computation resolve to the same Key regardless of
// who asks or how the descriptor struct is laid out.
//
// The store is two-tiered: a bounded in-memory LRU tier answers repeated
// requests without touching the filesystem, and an optional JSON-on-disk
// tier (one file per key, written atomically via rename) persists results
// across processes so interrupted sweeps resume from their checkpoints.
// Payloads are opaque bytes — callers decide the encoding — which is what
// lets the serving layer return a cached figure bit-identically.
package store

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// DefaultMemCapacity bounds the in-memory tier when Open is given a
// non-positive capacity.
const DefaultMemCapacity = 256

// Store is a two-tier (memory LRU + disk) content-addressed cache. It is
// safe for concurrent use. The zero value is not usable; call Open.
type Store struct {
	mu     sync.Mutex
	capMem int
	dir    string     // "" = memory-only
	order  *list.List // of Key; front = most recently used
	mem    map[Key]*memEntry

	// hits/misses/evictions are cumulative counters for observability
	// (exposed by Stats; the serve layer reports them on /healthz).
	hits, misses, evictions uint64
}

type memEntry struct {
	el   *list.Element
	data []byte
}

// Open returns a store rooted at dir, creating it if needed. An empty dir
// makes the store memory-only; memCapacity <= 0 selects
// DefaultMemCapacity entries for the LRU tier.
func Open(dir string, memCapacity int) (*Store, error) {
	if memCapacity <= 0 {
		memCapacity = DefaultMemCapacity
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: open %s: %w", dir, err)
		}
	}
	return &Store{
		capMem: memCapacity,
		dir:    dir,
		order:  list.New(),
		mem:    map[Key]*memEntry{},
	}, nil
}

// Dir returns the disk-tier root ("" when memory-only).
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(k Key) string { return filepath.Join(s.dir, string(k)+".json") }

// Get returns the payload stored under k. A memory hit refreshes the
// entry's LRU position; a disk hit promotes the entry into the memory
// tier. The second return is false on a clean miss; err is reserved for
// I/O failures. Callers must not mutate the returned slice.
func (s *Store) Get(k Key) ([]byte, bool, error) {
	s.mu.Lock()
	if e, ok := s.mem[k]; ok {
		s.order.MoveToFront(e.el)
		s.hits++
		data := e.data
		s.mu.Unlock()
		return data, true, nil
	}
	s.mu.Unlock()

	if s.dir == "" || !k.Valid() {
		s.miss()
		return nil, false, nil
	}
	data, err := os.ReadFile(s.path(k))
	if os.IsNotExist(err) {
		s.miss()
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("store: read %s: %w", k, err)
	}
	s.mu.Lock()
	s.insertLocked(k, data)
	s.hits++
	s.mu.Unlock()
	return data, true, nil
}

// Put stores the payload under k in the memory tier and, when the store
// has a disk root, persists it as <dir>/<key>.json via an atomic
// write-then-rename (a crash mid-write never leaves a torn entry behind).
func (s *Store) Put(k Key, data []byte) error {
	if !k.Valid() {
		return fmt.Errorf("store: invalid key %q", k)
	}
	if s.dir != "" {
		tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
		if err != nil {
			return fmt.Errorf("store: put %s: %w", k, err)
		}
		_, werr := tmp.Write(data)
		cerr := tmp.Close()
		if werr == nil {
			werr = cerr
		}
		if werr == nil {
			werr = os.Rename(tmp.Name(), s.path(k))
		}
		if werr != nil {
			os.Remove(tmp.Name())
			return fmt.Errorf("store: put %s: %w", k, werr)
		}
	}
	s.mu.Lock()
	s.insertLocked(k, data)
	s.mu.Unlock()
	return nil
}

// insertLocked adds or refreshes a memory-tier entry and evicts from the
// LRU tail beyond capacity. Disk entries are never evicted.
func (s *Store) insertLocked(k Key, data []byte) {
	if e, ok := s.mem[k]; ok {
		e.data = data
		s.order.MoveToFront(e.el)
		return
	}
	s.mem[k] = &memEntry{el: s.order.PushFront(k), data: data}
	for s.order.Len() > s.capMem {
		tail := s.order.Back()
		s.order.Remove(tail)
		delete(s.mem, tail.Value.(Key))
		s.evictions++
	}
}

func (s *Store) miss() {
	s.mu.Lock()
	s.misses++
	s.mu.Unlock()
}

// Len reports the number of entries currently resident in the memory tier.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.Len()
}

// Stats is a snapshot of the store's cumulative cache counters.
type Stats struct {
	MemEntries int    `json:"mem_entries"`
	Hits       uint64 `json:"hits"`
	Misses     uint64 `json:"misses"`
	Evictions  uint64 `json:"evictions"`
}

// Stats returns a consistent snapshot of the cache counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{MemEntries: s.order.Len(), Hits: s.hits, Misses: s.misses, Evictions: s.evictions}
}
